package cpr_test

import (
	"strings"
	"testing"

	"cpr"
)

const apiSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / y;
    int d = c + x;
}
`

func apiJob(t *testing.T) cpr.Job {
	t.Helper()
	prog, err := cpr.ParseProgram(apiSubject)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cpr.ParseSpec("(distinct y 0)", "y")
	if err != nil {
		t.Fatal(err)
	}
	return cpr.Job{
		Program:       prog,
		Spec:          spec,
		FailingInputs: []map[string]int64{{"x": 1, "y": 0}},
		Components: cpr.Components{
			Vars:         map[string]cpr.LangType{"x": cpr.TypeInt, "y": cpr.TypeInt},
			Params:       []string{"b"},
			ParamRange:   cpr.NewInterval(-10, 10),
			MaxTemplates: 20,
		},
		InputBounds: map[string]cpr.Interval{
			"x": cpr.NewInterval(-50, 50),
			"y": cpr.NewInterval(-50, 50),
		},
		Budget: cpr.Budget{MaxIterations: 12, ValidationIterations: 6},
	}
}

func TestPublicAPIRepair(t *testing.T) {
	job := apiJob(t)
	res, err := cpr.Repair(job, cpr.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Stats.PInit == 0 || len(res.Ranked) == 0 {
		t.Fatalf("empty result: %+v", res.Stats)
	}
	dev, err := cpr.ParseSpec("(= y 0)", "y")
	if err != nil {
		t.Fatal(err)
	}
	rank, found := cpr.CorrectPatchRank(res, dev, job.InputBounds)
	if !found {
		t.Fatalf("developer patch not covered; top: %v", cpr.FormatTopPatches(res, 5))
	}
	if rank > 10 {
		t.Errorf("rank %d, want top-10", rank)
	}
	// Display helpers.
	best := res.Ranked[0]
	params, ok := best.AnyParams()
	if !ok {
		t.Fatal("no params for best patch")
	}
	text := cpr.PatchText(best, params)
	if text == "" {
		t.Fatal("empty patch text")
	}
	prog := job.Program
	out := cpr.FormatProgram(prog, text)
	if !strings.Contains(out, text) {
		t.Fatalf("formatted program misses patch %q:\n%s", text, out)
	}
	crashed, err := cpr.RunPatched(prog, map[string]int64{"x": 1, "y": 0}, best.Expr, params)
	if err != nil || crashed {
		t.Fatalf("patched program still crashes on the failing input: %v %v", crashed, err)
	}
}

func TestPublicAPICEGIS(t *testing.T) {
	job := apiJob(t)
	res, err := cpr.RepairCEGIS(job, cpr.CEGISOptions{})
	if err != nil {
		t.Fatalf("RepairCEGIS: %v", err)
	}
	if res.Stats.PInit == 0 {
		t.Fatalf("CEGIS stats empty: %+v", res.Stats)
	}
}

func TestPublicAPIFuzz(t *testing.T) {
	prog, err := cpr.ParseProgram(apiSubject)
	if err != nil {
		t.Fatal(err)
	}
	original, err := cpr.ParseSpec("false")
	if err != nil {
		t.Fatal(err)
	}
	camp := cpr.FindFailingInput(prog, original, cpr.FuzzOptions{Seed: 3})
	if camp.Failing == nil {
		t.Fatalf("fuzzer found nothing in %d runs", camp.Runs)
	}
	if camp.Failing["y"] != 0 {
		t.Fatalf("failing input %v should have y=0", camp.Failing)
	}
}

func TestPublicAPISubjects(t *testing.T) {
	if len(cpr.Subjects(cpr.SuiteExtractFix)) != 30 {
		t.Fatal("extractfix catalog size")
	}
	s := cpr.FindSubject("loops", "sum")
	if s == nil || s.Suite != cpr.SuiteSVCOMP {
		t.Fatalf("FindSubject: %+v", s)
	}
	if _, err := s.Program(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSpecTyped(t *testing.T) {
	f, err := cpr.ParseSpecTyped("(or flag (> n 0))", map[string]bool{"flag": true, "n": false})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("nil term")
	}
	if _, err := cpr.ParseSpecTyped("(> flag 0)", map[string]bool{"flag": true}); err == nil {
		t.Fatal("ill-sorted spec should fail to parse")
	}
}
