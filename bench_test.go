// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs its experiment once per iteration with a
// reduced exploration budget (the full-budget runs are produced by
// cmd/cpr-bench) and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` prints the reproduction summary.
package cpr_test

import (
	"testing"

	"cpr/internal/bench"
	"cpr/internal/core"
)

// benchBudget keeps one benchmark iteration tractable; shapes (who wins,
// where reduction happens) are preserved at this scale.
var benchBudget = core.Budget{MaxIterations: 6, ValidationIterations: 4}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steps, err := bench.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if steps[len(steps)-1].Total != 1 {
			b.Fatalf("figure 1 should end with 1 concrete patch, got %d", steps[len(steps)-1].Total)
		}
		b.ReportMetric(float64(steps[0].Total), "initial-patches")
		b.ReportMetric(float64(steps[len(steps)-1].Total), "final-patches")
	}
}

func BenchmarkTable1(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(opts)
		var better, ran, cegisCorrect float64
		for _, r := range rows {
			if r.NA || r.Err != nil {
				continue
			}
			ran++
			if r.CPR.ReductionRatio() > r.CEGISStats.ReductionRatio()+0.01 {
				better++
			}
			if r.CEGISCorrect {
				cegisCorrect++
			}
		}
		b.ReportMetric(ran, "subjects")
		b.ReportMetric(better, "cpr-better-reduction")
		b.ReportMetric(cegisCorrect, "cegis-correct")
	}
}

func BenchmarkTable2(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		rows := bench.Table2(opts)
		var genP, genA, genE, corrE float64
		for _, r := range rows {
			genP += float64(r.GenProphet)
			genA += float64(r.GenAngelix)
			genE += float64(r.GenExtractFix)
			corrE += float64(r.CorrExtractFix)
		}
		b.ReportMetric(genP, "prophet-generated")
		b.ReportMetric(genA, "angelix-generated")
		b.ReportMetric(genE, "extractfix-generated")
		b.ReportMetric(corrE, "extractfix-correct")
	}
}

func BenchmarkTable3(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		rows := bench.Table3(opts)
		var ranked float64
		for _, r := range rows {
			if r.Err == nil && r.RankFound {
				ranked++
			}
		}
		b.ReportMetric(ranked, "correct-ranked")
	}
}

func BenchmarkTable4(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		rows := bench.Table4(opts)
		var top10, reductionSum float64
		for _, r := range rows {
			if r.Err != nil {
				continue
			}
			if r.RankFound && r.Rank <= 10 {
				top10++
			}
			reductionSum += r.CPR.ReductionRatio()
		}
		b.ReportMetric(top10, "top10-ranked")
		b.ReportMetric(reductionSum/float64(len(rows))*100, "avg-reduction-%")
	}
}

func BenchmarkTable5(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		rows := bench.Table5(opts)
		var grow float64
		// |P_init| must grow with the parameter range per subject.
		for j := 1; j < len(rows); j++ {
			if j%3 != 0 && rows[j].Err == nil && rows[j-1].Err == nil &&
				rows[j].CPR.PInit > rows[j-1].CPR.PInit {
				grow++
			}
		}
		b.ReportMetric(grow, "range-growth-steps")
	}
}

func BenchmarkTable6(b *testing.B) {
	opts := bench.RunOptions{Budget: benchBudget}
	for i := 0; i < b.N; i++ {
		t1 := bench.Table1(opts)
		t3 := bench.Table3(opts)
		t4 := bench.Table4(opts)
		agg := bench.Table6(t1, t3, t4)
		b.ReportMetric(agg[0].PatchLocHit, "extractfix-patchloc-%")
		b.ReportMetric(agg[2].BugLocHit, "svcomp-bugloc-%")
	}
}

func BenchmarkAnytime(b *testing.B) {
	s := bench.Find("Libtiff", "CVE-2016-3623")
	for i := 0; i < b.N; i++ {
		rows, err := bench.Anytime(s, []int{2, 10}, bench.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].PFinal-rows[1].PFinal), "extra-reduction")
	}
}

func BenchmarkPathReduction(b *testing.B) {
	subjects := []*bench.Subject{bench.Find("Libtiff", "CVE-2016-3623")}
	for i := 0; i < b.N; i++ {
		rows := bench.PathReductionAblation(subjects, bench.RunOptions{Budget: benchBudget})
		if len(rows) > 0 {
			b.ReportMetric(float64(rows[0].With.PathsSkipped), "paths-skipped")
		}
	}
}
