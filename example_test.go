package cpr_test

import (
	"fmt"

	"cpr"
)

// ExampleParseSpec shows the SMT-LIB-style prefix syntax used for
// specifications and patches.
func ExampleParseSpec() {
	spec, err := cpr.ParseSpec("(and (distinct y 0) (>= x 0))", "x", "y")
	if err != nil {
		panic(err)
	}
	// Ne canonicalizes its operand order (constants sort first).
	fmt.Println(spec)
	// Output: (and (distinct 0 y) (>= x 0))
}

// ExampleFormatProgram renders a subject program with a patch filled into
// its hole.
func ExampleFormatProgram() {
	prog, err := cpr.ParseProgram(`
void main(int y) {
    if (__HOLE__) {
        return;
    }
    int c = 10 / y;
}`)
	if err != nil {
		panic(err)
	}
	fmt.Print(cpr.FormatProgram(prog, "y == 0"))
	// Output:
	// void main(int y) {
	//     if (y == 0) {
	//         return;
	//     }
	//     int c = 10 / y;
	// }
}

// ExampleRepair runs a small end-to-end repair: the guard protecting a
// division is synthesized from one failing input and the crash-freedom
// specification.
func ExampleRepair() {
	prog, err := cpr.ParseProgram(`
void main(int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 10 / y;
}`)
	if err != nil {
		panic(err)
	}
	spec, err := cpr.ParseSpec("(distinct y 0)", "y")
	if err != nil {
		panic(err)
	}
	res, err := cpr.Repair(cpr.Job{
		Program:       prog,
		Spec:          spec,
		FailingInputs: []map[string]int64{{"y": 0}},
		Components: cpr.Components{
			Vars:       map[string]cpr.LangType{"y": cpr.TypeInt},
			Params:     []string{"b"},
			ParamRange: cpr.NewInterval(-10, 10),
			Cmp:        []cpr.Op{cpr.OpEq},
			Bool:       []cpr.Op{},
			Arith:      []cpr.Op{},
		},
		InputBounds: map[string]cpr.Interval{"y": cpr.NewInterval(-50, 50)},
		Budget:      cpr.Budget{MaxIterations: 10, ValidationIterations: 4},
	}, cpr.Options{})
	if err != nil {
		panic(err)
	}
	dev, err := cpr.ParseSpec("(= y 0)", "y")
	if err != nil {
		panic(err)
	}
	rank, found := cpr.CorrectPatchRank(res, dev, map[string]cpr.Interval{"y": cpr.NewInterval(-50, 50)})
	fmt.Printf("correct patch found=%v rank=%d\n", found, rank)
	best := res.Ranked[0]
	params, _ := best.AnyParams()
	fmt.Println(cpr.PatchText(best, params))
	// Output:
	// correct patch found=true rank=1
	// y == 0
}

// ExampleLocalizeFault ranks suspicious statements from run spectra.
func ExampleLocalizeFault() {
	prog, err := cpr.ParseProgram(`
void main(int y) {
    int a = y + 1;
    if (y == 0) {
        int bad = 10 / y;
    }
}`)
	if err != nil {
		panic(err)
	}
	rep, err := cpr.LocalizeFault(prog, []map[string]int64{
		{"y": 0}, // failing
		{"y": 3}, // passing
		{"y": 7}, // passing
	}, cpr.FaultOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("failing=%d passing=%d top line=%d\n", rep.Failing, rep.Passing, rep.Ranked[0].Pos.Line)
	// Output: failing=1 passing=2 top line=5
}
