// Command cpr-bench regenerates the tables and the figure of the paper's
// evaluation on the re-encoded benchmark, printing measured values next to
// the paper's reported ones.
//
//	cpr-bench -what all
//	cpr-bench -what table1 -budget 40
//	cpr-bench -what figure1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cpr"
	"cpr/internal/bench"
	"cpr/internal/buildinfo"
	"cpr/internal/core"
	"cpr/internal/govern"
	"cpr/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpr-bench: ")
	var (
		version      = flag.Bool("version", false, "print version and exit")
		what         = flag.String("what", "all", "what to run: figure1, table1..table6, anytime, pathreduction, all")
		budget       = flag.Int("budget", 0, "override per-subject iteration budget (0 = subject defaults)")
		timeout      = flag.Duration("timeout", 0, "per-subject wall-clock cap (0 = unbounded); hung subjects become timeout rows")
		workers      = flag.Int("workers", 0, "exploration worker pool size (0 = NumCPU); 1 replays the sequential engine")
		shards       = flag.Int("shards", 0, "distribute exploration across N local shard worker processes (0 = off); results are identical at any shard count")
		shardWorker  = flag.Bool("shard-worker", false, "internal: serve as a shard worker over stdin/stdout (spawned by -shards)")
		shardHB      = flag.Duration("shard-heartbeat", time.Second, "shard liveness heartbeat interval (0 disables heartbeats)")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "declare a shard dead after this long without any frame (0 disables the watchdog)")
		shardHedge   = flag.Duration("shard-hedge", 500*time.Millisecond, "age floor before a straggling chunk is speculatively re-issued to an idle shard (0 disables hedging)")
		incremental  = flag.Bool("incremental", true, "use incremental solver contexts (persistent encodings, retained learned clauses); results are identical either way")
		portfolio    = flag.Int("portfolio", 0, "race this many diverse CDCL configurations on hard queries (0 or 1 = off); results are identical either way")
		batch        = flag.Bool("batch", false, "group per-patch feasibility checks into chunked solver queries; results are identical either way")
		paranoid     = flag.Bool("paranoid", false, "force 100% solver verdict validation (every unsat answer cross-checked by an independent scratch solve); CPR_PARANOID=1 forces it too")
		memSoft      = flag.String("mem-soft", "", "soft memory watermark (e.g. 512M): shrink caches and retire idle solver contexts above it; measured tables are identical either way")
		memHigh      = flag.String("mem-high", "", "high memory watermark: additionally spill frontier cold tails to disk; measured tables are identical either way")
		memLimit     = flag.String("mem-limit", "", "process memory ceiling: sets the Go runtime soft limit (GOMEMLIMIT) and derives unset watermarks (50/70/85%)")
		jsonOut      = flag.String("json", "", "write per-subject measurements (wall time, iterations, solver queries, cache hit rate) to this JSON file (committed atomically)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-safe suite journals and per-subject engine snapshots (empty = off)")
		resume       = flag.Bool("resume", false, "resume a killed suite run: completed subjects replay from the journal, the interrupted one continues from its snapshot")
		quiet        = flag.Bool("q", false, "suppress progress lines")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cpr-bench"))
		return
	}
	warnf := func(format string, args ...any) { log.Printf(format, args...) }
	if *shardWorker {
		if err := shard.ServeStdio(warnf); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	opts := bench.RunOptions{SubjectTimeout: *timeout}
	gov, err := govern.Setup(*memSoft, *memHigh, *memLimit, warnf)
	if err != nil {
		log.Fatal(err)
	}
	opts.Core.Govern = gov
	opts.Core.Workers = *workers
	opts.Core.SMT.Incremental = *incremental
	opts.CEGIS.SMT.Incremental = *incremental
	opts.Baselines.SMT.Incremental = *incremental
	opts.Core.SMT.Paranoid = *paranoid
	opts.CEGIS.SMT.Paranoid = *paranoid
	opts.Baselines.SMT.Paranoid = *paranoid
	opts.Core.SMT.Portfolio = *portfolio
	opts.CEGIS.SMT.Portfolio = *portfolio
	opts.Baselines.SMT.Portfolio = *portfolio
	opts.Core.Batch = *batch
	if *shards > 0 {
		cfg := shard.Config{Heartbeat: *shardHB, Timeout: *shardTimeout, Hedge: *shardHedge}
		opts.Core.NewDistributor = shard.SpawnFactory(*shards, []string{"-shard-worker"}, cfg, warnf)
	}
	if *budget > 0 {
		opts.Budget = core.Budget{MaxIterations: *budget, ValidationIterations: 8}
	}
	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	opts.Checkpoint = core.CheckpointOptions{
		Dir:    *ckptDir,
		Resume: *resume,
		Warn:   func(msg string) { log.Print(msg) },
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	var t1, t3, t4 []bench.SubjectResult
	var jsonRows []bench.SubjectResult
	run := func(name string) {
		switch name {
		case "figure1":
			steps, err := bench.Figure1()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(bench.FormatFigure1(steps))
		case "table1":
			t1 = bench.Table1(opts)
			jsonRows = append(jsonRows, t1...)
			fmt.Println(bench.FormatTable1(t1))
		case "table2":
			rows := bench.Table2(opts)
			fmt.Println(bench.FormatTable2(rows))
		case "table3":
			t3 = bench.Table3(opts)
			jsonRows = append(jsonRows, t3...)
			fmt.Println(bench.FormatCPRTable("Table 3: ManyBugs subjects", t3))
		case "table4":
			t4 = bench.Table4(opts)
			jsonRows = append(jsonRows, t4...)
			fmt.Println(bench.FormatCPRTable("Table 4: SV-COMP logical errors", t4))
		case "table5":
			rows := bench.Table5(opts)
			fmt.Println(bench.FormatTable5(rows))
		case "table6":
			if t1 == nil {
				t1 = bench.Table1(opts)
			}
			if t3 == nil {
				t3 = bench.Table3(opts)
			}
			if t4 == nil {
				t4 = bench.Table4(opts)
			}
			fmt.Println(bench.FormatTable6(bench.Table6(t1, t3, t4)))
		case "anytime":
			s := cpr.FindSubject("Libtiff", "CVE-2016-3623")
			rows, err := bench.Anytime(s, []int{2, 5, 10, 20, 40}, opts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("Anytime (gradual correctness) on", s.ID())
			for _, r := range rows {
				fmt.Printf("  budget %3d iterations: |P_final| = %4d (%.0f%% reduction)\n",
					r.Iterations, r.PFinal, r.Ratio*100)
			}
			fmt.Println()
		case "pathreduction":
			subjects := []*bench.Subject{
				cpr.FindSubject("Libtiff", "CVE-2016-3623"),
				cpr.FindSubject("Libtiff", "CVE-2016-10094"),
				cpr.FindSubject("loops", "linear_search"),
			}
			rows := bench.PathReductionAblation(subjects, opts)
			fmt.Println("Path-reduction ablation (§3.4): φE/φS with and without pruning")
			for _, r := range rows {
				fmt.Printf("  %-28s with: φE=%3d φS=%3d   without: φE=%3d φS=%3d\n",
					r.Subject.ID(), r.With.PathsExplored, r.With.PathsSkipped,
					r.Without.PathsExplored, r.Without.PathsSkipped)
			}
			fmt.Println()
		default:
			log.Fatalf("unknown -what %q", name)
		}
	}

	writeJSON := func() {
		if *jsonOut == "" {
			return
		}
		if err := bench.WriteJSONFile(*jsonOut, jsonRows); err != nil {
			log.Fatal(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", len(jsonRows), *jsonOut)
		}
	}
	if *what == "all" {
		for _, name := range []string{"figure1", "table1", "table2", "table3", "table4", "table5", "table6", "anytime", "pathreduction"} {
			run(name)
		}
		writeJSON()
		return
	}
	run(*what)
	writeJSON()
}
