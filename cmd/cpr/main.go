// Command cpr repairs a mini-C subject program with concolic program
// repair and prints the ranked patches.
//
// Repair a benchmark subject:
//
//	cpr -subject Libtiff/CVE-2016-3623 -budget 40 -top 5
//
// Repair a program from a file:
//
//	cpr -file prog.c -spec '(distinct y 0)' -failing 'x=7,y=0' -params a,b
//
// Fuzz for a failing input first (the §3.2 pre-processing) when none is
// known:
//
//	cpr -file prog.c -spec '(distinct y 0)' -fuzz
//
// Rank suspicious statements from a pool of inputs (spectrum-based fault
// localization; inputs separated by ';'):
//
//	cpr -file prog.c -localize 'x=1,y=0;x=2,y=3;x=0,y=5'
//
// List benchmark subjects:
//
//	cpr -list
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cpr"
	"cpr/internal/buildinfo"
	"cpr/internal/govern"
	"cpr/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpr: ")
	var (
		version      = flag.Bool("version", false, "print version and exit")
		list         = flag.Bool("list", false, "list benchmark subjects and exit")
		subject      = flag.String("subject", "", "benchmark subject to repair (Project/BugID)")
		file         = flag.String("file", "", "mini-C program file to repair")
		spec         = flag.String("spec", "", "specification at the bug location (s-expression)")
		failing      = flag.String("failing", "", "failing input, e.g. 'x=7,y=0'")
		params       = flag.String("params", "a,b", "template parameter names")
		pLo          = flag.Int64("param-lo", -10, "parameter range lower bound")
		pHi          = flag.Int64("param-hi", 10, "parameter range upper bound")
		inLo         = flag.Int64("input-lo", -100, "input bound (lower) for exploration")
		inHi         = flag.Int64("input-hi", 100, "input bound (upper) for exploration")
		budget       = flag.Int("budget", 40, "repair-loop iteration budget")
		timeout      = flag.Duration("timeout", 0, "wall-clock repair budget (0 = unbounded); on expiry the best-so-far pool is printed")
		workers      = flag.Int("workers", 0, "exploration worker pool size (0 = NumCPU); 1 replays the sequential engine")
		shards       = flag.Int("shards", 0, "distribute exploration across N local shard worker processes (0 = off); results are identical at any shard count")
		shardConnect = flag.String("shard-connect", "", "comma-separated remote shard worker addresses (host:port); overrides -shards")
		shardListen  = flag.String("shard-listen", "", "serve as a remote shard worker on this address (never returns)")
		shardWorker  = flag.Bool("shard-worker", false, "internal: serve as a shard worker over stdin/stdout (spawned by -shards)")
		shardHB      = flag.Duration("shard-heartbeat", time.Second, "shard liveness heartbeat interval (0 disables heartbeats)")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "declare a shard dead after this long without any frame (0 disables the watchdog)")
		shardHedge   = flag.Duration("shard-hedge", 500*time.Millisecond, "age floor before a straggling chunk is speculatively re-issued to an idle shard (0 disables hedging)")
		incr         = flag.Bool("incremental", true, "use incremental solver contexts (persistent encodings, retained learned clauses); results are identical either way")
		portfolio    = flag.Int("portfolio", 0, "race this many diverse CDCL configurations on hard queries (0 or 1 = off); results are identical either way")
		batch        = flag.Bool("batch", false, "group per-patch feasibility checks into chunked solver queries; results are identical either way")
		paranoid     = flag.Bool("paranoid", false, "force 100% solver verdict validation (every unsat answer cross-checked by an independent scratch solve); CPR_PARANOID=1 forces it too")
		memSoft      = flag.String("mem-soft", "", "soft memory watermark (e.g. 512M): shrink the verdict cache and retire idle solver contexts above it; results are identical either way")
		memHigh      = flag.String("mem-high", "", "high memory watermark: additionally spill the frontier's cold tail to disk (see -spill-dir); results are identical either way")
		memLimit     = flag.String("mem-limit", "", "process memory ceiling: sets the Go runtime soft limit (GOMEMLIMIT) and derives unset watermarks (50/70/85%); sustained critical pressure ends the run with its best-so-far (anytime) pool")
		spillDir     = flag.String("spill-dir", "", "directory for frontier spill files (default: a temp dir, removed at exit)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for crash-safe run snapshots (empty = checkpointing off)")
		ckptIvl      = flag.Int("checkpoint-interval", 0, "generation barriers between snapshots (0 = default)")
		resume       = flag.Bool("resume", false, "resume from the latest intact snapshot in -checkpoint-dir")
		top          = flag.Int("top", 5, "ranked patches to print")
		cegis        = flag.Bool("cegis", false, "also run the CEGIS baseline for comparison")
		fuzz         = flag.Bool("fuzz", false, "fuzz for a failing input when -failing is not given")
		localize     = flag.String("localize", "", "';'-separated inputs: rank suspicious statements instead of repairing")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cpr"))
		return
	}
	warnf := func(format string, args ...any) { log.Printf(format, args...) }
	if *shardWorker {
		if err := shard.ServeStdio(warnf); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *shardListen != "" {
		l, err := net.Listen("tcp", *shardListen)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shard worker listening on %s", l.Addr())
		log.Fatal(shard.Serve(l, warnf))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}
	// Ctrl-C / SIGTERM cancel the run cooperatively: the engine stops at
	// the next barrier and the best-so-far pool is still printed; with
	// -checkpoint-dir set, the periodic snapshots already on disk make the
	// run resumable with -resume. A second signal terminates immediately.
	tok, stopSignals := cpr.WithSignalCancel(nil, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts := cpr.Options{Workers: *workers, Cancel: tok, Batch: *batch}
	gov, err := govern.Setup(*memSoft, *memHigh, *memLimit, func(format string, args ...any) { log.Printf(format, args...) })
	if err != nil {
		log.Fatal(err)
	}
	opts.Govern = gov
	opts.SpillDir = *spillDir
	opts.SMT.Incremental = *incr
	opts.SMT.Paranoid = *paranoid
	opts.SMT.Portfolio = *portfolio
	opts.Checkpoint = cpr.CheckpointOptions{
		Dir:      *ckptDir,
		Interval: *ckptIvl,
		Resume:   *resume,
		Warn:     func(msg string) { log.Print(msg) },
	}
	shardCfg := shard.Config{Heartbeat: *shardHB, Timeout: *shardTimeout, Hedge: *shardHedge}
	switch {
	case *shardConnect != "":
		opts.NewDistributor = shard.DialFactory(strings.Split(*shardConnect, ","), shardCfg, warnf)
	case *shards > 0:
		opts.NewDistributor = shard.SpawnFactory(*shards, []string{"-shard-worker"}, shardCfg, warnf)
	}

	switch {
	case *list:
		for _, suite := range []string{cpr.SuiteExtractFix, cpr.SuiteManyBugs, cpr.SuiteSVCOMP} {
			fmt.Printf("%s:\n", suite)
			for _, s := range cpr.Subjects(suite) {
				note := ""
				if s.Unsupported != "" {
					note = "  [N/A: " + s.Unsupported + "]"
				}
				fmt.Printf("  %s%s\n", s.ID(), note)
			}
		}
		return
	case *subject != "":
		parts := strings.SplitN(*subject, "/", 2)
		if len(parts) != 2 {
			log.Fatalf("subject must be Project/BugID, got %q", *subject)
		}
		s := cpr.FindSubject(parts[0], parts[1])
		if s == nil {
			log.Fatalf("unknown subject %q (use -list)", *subject)
		}
		if s.Unsupported != "" {
			log.Fatalf("subject is not runnable: %s", s.Unsupported)
		}
		job, err := s.Job(cpr.Budget{MaxIterations: *budget, MaxDuration: *timeout})
		if err != nil {
			log.Fatal(err)
		}
		dev, err := s.DevPatchTerm()
		if err != nil {
			log.Fatal(err)
		}
		runJob(job, dev, *top, *cegis, opts)
		return
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		prog, err := cpr.ParseProgram(string(src))
		if err != nil {
			log.Fatal(err)
		}
		if *localize != "" {
			localizeFile(prog, *localize)
			return
		}
		if *spec == "" {
			log.Fatal("-file requires -spec")
		}
		if *failing == "" && !*fuzz {
			log.Fatal("-file requires -failing (or -fuzz to generate one)")
		}
		var names []string
		for _, p := range prog.Inputs() {
			names = append(names, p.Name)
		}
		specTerm, err := cpr.ParseSpec(*spec, names...)
		if err != nil {
			log.Fatalf("spec: %v", err)
		}
		var in map[string]int64
		if *failing != "" {
			in, err = parseInput(*failing)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			falseTerm, err := cpr.ParseSpec("false")
			if err != nil {
				log.Fatal(err)
			}
			bounds := map[string]cpr.Interval{}
			for _, p := range prog.Inputs() {
				bounds[p.Name] = cpr.NewInterval(*inLo, *inHi)
			}
			camp := cpr.FindFailingInput(prog, falseTerm, cpr.FuzzOptions{Seed: 1, InputBounds: bounds})
			if camp.Failing == nil {
				log.Fatalf("fuzzer found no failing input in %d runs", camp.Runs)
			}
			fmt.Printf("fuzzer: failing input %v after %d runs\n", camp.Failing, camp.Runs)
			in = camp.Failing
		}
		vars := map[string]cpr.LangType{}
		bounds := map[string]cpr.Interval{}
		for _, p := range prog.Inputs() {
			vars[p.Name] = p.Type
			bounds[p.Name] = cpr.NewInterval(*inLo, *inHi)
		}
		job := cpr.Job{
			Program:       prog,
			Spec:          specTerm,
			FailingInputs: []map[string]int64{in},
			Components: cpr.Components{
				Vars:       vars,
				Params:     strings.Split(*params, ","),
				ParamRange: cpr.NewInterval(*pLo, *pHi),
			},
			InputBounds: bounds,
			Budget:      cpr.Budget{MaxIterations: *budget},
		}
		runJob(job, nil, *top, *cegis, opts)
		return
	}
	flag.Usage()
	os.Exit(2)
}

func runJob(job cpr.Job, dev *cpr.Term, top int, withCEGIS bool, opts cpr.Options) {
	res, err := cpr.Repair(job, opts)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	if st.TimedOut {
		switch {
		case st.MemStopped:
			fmt.Println("memory pressure stayed critical: showing the best-so-far (anytime) pool; raise -mem-limit or narrow the job to finish it")
		case opts.Cancel.Err() == cpr.ErrCancelled:
			fmt.Println("interrupted: showing the best-so-far (anytime) pool; with -checkpoint-dir the run is resumable with -resume")
		default:
			fmt.Println("wall-clock budget expired: showing the best-so-far (anytime) pool")
		}
	}
	fmt.Printf("patch space: %d → %d concrete patches (%.0f%% reduction)\n",
		st.PInit, st.PFinal, st.ReductionRatio()*100)
	fmt.Printf("paths explored: %d, skipped: %d, refinements: %d, removals: %d\n",
		st.PathsExplored, st.PathsSkipped, st.Refinements, st.Removals)
	fmt.Printf("workers: %d, solver queries: %d, cache hit rate: %.1f%%\n",
		st.Workers, st.SolverQueries, st.CacheHitRate()*100)
	if total := st.EncodeCacheHits + st.EncodeCacheMisses; total > 0 {
		fmt.Printf("incremental: enc-cache hit rate %.1f%%, clauses %d learned / %d kept / %d deleted, %d unsat cores\n",
			float64(st.EncodeCacheHits)/float64(total)*100,
			st.ClausesLearned, st.ClausesKept, st.ClausesDeleted, st.AssumptionCores)
	}
	if st.SatTime+st.LIATime+st.ValidateTime > 0 {
		fmt.Printf("solver time: SAT %v, LIA %v, validation %v\n",
			st.SatTime.Round(time.Millisecond), st.LIATime.Round(time.Millisecond), st.ValidateTime.Round(time.Millisecond))
	}
	if st.PortfolioRaces > 0 {
		fmt.Printf("portfolio: %d races (%d won by a non-leader config), %d learned clauses shared\n",
			st.PortfolioRaces, st.PortfolioMirrorWins, st.PortfolioShared)
	}
	if st.BatchQueries > 0 {
		fmt.Printf("batching: %d group queries answered %d items (%d bisections)\n",
			st.BatchQueries, st.BatchItems, st.BatchBisections)
	}
	if n := st.SolverUnknowns + st.SolverPanics + st.ExecPanics + st.FlipsDropped; n > 0 {
		fmt.Printf("degraded: solver unknowns %d, solver panics %d, exec panics %d, flips requeued %d / dropped %d\n",
			st.SolverUnknowns, st.SolverPanics, st.ExecPanics, st.FlipsRequeued, st.FlipsDropped)
	}
	if st.Validations > 0 {
		fmt.Printf("self-heal: %d validations (%d failed), %d quarantines, %d fallback solves, %d rebuilds, %d breaker trips\n",
			st.Validations, st.ValidationFailures, st.Quarantines, st.FallbackSolves, st.RebuildRetries, st.BreakerTrips)
	}
	if st.GovernPolls > 0 {
		fmt.Printf("memory: %d governor polls (%d soft / %d high / %d critical), cache shrinks %d (%s freed), contexts retired %d (%s)\n",
			st.GovernPolls, st.MemRungSoft, st.MemRungHigh, st.MemRungCritical,
			st.MemCacheShrinks, fmtBytes(st.MemCacheShrinkBytes),
			st.MemContextRetires, fmtBytes(st.MemContextRetireBytes))
		if st.MemSpills > 0 {
			fmt.Printf("spill: %d batches (%d items) to disk, %d reloads, %d load failures\n",
				st.MemSpills, st.MemSpilledItems, st.MemReloads, st.MemSpillLoadFailures)
		}
		fmt.Printf("peaks: frontier %d items (%s), seen %d (%s), pool %s\n",
			st.FrontierPeak, fmtBytes(st.FrontierPeakBytes),
			st.SeenPeak, fmtBytes(st.SeenPeakBytes), fmtBytes(st.PoolPeakBytes))
	}
	if st.Shards > 0 {
		fmt.Printf("shards: %d, chunks stolen %d, deaths %d, knowledge imported %d verdicts / %d cores, rejected %d\n",
			st.Shards, st.ShardSteals, st.ShardDeaths, st.ShardImportedVerdicts, st.ShardImportedCores, st.ShardRejectedImports)
		if n := st.ShardHeartbeatsMissed + st.ShardHedges + st.ShardReconnects + st.ShardDegradedStarts; n > 0 {
			fmt.Printf("resilience: heartbeats missed %d, hedges %d (%d won / %d lost), reconnects %d (%d late joins), degraded starts %d\n",
				st.ShardHeartbeatsMissed, st.ShardHedges, st.ShardHedgeWins, st.ShardHedgeLosses,
				st.ShardReconnects, st.ShardLateJoins, st.ShardDegradedStarts)
		}
	}
	if dev != nil {
		if rank, ok := cpr.CorrectPatchRank(res, dev, job.InputBounds); ok {
			fmt.Printf("developer patch covered at rank %d\n", rank)
		} else {
			fmt.Println("developer patch not covered by the final pool")
		}
	}
	fmt.Println("\ntop patches:")
	for _, line := range cpr.FormatTopPatches(res, top) {
		fmt.Println("  " + line)
	}
	if len(res.Ranked) > 0 {
		best := res.Ranked[0]
		params, _ := best.AnyParams()
		fmt.Println("\nrepaired program:")
		fmt.Println(cpr.FormatProgram(job.Program, cpr.PatchText(best, params)))
	}
	if withCEGIS {
		cres, err := cpr.RepairCEGIS(job, cpr.CEGISOptions{})
		if err != nil {
			log.Fatalf("cegis: %v", err)
		}
		fmt.Printf("\nCEGIS baseline: |P| %d → %d (%.0f%%), φE=%d",
			cres.Stats.PInit, cres.Stats.PFinal, cres.Stats.ReductionRatio()*100, cres.Stats.PathsExplored)
		if e := cres.ConcreteExpr(); e != nil {
			fmt.Printf(", patch: %s", cpr.PatchText(cres.Patch, cres.Params))
		} else {
			fmt.Print(", no patch")
		}
		fmt.Println()
	}
}

func localizeFile(prog *cpr.Program, spec string) {
	var inputs []map[string]int64
	for _, one := range strings.Split(spec, ";") {
		in, err := parseInput(one)
		if err != nil {
			log.Fatal(err)
		}
		inputs = append(inputs, in)
	}
	rep, err := cpr.LocalizeFault(prog, inputs, cpr.FaultOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault localization over %d failing / %d passing runs (Ochiai):\n", rep.Failing, rep.Passing)
	for i, r := range rep.Ranked {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. line %3d col %2d  score %.3f\n", i+1, r.Pos.Line, r.Pos.Col, r.Score)
	}
}

// fmtBytes renders a byte count at a human scale (KiB/MiB/GiB).
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func parseInput(s string) (map[string]int64, error) {
	in := map[string]int64{}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad input assignment %q", kv)
		}
		v, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad input value %q: %v", kv, err)
		}
		in[parts[0]] = v
	}
	return in, nil
}
