// Command cprd is the repair daemon: a multi-tenant HTTP/JSON service that
// queues and runs concolic-repair jobs on a shared scheduler with admission
// control, backpressure, retry, and graceful drain.
//
// Start a daemon:
//
//	cprd -state /var/lib/cprd -addr 127.0.0.1:8377
//
// Submit a job and watch it:
//
//	curl -s -X POST localhost:8377/jobs -H 'X-Tenant: alice' \
//	    -d '{"subject":"Libtiff/CVE-2016-3623","budget":40}'
//	curl -s localhost:8377/jobs/j-000000/stream
//
// On SIGTERM or SIGINT the daemon drains: admission stops (readyz flips to
// 503), running jobs stop at the next generation barrier (their periodic
// engine checkpoints stay on disk), and queued jobs stay journaled.
// Restarting with -resume finishes all of them with results bit-identical
// to an uninterrupted run. A second signal kills the process
// immediately — which the same -resume restart also recovers from, via the
// periodic checkpoints.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"cpr/internal/buildinfo"
	"cpr/internal/core"
	"cpr/internal/govern"
	"cpr/internal/serve"
	"cpr/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cprd: ")
	var (
		version = flag.Bool("version", false, "print version and exit")
		addr    = flag.String("addr", "127.0.0.1:8377", "HTTP listen address")
		state   = flag.String("state", "", "state directory: job journal + per-job checkpoints (required)")
		resume  = flag.Bool("resume", false, "replay the journal in -state and resume unfinished jobs")

		runners      = flag.Int("runners", 2, "concurrently running jobs")
		workers      = flag.Int("engine-workers", 1, "exploration workers per job (results identical for any value)")
		shards       = flag.Int("shards", 0, "distribute each job's exploration across N local shard worker processes (0 = off); results are identical at any shard count")
		shardBudget  = flag.Int("shard-budget", 0, "daemon-wide cap on shard worker processes across all running jobs (0 = unlimited); a job that cannot get slots runs with fewer shards or locally, results unchanged")
		shardWorker  = flag.Bool("shard-worker", false, "internal: serve as a shard worker over stdin/stdout (spawned by -shards)")
		shardHB      = flag.Duration("shard-heartbeat", time.Second, "shard liveness heartbeat interval (0 disables heartbeats)")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "declare a shard dead after this long without any frame (0 disables the watchdog)")
		shardHedge   = flag.Duration("shard-hedge", 500*time.Millisecond, "age floor before a straggling chunk is speculatively re-issued to an idle shard (0 disables hedging)")

		queueMax  = flag.Int("queue-max", 64, "global queued-job bound; submits beyond it are shed with 503")
		tenantOut = flag.Int("tenant-max", 8, "per-tenant outstanding-job quota; submits beyond it get 429")
		tenantRun = flag.Int("tenant-running", 0, "per-tenant running-job bound (0 = runners/2, min 1)")
		rate      = flag.Float64("rate", 0, "per-tenant submit rate limit in jobs/second (0 = unlimited)")
		burst     = flag.Int("burst", 4, "per-tenant submit burst size (with -rate)")

		attempts  = flag.Int("max-attempts", 3, "attempts before a failing job dead-letters")
		retryBase = flag.Duration("retry-base", 200*time.Millisecond, "base backoff between attempts (jittered exponential)")
		retryMax  = flag.Duration("retry-max", 10*time.Second, "backoff cap")

		queueTO = flag.Duration("queue-timeout", 0, "expire jobs queued longer than this (0 = never)")
		runTO   = flag.Duration("run-timeout", 0, "wall-clock bound per attempt (0 = none)")

		memSoft  = flag.String("mem-soft", "", "soft memory watermark (e.g. 512M): jobs shrink caches and retire idle solver contexts above it; results are identical either way")
		memHigh  = flag.String("mem-high", "", "high memory watermark: jobs additionally spill frontier cold tails under -state, new submits shed while a retry backlog drains, and new shard fleets are halved")
		memLimit = flag.String("mem-limit", "", "process memory ceiling: sets the Go runtime soft limit (GOMEMLIMIT) and derives unset watermarks (50/70/85%); at critical pressure new submits shed with 503 + Retry-After and new shard fleets are skipped")

		ckptIvl   = flag.Int("checkpoint-interval", 4, "generation barriers between job checkpoints")
		incr      = flag.Bool("incremental", true, "incremental solver contexts per job")
		portfolio = flag.Int("portfolio", 0, "race this many diverse CDCL configurations on hard queries (0 or 1 = off); results are identical either way")
		batch     = flag.Bool("batch", false, "group per-patch feasibility checks into chunked solver queries; results are identical either way")
		paranoid  = flag.Bool("paranoid", false, "force 100% solver verdict validation")

		drainTO = flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs to checkpoint on shutdown")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (stopped at drain)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at drain")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("cprd"))
		return
	}
	warnf := func(format string, args ...any) { log.Printf(format, args...) }
	if *shardWorker {
		if err := shard.ServeStdio(warnf); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *state == "" {
		log.Fatal("-state is required")
	}

	// Profiles are finalized explicitly after the drain (not deferred):
	// the drain-failure path exits through log.Fatal, which would skip
	// deferred writes.
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProfile != "" {
		prev := stopProfiles
		stopProfiles = func() {
			prev()
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}
	}

	cfg := serve.Config{
		StateDir:             *state,
		Resume:               *resume,
		Runners:              *runners,
		EngineWorkers:        *workers,
		QueueMax:             *queueMax,
		TenantMaxOutstanding: *tenantOut,
		TenantRunning:        *tenantRun,
		RatePerSec:           *rate,
		Burst:                *burst,
		MaxAttempts:          *attempts,
		RetryBase:            *retryBase,
		RetryMax:             *retryMax,
		QueueTimeout:         *queueTO,
		RunTimeout:           *runTO,
		CheckpointInterval:   *ckptIvl,
		Incremental:          *incr,
		Paranoid:             *paranoid,
		Portfolio:            *portfolio,
		Batch:                *batch,
		Warn:                 func(msg string) { log.Print(msg) },
	}
	gov, err := govern.Setup(*memSoft, *memHigh, *memLimit, warnf)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Govern = gov
	if *shards > 0 {
		shardCfg := shard.Config{Heartbeat: *shardHB, Timeout: *shardTimeout, Hedge: *shardHedge}
		cfg.Shards = *shards
		cfg.ShardBudget = *shardBudget
		cfg.MakeDistributor = func(n int) func(core.Job, core.Options) (core.Distributor, error) {
			return shard.SpawnFactory(n, []string{"-shard-worker"}, shardCfg, warnf)
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	srv.Start()
	go func() {
		if serr := hs.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			log.Fatal(serr)
		}
	}()
	log.Printf("%s listening on %s, state %s", buildinfo.String("cprd"), ln.Addr(), *state)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	// A second signal bypasses the drain and kills the process — the
	// periodic checkpoints make even that recoverable with -resume.
	signal.Reset(os.Interrupt, syscall.SIGTERM)
	log.Printf("%v: draining (timeout %v; signal again to kill)", got, *drainTO)

	derr := srv.Drain(*drainTO)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelCtx()
	_ = hs.Shutdown(ctx)
	stopProfiles()
	if derr != nil {
		log.Fatal(derr)
	}
	log.Print("drained cleanly; restart with -resume to finish outstanding jobs")
}
