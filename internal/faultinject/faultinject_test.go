// The tests in this package are the repair engine's resilience proof: for
// every injected fault class, Repair must return a sound, non-empty pool
// with the degradation visible in Stats — never an error, never a silently
// shrunken pool. Faults only ever make the engine skip reduction work, so
// the faulted run's surviving patches must be a superset of the unfaulted
// run's survivors (no spurious removals), and the developer patch must
// remain covered.
package faultinject_test

import (
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

const divZeroSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

func divZeroJob() core.Job {
	prog := lang.MustParse(divZeroSubject)
	return core.Job{
		Program: prog,
		Spec: expr.And(
			expr.Ne(expr.IntVar("x"), expr.Int(0)),
			expr.Ne(expr.IntVar("y"), expr.Int(0)),
		),
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   interval.New(-10, 10),
			Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
			Bool:         []expr.Op{expr.OpOr},
			Arith:        []expr.Op{},
			MaxTemplates: 40,
		},
		InputBounds: map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
		},
		Budget: core.Budget{MaxIterations: 25, ValidationIterations: 8},
	}
}

func devPatch() *expr.Term {
	return expr.Or(
		expr.Eq(expr.IntVar("x"), expr.Int(0)),
		expr.Eq(expr.IntVar("y"), expr.Int(0)),
	)
}

// survivorIDs keys the pool by template ID (deterministic from synthesis
// order, so comparable across runs of the same job).
func survivorIDs(res *core.Result) map[int]bool {
	ids := make(map[int]bool, len(res.Pool.Patches))
	for _, p := range res.Pool.Patches {
		ids[p.ID] = true
	}
	return ids
}

// checkSound asserts the invariants every degraded run must preserve:
// a non-empty pool, ranking consistent with the pool, every unfaulted
// survivor still present (faults must not cause spurious removals), and
// the developer patch covered by some surviving patch.
func checkSound(t *testing.T, res *core.Result, unfaulted map[int]bool) {
	t.Helper()
	if res == nil || res.Pool == nil {
		t.Fatal("faulted run returned no result")
	}
	if res.Pool.Size() == 0 {
		t.Fatal("faulted run emptied the pool")
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatalf("ranking inconsistent with pool: %d vs %d", len(res.Ranked), len(res.Pool.Patches))
	}
	got := survivorIDs(res)
	for id := range unfaulted {
		if !got[id] {
			t.Errorf("patch %d survived the unfaulted run but was removed under faults", id)
		}
	}
	solver := smt.NewSolver(smt.Options{})
	if _, found := core.CorrectPatchRank(solver, res.Ranked, devPatch(), divZeroJob().InputBounds); !found {
		t.Error("developer patch no longer covered by the faulted pool")
	}
}

func runUnfaulted(t *testing.T) *core.Result {
	t.Helper()
	faultinject.Deactivate()
	res, err := core.Repair(divZeroJob(), core.Options{})
	if err != nil {
		t.Fatalf("unfaulted Repair: %v", err)
	}
	return res
}

func runFaulted(t *testing.T, plan *faultinject.Plan) *core.Result {
	t.Helper()
	faultinject.Activate(plan)
	defer faultinject.Deactivate()
	res, err := core.Repair(divZeroJob(), core.Options{})
	if err != nil {
		t.Fatalf("faulted Repair: %v", err)
	}
	return res
}

func TestRepairUnderSolverTimeout(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaulted(t, &faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverTimeout})
	checkSound(t, res, base)
	if res.Stats.SolverUnknowns == 0 {
		t.Errorf("degradation invisible: %+v", res.Stats)
	}
	if res.Stats.FlipsRequeued == 0 {
		t.Errorf("no unknown flip was re-queued: %+v", res.Stats)
	}
}

func TestRepairUnderSolverFail(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaulted(t, &faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverFail})
	checkSound(t, res, base)
	if res.Stats.SolverUnknowns == 0 {
		t.Errorf("degradation invisible: %+v", res.Stats)
	}
}

func TestRepairUnderSolverPanic(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaulted(t, &faultinject.Plan{SolverEvery: 4, SolverKind: faultinject.SolverPanic})
	checkSound(t, res, base)
	if res.Stats.SolverPanics == 0 {
		t.Errorf("solver panics not counted: %+v", res.Stats)
	}
}

func TestRepairUnderExecPanic(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaulted(t, &faultinject.Plan{ExecPanicEvery: 4})
	checkSound(t, res, base)
	if res.Stats.ExecPanics == 0 {
		t.Errorf("exec panics not counted: %+v", res.Stats)
	}
}

// TestRepairUnderRankPerturbation: a perturbed exploration order may
// legitimately explore different paths (so the subset relation does not
// apply), but the pool must stay non-empty and keep covering the
// developer patch.
func TestRepairUnderRankPerturbation(t *testing.T) {
	res := runFaulted(t, &faultinject.Plan{RankPerturb: 500, Seed: 12345})
	if res.Pool.Size() == 0 {
		t.Fatal("perturbed run emptied the pool")
	}
	solver := smt.NewSolver(smt.Options{})
	if _, found := core.CorrectPatchRank(solver, res.Ranked, devPatch(), divZeroJob().InputBounds); !found {
		t.Error("developer patch lost under rank perturbation")
	}
}

// TestRepairFaultsPlusDeadline: faults and a wall-clock budget together
// still yield a valid best-so-far result with TimedOut set.
func TestRepairFaultsPlusDeadline(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{SolverEvery: 2, SolverKind: faultinject.SolverTimeout})
	defer faultinject.Deactivate()
	job := divZeroJob()
	job.Budget.MaxIterations = 1 << 20
	// Small enough to fire mid-run: even the faulted run needs tens of
	// milliseconds to drain its queue on this subject.
	job.Budget.MaxDuration = 5 * time.Millisecond
	start := time.Now()
	res, err := core.Repair(job, core.Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("overran the 100ms budget by too much: %v", el)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("TimedOut not set: %+v", res.Stats)
	}
	if res.Pool.Size() == 0 {
		t.Fatal("pool lost under faults+deadline")
	}
}

// TestDroppedFlipsAreCounted: with every solver query failing, retries
// fail too and every flip loss must be counted, not silent.
func TestDroppedFlipsAreCounted(t *testing.T) {
	res := runFaulted(t, &faultinject.Plan{SolverEvery: 1, SolverKind: faultinject.SolverTimeout})
	if res.Pool.Size() == 0 {
		t.Fatal("pool lost")
	}
	st := res.Stats
	if st.SolverUnknowns == 0 {
		t.Fatalf("no degradation recorded: %+v", st)
	}
	if st.FlipsRequeued == 0 || st.FlipsDropped == 0 {
		t.Errorf("requeue/drop accounting missing: requeued=%d dropped=%d", st.FlipsRequeued, st.FlipsDropped)
	}
	if st.FlipsDropped > st.FlipsRequeued {
		t.Errorf("dropped %d > requeued %d", st.FlipsDropped, st.FlipsRequeued)
	}
}

// ---- hook unit tests ----

func TestHooksInactiveAreNoOps(t *testing.T) {
	faultinject.Deactivate()
	for i := 0; i < 10; i++ {
		if faultinject.SolverQuery() != faultinject.None {
			t.Fatal("SolverQuery fired without a plan")
		}
		if faultinject.ExecPanic() {
			t.Fatal("ExecPanic fired without a plan")
		}
		if faultinject.RankDelta(uint64(i)) != 0 {
			t.Fatal("RankDelta nonzero without a plan")
		}
	}
}

func TestSolverQueryEveryNth(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverTimeout})
	defer faultinject.Deactivate()
	var fired []int
	for i := 1; i <= 9; i++ {
		if faultinject.SolverQuery() != faultinject.None {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("fired at %v, want [3 6 9]", fired)
	}
}

func TestRankDeltaDeterministicAndBounded(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{RankPerturb: 7, Seed: 99})
	defer faultinject.Deactivate()
	seenNonZero := false
	for key := uint64(0); key < 200; key++ {
		d1 := faultinject.RankDelta(key)
		d2 := faultinject.RankDelta(key)
		if d1 != d2 {
			t.Fatalf("RankDelta not deterministic for key %d: %d vs %d", key, d1, d2)
		}
		if d1 < -7 || d1 > 7 {
			t.Fatalf("RankDelta %d out of [-7,7]", d1)
		}
		if d1 != 0 {
			seenNonZero = true
		}
	}
	if !seenNonZero {
		t.Fatal("RankDelta never perturbed anything")
	}
}
