// Lying-peer faults for distributed exploration: a shard worker corrupts
// every piece of knowledge it exports — flipped models, spurious unsat
// verdicts, truncated assumption cores — while answering its own chunks
// honestly. The coordinator's validation ladder must reject the poison
// (or, for truncated cores, prove it harmless) so the repair result stays
// bit-identical to a 1-process run. This is the cross-process analogue of
// the adversarial solver tests above.
package faultinject_test

import (
	"testing"

	"cpr/internal/core"
	"cpr/internal/faultinject"
	"cpr/internal/shard"
)

// cleanShardBaseline is the trusted reference for the lying-peer tests:
// the same options the shard runs use, no distribution, no faults.
func cleanShardBaseline(t *testing.T) string {
	t.Helper()
	faultinject.Deactivate()
	res, err := core.Repair(divZeroJob(), core.Options{Workers: 1})
	if err != nil {
		t.Fatalf("baseline Repair: %v", err)
	}
	return repairFingerprint(res)
}

func runLyingShards(t *testing.T, kind faultinject.Fault) *core.Result {
	t.Helper()
	faultinject.Activate(&faultinject.Plan{ShardLieEvery: 1, ShardLieKind: kind})
	defer faultinject.Deactivate()
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.PipesFactory(2, shard.Config{}, nil)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair with lying shard (kind=%d): %v", kind, err)
	}
	return res
}

// TestShardLieFlipModel: every exported sat model has a variable
// corrupted. ValidateModel replays each model against its formula, so
// every poisoned entry must be rejected and the result unchanged.
func TestShardLieFlipModel(t *testing.T) {
	want := cleanShardBaseline(t)
	res := runLyingShards(t, faultinject.SolverFlipModel)
	if got := repairFingerprint(res); got != want {
		t.Fatalf("flipped-model poison changed the result:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardRejectedImports == 0 {
		t.Error("no poisoned imports rejected; the validation ladder did not fire")
	}
}

// TestShardLieSpuriousUnsat: sat verdicts are flipped to unsat with the
// model dropped. A believed spurious unsat would prune feasible patches,
// so the trusted re-solve must catch every one.
func TestShardLieSpuriousUnsat(t *testing.T) {
	want := cleanShardBaseline(t)
	res := runLyingShards(t, faultinject.SolverSpuriousUnsat)
	if got := repairFingerprint(res); got != want {
		t.Fatalf("spurious-unsat poison changed the result:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardRejectedImports == 0 {
		t.Error("no poisoned imports rejected; the validation ladder did not fire")
	}
}

// TestShardLieTruncateCore: unsat formulas lose their last conjunct. A
// truncated formula is either still genuinely unsat (accepting it is
// sound — unsat cores are minimization hints, not ground truth) or the
// re-solve finds it sat and rejects the mismatch. Either way the result
// must not move; no rejection count is guaranteed.
func TestShardLieTruncateCore(t *testing.T) {
	want := cleanShardBaseline(t)
	res := runLyingShards(t, faultinject.SolverTruncateCore)
	if got := repairFingerprint(res); got != want {
		t.Fatalf("truncated-core poison changed the result:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
