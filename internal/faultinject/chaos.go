package faultinject

import (
	"errors"
	"io"
	"sync"
	"time"
)

// Chaos is a deterministic network-fault proxy for one shard connection:
// it wraps an io.ReadWriteCloser and injects the failure modes a real
// fleet sees — slow links, mid-frame stalls, silent blackholes, one-way
// partitions — without any randomness, so a chaotic run is exactly
// reproducible. The zero knobs inject nothing; tests set the fields they
// mean before the connection is used.
//
// Close unblocks every injected sleep and block, so a liveness watchdog
// that tears the connection down (internal/shard's deadlineConn closes
// the wrapped conn on timeout) is never itself wedged by the chaos.
type Chaos struct {
	// ReadDelay and WriteDelay are added to every Read/Write call — a
	// uniformly slow link. Asymmetric delays across a fleet's connections
	// reorder replies between shards (each stream stays ordered, as TCP
	// guarantees).
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// StallAfterBytes arms a one-shot stall: once the cumulative bytes
	// read crosses it (0 = disarmed), delivery pauses for StallFor. The
	// threshold lands mid-frame for any frame spanning it, which is the
	// case per-connection idle timeouts miss and per-read deadlines catch.
	StallAfterBytes int
	StallFor        time.Duration

	// BlackholeAfterReads blocks every Read call after the first N
	// forever (until Close): the peer is gone but the connection never
	// errors — the pure liveness-timeout case. Negative = off.
	BlackholeAfterReads int

	// DropWritesAfter silently discards every Write call after the first
	// N — a one-way partition: our frames vanish, the peer's still
	// arrive. 0 drops everything from the start (an unreachable peer that
	// accepts connections). Negative = off.
	DropWritesAfter int

	rwc       io.ReadWriteCloser
	closed    chan struct{}
	closeOnce sync.Once

	mu        sync.Mutex
	reads     int
	writes    int
	readBytes int
	stalled   bool
}

// NewChaos wraps rwc with all faults disarmed.
func NewChaos(rwc io.ReadWriteCloser) *Chaos {
	return &Chaos{
		rwc:                 rwc,
		BlackholeAfterReads: -1,
		DropWritesAfter:     -1,
		closed:              make(chan struct{}),
	}
}

var errChaosClosed = errors.New("faultinject: chaos connection closed")

// sleep pauses for d, interruptible by Close.
func (c *Chaos) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closed:
		return errChaosClosed
	}
}

func (c *Chaos) Read(p []byte) (int, error) {
	c.mu.Lock()
	blackholed := c.BlackholeAfterReads >= 0 && c.reads >= c.BlackholeAfterReads
	c.reads++
	c.mu.Unlock()
	if blackholed {
		<-c.closed
		return 0, errChaosClosed
	}
	if err := c.sleep(c.ReadDelay); err != nil {
		return 0, err
	}
	n, err := c.rwc.Read(p)
	c.mu.Lock()
	c.readBytes += n
	stall := !c.stalled && c.StallAfterBytes > 0 && c.readBytes >= c.StallAfterBytes
	if stall {
		c.stalled = true
	}
	c.mu.Unlock()
	if stall {
		// Deliver the bytes that crossed the threshold only after the
		// stall: the reader is left mid-frame for its whole duration.
		if serr := c.sleep(c.StallFor); serr != nil {
			return 0, serr
		}
	}
	return n, err
}

func (c *Chaos) Write(p []byte) (int, error) {
	c.mu.Lock()
	dropped := c.DropWritesAfter >= 0 && c.writes >= c.DropWritesAfter
	c.writes++
	c.mu.Unlock()
	if dropped {
		// A silent discard, as a partitioned network gives: the caller
		// sees success and waits for a reply that never comes.
		return len(p), nil
	}
	if err := c.sleep(c.WriteDelay); err != nil {
		return 0, err
	}
	return c.rwc.Write(p)
}

func (c *Chaos) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.rwc.Close()
}
