// Adversarial faults: the solver does not fail loudly — it lies. Each
// test forces one lie class on every produced verdict (LieEvery: 1, so
// the schedule is scheduling-independent even under parallel workers) and
// asserts the self-healing guard makes the repair result *bit-identical*
// to a clean scratch run: same surviving patches, same ranking, same
// exploration stats. Health counters are the only permitted difference.
package faultinject_test

import (
	"fmt"
	"strings"
	"testing"

	"cpr/internal/core"
	"cpr/internal/faultinject"
)

// repairFingerprint is the cross-run identity the guard must preserve:
// pool membership, per-patch constraints, ranking, and every headline
// exploration stat. Health and solver-traffic counters are deliberately
// excluded — healing is allowed to cost extra solves, not extra (or
// missing) patches.
func repairFingerprint(res *core.Result) string {
	var b strings.Builder
	st := res.Stats
	fmt.Fprintf(&b, "stats P %d->%d pool %d->%d phiE=%d phiS=%d gen=%d ref=%d rem=%d\n",
		st.PInit, st.PFinal, st.PoolInit, st.PoolFinal, st.PathsExplored, st.PathsSkipped,
		st.InputsGenerated, st.Refinements, st.Removals)
	for _, p := range res.Pool.Patches {
		fmt.Fprintf(&b, "pool %d %s count=%d\n", p.ID, p, p.Constraint.Count())
	}
	for i, p := range res.Ranked {
		fmt.Fprintf(&b, "rank %d: id=%d score=%.6f\n", i+1, p.ID, p.Score)
	}
	return b.String()
}

// cleanScratchRun is the trusted reference: sequential, scratch-mode,
// no faults. Every lying run must reproduce it exactly.
func cleanScratchRun(t *testing.T) *core.Result {
	t.Helper()
	faultinject.Deactivate()
	opts := core.Options{Workers: 1}
	opts.SMT.Incremental = false
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("clean scratch Repair: %v", err)
	}
	return res
}

func runLying(t *testing.T, kind faultinject.Fault, workers int) *core.Result {
	t.Helper()
	faultinject.Activate(&faultinject.Plan{LieEvery: 1, LieKind: kind})
	defer faultinject.Deactivate()
	opts := core.Options{Workers: workers}
	opts.SMT.Incremental = true
	opts.SMT.Paranoid = true
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("lying Repair (kind=%d workers=%d): %v", kind, workers, err)
	}
	return res
}

func testLieClass(t *testing.T, kind faultinject.Fault, wantFailures bool) {
	want := repairFingerprint(cleanScratchRun(t))
	for _, workers := range []int{1, faultWorkers()} {
		res := runLying(t, kind, workers)
		if got := repairFingerprint(res); got != want {
			t.Errorf("workers=%d: lying run diverged from clean scratch run:\n--- want ---\n%s--- got ---\n%s",
				workers, want, got)
		}
		st := res.Stats
		if st.Validations == 0 {
			t.Errorf("workers=%d: guard never validated anything: %+v", workers, st)
		}
		if wantFailures {
			if st.ValidationFailures == 0 {
				t.Errorf("workers=%d: lies were injected but no validation failure recorded: %+v", workers, st)
			}
			if st.FallbackSolves == 0 {
				t.Errorf("workers=%d: validation failed but no fallback solve recorded: %+v", workers, st)
			}
		}
	}
}

func TestRepairUnderFlippedModels(t *testing.T) {
	testLieClass(t, faultinject.SolverFlipModel, true)
}

func TestRepairUnderSpuriousUnsat(t *testing.T) {
	testLieClass(t, faultinject.SolverSpuriousUnsat, true)
}

// A truncated core may remain genuinely unsat (dropping conjuncts of an
// unsat core does not always make it satisfiable), in which case accepting
// it is sound — so this class asserts identity and validation activity,
// not a failure count.
func TestRepairUnderTruncatedCores(t *testing.T) {
	testLieClass(t, faultinject.SolverTruncateCore, false)
}

// The quarantine/fallback machinery must be visible to operators: with
// persistent lying the run must report quarantines or fallback solves,
// never heal silently.
func TestLyingRunReportsHealing(t *testing.T) {
	res := runLying(t, faultinject.SolverSpuriousUnsat, 1)
	st := res.Stats
	if st.Quarantines == 0 && st.FallbackSolves == 0 {
		t.Fatalf("healed without reporting quarantines or fallbacks: %+v", st)
	}
}

// ---- hook unit test ----

func TestSolverLieEveryNth(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{LieEvery: 3, LieKind: faultinject.SolverSpuriousUnsat})
	defer faultinject.Deactivate()
	var fired []int
	for i := 1; i <= 9; i++ {
		if faultinject.SolverLie() != faultinject.None {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("fired at %v, want [3 6 9]", fired)
	}
}

func TestSolverLieInactiveIsNoOp(t *testing.T) {
	faultinject.Deactivate()
	for i := 0; i < 10; i++ {
		if faultinject.SolverLie() != faultinject.None {
			t.Fatal("SolverLie fired without a plan")
		}
	}
}
