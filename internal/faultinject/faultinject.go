// Package faultinject provides deterministic fault-injection hooks for the
// repair system's resilience tests. Production code calls the hook
// functions at its fault points — solver query entry (smt), subject
// execution entry (interp, concolic), flip ranking (core), generation
// barriers (core, cegis), and job dispatch (serve) — and the
// hooks are no-ops unless a test activates a Plan. With an active plan the
// hooks fire deterministically (every Nth call, perturbations derived from
// a fixed seed), so a faulted repair run is exactly reproducible.
//
// The package exists to prove the engine's failure discipline: a solver
// timeout, a solver panic, or an interpreter panic must degrade to
// "query/flip skipped" with the loss counted in Stats, never abort the
// run, and never remove patches the unfaulted run would have kept.
package faultinject

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
)

// Fault identifies an injected fault class.
type Fault uint8

// Fault classes for Plan.SolverKind.
const (
	// None injects nothing.
	None Fault = iota
	// SolverFail makes the solver return an injected hard error.
	SolverFail
	// SolverTimeout makes the solver return Unknown with a budget error,
	// as if the query's deadline or conflict budget had been exhausted.
	SolverTimeout
	// SolverPanic makes the solver panic inside a query; the smt layer's
	// recover boundary must turn it into an Unknown answer.
	SolverPanic
)

// Adversarial fault classes for Plan.LieKind: instead of failing loudly,
// the solver *lies*. The smt layer applies these to freshly produced
// verdicts (before guard validation), so the tests prove the validation
// layer catches a wrong answer no matter which tier produced it.
const (
	// SolverFlipModel corrupts a sat model by flipping a high bit of one
	// variable's value, pushing it outside any realistic domain.
	SolverFlipModel Fault = iota + 16
	// SolverSpuriousUnsat turns a sat verdict into unsat — the most
	// dangerous lie, since an accepted spurious unsat silently removes
	// feasible paths and patches.
	SolverSpuriousUnsat
	// SolverTruncateCore drops conjuncts from an unsat assumption core,
	// making the core formula satisfiable; an accepted truncated core
	// poisons the cache's subsumption index.
	SolverTruncateCore
)

// PanicMsg is the value injected panics carry, so recover sites (and
// humans reading logs) can tell an injected panic from a real one.
const PanicMsg = "faultinject: injected panic"

// ErrInjected is the error returned for SolverFail faults.
var ErrInjected = errors.New("faultinject: injected solver failure")

// Plan configures which hooks fire and how often. Counters advance on
// every hook call while the plan is active, so "every Nth call" is
// deterministic for a deterministic workload.
type Plan struct {
	// SolverEvery makes every Nth solver query fault with SolverKind
	// (0 disables solver faults).
	SolverEvery int
	// SolverKind selects the solver fault class.
	SolverKind Fault
	// ExecPanicEvery makes every Nth subject execution (concrete or
	// concolic) panic (0 disables).
	ExecPanicEvery int
	// RankPerturb perturbs flip-ranking scores by a deterministic value in
	// [-RankPerturb, +RankPerturb] derived from Seed and the flip's path
	// key (0 disables).
	RankPerturb int
	// Seed drives the rank perturbation.
	Seed uint64
	// LieEvery makes every Nth produced solver verdict lie with LieKind
	// (0 disables adversarial faults). Unlike SolverEvery faults, which
	// fail loudly at query entry, lies corrupt an otherwise successful
	// answer — they exist to exercise the guard layer's validation.
	LieEvery int
	// LieKind selects the adversarial fault class: SolverFlipModel,
	// SolverSpuriousUnsat, or SolverTruncateCore.
	LieKind Fault
	// CrashEvery fires Crash at every Nth generation barrier (0 disables).
	CrashEvery int
	// CrashAt fires Crash at exactly the Nth generation barrier, once
	// (0 disables). CrashAt composes with CrashEvery; either may trigger.
	CrashAt int
	// Crash is invoked when a barrier matches CrashEvery/CrashAt. Tests
	// install either a panic with PanicMsg (in-process crash, recoverable)
	// or a real self-SIGKILL (subprocess harness). A nil Crash disables
	// crash injection regardless of the counters.
	Crash func()
	// JobPanicEvery makes every Nth dispatched service job attempt panic
	// at the daemon's runner boundary (0 disables). Unlike ExecPanicEvery,
	// which the engine recovers internally and degrades to a skipped flip,
	// a job-level panic escapes the whole engine — it exists to exercise
	// the daemon's retry/backoff/dead-letter machinery (internal/serve).
	JobPanicEvery int
	// JobPanicMatch restricts job-level panics to attempts whose job key
	// contains the substring (empty matches every job). With
	// JobPanicEvery=1 and a key match, the job is a poison job: every
	// attempt panics and the daemon must dead-letter it after its bounded
	// retries.
	JobPanicMatch string
	// ShardLieEvery makes every Nth outgoing cross-shard knowledge entry
	// lie with ShardLieKind (0 disables). The shard worker corrupts the
	// entry as it leaves the shard — its own cache stays truthful — so the
	// tests prove the importer's validation ladder rejects a lying peer
	// without disturbing the run's result.
	ShardLieEvery int
	// ShardLieKind selects the corruption: SolverFlipModel perturbs the
	// entry's model, SolverSpuriousUnsat flips the verdict bit, and
	// SolverTruncateCore drops a conjunct from the entry's formula.
	ShardLieKind Fault
	// MemRungEvery makes every Nth memory-governor poll report the forced
	// rung MemRung regardless of real heap usage (0 disables). Because the
	// governor polls at generation barriers — which are deterministic for a
	// deterministic workload — this addresses individual barriers by
	// ordinal, so a test can force exactly the soft/high/critical rung
	// actions and then diff the run against an unpressured one.
	MemRungEvery int
	// MemRung is the rung value reported when MemRungEvery matches:
	// 1 = soft, 2 = high, 3 = critical (package govern's Rung values).
	MemRung int
	// MemRungSustain, when > 0, keeps reporting MemRung for that many
	// consecutive polls after each MemRungEvery match instead of a single
	// poll — it exercises the governor's sustained-critical stop, which
	// only fires after several critical polls in a row.
	MemRungSustain int
	// MemSpikeBytes inflates every MemSpikeEvery'th heap sample seen by the
	// governor by this many synthetic bytes (0 disables). Unlike MemRung
	// forcing, which bypasses the watermark comparison, a spike exercises
	// the real ladder arithmetic against configured watermarks.
	MemSpikeBytes uint64
	MemSpikeEvery int

	mu           sync.Mutex
	solverCalls  int
	execRuns     int
	lieCalls     int
	barrierCalls int
	jobStarts    int
	shardLies    int
	memPolls     int
	memSustain   int
	memSamples   int
}

var active atomic.Pointer[Plan]

// Activate installs the plan; hooks fire until Deactivate. Tests using it
// must not run in parallel with other repair tests (the plan is global).
func Activate(p *Plan) { active.Store(p) }

// Deactivate removes any active plan; all hooks become no-ops again.
func Deactivate() { active.Store(nil) }

// SolverQuery is called by the smt layer at query entry; it returns the
// fault to inject for this query (None almost always).
func SolverQuery() Fault {
	p := active.Load()
	if p == nil || p.SolverEvery <= 0 {
		return None
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.solverCalls++
	if p.solverCalls%p.SolverEvery == 0 {
		return p.SolverKind
	}
	return None
}

// SolverLie is called by the smt layer whenever an untrusted tier has
// produced a decisive verdict; it returns the adversarial corruption to
// apply before the verdict reaches validation (None almost always). Fault
// classes that do not fit the verdict's shape (e.g. SolverFlipModel on an
// unsat answer) are applied as no-ops by the caller; the counter advances
// regardless, keeping the schedule deterministic.
func SolverLie() Fault {
	p := active.Load()
	if p == nil || p.LieEvery <= 0 {
		return None
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lieCalls++
	if p.lieCalls%p.LieEvery == 0 {
		return p.LieKind
	}
	return None
}

// ShardLie is called by the shard worker for every knowledge entry it is
// about to send to the coordinator; it returns the adversarial corruption
// to apply to the outgoing copy (None almost always). The counter advances
// on every call, keeping the lie schedule deterministic for a
// deterministic run.
func ShardLie() Fault {
	p := active.Load()
	if p == nil || p.ShardLieEvery <= 0 {
		return None
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardLies++
	if p.shardLies%p.ShardLieEvery == 0 {
		return p.ShardLieKind
	}
	return None
}

// ExecPanic is called by the interpreters at subject-execution entry; a
// true return tells the caller to panic(PanicMsg).
func ExecPanic() bool {
	p := active.Load()
	if p == nil || p.ExecPanicEvery <= 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.execRuns++
	return p.execRuns%p.ExecPanicEvery == 0
}

// CrashPoint is called by the engines at every generation barrier,
// immediately after any checkpoint for that barrier has been committed.
// When the active plan's crash schedule matches, the plan's Crash function
// runs — it is expected not to return (panic or SIGKILL). The barrier
// counter advances on every call, so crash points are addressable by
// ordinal across a deterministic run.
func CrashPoint() {
	p := active.Load()
	if p == nil || p.Crash == nil || (p.CrashEvery <= 0 && p.CrashAt <= 0) {
		return
	}
	p.mu.Lock()
	p.barrierCalls++
	n := p.barrierCalls
	p.mu.Unlock()
	if (p.CrashEvery > 0 && n%p.CrashEvery == 0) || (p.CrashAt > 0 && n == p.CrashAt) {
		p.Crash()
	}
}

// JobStart is called by the daemon's scheduler (internal/serve) when a job
// attempt begins; a true return tells the runner to panic(PanicMsg) at the
// job boundary. Only attempts whose key matches JobPanicMatch advance the
// counter, so "every Nth attempt of the poison job" is deterministic even
// when healthy jobs interleave.
func JobStart(key string) bool {
	p := active.Load()
	if p == nil || p.JobPanicEvery <= 0 {
		return false
	}
	if p.JobPanicMatch != "" && !strings.Contains(key, p.JobPanicMatch) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.jobStarts++
	return p.jobStarts%p.JobPanicEvery == 0
}

// MemRung is called by the memory governor on every poll; it returns the
// forced watermark rung for this poll (0 almost always, meaning "use the
// real heap figures"). The counter advances on every call, so forced
// rungs are addressable by poll ordinal across a deterministic run.
func MemRung() (rung int, forced bool) {
	p := active.Load()
	if p == nil || p.MemRungEvery <= 0 {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.memPolls++
	if p.memPolls%p.MemRungEvery == 0 {
		if p.MemRungSustain > 1 {
			p.memSustain = p.MemRungSustain - 1
		}
		return p.MemRung, true
	}
	if p.memSustain > 0 {
		p.memSustain--
		return p.MemRung, true
	}
	return 0, false
}

// MemSpike is called by the memory governor after sampling the real heap
// size; it returns synthetic bytes to add to the sample (0 almost always).
func MemSpike() uint64 {
	p := active.Load()
	if p == nil || p.MemSpikeEvery <= 0 || p.MemSpikeBytes == 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.memSamples++
	if p.memSamples%p.MemSpikeEvery == 0 {
		return p.MemSpikeBytes
	}
	return 0
}

// RankDelta is called by the explorer when scoring a flip; it returns a
// deterministic perturbation in [-RankPerturb, +RankPerturb] keyed by the
// flip's path fingerprint (0 when inactive).
func RankDelta(key uint64) int {
	p := active.Load()
	if p == nil || p.RankPerturb <= 0 {
		return 0
	}
	x := key ^ p.Seed
	// xorshift64* mix for a stable, well-spread hash of the key.
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	x *= 0x2545f4914f6cdd1d
	span := uint64(2*p.RankPerturb + 1)
	return int(x%span) - p.RankPerturb
}
