// Fault injection under parallel exploration: with Workers > 1 the fault
// plan's counters are consumed by racing worker solvers, so *which* query
// faults is scheduling-dependent — but every soundness invariant of the
// sequential suite must still hold: no error, no spurious removals
// relative to an unfaulted run, developer patch still covered, and the
// degradation visible in Stats.
package faultinject_test

import (
	"os"
	"strconv"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/faultinject"
)

func faultWorkers() int {
	if s := os.Getenv("CPR_TEST_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

func runFaultedParallel(t *testing.T, plan *faultinject.Plan) *core.Result {
	t.Helper()
	faultinject.Activate(plan)
	defer faultinject.Deactivate()
	res, err := core.Repair(divZeroJob(), core.Options{Workers: faultWorkers()})
	if err != nil {
		t.Fatalf("faulted parallel Repair: %v", err)
	}
	return res
}

func TestParallelRepairUnderSolverTimeout(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaultedParallel(t, &faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverTimeout})
	checkSound(t, res, base)
	if res.Stats.SolverUnknowns == 0 {
		t.Errorf("degradation invisible: %+v", res.Stats)
	}
}

func TestParallelRepairUnderSolverFail(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaultedParallel(t, &faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverFail})
	checkSound(t, res, base)
	if res.Stats.SolverUnknowns == 0 {
		t.Errorf("degradation invisible: %+v", res.Stats)
	}
}

func TestParallelRepairUnderSolverPanic(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaultedParallel(t, &faultinject.Plan{SolverEvery: 4, SolverKind: faultinject.SolverPanic})
	checkSound(t, res, base)
	if res.Stats.SolverPanics == 0 {
		t.Errorf("solver panics not counted: %+v", res.Stats)
	}
}

func TestParallelRepairUnderExecPanic(t *testing.T) {
	base := survivorIDs(runUnfaulted(t))
	res := runFaultedParallel(t, &faultinject.Plan{ExecPanicEvery: 4})
	checkSound(t, res, base)
	if res.Stats.ExecPanics == 0 {
		t.Errorf("exec panics not counted: %+v", res.Stats)
	}
}

func TestParallelRepairFaultsPlusDeadline(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 1 << 20
	// Small enough to fire mid-run even with the verdict cache absorbing
	// repeat queries (the parallel run drains its queue faster than the
	// sequential one).
	job.Budget.MaxDuration = 5 * time.Millisecond
	faultinject.Activate(&faultinject.Plan{SolverEvery: 2, SolverKind: faultinject.SolverTimeout})
	defer faultinject.Deactivate()
	res, err := core.Repair(job, core.Options{Workers: faultWorkers()})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut not set: %+v", res.Stats)
	}
	if res.Pool.Size() == 0 {
		t.Fatal("faulted parallel deadline run lost the pool")
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatal("ranking inconsistent with pool")
	}
}
