package mc

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

func TestExactCount(t *testing.T) {
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{"x": interval.New(-10, 10)}
	n, exact, err := Count(expr.Ge(x, expr.Int(0)), bounds, Options{})
	if err != nil || !exact || n != 11 {
		t.Fatalf("got n=%d exact=%v err=%v, want 11 exact", n, exact, err)
	}
	// Two variables.
	y := expr.IntVar("y")
	bounds["y"] = interval.New(0, 4)
	f := expr.And(expr.Ge(x, expr.Int(0)), expr.Lt(y, expr.Int(2)))
	n, exact, err = Count(f, bounds, Options{})
	if err != nil || !exact || n != 11*2 {
		t.Fatalf("got n=%d exact=%v err=%v, want 22 exact", n, exact, err)
	}
}

func TestCountBooleans(t *testing.T) {
	p := expr.BoolVar("p")
	n, exact, err := Count(expr.Or(p, expr.Not(p)), nil, Options{})
	if err != nil || !exact || n != 2 {
		t.Fatalf("got %d %v %v", n, exact, err)
	}
	n, exact, err = Count(expr.And(p, expr.Not(p)), nil, Options{})
	if err != nil || !exact || n != 0 {
		t.Fatalf("got %d %v %v", n, exact, err)
	}
}

func TestCountClosed(t *testing.T) {
	n, exact, err := Count(expr.True(), nil, Options{})
	if err != nil || !exact || n != 1 {
		t.Fatalf("got %d %v %v", n, exact, err)
	}
	n, _, _ = Count(expr.False(), nil, Options{})
	if n != 0 {
		t.Fatalf("false should have 0 models, got %d", n)
	}
}

func TestApproximateCount(t *testing.T) {
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{"x": interval.New(0, 1<<20-1)}
	// Half the domain: x < 2^19.
	n, exact, err := Count(expr.Lt(x, expr.Int(1<<19)), bounds, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("domain too large for exact counting")
	}
	want := float64(int64(1) << 19)
	if f := float64(n); f < want*0.85 || f > want*1.15 {
		t.Fatalf("estimate %d too far from %v", n, want)
	}
}

func TestFraction(t *testing.T) {
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{"x": interval.New(1, 10)}
	f, err := Fraction(expr.Le(x, expr.Int(5)), bounds, Options{})
	if err != nil || f != 0.5 {
		t.Fatalf("fraction %v, want 0.5 (err %v)", f, err)
	}
	f, err = Fraction(expr.Le(x, expr.Int(100)), bounds, Options{})
	if err != nil || f != 1 {
		t.Fatalf("fraction %v, want 1", f)
	}
}

func TestEmptyDomain(t *testing.T) {
	x := expr.IntVar("x")
	bounds := map[string]interval.Interval{"x": interval.Empty()}
	n, exact, err := Count(expr.Ge(x, expr.Int(0)), bounds, Options{})
	if err != nil || !exact || n != 0 {
		t.Fatalf("got %d %v %v", n, exact, err)
	}
}

func TestDeterministicSampling(t *testing.T) {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	bounds := map[string]interval.Interval{
		"x": interval.New(0, 1<<20),
		"y": interval.New(0, 1<<20),
	}
	f := expr.Lt(expr.Add(x, y), expr.Int(1<<20))
	a, _, err1 := Count(f, bounds, Options{Seed: 7})
	b, _, err2 := Count(f, bounds, Options{Seed: 7})
	if err1 != nil || err2 != nil || a != b {
		t.Fatalf("nondeterministic: %d vs %d (%v %v)", a, b, err1, err2)
	}
}
