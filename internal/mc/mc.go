// Package mc provides model counting over bounded integer domains: exact
// counting by enumeration for small boxes and hash-based approximate
// counting for larger ones. The paper (§3.5.3) suggests model counting to
// fine-tune patch ranking by the proportion of a path's inputs that a
// patch insertion affects.
package mc

import (
	"math/rand"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// Options tunes the counters.
type Options struct {
	// ExactLimit is the largest domain size counted exactly (default 1 << 16).
	ExactLimit int64
	// Samples is the sample count for approximate counting (default 2000).
	Samples int
	// Seed drives the sampler deterministically.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.ExactLimit == 0 {
		o.ExactLimit = 1 << 16
	}
	if o.Samples == 0 {
		o.Samples = 2000
	}
	return o
}

// Count estimates the number of models of f over the given variable
// bounds. Exact is true when the result is an exact count (small domain
// enumeration); otherwise the count is a sampled estimate.
func Count(f *expr.Term, bounds map[string]interval.Interval, opts Options) (count int64, exact bool, err error) {
	opts = opts.withDefaults()
	vars := expr.Vars(f)
	names := make([]string, 0, len(vars))
	var total int64 = 1
	enumerable := true
	for _, v := range vars {
		if v.Sort != expr.SortInt {
			names = append(names, v.Name)
			if total <= opts.ExactLimit {
				total *= 2
			}
			continue
		}
		iv, ok := bounds[v.Name]
		if !ok {
			iv = interval.New(-(1 << 31), 1<<31-1)
		}
		names = append(names, v.Name)
		c := iv.Count()
		if c == 0 {
			return 0, true, nil
		}
		if total > opts.ExactLimit/c {
			enumerable = false
		}
		total *= c
		if total > opts.ExactLimit {
			enumerable = false
		}
	}
	if len(names) == 0 {
		v, e := expr.EvalBool(f, expr.Model{})
		if e != nil {
			return 0, false, e
		}
		if v {
			return 1, true, nil
		}
		return 0, true, nil
	}
	if enumerable {
		n, e := exactCount(f, names, bounds)
		return n, true, e
	}
	n, e := sampleCount(f, names, bounds, opts)
	return n, false, e
}

func domainOf(name string, f *expr.Term, bounds map[string]interval.Interval) interval.Interval {
	for _, v := range expr.Vars(f) {
		if v.Name == name && v.Sort == expr.SortBool {
			return interval.New(0, 1)
		}
	}
	if iv, ok := bounds[name]; ok {
		return iv
	}
	return interval.New(-(1 << 31), 1<<31-1)
}

func exactCount(f *expr.Term, names []string, bounds map[string]interval.Interval) (int64, error) {
	m := expr.Model{}
	var n int64
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(names) {
			v, err := expr.EvalBool(f, m)
			if err != nil {
				return err
			}
			if v {
				n++
			}
			return nil
		}
		iv := domainOf(names[i], f, bounds)
		for x := iv.Lo; ; x++ {
			m[names[i]] = x
			if err := rec(i + 1); err != nil {
				return err
			}
			if x == iv.Hi {
				break
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return n, nil
}

func sampleCount(f *expr.Term, names []string, bounds map[string]interval.Interval, opts Options) (int64, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	hits := 0
	var volume float64 = 1
	for _, name := range names {
		iv := domainOf(name, f, bounds)
		volume *= float64(iv.Count())
	}
	m := expr.Model{}
	for i := 0; i < opts.Samples; i++ {
		for _, name := range names {
			iv := domainOf(name, f, bounds)
			span := iv.Hi - iv.Lo + 1
			if span <= 0 { // full 64-bit style range
				m[name] = rng.Int63()
			} else {
				m[name] = iv.Lo + rng.Int63n(span)
			}
		}
		v, err := expr.EvalBool(f, m)
		if err != nil {
			return 0, err
		}
		if v {
			hits++
		}
	}
	return int64(volume * float64(hits) / float64(opts.Samples)), nil
}

// Fraction estimates the fraction of the domain satisfying f, in [0, 1].
func Fraction(f *expr.Term, bounds map[string]interval.Interval, opts Options) (float64, error) {
	opts = opts.withDefaults()
	count, exact, err := Count(f, bounds, opts)
	if err != nil {
		return 0, err
	}
	var volume float64 = 1
	for _, v := range expr.Vars(f) {
		volume *= float64(domainOf(v.Name, f, bounds).Count())
	}
	if volume == 0 {
		return 0, nil
	}
	_ = exact
	fr := float64(count) / volume
	if fr > 1 {
		fr = 1
	}
	return fr, nil
}
