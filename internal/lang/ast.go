package lang

// Type is a mini-C type.
type Type uint8

// The mini-C types. TypeArray is an array of int.
const (
	TypeVoid Type = iota
	TypeInt
	TypeBool
	TypeArray
)

// String returns the C spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "bool"
	case TypeArray:
		return "int[]"
	default:
		return "?"
	}
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	// Position returns the source position of the expression.
	Position() Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	// Position returns the source position of the statement.
	Position() Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// VarRef references a variable or parameter by name.
type VarRef struct {
	Pos  Pos
	Name string
}

// IndexExpr is a[i].
type IndexExpr struct {
	Pos   Pos
	Array Expr
	Index Expr
}

// UnaryExpr is !e or -e.
type UnaryExpr struct {
	Pos Pos
	Op  Kind // Not or Minus
	X   Expr
}

// BinaryExpr is a binary operation. && and || short-circuit.
type BinaryExpr struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// CallExpr calls a user-defined function.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// HoleExpr is the patch location __HOLE__. Its type is declared by the
// repair job (boolean guard or integer expression).
type HoleExpr struct {
	Pos Pos
}

func (*IntLit) exprNode()     {}
func (*BoolLit) exprNode()    {}
func (*VarRef) exprNode()     {}
func (*IndexExpr) exprNode()  {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CallExpr) exprNode()   {}
func (*HoleExpr) exprNode()   {}

// Position implementations.
func (e *IntLit) Position() Pos     { return e.Pos }
func (e *BoolLit) Position() Pos    { return e.Pos }
func (e *VarRef) Position() Pos     { return e.Pos }
func (e *IndexExpr) Position() Pos  { return e.Pos }
func (e *UnaryExpr) Position() Pos  { return e.Pos }
func (e *BinaryExpr) Position() Pos { return e.Pos }
func (e *CallExpr) Position() Pos   { return e.Pos }
func (e *HoleExpr) Position() Pos   { return e.Pos }

// DeclStmt declares a scalar (with optional initializer) or a fixed-size
// int array (zero-initialized, or with element initializers).
type DeclStmt struct {
	Pos      Pos
	Name     string
	Type     Type // TypeInt, TypeBool, or TypeArray
	Size     int  // array length for TypeArray
	Init     Expr // scalar initializer, may be nil
	ArrayLit []Expr
}

// AssignStmt assigns to a variable or array element.
type AssignStmt struct {
	Pos    Pos
	Target Expr // *VarRef or *IndexExpr
	Value  Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for(init; cond; post) body. Init and Post may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // *DeclStmt or *AssignStmt
	Cond Expr // may be nil (infinite)
	Post Stmt // *AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns from a function; Value is nil for void returns.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// AssertStmt checks a condition; failure is the observable bug.
type AssertStmt struct {
	Pos  Pos
	Cond Expr
}

// AssumeStmt constrains the input space; failing an assume silently
// abandons the execution (the path is infeasible, not buggy).
type AssumeStmt struct {
	Pos  Pos
	Cond Expr
}

// BugStmt is the __BUG__ marker: the location where buggy behavior is
// observable.
type BugStmt struct{ Pos Pos }

// ExprStmt evaluates a call for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// BlockStmt is a { ... } block with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*AssertStmt) stmtNode()   {}
func (*AssumeStmt) stmtNode()   {}
func (*BugStmt) stmtNode()      {}
func (*ExprStmt) stmtNode()     {}
func (*BlockStmt) stmtNode()    {}

// Position implementations.
func (s *DeclStmt) Position() Pos     { return s.Pos }
func (s *AssignStmt) Position() Pos   { return s.Pos }
func (s *IfStmt) Position() Pos       { return s.Pos }
func (s *WhileStmt) Position() Pos    { return s.Pos }
func (s *ForStmt) Position() Pos      { return s.Pos }
func (s *ReturnStmt) Position() Pos   { return s.Pos }
func (s *BreakStmt) Position() Pos    { return s.Pos }
func (s *ContinueStmt) Position() Pos { return s.Pos }
func (s *AssertStmt) Position() Pos   { return s.Pos }
func (s *AssumeStmt) Position() Pos   { return s.Pos }
func (s *BugStmt) Position() Pos      { return s.Pos }
func (s *ExprStmt) Position() Pos     { return s.Pos }
func (s *BlockStmt) Position() Pos    { return s.Pos }

// Param is a function parameter.
type Param struct {
	Name string
	Type Type // TypeInt, TypeBool, or TypeArray
}

// Func is a function definition.
type Func struct {
	Pos    Pos
	Name   string
	Params []Param
	Ret    Type
	Body   *BlockStmt
}

// Program is a parsed compilation unit. Main is the entry point; its
// parameters are the program inputs.
type Program struct {
	Funcs map[string]*Func
	Order []string // declaration order, for deterministic printing
	Main  *Func
	// HolePos is the position of the unique __HOLE__ expression, if any.
	HolePos *Pos
	// HoleType is the hole's type as resolved by Check from its context
	// (TypeBool for guard repair, TypeInt for expression repair); TypeVoid
	// when the program has no hole.
	HoleType Type
	// BugPositions are the positions of __BUG__ markers.
	BugPositions []Pos
}

// Inputs returns main's parameters: the symbolic inputs of the program.
func (p *Program) Inputs() []Param {
	if p.Main == nil {
		return nil
	}
	return p.Main.Params
}
