package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a mini-C compilation unit and type-checks it.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse but panics on error; for tests and subject tables.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []Token
	pos  int
	prog *Program
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(tok Token, format string, args ...interface{}) error {
	return &SyntaxError{tok.Pos, fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf(t, "expected %q, found %s", k.String(), t)
	}
	return p.advance(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{Funcs: make(map[string]*Func)}
	p.prog = prog
	for p.cur().Kind != EOF {
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funcs[fn.Name]; dup {
			return nil, p.errf(Token{Pos: fn.Pos}, "duplicate function %q", fn.Name)
		}
		prog.Funcs[fn.Name] = fn
		prog.Order = append(prog.Order, fn.Name)
	}
	if main, ok := prog.Funcs["main"]; ok {
		prog.Main = main
	} else {
		return nil, &SyntaxError{Pos{1, 1}, "program has no main function"}
	}
	return prog, nil
}

func (p *parser) parseType() (Type, error) {
	switch p.cur().Kind {
	case KwInt:
		p.advance()
		return TypeInt, nil
	case KwBool:
		p.advance()
		return TypeBool, nil
	case KwVoid:
		p.advance()
		return TypeVoid, nil
	}
	return TypeVoid, p.errf(p.cur(), "expected type, found %s", p.cur())
}

func (p *parser) parseFunc() (*Func, error) {
	start := p.cur()
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []Param
	if p.cur().Kind != RParen {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if pt == TypeVoid {
				return nil, p.errf(p.cur(), "void parameter")
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.accept(LBracket) {
				if _, err := p.expect(RBracket); err != nil {
					return nil, err
				}
				if pt != TypeInt {
					return nil, p.errf(pn, "only int arrays are supported")
				}
				pt = TypeArray
			}
			params = append(params, Param{Name: pn.Text, Type: pt})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Func{Pos: start.Pos, Name: name.Text, Params: params, Ret: ret, Body: body}, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errf(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.advance() // consume '}'
	return blk, nil
}

// parseStmtOrBlock parses either a block or a single statement wrapped in
// a block (for brace-less if/while bodies).
func (p *parser) parseStmtOrBlock() (*BlockStmt, error) {
	if p.cur().Kind == LBrace {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Pos: s.Position(), Stmts: []Stmt{s}}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	tok := p.cur()
	switch tok.Kind {
	case KwInt, KwBool:
		return p.parseDecl()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: tok.Pos, Cond: cond, Body: body}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.advance()
		var val Expr
		if p.cur().Kind != Semicolon {
			var err error
			val, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: tok.Pos, Value: val}, nil
	case KwBreak:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: tok.Pos}, nil
	case KwContinue:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: tok.Pos}, nil
	case KwAssert, KwAssume:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		if tok.Kind == KwAssert {
			return &AssertStmt{Pos: tok.Pos, Cond: cond}, nil
		}
		return &AssumeStmt{Pos: tok.Pos, Cond: cond}, nil
	case KwBug:
		p.advance()
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		p.prog.BugPositions = append(p.prog.BugPositions, tok.Pos)
		return &BugStmt{Pos: tok.Pos}, nil
	case LBrace:
		return p.parseBlock()
	}
	return p.parseSimpleStmt(true)
}

// parseSimpleStmt parses an assignment or a call statement; when wantSemi
// is true a terminating semicolon is required (false inside for headers).
func (p *parser) parseSimpleStmt(wantSemi bool) (Stmt, error) {
	tok := p.cur()
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var stmt Stmt
	if p.accept(Assign) {
		switch lhs.(type) {
		case *VarRef, *IndexExpr:
		default:
			return nil, p.errf(tok, "invalid assignment target")
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt = &AssignStmt{Pos: tok.Pos, Target: lhs, Value: val}
	} else {
		if _, ok := lhs.(*CallExpr); !ok {
			return nil, p.errf(tok, "expression statement must be a call")
		}
		stmt = &ExprStmt{Pos: tok.Pos, X: lhs}
	}
	if wantSemi {
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseDecl() (Stmt, error) {
	tok := p.advance() // int or bool
	ty := TypeInt
	if tok.Kind == KwBool {
		ty = TypeBool
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Pos: tok.Pos, Name: name.Text, Type: ty}
	if p.accept(LBracket) {
		if ty != TypeInt {
			return nil, p.errf(tok, "only int arrays are supported")
		}
		sz, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(sz.Text)
		if err != nil || n <= 0 {
			return nil, p.errf(sz, "invalid array size %q", sz.Text)
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		d.Type = TypeArray
		d.Size = n
		if p.accept(Assign) {
			if _, err := p.expect(LBrace); err != nil {
				return nil, err
			}
			for p.cur().Kind != RBrace {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.ArrayLit = append(d.ArrayLit, e)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RBrace); err != nil {
				return nil, err
			}
			if len(d.ArrayLit) > n {
				return nil, p.errf(tok, "too many initializers for array of size %d", n)
			}
		}
	} else if p.accept(Assign) {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseIf() (Stmt, error) {
	tok := p.advance() // if
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.accept(KwElse) {
		if p.cur().Kind == KwIf {
			els, err = p.parseIf()
		} else {
			els, err = p.parseStmtOrBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Pos: tok.Pos, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	tok := p.advance() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: tok.Pos}
	if p.cur().Kind != Semicolon {
		var err error
		if p.cur().Kind == KwInt || p.cur().Kind == KwBool {
			f.Init, err = p.parseDecl() // consumes the semicolon
			if err != nil {
				return nil, err
			}
		} else {
			f.Init, err = p.parseSimpleStmt(false)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semicolon); err != nil {
				return nil, err
			}
		}
	} else {
		p.advance()
	}
	if p.cur().Kind != Semicolon {
		var err error
		f.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.cur().Kind != RParen {
		var err error
		f.Post, err = p.parseSimpleStmt(false)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// ---- expressions (precedence climbing) ----------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OrOr {
		op := p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: OrOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == AndAnd {
		op := p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: AndAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Eq, NotEq, Less, LessEq, Greater, GreaterEq:
		op := p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Plus || p.cur().Kind == Minus {
		op := p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == Star || p.cur().Kind == Slash || p.cur().Kind == Percent {
		op := p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Pos: op.Pos, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.cur()
	if tok.Kind == Not || tok.Kind == Minus {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: tok.Pos, Op: tok.Kind, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == LBracket {
		lb := p.advance()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		e = &IndexExpr{Pos: lb.Pos, Array: e, Index: idx}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case NUMBER:
		p.advance()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf(tok, "invalid integer literal %q", tok.Text)
		}
		return &IntLit{Pos: tok.Pos, Val: v}, nil
	case KwTrue:
		p.advance()
		return &BoolLit{Pos: tok.Pos, Val: true}, nil
	case KwFalse:
		p.advance()
		return &BoolLit{Pos: tok.Pos, Val: false}, nil
	case KwHole:
		p.advance()
		if p.prog.HolePos != nil {
			return nil, p.errf(tok, "multiple __HOLE__ expressions (one fault location at a time)")
		}
		pos := tok.Pos
		p.prog.HolePos = &pos
		return &HoleExpr{Pos: tok.Pos}, nil
	case IDENT:
		p.advance()
		if p.cur().Kind == LParen {
			p.advance()
			var args []Expr
			if p.cur().Kind != RParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &CallExpr{Pos: tok.Pos, Name: tok.Text, Args: args}, nil
		}
		return &VarRef{Pos: tok.Pos, Name: tok.Text}, nil
	case LParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(tok, "unexpected token %s in expression", tok)
}
