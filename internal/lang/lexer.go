package lang

import (
	"fmt"
	"unicode"
)

// SyntaxError reports a lexing or parsing error with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg)
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return &SyntaxError{Pos{l.line, l.col}, fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case unicode.IsSpace(rune(c)):
			l.advance()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.src[l.off] == '*' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.off
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentCont(c) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		start := l.off
		for {
			c, ok := l.peekByte()
			if !ok || !unicode.IsDigit(rune(c)) {
				break
			}
			l.advance()
		}
		return Token{Kind: NUMBER, Text: l.src[start:l.off], Pos: pos}, nil
	}
	l.advance()
	two := func(nextByte byte, withKind, aloneKind Kind) (Token, error) {
		if n, ok := l.peekByte(); ok && n == nextByte {
			l.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		return Token{Kind: aloneKind, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '=':
		return two('=', Eq, Assign)
	case '<':
		return two('=', LessEq, Less)
	case '>':
		return two('=', GreaterEq, Greater)
	case '!':
		return two('=', NotEq, Not)
	case '&':
		if n, ok := l.peekByte(); ok && n == '&' {
			l.advance()
			return Token{Kind: AndAnd, Pos: pos}, nil
		}
		return Token{}, &SyntaxError{pos, "unexpected '&' (use '&&')"}
	case '|':
		if n, ok := l.peekByte(); ok && n == '|' {
			l.advance()
			return Token{Kind: OrOr, Pos: pos}, nil
		}
		return Token{}, &SyntaxError{pos, "unexpected '|' (use '||')"}
	}
	return Token{}, &SyntaxError{pos, fmt.Sprintf("unexpected character %q", c)}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
