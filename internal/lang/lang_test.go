package lang

import (
	"strings"
	"testing"
)

const sampleSrc = `
// LibTIFF-style divide-by-zero subject.
int roundup(int x, int m) {
    if (m == 0) { return x; }
    return ((x + m - 1) / m) * m;
}

void main(int width, int height, int horiz, int vert) {
    int rwidth = roundup(width, horiz);
    int rheight = roundup(height, vert);
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int cc = rwidth * rheight + 2 * ((rwidth * rheight) / (horiz * vert));
    assert(cc >= 0);
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sampleSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if prog.Main == nil || len(prog.Main.Params) != 4 {
		t.Fatalf("main params: %+v", prog.Main)
	}
	if prog.HolePos == nil {
		t.Fatal("hole not recorded")
	}
	if prog.HoleType != TypeBool {
		t.Fatalf("hole type %v, want bool", prog.HoleType)
	}
	if len(prog.BugPositions) != 1 {
		t.Fatalf("bug positions: %v", prog.BugPositions)
	}
	if len(prog.Order) != 2 || prog.Order[0] != "roundup" {
		t.Fatalf("order: %v", prog.Order)
	}
}

func TestParseArrayAndLoops(t *testing.T) {
	src := `
int sum(int a[], int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i];
    }
    return s;
}
void main(int x) {
    int a[3] = {1, 2, 3};
    a[0] = x;
    int s = sum(a, 3);
    while (s > 10) {
        s = s - 1;
        if (s == 12) { continue; }
        if (s < 0) { break; }
    }
    assert(s <= 10);
}
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`void main() { x = 1; }`, "undefined variable"},
		{`void main() { int x = true; }`, "type mismatch"},
		{`void main() { if (1) { } }`, "type mismatch"},
		{`void main() { break; }`, "break outside loop"},
		{`int main() { }`, ""}, // parses; missing return is a runtime issue
		{`void f() {}`, "no main"},
		{`void main() { int x; int x; }`, "redeclaration"},
		{`void main(int a[]) { }`, "must be a scalar"},
		{`void main() { foo(); }`, "undefined function"},
		{`int f(int x) { return x; } void main() { int y = f(); }`, "expects 1 arguments"},
		{`void main() { int x = __HOLE__ + __HOLE__; }`, ""}, // multiple holes rejected (message varies)
		{`void main() { return 5; }`, "void function"},
		{`void main() { int a[2]; bool b = a[0] == a; }`, ""}, // array compare rejected
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if c.want == "" {
			if c.src == `int main() { }` && err != nil {
				t.Errorf("Parse(%q) unexpectedly failed: %v", c.src, err)
			}
			// Others just need to fail with any message.
			if c.src != `int main() { }` && err == nil {
				t.Errorf("Parse(%q) unexpectedly succeeded", c.src)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"void main() { int x = 1 & 2; }", "void main() { /* foo "} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog := MustParse(sampleSrc)
	out := Format(prog, "")
	// Formatted source must re-parse to an equivalent program.
	prog2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-Parse of formatted source: %v\n%s", err, out)
	}
	out2 := Format(prog2, "")
	if out != out2 {
		t.Fatalf("format not idempotent:\n%s\n----\n%s", out, out2)
	}
	if !strings.Contains(out, "__HOLE__") {
		t.Fatalf("hole missing from output:\n%s", out)
	}
	patched := Format(prog, "horiz * vert != 0")
	if !strings.Contains(patched, "if (horiz * vert != 0) {") {
		t.Fatalf("patched text missing:\n%s", patched)
	}
}

func TestFormatArrayAndFor(t *testing.T) {
	src := `
void main(int x) {
    int a[3] = {1, 2, x};
    bool ok = true;
    for (int i = 0; i < 3; i = i + 1) {
        a[i] = a[i] * 2;
    }
    if (ok) {
        assert(a[0] == 2);
    } else if (x > 0) {
        assume(x < 5);
    } else {
        __BUG__;
    }
}
`
	prog := MustParse(src)
	out := Format(prog, "")
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, out)
	}
	for _, want := range []string{"int a[3] = {1, 2, x};", "for (int i = 0; i < 3; i = i + 1) {", "} else if (x > 0) {", "__BUG__;"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestCommentsAndPrecedence(t *testing.T) {
	src := `
/* block
   comment */
void main(int x) {
    int y = 1 + 2 * x; // line comment
    int z = (1 + 2) * x;
    bool p = x > 0 && x < 10 || x == -5;
    assert(p || y != z);
}
`
	prog := MustParse(src)
	out := Format(prog, "")
	if !strings.Contains(out, "1 + 2 * x") || !strings.Contains(out, "(1 + 2) * x") {
		t.Fatalf("precedence printing wrong:\n%s", out)
	}
	if !strings.Contains(out, "x > 0 && x < 10 || x == -5") {
		t.Fatalf("bool precedence printing wrong:\n%s", out)
	}
}

func TestInputsAccessor(t *testing.T) {
	prog := MustParse(`void main(int a, bool flag) { assume(flag || a > 0); }`)
	ins := prog.Inputs()
	if len(ins) != 2 || ins[0].Name != "a" || ins[1].Type != TypeBool {
		t.Fatalf("Inputs: %+v", ins)
	}
}
