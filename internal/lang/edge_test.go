package lang

import (
	"strings"
	"testing"
)

func TestParseBracelessBodies(t *testing.T) {
	src := `
void main(int x) {
    if (x > 0)
        x = x - 1;
    else
        x = x + 1;
    while (x > 10)
        x = x - 2;
    for (x = 0; x < 3; x = x + 1)
        x = x + 0;
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := Format(prog, "")
	// Braceless bodies are wrapped into blocks by the parser.
	if !strings.Contains(out, "if (x > 0) {") || !strings.Contains(out, "} else {") {
		t.Fatalf("braceless if mis-parsed:\n%s", out)
	}
}

func TestParseForVariants(t *testing.T) {
	cases := []string{
		`void main(int x) { for (;;) { break; } }`,
		`void main(int x) { for (; x < 3;) { x = x + 1; } }`,
		`void main(int x) { for (x = 0; ; x = x + 1) { if (x > 2) { break; } } }`,
		`void main(int x) { for (int i = 0; i < 2; i = i + 1) { continue; } }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	src := `
int f(int a) { return a; }
void main(int x) {
    if (x > 0) {
        if (x > 1) {
            if (x > 2) {
                int y = f(f(f(x)));
                assert(y == x);
            }
        }
    }
}`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := Format(prog, "")
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, out)
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("void main(int x) {\n    int y = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want SyntaxError, got %T", err)
	}
	if se.Pos.Line != 2 {
		t.Fatalf("error line %d, want 2", se.Pos.Line)
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("position missing from message: %v", err)
	}
}

func TestParseMoreErrors(t *testing.T) {
	cases := []string{
		`void main(int x) { x(); }`,                                // call of non-function
		`void main(int x) { int a[0]; }`,                           // zero-size array
		`void main(int x) { int a[2] = {1, 2, 3}; }`,               // too many initializers
		`void main(int x) { bool a[2]; }`,                          // bool arrays unsupported
		`void main(int x) { x = 1 }`,                               // missing semicolon
		`void main(int x) { return; } void main() {}`,              // duplicate function
		`int f() { return 1; }`,                                    // no main
		`void main(void v) {}`,                                     // void parameter
		`void main(int x) { 1 + 2; }`,                              // non-call expression statement
		`void main(int x) { continue; }`,                           // continue outside loop
		`void main(int x) { int a[2]; a = 3; }`,                    // whole-array assignment
		`void main(int x) { if (__HOLE__) { } if (__HOLE__) { } }`, // two holes
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestFormatReturnAndCalls(t *testing.T) {
	src := `
int g(int a, int b) { return a % b; }
void side(int n) { int q = n; }
int main(int x) {
    side(x);
    bool p = true;
    if (!p) { return 0 - 1; }
    return g(x, 3);
}`
	prog := MustParse(src)
	out := Format(prog, "")
	for _, want := range []string{"side(x);", "return g(x, 3);", "!p"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := Parse(out); err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
}

func TestTokenStrings(t *testing.T) {
	if KwHole.String() != "__HOLE__" || LBracket.String() != "[" {
		t.Fatal("token spellings wrong")
	}
	tok := Token{Kind: IDENT, Text: "foo"}
	if tok.String() != `"foo"` {
		t.Fatalf("token string %q", tok.String())
	}
	if (Pos{3, 7}).String() != "3:7" {
		t.Fatal("pos string wrong")
	}
	if TypeArray.String() != "int[]" || Kind(250).String() == "" {
		t.Fatal("type/kind strings wrong")
	}
}
