package lang

import "fmt"

// TypeError reports a semantic error with its position.
type TypeError struct {
	Pos Pos
	Msg string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("lang: %s: %s", e.Pos, e.Msg)
}

// Check type-checks the program, resolving the hole's type into
// prog.HoleType. It enforces that main's parameters (the program inputs)
// are scalars, and that the hole appears only in positions whose expected
// type is known (a condition or the right-hand side of an assignment).
func Check(prog *Program) error {
	c := &checker{prog: prog}
	for _, name := range prog.Order {
		if err := c.checkFunc(prog.Funcs[name]); err != nil {
			return err
		}
	}
	for _, p := range prog.Main.Params {
		if p.Type != TypeInt && p.Type != TypeBool {
			return &TypeError{prog.Main.Pos, fmt.Sprintf("main parameter %q must be a scalar input", p.Name)}
		}
	}
	return nil
}

// HoleType is resolved into the Program during Check.
type scope struct {
	vars   map[string]Type
	parent *scope
}

func (s *scope) lookup(name string) (Type, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if t, ok := cur.vars[name]; ok {
			return t, true
		}
	}
	return TypeVoid, false
}

func (s *scope) declare(name string, t Type) bool {
	if _, ok := s.vars[name]; ok {
		return false
	}
	s.vars[name] = t
	return true
}

type checker struct {
	prog *Program
	fn   *Func
	loop int
}

func (c *checker) errf(pos Pos, format string, args ...interface{}) error {
	return &TypeError{pos, fmt.Sprintf(format, args...)}
}

func (c *checker) checkFunc(fn *Func) error {
	c.fn = fn
	sc := &scope{vars: make(map[string]Type)}
	for _, p := range fn.Params {
		if !sc.declare(p.Name, p.Type) {
			return c.errf(fn.Pos, "duplicate parameter %q", p.Name)
		}
	}
	return c.checkBlock(fn.Body, sc)
}

func (c *checker) checkBlock(b *BlockStmt, parent *scope) error {
	sc := &scope{vars: make(map[string]Type), parent: parent}
	for _, s := range b.Stmts {
		if err := c.checkStmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt, sc *scope) error {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Type == TypeArray {
			for _, e := range st.ArrayLit {
				if err := c.checkExprType(e, TypeInt, sc); err != nil {
					return err
				}
			}
		} else if st.Init != nil {
			if err := c.checkExprType(st.Init, st.Type, sc); err != nil {
				return err
			}
		}
		if !sc.declare(st.Name, st.Type) {
			return c.errf(st.Pos, "redeclaration of %q", st.Name)
		}
		return nil
	case *AssignStmt:
		var want Type
		switch tgt := st.Target.(type) {
		case *VarRef:
			t, ok := sc.lookup(tgt.Name)
			if !ok {
				return c.errf(tgt.Pos, "undefined variable %q", tgt.Name)
			}
			if t == TypeArray {
				return c.errf(tgt.Pos, "cannot assign whole array %q", tgt.Name)
			}
			want = t
		case *IndexExpr:
			if err := c.checkIndex(tgt, sc); err != nil {
				return err
			}
			want = TypeInt
		default:
			return c.errf(st.Pos, "invalid assignment target")
		}
		return c.checkExprType(st.Value, want, sc)
	case *IfStmt:
		if err := c.checkExprType(st.Cond, TypeBool, sc); err != nil {
			return err
		}
		if err := c.checkBlock(st.Then, sc); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else, sc)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExprType(st.Cond, TypeBool, sc); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body, sc)
	case *ForStmt:
		inner := &scope{vars: make(map[string]Type), parent: sc}
		if st.Init != nil {
			if err := c.checkStmt(st.Init, inner); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExprType(st.Cond, TypeBool, inner); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post, inner); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body, inner)
	case *ReturnStmt:
		if c.fn.Ret == TypeVoid {
			if st.Value != nil {
				return c.errf(st.Pos, "void function %q returns a value", c.fn.Name)
			}
			return nil
		}
		if st.Value == nil {
			return c.errf(st.Pos, "function %q must return %v", c.fn.Name, c.fn.Ret)
		}
		return c.checkExprType(st.Value, c.fn.Ret, sc)
	case *BreakStmt:
		if c.loop == 0 {
			return c.errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return c.errf(st.Pos, "continue outside loop")
		}
		return nil
	case *AssertStmt:
		return c.checkExprType(st.Cond, TypeBool, sc)
	case *AssumeStmt:
		return c.checkExprType(st.Cond, TypeBool, sc)
	case *BugStmt:
		return nil
	case *ExprStmt:
		_, err := c.typeOf(st.X, sc)
		return err
	case *BlockStmt:
		return c.checkBlock(st, sc)
	}
	return c.errf(s.Position(), "unknown statement")
}

func (c *checker) checkIndex(ix *IndexExpr, sc *scope) error {
	ref, ok := ix.Array.(*VarRef)
	if !ok {
		return c.errf(ix.Pos, "indexing requires an array variable")
	}
	t, found := sc.lookup(ref.Name)
	if !found {
		return c.errf(ref.Pos, "undefined variable %q", ref.Name)
	}
	if t != TypeArray {
		return c.errf(ix.Pos, "%q is not an array", ref.Name)
	}
	return c.checkExprType(ix.Index, TypeInt, sc)
}

// checkExprType checks e against an expected type, which also resolves
// the hole's type from context.
func (c *checker) checkExprType(e Expr, want Type, sc *scope) error {
	if h, ok := e.(*HoleExpr); ok {
		if want != TypeInt && want != TypeBool {
			return c.errf(h.Pos, "__HOLE__ cannot have type %v", want)
		}
		if c.prog.HoleType != TypeVoid && c.prog.HoleType != want {
			return c.errf(h.Pos, "__HOLE__ used at conflicting types")
		}
		c.prog.HoleType = want
		return nil
	}
	got, err := c.typeOf(e, sc)
	if err != nil {
		return err
	}
	if got != want {
		return c.errf(e.Position(), "type mismatch: got %v, want %v", got, want)
	}
	return nil
}

func (c *checker) typeOf(e Expr, sc *scope) (Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		return TypeInt, nil
	case *BoolLit:
		return TypeBool, nil
	case *HoleExpr:
		return TypeVoid, c.errf(ex.Pos, "__HOLE__ in a position with no expected type (use it as a condition or assignment right-hand side)")
	case *VarRef:
		t, ok := sc.lookup(ex.Name)
		if !ok {
			return TypeVoid, c.errf(ex.Pos, "undefined variable %q", ex.Name)
		}
		return t, nil
	case *IndexExpr:
		if err := c.checkIndex(ex, sc); err != nil {
			return TypeVoid, err
		}
		return TypeInt, nil
	case *UnaryExpr:
		if ex.Op == Not {
			if err := c.checkExprType(ex.X, TypeBool, sc); err != nil {
				return TypeVoid, err
			}
			return TypeBool, nil
		}
		if err := c.checkExprType(ex.X, TypeInt, sc); err != nil {
			return TypeVoid, err
		}
		return TypeInt, nil
	case *BinaryExpr:
		switch ex.Op {
		case Plus, Minus, Star, Slash, Percent:
			if err := c.checkExprType(ex.L, TypeInt, sc); err != nil {
				return TypeVoid, err
			}
			if err := c.checkExprType(ex.R, TypeInt, sc); err != nil {
				return TypeVoid, err
			}
			return TypeInt, nil
		case Less, LessEq, Greater, GreaterEq:
			if err := c.checkExprType(ex.L, TypeInt, sc); err != nil {
				return TypeVoid, err
			}
			if err := c.checkExprType(ex.R, TypeInt, sc); err != nil {
				return TypeVoid, err
			}
			return TypeBool, nil
		case Eq, NotEq:
			lt, err := c.typeOf(ex.L, sc)
			if err != nil {
				return TypeVoid, err
			}
			if lt == TypeArray {
				return TypeVoid, c.errf(ex.Pos, "cannot compare arrays")
			}
			if err := c.checkExprType(ex.R, lt, sc); err != nil {
				return TypeVoid, err
			}
			return TypeBool, nil
		case AndAnd, OrOr:
			if err := c.checkExprType(ex.L, TypeBool, sc); err != nil {
				return TypeVoid, err
			}
			if err := c.checkExprType(ex.R, TypeBool, sc); err != nil {
				return TypeVoid, err
			}
			return TypeBool, nil
		}
		return TypeVoid, c.errf(ex.Pos, "unknown binary operator %v", ex.Op)
	case *CallExpr:
		fn, ok := c.prog.Funcs[ex.Name]
		if !ok {
			return TypeVoid, c.errf(ex.Pos, "undefined function %q", ex.Name)
		}
		if len(ex.Args) != len(fn.Params) {
			return TypeVoid, c.errf(ex.Pos, "%q expects %d arguments, got %d", ex.Name, len(fn.Params), len(ex.Args))
		}
		for i, a := range ex.Args {
			if err := c.checkExprType(a, fn.Params[i].Type, sc); err != nil {
				return TypeVoid, err
			}
		}
		return fn.Ret, nil
	}
	return TypeVoid, c.errf(e.Position(), "unknown expression")
}
