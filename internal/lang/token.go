// Package lang implements the mini-C language that subject programs are
// written in: lexer, parser, AST, type checker, and pretty printer.
//
// The language is a small imperative subset of C — int (32-bit semantics)
// and bool scalars, fixed-size int arrays, functions with recursion,
// if/while/for control flow — extended with the repair-specific forms of
// the paper: the patch location __HOLE__ (an expression hole the repair
// system fills), the bug-location marker __BUG__, and assert/assume.
// Program inputs are the parameters of main.
package lang

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Kind classifies tokens.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwInt
	KwBool
	KwVoid
	KwTrue
	KwFalse
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwAssert
	KwAssume
	KwHole // __HOLE__
	KwBug  // __BUG__

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Eq
	NotEq
	Less
	LessEq
	Greater
	GreaterEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	KwInt: "int", KwBool: "bool", KwVoid: "void", KwTrue: "true", KwFalse: "false",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwAssert: "assert", KwAssume: "assume", KwHole: "__HOLE__", KwBug: "__BUG__",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Comma: ",", Semicolon: ";", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Eq: "==", NotEq: "!=", Less: "<", LessEq: "<=", Greater: ">", GreaterEq: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
}

// String returns the spelling of the token kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "bool": KwBool, "void": KwVoid,
	"true": KwTrue, "false": KwFalse,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"assert": KwAssert, "assume": KwAssume,
	"__HOLE__": KwHole, "__BUG__": KwBug,
}

// Token is a lexical token.
type Token struct {
	Kind Kind
	Text string // identifier spelling or number literal
	Pos  Pos
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}
