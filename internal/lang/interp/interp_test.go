package interp

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/lang"
)

func run(t *testing.T, src string, inputs map[string]int64, opts Options) Outcome {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return Run(prog, inputs, opts)
}

func TestArithmeticAndReturn(t *testing.T) {
	out := run(t, `int main(int x) { return x * 2 + 1; }`, map[string]int64{"x": 20}, Options{})
	if out.Err != nil || out.Ret == nil || out.Ret.I != 41 {
		t.Fatalf("got %+v", out)
	}
}

func TestDivByZeroCrash(t *testing.T) {
	out := run(t, `int main(int x) { return 10 / x; }`, map[string]int64{"x": 0}, Options{})
	if !out.Crashed() || out.Err.Kind != ErrDivZero {
		t.Fatalf("got %+v", out)
	}
	out = run(t, `int main(int x) { return 10 % x; }`, map[string]int64{"x": 0}, Options{})
	if !out.Crashed() || out.Err.Kind != ErrRemZero {
		t.Fatalf("got %+v", out)
	}
}

func TestCDivisionSemantics(t *testing.T) {
	out := run(t, `int main(int x) { return x / 2; }`, map[string]int64{"x": -7}, Options{})
	if out.Ret.I != -3 {
		t.Fatalf("-7/2 = %d, want -3 (C truncation)", out.Ret.I)
	}
	out = run(t, `int main(int x) { return x % 2; }`, map[string]int64{"x": -7}, Options{})
	if out.Ret.I != -1 {
		t.Fatalf("-7%%2 = %d, want -1", out.Ret.I)
	}
}

func TestArraysAndBounds(t *testing.T) {
	src := `
int main(int i) {
    int a[3] = {10, 20, 30};
    a[1] = a[1] + 5;
    return a[i];
}`
	out := run(t, src, map[string]int64{"i": 1}, Options{})
	if out.Err != nil || out.Ret.I != 25 {
		t.Fatalf("got %+v", out)
	}
	out = run(t, src, map[string]int64{"i": 3}, Options{})
	if !out.Crashed() || out.Err.Kind != ErrOutOfBounds {
		t.Fatalf("got %+v", out)
	}
	out = run(t, src, map[string]int64{"i": -1}, Options{})
	if !out.Crashed() || out.Err.Kind != ErrOutOfBounds {
		t.Fatalf("got %+v", out)
	}
}

func TestArraysPassedByReference(t *testing.T) {
	src := `
void fill(int a[], int v) {
    a[0] = v;
}
int main(int x) {
    int a[2];
    fill(a, x);
    return a[0];
}`
	out := run(t, src, map[string]int64{"x": 9}, Options{})
	if out.Err != nil || out.Ret.I != 9 {
		t.Fatalf("got %+v", out)
	}
}

func TestLoopsAndControlFlow(t *testing.T) {
	src := `
int main(int n) {
    int s = 0;
    for (int i = 1; i <= n; i = i + 1) {
        if (i == 3) { continue; }
        if (i > 5) { break; }
        s = s + i;
    }
    int j = 0;
    while (j < 3) {
        s = s + 100;
        j = j + 1;
    }
    return s;
}`
	// 1+2+4+5 = 12, + 300 = 312
	out := run(t, src, map[string]int64{"n": 10}, Options{})
	if out.Err != nil || out.Ret.I != 312 {
		t.Fatalf("got %+v", out)
	}
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n <= 1) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(int n) { return fib(n); }`
	out := run(t, src, map[string]int64{"n": 10}, Options{})
	if out.Err != nil || out.Ret.I != 55 {
		t.Fatalf("got %+v", out)
	}
}

func TestAssertAssume(t *testing.T) {
	out := run(t, `void main(int x) { assert(x > 0); }`, map[string]int64{"x": -1}, Options{})
	if !out.Crashed() || out.Err.Kind != ErrAssertFail {
		t.Fatalf("got %+v", out)
	}
	out = run(t, `void main(int x) { assume(x > 0); assert(false); }`, map[string]int64{"x": -1}, Options{})
	if out.Crashed() || out.Err == nil || out.Err.Kind != ErrAssumeViolated {
		t.Fatalf("assume violation must not be a crash: %+v", out)
	}
}

func TestStepLimit(t *testing.T) {
	out := run(t, `void main(int x) { while (true) { x = x + 1; } }`, map[string]int64{"x": 0}, Options{MaxSteps: 1000})
	if out.Err == nil || out.Err.Kind != ErrStepLimit {
		t.Fatalf("got %+v", out)
	}
}

func TestMissingInput(t *testing.T) {
	out := run(t, `void main(int x) { }`, nil, Options{})
	if out.Err == nil || out.Err.Kind != ErrMissingInput {
		t.Fatalf("got %+v", out)
	}
}

func TestNoReturn(t *testing.T) {
	out := run(t, `int main(int x) { if (x > 0) { return 1; } }`, map[string]int64{"x": -1}, Options{})
	if out.Err == nil || out.Err.Kind != ErrNoReturn {
		t.Fatalf("got %+v", out)
	}
}

func TestShortCircuit(t *testing.T) {
	// The division must not execute when the guard is false.
	src := `void main(int x) { bool ok = x != 0 && 10 / x > 1; assert(!ok || x != 0); }`
	out := run(t, src, map[string]int64{"x": 0}, Options{})
	if out.Err != nil {
		t.Fatalf("short-circuit failed: %+v", out)
	}
}

func TestHoleEvaluation(t *testing.T) {
	src := `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 10 / y;
    assert(c >= 0 || c < 0);
}`
	prog := lang.MustParse(src)
	// Patch: y == b with b = 0 → guard true when y == 0.
	hole := expr.Eq(expr.IntVar("y"), expr.IntVar("b"))
	out := Run(prog, map[string]int64{"x": 7, "y": 0}, Options{Hole: hole, HoleParams: expr.Model{"b": 0}})
	if out.Err != nil {
		t.Fatalf("patched run crashed: %+v", out)
	}
	if !out.HitPatch || out.HitBug {
		t.Fatalf("hit flags wrong: %+v", out)
	}
	// Same input without an effective patch: crash at the division.
	out = Run(prog, map[string]int64{"x": 7, "y": 0}, Options{Hole: expr.False()})
	if !out.Crashed() || out.Err.Kind != ErrDivZero || !out.HitBug {
		t.Fatalf("unpatched run: %+v", out)
	}
}

func TestHoleMissing(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { if (__HOLE__) { return; } }`)
	out := Run(prog, map[string]int64{"x": 1}, Options{})
	if out.Err == nil || out.Err.Kind != ErrPatch {
		t.Fatalf("got %+v", out)
	}
}

func TestIntHole(t *testing.T) {
	src := `
int main(int x) {
    int y = __HOLE__;
    return y + 1;
}`
	prog := lang.MustParse(src)
	if prog.HoleType != lang.TypeInt {
		t.Fatalf("hole type %v", prog.HoleType)
	}
	hole := expr.Add(expr.IntVar("x"), expr.IntVar("a"))
	out := Run(prog, map[string]int64{"x": 10}, Options{Hole: hole, HoleParams: expr.Model{"a": 5}})
	if out.Err != nil || out.Ret.I != 16 {
		t.Fatalf("got %+v", out)
	}
}

func TestHolePatchCrash(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { if (__HOLE__) { return; } }`)
	hole := expr.Gt(expr.Div(expr.Int(1), expr.IntVar("x")), expr.Int(0))
	out := Run(prog, map[string]int64{"x": 0}, Options{Hole: hole})
	if out.Err == nil || out.Err.Kind != ErrPatch {
		t.Fatalf("patch division by zero not reported: %+v", out)
	}
}

func TestBoolInput(t *testing.T) {
	out := run(t, `int main(bool b) { if (b) { return 1; } return 0; }`, map[string]int64{"b": 1}, Options{})
	if out.Err != nil || out.Ret.I != 1 {
		t.Fatalf("got %+v", out)
	}
}
