// Package interp is the concrete interpreter for the mini-C language: it
// runs programs on concrete inputs with a C-like run-time error model
// (division by zero, out-of-bounds indexing, assertion failure). The
// fuzzer and the repair validators execute subjects through this package;
// the concolic engine in package concolic mirrors its semantics with
// symbolic shadow state.
package interp

import (
	"fmt"

	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/lang"
)

// ErrKind classifies run-time errors.
type ErrKind uint8

// Run-time error kinds. AssumeViolated is not a bug: the execution is
// silently infeasible.
const (
	ErrNone ErrKind = iota
	ErrDivZero
	ErrRemZero
	ErrOutOfBounds
	ErrAssertFail
	ErrAssumeViolated
	ErrNoReturn
	ErrStepLimit
	ErrMissingInput
	ErrPatch // the injected patch expression failed to evaluate
	// ErrCancelled reports a run aborted by Options.Stop (deadline or
	// cancellation). Like ErrStepLimit it is an engine limit, not a crash.
	ErrCancelled
)

func (k ErrKind) String() string {
	switch k {
	case ErrDivZero:
		return "division by zero"
	case ErrRemZero:
		return "remainder by zero"
	case ErrOutOfBounds:
		return "array index out of bounds"
	case ErrAssertFail:
		return "assertion failure"
	case ErrAssumeViolated:
		return "assumption violated"
	case ErrNoReturn:
		return "function fell off the end without returning a value"
	case ErrStepLimit:
		return "step limit exceeded"
	case ErrMissingInput:
		return "missing input"
	case ErrPatch:
		return "patch evaluation failed"
	case ErrCancelled:
		return "execution cancelled"
	default:
		return "no error"
	}
}

// RuntimeError is a run-time error with its source position.
type RuntimeError struct {
	Kind ErrKind
	Pos  lang.Pos
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("interp: %s: %s: %s", e.Pos, e.Kind, e.Msg)
	}
	return fmt.Sprintf("interp: %s: %s", e.Pos, e.Kind)
}

// IsCrash reports whether the error is an observable bug (as opposed to an
// infeasible assumption or an engine limit).
func (e *RuntimeError) IsCrash() bool {
	switch e.Kind {
	case ErrDivZero, ErrRemZero, ErrOutOfBounds, ErrAssertFail:
		return true
	}
	return false
}

// Value is a mini-C run-time value.
type Value struct {
	Type lang.Type
	I    int64   // scalar value (bools are 0/1)
	Arr  []int64 // array backing store, shared by reference
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds executed statements (default 1 << 20).
	MaxSteps int
	// Hole is the expression evaluated at __HOLE__, over program variable
	// names and patch parameters. Nil means the program must not reach the
	// hole (reaching it is an ErrPatch).
	Hole *expr.Term
	// HoleParams provides values for patch parameters in Hole.
	HoleParams expr.Model
	// CollectCoverage records executed statement positions in
	// Outcome.Coverage (used by spectrum-based fault localization).
	CollectCoverage bool
	// Stop, when non-nil, is polled every few hundred steps; a true
	// return aborts the run with an ErrCancelled error. Callers use it to
	// bound subject execution by a wall-clock deadline.
	Stop func() bool
}

// Outcome is the result of a run.
type Outcome struct {
	// Ret is main's return value; nil for void main or erroneous runs.
	Ret *Value
	// HitPatch reports whether the hole was evaluated.
	HitPatch bool
	// HitBug reports whether a __BUG__ marker was executed.
	HitBug bool
	// Err is nil for clean termination.
	Err *RuntimeError
	// Steps is the number of executed statements.
	Steps int
	// Coverage holds executed statement positions when
	// Options.CollectCoverage is set.
	Coverage map[lang.Pos]bool
}

// Crashed reports whether the run ended in an observable bug.
func (o Outcome) Crashed() bool { return o.Err != nil && o.Err.IsCrash() }

// Run executes prog's main with the given inputs (one per main parameter).
func Run(prog *lang.Program, inputs map[string]int64, opts Options) Outcome {
	if faultinject.ExecPanic() {
		panic(faultinject.PanicMsg)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 20
	}
	in := &interp{prog: prog, opts: opts}
	if opts.CollectCoverage {
		in.coverage = make(map[lang.Pos]bool)
	}
	args := make([]Value, len(prog.Main.Params))
	for i, p := range prog.Main.Params {
		v, ok := inputs[p.Name]
		if !ok {
			return Outcome{Err: &RuntimeError{ErrMissingInput, prog.Main.Pos, p.Name}}
		}
		args[i] = Value{Type: p.Type, I: v}
	}
	ret, sig := in.call(prog.Main, args)
	out := Outcome{HitPatch: in.hitPatch, HitBug: in.hitBug, Steps: in.steps, Coverage: in.coverage}
	switch sig.kind {
	case sigError:
		out.Err = sig.err
	case sigReturn:
		if prog.Main.Ret != lang.TypeVoid {
			out.Ret = &ret
		}
	}
	return out
}

type sigKind uint8

const (
	sigNone sigKind = iota
	sigReturn
	sigBreak
	sigContinue
	sigError
)

type signal struct {
	kind sigKind
	err  *RuntimeError
}

var noSignal = signal{}

func errSignal(kind ErrKind, pos lang.Pos, msg string) signal {
	return signal{kind: sigError, err: &RuntimeError{kind, pos, msg}}
}

type env struct {
	vars   map[string]*Value
	parent *env
}

func (e *env) lookup(name string) *Value {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v
		}
	}
	return nil
}

type interp struct {
	prog     *lang.Program
	opts     Options
	steps    int
	hitPatch bool
	hitBug   bool
	coverage map[lang.Pos]bool
}

func (in *interp) call(fn *lang.Func, args []Value) (Value, signal) {
	e := &env{vars: make(map[string]*Value, len(fn.Params))}
	for i, p := range fn.Params {
		v := args[i]
		e.vars[p.Name] = &v
	}
	ret, sig := in.execBlock(fn.Body, e)
	switch sig.kind {
	case sigReturn:
		return ret, sig
	case sigError:
		return Value{}, sig
	case sigNone:
		if fn.Ret == lang.TypeVoid {
			return Value{}, signal{kind: sigReturn}
		}
		return Value{}, errSignal(ErrNoReturn, fn.Pos, fn.Name)
	default:
		return Value{}, errSignal(ErrNoReturn, fn.Pos, "break/continue escaped function body")
	}
}

func (in *interp) execBlock(b *lang.BlockStmt, parent *env) (Value, signal) {
	e := &env{vars: make(map[string]*Value), parent: parent}
	for _, s := range b.Stmts {
		ret, sig := in.execStmt(s, e)
		if sig.kind != sigNone {
			return ret, sig
		}
	}
	return Value{}, noSignal
}

func (in *interp) tick(pos lang.Pos) signal {
	in.steps++
	if in.steps > in.opts.MaxSteps {
		return errSignal(ErrStepLimit, pos, "")
	}
	if in.opts.Stop != nil && in.steps%256 == 0 && in.opts.Stop() {
		return errSignal(ErrCancelled, pos, "")
	}
	return noSignal
}

func (in *interp) execStmt(s lang.Stmt, e *env) (Value, signal) {
	if sig := in.tick(s.Position()); sig.kind != sigNone {
		return Value{}, sig
	}
	if in.coverage != nil {
		in.coverage[s.Position()] = true
	}
	switch st := s.(type) {
	case *lang.DeclStmt:
		var v Value
		switch {
		case st.Type == lang.TypeArray:
			arr := make([]int64, st.Size)
			for i, el := range st.ArrayLit {
				ev, sig := in.evalExpr(el, e)
				if sig.kind != sigNone {
					return Value{}, sig
				}
				arr[i] = ev.I
			}
			v = Value{Type: lang.TypeArray, Arr: arr}
		case st.Init != nil:
			ev, sig := in.evalExpr(st.Init, e)
			if sig.kind != sigNone {
				return Value{}, sig
			}
			v = Value{Type: st.Type, I: ev.I}
		default:
			v = Value{Type: st.Type}
		}
		e.vars[st.Name] = &v
		return Value{}, noSignal
	case *lang.AssignStmt:
		val, sig := in.evalExpr(st.Value, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		switch tgt := st.Target.(type) {
		case *lang.VarRef:
			slot := e.lookup(tgt.Name)
			slot.I = val.I
		case *lang.IndexExpr:
			arr, idx, sig := in.evalIndex(tgt, e)
			if sig.kind != sigNone {
				return Value{}, sig
			}
			arr[idx] = val.I
		}
		return Value{}, noSignal
	case *lang.IfStmt:
		cond, sig := in.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		if cond.I != 0 {
			return in.execBlock(st.Then, e)
		}
		if st.Else != nil {
			return in.execStmt(st.Else, e)
		}
		return Value{}, noSignal
	case *lang.WhileStmt:
		for {
			if sig := in.tick(st.Pos); sig.kind != sigNone {
				return Value{}, sig
			}
			cond, sig := in.evalExpr(st.Cond, e)
			if sig.kind != sigNone {
				return Value{}, sig
			}
			if cond.I == 0 {
				return Value{}, noSignal
			}
			ret, sig := in.execBlock(st.Body, e)
			switch sig.kind {
			case sigBreak:
				return Value{}, noSignal
			case sigNone, sigContinue:
			default:
				return ret, sig
			}
		}
	case *lang.ForStmt:
		fe := &env{vars: make(map[string]*Value), parent: e}
		if st.Init != nil {
			if _, sig := in.execStmt(st.Init, fe); sig.kind != sigNone {
				return Value{}, sig
			}
		}
		for {
			if sig := in.tick(st.Pos); sig.kind != sigNone {
				return Value{}, sig
			}
			if st.Cond != nil {
				cond, sig := in.evalExpr(st.Cond, fe)
				if sig.kind != sigNone {
					return Value{}, sig
				}
				if cond.I == 0 {
					return Value{}, noSignal
				}
			}
			ret, sig := in.execBlock(st.Body, fe)
			switch sig.kind {
			case sigBreak:
				return Value{}, noSignal
			case sigNone, sigContinue:
			default:
				return ret, sig
			}
			if st.Post != nil {
				if _, sig := in.execStmt(st.Post, fe); sig.kind != sigNone {
					return Value{}, sig
				}
			}
		}
	case *lang.ReturnStmt:
		if st.Value == nil {
			return Value{}, signal{kind: sigReturn}
		}
		v, sig := in.evalExpr(st.Value, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		return v, signal{kind: sigReturn}
	case *lang.BreakStmt:
		return Value{}, signal{kind: sigBreak}
	case *lang.ContinueStmt:
		return Value{}, signal{kind: sigContinue}
	case *lang.AssertStmt:
		cond, sig := in.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		if cond.I == 0 {
			return Value{}, errSignal(ErrAssertFail, st.Pos, "")
		}
		return Value{}, noSignal
	case *lang.AssumeStmt:
		cond, sig := in.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		if cond.I == 0 {
			return Value{}, errSignal(ErrAssumeViolated, st.Pos, "")
		}
		return Value{}, noSignal
	case *lang.BugStmt:
		in.hitBug = true
		return Value{}, noSignal
	case *lang.ExprStmt:
		_, sig := in.evalExpr(st.X, e)
		return Value{}, sig
	case *lang.BlockStmt:
		return in.execBlock(st, e)
	}
	panic(fmt.Sprintf("interp: unknown statement %T", s))
}

func (in *interp) evalIndex(ix *lang.IndexExpr, e *env) ([]int64, int64, signal) {
	ref := ix.Array.(*lang.VarRef)
	arrV := e.lookup(ref.Name)
	idx, sig := in.evalExpr(ix.Index, e)
	if sig.kind != sigNone {
		return nil, 0, sig
	}
	if idx.I < 0 || idx.I >= int64(len(arrV.Arr)) {
		return nil, 0, errSignal(ErrOutOfBounds, ix.Pos,
			fmt.Sprintf("index %d of array %q with length %d", idx.I, ref.Name, len(arrV.Arr)))
	}
	return arrV.Arr, idx.I, noSignal
}

func (in *interp) evalExpr(ex lang.Expr, e *env) (Value, signal) {
	switch x := ex.(type) {
	case *lang.IntLit:
		return Value{Type: lang.TypeInt, I: x.Val}, noSignal
	case *lang.BoolLit:
		v := int64(0)
		if x.Val {
			v = 1
		}
		return Value{Type: lang.TypeBool, I: v}, noSignal
	case *lang.VarRef:
		return *e.lookup(x.Name), noSignal
	case *lang.IndexExpr:
		arr, idx, sig := in.evalIndex(x, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		return Value{Type: lang.TypeInt, I: arr[idx]}, noSignal
	case *lang.HoleExpr:
		return in.evalHole(x, e)
	case *lang.UnaryExpr:
		v, sig := in.evalExpr(x.X, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		if x.Op == lang.Not {
			return Value{Type: lang.TypeBool, I: 1 - v.I}, noSignal
		}
		return Value{Type: lang.TypeInt, I: -v.I}, noSignal
	case *lang.BinaryExpr:
		return in.evalBinary(x, e)
	case *lang.CallExpr:
		fn := in.prog.Funcs[x.Name]
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, sig := in.evalExpr(a, e)
			if sig.kind != sigNone {
				return Value{}, sig
			}
			args[i] = v
		}
		ret, sig := in.call(fn, args)
		if sig.kind == sigError {
			return Value{}, sig
		}
		return ret, noSignal
	}
	panic(fmt.Sprintf("interp: unknown expression %T", ex))
}

// evalHole evaluates the injected patch expression over a snapshot of the
// scalar variables in scope plus the patch parameter values.
func (in *interp) evalHole(h *lang.HoleExpr, e *env) (Value, signal) {
	in.hitPatch = true
	if in.opts.Hole == nil {
		return Value{}, errSignal(ErrPatch, h.Pos, "no patch provided for __HOLE__")
	}
	model := expr.Model{}
	for name, v := range in.opts.HoleParams {
		model[name] = v
	}
	for cur := e; cur != nil; cur = cur.parent {
		for name, v := range cur.vars {
			if _, shadowed := model[name]; shadowed {
				continue
			}
			if v.Type == lang.TypeInt || v.Type == lang.TypeBool {
				model[name] = v.I
			}
		}
	}
	val, err := expr.Eval(in.opts.Hole, model)
	if err != nil {
		return Value{}, errSignal(ErrPatch, h.Pos, err.Error())
	}
	ty := lang.TypeBool
	if in.opts.Hole.Sort == expr.SortInt {
		ty = lang.TypeInt
	} else if val != 0 {
		val = 1
	}
	return Value{Type: ty, I: val}, noSignal
}

func (in *interp) evalBinary(x *lang.BinaryExpr, e *env) (Value, signal) {
	// Short-circuit booleans first.
	if x.Op == lang.AndAnd || x.Op == lang.OrOr {
		l, sig := in.evalExpr(x.L, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		if x.Op == lang.AndAnd && l.I == 0 {
			return Value{Type: lang.TypeBool, I: 0}, noSignal
		}
		if x.Op == lang.OrOr && l.I != 0 {
			return Value{Type: lang.TypeBool, I: 1}, noSignal
		}
		r, sig := in.evalExpr(x.R, e)
		if sig.kind != sigNone {
			return Value{}, sig
		}
		v := int64(0)
		if r.I != 0 {
			v = 1
		}
		return Value{Type: lang.TypeBool, I: v}, noSignal
	}
	l, sig := in.evalExpr(x.L, e)
	if sig.kind != sigNone {
		return Value{}, sig
	}
	r, sig := in.evalExpr(x.R, e)
	if sig.kind != sigNone {
		return Value{}, sig
	}
	b := func(v bool) (Value, signal) {
		i := int64(0)
		if v {
			i = 1
		}
		return Value{Type: lang.TypeBool, I: i}, noSignal
	}
	switch x.Op {
	case lang.Plus:
		return Value{Type: lang.TypeInt, I: l.I + r.I}, noSignal
	case lang.Minus:
		return Value{Type: lang.TypeInt, I: l.I - r.I}, noSignal
	case lang.Star:
		return Value{Type: lang.TypeInt, I: l.I * r.I}, noSignal
	case lang.Slash:
		if r.I == 0 {
			return Value{}, errSignal(ErrDivZero, x.Pos, "")
		}
		return Value{Type: lang.TypeInt, I: l.I / r.I}, noSignal
	case lang.Percent:
		if r.I == 0 {
			return Value{}, errSignal(ErrRemZero, x.Pos, "")
		}
		return Value{Type: lang.TypeInt, I: l.I % r.I}, noSignal
	case lang.Eq:
		return b(l.I == r.I)
	case lang.NotEq:
		return b(l.I != r.I)
	case lang.Less:
		return b(l.I < r.I)
	case lang.LessEq:
		return b(l.I <= r.I)
	case lang.Greater:
		return b(l.I > r.I)
	case lang.GreaterEq:
		return b(l.I >= r.I)
	}
	panic(fmt.Sprintf("interp: unknown binary op %v", x.Op))
}
