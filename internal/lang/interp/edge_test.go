package interp

import (
	"strings"
	"testing"

	"cpr/internal/lang"
)

func TestArrayPartialInit(t *testing.T) {
	out := run(t, `
int main(int x) {
    int a[4] = {7};
    return a[0] + a[1] + a[2] + a[3];
}`, map[string]int64{"x": 0}, Options{})
	if out.Err != nil || out.Ret.I != 7 {
		t.Fatalf("got %+v", out)
	}
}

func TestDefaultValues(t *testing.T) {
	out := run(t, `
int main(int x) {
    int i;
    bool b;
    if (b) { return 100; }
    return i;
}`, map[string]int64{"x": 0}, Options{})
	if out.Err != nil || out.Ret.I != 0 {
		t.Fatalf("zero defaults violated: %+v", out)
	}
}

func TestForBreakContinue(t *testing.T) {
	out := run(t, `
int main(int n) {
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) {
        if (i == 2) { continue; }
        if (i == n) { break; }
        s = s + i;
    }
    return s;
}`, map[string]int64{"n": 5}, Options{})
	// 0+1+3+4 = 8
	if out.Err != nil || out.Ret.I != 8 {
		t.Fatalf("got %+v", out)
	}
}

func TestVoidCallStatement(t *testing.T) {
	out := run(t, `
void bump(int a[]) { a[0] = a[0] + 1; }
int main(int x) {
    int a[1] = {5};
    bump(a);
    bump(a);
    return a[0];
}`, map[string]int64{"x": 0}, Options{})
	if out.Err != nil || out.Ret.I != 7 {
		t.Fatalf("got %+v", out)
	}
}

func TestErrorRendering(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { int a[2]; a[x] = 1; }`)
	out := Run(prog, map[string]int64{"x": 9}, Options{})
	if out.Err == nil {
		t.Fatal("expected OOB")
	}
	msg := out.Err.Error()
	if !strings.Contains(msg, "out of bounds") || !strings.Contains(msg, "index 9") {
		t.Fatalf("error message: %q", msg)
	}
	if ErrDivZero.String() == "" || ErrNone.String() != "no error" {
		t.Fatal("ErrKind strings")
	}
}

func TestCoverageCollection(t *testing.T) {
	prog := lang.MustParse(`
void main(int x) {
    if (x > 0) {
        int a = 1;
    } else {
        int b = 2;
    }
}`)
	out := Run(prog, map[string]int64{"x": 5}, Options{CollectCoverage: true})
	if out.Err != nil || len(out.Coverage) == 0 {
		t.Fatalf("coverage empty: %+v", out)
	}
	// The else-branch statement must not be covered.
	covered4 := false
	for pos := range out.Coverage {
		if pos.Line == 6 {
			covered4 = true
		}
	}
	if covered4 {
		t.Fatal("else branch covered on then-path")
	}
	// Without the option, no coverage is allocated.
	out = Run(prog, map[string]int64{"x": 5}, Options{})
	if out.Coverage != nil {
		t.Fatal("coverage allocated without option")
	}
}

func TestDeepRecursionHitsStepLimit(t *testing.T) {
	out := run(t, `
int down(int n) {
    if (n <= 0) { return 0; }
    return down(n - 1);
}
int main(int n) { return down(n); }`, map[string]int64{"n": 1 << 20}, Options{MaxSteps: 5000})
	if out.Err == nil || out.Err.Kind != ErrStepLimit {
		t.Fatalf("got %+v", out)
	}
}
