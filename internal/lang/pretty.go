package lang

import (
	"fmt"
	"strings"
)

// Format renders the program back to mini-C source. The hole renders as
// __HOLE__ unless holeText is non-empty, in which case that text is
// printed in its place — this is how patched programs are displayed.
func Format(prog *Program, holeText string) string {
	p := &printer{hole: holeText}
	for i, name := range prog.Order {
		if i > 0 {
			p.b.WriteByte('\n')
		}
		p.printFunc(prog.Funcs[name])
	}
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
	hole   string
}

func (p *printer) line(format string, args ...interface{}) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *printer) printFunc(fn *Func) {
	params := make([]string, len(fn.Params))
	for i, pr := range fn.Params {
		if pr.Type == TypeArray {
			params[i] = fmt.Sprintf("int %s[]", pr.Name)
		} else {
			params[i] = fmt.Sprintf("%s %s", pr.Type, pr.Name)
		}
	}
	p.line("%s %s(%s) {", fn.Ret, fn.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range fn.Body.Stmts {
		p.printStmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		switch {
		case st.Type == TypeArray && len(st.ArrayLit) > 0:
			elems := make([]string, len(st.ArrayLit))
			for i, e := range st.ArrayLit {
				elems[i] = p.exprString(e, 0)
			}
			p.line("int %s[%d] = {%s};", st.Name, st.Size, strings.Join(elems, ", "))
		case st.Type == TypeArray:
			p.line("int %s[%d];", st.Name, st.Size)
		case st.Init != nil:
			p.line("%s %s = %s;", st.Type, st.Name, p.exprString(st.Init, 0))
		default:
			p.line("%s %s;", st.Type, st.Name)
		}
	case *AssignStmt:
		p.line("%s = %s;", p.exprString(st.Target, 0), p.exprString(st.Value, 0))
	case *IfStmt:
		p.printIf(st, "")
	case *WhileStmt:
		p.line("while (%s) {", p.exprString(st.Cond, 0))
		p.indent++
		for _, b := range st.Body.Stmts {
			p.printStmt(b)
		}
		p.indent--
		p.line("}")
	case *ForStmt:
		init, post := "", ""
		if st.Init != nil {
			init = p.simpleStmtString(st.Init)
		}
		cond := ""
		if st.Cond != nil {
			cond = p.exprString(st.Cond, 0)
		}
		if st.Post != nil {
			post = p.simpleStmtString(st.Post)
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		for _, b := range st.Body.Stmts {
			p.printStmt(b)
		}
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", p.exprString(st.Value, 0))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *AssertStmt:
		p.line("assert(%s);", p.exprString(st.Cond, 0))
	case *AssumeStmt:
		p.line("assume(%s);", p.exprString(st.Cond, 0))
	case *BugStmt:
		p.line("__BUG__;")
	case *ExprStmt:
		p.line("%s;", p.exprString(st.X, 0))
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, b := range st.Stmts {
			p.printStmt(b)
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) printIf(st *IfStmt, prefix string) {
	p.line("%sif (%s) {", prefix, p.exprString(st.Cond, 0))
	p.indent++
	for _, b := range st.Then.Stmts {
		p.printStmt(b)
	}
	p.indent--
	switch els := st.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.printIf(els, "} else ")
	case *BlockStmt:
		p.line("} else {")
		p.indent++
		for _, b := range els.Stmts {
			p.printStmt(b)
		}
		p.indent--
		p.line("}")
	}
}

func (p *printer) simpleStmtString(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s", st.Type, st.Name, p.exprString(st.Init, 0))
		}
		return fmt.Sprintf("%s %s", st.Type, st.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", p.exprString(st.Target, 0), p.exprString(st.Value, 0))
	}
	return ""
}

// operator precedence for printing; higher binds tighter.
func prec(op Kind) int {
	switch op {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq:
		return 3
	case Less, LessEq, Greater, GreaterEq:
		return 4
	case Plus, Minus:
		return 5
	case Star, Slash, Percent:
		return 6
	}
	return 7
}

func opString(op Kind) string { return op.String() }

func (p *printer) exprString(e Expr, parent int) string {
	switch ex := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", ex.Val)
	case *BoolLit:
		if ex.Val {
			return "true"
		}
		return "false"
	case *VarRef:
		return ex.Name
	case *HoleExpr:
		if p.hole != "" {
			if parent > 0 {
				return "(" + p.hole + ")"
			}
			return p.hole
		}
		return "__HOLE__"
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", p.exprString(ex.Array, 7), p.exprString(ex.Index, 0))
	case *UnaryExpr:
		op := "!"
		if ex.Op == Minus {
			op = "-"
		}
		return op + p.exprString(ex.X, 7)
	case *BinaryExpr:
		pr := prec(ex.Op)
		s := fmt.Sprintf("%s %s %s",
			p.exprString(ex.L, pr),
			opString(ex.Op),
			p.exprString(ex.R, pr+1))
		if pr < parent {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = p.exprString(a, 0)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	}
	return "?"
}
