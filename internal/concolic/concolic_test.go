package concolic

import (
	"math/rand"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/smt"
)

const divSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / y;
    int d = c + x;
}
`

func TestBasicPathConstraint(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    if (x > 3) {
        if (y <= 5) {
            int z = x + y;
        }
    }
}`)
	exec := Execute(prog, map[string]int64{"x": 7, "y": 0}, Options{Patch: expr.False()})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	if len(exec.Branches) != 2 {
		t.Fatalf("branches: %d (%v)", len(exec.Branches), exec.Branches)
	}
	pc := exec.PathConstraint()
	want := expr.And(
		expr.Gt(expr.IntVar("x"), expr.Int(3)),
		expr.Le(expr.IntVar("y"), expr.Int(5)),
	)
	// Evaluate both on a few points to check equivalence shape.
	for _, m := range []expr.Model{{"x": 7, "y": 0}, {"x": 2, "y": 0}, {"x": 9, "y": 9}} {
		a, _ := expr.EvalBool(pc, m)
		b, _ := expr.EvalBool(want, m)
		if a != b {
			t.Fatalf("path constraint %v disagrees with %v at %v", pc, want, m)
		}
	}
}

func TestHoleProducesPatchOutSymbol(t *testing.T) {
	prog := lang.MustParse(divSubject)
	patch := expr.Eq(expr.IntVar("y"), expr.Int(0)) // guard: y == 0
	exec := Execute(prog, map[string]int64{"x": 7, "y": 0}, Options{Patch: patch})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	if !exec.HitPatch() || exec.HitBug() {
		t.Fatalf("hits: patch=%v bug=%v", exec.HitPatch(), exec.HitBug())
	}
	if len(exec.HoleHits) != 1 {
		t.Fatalf("hole hits: %d", len(exec.HoleHits))
	}
	h := exec.HoleHits[0]
	if h.Out.Name != PatchOutPrefix+"0" {
		t.Fatalf("out symbol: %v", h.Out)
	}
	if h.Snapshot["x"] != expr.IntVar("x") || h.Snapshot["y"] != expr.IntVar("y") {
		t.Fatalf("snapshot: %v", h.Snapshot)
	}
	// The branch on the hole must mention the patch-out symbol.
	found := false
	for _, b := range exec.Branches {
		if b.OnPatch {
			found = true
		}
	}
	if !found {
		t.Fatal("no branch mentions the patch output")
	}
}

func TestCrashRecordsImplicitBranch(t *testing.T) {
	prog := lang.MustParse(divSubject)
	exec := Execute(prog, map[string]int64{"x": 7, "y": 0}, Options{Patch: expr.False()})
	if !exec.Crashed() || exec.Err.Kind != interp.ErrDivZero {
		t.Fatalf("expected div-by-zero crash, got %+v", exec.Err)
	}
	if !exec.HitBug() {
		t.Fatal("bug location not hit")
	}
	// The last branch must be the zero-divisor condition y == 0.
	last := exec.Branches[len(exec.Branches)-1]
	wantCond := expr.Eq(expr.IntVar("y"), expr.Int(0))
	if expr.Simplify(last.Cond) != expr.Simplify(wantCond) {
		t.Fatalf("last branch %v, want %v", last.Cond, wantCond)
	}
}

func TestShortCircuitBranches(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    if (x > 0 && y > 0) {
        int z = 1;
    }
}`)
	exec := Execute(prog, map[string]int64{"x": 1, "y": -1}, Options{})
	// Two branches: x > 0 (taken), y > 0 (not taken) and the if itself is
	// concrete after short-circuit evaluation.
	if len(exec.Branches) != 2 {
		t.Fatalf("branches: %v", exec.Branches)
	}
	// x <= 0 path: only one branch recorded (y never evaluated).
	exec = Execute(prog, map[string]int64{"x": -1, "y": 5}, Options{})
	if len(exec.Branches) != 1 {
		t.Fatalf("short-circuit failed: %v", exec.Branches)
	}
}

func TestMulConcretization(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    int p = x * y;
    if (p > 10) {
        int z = 1;
    }
}`)
	exec := Execute(prog, map[string]int64{"x": 3, "y": 4}, Options{})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	// One pin (y = 4) and one branch (3... x*4 > 10 as taken).
	var pins, branches int
	for _, b := range exec.Branches {
		if b.Pin {
			pins++
		} else {
			branches++
		}
	}
	if pins != 1 || branches != 1 {
		t.Fatalf("pins=%d branches=%d (%v)", pins, branches, exec.Branches)
	}
	// Path constraint must hold on the concrete input.
	ok, err := expr.EvalBool(exec.PathConstraint(), expr.Model{"x": 3, "y": 4})
	if err != nil || !ok {
		t.Fatalf("path constraint fails on its own input: %v %v", ok, err)
	}
}

func TestArrayIndexBranches(t *testing.T) {
	prog := lang.MustParse(`
void main(int i) {
    int a[3] = {1, 2, 3};
    int v = a[i];
}`)
	exec := Execute(prog, map[string]int64{"i": 1}, Options{})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	// In-bounds branch + index pin.
	if len(exec.Branches) < 2 {
		t.Fatalf("branches: %v", exec.Branches)
	}
	exec = Execute(prog, map[string]int64{"i": 5}, Options{})
	if !exec.Crashed() || exec.Err.Kind != interp.ErrOutOfBounds {
		t.Fatalf("expected OOB, got %+v", exec.Err)
	}
	// Flipping the last branch should describe an in-bounds path.
	last := exec.Branches[len(exec.Branches)-1]
	ok, _ := expr.EvalBool(expr.Not(last.Cond), expr.Model{"i": 1})
	if !ok {
		t.Fatalf("negated OOB condition should admit i=1: %v", last.Cond)
	}
}

func TestAssumeAndAssertBranches(t *testing.T) {
	prog := lang.MustParse(`
void main(int x) {
    assume(x >= 0);
    assert(x < 100);
}`)
	exec := Execute(prog, map[string]int64{"x": 5}, Options{})
	if exec.Err != nil || len(exec.Branches) != 2 {
		t.Fatalf("got %+v %v", exec.Err, exec.Branches)
	}
	exec = Execute(prog, map[string]int64{"x": -1}, Options{})
	if exec.Err == nil || exec.Err.Kind != interp.ErrAssumeViolated {
		t.Fatalf("got %+v", exec.Err)
	}
	exec = Execute(prog, map[string]int64{"x": 200}, Options{})
	if !exec.Crashed() || exec.Err.Kind != interp.ErrAssertFail {
		t.Fatalf("got %+v", exec.Err)
	}
}

// TestReplayProperty: any model of the path constraint, executed
// concretely, follows the same branch sequence. This is the soundness
// property of concolic execution.
func TestReplayProperty(t *testing.T) {
	src := `
int f(int a, int b) {
    if (a > b) { return a - b; }
    return b - a;
}
void main(int x, int y) {
    int d = f(x, y);
    if (d > 3) {
        if (x % 2 == 0) {
            int z = d * 2;
        }
    } else {
        while (d > 0) {
            d = d - 1;
        }
    }
    assert(d >= 0);
}`
	prog := lang.MustParse(src)
	solver := smt.NewSolver(smt.Options{})
	bounds := map[string]interval.Interval{
		"x": interval.New(-50, 50),
		"y": interval.New(-50, 50),
	}
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 40; iter++ {
		in := map[string]int64{
			"x": int64(r.Intn(101) - 50),
			"y": int64(r.Intn(101) - 50),
		}
		exec := Execute(prog, in, Options{})
		if exec.Err != nil {
			t.Fatalf("unexpected error: %v", exec.Err)
		}
		// Solve the path constraint for a fresh model.
		res, err := solver.Check(exec.PathConstraint(), bounds)
		if err != nil {
			t.Fatalf("solver: %v", err)
		}
		if res.Status != smt.Sat {
			t.Fatalf("own path constraint unsat: %v", exec.PathConstraint())
		}
		in2 := map[string]int64{"x": res.Model["x"], "y": res.Model["y"]}
		exec2 := Execute(prog, in2, Options{})
		if len(exec2.Branches) != len(exec.Branches) {
			t.Fatalf("replay diverged: %d vs %d branches for %v vs %v",
				len(exec.Branches), len(exec2.Branches), in, in2)
		}
		for i := range exec.Branches {
			if exec.Branches[i].Cond != exec2.Branches[i].Cond {
				t.Fatalf("branch %d differs: %v vs %v", i, exec.Branches[i].Cond, exec2.Branches[i].Cond)
			}
		}
	}
}

func TestFlips(t *testing.T) {
	prog := lang.MustParse(divSubject)
	patch := expr.Eq(expr.IntVar("y"), expr.Int(0))
	exec := Execute(prog, map[string]int64{"x": 7, "y": 0}, Options{Patch: patch})
	flips := Flips(exec, 0)
	if len(flips) == 0 {
		t.Fatal("no flips")
	}
	// The first flip negates the patch branch: ¬(patch!out!0).
	f := flips[0]
	if !f.OnPatch || len(f.HoleHits) != 1 {
		t.Fatalf("first flip: %+v", f)
	}
	if f.Score() <= 0 {
		t.Fatalf("score: %d", f.Score())
	}
	// Flip constraints must include prefix and negated branch.
	c := f.Constraint()
	if c.IsConst() {
		t.Fatalf("flip constraint degenerate: %v", c)
	}
	// Deeper flips keep earlier conditions in the prefix.
	for _, fl := range flips {
		if len(fl.Prefix) != fl.Depth {
			t.Fatalf("prefix length %d != depth %d", len(fl.Prefix), fl.Depth)
		}
	}
}

func TestFlipsMarkPins(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    int p = x * y;
    if (p > 10) { int z = 1; }
}`)
	exec := Execute(prog, map[string]int64{"x": 3, "y": 4}, Options{})
	var pinFlips, structural int
	for _, f := range Flips(exec, 0) {
		if exec.Branches[f.Depth].Pin != f.PinFlip {
			t.Fatalf("PinFlip flag wrong at depth %d", f.Depth)
		}
		if f.PinFlip {
			pinFlips++
			// Pin flips rank below structural flips of the same parent.
			if f.Score() >= (Flip{Depth: f.Depth}).Score() {
				t.Fatalf("pin flip not penalized: %d", f.Score())
			}
		} else {
			structural++
		}
	}
	if pinFlips == 0 || structural == 0 {
		t.Fatalf("expected both pin and structural flips, got %d/%d", pinFlips, structural)
	}
}

func TestPathKeyStable(t *testing.T) {
	a := []*expr.Term{expr.Gt(expr.IntVar("x"), expr.Int(0))}
	b := []*expr.Term{expr.Gt(expr.IntVar("x"), expr.Int(0))}
	if PathKey(a) != PathKey(b) {
		t.Fatal("equal prefixes hash differently")
	}
	c := []*expr.Term{expr.Le(expr.IntVar("x"), expr.Int(0))}
	if PathKey(a) == PathKey(c) {
		t.Fatal("different prefixes hash equal")
	}
}

func TestMaxBranchesBudget(t *testing.T) {
	prog := lang.MustParse(`
void main(int n) {
    int i = 0;
    while (i < n) {
        i = i + 1;
    }
}`)
	exec := Execute(prog, map[string]int64{"n": 100}, Options{MaxBranches: 10})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	if len(exec.Branches) > 10 {
		t.Fatalf("branch budget exceeded: %d", len(exec.Branches))
	}
}

func TestLoopUnrollsInPathConstraint(t *testing.T) {
	prog := lang.MustParse(`
void main(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + i;
    }
    assert(s >= 0);
}`)
	exec := Execute(prog, map[string]int64{"n": 3}, Options{})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	// 3 taken iterations + 1 exit; the assert condition is concrete
	// (s does not depend on the input) and is not recorded.
	if len(exec.Branches) != 4 {
		t.Fatalf("branches: %d (%v)", len(exec.Branches), exec.Branches)
	}
}
