// Package concolic implements concolic execution of mini-C programs: a
// concrete run that maintains symbolic shadow state over the program
// inputs and the patch output, recording the path constraint.
//
// This is the paper's core machinery (§3.4): every branch on a symbolic
// condition contributes a path-constraint element; the patch location
// evaluates to a fresh symbol ρ!out whose concrete value comes from the
// currently selected patch, so one execution supports reasoning about the
// entire patch pool (the first-order encoding of §1); the hole and bug
// locations snapshot the symbolic state, which is how patch formulas ψρ
// and instantiated specifications σ are later constructed.
//
// Nonlinear operations between two symbolic values (x·y, x/y, x%y) pin the
// right operand to its concrete value and record the pin in the path
// constraint, in the DART/CUTE tradition, keeping all solver queries
// quasi-linear.
package concolic

import (
	"fmt"

	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
)

// CVal is a concolic value: a concrete scalar (or array) plus an optional
// symbolic shadow term over input symbols and patch-output symbols. A nil
// Sym means the value is the concrete constant.
type CVal struct {
	Type lang.Type
	I    int64
	Sym  *expr.Term
	Arr  []CVal // array cells (scalar CVals); indices must concretize, cells stay symbolic
}

func (v CVal) symbolic() *expr.Term {
	if v.Sym != nil {
		return v.Sym
	}
	if v.Type == lang.TypeBool {
		return expr.Bool(v.I != 0)
	}
	return expr.Int(v.I)
}

func (v CVal) isSymbolic() bool { return v.Sym != nil }

// Branch is one element of the path constraint.
type Branch struct {
	// Cond is the constraint as taken by the concrete execution (already
	// oriented: the negation has been applied for false branches).
	Cond *expr.Term
	// Site is the source position of the branch.
	Site lang.Pos
	// OnPatch reports whether the condition mentions a patch-output
	// symbol (flipping such branches explores the patch's influence).
	OnPatch bool
	// Pin marks concretization constraints (DART-style operand pinning);
	// pins are not flipped during generational search.
	Pin bool
}

// HoleHit records one evaluation of __HOLE__.
type HoleHit struct {
	// Out is the fresh symbol standing for the patch output.
	Out *expr.Term
	// Snapshot maps in-scope scalar variable names to their symbolic
	// values at the hit; ψρ instantiates patch expressions over it.
	Snapshot map[string]*expr.Term
	// Concrete is the corresponding concrete state (patch evaluation).
	Concrete expr.Model
	// AtBranch is the number of path-constraint elements recorded before
	// this hit; a flip at depth ≥ AtBranch keeps the hit in its prefix.
	AtBranch int
}

// BugHit records one execution of a __BUG__ marker.
type BugHit struct {
	// Snapshot maps in-scope scalar variable names to their symbolic
	// values at the marker; specifications are instantiated over it.
	Snapshot map[string]*expr.Term
	// Concrete is the corresponding concrete state.
	Concrete expr.Model
	// AtBranch is the number of path-constraint elements recorded before
	// this hit.
	AtBranch int
}

// Execution is the result of a concolic run.
type Execution struct {
	// Input is the concrete input the program ran on.
	Input map[string]int64
	// Branches is the path constraint in execution order.
	Branches []Branch
	// HoleHits and BugHits record patch/bug location events in order.
	HoleHits []HoleHit
	BugHits  []BugHit
	// Err is nil for clean termination; assume violations and crashes are
	// reported with interp's error kinds.
	Err *interp.RuntimeError
	// Ret is main's return value when it returned one.
	Ret *CVal
	// Steps counts executed statements.
	Steps int
}

// HitPatch reports whether the patch location was exercised.
func (e *Execution) HitPatch() bool { return len(e.HoleHits) > 0 }

// HitBug reports whether the bug location was exercised.
func (e *Execution) HitBug() bool { return len(e.BugHits) > 0 }

// Crashed reports whether the run ended in an observable bug.
func (e *Execution) Crashed() bool { return e.Err != nil && e.Err.IsCrash() }

// PathConstraint returns the conjunction of all branch conditions.
func (e *Execution) PathConstraint() *expr.Term {
	conds := make([]*expr.Term, len(e.Branches))
	for i, b := range e.Branches {
		conds[i] = b.Cond
	}
	return expr.And(conds...)
}

// Options configures a concolic run.
type Options struct {
	// Patch is the concrete patch expression evaluated at __HOLE__, over
	// program variables and parameters. Nil: reaching the hole errors.
	Patch *expr.Term
	// PatchParams provides parameter values for Patch.
	PatchParams expr.Model
	// MaxSteps bounds executed statements (default 1 << 20).
	MaxSteps int
	// MaxBranches bounds recorded path-constraint elements (default 4096);
	// beyond it the run continues concretely without recording.
	MaxBranches int
	// Stop, when non-nil, is polled every few hundred steps; a true
	// return aborts the run with an interp.ErrCancelled error. The repair
	// engine uses it to bound one concolic execution by the run deadline.
	Stop func() bool
}

// Execute runs prog concolically on the given input.
func Execute(prog *lang.Program, input map[string]int64, opts Options) *Execution {
	if faultinject.ExecPanic() {
		panic(faultinject.PanicMsg)
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 20
	}
	if opts.MaxBranches == 0 {
		opts.MaxBranches = 4096
	}
	vm := &vm{prog: prog, opts: opts, exec: &Execution{Input: input}}
	args := make([]CVal, len(prog.Main.Params))
	for i, p := range prog.Main.Params {
		v, ok := input[p.Name]
		if !ok {
			vm.exec.Err = &interp.RuntimeError{Kind: interp.ErrMissingInput, Pos: prog.Main.Pos, Msg: p.Name}
			return vm.exec
		}
		// Inputs are the symbolic sources; their symbols are their names.
		args[i] = CVal{Type: p.Type, I: v, Sym: langVar(p.Name, p.Type)}
	}
	ret, sig := vm.call(prog.Main, args)
	vm.exec.Steps = vm.steps
	switch sig.kind {
	case sigError:
		vm.exec.Err = sig.err
	case sigReturn:
		if prog.Main.Ret != lang.TypeVoid {
			vm.exec.Ret = &ret
		}
	}
	return vm.exec
}

func langVar(name string, t lang.Type) *expr.Term {
	if t == lang.TypeBool {
		return expr.BoolVar(name)
	}
	return expr.IntVar(name)
}

type sigKind uint8

const (
	sigNone sigKind = iota
	sigReturn
	sigBreak
	sigContinue
	sigError
)

type signal struct {
	kind sigKind
	err  *interp.RuntimeError
}

var noSignal = signal{}

func errSignal(kind interp.ErrKind, pos lang.Pos, msg string) signal {
	return signal{kind: sigError, err: &interp.RuntimeError{Kind: kind, Pos: pos, Msg: msg}}
}

type env struct {
	vars   map[string]*CVal
	parent *env
}

func (e *env) lookup(name string) *CVal {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v
		}
	}
	return nil
}

type vm struct {
	prog  *lang.Program
	opts  Options
	exec  *Execution
	steps int
	holes int // fresh patch-output counter
}

// record appends a path-constraint element unless the branch budget is
// exhausted or the condition is trivially concrete.
func (vm *vm) record(cond *expr.Term, site lang.Pos, pin bool) {
	if cond.IsConst() {
		return
	}
	if len(vm.exec.Branches) >= vm.opts.MaxBranches {
		return
	}
	vm.exec.Branches = append(vm.exec.Branches, Branch{
		Cond:    cond,
		Site:    site,
		OnPatch: mentionsPatchOut(cond),
		Pin:     pin,
	})
}

// PatchOutPrefix names the fresh symbols standing for patch outputs.
const PatchOutPrefix = "patch!out!"

func mentionsPatchOut(t *expr.Term) bool {
	if t.Op == expr.OpVar {
		return len(t.Name) > len(PatchOutPrefix) && t.Name[:len(PatchOutPrefix)] == PatchOutPrefix
	}
	for _, a := range t.Args {
		if mentionsPatchOut(a) {
			return true
		}
	}
	return false
}

// branch records the condition of a control-flow decision oriented by the
// concretely taken direction.
func (vm *vm) branch(cond CVal, site lang.Pos) bool {
	taken := cond.I != 0
	if cond.isSymbolic() {
		c := cond.Sym
		if !taken {
			c = expr.Not(c)
		}
		vm.record(c, site, false)
	}
	return taken
}

func (vm *vm) call(fn *lang.Func, args []CVal) (CVal, signal) {
	e := &env{vars: make(map[string]*CVal, len(fn.Params))}
	for i, p := range fn.Params {
		v := args[i]
		e.vars[p.Name] = &v
	}
	ret, sig := vm.execBlock(fn.Body, e)
	switch sig.kind {
	case sigReturn:
		return ret, sig
	case sigError:
		return CVal{}, sig
	case sigNone:
		if fn.Ret == lang.TypeVoid {
			return CVal{}, signal{kind: sigReturn}
		}
		return CVal{}, errSignal(interp.ErrNoReturn, fn.Pos, fn.Name)
	default:
		return CVal{}, errSignal(interp.ErrNoReturn, fn.Pos, "break/continue escaped function body")
	}
}

func (vm *vm) execBlock(b *lang.BlockStmt, parent *env) (CVal, signal) {
	e := &env{vars: make(map[string]*CVal), parent: parent}
	for _, s := range b.Stmts {
		ret, sig := vm.execStmt(s, e)
		if sig.kind != sigNone {
			return ret, sig
		}
	}
	return CVal{}, noSignal
}

func (vm *vm) tick(pos lang.Pos) signal {
	vm.steps++
	if vm.steps > vm.opts.MaxSteps {
		return errSignal(interp.ErrStepLimit, pos, "")
	}
	if vm.opts.Stop != nil && vm.steps%256 == 0 && vm.opts.Stop() {
		return errSignal(interp.ErrCancelled, pos, "")
	}
	return noSignal
}

func (vm *vm) execStmt(s lang.Stmt, e *env) (CVal, signal) {
	if sig := vm.tick(s.Position()); sig.kind != sigNone {
		return CVal{}, sig
	}
	switch st := s.(type) {
	case *lang.DeclStmt:
		var v CVal
		switch {
		case st.Type == lang.TypeArray:
			arr := make([]CVal, st.Size)
			for i := range arr {
				arr[i] = CVal{Type: lang.TypeInt}
			}
			for i, el := range st.ArrayLit {
				ev, sig := vm.evalExpr(el, e)
				if sig.kind != sigNone {
					return CVal{}, sig
				}
				arr[i] = CVal{Type: lang.TypeInt, I: ev.I, Sym: ev.Sym}
			}
			v = CVal{Type: lang.TypeArray, Arr: arr}
		case st.Init != nil:
			ev, sig := vm.evalExpr(st.Init, e)
			if sig.kind != sigNone {
				return CVal{}, sig
			}
			v = CVal{Type: st.Type, I: ev.I, Sym: ev.Sym}
		default:
			v = CVal{Type: st.Type}
		}
		e.vars[st.Name] = &v
		return CVal{}, noSignal
	case *lang.AssignStmt:
		val, sig := vm.evalExpr(st.Value, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		switch tgt := st.Target.(type) {
		case *lang.VarRef:
			slot := e.lookup(tgt.Name)
			slot.I, slot.Sym = val.I, val.Sym
		case *lang.IndexExpr:
			arr, idx, sig := vm.evalIndex(tgt, e)
			if sig.kind != sigNone {
				return CVal{}, sig
			}
			arr[idx] = CVal{Type: lang.TypeInt, I: val.I, Sym: val.Sym}
		}
		return CVal{}, noSignal
	case *lang.IfStmt:
		cond, sig := vm.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		if vm.branch(cond, st.Pos) {
			return vm.execBlock(st.Then, e)
		}
		if st.Else != nil {
			return vm.execStmt(st.Else, e)
		}
		return CVal{}, noSignal
	case *lang.WhileStmt:
		for {
			if sig := vm.tick(st.Pos); sig.kind != sigNone {
				return CVal{}, sig
			}
			cond, sig := vm.evalExpr(st.Cond, e)
			if sig.kind != sigNone {
				return CVal{}, sig
			}
			if !vm.branch(cond, st.Pos) {
				return CVal{}, noSignal
			}
			ret, sig2 := vm.execBlock(st.Body, e)
			switch sig2.kind {
			case sigBreak:
				return CVal{}, noSignal
			case sigNone, sigContinue:
			default:
				return ret, sig2
			}
		}
	case *lang.ForStmt:
		fe := &env{vars: make(map[string]*CVal), parent: e}
		if st.Init != nil {
			if _, sig := vm.execStmt(st.Init, fe); sig.kind != sigNone {
				return CVal{}, sig
			}
		}
		for {
			if sig := vm.tick(st.Pos); sig.kind != sigNone {
				return CVal{}, sig
			}
			if st.Cond != nil {
				cond, sig := vm.evalExpr(st.Cond, fe)
				if sig.kind != sigNone {
					return CVal{}, sig
				}
				if !vm.branch(cond, st.Pos) {
					return CVal{}, noSignal
				}
			}
			ret, sig := vm.execBlock(st.Body, fe)
			switch sig.kind {
			case sigBreak:
				return CVal{}, noSignal
			case sigNone, sigContinue:
			default:
				return ret, sig
			}
			if st.Post != nil {
				if _, sig := vm.execStmt(st.Post, fe); sig.kind != sigNone {
					return CVal{}, sig
				}
			}
		}
	case *lang.ReturnStmt:
		if st.Value == nil {
			return CVal{}, signal{kind: sigReturn}
		}
		v, sig := vm.evalExpr(st.Value, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		return v, signal{kind: sigReturn}
	case *lang.BreakStmt:
		return CVal{}, signal{kind: sigBreak}
	case *lang.ContinueStmt:
		return CVal{}, signal{kind: sigContinue}
	case *lang.AssertStmt:
		cond, sig := vm.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		if !vm.branch(cond, st.Pos) {
			return CVal{}, errSignal(interp.ErrAssertFail, st.Pos, "")
		}
		return CVal{}, noSignal
	case *lang.AssumeStmt:
		cond, sig := vm.evalExpr(st.Cond, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		if !vm.branch(cond, st.Pos) {
			return CVal{}, errSignal(interp.ErrAssumeViolated, st.Pos, "")
		}
		return CVal{}, noSignal
	case *lang.BugStmt:
		vm.exec.BugHits = append(vm.exec.BugHits, BugHit{
			Snapshot: symbolicSnapshot(e),
			Concrete: concreteSnapshot(e),
			AtBranch: len(vm.exec.Branches),
		})
		return CVal{}, noSignal
	case *lang.ExprStmt:
		_, sig := vm.evalExpr(st.X, e)
		return CVal{}, sig
	case *lang.BlockStmt:
		return vm.execBlock(st, e)
	}
	panic(fmt.Sprintf("concolic: unknown statement %T", s))
}

// symbolicSnapshot captures the symbolic values of all scalar variables in
// scope (innermost declaration wins).
func symbolicSnapshot(e *env) map[string]*expr.Term {
	snap := make(map[string]*expr.Term)
	for cur := e; cur != nil; cur = cur.parent {
		for name, v := range cur.vars {
			if _, shadowed := snap[name]; shadowed {
				continue
			}
			if v.Type == lang.TypeInt || v.Type == lang.TypeBool {
				snap[name] = v.symbolic()
			}
		}
	}
	return snap
}

func concreteSnapshot(e *env) expr.Model {
	snap := expr.Model{}
	for cur := e; cur != nil; cur = cur.parent {
		for name, v := range cur.vars {
			if _, shadowed := snap[name]; shadowed {
				continue
			}
			if v.Type == lang.TypeInt || v.Type == lang.TypeBool {
				snap[name] = v.I
			}
		}
	}
	return snap
}

func (vm *vm) evalIndex(ix *lang.IndexExpr, e *env) ([]CVal, int64, signal) {
	ref := ix.Array.(*lang.VarRef)
	arrV := e.lookup(ref.Name)
	idx, sig := vm.evalExpr(ix.Index, e)
	if sig.kind != sigNone {
		return nil, 0, sig
	}
	n := int64(len(arrV.Arr))
	inBounds := idx.I >= 0 && idx.I < n
	if idx.isSymbolic() {
		// The bounds check is an implicit branch; flipping it lets the
		// explorer generate out-of-bounds (bug-reaching) inputs.
		c := expr.And(expr.Ge(idx.Sym, expr.Int(0)), expr.Lt(idx.Sym, expr.Int(n)))
		if !inBounds {
			c = expr.Not(c)
		}
		vm.record(c, ix.Pos, false)
	}
	if !inBounds {
		return nil, 0, errSignal(interp.ErrOutOfBounds, ix.Pos,
			fmt.Sprintf("index %d of array %q with length %d", idx.I, ref.Name, len(arrV.Arr)))
	}
	if idx.isSymbolic() {
		// Array cells are concrete: pin the index so the symbolic state
		// stays consistent with the concrete lookup.
		vm.record(expr.Eq(idx.Sym, expr.Int(idx.I)), ix.Pos, true)
	}
	return arrV.Arr, idx.I, noSignal
}

func (vm *vm) evalExpr(ex lang.Expr, e *env) (CVal, signal) {
	switch x := ex.(type) {
	case *lang.IntLit:
		return CVal{Type: lang.TypeInt, I: x.Val}, noSignal
	case *lang.BoolLit:
		v := int64(0)
		if x.Val {
			v = 1
		}
		return CVal{Type: lang.TypeBool, I: v}, noSignal
	case *lang.VarRef:
		return *e.lookup(x.Name), noSignal
	case *lang.IndexExpr:
		arr, idx, sig := vm.evalIndex(x, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		return arr[idx], noSignal
	case *lang.HoleExpr:
		return vm.evalHole(x, e)
	case *lang.UnaryExpr:
		v, sig := vm.evalExpr(x.X, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		if x.Op == lang.Not {
			out := CVal{Type: lang.TypeBool, I: 1 - v.I}
			if v.isSymbolic() {
				out.Sym = expr.Not(v.Sym)
			}
			return out, noSignal
		}
		out := CVal{Type: lang.TypeInt, I: -v.I}
		if v.isSymbolic() {
			out.Sym = expr.Neg(v.Sym)
		}
		return out, noSignal
	case *lang.BinaryExpr:
		return vm.evalBinary(x, e)
	case *lang.CallExpr:
		fn := vm.prog.Funcs[x.Name]
		args := make([]CVal, len(x.Args))
		for i, a := range x.Args {
			v, sig := vm.evalExpr(a, e)
			if sig.kind != sigNone {
				return CVal{}, sig
			}
			args[i] = v
		}
		ret, sig := vm.call(fn, args)
		if sig.kind == sigError {
			return CVal{}, sig
		}
		return ret, noSignal
	}
	panic(fmt.Sprintf("concolic: unknown expression %T", ex))
}

// evalHole evaluates the patch location: the symbolic value is a fresh
// patch-output symbol; the concrete value comes from the selected patch.
func (vm *vm) evalHole(h *lang.HoleExpr, e *env) (CVal, signal) {
	if vm.opts.Patch == nil {
		return CVal{}, errSignal(interp.ErrPatch, h.Pos, "no patch provided for __HOLE__")
	}
	concrete := concreteSnapshot(e)
	model := expr.Model{}
	for k, v := range concrete {
		model[k] = v
	}
	for k, v := range vm.opts.PatchParams {
		model[k] = v
	}
	val, err := expr.Eval(vm.opts.Patch, model)
	if err != nil {
		return CVal{}, errSignal(interp.ErrPatch, h.Pos, err.Error())
	}
	ty := lang.TypeBool
	if vm.opts.Patch.Sort == expr.SortInt {
		ty = lang.TypeInt
	} else if val != 0 {
		val = 1
	}
	out := expr.Var(fmt.Sprintf("%s%d", PatchOutPrefix, vm.holes), sortOf(ty))
	vm.holes++
	vm.exec.HoleHits = append(vm.exec.HoleHits, HoleHit{
		Out:      out,
		Snapshot: symbolicSnapshot(e),
		Concrete: concrete,
		AtBranch: len(vm.exec.Branches),
	})
	return CVal{Type: ty, I: val, Sym: out}, noSignal
}

func sortOf(t lang.Type) expr.Sort {
	if t == lang.TypeBool {
		return expr.SortBool
	}
	return expr.SortInt
}

func (vm *vm) evalBinary(x *lang.BinaryExpr, e *env) (CVal, signal) {
	// Short-circuit booleans branch on the left operand, in the concolic
	// tradition: a && b is control flow, not a pure expression.
	if x.Op == lang.AndAnd || x.Op == lang.OrOr {
		l, sig := vm.evalExpr(x.L, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		lTrue := vm.branch(l, x.Pos)
		if x.Op == lang.AndAnd && !lTrue {
			return CVal{Type: lang.TypeBool, I: 0}, noSignal
		}
		if x.Op == lang.OrOr && lTrue {
			return CVal{Type: lang.TypeBool, I: 1}, noSignal
		}
		r, sig := vm.evalExpr(x.R, e)
		if sig.kind != sigNone {
			return CVal{}, sig
		}
		out := CVal{Type: lang.TypeBool, I: 0}
		if r.I != 0 {
			out.I = 1
		}
		out.Sym = r.Sym
		return out, noSignal
	}
	l, sig := vm.evalExpr(x.L, e)
	if sig.kind != sigNone {
		return CVal{}, sig
	}
	r, sig := vm.evalExpr(x.R, e)
	if sig.kind != sigNone {
		return CVal{}, sig
	}
	switch x.Op {
	case lang.Plus, lang.Minus, lang.Star:
		out := CVal{Type: lang.TypeInt}
		switch x.Op {
		case lang.Plus:
			out.I = l.I + r.I
		case lang.Minus:
			out.I = l.I - r.I
		case lang.Star:
			out.I = l.I * r.I
		}
		if l.isSymbolic() || r.isSymbolic() {
			ls, rs := l.symbolic(), r.symbolic()
			if x.Op == lang.Star && l.isSymbolic() && r.isSymbolic() {
				// DART-style concretization: pin the right operand.
				vm.record(expr.Eq(rs, expr.Int(r.I)), x.Pos, true)
				rs = expr.Int(r.I)
			}
			switch x.Op {
			case lang.Plus:
				out.Sym = expr.Add(ls, rs)
			case lang.Minus:
				out.Sym = expr.Sub(ls, rs)
			case lang.Star:
				out.Sym = expr.Mul(ls, rs)
			}
		}
		return out, noSignal
	case lang.Slash, lang.Percent:
		// The zero check is an implicit branch (crash reachability).
		if r.isSymbolic() {
			c := expr.Ne(r.Sym, expr.Int(0))
			if r.I == 0 {
				c = expr.Not(c)
			}
			vm.record(c, x.Pos, false)
		}
		if r.I == 0 {
			kind := interp.ErrDivZero
			if x.Op == lang.Percent {
				kind = interp.ErrRemZero
			}
			return CVal{}, errSignal(kind, x.Pos, "")
		}
		out := CVal{Type: lang.TypeInt}
		if x.Op == lang.Slash {
			out.I = l.I / r.I
		} else {
			out.I = l.I % r.I
		}
		if l.isSymbolic() || r.isSymbolic() {
			rs := r.symbolic()
			if r.isSymbolic() {
				// Pin symbolic divisors (keeps queries linear).
				vm.record(expr.Eq(r.Sym, expr.Int(r.I)), x.Pos, true)
				rs = expr.Int(r.I)
			}
			if x.Op == lang.Slash {
				out.Sym = expr.Div(l.symbolic(), rs)
			} else {
				out.Sym = expr.Rem(l.symbolic(), rs)
			}
		}
		return out, noSignal
	case lang.Eq, lang.NotEq, lang.Less, lang.LessEq, lang.Greater, lang.GreaterEq:
		out := CVal{Type: lang.TypeBool}
		var conc bool
		switch x.Op {
		case lang.Eq:
			conc = l.I == r.I
		case lang.NotEq:
			conc = l.I != r.I
		case lang.Less:
			conc = l.I < r.I
		case lang.LessEq:
			conc = l.I <= r.I
		case lang.Greater:
			conc = l.I > r.I
		case lang.GreaterEq:
			conc = l.I >= r.I
		}
		if conc {
			out.I = 1
		}
		if l.isSymbolic() || r.isSymbolic() {
			ls, rs := l.symbolic(), r.symbolic()
			switch x.Op {
			case lang.Eq:
				out.Sym = expr.Eq(ls, rs)
			case lang.NotEq:
				out.Sym = expr.Ne(ls, rs)
			case lang.Less:
				out.Sym = expr.Lt(ls, rs)
			case lang.LessEq:
				out.Sym = expr.Le(ls, rs)
			case lang.Greater:
				out.Sym = expr.Gt(ls, rs)
			case lang.GreaterEq:
				out.Sym = expr.Ge(ls, rs)
			}
		}
		return out, noSignal
	}
	panic(fmt.Sprintf("concolic: unknown binary op %v", x.Op))
}
