package concolic

import (
	"cpr/internal/expr"
)

// Flip is one candidate new path produced by generational search (SAGE,
// [10] in the paper): the prefix of a parent execution's path constraint
// with the branch at Depth negated. Branches on patch-output symbols are
// flipped — that is how the explorer probes the patch's influence on
// control flow. Pins (concretization constraints) are flipped too, at a
// ranking penalty: negating a pin asks the solver for a different
// concrete value of the concretized operand, which is how the explorer
// escapes DART-style concretization and keeps enumerating partitions.
type Flip struct {
	// Prefix is the conjunction of branch conditions before Depth,
	// including pins, in path order.
	Prefix []*expr.Term
	// Negated is the negation of the branch condition at Depth.
	Negated *expr.Term
	// Depth is the index of the flipped branch in the parent's Branches.
	Depth int
	// OnPatch reports whether the flipped branch mentions a patch output.
	OnPatch bool
	// HoleHits are the parent's hole hits that lie within the prefix;
	// their snapshots instantiate patch formulas for the child path.
	HoleHits []HoleHit
	// PinFlip marks the negation of a concretization constraint (a new
	// concrete value is requested rather than a new branch direction).
	PinFlip bool
	// ParentHitPatch and ParentHitBug describe the parent execution; the
	// explorer's ranking heuristic (§3.4) prefers children of executions
	// that exercised the patch and bug locations.
	ParentHitPatch bool
	ParentHitBug   bool
}

// Constraint returns Prefix ∧ Negated as a single term.
func (f Flip) Constraint() *expr.Term {
	return expr.And(append(append([]*expr.Term{}, f.Prefix...), f.Negated)...)
}

// Score ranks the flip for the exploration queue: children of executions
// that exercised the bug location rank highest, then the patch location,
// then deeper flips (which stay close to the failing path).
func (f Flip) Score() int {
	s := 0
	if f.ParentHitBug {
		s += 200
	}
	if f.ParentHitPatch {
		s += 100
	}
	if f.OnPatch {
		s += 50
	}
	if f.PinFlip {
		s -= 150 // value re-enumeration explores after structural flips
	}
	return s + f.Depth
}

// Flips enumerates the generational-search children of an execution,
// negating every branch at depth ≥ bound (the SAGE bound prevents
// re-deriving the parent's own ancestors). Pin negations request fresh
// concrete values for concretized operands.
func Flips(exec *Execution, bound int) []Flip {
	var out []Flip
	for i := bound; i < len(exec.Branches); i++ {
		b := exec.Branches[i]
		prefix := make([]*expr.Term, 0, i)
		for _, pb := range exec.Branches[:i] {
			prefix = append(prefix, pb.Cond)
		}
		var holes []HoleHit
		for _, h := range exec.HoleHits {
			if h.AtBranch <= i {
				holes = append(holes, h)
			}
		}
		out = append(out, Flip{
			Prefix:         prefix,
			Negated:        expr.Not(b.Cond),
			Depth:          i,
			OnPatch:        b.OnPatch,
			PinFlip:        b.Pin,
			HoleHits:       holes,
			ParentHitPatch: exec.HitPatch(),
			ParentHitBug:   exec.HitBug(),
		})
	}
	return out
}

// PathKey returns a stable fingerprint of a path constraint prefix, used
// by the explorer to avoid re-solving the same candidate path twice.
func PathKey(terms []*expr.Term) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, t := range terms {
		h ^= t.Hash()
		h *= prime
	}
	return h
}
