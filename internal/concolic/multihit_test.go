package concolic

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/lang"
)

// TestMultipleHoleHits: a hole inside a loop produces one fresh output
// symbol per evaluation, each with its own snapshot.
func TestMultipleHoleHits(t *testing.T) {
	prog := lang.MustParse(`
void main(int n) {
    assume(n >= 0);
    assume(n <= 5);
    int i = 0;
    while (__HOLE__) {
        i = i + 1;
        if (i > 8) { break; }
    }
    __BUG__;
    assert(i <= 3);
}`)
	// Patch: i < 3 — the loop runs exactly three times.
	patch := expr.Lt(expr.IntVar("i"), expr.Int(3))
	exec := Execute(prog, map[string]int64{"n": 2}, Options{Patch: patch})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	// 4 hole evaluations: i = 0,1,2 (true) and i = 3 (false).
	if len(exec.HoleHits) != 4 {
		t.Fatalf("hole hits: %d", len(exec.HoleHits))
	}
	seen := map[string]bool{}
	for k, h := range exec.HoleHits {
		if seen[h.Out.Name] {
			t.Fatalf("duplicate out symbol %s", h.Out.Name)
		}
		seen[h.Out.Name] = true
		// The snapshot captures i's symbolic value at the hit; since i is
		// a concrete counter here, it is the constant k.
		if h.Snapshot["i"] != expr.Int(int64(k)) {
			t.Fatalf("hit %d snapshot i = %v", k, h.Snapshot["i"])
		}
		if h.Concrete["i"] != int64(k) {
			t.Fatalf("hit %d concrete i = %d", k, h.Concrete["i"])
		}
	}
	// Each hole evaluation contributed one branch on its own out symbol.
	patchBranches := 0
	for _, b := range exec.Branches {
		if b.OnPatch {
			patchBranches++
		}
	}
	if patchBranches != 4 {
		t.Fatalf("patch branches: %d", patchBranches)
	}
	if !exec.HitBug() {
		t.Fatal("bug marker not reached")
	}
}

// TestHoleSnapshotTracksSymbolicState: the snapshot at the hole must
// capture derived symbolic values, not just raw inputs.
func TestHoleSnapshotTracksSymbolicState(t *testing.T) {
	prog := lang.MustParse(`
void main(int x) {
    int doubled = x * 2;
    int shifted = doubled + 5;
    if (__HOLE__) {
        return;
    }
    __BUG__;
}`)
	exec := Execute(prog, map[string]int64{"x": 3}, Options{Patch: expr.True()})
	if len(exec.HoleHits) != 1 {
		t.Fatalf("hole hits: %d", len(exec.HoleHits))
	}
	snap := exec.HoleHits[0].Snapshot
	x := expr.IntVar("x")
	if got := expr.Simplify(snap["doubled"]); got != expr.Simplify(expr.Mul(expr.Int(2), x)) {
		t.Fatalf("doubled snapshot: %v", got)
	}
	if got := expr.Simplify(snap["shifted"]); got != expr.Simplify(expr.Add(expr.Mul(expr.Int(2), x), expr.Int(5))) {
		t.Fatalf("shifted snapshot: %v", got)
	}
	if exec.HoleHits[0].Concrete["doubled"] != 6 || exec.HoleHits[0].Concrete["shifted"] != 11 {
		t.Fatalf("concrete snapshot: %v", exec.HoleHits[0].Concrete)
	}
}

// TestSymbolicArrayCells: array stores keep symbolic values; loads yield
// the stored term, and conditions over loaded cells are recorded.
func TestSymbolicArrayCells(t *testing.T) {
	prog := lang.MustParse(`
void main(int x0, int x1) {
    int a[2];
    a[0] = x0;
    a[1] = x1;
    if (a[0] > a[1]) {
        int tmp = a[0];
        a[0] = a[1];
        a[1] = tmp;
    }
    assert(a[0] <= a[1]);
}`)
	exec := Execute(prog, map[string]int64{"x0": 5, "x1": 2}, Options{})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	// The comparison a[0] > a[1] must be symbolic over x0, x1.
	var found bool
	for _, b := range exec.Branches {
		if expr.ContainsVar(b.Cond, "x0") && expr.ContainsVar(b.Cond, "x1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no symbolic branch over array cells: %v", exec.Branches)
	}
	// The path constraint must hold on the concrete input.
	ok, err := expr.EvalBool(exec.PathConstraint(), expr.Model{"x0": 5, "x1": 2})
	if err != nil || !ok {
		t.Fatalf("path constraint fails: %v %v", ok, err)
	}
}

// TestIntHoleInExpression: integer holes used inside larger expressions
// propagate their output symbol.
func TestIntHoleInExpression(t *testing.T) {
	prog := lang.MustParse(`
int main(int x) {
    int y = __HOLE__ + 1;
    if (y > 10) {
        return 1;
    }
    return 0;
}`)
	patch := expr.Mul(expr.IntVar("x"), expr.Int(3))
	exec := Execute(prog, map[string]int64{"x": 4}, Options{Patch: patch})
	if exec.Err != nil {
		t.Fatalf("err: %v", exec.Err)
	}
	if exec.Ret == nil || exec.Ret.I != 1 { // 4*3+1 = 13 > 10
		t.Fatalf("ret: %+v", exec.Ret)
	}
	// The branch must mention the int patch-output symbol.
	if len(exec.Branches) != 1 || !exec.Branches[0].OnPatch {
		t.Fatalf("branches: %v", exec.Branches)
	}
}
