// Package fuzz implements a small directed mutational fuzzer. Its role is
// the paper's §3.2 pre-processing: when no error-exposing input is
// available, generate one failing test with regard to the specification
// before concolic repair starts (the paper uses directed greybox fuzzing
// for this step).
//
// The fuzzer runs the buggy program (the hole filled with the original,
// buggy expression) through the concrete interpreter, scoring inputs by
// how close they get to the bug location, and mutates the fittest seeds.
package fuzz

import (
	"math/rand"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
)

// Options configures a fuzzing campaign.
type Options struct {
	// Seed makes the campaign deterministic.
	Seed int64
	// MaxRuns bounds executions (default 20000).
	MaxRuns int
	// Original is the expression standing in for __HOLE__ in the buggy
	// program (for inserted-guard subjects this is `false`). Programs
	// without a hole may leave it nil.
	Original *expr.Term
	// InputBounds bound the generated values (default [-1000, 1000], a
	// pragmatic fuzzing range).
	InputBounds map[string]interval.Interval
	// MaxSteps bounds a single execution.
	MaxSteps int
	// Population is the number of seeds kept (default 32).
	Population int
	// MaxDuration bounds the campaign's wall-clock time (0 = unbounded);
	// on expiry the campaign returns with TimedOut set.
	MaxDuration time.Duration
	// Cancel, when non-nil, winds the campaign down cooperatively.
	Cancel *cancel.Token
}

func (o Options) withDefaults() Options {
	if o.MaxRuns == 0 {
		o.MaxRuns = 20000
	}
	if o.Population == 0 {
		o.Population = 32
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 16
	}
	return o
}

// Campaign summarizes a fuzzing run.
type Campaign struct {
	// Failing is the discovered crash-exposing input (nil if none found).
	Failing map[string]int64
	// Runs is the number of executions performed.
	Runs int
	// BugHits counts executions that reached the bug location.
	BugHits int
	// TimedOut reports the campaign stopped on its wall-clock budget or
	// cancellation token rather than MaxRuns.
	TimedOut bool
	// Panics counts interpreter panics recovered at the run boundary
	// (the run scores zero; the campaign continues).
	Panics int
}

type seed struct {
	input map[string]int64
	score int
}

// FindFailing searches for an input whose execution crashes (divide by
// zero, out-of-bounds, assertion failure). It returns a campaign whose
// Failing field is nil when the budget is exhausted without a crash.
func FindFailing(prog *lang.Program, opts Options) Campaign {
	opts = opts.withDefaults()
	tok := opts.Cancel
	if opts.MaxDuration > 0 {
		tok = cancel.WithTimeout(tok, opts.MaxDuration)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	bounds := func(name string) interval.Interval {
		if iv, ok := opts.InputBounds[name]; ok {
			return iv
		}
		return interval.New(-1000, 1000)
	}
	params := prog.Inputs()

	randomInput := func() map[string]int64 {
		in := make(map[string]int64, len(params))
		for _, p := range params {
			if p.Type == lang.TypeBool {
				in[p.Name] = int64(rng.Intn(2))
				continue
			}
			iv := bounds(p.Name)
			span := iv.Hi - iv.Lo + 1
			in[p.Name] = iv.Lo + rng.Int63n(span)
		}
		return in
	}

	clampTo := func(name string, v int64) int64 {
		iv := bounds(name)
		if v < iv.Lo {
			return iv.Lo
		}
		if v > iv.Hi {
			return iv.Hi
		}
		return v
	}

	mutate := func(in map[string]int64) map[string]int64 {
		out := make(map[string]int64, len(in))
		for k, v := range in {
			out[k] = v
		}
		if len(params) == 0 {
			return out
		}
		p := params[rng.Intn(len(params))]
		if p.Type == lang.TypeBool {
			out[p.Name] = 1 - out[p.Name]
			return out
		}
		v := out[p.Name]
		switch rng.Intn(6) {
		case 0:
			v++
		case 1:
			v--
		case 2:
			v = 0
		case 3:
			v = -v
		case 4:
			v += int64(rng.Intn(21) - 10)
		default:
			iv := bounds(p.Name)
			v = iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
		}
		out[p.Name] = clampTo(p.Name, v)
		return out
	}

	camp := Campaign{}
	safeRun := func(in map[string]int64) (out interp.Outcome, panicked bool) {
		defer func() {
			if r := recover(); r != nil {
				camp.Panics++
				panicked = true
			}
		}()
		return interp.Run(prog, in, interp.Options{
			MaxSteps: opts.MaxSteps,
			Hole:     opts.Original,
			Stop:     tok.Expired,
		}), false
	}
	run := func(in map[string]int64) (int, bool) {
		camp.Runs++
		out, panicked := safeRun(in)
		if panicked {
			return 0, false
		}
		if out.HitBug {
			camp.BugHits++
		}
		if out.Crashed() {
			return 0, true
		}
		// Directed power schedule: reaching the bug location scores
		// highest, then the patch location, then longer executions
		// (deeper penetration).
		score := 0
		if out.HitBug {
			score += 1000
		}
		if out.HitPatch {
			score += 100
		}
		score += out.Steps % 100
		return score, false
	}

	// Seed corpus: zeros, boundary values, random.
	var corpus []seed
	zero := make(map[string]int64, len(params))
	for _, p := range params {
		zero[p.Name] = 0
	}
	initial := []map[string]int64{zero}
	for i := 0; i < opts.Population-1; i++ {
		initial = append(initial, randomInput())
	}
	for _, in := range initial {
		if tok.Expired() {
			camp.TimedOut = true
			return camp
		}
		if camp.Runs >= opts.MaxRuns {
			return camp
		}
		score, crashed := run(in)
		if crashed {
			camp.Failing = in
			return camp
		}
		corpus = append(corpus, seed{input: in, score: score})
	}

	for camp.Runs < opts.MaxRuns {
		if tok.Expired() {
			camp.TimedOut = true
			return camp
		}
		// Pick a parent biased toward high scores.
		best := 0
		for i := 1; i < len(corpus); i++ {
			if corpus[i].score > corpus[best].score {
				best = i
			}
		}
		parent := corpus[best]
		if rng.Intn(4) == 0 { // occasional exploration
			parent = corpus[rng.Intn(len(corpus))]
		}
		child := mutate(parent.input)
		score, crashed := run(child)
		if crashed {
			camp.Failing = child
			return camp
		}
		// Replace the weakest seed when the child improves on it.
		worst := 0
		for i := 1; i < len(corpus); i++ {
			if corpus[i].score < corpus[worst].score {
				worst = i
			}
		}
		if score >= corpus[worst].score {
			corpus[worst] = seed{input: child, score: score}
		}
	}
	return camp
}
