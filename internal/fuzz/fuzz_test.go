package fuzz

import (
	"testing"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
)

func TestFindsDivideByZero(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    if (__HOLE__) { return; }
    __BUG__;
    int c = 100 / y;
}`)
	camp := FindFailing(prog, Options{Seed: 1, Original: expr.False()})
	if camp.Failing == nil {
		t.Fatalf("no failing input found in %d runs", camp.Runs)
	}
	if camp.Failing["y"] != 0 {
		t.Fatalf("failing input %v should have y=0", camp.Failing)
	}
	// Confirm it actually crashes.
	out := interp.Run(prog, camp.Failing, interp.Options{Hole: expr.False()})
	if !out.Crashed() {
		t.Fatalf("reported failing input does not crash: %+v", out)
	}
}

func TestFindsGuardedAssertViolation(t *testing.T) {
	// The bug needs a narrow path: x must land in [40, 60] to reach the
	// assert; directedness (bug-location score) should find it.
	prog := lang.MustParse(`
void main(int x) {
    if (x >= 40) {
        if (x <= 60) {
            __BUG__;
            assert(x != 50);
        }
    }
}`)
	camp := FindFailing(prog, Options{Seed: 7, InputBounds: map[string]interval.Interval{
		"x": interval.New(-100, 100),
	}})
	if camp.Failing == nil {
		t.Fatalf("no failing input found in %d runs (bug hits %d)", camp.Runs, camp.BugHits)
	}
	if camp.Failing["x"] != 50 {
		t.Fatalf("failing input %v, want x=50", camp.Failing)
	}
	if camp.BugHits == 0 {
		t.Fatal("bug location never reached before the crash")
	}
}

func TestNoBugWithinBudget(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`)
	camp := FindFailing(prog, Options{Seed: 3, MaxRuns: 500})
	if camp.Failing != nil {
		t.Fatalf("found a crash in a crash-free program: %v", camp.Failing)
	}
	if camp.Runs != 500 {
		t.Fatalf("budget not honored: %d runs", camp.Runs)
	}
}

func TestDeterministic(t *testing.T) {
	prog := lang.MustParse(`
void main(int x, int y) {
    if (x * x + y * y == 25) {
        assert(false);
    }
}`)
	a := FindFailing(prog, Options{Seed: 11})
	b := FindFailing(prog, Options{Seed: 11})
	if (a.Failing == nil) != (b.Failing == nil) || a.Runs != b.Runs {
		t.Fatalf("campaigns diverge: %+v vs %+v", a, b)
	}
	if a.Failing != nil {
		for k, v := range a.Failing {
			if b.Failing[k] != v {
				t.Fatalf("failing inputs differ: %v vs %v", a.Failing, b.Failing)
			}
		}
	}
}

func TestBoolInputs(t *testing.T) {
	prog := lang.MustParse(`
void main(bool flag, int x) {
    if (flag) {
        assert(x != 3);
    }
}`)
	camp := FindFailing(prog, Options{Seed: 2, InputBounds: map[string]interval.Interval{
		"x": interval.New(0, 10),
	}})
	if camp.Failing == nil {
		t.Fatal("no failing input found")
	}
	if camp.Failing["flag"] != 1 || camp.Failing["x"] != 3 {
		t.Fatalf("failing input %v", camp.Failing)
	}
}

// TestFindFailingTimedOut: the wall-clock budget stops an otherwise long
// campaign with TimedOut set.
func TestFindFailingTimedOut(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`) // never crashes
	camp := FindFailing(prog, Options{Seed: 1, MaxRuns: 1 << 30, MaxDuration: time.Millisecond})
	if !camp.TimedOut {
		t.Fatalf("TimedOut not set after %d runs", camp.Runs)
	}
	if camp.Failing != nil {
		t.Fatalf("crash-free program reported failing input %v", camp.Failing)
	}
}

// TestFindFailingCancelled: a pre-cancelled token stops the campaign
// before any run.
func TestFindFailingCancelled(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`)
	camp := FindFailing(prog, Options{Seed: 1, Cancel: tok})
	if !camp.TimedOut || camp.Runs != 0 {
		t.Fatalf("cancelled campaign ran: %+v", camp)
	}
}

// TestFindFailingSurvivesInterpPanics: injected interpreter panics are
// recovered per run and counted; the campaign still terminates cleanly.
func TestFindFailingSurvivesInterpPanics(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{ExecPanicEvery: 2})
	defer faultinject.Deactivate()
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`)
	camp := FindFailing(prog, Options{Seed: 1, MaxRuns: 50})
	if camp.Panics == 0 {
		t.Fatalf("panics not counted: %+v", camp)
	}
	if camp.Failing != nil {
		t.Fatalf("panicked runs must not count as subject crashes: %+v", camp)
	}
}
