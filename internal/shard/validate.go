package shard

import (
	"cpr/internal/cancel"
	"cpr/internal/interval"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
	"cpr/internal/smt/guard"
)

// validator is the coordinator's trust boundary for imported knowledge.
// Every cache entry a worker ships passes through vet before it can touch
// the coordinator's cache or be relayed to other shards, so a lying,
// buggy, or corrupted peer can at worst waste the coordinator's time —
// never change a verdict. The ladder, cheapest rung first:
//
//   - sat with a model: replay the model through the guard layer
//     (bounds check + evaluation). A valid witness is self-certifying.
//   - sat without a model, or unsat: re-decide the formula on a trusted
//     scratch solver with tight budgets. Only a matching verdict is
//     accepted, and only then may an unsat entry's subsumption core be
//     rebuilt (an accepted truncated-core lie is harmless: the truncated
//     formula either fails the re-solve or is genuinely unsat).
//   - anything else — bounds-key parse failure, Unknown, solver error —
//     rejects. Imports fail closed; a rejected entry is simply dropped.
type validator struct {
	guard *guard.Guard
	tok   *cancel.Token
	// trusted scratch solvers, one per default-bounds interval seen (in
	// practice one: the run's DefaultBounds).
	solvers map[interval.Interval]*smt.Solver

	accepted uint64
	rejected uint64
}

func newValidator(tok *cancel.Token) *validator {
	return &validator{
		guard:   guard.New(guard.Config{}),
		tok:     tok,
		solvers: make(map[interval.Interval]*smt.Solver),
	}
}

// trustedOpts mirrors the smt layer's own trusted-scratch configuration:
// non-incremental, cacheless, portfolio-free, with budgets tight enough
// that a hostile peer cannot stall the coordinator on pathological
// formulas.
func (v *validator) trusted(def interval.Interval) *smt.Solver {
	if s, ok := v.solvers[def]; ok {
		return s
	}
	s := smt.NewSolver(smt.Options{
		DefaultBounds:   def,
		Incremental:     false,
		Cache:           nil,
		Portfolio:       0,
		MaxConflicts:    2000,
		MaxTheoryRounds: 1000,
		Cancel:          v.tok,
	})
	v.solvers[def] = s
	return s
}

// vet decides whether one imported entry may enter the coordinator's
// cache. It returns the (possibly model-stripped) value to import and
// whether the entry is trustworthy enough to carry a subsumption core.
func (v *validator) vet(e cache.ExportedEntry) (cache.Value, bool) {
	def, bounds, err := cache.ParseBoundsKey(e.Bounds)
	if err != nil || e.F == nil {
		v.rejected++
		return cache.Value{}, false
	}
	if e.Value.Sat && e.Value.Model != nil {
		if !v.guard.ValidateModel(e.F, bounds, def, e.Value.Model) {
			v.rejected++
			return cache.Value{}, false
		}
		v.accepted++
		return e.Value, true
	}
	st, err := v.trusted(def).Decide(e.F, bounds)
	if err != nil || st == smt.Unknown {
		v.rejected++
		return cache.Value{}, false
	}
	if (st == smt.Sat) != e.Value.Sat {
		v.guard.NoteFailure()
		v.rejected++
		return cache.Value{}, false
	}
	v.accepted++
	return cache.Value{Sat: e.Value.Sat}, true
}

// stats folds the validator's own solver work and guard counters into the
// run's solver aggregate, so table columns account for validation cost.
func (v *validator) stats() smt.Stats {
	var agg smt.Stats
	for _, s := range v.solvers {
		agg = agg.Add(s.Stats())
	}
	c := v.guard.Counters()
	agg.Validations += c.Validations
	agg.ValidationFailures += c.ValidationFailures
	return agg
}
