package shard

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"

	"cpr/internal/core"
)

// Transports. A shard connection is any io.ReadWriteCloser with reliable,
// ordered delivery; the protocol's CRC framing catches corruption on top.
// Three are provided:
//
//   - Pipes: in-process workers over net.Pipe — the differential-testing
//     and single-binary topology (no process isolation, no extra cores).
//   - Spawn: local worker subprocesses re-execing this binary with a
//     worker flag, speaking the protocol over stdin/stdout. This is what
//     `cpr -shards N` uses: one OS process per shard, so the kernel
//     schedules them across cores.
//   - Dial/Serve: remote workers over TCP (`cpr -shard-listen` on the
//     worker host, `-shard-connect` on the coordinator).

// Pipes starts n in-process workers and returns the coordinator ends of
// their connections. Worker errors after a completed handshake surface
// through warn; the coordinator sees the closed pipe and treats the shard
// as dead.
func Pipes(n int, warn func(format string, args ...any)) []io.ReadWriteCloser {
	conns := make([]io.ReadWriteCloser, n)
	for i := 0; i < n; i++ {
		coord, work := net.Pipe()
		conns[i] = coord
		go func(i int, work net.Conn) {
			defer work.Close()
			if err := ServeConn(work, warn); err != nil && warn != nil {
				warn("pipe shard %d: %v", i, err)
			}
		}(i, work)
	}
	return conns
}

// procConn is a subprocess worker connection: frames go down its stdin
// and come back up its stdout. Close releases the pipes and reaps the
// process (workers exit on stdin EOF or a shutdown frame).
type procConn struct {
	io.Reader
	io.WriteCloser
	cmd *exec.Cmd
}

func (p *procConn) Close() error {
	p.WriteCloser.Close()
	return p.cmd.Wait()
}

// Proc exposes the worker subprocess, for fault-injection harnesses that
// kill shards for real.
func (p *procConn) Proc() *os.Process { return p.cmd.Process }

// Spawn starts n local worker subprocesses by re-execing this binary with
// args (e.g. ["-shard-worker"]); stderr passes through. The returned
// connections are handed to New; Close (or coordinator shutdown) reaps
// the processes.
func Spawn(n int, args []string) ([]io.ReadWriteCloser, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: locate executable: %w", err)
	}
	conns := make([]io.ReadWriteCloser, 0, n)
	fail := func(err error) ([]io.ReadWriteCloser, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("shard: spawn worker: %w", err))
		}
		conns = append(conns, &procConn{Reader: stdout, WriteCloser: stdin, cmd: cmd})
	}
	return conns, nil
}

// Dial connects to remote workers (one per address).
func Dial(addrs []string) ([]io.ReadWriteCloser, error) {
	conns := make([]io.ReadWriteCloser, 0, len(addrs))
	for _, a := range addrs {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("shard: dial %s: %w", a, err)
		}
		conns = append(conns, conn)
	}
	return conns, nil
}

// Serve accepts coordinator connections on l and serves each with a fresh
// worker until l closes. Each connection gets its own replica; a worker
// host can serve several runs over its lifetime.
func Serve(l net.Listener, warn func(format string, args ...any)) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func(conn net.Conn) {
			defer conn.Close()
			if err := ServeConn(conn, warn); err != nil && warn != nil {
				warn("shard worker: %v", err)
			}
		}(conn)
	}
}

// stdioConn adapts the process's stdin/stdout to a connection for
// subprocess worker mode.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// ServeStdio runs one worker over the process's stdin/stdout — the body
// of a CLI's -shard-worker mode.
func ServeStdio(warn func(format string, args ...any)) error {
	return ServeConn(stdioConn{}, warn)
}

// Factory adapts a connection source to core.Options.NewDistributor: the
// connections are established (and the fleet handshaken) lazily, when the
// engine actually starts a run.
func Factory(connect func() ([]io.ReadWriteCloser, error), warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return func(job core.Job, opts core.Options) (core.Distributor, error) {
		conns, err := connect()
		if err != nil {
			return nil, err
		}
		c, err := New(job, opts, conns, opts.Cancel, warn)
		if err != nil {
			for _, conn := range conns {
				conn.Close()
			}
			return nil, err
		}
		return c, nil
	}
}

// SpawnFactory is Factory over n spawned subprocess workers.
func SpawnFactory(n int, args []string, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return Factory(func() ([]io.ReadWriteCloser, error) { return Spawn(n, args) }, warn)
}

// PipesFactory is Factory over n in-process workers.
func PipesFactory(n int, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return Factory(func() ([]io.ReadWriteCloser, error) { return Pipes(n, warn), nil }, warn)
}

// DialFactory is Factory over remote workers at addrs.
func DialFactory(addrs []string, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return Factory(func() ([]io.ReadWriteCloser, error) { return Dial(addrs) }, warn)
}
