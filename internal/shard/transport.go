package shard

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sync"
	"time"

	"cpr/internal/core"
)

// Transports. A shard connection is any io.ReadWriteCloser with reliable,
// ordered delivery; the protocol's CRC framing catches corruption on top.
// Three are provided:
//
//   - Pipes: in-process workers over net.Pipe — the differential-testing
//     and single-binary topology (no process isolation, no extra cores).
//   - Spawn: local worker subprocesses re-execing this binary with a
//     worker flag, speaking the protocol over stdin/stdout. This is what
//     `cpr -shards N` uses: one OS process per shard, so the kernel
//     schedules them across cores.
//   - Dial/Serve: remote workers over TCP (`cpr -shard-listen` on the
//     worker host, `-shard-connect` on the coordinator), with kernel
//     keepalives, dial retries, and mid-run reconnection.

// Pipes starts n in-process workers and returns the coordinator ends of
// their connections. Worker errors after a completed handshake surface
// through warn; the coordinator sees the closed pipe and treats the shard
// as dead.
func Pipes(n int, warn func(format string, args ...any)) []io.ReadWriteCloser {
	conns := make([]io.ReadWriteCloser, n)
	for i := 0; i < n; i++ {
		coord, work := net.Pipe()
		conns[i] = coord
		go func(i int, work net.Conn) {
			defer work.Close()
			if err := ServeConn(work, warn); err != nil && warn != nil {
				warn("pipe shard %d: %v", i, err)
			}
		}(i, work)
	}
	return conns
}

// procExitGrace is how long Close waits for a worker subprocess to exit
// on its own (stdin EOF or shutdown frame) before killing it. A var so
// tests can shrink it.
var procExitGrace = 3 * time.Second

// procConn is a subprocess worker connection: frames go down its stdin
// and come back up its stdout. Close releases the pipes and reaps the
// process (workers exit on stdin EOF or a shutdown frame); a wedged
// worker that ignores EOF is killed after a grace period rather than
// blocking Close forever. Close is idempotent — the liveness watchdog
// and the coordinator can both reach it.
type procConn struct {
	io.Reader
	io.WriteCloser
	cmd  *exec.Cmd
	once sync.Once
	err  error
}

func (p *procConn) Close() error {
	p.once.Do(func() {
		p.WriteCloser.Close()
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case p.err = <-done:
		case <-time.After(procExitGrace):
			p.cmd.Process.Kill()
			p.err = <-done
		}
	})
	return p.err
}

// Proc exposes the worker subprocess, for fault-injection harnesses that
// kill shards for real.
func (p *procConn) Proc() *os.Process { return p.cmd.Process }

// startCmd launches a worker subprocess; a var so transport tests can
// inject mid-loop spawn failures.
var startCmd = func(cmd *exec.Cmd) error { return cmd.Start() }

// Spawn starts n local worker subprocesses by re-execing this binary with
// args (e.g. ["-shard-worker"]); stderr passes through. The returned
// connections are handed to New; Close (or coordinator shutdown) reaps
// the processes. A mid-loop failure closes (and reaps) the workers
// already started.
func Spawn(n int, args []string) ([]io.ReadWriteCloser, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("shard: locate executable: %w", err)
	}
	conns := make([]io.ReadWriteCloser, 0, n)
	fail := func(err error) ([]io.ReadWriteCloser, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := startCmd(cmd); err != nil {
			return fail(fmt.Errorf("shard: spawn worker: %w", err))
		}
		conns = append(conns, &procConn{Reader: stdout, WriteCloser: stdin, cmd: cmd})
	}
	return conns, nil
}

// keepalivePeriod is the TCP keepalive interval on both ends, so the
// kernel notices a silently dead peer (host crash, cable pull) even on a
// connection that is idle between heartbeats.
const keepalivePeriod = 15 * time.Second

// dialShard dials one worker address with a connect timeout and
// keepalives armed.
func dialShard(addr string, cfg Config) (net.Conn, error) {
	d := net.Dialer{Timeout: cfg.Timeout, KeepAlive: keepalivePeriod}
	if d.Timeout <= 0 {
		d.Timeout = 10 * time.Second
	}
	return d.Dial("tcp", addr)
}

// dialRetry dials one address with jittered exponential backoff, per
// Config's DialAttempts/DialBackoff/DialBackoffMax.
func dialRetry(addr string, cfg Config, warn func(format string, args ...any)) (net.Conn, error) {
	backoff := cfg.DialBackoff
	var lastErr error
	for i := 0; i < cfg.DialAttempts; i++ {
		if i > 0 {
			if warn != nil {
				warn("shard: dial %s: %v; retrying in ~%v", addr, lastErr, backoff)
			}
			time.Sleep(jitter(backoff))
			if backoff *= 2; backoff > cfg.DialBackoffMax {
				backoff = cfg.DialBackoffMax
			}
		}
		conn, err := dialShard(addr, cfg)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Dial connects to remote workers (one per address), retrying each with
// jittered exponential backoff. An address that stays unreachable
// becomes a nil connection — a degraded fleet slot the coordinator
// starts without and the reconnect loop keeps redialing — rather than
// aborting the run; Dial fails only when no address is reachable.
func Dial(addrs []string, cfg Config, warn func(format string, args ...any)) ([]io.ReadWriteCloser, error) {
	cfg = cfg.withDefaults()
	conns := make([]io.ReadWriteCloser, len(addrs))
	reachable := 0
	for i, a := range addrs {
		conn, err := dialRetry(a, cfg, warn)
		if err != nil {
			if warn != nil {
				warn("shard: %s unreachable after %d attempts: %v", a, cfg.DialAttempts, err)
			}
			continue
		}
		conns[i] = conn
		reachable++
	}
	if reachable == 0 {
		return nil, fmt.Errorf("shard: no worker address reachable")
	}
	return conns, nil
}

// Serve accepts coordinator connections on l and serves each with a fresh
// worker until l closes. Each connection gets its own replica; a worker
// host can serve several runs over its lifetime. Keepalives are armed so
// a silently dead coordinator releases the worker.
func Serve(l net.Listener, warn func(format string, args ...any)) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(keepalivePeriod)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			if err := ServeConn(conn, warn); err != nil && warn != nil {
				warn("shard worker: %v", err)
			}
		}(conn)
	}
}

// stdioConn adapts the process's stdin/stdout to a connection for
// subprocess worker mode.
type stdioConn struct{}

func (stdioConn) Read(p []byte) (int, error)  { return os.Stdin.Read(p) }
func (stdioConn) Write(p []byte) (int, error) { return os.Stdout.Write(p) }

// ServeStdio runs one worker over the process's stdin/stdout — the body
// of a CLI's -shard-worker mode.
func ServeStdio(warn func(format string, args ...any)) error {
	return ServeConn(stdioConn{}, warn)
}

// Factory adapts a connection source to core.Options.NewDistributor: the
// connections are established (and the fleet handshaken) lazily, when the
// engine actually starts a run.
func Factory(connect func() ([]io.ReadWriteCloser, error), cfg Config, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return func(job core.Job, opts core.Options) (core.Distributor, error) {
		conns, err := connect()
		if err != nil {
			return nil, err
		}
		c, err := New(job, opts, conns, cfg, opts.Cancel, warn)
		if err != nil {
			for _, conn := range conns {
				if conn != nil {
					conn.Close()
				}
			}
			return nil, err
		}
		return c, nil
	}
}

// SpawnFactory is Factory over n spawned subprocess workers.
func SpawnFactory(n int, args []string, cfg Config, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return Factory(func() ([]io.ReadWriteCloser, error) { return Spawn(n, args) }, cfg, warn)
}

// PipesFactory is Factory over n in-process workers.
func PipesFactory(n int, cfg Config, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return Factory(func() ([]io.ReadWriteCloser, error) { return Pipes(n, warn), nil }, cfg, warn)
}

// DialFactory is Factory over remote workers at addrs, plus reconnection
// (unless Config.NoReconnect): a slot that starts unreachable or dies
// mid-run is redialed with jittered exponential backoff and re-admitted
// through the normal handshake as a late joiner.
func DialFactory(addrs []string, cfg Config, warn func(format string, args ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	inner := Factory(func() ([]io.ReadWriteCloser, error) { return Dial(addrs, cfg, warn) }, cfg, warn)
	return func(job core.Job, opts core.Options) (core.Distributor, error) {
		d, err := inner(job, opts)
		if err != nil {
			return nil, err
		}
		c := d.(*Coordinator)
		if !cfg.NoReconnect {
			c.enableReconnect(func(i int) (io.ReadWriteCloser, error) { return dialShard(addrs[i], cfg.withDefaults()) }, cfg)
		}
		return c, nil
	}
}
