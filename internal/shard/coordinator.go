package shard

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/core"
	"cpr/internal/journal"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
)

// Coordinator is the core.Distributor that drives a fleet of shard
// workers. It owns nothing the engine doesn't already own — every batch
// carries the authoritative bounds and pool — so its only jobs are
// scheduling (static chunk ownership plus work-stealing and straggler
// hedging), merging replies into per-index outcome slots, and brokering
// validated knowledge between shards.
type Coordinator struct {
	shards []*shardConn
	warn   func(format string, args ...any)
	cfg    Config

	// hello and fp are kept for mid-run re-admission: a reconnecting
	// worker re-enters through the same handshake the fleet started with.
	hello []byte
	fp    uint64

	steals  atomic.Uint64
	deaths  atomic.Uint64
	batches atomic.Uint64

	// Resilience counters (see core.DistCounters).
	heartbeatsMissed atomic.Uint64
	hedges           atomic.Uint64
	hedgeWins        atomic.Uint64
	hedgeLosses      atomic.Uint64
	reconnects       atomic.Uint64
	lateJoins        atomic.Uint64
	degradedStart    bool

	// admitMu serializes Admit against Close; done stops reconnect loops.
	admitMu sync.Mutex
	closed  atomic.Bool
	done    chan struct{}
	// onDeath, when set (before the first batch), is invoked with the
	// slot index of every shard declared dead — the reconnect hook.
	onDeath func(i int)

	// kmu serializes knowledge handling: validation, import into the
	// coordinator cache, and the per-shard relay queues.
	kmu      sync.Mutex
	val      *validator
	cache    *cache.Cache
	relay    []knowledge // pending validated knowledge per shard
	imported struct {
		verdicts, cores uint64
	}
	// retired accumulates the final solver aggregate of connections that
	// were replaced by a re-admission, so a dead worker's work stays
	// accounted for after its slot is reused.
	retired smt.Stats
}

// shardConn is one worker connection. A shard is driven by exactly one
// goroutine per batch, so conn access needs no lock; live is read
// concurrently by peers relaying knowledge, hence atomic. conn is only
// swapped (by Admit) while live is false and no batch goroutine holds
// the slot, with live.Store(true) publishing the swap.
type shardConn struct {
	conn io.ReadWriteCloser
	live atomic.Bool
	// reconnecting guards the slot's single redial loop.
	reconnecting atomic.Bool
	// stats is the shard's cumulative solver aggregate from its latest
	// reply; kept coordinator-side so a shard's work is still accounted
	// for after it dies.
	stats workerStats
}

// New performs the handshake with every connection and returns a
// coordinator over the shards that completed it. Workers that fail the
// handshake (version skew, fingerprint mismatch, dead transport) are
// dropped with a warning, as are nil connections (a dial that failed
// after retries — see Dial): the fleet starts degraded rather than
// aborting the run, and dead slots can be re-admitted later (Admit). If
// no shard survives, New fails — a sharded run that would silently
// execute on zero shards is a misconfiguration.
//
// cacheRef is the coordinator engine's verdict cache (opts.SMT.Cache; may
// be nil), the destination for validated peer knowledge. tok is the run's
// cancellation token, bounding trusted re-solves during validation.
func New(job core.Job, opts core.Options, conns []io.ReadWriteCloser, cfg Config, tok *cancel.Token, warn func(format string, args ...any)) (*Coordinator, error) {
	if warn == nil {
		warn = func(string, ...any) {}
	}
	cfg = cfg.withDefaults()
	fp := core.RunFingerprint(job, opts)
	hello := encodeHello(fp, job, opts, cfg.heartbeat())
	c := &Coordinator{
		warn:  warn,
		cfg:   cfg,
		hello: hello,
		fp:    fp,
		val:   newValidator(tok),
		cache: opts.SMT.Cache,
		relay: make([]knowledge, len(conns)),
		done:  make(chan struct{}),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	shards := make([]*shardConn, len(conns))
	for i, conn := range conns {
		shards[i] = &shardConn{conn: wrapDeadline(conn, cfg.Timeout)}
		if shards[i].conn == nil {
			errs[i] = fmt.Errorf("shard: unreachable at start")
			continue
		}
		wg.Add(1)
		go func(i int, conn io.ReadWriteCloser) {
			defer wg.Done()
			errs[i] = handshake(conn, hello, fp)
		}(i, shards[i].conn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			warn("shard %d handshake failed: %v", i, err)
			if shards[i].conn != nil {
				shards[i].conn.Close()
			}
			continue
		}
		shards[i].live.Store(true)
	}
	c.shards = shards
	alive := 0
	for _, s := range shards {
		if s.live.Load() {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("shard: no worker completed the handshake")
	}
	if alive < len(conns) {
		c.degradedStart = true
		warn("shard fleet starting degraded: %d of %d workers reachable", alive, len(conns))
	}
	return c, nil
}

func handshake(conn io.ReadWriter, hello []byte, fp uint64) error {
	if err := journal.WriteWireHeader(conn); err != nil {
		return err
	}
	if err := writeMsg(conn, kHello, hello); err != nil {
		return err
	}
	if err := journal.ReadWireHeader(conn); err != nil {
		return err
	}
	rec, err := readMsg(conn)
	if err != nil {
		return err
	}
	if rec.Kind != kReady {
		return fmt.Errorf("shard: expected ready, got frame kind %d", rec.Kind)
	}
	wfp, err := decodeReady(rec.Payload)
	if err != nil {
		return err
	}
	if wfp != fp {
		return fmt.Errorf("shard: worker fingerprint %x, want %x", wfp, fp)
	}
	return nil
}

var errCoordinatorClosed = errors.New("shard: coordinator closed")

// Admit re-admits a dead shard slot with a fresh connection: the same
// hello/fingerprint handshake the fleet started with, then the slot goes
// live and receives the next batch's start frame like any other shard —
// the batch-start re-sync (bounds, full pool, relayed knowledge) is what
// makes a late joiner's replica authoritative-state-free and therefore
// safe. The old connection's pending relay is dropped (the newcomer
// imports nothing stale) and its cumulative solver stats are retired
// into the coordinator's aggregate.
func (c *Coordinator) Admit(i int, conn io.ReadWriteCloser) error {
	if i < 0 || i >= len(c.shards) {
		conn.Close()
		return fmt.Errorf("shard: no slot %d", i)
	}
	wrapped := wrapDeadline(conn, c.cfg.Timeout)
	if err := handshake(wrapped, c.hello, c.fp); err != nil {
		wrapped.Close()
		return err
	}
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	if c.closed.Load() {
		wrapped.Close()
		return errCoordinatorClosed
	}
	s := c.shards[i]
	if s.live.Load() {
		wrapped.Close()
		return fmt.Errorf("shard: slot %d is already live", i)
	}
	c.kmu.Lock()
	c.relay[i] = knowledge{}
	c.retired = c.retired.Add(s.stats)
	s.stats = workerStats{}
	c.kmu.Unlock()
	s.conn = wrapped
	s.live.Store(true)
	c.reconnects.Add(1)
	if c.batches.Load() > 0 {
		c.lateJoins.Add(1)
	}
	c.warn("shard %d re-admitted", i)
	return nil
}

// Done exposes the coordinator's shutdown signal (reconnect loops and
// tests select on it).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// chunk is a contiguous batch slice with a static owner; a chunk executed
// by another shard is a steal.
type chunk struct {
	lo, hi, owner int
}

// chunkState tracks one chunk through a batch: how many executors hold
// it (1 normally, 2 while hedged), whether its result committed, and
// when its current attempt started (the hedging clock).
type chunkState struct {
	c      chunk
	claims int
	done   bool
	hedged bool
	start  time.Time
}

// chunkQueue is the shared work queue for one batch. Executors prefer
// their own chunks and steal otherwise; a dying shard's chunk is
// requeued; and with hedging enabled an idle executor re-issues the
// oldest inflight chunk once its age passes the straggler threshold —
// first reply wins, the duplicate is discarded (chunks are pure
// functions, so both replies are identical anyway). Waiters block until
// every chunk committed or the batch strands (no live executor left).
type chunkQueue struct {
	mu         sync.Mutex
	cond       *sync.Cond
	states     []chunkState
	pending    []int // indices into states
	open       int   // chunks not yet committed
	hedgeFloor time.Duration
	durs       []time.Duration // committed-chunk durations (threshold input)

	hedges, hedgeWins, hedgeLosses uint64
}

func newChunkQueue(chunks []chunk, hedgeFloor time.Duration) *chunkQueue {
	q := &chunkQueue{
		states:     make([]chunkState, len(chunks)),
		pending:    make([]int, len(chunks)),
		open:       len(chunks),
		hedgeFloor: hedgeFloor,
	}
	for i, ck := range chunks {
		q.states[i] = chunkState{c: ck}
		q.pending[i] = i
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// next claims work for shard me: a pending chunk (preferring owned ones)
// or, when none are pending and hedging is on, a straggling inflight
// chunk to duplicate. It blocks while other shards hold chunks (one may
// die or straggle) and returns ok=false once every chunk committed.
func (q *chunkQueue) next(me int) (ck chunk, idx int, hedge, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.pending) > 0 {
			at := 0
			for i, id := range q.pending {
				if q.states[id].c.owner == me {
					at = i
					break
				}
			}
			idx = q.pending[at]
			q.pending = append(q.pending[:at], q.pending[at+1:]...)
			st := &q.states[idx]
			st.claims++
			st.start = time.Now()
			return st.c, idx, false, true
		}
		if q.open == 0 {
			return chunk{}, 0, false, false
		}
		if q.hedgeFloor > 0 {
			if idx, wait := q.straggler(); idx >= 0 {
				st := &q.states[idx]
				st.hedged = true
				st.claims++
				q.hedges++
				return st.c, idx, true, true
			} else if wait > 0 {
				q.waitAtMost(wait)
				continue
			}
		}
		q.cond.Wait()
	}
}

// straggler picks the oldest unhedged inflight chunk if its age passed
// the threshold; otherwise it returns the wait until the oldest one
// would. (-1, 0) means nothing is hedgeable — every inflight chunk is
// already duplicated.
func (q *chunkQueue) straggler() (int, time.Duration) {
	th := q.threshold()
	best := -1
	var oldest time.Time
	for i := range q.states {
		st := &q.states[i]
		if st.done || st.hedged || st.claims == 0 {
			continue
		}
		if best == -1 || st.start.Before(oldest) {
			best, oldest = i, st.start
		}
	}
	if best == -1 {
		return -1, 0
	}
	if age := time.Since(oldest); age < th {
		return -1, th - age
	}
	return best, 0
}

// threshold is the straggler cutoff: max(configured floor, 2×p90 of the
// chunks committed so far this batch). The percentile keeps a tight
// floor from hedging everything on a uniformly slow batch; the floor
// keeps an empty sample from hedging instantly.
func (q *chunkQueue) threshold() time.Duration {
	th := q.hedgeFloor
	if len(q.durs) >= 4 {
		s := make([]time.Duration, len(q.durs))
		copy(s, q.durs)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		if p90 := 2 * s[len(s)*9/10]; p90 > th {
			th = p90
		}
	}
	return th
}

// waitAtMost is a condvar wait with a deadline, for hedging executors
// that must wake when the straggler threshold passes even if nobody
// broadcasts.
func (q *chunkQueue) waitAtMost(d time.Duration) {
	t := time.AfterFunc(d, q.cond.Broadcast)
	q.cond.Wait()
	t.Stop()
}

// finish reports a computed chunk; the first finisher wins and must
// commit the result, a later duplicate discards it. Hedge outcome
// counters are decided by the winner.
func (q *chunkQueue) finish(idx int, dur time.Duration, hedge bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := &q.states[idx]
	st.claims--
	if st.done {
		q.cond.Broadcast()
		return false
	}
	st.done = true
	q.open--
	q.durs = append(q.durs, dur)
	if st.hedged {
		if hedge {
			q.hedgeWins++
		} else {
			q.hedgeLosses++
		}
	}
	q.cond.Broadcast()
	return true
}

// abandon releases a dying executor's claim. The chunk requeues only
// when no other copy is still inflight (a hedged twin may yet commit
// it); a requeued chunk hedges from scratch.
func (q *chunkQueue) abandon(idx int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := &q.states[idx]
	st.claims--
	if !st.done && st.claims == 0 {
		st.hedged = false
		q.pending = append(q.pending, idx)
	}
	q.cond.Broadcast()
}

// stranded reports chunks nobody committed (every shard died mid-batch).
func (q *chunkQueue) stranded() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.open > 0
}

// plan splits n items into contiguous chunks, several per shard, so a
// fast shard has something to steal once its own are done. Chunk
// boundaries never affect outcomes — items are independent and per-index
// — so the split is a pure scheduling choice.
func plan(n, nshards int) []chunk {
	if n == 0 {
		return nil
	}
	per := n / (nshards * 2)
	if per < 1 {
		per = 1
	}
	var chunks []chunk
	for lo, i := 0, 0; lo < n; i++ {
		hi := lo + per
		if hi > n {
			hi = n
		}
		chunks = append(chunks, chunk{lo: lo, hi: hi, owner: i % nshards})
		lo = hi
	}
	return chunks
}

// readReply reads the next data frame from a shard, skipping the
// heartbeat frames a worker interleaves while computing. Each underlying
// read carries its own liveness deadline, so a heartbeating shard can
// compute far past Config.Timeout while a hung one still trips it.
func (c *Coordinator) readReply(s *shardConn) (journal.Record, error) {
	for {
		rec, err := readMsg(s.conn)
		if err != nil {
			return rec, err
		}
		if rec.Kind == kHeartbeat {
			continue
		}
		return rec, nil
	}
}

// RunFlips distributes one path-reduction scan. A nil return (all shards
// dead before the batch drained) tells the engine to recompute the whole
// batch locally.
func (c *Coordinator) RunFlips(b core.FlipBatch) []core.FlipOutcome {
	outs := make([]core.FlipOutcome, len(b.Flips))
	ok := c.runBatch(len(b.Flips), kFlipStart, batchStart{bounds: b.Bounds, pool: b.Pool},
		func(s *shardConn, ck chunk) (func(), error) {
			if err := writeMsg(s.conn, kFlipChunk, encodeFlipChunk(ck.lo, b.Flips[ck.lo:ck.hi])); err != nil {
				return nil, err
			}
			rec, err := c.readReply(s)
			if err != nil {
				return nil, err
			}
			if rec.Kind != kFlipReply {
				return nil, fmt.Errorf("shard: expected flip reply, got kind %d", rec.Kind)
			}
			base, res, k, ws, err := decodeFlipReply(rec.Payload)
			if err != nil {
				return nil, err
			}
			if base != ck.lo || len(res) != ck.hi-ck.lo {
				return nil, fmt.Errorf("shard: flip reply [%d,+%d), want [%d,%d)", base, len(res), ck.lo, ck.hi)
			}
			return func() {
				copy(outs[ck.lo:ck.hi], res)
				c.record(s, ws, k)
			}, nil
		})
	if !ok {
		return nil
	}
	return outs
}

// RunReduce distributes one pool reduction.
func (c *Coordinator) RunReduce(b core.ReduceBatch) []core.ReduceOutcome {
	outs := make([]core.ReduceOutcome, len(b.Pool))
	ok := c.runBatch(len(b.Pool), kReduceStart, batchStart{bounds: b.Bounds, pool: b.Pool, isRed: true, rc: b.Ctx},
		func(s *shardConn, ck chunk) (func(), error) {
			if err := writeMsg(s.conn, kReduceChunk, encodeReduceChunk(ck.lo, ck.hi)); err != nil {
				return nil, err
			}
			rec, err := c.readReply(s)
			if err != nil {
				return nil, err
			}
			if rec.Kind != kReduceReply {
				return nil, fmt.Errorf("shard: expected reduce reply, got kind %d", rec.Kind)
			}
			lo, res, k, ws, err := decodeReduceReply(rec.Payload)
			if err != nil {
				return nil, err
			}
			if lo != ck.lo || len(res) != ck.hi-ck.lo {
				return nil, fmt.Errorf("shard: reduce reply [%d,+%d), want [%d,%d)", lo, len(res), ck.lo, ck.hi)
			}
			return func() {
				copy(outs[ck.lo:ck.hi], res)
				c.record(s, ws, k)
			}, nil
		})
	if !ok {
		return nil
	}
	return outs
}

// runBatch drives one batch: the start frame (with each shard's pending
// relayed knowledge) to every live shard, then per-shard executor
// goroutines self-scheduling from the chunk queue. exec returns a commit
// closure instead of committing directly: with hedging, two executors
// can compute the same chunk, and only the queue's first finisher may
// touch the shared outcome slots (the loser's closure is dropped
// unexecuted, so duplicate results are discarded without a data race).
// Any connection error kills that shard for the rest of the run — its
// chunk is requeued (unless a hedged twin commits it) and its pending
// relay dropped. Returns false if chunks were stranded.
func (c *Coordinator) runBatch(n int, startKind uint8, bs batchStart, exec func(*shardConn, chunk) (func(), error)) bool {
	live := 0
	for _, s := range c.shards {
		if s.live.Load() {
			live++
		}
	}
	if live == 0 || n == 0 {
		return false
	}
	q := newChunkQueue(plan(n, live), c.cfg.Hedge)
	c.batches.Add(1)
	var wg sync.WaitGroup
	for i, s := range c.shards {
		if !s.live.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, s *shardConn) {
			defer wg.Done()
			bs := bs
			bs.relay = c.takeRelay(i)
			if err := writeMsg(s.conn, startKind, encodeStart(startKind, bs)); err != nil {
				c.kill(i, s, err)
				return
			}
			for {
				ck, idx, hedge, ok := q.next(i)
				if !ok {
					return
				}
				if !hedge && ck.owner != i {
					c.steals.Add(1)
				}
				t0 := time.Now()
				commit, err := exec(s, ck)
				if err != nil {
					c.kill(i, s, err)
					q.abandon(idx)
					return
				}
				if q.finish(idx, time.Since(t0), hedge) {
					commit()
				}
			}
		}(i, s)
	}
	wg.Wait()
	q.mu.Lock()
	c.hedges.Add(q.hedges)
	c.hedgeWins.Add(q.hedgeWins)
	c.hedgeLosses.Add(q.hedgeLosses)
	q.mu.Unlock()
	return !q.stranded()
}

func (c *Coordinator) kill(i int, s *shardConn, err error) {
	// The codec layer may wrap the transport error opaquely (journal wraps
	// read failures into its own corruption errors), so ask the watchdog
	// conn itself in addition to the error chain.
	timedOut := errors.Is(err, ErrShardTimeout)
	if dc, ok := s.conn.(*deadlineConn); ok && dc.timedOut.Load() {
		timedOut = true
	}
	if timedOut {
		c.heartbeatsMissed.Add(1)
		c.warn("shard %d unresponsive, declared dead: %v", i, err)
	} else {
		c.warn("shard %d died: %v", i, err)
	}
	s.live.Store(false)
	s.conn.Close()
	c.deaths.Add(1)
	if f := c.onDeath; f != nil {
		go f(i)
	}
}

// takeRelay drains shard i's pending relayed knowledge.
func (c *Coordinator) takeRelay(i int) knowledge {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	k := c.relay[i]
	c.relay[i] = knowledge{}
	return k
}

// record stores a reply's cumulative solver aggregate (under kmu — shard
// goroutines race each other and Stats readers here) and absorbs its
// knowledge delta.
func (c *Coordinator) record(s *shardConn, ws workerStats, k knowledge) {
	c.kmu.Lock()
	s.stats = ws
	c.kmu.Unlock()
	c.absorb(s, k)
}

// absorb handles one reply's knowledge delta: every entry passes the
// validation ladder exactly once, here at the coordinator's trust
// boundary; what survives enters the coordinator's own cache and the
// other shards' relay queues (workers import relays without revalidating
// — the coordinator is already their root of trust for the job itself).
// Rejected entries are dropped and counted, and their cores die with
// them.
func (c *Coordinator) absorb(from *shardConn, k knowledge) {
	if k.empty() {
		return
	}
	c.kmu.Lock()
	defer c.kmu.Unlock()
	var vetted cache.Export
	okEntries := make(map[cache.Key]bool, len(k.ex.Entries))
	for _, e := range k.ex.Entries {
		v, ok := c.val.vet(e)
		if !ok {
			continue
		}
		okEntries[cache.EntryKey(e.F, e.Bounds)] = true
		vetted.Entries = append(vetted.Entries, cache.ExportedEntry{F: e.F, Bounds: e.Bounds, Value: v})
	}
	for _, co := range k.ex.Cores {
		if okEntries[cache.EntryKey(co.F, co.Bounds)] {
			vetted.Cores = append(vetted.Cores, co)
		}
	}
	c.imported.verdicts += uint64(len(vetted.Entries))
	c.imported.cores += uint64(len(vetted.Cores))
	if c.cache != nil {
		if err := c.cache.Import(vetted); err != nil {
			c.warn("shard knowledge import: %v", err)
			return
		}
		for _, r := range k.retract {
			c.cache.InvalidateKey(cache.EntryKey(r.f, r.bounds))
		}
	}
	if len(vetted.Entries) == 0 && len(vetted.Cores) == 0 && len(k.retract) == 0 {
		return
	}
	for i, s := range c.shards {
		if !s.live.Load() || s == from {
			continue
		}
		c.relay[i].ex.Entries = append(c.relay[i].ex.Entries, vetted.Entries...)
		c.relay[i].ex.Cores = append(c.relay[i].ex.Cores, vetted.Cores...)
		c.relay[i].retract = append(c.relay[i].retract, k.retract...)
	}
}

// Counters implements core.Distributor.
func (c *Coordinator) Counters() core.DistCounters {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	dc := core.DistCounters{
		Shards:           len(c.shards),
		Steals:           c.steals.Load(),
		Deaths:           c.deaths.Load(),
		HeartbeatsMissed: c.heartbeatsMissed.Load(),
		Hedges:           c.hedges.Load(),
		HedgeWins:        c.hedgeWins.Load(),
		HedgeLosses:      c.hedgeLosses.Load(),
		Reconnects:       c.reconnects.Load(),
		LateJoins:        c.lateJoins.Load(),
		ImportedVerdicts: c.imported.verdicts,
		ImportedCores:    c.imported.cores,
		RejectedImports:  c.val.rejected,
	}
	if c.degradedStart {
		dc.DegradedStarts = 1
	}
	return dc
}

// SolverStats sums every shard's latest cumulative aggregate (dead shards
// keep their last report, replaced connections their retired one) plus
// the validator's own solve work.
func (c *Coordinator) SolverStats() smt.Stats {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	agg := c.val.stats().Add(c.retired)
	for _, s := range c.shards {
		agg = agg.Add(s.stats)
	}
	return agg
}

// Close shuts the fleet down: reconnect loops stop, then a best-effort
// shutdown frame and the connections.
func (c *Coordinator) Close() error {
	c.admitMu.Lock()
	defer c.admitMu.Unlock()
	if c.closed.Swap(true) {
		return nil
	}
	close(c.done)
	for _, s := range c.shards {
		if !s.live.Load() {
			continue
		}
		writeMsg(s.conn, kShutdown, nil)
		s.conn.Close()
		s.live.Store(false)
	}
	return nil
}
