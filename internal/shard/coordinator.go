package shard

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cpr/internal/cancel"
	"cpr/internal/core"
	"cpr/internal/journal"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
)

// Coordinator is the core.Distributor that drives a fleet of shard
// workers. It owns nothing the engine doesn't already own — every batch
// carries the authoritative bounds and pool — so its only jobs are
// scheduling (static chunk ownership plus work-stealing), merging replies
// into per-index outcome slots, and brokering validated knowledge between
// shards.
type Coordinator struct {
	shards []*shardConn
	warn   func(format string, args ...any)

	steals atomic.Uint64
	deaths atomic.Uint64

	// kmu serializes knowledge handling: validation, import into the
	// coordinator cache, and the per-shard relay queues.
	kmu      sync.Mutex
	val      *validator
	cache    *cache.Cache
	relay    []knowledge // pending validated knowledge per shard
	imported struct {
		verdicts, cores uint64
	}
}

// shardConn is one worker connection. A shard is driven by exactly one
// goroutine per batch, so conn access needs no lock; live flips to false
// at most once (kill) and is read concurrently by peers relaying
// knowledge, hence atomic.
type shardConn struct {
	conn io.ReadWriteCloser
	live atomic.Bool
	// stats is the shard's cumulative solver aggregate from its latest
	// reply; kept coordinator-side so a shard's work is still accounted
	// for after it dies.
	stats workerStats
}

// New performs the handshake with every connection and returns a
// coordinator over the shards that completed it. Workers that fail the
// handshake (version skew, fingerprint mismatch, dead transport) are
// dropped with a warning; if none survive, New fails — a sharded run that
// would silently execute on zero shards is a misconfiguration.
//
// cacheRef is the coordinator engine's verdict cache (opts.SMT.Cache; may
// be nil), the destination for validated peer knowledge. tok is the run's
// cancellation token, bounding trusted re-solves during validation.
func New(job core.Job, opts core.Options, conns []io.ReadWriteCloser, tok *cancel.Token, warn func(format string, args ...any)) (*Coordinator, error) {
	if warn == nil {
		warn = func(string, ...any) {}
	}
	fp := core.RunFingerprint(job, opts)
	hello := encodeHello(fp, job, opts)
	c := &Coordinator{
		warn:  warn,
		val:   newValidator(tok),
		cache: opts.SMT.Cache,
		relay: make([]knowledge, len(conns)),
	}
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	shards := make([]*shardConn, len(conns))
	for i, conn := range conns {
		shards[i] = &shardConn{conn: conn}
		wg.Add(1)
		go func(i int, conn io.ReadWriteCloser) {
			defer wg.Done()
			errs[i] = handshake(conn, hello, fp)
		}(i, conn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			warn("shard %d handshake failed: %v", i, err)
			shards[i].conn.Close()
			continue
		}
		shards[i].live.Store(true)
	}
	c.shards = shards
	alive := 0
	for _, s := range shards {
		if s.live.Load() {
			alive++
		}
	}
	if alive == 0 {
		return nil, fmt.Errorf("shard: no worker completed the handshake")
	}
	return c, nil
}

func handshake(conn io.ReadWriter, hello []byte, fp uint64) error {
	if err := journal.WriteWireHeader(conn); err != nil {
		return err
	}
	if err := writeMsg(conn, kHello, hello); err != nil {
		return err
	}
	if err := journal.ReadWireHeader(conn); err != nil {
		return err
	}
	rec, err := readMsg(conn)
	if err != nil {
		return err
	}
	if rec.Kind != kReady {
		return fmt.Errorf("shard: expected ready, got frame kind %d", rec.Kind)
	}
	wfp, err := decodeReady(rec.Payload)
	if err != nil {
		return err
	}
	if wfp != fp {
		return fmt.Errorf("shard: worker fingerprint %x, want %x", wfp, fp)
	}
	return nil
}

// chunk is a contiguous batch slice with a static owner; a chunk executed
// by another shard is a steal.
type chunk struct {
	lo, hi, owner int
}

// chunkQueue is the shared work queue for one batch. Executors prefer
// their own chunks and steal otherwise; a dying shard requeues its chunk,
// and waiters block until every chunk is done or stranded (no live
// executor left to wake them — the batch loop detects that and bails).
type chunkQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  []chunk
	inflight int
}

func newChunkQueue(chunks []chunk) *chunkQueue {
	q := &chunkQueue{pending: chunks}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pop claims a chunk for shard me, preferring owned chunks. It blocks
// while other shards hold chunks in flight (one may die and requeue) and
// returns false once the batch has fully drained.
func (q *chunkQueue) pop(me int) (chunk, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.pending) > 0 {
			at := 0
			for i, c := range q.pending {
				if c.owner == me {
					at = i
					break
				}
			}
			c := q.pending[at]
			q.pending = append(q.pending[:at], q.pending[at+1:]...)
			q.inflight++
			return c, true
		}
		if q.inflight == 0 {
			return chunk{}, false
		}
		q.cond.Wait()
	}
}

func (q *chunkQueue) done() {
	q.mu.Lock()
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *chunkQueue) requeue(c chunk) {
	q.mu.Lock()
	q.pending = append(q.pending, c)
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

// stranded reports chunks nobody executed (every shard died mid-batch).
func (q *chunkQueue) stranded() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending) > 0 || q.inflight > 0
}

// plan splits n items into contiguous chunks, several per shard, so a
// fast shard has something to steal once its own are done. Chunk
// boundaries never affect outcomes — items are independent and per-index
// — so the split is a pure scheduling choice.
func plan(n, nshards int) []chunk {
	if n == 0 {
		return nil
	}
	per := n / (nshards * 2)
	if per < 1 {
		per = 1
	}
	var chunks []chunk
	for lo, i := 0, 0; lo < n; i++ {
		hi := lo + per
		if hi > n {
			hi = n
		}
		chunks = append(chunks, chunk{lo: lo, hi: hi, owner: i % nshards})
		lo = hi
	}
	return chunks
}

// RunFlips distributes one path-reduction scan. A nil return (all shards
// dead before the batch drained) tells the engine to recompute the whole
// batch locally.
func (c *Coordinator) RunFlips(b core.FlipBatch) []core.FlipOutcome {
	outs := make([]core.FlipOutcome, len(b.Flips))
	ok := c.runBatch(len(b.Flips), kFlipStart, batchStart{bounds: b.Bounds, pool: b.Pool},
		func(s *shardConn, ck chunk) error {
			if err := writeMsg(s.conn, kFlipChunk, encodeFlipChunk(ck.lo, b.Flips[ck.lo:ck.hi])); err != nil {
				return err
			}
			rec, err := readMsg(s.conn)
			if err != nil {
				return err
			}
			if rec.Kind != kFlipReply {
				return fmt.Errorf("shard: expected flip reply, got kind %d", rec.Kind)
			}
			base, res, k, ws, err := decodeFlipReply(rec.Payload)
			if err != nil {
				return err
			}
			if base != ck.lo || len(res) != ck.hi-ck.lo {
				return fmt.Errorf("shard: flip reply [%d,+%d), want [%d,%d)", base, len(res), ck.lo, ck.hi)
			}
			copy(outs[ck.lo:ck.hi], res)
			c.record(s, ws, k)
			return nil
		})
	if !ok {
		return nil
	}
	return outs
}

// RunReduce distributes one pool reduction.
func (c *Coordinator) RunReduce(b core.ReduceBatch) []core.ReduceOutcome {
	outs := make([]core.ReduceOutcome, len(b.Pool))
	ok := c.runBatch(len(b.Pool), kReduceStart, batchStart{bounds: b.Bounds, pool: b.Pool, isRed: true, rc: b.Ctx},
		func(s *shardConn, ck chunk) error {
			if err := writeMsg(s.conn, kReduceChunk, encodeReduceChunk(ck.lo, ck.hi)); err != nil {
				return err
			}
			rec, err := readMsg(s.conn)
			if err != nil {
				return err
			}
			if rec.Kind != kReduceReply {
				return fmt.Errorf("shard: expected reduce reply, got kind %d", rec.Kind)
			}
			lo, res, k, ws, err := decodeReduceReply(rec.Payload)
			if err != nil {
				return err
			}
			if lo != ck.lo || len(res) != ck.hi-ck.lo {
				return fmt.Errorf("shard: reduce reply [%d,+%d), want [%d,%d)", lo, len(res), ck.lo, ck.hi)
			}
			copy(outs[ck.lo:ck.hi], res)
			c.record(s, ws, k)
			return nil
		})
	if !ok {
		return nil
	}
	return outs
}

// runBatch drives one batch: the start frame (with each shard's pending
// relayed knowledge) to every live shard, then per-shard executor
// goroutines self-scheduling from the chunk queue. Any connection error
// kills that shard for the rest of the run — its chunk is requeued and
// its pending relay dropped. Returns false if chunks were stranded.
func (c *Coordinator) runBatch(n int, startKind uint8, bs batchStart, exec func(*shardConn, chunk) error) bool {
	live := 0
	for _, s := range c.shards {
		if s.live.Load() {
			live++
		}
	}
	if live == 0 || n == 0 {
		return false
	}
	q := newChunkQueue(plan(n, live))
	var wg sync.WaitGroup
	for i, s := range c.shards {
		if !s.live.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, s *shardConn) {
			defer wg.Done()
			bs := bs
			bs.relay = c.takeRelay(i)
			if err := writeMsg(s.conn, startKind, encodeStart(startKind, bs)); err != nil {
				c.kill(i, s, err)
				return
			}
			for {
				ck, ok := q.pop(i)
				if !ok {
					return
				}
				if ck.owner != i {
					c.steals.Add(1)
				}
				if err := exec(s, ck); err != nil {
					c.kill(i, s, err)
					q.requeue(ck)
					return
				}
				q.done()
			}
		}(i, s)
	}
	wg.Wait()
	return !q.stranded()
}

func (c *Coordinator) kill(i int, s *shardConn, err error) {
	c.warn("shard %d died: %v", i, err)
	s.live.Store(false)
	s.conn.Close()
	c.deaths.Add(1)
}

// takeRelay drains shard i's pending relayed knowledge.
func (c *Coordinator) takeRelay(i int) knowledge {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	k := c.relay[i]
	c.relay[i] = knowledge{}
	return k
}

// record stores a reply's cumulative solver aggregate (under kmu — shard
// goroutines race each other and Stats readers here) and absorbs its
// knowledge delta.
func (c *Coordinator) record(s *shardConn, ws workerStats, k knowledge) {
	c.kmu.Lock()
	s.stats = ws
	c.kmu.Unlock()
	c.absorb(s, k)
}

// absorb handles one reply's knowledge delta: every entry passes the
// validation ladder exactly once, here at the coordinator's trust
// boundary; what survives enters the coordinator's own cache and the
// other shards' relay queues (workers import relays without revalidating
// — the coordinator is already their root of trust for the job itself).
// Rejected entries are dropped and counted, and their cores die with
// them.
func (c *Coordinator) absorb(from *shardConn, k knowledge) {
	if k.empty() {
		return
	}
	c.kmu.Lock()
	defer c.kmu.Unlock()
	var vetted cache.Export
	okEntries := make(map[cache.Key]bool, len(k.ex.Entries))
	for _, e := range k.ex.Entries {
		v, ok := c.val.vet(e)
		if !ok {
			continue
		}
		okEntries[cache.EntryKey(e.F, e.Bounds)] = true
		vetted.Entries = append(vetted.Entries, cache.ExportedEntry{F: e.F, Bounds: e.Bounds, Value: v})
	}
	for _, co := range k.ex.Cores {
		if okEntries[cache.EntryKey(co.F, co.Bounds)] {
			vetted.Cores = append(vetted.Cores, co)
		}
	}
	c.imported.verdicts += uint64(len(vetted.Entries))
	c.imported.cores += uint64(len(vetted.Cores))
	if c.cache != nil {
		if err := c.cache.Import(vetted); err != nil {
			c.warn("shard knowledge import: %v", err)
			return
		}
		for _, r := range k.retract {
			c.cache.InvalidateKey(cache.EntryKey(r.f, r.bounds))
		}
	}
	if len(vetted.Entries) == 0 && len(vetted.Cores) == 0 && len(k.retract) == 0 {
		return
	}
	for i, s := range c.shards {
		if !s.live.Load() || s == from {
			continue
		}
		c.relay[i].ex.Entries = append(c.relay[i].ex.Entries, vetted.Entries...)
		c.relay[i].ex.Cores = append(c.relay[i].ex.Cores, vetted.Cores...)
		c.relay[i].retract = append(c.relay[i].retract, k.retract...)
	}
}

// Counters implements core.Distributor.
func (c *Coordinator) Counters() core.DistCounters {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	return core.DistCounters{
		Shards:           len(c.shards),
		Steals:           c.steals.Load(),
		Deaths:           c.deaths.Load(),
		ImportedVerdicts: c.imported.verdicts,
		ImportedCores:    c.imported.cores,
		RejectedImports:  c.val.rejected,
	}
}

// SolverStats sums every shard's latest cumulative aggregate (dead shards
// keep their last report) plus the validator's own solve work.
func (c *Coordinator) SolverStats() smt.Stats {
	c.kmu.Lock()
	defer c.kmu.Unlock()
	agg := c.val.stats()
	for _, s := range c.shards {
		agg = agg.Add(s.stats)
	}
	return agg
}

// Close shuts the fleet down: a best-effort shutdown frame, then the
// connections.
func (c *Coordinator) Close() error {
	for _, s := range c.shards {
		if !s.live.Load() {
			continue
		}
		writeMsg(s.conn, kShutdown, nil)
		s.conn.Close()
		s.live.Store(false)
	}
	return nil
}
