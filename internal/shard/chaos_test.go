// Network-chaos differential tests: the repair result must stay
// bit-identical to a clean 1-process run while the shard fleet's
// connections suffer injected delays, reply reordering, mid-frame stalls,
// silent blackholes, and one-way partitions (internal/faultinject.Chaos).
// Where the chaos kills a shard for real, the liveness watchdog must
// declare it dead within the configured timeout and the survivors must
// absorb its chunks — slower, never different.
package shard_test

import (
	"io"
	"sync/atomic"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/faultinject"
	"cpr/internal/shard"
)

// chaosCfg is the fast-failure-detection config the chaos tests run
// under: aggressive enough that injected hangs resolve in test time.
func chaosCfg() shard.Config {
	return shard.Config{Heartbeat: 50 * time.Millisecond, Timeout: 500 * time.Millisecond}
}

// chaosFactory builds a pipes fleet with each connection wrapped in a
// Chaos proxy configured by rig(i, c).
func chaosFactory(n int, cfg shard.Config, rig func(i int, c *faultinject.Chaos), warn func(string, ...any)) func(core.Job, core.Options) (core.Distributor, error) {
	return shard.Factory(func() ([]io.ReadWriteCloser, error) {
		conns := shard.Pipes(n, warn)
		for i := range conns {
			c := faultinject.NewChaos(conns[i])
			rig(i, c)
			conns[i] = c
		}
		return conns, nil
	}, cfg, warn)
}

// TestChaosSlowLinks: uniform injected latency on every connection, at 2
// and 4 shards. Slow links move wall time only.
func TestChaosSlowLinks(t *testing.T) {
	want := baseline(t)
	for _, n := range []int{2, 4} {
		opts := core.Options{Workers: 1}
		opts.NewDistributor = chaosFactory(n, chaosCfg(), func(i int, c *faultinject.Chaos) {
			c.ReadDelay = time.Millisecond
			c.WriteDelay = time.Millisecond
		}, t.Logf)
		res, err := core.Repair(divZeroJob(), opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("shards=%d slow links diverged:\n--- want ---\n%s--- got ---\n%s", n, want, got)
		}
		if res.Stats.ShardDeaths != 0 {
			t.Errorf("shards=%d: %d deaths on merely slow links", n, res.Stats.ShardDeaths)
		}
	}
}

// TestChaosReplyReorder: asymmetric latency across 4 shards makes replies
// arrive in a different interleaving than they were computed. Each stream
// stays ordered (as TCP guarantees); the cross-shard arrival order is the
// thing being scrambled.
func TestChaosReplyReorder(t *testing.T) {
	want := baseline(t)
	delays := []time.Duration{0, 3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond}
	opts := core.Options{Workers: 1}
	opts.NewDistributor = chaosFactory(4, chaosCfg(), func(i int, c *faultinject.Chaos) {
		c.ReadDelay = delays[i]
	}, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("reply reordering diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// countingConn tallies bytes read, to calibrate byte-offset faults
// against the run's real traffic instead of magic numbers.
type countingConn struct {
	io.ReadWriteCloser
	n *int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.ReadWriteCloser.Read(p)
	atomic.AddInt64(c.n, int64(n))
	return n, err
}

// measureShardBytes runs a clean 2-shard repair and reports the bytes the
// coordinator read from shard 0 — the calibration for mid-stream faults.
func measureShardBytes(t *testing.T) int64 {
	t.Helper()
	var bytes int64
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.Factory(func() ([]io.ReadWriteCloser, error) {
		conns := shard.Pipes(2, t.Logf)
		conns[0] = countingConn{ReadWriteCloser: conns[0], n: &bytes}
		return conns, nil
	}, shard.Config{}, t.Logf)
	if _, err := core.Repair(divZeroJob(), opts); err != nil {
		t.Fatalf("calibration Repair: %v", err)
	}
	if bytes == 0 {
		t.Fatal("calibration run read no bytes from shard 0")
	}
	return bytes
}

// TestChaosMidFrameStall stalls shard 0's reply stream mid-run — and, for
// any frame spanning the byte threshold, mid-frame, the case idle
// timeouts miss. A stall shorter than the liveness deadline must be
// absorbed; one longer must kill the shard, whose chunks the survivor
// then recomputes. Both end bit-identical.
func TestChaosMidFrameStall(t *testing.T) {
	want := baseline(t)
	half := measureShardBytes(t) / 2
	run := func(stall time.Duration) *core.Result {
		t.Helper()
		opts := core.Options{Workers: 1}
		opts.NewDistributor = chaosFactory(2, chaosCfg(), func(i int, c *faultinject.Chaos) {
			if i == 0 {
				c.StallAfterBytes = int(half)
				c.StallFor = stall
			}
		}, t.Logf)
		res, err := core.Repair(divZeroJob(), opts)
		if err != nil {
			t.Fatalf("Repair (stall %v): %v", stall, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("stall %v diverged:\n--- want ---\n%s--- got ---\n%s", stall, want, got)
		}
		return res
	}
	t.Run("absorbed", func(t *testing.T) {
		res := run(150 * time.Millisecond) // < Timeout: survives
		if res.Stats.ShardDeaths != 0 {
			t.Errorf("ShardDeaths = %d for a stall within the deadline", res.Stats.ShardDeaths)
		}
	})
	t.Run("fatal", func(t *testing.T) {
		res := run(10 * time.Second) // > Timeout: watchdog kills the shard
		if res.Stats.ShardDeaths != 1 {
			t.Errorf("ShardDeaths = %d, want 1", res.Stats.ShardDeaths)
		}
		if res.Stats.ShardHeartbeatsMissed != 1 {
			t.Errorf("ShardHeartbeatsMissed = %d, want 1", res.Stats.ShardHeartbeatsMissed)
		}
	})
}

// TestChaosBlackhole: shard 0's connection goes silent shortly after the
// handshake — no error, no data, the pure liveness-timeout case. The
// watchdog must declare it dead within Config.Timeout and the run must
// finish promptly on the survivor, bit-identically.
func TestChaosBlackhole(t *testing.T) {
	want := baseline(t)

	cleanStart := time.Now()
	baseline(t) // time a healthy reference run on this machine
	cleanDur := time.Since(cleanStart)

	cfg := chaosCfg()
	opts := core.Options{Workers: 1}
	opts.NewDistributor = chaosFactory(2, cfg, func(i int, c *faultinject.Chaos) {
		if i == 0 {
			// Past the handshake (ready frame, ~2 reads) and the first
			// reply or two, then silence.
			c.BlackholeAfterReads = 6
		}
	}, t.Logf)
	start := time.Now()
	res, err := core.Repair(divZeroJob(), opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("blackhole diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths != 1 {
		t.Errorf("ShardDeaths = %d, want 1", res.Stats.ShardDeaths)
	}
	if res.Stats.ShardHeartbeatsMissed != 1 {
		t.Errorf("ShardHeartbeatsMissed = %d, want 1", res.Stats.ShardHeartbeatsMissed)
	}
	// A hung shard must cost at most the liveness deadline, not a hang:
	// generous multipliers absorb loaded CI machines, but a watchdog
	// regression (minutes of stall) still fails loudly.
	if bound := 4*cleanDur + cfg.Timeout + 5*time.Second; elapsed > bound {
		t.Errorf("blackholed run took %v, bound %v (clean run %v, timeout %v)", elapsed, bound, cleanDur, cfg.Timeout)
	}
}

// TestChaosOneWayPartition: shard 0 accepts the connection but every
// coordinator frame vanishes (writes dropped from the start). The fleet
// must start degraded on the survivor instead of aborting.
func TestChaosOneWayPartition(t *testing.T) {
	want := baseline(t)
	opts := core.Options{Workers: 1}
	opts.NewDistributor = chaosFactory(2, chaosCfg(), func(i int, c *faultinject.Chaos) {
		if i == 0 {
			c.DropWritesAfter = 0
		}
	}, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("one-way partition diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDegradedStarts != 1 {
		t.Errorf("ShardDegradedStarts = %d, want 1", res.Stats.ShardDegradedStarts)
	}
}

// TestChaosHedgeRescue: a one-shot stall makes shard 0 a straggler while
// the hedge floor is low; the idle survivor must speculatively re-run the
// straggling chunk (first reply wins, duplicates discarded) and the
// result must not move.
func TestChaosHedgeRescue(t *testing.T) {
	want := baseline(t)
	half := measureShardBytes(t) / 2
	cfg := shard.Config{
		Heartbeat: 50 * time.Millisecond,
		Timeout:   10 * time.Second, // the straggler must survive: hedging, not death
		Hedge:     30 * time.Millisecond,
	}
	opts := core.Options{Workers: 1}
	opts.NewDistributor = chaosFactory(2, cfg, func(i int, c *faultinject.Chaos) {
		if i == 0 {
			c.StallAfterBytes = int(half)
			c.StallFor = 400 * time.Millisecond
		}
	}, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("hedged run diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardHedges == 0 {
		t.Error("no chunk was hedged despite a straggling shard and an idle survivor")
	}
	if res.Stats.ShardDeaths != 0 {
		t.Errorf("ShardDeaths = %d; the straggler should have been hedged, not killed", res.Stats.ShardDeaths)
	}
	if got := res.Stats.ShardHedgeWins + res.Stats.ShardHedgeLosses; got != res.Stats.ShardHedges {
		t.Errorf("hedge wins (%d) + losses (%d) != hedges (%d)", res.Stats.ShardHedgeWins, res.Stats.ShardHedgeLosses, res.Stats.ShardHedges)
	}
}
