package shard

import (
	"sort"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/journal"
	"cpr/internal/lang"
	"cpr/internal/smt"
	"cpr/internal/smt/guard"
	"cpr/internal/synth"
)

func sortStrings(s []string) { sort.Strings(s) }

// encSlice/decSlice preserve nil-ness: several Components fields mean
// "use the default set" when nil, and the replica must synthesize the
// exact same pool.
func encOps(m *journal.Encoder, ops []expr.Op) {
	m.Bool(ops != nil)
	if ops == nil {
		return
	}
	m.U64(uint64(len(ops)))
	for _, op := range ops {
		m.U64(uint64(op))
	}
}

func decOps(d *journal.Decoder) ([]expr.Op, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	n := d.U64()
	if err := countCheck(n, "ops"); err != nil {
		return nil, err
	}
	ops := make([]expr.Op, 0, n)
	for i := uint64(0); i < n; i++ {
		ops = append(ops, expr.Op(d.U64()))
	}
	return ops, d.Err()
}

func encStrs(m *journal.Encoder, s []string) {
	m.Bool(s != nil)
	if s == nil {
		return
	}
	m.U64(uint64(len(s)))
	for _, v := range s {
		m.Str(v)
	}
}

func decStrs(d *journal.Decoder) ([]string, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	n := d.U64()
	if err := countCheck(n, "strings"); err != nil {
		return nil, err
	}
	s := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s = append(s, d.Str())
	}
	return s, d.Err()
}

func encComponents(m *journal.Encoder, c synth.Components) {
	names := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		names = append(names, n)
	}
	sortStrings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.U64(uint64(c.Vars[n]))
	}
	m.Bool(c.Consts != nil)
	if c.Consts != nil {
		m.U64(uint64(len(c.Consts)))
		for _, v := range c.Consts {
			m.I64(v)
		}
	}
	encStrs(m, c.Params)
	m.I64(c.ParamRange.Lo)
	m.I64(c.ParamRange.Hi)
	encOps(m, c.Arith)
	encOps(m, c.Cmp)
	encOps(m, c.Bool)
	m.Int(c.MaxTemplates)
	m.Bool(c.SuppressDeletion)
	encStrs(m, c.ExtraTemplates)
}

func decComponents(d *journal.Decoder) (synth.Components, error) {
	var c synth.Components
	nv := d.U64()
	if err := countCheck(nv, "component vars"); err != nil {
		return c, err
	}
	if nv > 0 {
		c.Vars = make(map[string]lang.Type, nv)
		for i := uint64(0); i < nv; i++ {
			name := d.Str()
			c.Vars[name] = lang.Type(d.U64())
		}
	}
	if d.Bool() {
		nc := d.U64()
		if err := countCheck(nc, "component consts"); err != nil {
			return c, err
		}
		c.Consts = make([]int64, 0, nc)
		for i := uint64(0); i < nc; i++ {
			c.Consts = append(c.Consts, d.I64())
		}
	}
	var err error
	if c.Params, err = decStrs(d); err != nil {
		return c, err
	}
	c.ParamRange = interval.Interval{Lo: d.I64(), Hi: d.I64()}
	if c.Arith, err = decOps(d); err != nil {
		return c, err
	}
	if c.Cmp, err = decOps(d); err != nil {
		return c, err
	}
	if c.Bool, err = decOps(d); err != nil {
		return c, err
	}
	c.MaxTemplates = d.Int()
	c.SuppressDeletion = d.Bool()
	if c.ExtraTemplates, err = decStrs(d); err != nil {
		return c, err
	}
	return c, d.Err()
}

// encOptions ships every option that determines the replica's behavior:
// the trajectory options (the fingerprinted set), the solver budgets and
// tiers (verdicts must degrade identically on both ends), and the guard
// configuration. Coordinator-only concerns — cancellation, checkpointing,
// worker count, the distributor itself — never cross the wire.
func encOptions(m *journal.Encoder, o core.Options) {
	m.Bool(o.DisablePathReduction)
	m.U64(uint64(o.SplitMode))
	m.Int(o.MaxQueue)
	m.Int(o.MaxStepsPerRun)
	m.Bool(o.ModelCountRanking)
	m.Bool(o.Batch)
	m.U64(uint64(o.Queue))
	s := o.SMT
	m.I64(s.DefaultBounds.Lo)
	m.I64(s.DefaultBounds.Hi)
	m.I64(s.LIA.EnumLimit)
	m.Int(s.LIA.MaxSteps)
	m.Int(s.LIA.MaxConstraints)
	m.Int(s.MaxTheoryRounds)
	m.U64(s.MaxConflicts)
	m.Dur(s.MaxQueryDuration)
	m.Int(s.Portfolio)
	m.Bool(s.Incremental)
	m.Int(s.MaxContextClauses)
	m.Bool(s.Paranoid)
	m.Int(s.Guard.CrossCheckEvery)
	m.Bool(s.Guard.Paranoid)
	m.Int(s.Guard.BreakerThreshold)
	m.Dur(s.Guard.RebuildBackoff)
	m.Dur(s.Guard.RebuildBackoffMax)
}

func decOptions(d *journal.Decoder) (core.Options, error) {
	var o core.Options
	o.DisablePathReduction = d.Bool()
	o.SplitMode = interval.SplitMode(d.U64())
	o.MaxQueue = d.Int()
	o.MaxStepsPerRun = d.Int()
	o.ModelCountRanking = d.Bool()
	o.Batch = d.Bool()
	o.Queue = core.QueuePolicy(d.U64())
	o.SMT = smt.Options{
		DefaultBounds: interval.Interval{Lo: d.I64(), Hi: d.I64()},
	}
	o.SMT.LIA.EnumLimit = d.I64()
	o.SMT.LIA.MaxSteps = d.Int()
	o.SMT.LIA.MaxConstraints = d.Int()
	o.SMT.MaxTheoryRounds = d.Int()
	o.SMT.MaxConflicts = d.U64()
	o.SMT.MaxQueryDuration = d.Dur()
	o.SMT.Portfolio = d.Int()
	o.SMT.Incremental = d.Bool()
	o.SMT.MaxContextClauses = d.Int()
	o.SMT.Paranoid = d.Bool()
	o.SMT.Guard = guard.Config{
		CrossCheckEvery:   d.Int(),
		Paranoid:          d.Bool(),
		BreakerThreshold:  d.Int(),
		RebuildBackoff:    d.Dur(),
		RebuildBackoffMax: d.Dur(),
	}
	return o, d.Err()
}

// workerStats is a shard's cumulative solver aggregate, shipped in full
// (unlike the snapshot codec, which persists only the resume-relevant
// subset) so sharded runs report the same table columns local runs do.
type workerStats = smt.Stats

func encWorkerStats(m *journal.Encoder, s workerStats) {
	m.U64(s.Queries)
	m.U64(s.TheoryRounds)
	m.U64(s.SatAnswers)
	m.U64(s.UnsatAnswers)
	m.U64(s.Unknowns)
	m.U64(s.Panics)
	m.U64(s.CacheHits)
	m.U64(s.CacheMisses)
	m.U64(s.EncodeCacheHits)
	m.U64(s.EncodeCacheMisses)
	m.U64(s.ClausesLearned)
	m.U64(s.ClausesKept)
	m.U64(s.ClausesDeleted)
	m.U64(s.AssumptionCores)
	m.U64(s.AssumptionCoreLits)
	m.Dur(s.SatTime)
	m.Dur(s.LIATime)
	m.Dur(s.ValidateTime)
	m.U64(s.PortfolioRaces)
	m.U64(s.PortfolioMirrorWins)
	m.U64(s.PortfolioShared)
	m.U64(s.BatchQueries)
	m.U64(s.BatchItems)
	m.U64(s.BatchBisections)
	m.U64(s.Validations)
	m.U64(s.ValidationFailures)
	m.U64(s.Quarantines)
	m.U64(s.FallbackSolves)
	m.U64(s.RebuildRetries)
	m.U64(s.BreakerTrips)
}

func decWorkerStats(d *journal.Decoder) workerStats {
	var s workerStats
	s.Queries = d.U64()
	s.TheoryRounds = d.U64()
	s.SatAnswers = d.U64()
	s.UnsatAnswers = d.U64()
	s.Unknowns = d.U64()
	s.Panics = d.U64()
	s.CacheHits = d.U64()
	s.CacheMisses = d.U64()
	s.EncodeCacheHits = d.U64()
	s.EncodeCacheMisses = d.U64()
	s.ClausesLearned = d.U64()
	s.ClausesKept = d.U64()
	s.ClausesDeleted = d.U64()
	s.AssumptionCores = d.U64()
	s.AssumptionCoreLits = d.U64()
	s.SatTime = d.Dur()
	s.LIATime = d.Dur()
	s.ValidateTime = d.Dur()
	s.PortfolioRaces = d.U64()
	s.PortfolioMirrorWins = d.U64()
	s.PortfolioShared = d.U64()
	s.BatchQueries = d.U64()
	s.BatchItems = d.U64()
	s.BatchBisections = d.U64()
	s.Validations = d.U64()
	s.ValidationFailures = d.U64()
	s.Quarantines = d.U64()
	s.FallbackSolves = d.U64()
	s.RebuildRetries = d.U64()
	s.BreakerTrips = d.U64()
	return s
}
