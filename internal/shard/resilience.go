package shard

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"
	"time"
)

// Fleet resilience. PR 8's coordinator only survived *clean* failures —
// a closed connection errors the next read and the shard is declared
// dead. A hung, slow, or partitioned shard produced no error at all, so
// one gray failure could stall a generation for the whole budget. This
// file adds the liveness machinery: per-frame deadlines (deadlineConn),
// the knobs that tune them (Config), and the jittered-backoff reconnect
// loop that re-admits a shard slot after its connection died.

// Config tunes the fleet's failure detection and recovery. The zero
// value means "defaults"; negative durations disable the corresponding
// mechanism. None of these knobs can change repair results — they decide
// only when work moves between shards, and chunks are pure functions of
// their input.
type Config struct {
	// Heartbeat is the interval at which a worker emits heartbeat frames
	// while computing a chunk, proving liveness between data frames
	// (default 1s; negative disables). Workers are idle-silent: between
	// chunks the coordinator is not reading, so an idle heartbeat could
	// block forever on an unbuffered transport.
	Heartbeat time.Duration
	// Timeout is the per-frame read/write deadline on every coordinator-
	// side connection (default 10s; negative disables). A shard that
	// produces no frame — data or heartbeat — for this long is declared
	// dead and its chunks are requeued to survivors.
	Timeout time.Duration
	// Hedge enables straggler hedging: a chunk in flight longer than
	// max(Hedge, 2×p90 of this batch's completed chunks) is speculatively
	// re-issued to an idle shard, first reply wins (0 disables). Duplicate
	// results are identical by construction, so hedging is purely a tail-
	// latency lever.
	Hedge time.Duration

	// DialAttempts, DialBackoff, and DialBackoffMax shape the jittered
	// exponential backoff of initial TCP dials (defaults 3, 100ms, 2s).
	DialAttempts   int
	DialBackoff    time.Duration
	DialBackoffMax time.Duration
	// NoReconnect disables mid-run redialing of dead TCP shard slots
	// (DialFactory re-admits by default).
	NoReconnect bool
}

func (c Config) withDefaults() Config {
	if c.Heartbeat == 0 {
		c.Heartbeat = time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.DialAttempts == 0 {
		c.DialAttempts = 3
	}
	if c.DialBackoff == 0 {
		c.DialBackoff = 100 * time.Millisecond
	}
	if c.DialBackoffMax == 0 {
		c.DialBackoffMax = 2 * time.Second
	}
	return c
}

// heartbeat is the interval shipped to workers in the hello (0 = none).
func (c Config) heartbeat() time.Duration {
	if c.Heartbeat < 0 {
		return 0
	}
	return c.Heartbeat
}

// ErrShardTimeout marks a connection killed by the liveness deadline;
// the coordinator counts it as a missed heartbeat rather than a plain
// transport death.
var ErrShardTimeout = errors.New("shard: liveness deadline exceeded")

// deadlineConn enforces a per-call deadline on Read and Write with a
// watchdog that closes the underlying connection when it fires. Closing
// is the one interruption that works uniformly across every transport we
// run on — net.Pipe, subprocess pipes, and TCP — and it is not
// destructive here: a deadline expiry declares the shard dead anyway.
type deadlineConn struct {
	rwc      io.ReadWriteCloser
	timeout  time.Duration
	timedOut atomic.Bool
	closed   atomic.Bool
}

// wrapDeadline applies the Config timeout to a connection (pass-through
// when disabled or conn is nil).
func wrapDeadline(conn io.ReadWriteCloser, timeout time.Duration) io.ReadWriteCloser {
	if conn == nil || timeout <= 0 {
		return conn
	}
	return &deadlineConn{rwc: conn, timeout: timeout}
}

func (d *deadlineConn) guard(op func([]byte) (int, error), p []byte) (int, error) {
	t := time.AfterFunc(d.timeout, func() {
		d.timedOut.Store(true)
		d.rwc.Close()
	})
	n, err := op(p)
	t.Stop()
	if err != nil && d.timedOut.Load() {
		err = fmt.Errorf("%w (%v without a frame)", ErrShardTimeout, d.timeout)
	}
	return n, err
}

func (d *deadlineConn) Read(p []byte) (int, error)  { return d.guard(d.rwc.Read, p) }
func (d *deadlineConn) Write(p []byte) (int, error) { return d.guard(d.rwc.Write, p) }

func (d *deadlineConn) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	return d.rwc.Close()
}

// jitter spreads a backoff delay over [d/2, 3d/2) so a fleet of
// reconnecting workers does not retry in lockstep. Reconnect timing can
// never move results, so true randomness is fine here.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// enableReconnect arms mid-run re-admission: every currently-dead slot
// gets a redial loop now, and every future death starts one. Loops stop
// when the coordinator closes.
func (c *Coordinator) enableReconnect(dial func(i int) (io.ReadWriteCloser, error), cfg Config) {
	cfg = cfg.withDefaults()
	c.onDeath = func(i int) { c.reconnectLoop(i, dial, cfg) }
	for i, s := range c.shards {
		if !s.live.Load() {
			go c.onDeath(i)
		}
	}
}

// reconnectLoop redials one dead shard slot with jittered exponential
// backoff until the slot is re-admitted or the coordinator closes. At
// most one loop runs per slot.
func (c *Coordinator) reconnectLoop(i int, dial func(i int) (io.ReadWriteCloser, error), cfg Config) {
	s := c.shards[i]
	if !s.reconnecting.CompareAndSwap(false, true) {
		return
	}
	defer s.reconnecting.Store(false)
	backoff := cfg.DialBackoff
	for {
		select {
		case <-c.done:
			return
		case <-time.After(jitter(backoff)):
		}
		if backoff *= 2; backoff > cfg.DialBackoffMax {
			backoff = cfg.DialBackoffMax
		}
		conn, err := dial(i)
		if err != nil {
			continue
		}
		if err := c.Admit(i, conn); err != nil {
			if errors.Is(err, errCoordinatorClosed) {
				return
			}
			c.warn("shard %d re-admission failed: %v", i, err)
			continue
		}
		return
	}
}
