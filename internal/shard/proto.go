// Package shard distributes the repair engine's fan-out work — flip
// feasibility scans and pool reductions — across shard processes, with
// cross-shard knowledge sharing and a validation ladder that keeps a
// lying or corrupted peer from poisoning anyone else's verdict cache.
//
// Topology: one coordinator (the process running core.Repair) owns the
// frontier, the pool, and every merge; N workers hold engine replicas
// (core.WorkerEngine) and execute chunks on request. Chunks self-schedule
// from a shared queue, so a fast shard steals work a slow one would
// strand, and a dead shard's chunks are re-dispatched or recomputed
// locally — in every case the merged outcomes are bit-identical to a
// 1-process run, the same contract the in-process worker pool makes.
//
// The wire format is the PR 5 snapshot encoding inside length-framed,
// CRC-guarded records (journal.WriteFrame): each frame's payload opens
// with a term table and fails closed on any corruption.
package shard

import (
	"fmt"
	"io"
	"time"

	"cpr/internal/concolic"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/journal"
	"cpr/internal/lang"
	"cpr/internal/smt/cache"
)

// protoVersion is the shard protocol version; both ends refuse a peer
// speaking another one. Version 2 added the heartbeat interval to the
// hello and the kHeartbeat frame.
const protoVersion = 2

// Frame kinds. Start frames carry batch-wide state and have no reply;
// chunk frames are strict request/reply on one connection — except
// kHeartbeat, which a worker may interleave before its reply while
// computing a chunk to prove liveness; the coordinator skips them.
const (
	kHello uint8 = iota + 1
	kReady
	kFlipStart
	kFlipChunk
	kFlipReply
	kReduceStart
	kReduceChunk
	kReduceReply
	kShutdown
	kHeartbeat
)

// maxCount bounds every decoded collection length: orders of magnitude
// above any real batch, small enough to fail closed fast on corruption.
const maxCount = 1 << 20

// retraction withdraws one previously shared cache entry (see
// cache.DrainInvalidations).
type retraction struct {
	f      *expr.Term
	bounds string
}

// knowledge is one direction's share of learned results: verdict-cache
// entries (with their subsumption cores) plus retractions of entries
// shared earlier.
type knowledge struct {
	ex      cache.Export
	retract []retraction
}

func (k knowledge) empty() bool {
	return len(k.ex.Entries) == 0 && len(k.ex.Cores) == 0 && len(k.retract) == 0
}

// buildPayload assembles a frame payload: the term table for every term
// the body references, then the body.
func buildPayload(build func(m *journal.Encoder, te *journal.TermEncoder)) []byte {
	te := journal.NewTermEncoder()
	var body journal.Encoder
	build(&body, te)
	return append(te.Table(), body.Bytes()...)
}

// openPayload re-interns a frame payload's term table and positions the
// decoder at the body.
func openPayload(p []byte) (*journal.Decoder, *journal.TermDecoder, error) {
	d := journal.NewDecoder(p)
	td, err := journal.DecodeTermTable(d)
	if err != nil {
		return nil, nil, err
	}
	return d, td, nil
}

func countCheck(n uint64, what string) error {
	if n > maxCount {
		return fmt.Errorf("%w: %s count %d", journal.ErrCorrupt, what, n)
	}
	return nil
}

// --- shared field codecs ---

func encBounds(m *journal.Encoder, b map[string]interval.Interval) {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sortStrings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.I64(b[n].Lo)
		m.I64(b[n].Hi)
	}
}

func decBounds(d *journal.Decoder) (map[string]interval.Interval, error) {
	n := d.U64()
	if err := countCheck(n, "bounds"); err != nil {
		return nil, err
	}
	b := make(map[string]interval.Interval, n)
	for i := uint64(0); i < n; i++ {
		name := d.Str()
		b[name] = interval.Interval{Lo: d.I64(), Hi: d.I64()}
	}
	return b, d.Err()
}

func encPool(m *journal.Encoder, ps []core.PatchState) {
	m.U64(uint64(len(ps)))
	for _, p := range ps {
		m.Int(p.ID)
		m.F64(p.Score)
		m.Int(p.Deletions)
		core.EncodeRegion(m, p.Region)
	}
}

func decPool(d *journal.Decoder) ([]core.PatchState, error) {
	n := d.U64()
	if err := countCheck(n, "pool"); err != nil {
		return nil, err
	}
	ps := make([]core.PatchState, 0, n)
	for i := uint64(0); i < n; i++ {
		p := core.PatchState{ID: d.Int(), Score: d.F64(), Deletions: d.Int()}
		r, err := core.DecodeRegion(d)
		if err != nil {
			return nil, err
		}
		p.Region = r
		ps = append(ps, p)
	}
	return ps, d.Err()
}

func encKnowledge(m *journal.Encoder, te *journal.TermEncoder, k knowledge) {
	core.EncodeCacheExport(m, te, k.ex)
	m.U64(uint64(len(k.retract)))
	for _, r := range k.retract {
		m.U64(te.ID(r.f))
		m.Str(r.bounds)
	}
}

func decKnowledge(d *journal.Decoder, td *journal.TermDecoder) (knowledge, error) {
	var k knowledge
	ex, err := core.DecodeCacheExport(d, td)
	if err != nil {
		return k, err
	}
	k.ex = ex
	n := d.U64()
	if err := countCheck(n, "retractions"); err != nil {
		return k, err
	}
	for i := uint64(0); i < n; i++ {
		f, err := td.Term(d.U64())
		if err != nil {
			return k, err
		}
		k.retract = append(k.retract, retraction{f: f, bounds: d.Str()})
	}
	return k, d.Err()
}

func encReduceCtx(m *journal.Encoder, te *journal.TermEncoder, rc core.ReduceContext) {
	m.U64(te.ID(rc.Phi))
	m.U64(te.ID(rc.Sigma))
	m.U64(uint64(len(rc.HoleHits)))
	for _, h := range rc.HoleHits {
		core.EncodeHoleHit(m, te, h)
	}
	m.Bool(rc.HitBug)
	m.Bool(rc.Validation)
}

func decReduceCtx(d *journal.Decoder, td *journal.TermDecoder) (core.ReduceContext, error) {
	var rc core.ReduceContext
	var err error
	if rc.Phi, err = td.Term(d.U64()); err != nil {
		return rc, err
	}
	if rc.Sigma, err = td.Term(d.U64()); err != nil {
		return rc, err
	}
	n := d.U64()
	if err := countCheck(n, "hole hits"); err != nil {
		return rc, err
	}
	for i := uint64(0); i < n; i++ {
		h, err := core.DecodeHoleHit(d, td)
		if err != nil {
			return rc, err
		}
		rc.HoleHits = append(rc.HoleHits, h)
	}
	rc.HitBug = d.Bool()
	rc.Validation = d.Bool()
	return rc, d.Err()
}

// --- hello / ready ---

// Hello ships the whole job and the trajectory- and verdict-determining
// options, so a worker can build a bit-exact engine replica from nothing
// but this frame. The fingerprint is core.RunFingerprint over the same
// data; the worker recomputes it from what it decoded and refuses to
// serve on mismatch (a drifted replica must fail closed, not return
// plausible garbage).
//
// hb is the heartbeat interval the worker must use while computing a
// chunk (0 = no heartbeats). It rides in the hello, not the options: it
// is transport pacing, owned by the coordinator's Config, and never
// enters the run fingerprint.
func encodeHello(fp uint64, job core.Job, opts core.Options, hb time.Duration) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.U64(protoVersion)
		m.Dur(hb)
		m.U64(fp)
		m.Str(lang.Format(job.Program, "__HOLE__"))
		m.U64(te.ID(job.Spec))
		m.Int(job.Budget.MaxIterations)
		m.Int(job.Budget.ValidationIterations)
		m.U64(uint64(len(job.FailingInputs)))
		for _, in := range job.FailingInputs {
			core.EncodeI64Map(m, in)
		}
		m.U64(uint64(len(job.PassingInputs)))
		for _, in := range job.PassingInputs {
			core.EncodeI64Map(m, in)
		}
		encBounds(m, job.InputBounds)
		encComponents(m, job.Components)
		encOptions(m, opts)
	})
}

func decodeHello(p []byte) (fp uint64, job core.Job, opts core.Options, hb time.Duration, err error) {
	d, td, err := openPayload(p)
	if err != nil {
		return 0, job, opts, 0, err
	}
	if v := d.U64(); d.Err() == nil && v != protoVersion {
		return 0, job, opts, 0, fmt.Errorf("%w: shard protocol %d, want %d", journal.ErrVersion, v, protoVersion)
	}
	hb = d.Dur()
	if hb < 0 {
		return 0, job, opts, 0, fmt.Errorf("%w: negative heartbeat interval", journal.ErrCorrupt)
	}
	fp = d.U64()
	src := d.Str()
	if err := d.Err(); err != nil {
		return 0, job, opts, 0, err
	}
	if job.Program, err = lang.Parse(src); err != nil {
		return 0, job, opts, 0, fmt.Errorf("shard: hello program: %w", err)
	}
	if job.Spec, err = td.Term(d.U64()); err != nil {
		return 0, job, opts, 0, err
	}
	job.Budget.MaxIterations = d.Int()
	job.Budget.ValidationIterations = d.Int()
	nf := d.U64()
	if err := countCheck(nf, "failing inputs"); err != nil {
		return 0, job, opts, 0, err
	}
	for i := uint64(0); i < nf; i++ {
		in, err := core.DecodeI64Map(d)
		if err != nil {
			return 0, job, opts, 0, err
		}
		job.FailingInputs = append(job.FailingInputs, in)
	}
	np := d.U64()
	if err := countCheck(np, "passing inputs"); err != nil {
		return 0, job, opts, 0, err
	}
	for i := uint64(0); i < np; i++ {
		in, err := core.DecodeI64Map(d)
		if err != nil {
			return 0, job, opts, 0, err
		}
		job.PassingInputs = append(job.PassingInputs, in)
	}
	if job.InputBounds, err = decBounds(d); err != nil {
		return 0, job, opts, 0, err
	}
	if job.Components, err = decComponents(d); err != nil {
		return 0, job, opts, 0, err
	}
	if opts, err = decOptions(d); err != nil {
		return 0, job, opts, 0, err
	}
	return fp, job, opts, hb, d.Err()
}

func encodeReady(fp uint64) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.U64(protoVersion)
		m.U64(fp)
	})
}

func decodeReady(p []byte) (uint64, error) {
	d, _, err := openPayload(p)
	if err != nil {
		return 0, err
	}
	if v := d.U64(); d.Err() == nil && v != protoVersion {
		return 0, fmt.Errorf("%w: shard protocol %d, want %d", journal.ErrVersion, v, protoVersion)
	}
	fp := d.U64()
	return fp, d.Err()
}

// --- batch start ---

// A start frame re-syncs a worker to the coordinator's batch-start state:
// the phase bounds, the authoritative pool, relayed (already validated)
// peer knowledge — and for reduce batches the execution context. Every
// live shard receives the start before any chunk, which is what makes any
// chunk runnable on any shard (work-stealing, dead-shard re-dispatch).
type batchStart struct {
	bounds map[string]interval.Interval
	pool   []core.PatchState
	relay  knowledge
	isRed  bool
	rc     core.ReduceContext
}

func encodeStart(kind uint8, bs batchStart) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		encBounds(m, bs.bounds)
		encPool(m, bs.pool)
		encKnowledge(m, te, bs.relay)
		if kind == kReduceStart {
			encReduceCtx(m, te, bs.rc)
		}
	})
}

func decodeStart(kind uint8, p []byte) (batchStart, error) {
	var bs batchStart
	d, td, err := openPayload(p)
	if err != nil {
		return bs, err
	}
	if bs.bounds, err = decBounds(d); err != nil {
		return bs, err
	}
	if bs.pool, err = decPool(d); err != nil {
		return bs, err
	}
	if bs.relay, err = decKnowledge(d, td); err != nil {
		return bs, err
	}
	if kind == kReduceStart {
		bs.isRed = true
		if bs.rc, err = decReduceCtx(d, td); err != nil {
			return bs, err
		}
	}
	return bs, d.Err()
}

// --- flip chunks ---

func encodeFlipChunk(base int, flips []concolic.Flip) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.Int(base)
		m.U64(uint64(len(flips)))
		for i := range flips {
			core.EncodeFlip(m, te, &flips[i])
		}
	})
}

func decodeFlipChunk(p []byte) (int, []concolic.Flip, error) {
	d, td, err := openPayload(p)
	if err != nil {
		return 0, nil, err
	}
	base := d.Int()
	n := d.U64()
	if err := countCheck(n, "flips"); err != nil {
		return 0, nil, err
	}
	flips := make([]concolic.Flip, 0, n)
	for i := uint64(0); i < n; i++ {
		f, err := core.DecodeFlip(d, td)
		if err != nil {
			return 0, nil, err
		}
		flips = append(flips, *f)
	}
	return base, flips, d.Err()
}

// A chunk reply carries the outcomes, the worker's knowledge delta since
// its previous reply, and its cumulative solver stats (so the coordinator
// always holds a recent aggregate even if the shard later dies).
func encodeFlipReply(base int, outs []core.FlipOutcome, k knowledge, ws workerStats) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.Int(base)
		m.U64(uint64(len(outs)))
		for _, o := range outs {
			m.Bool(o.OK)
			m.Bool(o.Unknown)
			core.EncodeI64Map(m, o.Input)
			m.Int(o.PatchID)
			core.EncodeI64Map(m, o.Params)
			m.Int(o.Score)
			m.Int(o.Bound)
			m.I64(o.Unknowns)
			m.I64(o.Panics)
		}
		encKnowledge(m, te, k)
		encWorkerStats(m, ws)
	})
}

func decodeFlipReply(p []byte) (int, []core.FlipOutcome, knowledge, workerStats, error) {
	var k knowledge
	var ws workerStats
	d, td, err := openPayload(p)
	if err != nil {
		return 0, nil, k, ws, err
	}
	base := d.Int()
	n := d.U64()
	if err := countCheck(n, "flip outcomes"); err != nil {
		return 0, nil, k, ws, err
	}
	outs := make([]core.FlipOutcome, 0, n)
	for i := uint64(0); i < n; i++ {
		var o core.FlipOutcome
		o.OK = d.Bool()
		o.Unknown = d.Bool()
		if o.Input, err = core.DecodeI64Map(d); err != nil {
			return 0, nil, k, ws, err
		}
		o.PatchID = d.Int()
		if o.Params, err = core.DecodeI64Map(d); err != nil {
			return 0, nil, k, ws, err
		}
		o.Score = d.Int()
		o.Bound = d.Int()
		o.Unknowns = d.I64()
		o.Panics = d.I64()
		outs = append(outs, o)
	}
	if k, err = decKnowledge(d, td); err != nil {
		return 0, nil, k, ws, err
	}
	ws = decWorkerStats(d)
	return base, outs, k, ws, d.Err()
}

// --- reduce chunks ---

func encodeReduceChunk(lo, hi int) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.Int(lo)
		m.Int(hi)
	})
}

func decodeReduceChunk(p []byte) (int, int, error) {
	d, _, err := openPayload(p)
	if err != nil {
		return 0, 0, err
	}
	lo, hi := d.Int(), d.Int()
	return lo, hi, d.Err()
}

func encodeReduceReply(lo int, outs []core.ReduceOutcome, k knowledge, ws workerStats) []byte {
	return buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) {
		m.Int(lo)
		m.U64(uint64(len(outs)))
		for _, o := range outs {
			m.Bool(o.Touched)
			m.Bool(o.Removed)
			m.Bool(o.Refined)
			core.EncodeRegion(m, o.Region)
			m.Int(o.Refinements)
			m.F64(o.Score)
			m.Int(o.Deletions)
			m.I64(o.Unknowns)
			m.I64(o.Panics)
		}
		encKnowledge(m, te, k)
		encWorkerStats(m, ws)
	})
}

func decodeReduceReply(p []byte) (int, []core.ReduceOutcome, knowledge, workerStats, error) {
	var k knowledge
	var ws workerStats
	d, td, err := openPayload(p)
	if err != nil {
		return 0, nil, k, ws, err
	}
	lo := d.Int()
	n := d.U64()
	if err := countCheck(n, "reduce outcomes"); err != nil {
		return 0, nil, k, ws, err
	}
	outs := make([]core.ReduceOutcome, 0, n)
	for i := uint64(0); i < n; i++ {
		var o core.ReduceOutcome
		o.Touched = d.Bool()
		o.Removed = d.Bool()
		o.Refined = d.Bool()
		if o.Region, err = core.DecodeRegion(d); err != nil {
			return 0, nil, k, ws, err
		}
		o.Refinements = d.Int()
		o.Score = d.F64()
		o.Deletions = d.Int()
		o.Unknowns = d.I64()
		o.Panics = d.I64()
		outs = append(outs, o)
	}
	if k, err = decKnowledge(d, td); err != nil {
		return 0, nil, k, ws, err
	}
	ws = decWorkerStats(d)
	return lo, outs, k, ws, d.Err()
}

// --- frame I/O ---

func writeMsg(w io.Writer, kind uint8, payload []byte) error {
	return journal.WriteFrame(w, kind, payload)
}

func readMsg(r io.Reader) (journal.Record, error) {
	return journal.ReadFrame(r)
}
