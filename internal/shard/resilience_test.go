// Black-box reconnection tests over real TCP: a shard whose connection
// dies mid-run must be redialed with backoff and re-admitted through the
// normal handshake as a late joiner — and the repair result must stay
// bit-identical to the 1-process run throughout.
package shard_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/shard"
)

// failFirstListener passes accepted connections through, except the
// first, which dies server-side after a read budget — a worker host that
// drops its first coordinator mid-run but accepts the redial.
type failFirstListener struct {
	net.Listener
	mu    sync.Mutex
	first bool
}

func (l *failFirstListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.first {
		l.first = true
		return &dyingNetConn{Conn: conn, budget: 30}, nil
	}
	return conn, nil
}

// dyingNetConn is dyingConn's net.Conn twin, for the server side of a
// TCP worker.
type dyingNetConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (d *dyingNetConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	d.budget--
	dead := d.budget < 0
	d.mu.Unlock()
	if dead {
		d.Conn.Close()
		return 0, net.ErrClosed
	}
	return d.Conn.Read(p)
}

// TestShardTCPReconnectLateJoin: a two-shard TCP fleet loses shard 0
// mid-run; the coordinator must redial it (jittered backoff), re-admit it
// through the hello/fingerprint handshake, and re-sync it at the next
// batch start — with the result unchanged.
func TestShardTCPReconnectLateJoin(t *testing.T) {
	want := baseline(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go shard.Serve(&failFirstListener{Listener: l}, nil)

	addr := l.Addr().String()
	cfg := shard.Config{
		Heartbeat:      50 * time.Millisecond,
		Timeout:        5 * time.Second,
		DialBackoff:    10 * time.Millisecond,
		DialBackoffMax: 50 * time.Millisecond,
	}
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.DialFactory([]string{addr, addr}, cfg, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair over TCP with a dying shard: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("TCP reconnect run diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths == 0 {
		t.Error("the injected connection loss killed no shard")
	}
	if res.Stats.ShardReconnects == 0 {
		t.Error("the dead shard slot was never re-admitted")
	}
}

// TestShardNoReconnect: with reconnection disabled the dead slot stays
// dead — the survivor finishes alone, still bit-identically.
func TestShardNoReconnect(t *testing.T) {
	want := baseline(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go shard.Serve(&failFirstListener{Listener: l}, nil)

	cfg := shard.Config{Heartbeat: 50 * time.Millisecond, Timeout: 5 * time.Second, NoReconnect: true}
	addr := l.Addr().String()
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.DialFactory([]string{addr, addr}, cfg, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("no-reconnect run diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths == 0 {
		t.Error("the injected connection loss killed no shard")
	}
	if res.Stats.ShardReconnects != 0 {
		t.Errorf("ShardReconnects = %d with NoReconnect set", res.Stats.ShardReconnects)
	}
}
