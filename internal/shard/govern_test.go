package shard_test

import (
	"testing"

	"cpr/internal/core"
	"cpr/internal/faultinject"
	"cpr/internal/govern"
	"cpr/internal/shard"
)

// TestGovernForcedRungWithShards extends the memory governor's
// differential contract across process-shaped boundaries: with the high
// rung forced at every barrier (cache shrinks, context retirement, and
// frontier spill all firing) a sharded run still reproduces the
// unpressured 1-process result bit-identically.
func TestGovernForcedRungWithShards(t *testing.T) {
	want := baseline(t)
	for _, rung := range []govern.Rung{govern.RungHigh, govern.RungCritical} {
		rung := rung
		t.Run("rung="+rung.String(), func(t *testing.T) {
			faultinject.Activate(&faultinject.Plan{MemRungEvery: 1, MemRung: int(rung)})
			defer faultinject.Deactivate()
			g := govern.New(govern.Config{CriticalStopPolls: 1 << 30})
			opts := core.Options{Workers: 1, Govern: g, SpillDir: t.TempDir()}
			opts.NewDistributor = shard.PipesFactory(2, shard.Config{}, nil)
			res, err := core.Repair(divZeroJob(), opts)
			if err != nil {
				t.Fatalf("governed sharded Repair: %v", err)
			}
			if got := fingerprint(res); got != want {
				t.Fatalf("rung %s with shards diverged:\n--- want ---\n%s--- got ---\n%s", rung, want, got)
			}
			st := res.Stats
			if st.Shards != 2 {
				t.Errorf("Stats.Shards = %d, want 2", st.Shards)
			}
			if st.GovernPolls == 0 || st.MemRungHigh+st.MemRungCritical == 0 {
				t.Fatalf("forced rung never classified: %+v", st)
			}
			if st.MemCacheShrinks == 0 {
				t.Error("no verdict-cache shrink under pressure")
			}
			if st.MemStopped || st.TimedOut {
				t.Errorf("transient pressure stopped the run: %+v", st)
			}
		})
	}
}
