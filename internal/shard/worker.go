package shard

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/journal"
	"cpr/internal/smt/cache"
)

// workerState is one shard worker serving one coordinator connection: an
// engine replica plus the bookkeeping that makes knowledge exchange a
// delta protocol (what was already shipped, what the coordinator relayed
// from peers).
type workerState struct {
	we *core.WorkerEngine
	rc core.ReduceContext
	// sent marks cache entries already shipped to (or relayed from) the
	// coordinator, so each reply carries only new knowledge and a relayed
	// entry never echoes back. A retraction clears the mark, so a
	// re-learned verdict ships again.
	sent map[cache.Key]bool
	// hb is the heartbeat interval from the hello (0 = none); wmu
	// serializes replies with the heartbeat goroutine's frames so the two
	// never interleave mid-frame on the wire.
	hb  time.Duration
	wmu sync.Mutex
}

// send writes one frame under the write mutex.
func (w *workerState) send(rw io.Writer, kind uint8, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeMsg(rw, kind, payload)
}

// startBeats emits heartbeat frames every hb while a chunk computes, so
// the coordinator's per-frame deadline distinguishes "slow but alive"
// from "hung". The returned stop function waits for the goroutine, which
// keeps ordering simple: every heartbeat precedes the chunk's reply.
// Workers heartbeat only while computing — the coordinator is guaranteed
// to be reading then; an idle heartbeat could block forever on an
// unbuffered transport whose coordinator is between batches.
func (w *workerState) startBeats(rw io.Writer) func() {
	if w.hb <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(w.hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if err := w.send(rw, kHeartbeat, nil); err != nil {
					return // conn is dead; the main loop will hit it too
				}
			}
		}
	}()
	return func() { close(stop); <-done }
}

// ServeConn runs the worker side of the shard protocol on one connection
// until the coordinator shuts it down or the connection drops. warn (may
// be nil) receives human-readable notes about degraded operation.
//
// The handshake is strictly ordered for unbuffered transports: the
// coordinator speaks first (wire header, then hello), the worker answers
// (wire header, then ready). The worker recomputes the run fingerprint
// from the hello it decoded and refuses to serve on mismatch — a replica
// that would diverge must fail closed before it computes anything.
func ServeConn(rw io.ReadWriter, warn func(format string, args ...any)) error {
	if warn == nil {
		warn = func(string, ...any) {}
	}
	if err := journal.ReadWireHeader(rw); err != nil {
		return err
	}
	rec, err := readMsg(rw)
	if err != nil {
		return err
	}
	if rec.Kind != kHello {
		return fmt.Errorf("shard: expected hello, got frame kind %d", rec.Kind)
	}
	fp, job, opts, hb, err := decodeHello(rec.Payload)
	if err != nil {
		return err
	}
	we, err := core.NewWorkerEngine(job, opts)
	if err != nil {
		return fmt.Errorf("shard: replica build: %w", err)
	}
	if we.Fingerprint() != fp {
		return fmt.Errorf("shard: replica fingerprint %x, coordinator sent %x", we.Fingerprint(), fp)
	}
	if err := journal.WriteWireHeader(rw); err != nil {
		return err
	}
	if err := writeMsg(rw, kReady, encodeReady(we.Fingerprint())); err != nil {
		return err
	}

	w := &workerState{we: we, sent: make(map[cache.Key]bool), hb: hb}
	for {
		rec, err := readMsg(rw)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch rec.Kind {
		case kFlipStart, kReduceStart:
			bs, err := decodeStart(rec.Kind, rec.Payload)
			if err != nil {
				return err
			}
			if err := w.applyStart(bs); err != nil {
				return err
			}
		case kFlipChunk:
			base, flips, err := decodeFlipChunk(rec.Payload)
			if err != nil {
				return err
			}
			beatStop := w.startBeats(rw)
			outs := we.RunFlips(flips)
			beatStop()
			reply := encodeFlipReply(base, outs, w.collectDelta(), we.SolverStats())
			if err := w.send(rw, kFlipReply, reply); err != nil {
				return err
			}
		case kReduceChunk:
			lo, hi, err := decodeReduceChunk(rec.Payload)
			if err != nil {
				return err
			}
			beatStop := w.startBeats(rw)
			outs := we.RunReduce(w.rc, lo, hi)
			beatStop()
			if outs == nil {
				return fmt.Errorf("shard: reduce chunk [%d,%d) out of range", lo, hi)
			}
			reply := encodeReduceReply(lo, outs, w.collectDelta(), we.SolverStats())
			if err := w.send(rw, kReduceReply, reply); err != nil {
				return err
			}
		case kShutdown:
			return nil
		default:
			return fmt.Errorf("shard: unexpected frame kind %d", rec.Kind)
		}
	}
}

// applyStart re-syncs the replica to a batch's start state. Relayed
// knowledge is imported without revalidation: the coordinator validated it
// once at its own trust boundary, and the coordinator already supplies the
// job, the options, and the pool — a worker that distrusts it has nothing
// left to compute with. Relayed entries are marked sent so they never echo
// back in this worker's deltas.
func (w *workerState) applyStart(bs batchStart) error {
	w.we.SetBounds(bs.bounds)
	if err := w.we.ApplyPool(bs.pool); err != nil {
		return err
	}
	if !bs.relay.empty() {
		if err := w.we.Cache().Import(bs.relay.ex); err != nil {
			return err
		}
		for _, e := range bs.relay.ex.Entries {
			w.sent[cache.EntryKey(e.F, e.Bounds)] = true
		}
		for _, r := range bs.relay.retract {
			k := cache.EntryKey(r.f, r.bounds)
			w.we.Cache().InvalidateKey(k)
			delete(w.sent, k)
		}
		// The relay's own invalidation echoes are not knowledge this
		// worker learned; drop them so the next delta stays clean.
		w.we.Cache().DrainInvalidations()
	}
	if bs.isRed {
		w.rc = bs.rc
	}
	return nil
}

// collectDelta gathers the knowledge learned since the previous reply:
// new cache entries (with cores only for entries in the same delta) and
// retractions of entries shipped earlier. Under an active faultinject
// plan, outgoing copies are corrupted per the lie schedule — the worker's
// own cache stays truthful, modeling a peer that lies on the wire.
func (w *workerState) collectDelta() knowledge {
	full := w.we.Cache().Export()
	var k knowledge
	inDelta := make(map[cache.Key]bool)
	for _, e := range full.Entries {
		ek := cache.EntryKey(e.F, e.Bounds)
		if w.sent[ek] {
			continue
		}
		w.sent[ek] = true
		inDelta[ek] = true
		k.ex.Entries = append(k.ex.Entries, corruptEntry(e))
	}
	for _, c := range full.Cores {
		if inDelta[cache.EntryKey(c.F, c.Bounds)] {
			k.ex.Cores = append(k.ex.Cores, c)
		}
	}
	for _, key := range w.we.Cache().DrainInvalidations() {
		if !w.sent[key] {
			continue
		}
		delete(w.sent, key)
		f, b := key.Fields()
		k.retract = append(k.retract, retraction{f: f, bounds: b})
	}
	return k
}

// corruptEntry applies the active fault plan's lie (if any) to an
// outgoing entry copy. The mutation is on the export's clone — the
// worker's own cache is untouched.
func corruptEntry(e cache.ExportedEntry) cache.ExportedEntry {
	switch faultinject.ShardLie() {
	case faultinject.SolverFlipModel:
		if e.Value.Sat && e.Value.Model != nil {
			names := make([]string, 0, len(e.Value.Model))
			for n := range e.Value.Model {
				names = append(names, n)
			}
			if len(names) > 0 {
				sort.Strings(names)
				e.Value.Model[names[0]] ^= 1 << 40
			}
		}
	case faultinject.SolverSpuriousUnsat:
		e.Value.Sat = !e.Value.Sat
		e.Value.Model = nil
	case faultinject.SolverTruncateCore:
		if e.Value.Sat == false && e.F.Op == expr.OpAnd && len(e.F.Args) > 1 {
			e.F = expr.And(e.F.Args[:len(e.F.Args)-1]...)
		}
	}
	return e
}
