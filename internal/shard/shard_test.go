// Differential tests for distributed exploration: the repair result —
// pool, ranking, headline stats — must be bit-identical between a
// 1-process run and any shard count, including under shard death
// mid-run (work-stealing recovery) and with every shard dead (local
// fallback). This is the same determinism contract the in-process worker
// pool proves in core's parallel tests, extended across process
// boundaries.
package shard_test

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/shard"
	"cpr/internal/synth"
)

// workerEnv marks a re-exec of this test binary as a shard worker
// subprocess (see TestMain and the SIGKILL test); hangEnv marks one as a
// wedged worker that ignores stdin EOF forever (the procConn force-kill
// test).
const (
	workerEnv = "CPR_SHARD_TEST_WORKER"
	hangEnv   = "CPR_SHARD_TEST_HANG"
)

func TestMain(m *testing.M) {
	if os.Getenv(hangEnv) == "1" {
		select {} // wedge: never exit on EOF, must be killed
	}
	if os.Getenv(workerEnv) == "1" {
		if err := shard.ServeStdio(nil); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const divZeroSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

func divZeroJob() core.Job {
	prog := lang.MustParse(divZeroSubject)
	return core.Job{
		Program: prog,
		Spec: expr.And(
			expr.Ne(expr.IntVar("x"), expr.Int(0)),
			expr.Ne(expr.IntVar("y"), expr.Int(0)),
		),
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   interval.New(-10, 10),
			Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
			Bool:         []expr.Op{expr.OpOr},
			Arith:        []expr.Op{},
			MaxTemplates: 40,
		},
		InputBounds: map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
		},
		Budget: core.Budget{MaxIterations: 25, ValidationIterations: 8},
	}
}

// fingerprint renders what the distribution contract promises to be
// shard-count-independent (shard counters and cache traffic excluded).
func fingerprint(res *core.Result) string {
	var b strings.Builder
	st := res.Stats
	fmt.Fprintf(&b, "stats P %d->%d pool %d->%d phiE=%d phiS=%d gen=%d patchHits=%d bugHits=%d ref=%d rem=%d\n",
		st.PInit, st.PFinal, st.PoolInit, st.PoolFinal, st.PathsExplored, st.PathsSkipped,
		st.InputsGenerated, st.PatchLocHits, st.BugLocHits, st.Refinements, st.Removals)
	for _, p := range res.Pool.Patches {
		fmt.Fprintf(&b, "pool %d %s count=%d\n", p.ID, p, p.Constraint.Count())
	}
	for i, p := range res.Ranked {
		fmt.Fprintf(&b, "rank %d: id=%d score=%.6f\n", i+1, p.ID, p.Score)
	}
	return b.String()
}

func baseline(t *testing.T) string {
	t.Helper()
	res, err := core.Repair(divZeroJob(), core.Options{Workers: 1})
	if err != nil {
		t.Fatalf("baseline Repair: %v", err)
	}
	return fingerprint(res)
}

// TestShardDifferential is the tentpole contract: 1, 2, and 4 shards all
// reproduce the 1-process result bit-identically, and multi-shard runs
// actually exchange knowledge.
func TestShardDifferential(t *testing.T) {
	want := baseline(t)
	for _, n := range []int{1, 2, 4} {
		opts := core.Options{Workers: 1}
		opts.NewDistributor = shard.PipesFactory(n, shard.Config{}, nil)
		res, err := core.Repair(divZeroJob(), opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("shards=%d diverged from 1-process run:\n--- want ---\n%s--- got ---\n%s", n, want, got)
		}
		if res.Stats.Shards != n {
			t.Errorf("shards=%d: Stats.Shards = %d", n, res.Stats.Shards)
		}
		if n > 1 {
			if res.Stats.ShardImportedVerdicts == 0 {
				t.Errorf("shards=%d: no knowledge imported across shards", n)
			}
			if res.Stats.ShardRejectedImports != 0 {
				t.Errorf("shards=%d: %d honest imports rejected", n, res.Stats.ShardRejectedImports)
			}
		}
		if res.Stats.ShardDeaths != 0 {
			t.Errorf("shards=%d: %d shard deaths on healthy transports", n, res.Stats.ShardDeaths)
		}
	}
}

// dyingConn passes frames through until budget reads, then snaps the
// connection — a deterministic stand-in for a shard crash mid-run.
type dyingConn struct {
	io.ReadWriteCloser
	mu     sync.Mutex
	budget int
}

func (d *dyingConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	d.budget--
	dead := d.budget < 0
	d.mu.Unlock()
	if dead {
		d.ReadWriteCloser.Close()
		return 0, fmt.Errorf("dyingConn: injected connection loss")
	}
	return d.ReadWriteCloser.Read(p)
}

// TestShardDeathRecovery kills one of two shards mid-run: the survivor
// must steal the dead shard's chunks and the result must not change.
func TestShardDeathRecovery(t *testing.T) {
	want := baseline(t)
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.Factory(func() ([]io.ReadWriteCloser, error) {
		conns := shard.Pipes(2, nil)
		// Budget 8 outlives the handshake (header + ready, ~4 reads) and
		// the first reply or two, then shard 0 drops mid-generation. It
		// must be small: how many replies shard 0 serves before the run
		// ends depends on work-stealing balance, so a large budget may
		// never trip on a fast (warmed-up) run.
		conns[0] = &dyingConn{ReadWriteCloser: conns[0], budget: 8}
		return conns, nil
	}, shard.Config{}, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair with dying shard: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("death recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths != 1 {
		t.Errorf("ShardDeaths = %d, want 1", res.Stats.ShardDeaths)
	}
	if res.Stats.ShardSteals == 0 {
		t.Error("survivor stole no chunks from the dead shard")
	}
}

// TestShardAllDeadFallsBack: with every shard dead the engine must finish
// the run locally, bit-identically.
func TestShardAllDeadFallsBack(t *testing.T) {
	want := baseline(t)
	opts := core.Options{Workers: 1}
	opts.NewDistributor = shard.Factory(func() ([]io.ReadWriteCloser, error) {
		conns := shard.Pipes(2, nil)
		for i := range conns {
			conns[i] = &dyingConn{ReadWriteCloser: conns[i], budget: 8 + 4*i}
		}
		return conns, nil
	}, shard.Config{}, t.Logf)
	res, err := core.Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair with all shards dying: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("local fallback diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths != 2 {
		t.Errorf("ShardDeaths = %d, want 2", res.Stats.ShardDeaths)
	}
}

// TestShardSubprocessSIGKILL runs real worker subprocesses (re-execs of
// this test binary) and SIGKILLs one after the fleet handshake: the run
// must finish on the survivor with the 1-process result.
func TestShardSubprocessSIGKILL(t *testing.T) {
	want := baseline(t)
	job := divZeroJob()
	opts := core.Options{Workers: 1}

	os.Setenv(workerEnv, "1")
	conns, err := shard.Spawn(2, nil)
	os.Unsetenv(workerEnv)
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	coord, err := shard.New(job, opts, conns, shard.Config{}, nil, t.Logf)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	proc, ok := conns[0].(interface{ Proc() *os.Process })
	if !ok {
		t.Fatal("spawned connection does not expose its process")
	}
	if err := proc.Proc().Kill(); err != nil {
		t.Fatalf("SIGKILL shard 0: %v", err)
	}
	// Give the kernel a moment to tear the pipes down so the coordinator
	// sees the death rather than buffering into the void.
	time.Sleep(50 * time.Millisecond)

	opts.NewDistributor = func(core.Job, core.Options) (core.Distributor, error) { return coord, nil }
	res, err := core.Repair(job, opts)
	if err != nil {
		t.Fatalf("Repair after SIGKILL: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("SIGKILL recovery diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	if res.Stats.ShardDeaths != 1 {
		t.Errorf("ShardDeaths = %d, want 1", res.Stats.ShardDeaths)
	}
	if res.Stats.ShardSteals == 0 {
		t.Error("survivor stole no chunks from the killed shard")
	}
}
