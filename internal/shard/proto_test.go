// White-box codec tests for the shard wire protocol: hello frames must
// round-trip a job and its options losslessly — including the nil-ness of
// synthesis component slices, which selects defaults worker-side — and
// every decoder must fail closed on corrupt payloads rather than hand the
// engine a half-parsed structure.
package shard

import (
	"strings"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/journal"
	"cpr/internal/lang"
	"cpr/internal/synth"
)

func helloJob() (core.Job, core.Options) {
	prog := lang.MustParse(`
void main(int x) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 10 / x;
}
`)
	job := core.Job{
		Program:       prog,
		Spec:          expr.Ne(expr.IntVar("x"), expr.Int(0)),
		FailingInputs: []map[string]int64{{"x": 0}},
		PassingInputs: []map[string]int64{{"x": 3}, {"x": -2}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt},
			Params:       []string{"a"},
			ParamRange:   interval.New(-5, 5),
			Cmp:          []expr.Op{expr.OpEq, expr.OpLt},
			Bool:         nil,         // nil-ness is meaningful: selects defaults
			Arith:        []expr.Op{}, // empty ≠ nil: suppresses arithmetic
			MaxTemplates: 12,
		},
		InputBounds: map[string]interval.Interval{"x": interval.New(-50, 50)},
		Budget:      core.Budget{MaxIterations: 9, ValidationIterations: 3},
	}
	opts := core.Options{Workers: 1, Batch: true, MaxQueue: 77}
	opts.SMT.Incremental = true
	opts.SMT.Portfolio = 3
	opts.SMT.MaxConflicts = 1234
	opts.SMT.MaxQueryDuration = 250 * time.Millisecond
	opts.SMT.Guard.CrossCheckEvery = 16
	return job, opts
}

func TestHelloRoundTrip(t *testing.T) {
	job, opts := helloJob()
	fp := core.RunFingerprint(job, opts)
	p := encodeHello(fp, job, opts, 250*time.Millisecond)
	gotFP, gotJob, gotOpts, gotHB, err := decodeHello(p)
	if err != nil {
		t.Fatalf("decodeHello: %v", err)
	}
	if gotHB != 250*time.Millisecond {
		t.Errorf("heartbeat interval %v != 250ms", gotHB)
	}
	if gotFP != fp {
		t.Errorf("fingerprint %d != %d", gotFP, fp)
	}
	// The decisive check: the decoded job/options must produce the same
	// run fingerprint, which hashes everything verdict-relevant.
	if refp := core.RunFingerprint(gotJob, gotOpts); refp != fp {
		t.Errorf("re-fingerprint %d != %d: hello lost verdict-relevant state", refp, fp)
	}
	if gotJob.Components.Bool != nil {
		t.Errorf("nil Bool ops decoded as %v; defaults would be suppressed", gotJob.Components.Bool)
	}
	if gotJob.Components.Arith == nil {
		t.Error("empty (non-nil) Arith ops decoded as nil; defaults would be re-enabled")
	}
	if len(gotJob.PassingInputs) != 2 || gotJob.PassingInputs[1]["x"] != -2 {
		t.Errorf("passing inputs mangled: %v", gotJob.PassingInputs)
	}
	if gotOpts.SMT.MaxQueryDuration != opts.SMT.MaxQueryDuration {
		t.Errorf("MaxQueryDuration %v != %v", gotOpts.SMT.MaxQueryDuration, opts.SMT.MaxQueryDuration)
	}
	if gotOpts.SMT.Guard.CrossCheckEvery != opts.SMT.Guard.CrossCheckEvery {
		t.Errorf("Guard.CrossCheckEvery %d != %d", gotOpts.SMT.Guard.CrossCheckEvery, opts.SMT.Guard.CrossCheckEvery)
	}
}

func TestWorkerStatsRoundTrip(t *testing.T) {
	var s workerStats
	// Distinct primes in every field so any crossed wire shows up.
	s.Queries, s.TheoryRounds, s.SatAnswers = 2, 3, 5
	s.UnsatAnswers, s.Unknowns, s.Panics = 7, 11, 13
	s.CacheHits, s.CacheMisses = 17, 19
	s.EncodeCacheHits, s.EncodeCacheMisses = 23, 29
	s.ClausesLearned, s.ClausesKept, s.ClausesDeleted = 31, 37, 41
	s.AssumptionCores, s.AssumptionCoreLits = 43, 47
	s.SatTime, s.LIATime, s.ValidateTime = 53*time.Millisecond, 59*time.Millisecond, 61*time.Millisecond
	s.PortfolioRaces, s.PortfolioMirrorWins, s.PortfolioShared = 67, 71, 73
	s.BatchQueries, s.BatchItems, s.BatchBisections = 79, 83, 89
	s.Validations, s.ValidationFailures, s.Quarantines = 97, 101, 103
	s.FallbackSolves, s.RebuildRetries, s.BreakerTrips = 107, 109, 113

	p := buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) { encWorkerStats(m, s) })
	d, _, err := openPayload(p)
	if err != nil {
		t.Fatalf("openPayload: %v", err)
	}
	got := decWorkerStats(d)
	if err := d.Err(); err != nil {
		t.Fatalf("decWorkerStats: %v", err)
	}
	if got != s {
		t.Errorf("stats round-trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

// TestHelloDecodeFailsClosed truncates and bit-flips a valid hello at
// every byte offset: decodeHello must return an error or a payload that
// re-fingerprints identically — never silently accept altered state.
func TestHelloDecodeFailsClosed(t *testing.T) {
	job, opts := helloJob()
	fp := core.RunFingerprint(job, opts)
	p := encodeHello(fp, job, opts, time.Second)

	for cut := 0; cut < len(p); cut += 7 {
		if _, _, _, _, err := decodeHello(p[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(p))
		}
	}
	// Transport corruption is normally caught by the frame CRC; these
	// payload-level flips test the layers behind it. A flip that decodes
	// cleanly and passes the worker's handshake check (recomputed
	// fingerprint vs the embedded one) must not have touched any
	// verdict-relevant state — fingerprint-excluded pacing fields may
	// drift, but those cannot move repair results by construction.
	for off := 0; off < len(p); off += 11 {
		mut := make([]byte, len(p))
		copy(mut, p)
		mut[off] ^= 0x40
		gfp, gjob, gopts, _, err := decodeHello(mut)
		if err != nil {
			continue
		}
		if core.RunFingerprint(gjob, gopts) != gfp {
			continue // the worker would refuse to serve this hello
		}
		if gfp != fp {
			t.Errorf("bit flip at %d altered verdict-relevant state undetected", off)
		}
	}
}

func TestDecodeHelloRejectsWrongVersion(t *testing.T) {
	job, opts := helloJob()
	p := encodeHello(1, job, opts, 0)
	// Re-encode with a bumped version by patching the first varint-free
	// field; easier: build a payload with a wrong leading version.
	bad := buildPayload(func(m *journal.Encoder, te *journal.TermEncoder) { m.U64(protoVersion + 1) })
	if _, _, _, _, err := decodeHello(bad); err == nil || !strings.Contains(err.Error(), "shard protocol") {
		t.Errorf("wrong version accepted (err=%v)", err)
	}
	if _, _, _, _, err := decodeHello(p); err != nil {
		t.Errorf("control: valid hello rejected: %v", err)
	}
}
