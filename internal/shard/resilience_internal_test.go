// White-box tests for the fleet-resilience machinery: the per-frame
// liveness deadline (deadlineConn), the hedged chunk queue's
// first-reply-wins discipline, subprocess reaping of wedged workers, and
// transport error paths (mid-loop spawn failure, partially-reachable
// dials). The differential chaos suite (chaos_test.go) proves these keep
// results bit-identical; here the mechanisms are pinned down in
// isolation.
package shard

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestDeadlineConnTimesOut: a read with no incoming frame must fail with
// ErrShardTimeout once the watchdog fires — not hang.
func TestDeadlineConnTimesOut(t *testing.T) {
	coord, work := net.Pipe()
	defer work.Close()
	dc := wrapDeadline(coord, 100*time.Millisecond)
	start := time.Now()
	buf := make([]byte, 1)
	_, err := dc.Read(buf)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("Read error = %v, want ErrShardTimeout", err)
	}
	if elapsed < 80*time.Millisecond || elapsed > 3*time.Second {
		t.Errorf("deadline fired after %v, want ~100ms", elapsed)
	}
}

// TestDeadlineConnBlockedWrite: the deadline guards writes too — a peer
// that stops draining (net.Pipe writes block without a reader) must not
// wedge the coordinator's dispatch.
func TestDeadlineConnBlockedWrite(t *testing.T) {
	coord, work := net.Pipe()
	defer work.Close()
	dc := wrapDeadline(coord, 100*time.Millisecond)
	if _, err := dc.Write(make([]byte, 64)); !errors.Is(err, ErrShardTimeout) {
		t.Fatalf("Write error = %v, want ErrShardTimeout", err)
	}
}

// TestDeadlineConnResetsPerCall: the deadline is per Read call, not per
// connection lifetime — steady traffic slower than the total-elapsed
// clock but faster than the per-frame deadline must never trip it.
func TestDeadlineConnResetsPerCall(t *testing.T) {
	coord, work := net.Pipe()
	defer work.Close()
	dc := wrapDeadline(coord, 200*time.Millisecond)
	go func() {
		for i := 0; i < 5; i++ {
			time.Sleep(80 * time.Millisecond) // under the deadline each time…
			work.Write([]byte{byte(i)})
		}
	}()
	buf := make([]byte, 1)
	for i := 0; i < 5; i++ { // …but 400ms in total
		if _, err := dc.Read(buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

// TestDeadlineConnPassThrough: nil connections and disabled timeouts wrap
// to themselves, so the zero-overhead path stays zero-overhead.
func TestDeadlineConnPassThrough(t *testing.T) {
	if wrapDeadline(nil, time.Second) != nil {
		t.Error("nil conn did not pass through")
	}
	coord, work := net.Pipe()
	defer coord.Close()
	defer work.Close()
	if wrapDeadline(coord, 0) != coord {
		t.Error("zero timeout did not pass through")
	}
	if wrapDeadline(coord, -1) != coord {
		t.Error("negative timeout did not pass through")
	}
	dc := wrapDeadline(coord, time.Second)
	if err := dc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := dc.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}

// TestChunkQueueHedgeFirstReplyWins exercises the hedging discipline on
// the bare queue: an idle executor duplicates a straggler after the
// floor, exactly one finisher commits, and the win/loss tally follows
// which copy came back first.
func TestChunkQueueHedgeFirstReplyWins(t *testing.T) {
	q := newChunkQueue(plan(8, 2), 10*time.Millisecond)
	type claim struct {
		idx   int
		hedge bool
	}
	var claims []claim
	for {
		_, idx, hedge, ok := q.next(0)
		if !ok || hedge {
			t.Fatalf("draining pending: hedge=%v ok=%v", hedge, ok)
		}
		claims = append(claims, claim{idx, hedge})
		if len(claims) == len(q.states) {
			break
		}
	}

	// Every chunk inflight, none done: an idle executor must hedge the
	// oldest straggler once the 10ms floor passes.
	_, hidx, hedge, ok := q.next(1)
	if !ok || !hedge {
		t.Fatalf("idle executor got hedge=%v ok=%v, want a hedged chunk", hedge, ok)
	}

	// Hedge copy replies first: it commits (wins), the original's late
	// duplicate is discarded.
	if !q.finish(hidx, time.Millisecond, true) {
		t.Error("hedge copy was not the committing finisher")
	}
	if q.finish(hidx, time.Millisecond, false) {
		t.Error("original's duplicate reply was not discarded")
	}

	// Hedge another; this time the original replies first (a loss for the
	// hedge copy).
	_, hidx2, hedge, ok := q.next(1)
	if !ok || !hedge {
		t.Fatalf("second hedge: hedge=%v ok=%v", hedge, ok)
	}
	if !q.finish(hidx2, time.Millisecond, false) {
		t.Error("original was not the committing finisher")
	}
	if q.finish(hidx2, time.Millisecond, true) {
		t.Error("hedge copy's duplicate reply was not discarded")
	}

	if q.hedges != 2 || q.hedgeWins != 1 || q.hedgeLosses != 1 {
		t.Errorf("hedges/wins/losses = %d/%d/%d, want 2/1/1", q.hedges, q.hedgeWins, q.hedgeLosses)
	}

	// Finish the rest; the queue must then report completion, not block.
	for _, cl := range claims {
		if cl.idx == hidx || cl.idx == hidx2 {
			continue
		}
		q.finish(cl.idx, time.Millisecond, false)
	}
	if _, _, _, ok := q.next(0); ok {
		t.Error("next returned work after every chunk committed")
	}
	if q.stranded() {
		t.Error("completed queue reports stranded chunks")
	}
}

// TestChunkQueueAbandonRequeues: a dying executor's unhedged chunk must
// requeue for survivors; a hedged one must not double-requeue while its
// twin is still inflight.
func TestChunkQueueAbandonRequeues(t *testing.T) {
	q := newChunkQueue(plan(2, 2), 0) // one chunk per shard, no hedging
	_, idx, _, ok := q.next(0)
	if !ok {
		t.Fatal("no chunk for shard 0")
	}
	q.abandon(idx)
	_, idx2, hedge, ok := q.next(1)
	if !ok || hedge {
		t.Fatalf("requeued chunk: hedge=%v ok=%v", hedge, ok)
	}
	if idx2 != idx {
		// Shard 1 may get its own chunk first; the abandoned one must
		// still be claimable.
		_, idx3, _, ok := q.next(1)
		if !ok || idx3 != idx {
			t.Fatalf("abandoned chunk %d never requeued (got %d, ok=%v)", idx, idx3, ok)
		}
	}
}

// TestProcConnKillsWedgedWorker: Close must reap a worker that ignores
// stdin EOF — after the grace period it is killed, never waited on
// forever.
func TestProcConnKillsWedgedWorker(t *testing.T) {
	oldGrace := procExitGrace
	procExitGrace = 100 * time.Millisecond
	defer func() { procExitGrace = oldGrace }()

	os.Setenv("CPR_SHARD_TEST_HANG", "1")
	conns, err := Spawn(1, nil)
	os.Unsetenv("CPR_SHARD_TEST_HANG")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	pc := conns[0].(*procConn)
	start := time.Now()
	cerr := pc.Close()
	elapsed := time.Since(start)
	if cerr == nil {
		t.Error("Close returned nil for a killed worker; want its non-zero exit")
	}
	if elapsed > 5*time.Second {
		t.Errorf("Close took %v; the grace period is 100ms", elapsed)
	}
	if pc.cmd.ProcessState == nil || pc.cmd.ProcessState.Success() {
		t.Errorf("worker not reaped as killed: %v", pc.cmd.ProcessState)
	}
	if pc.Close() != cerr {
		t.Error("Close not idempotent")
	}
}

// TestSpawnMidLoopCleanup: when worker k fails to start, workers 0..k-1
// must be closed and reaped, not leaked.
func TestSpawnMidLoopCleanup(t *testing.T) {
	oldStart := startCmd
	defer func() { startCmd = oldStart }()
	var first *exec.Cmd
	calls := 0
	startCmd = func(cmd *exec.Cmd) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("injected spawn failure")
		}
		first = cmd
		return cmd.Start()
	}

	os.Setenv("CPR_SHARD_TEST_WORKER", "1")
	conns, err := Spawn(2, nil)
	os.Unsetenv("CPR_SHARD_TEST_WORKER")
	if err == nil {
		for _, c := range conns {
			c.Close()
		}
		t.Fatal("Spawn succeeded despite injected mid-loop failure")
	}
	if conns != nil {
		t.Errorf("failed Spawn returned %d connections, want nil", len(conns))
	}
	if first == nil {
		t.Fatal("first worker never started")
	}
	if first.ProcessState == nil {
		t.Error("first worker not reaped after mid-loop failure")
	}
}

// TestDialPartialFailure: a fleet with one unreachable address must come
// up degraded on the reachable ones; only a fully unreachable fleet is an
// error.
func TestDialPartialFailure(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	go Serve(l, nil)

	cfg := Config{DialAttempts: 1, DialBackoff: 10 * time.Millisecond, Timeout: 2 * time.Second}
	// Port 1 on loopback refuses immediately on any sane test machine.
	conns, err := Dial([]string{l.Addr().String(), "127.0.0.1:1"}, cfg, t.Logf)
	if err != nil {
		t.Fatalf("Dial with one reachable address: %v", err)
	}
	if conns[0] == nil {
		t.Error("reachable address produced a nil connection")
	}
	if conns[1] != nil {
		t.Error("unreachable address produced a live connection")
		conns[1].Close()
	}
	if conns[0] != nil {
		conns[0].Close()
	}

	if _, err := Dial([]string{"127.0.0.1:1"}, cfg, t.Logf); err == nil {
		t.Error("Dial with no reachable address did not fail")
	}
}

// TestConfigDefaults pins the documented zero-value defaults and the
// negative-disables convention.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Heartbeat != time.Second || c.Timeout != 10*time.Second {
		t.Errorf("liveness defaults = %v/%v, want 1s/10s", c.Heartbeat, c.Timeout)
	}
	if c.DialAttempts != 3 || c.DialBackoff != 100*time.Millisecond || c.DialBackoffMax != 2*time.Second {
		t.Errorf("dial defaults = %d/%v/%v, want 3/100ms/2s", c.DialAttempts, c.DialBackoff, c.DialBackoffMax)
	}
	if c.Hedge != 0 {
		t.Errorf("hedging defaulted on (%v); it must be opt-in", c.Hedge)
	}
	if hb := (Config{Heartbeat: -1}).withDefaults().heartbeat(); hb != 0 {
		t.Errorf("negative heartbeat shipped as %v, want 0 (disabled)", hb)
	}
}
