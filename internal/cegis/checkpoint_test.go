package cegis

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"cpr/internal/core"
	"cpr/internal/faultinject"
)

// crashSentinel is the panic value the in-process crash injector throws.
type crashSentinel struct{}

// runToCrash runs the baseline with checkpointing and an in-process crash
// injected at the nth barrier; it reports whether the crash fired.
func runToCrash(t *testing.T, job core.Job, opts Options, crashAt int) (crashed bool) {
	t.Helper()
	plan := &faultinject.Plan{
		CrashAt: crashAt,
		Crash:   func() { panic(crashSentinel{}) },
	}
	faultinject.Activate(plan)
	defer faultinject.Deactivate()
	defer func() {
		switch r := recover(); r {
		case nil:
		case crashSentinel{}:
			crashed = true
		default:
			panic(r)
		}
	}()
	if _, err := Repair(job, opts); err != nil {
		t.Fatalf("Repair (crash run): %v", err)
	}
	return false
}

func ckptOptions(dir string, interval int, resume bool, warns *[]string) Options {
	return Options{
		Checkpoint: core.CheckpointOptions{
			Dir:      dir,
			Interval: interval,
			Resume:   resume,
			Warn: func(msg string) {
				if warns != nil {
					*warns = append(*warns, msg)
				}
			},
		},
	}
}

// dropWallTimes zeroes the wall-time breakdown before a stats equality
// check: times are measurements of this machine's clock, not run state.
func dropWallTimes(st Stats) Stats {
	st.SatTime, st.LIATime, st.ValidateTime = 0, 0, 0
	return st
}

func assertSameResult(t *testing.T, res, base *Result) {
	t.Helper()
	if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) {
		t.Fatalf("resumed stats diverged:\nresumed:  %+v\nbaseline: %+v", res.Stats, base.Stats)
	}
	if (res.Patch == nil) != (base.Patch == nil) {
		t.Fatalf("resumed patch presence diverged: resumed %v, baseline %v", res.Patch, base.Patch)
	}
	if res.Patch != nil && res.Patch.Expr != base.Patch.Expr {
		t.Fatalf("resumed patch diverged: resumed %s, baseline %s", res.Patch, base.Patch)
	}
	if !reflect.DeepEqual(res.Params, base.Params) {
		t.Fatalf("resumed params diverged: resumed %v, baseline %v", res.Params, base.Params)
	}
}

// TestCEGISResumeEquivalenceAfterCrash is the baseline's differential
// resume contract: kill the run at a barrier, resume from the checkpoint,
// and the result — patch, parameters, and the full Stats struct — is
// bit-identical to the uninterrupted run. Barrier 4 dies mid-exploration
// (a phase-0 snapshot with a live frontier); barrier 11 at interval 1
// dies in refinement (a phase-1 snapshot).
func TestCEGISResumeEquivalenceAfterCrash(t *testing.T) {
	cases := []struct{ interval, crashAt int }{
		{interval: 2, crashAt: 4},
		{interval: 1, crashAt: 11},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("interval=%d/barrier=%d", tc.interval, tc.crashAt), func(t *testing.T) {
			base, err := Repair(divZeroJob(), Options{})
			if err != nil {
				t.Fatalf("Repair (baseline): %v", err)
			}

			dir := t.TempDir()
			if !runToCrash(t, divZeroJob(), ckptOptions(dir, tc.interval, false, nil), tc.crashAt) {
				t.Fatal("crash injection never fired; raise the barrier budget")
			}
			snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
			if len(snaps) == 0 {
				t.Fatal("crashed run left no checkpoint")
			}
			if len(snaps) > 2 {
				t.Fatalf("prune kept %d snapshots, want <= 2", len(snaps))
			}

			var warns []string
			res, err := Repair(divZeroJob(), ckptOptions(dir, tc.interval, true, &warns))
			if err != nil {
				t.Fatalf("Repair (resume): %v", err)
			}
			for _, w := range warns {
				t.Errorf("unexpected resume warning: %s", w)
			}
			assertSameResult(t, res, base)
		})
	}
}

// TestCEGISResumeRejectsForeignSnapshot: a snapshot from a different job
// is refused by fingerprint and the run falls back to a warned fresh
// start that still matches the baseline.
func TestCEGISResumeRejectsForeignSnapshot(t *testing.T) {
	base, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	dir := t.TempDir()
	other := divZeroJob()
	other.FailingInputs = []map[string]int64{{"x": 9, "y": 0}}
	if !runToCrash(t, other, ckptOptions(dir, 2, false, nil), 4) {
		t.Fatal("crash injection never fired")
	}
	var warns []string
	res, err := Repair(divZeroJob(), ckptOptions(dir, 2, true, &warns))
	if err != nil {
		t.Fatalf("Repair (resume): %v", err)
	}
	if len(warns) == 0 {
		t.Fatal("foreign snapshot accepted without a warning")
	}
	assertSameResult(t, res, base)
}

// TestCEGISCheckpointOffIsNoOp: without a checkpoint directory the run
// writes nothing and behaves exactly as before the feature existed.
func TestCEGISCheckpointOffIsNoOp(t *testing.T) {
	base, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	res, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	assertSameResult(t, res, base)
}
