package cegis

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"cpr/internal/concolic"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/journal"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
)

// cegisSnapVersion is the schema version of the baseline's snapshot
// payload; bump on any encoding change. The container format is owned by
// internal/journal.
const cegisSnapVersion = 1

// exploreState is phase 1's resumable loop state. A zero value starts the
// phase fresh; a restored value continues it. After the phase completes,
// obs carries the witnessed paths into refinement.
type exploreState struct {
	queue []exploreItem
	seen  map[uint64]bool
	obs   []pathObs
	iter  int
}

// exploreItem is one queued (input, hole-direction) pair of phase 1.
type exploreItem struct {
	input map[string]int64
	guard *expr.Term
	bound int
}

// refineState is phase 2's resumable loop state: the template cursor, the
// shared round budget, the current template's blocking constraints, and
// the per-template feasible-count ledger.
type refineState struct {
	remaining []int64
	idx       int
	rounds    int
	blocked   []*expr.Term
}

// checkpointer drives periodic snapshot writes for one baseline run. Its
// methods are nil-safe so call sites need no guards when checkpointing is
// disabled.
type checkpointer struct {
	opts        core.CheckpointOptions
	fp          uint64
	solver      *smt.Solver
	ownCache    bool
	cacheRef    *cache.Cache
	stats       *Stats
	baseSolver  smt.Stats
	start       time.Time
	elapsedBase time.Duration
	barrier     uint64
	phase       int
	ex          *exploreState
	ref         *refineState
	// body/framed are scratch buffers reused across snapshot writes (same
	// rationale as core's checkpointer: no regrowing per checkpoint).
	body   journal.Encoder
	framed journal.Encoder
}

func warnf(o core.CheckpointOptions, format string, args ...any) {
	if o.Warn != nil {
		o.Warn(fmt.Sprintf(format, args...))
	}
}

// ckptDefaults mirrors core's CheckpointOptions defaulting (the fields are
// shared; the methods are the engine's own).
func ckptDefaults(o core.CheckpointOptions) core.CheckpointOptions {
	if o.Interval <= 0 {
		o.Interval = 8
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	return o
}

// atBarrier is called at the top of every phase-loop iteration: the
// deterministic point where a snapshot captures a consistent state. It
// writes a due checkpoint, then gives fault injection its chance to kill
// the process — in that order, so a crash never outruns its checkpoint.
func (ck *checkpointer) atBarrier() {
	if ck != nil {
		ck.barrier++
		if ck.barrier%uint64(ck.opts.Interval) == 0 {
			ck.write()
		}
	}
	faultinject.CrashPoint()
}

func (ck *checkpointer) write() {
	elapsed := ck.elapsedBase + time.Since(ck.start)
	payload := ck.encodeSnapshot(elapsed)
	if err := journal.WriteSnapshot(ck.opts.Dir, ck.barrier, payload); err != nil {
		warnf(ck.opts, "cegis checkpoint: write at barrier %d failed: %v", ck.barrier, err)
		return
	}
	if err := journal.Prune(ck.opts.Dir, ck.opts.Keep); err != nil {
		warnf(ck.opts, "cegis checkpoint: prune failed: %v", err)
	}
}

// fingerprintRun hashes the job (shared with core) plus the baseline's
// trajectory-relevant options; wall-clock budgets are excluded. Must be
// called after option defaulting so derived iteration splits are pinned.
func fingerprintRun(job core.Job, opts Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cegis|job:%x|%d:%d:%d", core.JobFingerprint(job),
		opts.ExplorationIterations, opts.RefinementIterations, opts.MaxStepsPerRun)
	return h.Sum64()
}

func (ck *checkpointer) encodeSnapshot(elapsed time.Duration) []byte {
	te := journal.NewTermEncoder()
	ck.body.Reset()
	m := &ck.body

	m.U64(cegisSnapVersion)
	m.U64(ck.fp)
	m.U64(ck.barrier)
	m.Dur(elapsed)
	m.Int(ck.phase)

	encodeCegisStats(m, ck.stats)
	agg := ck.baseSolver.Add(ck.solver.Stats())
	encodeSolverStats(m, agg)
	m.U64(ck.solver.CrossCheckCursor())

	m.Bool(ck.ownCache)
	if ck.ownCache {
		encodeCacheExport(m, te, ck.cacheRef.Export())
	}

	// Witnessed paths, in observation order (both phases need them: phase
	// 1 is still collecting, phase 2 verifies candidates against them).
	m.U64(uint64(len(ck.ex.obs)))
	for _, o := range ck.ex.obs {
		m.U64(te.ID(o.phi))
		m.U64(uint64(len(o.holeHits)))
		for _, h := range o.holeHits {
			encodeHoleHit(m, te, h)
		}
		m.U64(uint64(len(o.bugHits)))
		for _, b := range o.bugHits {
			encodeBugHit(m, te, b)
		}
		m.Bool(o.crashed)
	}

	switch ck.phase {
	case 0:
		m.Int(ck.ex.iter)
		keys := make([]uint64, 0, len(ck.ex.seen))
		for k := range ck.ex.seen {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		m.U64(uint64(len(keys)))
		for _, k := range keys {
			m.U64(k)
		}
		m.U64(uint64(len(ck.ex.queue)))
		for _, it := range ck.ex.queue {
			encodeI64Map(m, it.input)
			m.U64(te.ID(it.guard))
			m.Int(it.bound)
		}
	case 1:
		m.U64(uint64(len(ck.ref.remaining)))
		for _, r := range ck.ref.remaining {
			m.I64(r)
		}
		m.Int(ck.ref.idx)
		m.Int(ck.ref.rounds)
		m.U64(uint64(len(ck.ref.blocked)))
		for _, b := range ck.ref.blocked {
			m.U64(te.ID(b))
		}
	}

	ck.framed.Reset()
	ck.framed.Raw(te.Table())
	ck.framed.Append(m.Bytes())
	return ck.framed.Bytes()
}

// resumeState is a decoded baseline snapshot.
type resumeState struct {
	barrier     uint64
	elapsed     time.Duration
	phase       int
	stats       Stats
	solverAgg   smt.Stats
	cursor      uint64
	hasCache    bool
	cacheExport cache.Export
	obs         []pathObs
	iter        int
	seen        []uint64
	queue       []exploreItem
	ref         refineState
}

// exState returns the phase-1 loop state the snapshot was taken at (for a
// phase-2 snapshot, just the completed observation list).
func (rs *resumeState) exState() *exploreState {
	seen := make(map[uint64]bool, len(rs.seen))
	for _, k := range rs.seen {
		seen[k] = true
	}
	return &exploreState{queue: rs.queue, seen: seen, obs: rs.obs, iter: rs.iter}
}

// loadResume finds and decodes the latest usable snapshot, or returns nil
// (with a warning) when the run must start fresh.
func loadResume(co core.CheckpointOptions, fp uint64) *resumeState {
	snap, err := journal.LoadLatest(co.Dir)
	if err != nil {
		if !errors.Is(err, journal.ErrNoSnapshot) || co.Warn != nil {
			warnf(co, "cegis checkpoint: resume unavailable, starting fresh: %v", err)
		}
		return nil
	}
	rs, gotFP, err := decodeSnapshot(snap.Payload)
	if err != nil {
		warnf(co, "cegis checkpoint: snapshot at barrier %d rejected, starting fresh: %v", snap.Barrier, err)
		return nil
	}
	if rs.barrier != snap.Barrier {
		warnf(co, "cegis checkpoint: snapshot barrier mismatch (%d in payload, %d in container), starting fresh", rs.barrier, snap.Barrier)
		return nil
	}
	if gotFP != fp {
		warnf(co, "cegis checkpoint: snapshot belongs to a different job or configuration, starting fresh")
		return nil
	}
	return rs
}

func decodeSnapshot(payload []byte) (*resumeState, uint64, error) {
	d := journal.NewDecoder(payload)
	td, err := journal.DecodeTermTable(journal.NewDecoder(d.Raw()))
	if err != nil {
		return nil, 0, err
	}
	if v := d.U64(); d.Err() == nil && v != cegisSnapVersion {
		return nil, 0, fmt.Errorf("%w: cegis snapshot version %d, want %d", journal.ErrVersion, v, cegisSnapVersion)
	}
	fp := d.U64()
	rs := &resumeState{}
	rs.barrier = d.U64()
	rs.elapsed = d.Dur()
	rs.phase = d.Int()

	decodeCegisStats(d, &rs.stats)
	decodeSolverStats(d, &rs.solverAgg)
	rs.cursor = d.U64()

	rs.hasCache = d.Bool()
	if rs.hasCache {
		ex, err := decodeCacheExport(d, td)
		if err != nil {
			return nil, 0, err
		}
		rs.cacheExport = ex
	}

	no := d.U64()
	if err := lenCheck(d, no, "observations"); err != nil {
		return nil, 0, err
	}
	rs.obs = make([]pathObs, no)
	for i := range rs.obs {
		o := pathObs{}
		phi, err := td.Term(d.U64())
		if err != nil {
			return nil, 0, err
		}
		o.phi = phi
		nh := d.U64()
		if err := lenCheck(d, nh, "hole hits"); err != nil {
			return nil, 0, err
		}
		for j := uint64(0); j < nh; j++ {
			h, err := decodeHoleHit(d, td)
			if err != nil {
				return nil, 0, err
			}
			o.holeHits = append(o.holeHits, h)
		}
		nb := d.U64()
		if err := lenCheck(d, nb, "bug hits"); err != nil {
			return nil, 0, err
		}
		for j := uint64(0); j < nb; j++ {
			b, err := decodeBugHit(d, td)
			if err != nil {
				return nil, 0, err
			}
			o.bugHits = append(o.bugHits, b)
		}
		o.crashed = d.Bool()
		rs.obs[i] = o
	}

	switch rs.phase {
	case 0:
		rs.iter = d.Int()
		ns := d.U64()
		if err := lenCheck(d, ns, "seen set"); err != nil {
			return nil, 0, err
		}
		rs.seen = make([]uint64, ns)
		for i := range rs.seen {
			rs.seen[i] = d.U64()
		}
		nq := d.U64()
		if err := lenCheck(d, nq, "queue"); err != nil {
			return nil, 0, err
		}
		rs.queue = make([]exploreItem, nq)
		for i := range rs.queue {
			input, err := decodeI64Map(d)
			if err != nil {
				return nil, 0, err
			}
			guard, err := td.Term(d.U64())
			if err != nil {
				return nil, 0, err
			}
			rs.queue[i] = exploreItem{input: input, guard: guard, bound: d.Int()}
		}
	case 1:
		nr := d.U64()
		if err := lenCheck(d, nr, "remaining"); err != nil {
			return nil, 0, err
		}
		rs.ref.remaining = make([]int64, nr)
		for i := range rs.ref.remaining {
			rs.ref.remaining[i] = d.I64()
		}
		rs.ref.idx = d.Int()
		rs.ref.rounds = d.Int()
		nbl := d.U64()
		if err := lenCheck(d, nbl, "blocked constraints"); err != nil {
			return nil, 0, err
		}
		for i := uint64(0); i < nbl; i++ {
			b, err := td.Term(d.U64())
			if err != nil {
				return nil, 0, err
			}
			rs.ref.blocked = append(rs.ref.blocked, b)
		}
	default:
		return nil, 0, fmt.Errorf("%w: cegis snapshot phase %d", journal.ErrCorrupt, rs.phase)
	}
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	return rs, fp, nil
}

// --- field-level codecs (the baseline's own Stats, plus duplicates of
// the small shared helpers; core's equivalents are unexported) ---

func encodeCegisStats(m *journal.Encoder, s *Stats) {
	m.I64(s.PInit)
	m.I64(s.PFinal)
	m.Int(s.PathsExplored)
	m.Int(s.Candidates)
	m.Int(s.Counterexamples)
	m.Bool(s.TimedOut)
	m.Int(s.SolverUnknowns)
	m.Int(s.ExecPanics)
}

func decodeCegisStats(d *journal.Decoder, s *Stats) {
	s.PInit = d.I64()
	s.PFinal = d.I64()
	s.PathsExplored = d.Int()
	s.Candidates = d.Int()
	s.Counterexamples = d.Int()
	s.TimedOut = d.Bool()
	s.SolverUnknowns = d.Int()
	s.ExecPanics = d.Int()
}

func encodeSolverStats(m *journal.Encoder, s smt.Stats) {
	m.U64(s.Queries)
	m.U64(s.TheoryRounds)
	m.U64(s.SatAnswers)
	m.U64(s.UnsatAnswers)
	m.U64(s.Unknowns)
	m.U64(s.Panics)
	m.U64(s.CacheHits)
	m.U64(s.CacheMisses)
	m.U64(s.EncodeCacheHits)
	m.U64(s.EncodeCacheMisses)
	m.U64(s.ClausesLearned)
	m.U64(s.ClausesKept)
	m.U64(s.ClausesDeleted)
	m.U64(s.AssumptionCores)
	m.U64(s.AssumptionCoreLits)
	m.U64(s.Validations)
	m.U64(s.ValidationFailures)
	m.U64(s.Quarantines)
	m.U64(s.FallbackSolves)
	m.U64(s.RebuildRetries)
	m.U64(s.BreakerTrips)
}

func decodeSolverStats(d *journal.Decoder, s *smt.Stats) {
	s.Queries = d.U64()
	s.TheoryRounds = d.U64()
	s.SatAnswers = d.U64()
	s.UnsatAnswers = d.U64()
	s.Unknowns = d.U64()
	s.Panics = d.U64()
	s.CacheHits = d.U64()
	s.CacheMisses = d.U64()
	s.EncodeCacheHits = d.U64()
	s.EncodeCacheMisses = d.U64()
	s.ClausesLearned = d.U64()
	s.ClausesKept = d.U64()
	s.ClausesDeleted = d.U64()
	s.AssumptionCores = d.U64()
	s.AssumptionCoreLits = d.U64()
	s.Validations = d.U64()
	s.ValidationFailures = d.U64()
	s.Quarantines = d.U64()
	s.FallbackSolves = d.U64()
	s.RebuildRetries = d.U64()
	s.BreakerTrips = d.U64()
}

func lenCheck(d *journal.Decoder, n uint64, what string) error {
	if err := d.Err(); err != nil {
		return err
	}
	if n > uint64(len(d.Rest())) {
		return fmt.Errorf("%w: %s count %d exceeds remaining payload", journal.ErrCorrupt, what, n)
	}
	return nil
}

func encodeI64Map(m *journal.Encoder, mp map[string]int64) {
	m.Bool(mp != nil)
	if mp == nil {
		return
	}
	names := make([]string, 0, len(mp))
	for n := range mp {
		names = append(names, n)
	}
	sort.Strings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.I64(mp[n])
	}
}

func decodeI64Map(d *journal.Decoder) (map[string]int64, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	n := d.U64()
	if err := lenCheck(d, n, "map"); err != nil {
		return nil, err
	}
	mp := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		name := d.Str()
		mp[name] = d.I64()
	}
	return mp, d.Err()
}

func encodeHoleHit(m *journal.Encoder, te *journal.TermEncoder, h concolic.HoleHit) {
	m.U64(te.ID(h.Out))
	encodeTermMap(m, te, h.Snapshot)
	encodeI64Map(m, h.Concrete)
	m.Int(h.AtBranch)
}

func decodeHoleHit(d *journal.Decoder, td *journal.TermDecoder) (concolic.HoleHit, error) {
	var h concolic.HoleHit
	out, err := td.Term(d.U64())
	if err != nil {
		return h, err
	}
	h.Out = out
	snap, err := decodeTermMap(d, td)
	if err != nil {
		return h, err
	}
	h.Snapshot = snap
	conc, err := decodeI64Map(d)
	if err != nil {
		return h, err
	}
	if conc != nil {
		h.Concrete = expr.Model(conc)
	}
	h.AtBranch = d.Int()
	return h, d.Err()
}

func encodeBugHit(m *journal.Encoder, te *journal.TermEncoder, b concolic.BugHit) {
	encodeTermMap(m, te, b.Snapshot)
	encodeI64Map(m, b.Concrete)
	m.Int(b.AtBranch)
}

func decodeBugHit(d *journal.Decoder, td *journal.TermDecoder) (concolic.BugHit, error) {
	var b concolic.BugHit
	snap, err := decodeTermMap(d, td)
	if err != nil {
		return b, err
	}
	b.Snapshot = snap
	conc, err := decodeI64Map(d)
	if err != nil {
		return b, err
	}
	if conc != nil {
		b.Concrete = expr.Model(conc)
	}
	b.AtBranch = d.Int()
	return b, d.Err()
}

func encodeTermMap(m *journal.Encoder, te *journal.TermEncoder, mp map[string]*expr.Term) {
	names := make([]string, 0, len(mp))
	for n := range mp {
		names = append(names, n)
	}
	sort.Strings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.U64(te.ID(mp[n]))
	}
}

func decodeTermMap(d *journal.Decoder, td *journal.TermDecoder) (map[string]*expr.Term, error) {
	n := d.U64()
	if err := lenCheck(d, n, "term map"); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, d.Err()
	}
	mp := make(map[string]*expr.Term, n)
	for i := uint64(0); i < n; i++ {
		name := d.Str()
		t, err := td.Term(d.U64())
		if err != nil {
			return nil, err
		}
		mp[name] = t
	}
	return mp, d.Err()
}

func encodeCacheExport(m *journal.Encoder, te *journal.TermEncoder, ex cache.Export) {
	m.U64(uint64(len(ex.Entries)))
	for _, e := range ex.Entries {
		m.U64(te.ID(e.F))
		m.Str(e.Bounds)
		m.Bool(e.Value.Sat)
		encodeI64Map(m, e.Value.Model)
	}
	m.U64(uint64(len(ex.Cores)))
	for _, c := range ex.Cores {
		m.U64(te.ID(c.F))
		m.Str(c.Bounds)
	}
}

func decodeCacheExport(d *journal.Decoder, td *journal.TermDecoder) (cache.Export, error) {
	var ex cache.Export
	ne := d.U64()
	if err := lenCheck(d, ne, "cache entries"); err != nil {
		return ex, err
	}
	for i := uint64(0); i < ne; i++ {
		f, err := td.Term(d.U64())
		if err != nil {
			return ex, err
		}
		bounds := d.Str()
		sat := d.Bool()
		model, err := decodeI64Map(d)
		if err != nil {
			return ex, err
		}
		v := cache.Value{Sat: sat}
		if model != nil {
			v.Model = expr.Model(model)
		}
		ex.Entries = append(ex.Entries, cache.ExportedEntry{F: f, Bounds: bounds, Value: v})
	}
	nc := d.U64()
	if err := lenCheck(d, nc, "cache cores"); err != nil {
		return ex, err
	}
	for i := uint64(0); i < nc; i++ {
		f, err := td.Term(d.U64())
		if err != nil {
			return ex, err
		}
		ex.Cores = append(ex.Cores, cache.ExportedCore{F: f, Bounds: d.Str()})
	}
	return ex, d.Err()
}
