package cegis

import (
	"testing"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

const divZeroSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

func divZeroJob() core.Job {
	prog := lang.MustParse(divZeroSubject)
	return core.Job{
		Program: prog,
		Spec: expr.And(
			expr.Ne(expr.IntVar("x"), expr.Int(0)),
			expr.Ne(expr.IntVar("y"), expr.Int(0)),
		),
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   interval.New(-10, 10),
			Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
			Bool:         []expr.Op{expr.OpOr},
			Arith:        []expr.Op{},
			MaxTemplates: 30,
		},
		InputBounds: map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
		},
		Budget: core.Budget{MaxIterations: 20},
	}
}

// TestCEGISReturnsDeletionPatch reproduces the paper's Finding 2: CEGIS
// terminates at the first candidate that verifies against the collected
// paths, which is a functionality-deleting tautology.
func TestCEGISReturnsDeletionPatch(t *testing.T) {
	res, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Patch == nil {
		t.Fatalf("CEGIS produced no patch: %+v", res.Stats)
	}
	if res.Patch.Expr != expr.True() {
		t.Fatalf("expected the tautology patch (Finding 2), got %s", res.Patch)
	}
	if res.Stats.PathsExplored == 0 {
		t.Fatalf("no exploration: %+v", res.Stats)
	}
	t.Logf("CEGIS stats: %+v", res.Stats)
}

// TestCEGISReductionIsSmall: CEGIS barely reduces the patch space compared
// to its initial size (0% for most paper subjects), because it stops at
// the first verified patch.
func TestCEGISReductionIsSmall(t *testing.T) {
	res, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Stats.PInit == 0 {
		t.Fatal("no initial pool")
	}
	if r := res.Stats.ReductionRatio(); r > 0.10 {
		t.Errorf("CEGIS reduction %.2f unexpectedly large", r)
	}
}

// TestCEGISWithoutDeletionTemplates: when the pool omits the trivial
// guards, CEGIS must work through counterexamples and produce a patch
// that at least passes the collected paths.
func TestCEGISWithoutDeletionTemplates(t *testing.T) {
	job := divZeroJob()
	job.Components.SuppressDeletion = true
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Patch == nil {
		t.Skipf("no patch verified within budget: %+v", res.Stats)
	}
	if res.Patch.Expr.IsConst() {
		t.Fatalf("deletion template slipped in: %s", res.Patch)
	}
	t.Logf("CEGIS found %s with %v (%+v)", res.Patch, res.Params, res.Stats)
}

func TestCEGISErrors(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`)
	if _, err := Repair(core.Job{Program: prog, FailingInputs: []map[string]int64{{"x": 0}}}, Options{}); err != core.ErrNoHole {
		t.Fatalf("want ErrNoHole, got %v", err)
	}
	prog2 := lang.MustParse(`int main(int x) { int y = __HOLE__; return y; }`)
	if _, err := Repair(core.Job{Program: prog2, FailingInputs: []map[string]int64{{"x": 0}}}, Options{}); err != ErrUnsupportedHole {
		t.Fatalf("want ErrUnsupportedHole, got %v", err)
	}
}

// TestCEGISCorrectnessCheck: the returned deletion patch must NOT cover
// the developer patch — that is the point of Finding 2.
func TestCEGISCorrectnessCheck(t *testing.T) {
	job := divZeroJob()
	res, err := Repair(job, Options{})
	if err != nil || res.Patch == nil {
		t.Fatalf("Repair: %v %+v", err, res)
	}
	solver := smt.NewSolver(smt.Options{})
	dev := expr.Or(
		expr.Eq(expr.IntVar("x"), expr.Int(0)),
		expr.Eq(expr.IntVar("y"), expr.Int(0)),
	)
	// Pin the returned params into a concrete patch for the check.
	sub := make(map[string]*expr.Term)
	for k, v := range res.Params {
		sub[k] = expr.Int(v)
	}
	concrete := expr.Subst(res.Patch.Expr, sub)
	ok, _, err := core.Covers(solver, patch.New(1, concrete, nil), dev, job.InputBounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("CEGIS patch %v unexpectedly equals the developer patch", concrete)
	}
}

// TestCEGISTimedOut: a tiny wall-clock budget winds the baseline down with
// TimedOut set and a valid (patchless) best-so-far result — never an error.
func TestCEGISTimedOut(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 1 << 20
	job.Budget.MaxDuration = time.Millisecond
	start := time.Now()
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("overran the 1ms budget by too much: %v", el)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("TimedOut not set: %+v", res.Stats)
	}
}

// TestCEGISCancelled: a pre-cancelled token has the same effect.
func TestCEGISCancelled(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	res, err := Repair(divZeroJob(), Options{Cancel: tok})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("TimedOut not set: %+v", res.Stats)
	}
}

// TestCEGISSurvivesSolverFaults: injected solver faults degrade to counted
// unknowns, not errors.
func TestCEGISSurvivesSolverFaults(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{SolverEvery: 3, SolverKind: faultinject.SolverTimeout})
	defer faultinject.Deactivate()
	res, err := Repair(divZeroJob(), Options{})
	if err != nil {
		t.Fatalf("Repair under faults: %v", err)
	}
	if res.Stats.SolverUnknowns == 0 {
		t.Errorf("degradation invisible: %+v", res.Stats)
	}
}
