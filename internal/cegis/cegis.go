// Package cegis implements the paper's custom CEGIS baseline (§5): a
// counterexample-guided inductive synthesis repair loop that shares CPR's
// concolic engine and synthesizer so the comparison isolates the
// conceptual difference — CEGIS explores the patch space and input space
// one patch / one input at a time, while CPR explores partitions of both.
//
// The budget is split between an initial path-exploration phase (building
// the verification constraint from witnessed program paths) and a
// refinement phase (propose a concrete patch, search the collected paths
// for a counterexample, block it, repeat).
package cegis

import (
	"errors"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/concolic"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
	"cpr/internal/synth"
)

// Options tunes the baseline.
type Options struct {
	// SMT configures the shared solver.
	SMT smt.Options
	// ExplorationIterations bounds phase 1 (default: half of the job's
	// MaxIterations, mirroring the paper's 30min/30min split).
	ExplorationIterations int
	// RefinementIterations bounds phase 2 candidate/verify rounds
	// (default: the other half).
	RefinementIterations int
	// MaxStepsPerRun bounds one concolic execution.
	MaxStepsPerRun int
	// Cancel, when non-nil, winds the baseline down cooperatively; it is
	// combined with the job's MaxDuration/Deadline like core.Repair.
	Cancel *cancel.Token
	// Checkpoint configures crash-safe snapshots, exactly as in
	// core.Options: with a directory set, the baseline snapshots its loop
	// state at phase-iteration barriers, and with Resume it continues a
	// killed run to the result the uninterrupted run would have produced.
	Checkpoint core.CheckpointOptions
}

// Stats mirrors the CEGIS columns of Table 1.
type Stats struct {
	// PInit and PFinal are concrete patch-space sizes; PFinal counts the
	// parameter vectors still feasible under the accumulated synthesis
	// constraints.
	PInit, PFinal int64
	// PathsExplored is φE: paths witnessed during phase 1.
	PathsExplored int
	// Candidates counts proposed concrete patches; Counterexamples counts
	// verification failures.
	Candidates, Counterexamples int
	// TimedOut reports a wall-clock/cancellation wind-down; the Result is
	// then the best-so-far state, not an error.
	TimedOut bool
	// SolverUnknowns counts degraded solver answers (budget, deadline,
	// panic); ExecPanics counts recovered subject-execution panics.
	SolverUnknowns, ExecPanics int
	// SolverQueries totals SMT queries; CacheHits/CacheMisses count the
	// verdict cache's traffic from those queries.
	SolverQueries, CacheHits, CacheMisses uint64
	// Incremental-solver counters (zero with SMT.Incremental off): encoding
	// reuse, CDCL clause learning/retention/deletion, and unsat assumption
	// cores — see the matching core.Stats fields.
	EncodeCacheHits, EncodeCacheMisses          uint64
	ClausesLearned, ClausesKept, ClausesDeleted uint64
	AssumptionCores, AssumptionCoreLits         uint64
	// Self-healing health counters — see the matching core.Stats fields.
	Validations, ValidationFailures uint64
	Quarantines, FallbackSolves     uint64
	RebuildRetries, BreakerTrips    uint64
	// Solver wall-time breakdown — see the matching core.Stats fields.
	SatTime, LIATime, ValidateTime time.Duration
	// Portfolio-race counters (zero with SMT.Portfolio < 2) — see the
	// matching core.Stats fields.
	PortfolioRaces, PortfolioMirrorWins, PortfolioShared uint64
}

// ReductionRatio is 1 − PFinal/PInit.
func (s Stats) ReductionRatio() float64 {
	if s.PInit == 0 {
		return 0
	}
	return 1 - float64(s.PFinal)/float64(s.PInit)
}

// Result is the baseline's outcome: at most one concrete patch.
type Result struct {
	// Patch is the verified template (nil when none verified in budget).
	Patch *patch.Patch
	// Params is the concrete parameter assignment of the returned patch.
	Params expr.Model
	// Stats are the run's measurements.
	Stats Stats
}

// ConcreteExpr returns the parameter-instantiated patch expression, or
// nil when no patch was produced.
func (r *Result) ConcreteExpr() *expr.Term {
	if r.Patch == nil {
		return nil
	}
	sub := make(map[string]*expr.Term, len(r.Params))
	for k, v := range r.Params {
		sub[k] = expr.Int(v)
	}
	return expr.Subst(r.Patch.Expr, sub)
}

// ErrUnsupportedHole is returned for integer holes whose patch dimension
// the baseline cannot flip.
var ErrUnsupportedHole = errors.New("cegis: only boolean patch locations are supported")

// pathObs is one witnessed program path: the verification constraint
// fragment CEGIS accumulates during exploration.
type pathObs struct {
	phi      *expr.Term
	holeHits []concolic.HoleHit
	bugHits  []concolic.BugHit
	crashed  bool
}

// Repair runs the CEGIS baseline on a CPR job.
func Repair(job core.Job, opts Options) (*Result, error) {
	if job.Program.HolePos == nil {
		return nil, core.ErrNoHole
	}
	if job.Program.HoleType != lang.TypeBool {
		return nil, ErrUnsupportedHole
	}
	if len(job.FailingInputs) == 0 {
		return nil, core.ErrNoFailingInput
	}
	if job.Spec == nil {
		job.Spec = expr.True()
	}
	budget := job.Budget
	if budget.MaxIterations == 0 {
		budget.MaxIterations = 100
	}
	if opts.ExplorationIterations == 0 {
		opts.ExplorationIterations = budget.MaxIterations / 2
	}
	if opts.RefinementIterations == 0 {
		opts.RefinementIterations = budget.MaxIterations - opts.ExplorationIterations
	}
	if opts.MaxStepsPerRun == 0 {
		opts.MaxStepsPerRun = 1 << 18
	}
	co := ckptDefaults(opts.Checkpoint)
	ownCache := opts.SMT.Cache == nil

	// Resume, step 1: load the latest intact snapshot before the budget
	// token is derived, so the wall-clock budget can be re-based on the
	// time the killed run already spent (mirrors core.Repair).
	var rs *resumeState
	var fp uint64
	if co.Dir != "" {
		fp = fingerprintRun(job, opts)
		if co.Resume {
			rs = loadResume(co, fp)
		}
	}
	var spent time.Duration
	if rs != nil {
		spent = rs.elapsed
	}
	tok := cancel.WithBudget(opts.Cancel, budget.MaxDuration, spent)
	if !budget.Deadline.IsZero() {
		tok = cancel.WithDeadline(tok, budget.Deadline)
	}
	opts.Cancel = tok
	opts.SMT.Cancel = tok
	if ownCache {
		// Counterexample checks re-solve the same verification constraint
		// under successively blocked parameter vectors; the verdict cache
		// answers the repeats (and shares hits with a caller-provided
		// cache, e.g. cpr-bench running CPR and CEGIS on one subject).
		opts.SMT.Cache = cache.New(cache.Options{})
		if rs != nil && rs.hasCache {
			if err := opts.SMT.Cache.Import(rs.cacheExport); err != nil {
				warnf(co, "cegis checkpoint: verdict-cache import failed, continuing with an empty cache: %v", err)
			}
		}
	}

	solver := smt.NewSolver(opts.SMT)
	templates := synth.Synthesize(job.Components, job.Program.HoleType)
	pool := synth.BuildPool(templates, job.Components)
	stats := Stats{PInit: pool.CountConcrete()}

	var ck *checkpointer
	if co.Dir != "" {
		ck = &checkpointer{opts: co, fp: fp, solver: solver, ownCache: ownCache,
			cacheRef: opts.SMT.Cache, stats: &stats, start: time.Now()}
	}
	var baseSolver smt.Stats
	ex := &exploreState{}
	if rs != nil {
		stats = rs.stats
		baseSolver = rs.solverAgg
		solver.SetCrossCheckCursor(rs.cursor)
		ex = rs.exState()
		if ck != nil {
			ck.baseSolver = baseSolver
			ck.barrier = rs.barrier
			ck.elapsedBase = rs.elapsed
		}
	}

	bounds := inputBounds(job)
	if ck != nil {
		ck.phase = 0
		ck.ex = ex
	}
	if rs == nil || rs.phase == 0 {
		explorePaths(job, solver, bounds, opts, &stats, ck, ex)
	}
	obs := ex.obs

	// Phase 2: counterexample-guided refinement, one template at a time,
	// in pool order (the paper notes this tends to reach a trivial
	// functionality-deleting patch first — Finding 2).
	ref := &refineState{remaining: make([]int64, len(pool.Patches))}
	for i, p := range pool.Patches {
		ref.remaining[i] = p.CountConcrete()
	}
	if rs != nil && rs.phase == 1 {
		// Template synthesis is deterministic under a matching fingerprint,
		// so the snapshot's index-based cursor addresses the same pool.
		ref = &refineState{}
		*ref = rs.ref
	}
	if ck != nil {
		ck.phase = 1
		ck.ref = ref
	}
	for ; ref.idx < len(pool.Patches); ref.idx++ {
		p := pool.Patches[ref.idx]
		if tok.Expired() {
			break
		}
		for ref.rounds < opts.RefinementIterations {
			if tok.Expired() {
				break
			}
			// Refinement barrier: candidate proposal has not started, the
			// previous round's counterexample (if any) is blocked — the
			// state a resumed run re-enters this loop with.
			ck.atBarrier()
			ref.rounds++
			stats.Candidates++
			cand, ok, err := solver.GetModel(expr.And(append([]*expr.Term{p.ConstraintTerm()}, ref.blocked...)...), p.ParamBounds())
			if err != nil {
				// Degraded candidate proposal (budget/deadline/panic): this
				// template is inconclusive; move to the next one.
				stats.SolverUnknowns++
				break
			}
			if !ok {
				ref.remaining[ref.idx] = 0
				break // template exhausted; next one
			}
			params := expr.Model{}
			for _, name := range p.Params {
				params[name] = cand[name]
			}
			cex, err := verify(solver, job, obs, p, params, bounds)
			if err != nil {
				stats.SolverUnknowns++
				continue // inconclusive verification round
			}
			if cex == nil {
				ref.remaining[ref.idx] = countFeasible(p, ref.blocked)
				stats.PFinal = sumExcept(ref.remaining, -1)
				stats.TimedOut = tok.Expired()
				fillSolverStats(&stats, solver, baseSolver)
				return &Result{Patch: p, Params: params, Stats: stats}, nil
			}
			stats.Counterexamples++
			ref.blocked = append(ref.blocked, cex)
			ref.remaining[ref.idx] = countFeasible(p, ref.blocked)
		}
		ref.blocked = nil // constraints on A are per-template
		if ref.rounds >= opts.RefinementIterations {
			break
		}
	}
	stats.PFinal = sumExcept(ref.remaining, -1)
	stats.TimedOut = tok.Expired()
	fillSolverStats(&stats, solver, baseSolver)
	return &Result{Stats: stats}, nil
}

func fillSolverStats(stats *Stats, solver *smt.Solver, base smt.Stats) {
	ss := base.Add(solver.Stats())
	stats.SolverQueries = ss.Queries
	stats.CacheHits = ss.CacheHits
	stats.CacheMisses = ss.CacheMisses
	stats.EncodeCacheHits = ss.EncodeCacheHits
	stats.EncodeCacheMisses = ss.EncodeCacheMisses
	stats.ClausesLearned = ss.ClausesLearned
	stats.ClausesKept = ss.ClausesKept
	stats.ClausesDeleted = ss.ClausesDeleted
	stats.AssumptionCores = ss.AssumptionCores
	stats.AssumptionCoreLits = ss.AssumptionCoreLits
	stats.Validations = ss.Validations
	stats.ValidationFailures = ss.ValidationFailures
	stats.Quarantines = ss.Quarantines
	stats.FallbackSolves = ss.FallbackSolves
	stats.RebuildRetries = ss.RebuildRetries
	stats.BreakerTrips = ss.BreakerTrips
	stats.SatTime = ss.SatTime
	stats.LIATime = ss.LIATime
	stats.ValidateTime = ss.ValidateTime
	stats.PortfolioRaces = ss.PortfolioRaces
	stats.PortfolioMirrorWins = ss.PortfolioMirrorWins
	stats.PortfolioShared = ss.PortfolioShared
}

func sumExcept(counts []int64, skip int) int64 {
	var n int64
	for i, c := range counts {
		if i == skip {
			continue
		}
		n += c
	}
	return n
}

// countFeasible counts parameter vectors of p that satisfy all blocking
// constraints, by exact enumeration of the (small) parameter region.
func countFeasible(p *patch.Patch, blocked []*expr.Term) int64 {
	if len(p.Params) == 0 {
		if len(blocked) > 0 {
			// Any blocking constraint over no parameters is decisive.
			for _, b := range blocked {
				v, err := expr.EvalBool(b, expr.Model{})
				if err != nil || !v {
					return 0
				}
			}
		}
		return 1
	}
	var n int64
	p.Constraint.Points(func(pt []int64) bool {
		m := expr.Model{}
		for i, name := range p.Params {
			m[name] = pt[i]
		}
		for _, b := range blocked {
			v, err := expr.EvalBool(b, m)
			if err != nil || !v {
				return true // constraint fails: not counted
			}
		}
		n++
		return true
	})
	return n
}

func inputBounds(job core.Job) map[string]interval.Interval {
	b := make(map[string]interval.Interval)
	for _, p := range job.Program.Inputs() {
		if iv, ok := job.InputBounds[p.Name]; ok {
			b[p.Name] = iv
		} else {
			b[p.Name] = smt.Int32Bounds
		}
		if p.Type == lang.TypeBool {
			b[p.Name] = interval.New(0, 1)
		}
	}
	return b
}

// explorePaths is phase 1: plain generational search (no patch-pool
// pruning — that is CPR's contribution) with the hole driven by constant
// guards, so both hole directions are reachable. Loop state lives in st
// so checkpoints can snapshot it and a resumed run can continue it;
// witnessed paths accumulate in st.obs.
func explorePaths(job core.Job, solver *smt.Solver, bounds map[string]interval.Interval, opts Options, stats *Stats, ck *checkpointer, st *exploreState) {
	if st.seen == nil {
		st.seen = make(map[uint64]bool)
		for _, fi := range job.FailingInputs {
			st.queue = append(st.queue, exploreItem{input: fi, guard: expr.False(), bound: 0})
			st.queue = append(st.queue, exploreItem{input: fi, guard: expr.True(), bound: 0})
		}
	}
	for ; st.iter < opts.ExplorationIterations && len(st.queue) > 0; st.iter++ {
		if opts.Cancel.Expired() {
			stats.TimedOut = true
			return
		}
		// Exploration barrier: the previous iteration's fan-out is fully
		// queued, so st is exactly the state a resumed run restarts from.
		ck.atBarrier()
		it := st.queue[0]
		st.queue = st.queue[1:]
		exec, panicked := safeExecute(job.Program, it.input, concolic.Options{
			Patch:    it.guard,
			MaxSteps: opts.MaxStepsPerRun,
			Stop:     opts.Cancel.Expired,
		})
		if panicked {
			stats.ExecPanics++
			continue
		}
		if exec.Err != nil && !exec.Crashed() && exec.Err.Kind != interp.ErrAssumeViolated {
			continue
		}
		stats.PathsExplored++
		st.obs = append(st.obs, pathObs{
			phi:      exec.PathConstraint(),
			holeHits: exec.HoleHits,
			bugHits:  exec.BugHits,
			crashed:  exec.Crashed(),
		})
		for _, flip := range concolic.Flips(exec, it.bound) {
			key := concolic.PathKey(append(append([]*expr.Term{}, flip.Prefix...), flip.Negated))
			if st.seen[key] {
				continue
			}
			st.seen[key] = true
			model, ok, err := solver.GetModel(flip.Constraint(), bounds)
			if err != nil {
				stats.SolverUnknowns++
				continue
			}
			if !ok {
				continue
			}
			in := make(map[string]int64)
			for _, prm := range job.Program.Inputs() {
				in[prm.Name] = model[prm.Name]
			}
			guard := it.guard
			if flip.OnPatch {
				// The flipped branch decides the hole's direction; read
				// it off the model of the first patch-output symbol.
				for _, h := range flip.HoleHits {
					if v, ok := model[h.Out.Name]; ok {
						guard = expr.Bool(v != 0)
						break
					}
				}
			}
			st.queue = append(st.queue, exploreItem{input: in, guard: guard, bound: flip.Depth + 1})
		}
	}
}

// safeExecute recovers panics at the concolic-execution boundary so a
// crashing subject degrades to a skipped path rather than killing the run.
func safeExecute(prog *lang.Program, input map[string]int64, opts concolic.Options) (exec *concolic.Execution, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			exec, panicked = nil, true
		}
	}()
	return concolic.Execute(prog, input, opts), false
}

// verify searches the collected paths for a counterexample to the
// candidate (template, params): an input on some witnessed path where the
// specification is violated. It returns a blocking constraint over the
// template parameters, or nil when the candidate verifies.
func verify(solver *smt.Solver, job core.Job, obs []pathObs, p *patch.Patch, params expr.Model, bounds map[string]interval.Interval) (*expr.Term, error) {
	paramSub := make(map[string]*expr.Term, len(params))
	for name, v := range params {
		paramSub[name] = expr.Int(v)
	}
	for _, o := range obs {
		sigma := specOnPath(job.Spec, o)
		if sigma.IsTrue() {
			continue
		}
		psi := expr.True()
		for _, h := range o.holeHits {
			psi = expr.And(psi, p.Formula(h.Out, h.Snapshot))
		}
		psiConc := expr.Subst(psi, paramSub)
		query := expr.And(o.phi, psiConc, expr.Not(sigma))
		model, found, err := solver.GetModel(query, bounds)
		if err != nil {
			continue // budget: treat the path as inconclusive
		}
		if !found {
			continue
		}
		// Counterexample input: block every parameter vector that
		// violates the specification for this concrete input on this
		// path. Substituting the input pins X; each patch output is then
		// θ instantiated at the hit's concrete snapshot, leaving a
		// constraint purely over the parameters.
		inputSub := make(map[string]*expr.Term, len(model))
		for name, v := range model {
			for _, prm := range job.Program.Inputs() {
				if prm.Name == name {
					inputSub[name] = constFor(prm.Type, v)
				}
			}
		}
		phiX := expr.Subst(o.phi, inputSub)
		psiX := expr.Subst(psi, inputSub)
		sigmaX := expr.Subst(sigma, inputSub)
		outSub := make(map[string]*expr.Term)
		for _, h := range o.holeHits {
			sub := make(map[string]*expr.Term, len(h.Concrete))
			for name, v := range h.Concrete {
				if !containsName(p.Params, name) {
					sub[name] = expr.Int(v)
				}
			}
			outSub[h.Out.Name] = expr.Subst(p.Expr, sub)
		}
		block := expr.Not(expr.And(
			expr.Subst(phiX, outSub),
			expr.Subst(psiX, outSub),
			expr.Not(expr.Subst(sigmaX, outSub)),
		))
		return block, nil
	}
	return nil, nil
}

func specOnPath(spec *expr.Term, o pathObs) *expr.Term {
	var parts []*expr.Term
	for _, h := range o.bugHits {
		sub := make(map[string]*expr.Term, len(h.Snapshot))
		for name, t := range h.Snapshot {
			sub[name] = t
		}
		parts = append(parts, expr.Subst(spec, sub))
	}
	if o.crashed && len(o.bugHits) == 0 {
		parts = append(parts, expr.False())
	}
	return expr.And(parts...)
}

func constFor(t lang.Type, v int64) *expr.Term {
	if t == lang.TypeBool {
		return expr.Bool(v != 0)
	}
	return expr.Int(v)
}

func containsName(names []string, n string) bool {
	for _, x := range names {
		if x == n {
			return true
		}
	}
	return false
}
