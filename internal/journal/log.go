package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The record log is the write-ahead trace of a run: an append-only file of
// CRC-framed records. A process killed mid-append leaves a truncated or
// torn final frame; readers detect it by length and checksum and stop at
// the last intact record — the tail is sacrificed, never misread.
//
// Frame layout, after an 8-byte file header:
//
//	u32 length   (kind byte + payload, little-endian)
//	u8  kind
//	... payload
//	u32 crc32/IEEE over kind+payload
const (
	logMagic = "CPRJRNL" // 7 bytes + 1 version byte
	// LogVersion is the record-log format version; bump on any framing
	// change. Readers reject logs from other versions.
	LogVersion = 1
	// maxRecord bounds a single record; larger lengths mark a corrupt frame.
	maxRecord = 1 << 28
)

// ErrVersion reports an artifact written by an incompatible format version.
var ErrVersion = errors.New("journal: format version mismatch")

// ErrCorrupt reports an artifact that fails structural validation
// (bad magic, bad checksum, impossible lengths).
var ErrCorrupt = errors.New("journal: corrupt artifact")

// Record is one entry of a record log. Kind is caller-defined.
type Record struct {
	Kind    uint8
	Payload []byte
}

// LogWriter appends CRC-framed records to a journal file.
type LogWriter struct {
	f *os.File
}

// OpenLog opens (or creates) the record log at path for appending,
// writing the file header if the file is new or empty. An existing header
// from another format version is an ErrVersion error.
func OpenLog(path string) (*LogWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(logHeader()); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: short header", ErrCorrupt)
		}
		if err := checkLogHeader(hdr[:]); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &LogWriter{f: f}, nil
}

func logHeader() []byte {
	return append([]byte(logMagic), LogVersion)
}

func checkLogHeader(hdr []byte) error {
	if len(hdr) < 8 || string(hdr[:7]) != logMagic {
		return fmt.Errorf("%w: bad record-log magic", ErrCorrupt)
	}
	if hdr[7] != LogVersion {
		return fmt.Errorf("%w: record log version %d, want %d", ErrVersion, hdr[7], LogVersion)
	}
	return nil
}

// Append frames and writes one record. The write is buffered by the OS;
// call Sync to make the tail durable (snapshot commits do).
func (w *LogWriter) Append(kind uint8, payload []byte) error {
	frame := make([]byte, 0, 4+1+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(1+len(payload)))
	frame = append(frame, kind)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame[4:]))
	_, err := w.f.Write(frame)
	return err
}

// Sync flushes the log to stable storage.
func (w *LogWriter) Sync() error { return w.f.Sync() }

// Close syncs and closes the log.
func (w *LogWriter) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadLog returns every intact record of the log at path, in append order.
// A truncated or corrupt tail ends the scan cleanly (the records before it
// are returned); a missing file yields no records and no error — both are
// the expected states after a crash. Only a malformed header (wrong magic
// or format version) is an error: that log cannot be appended to safely.
func ReadLog(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: short record-log header", ErrCorrupt)
	}
	if err := checkLogHeader(data[:8]); err != nil {
		return nil, err
	}
	var out []Record
	off := 8
	for off+4 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		if n < 1 || n > maxRecord || off+4+n+4 > len(data) {
			break // truncated or torn tail
		}
		body := data[off+4 : off+4+n]
		sum := binary.LittleEndian.Uint32(data[off+4+n:])
		if crc32.ChecksumIEEE(body) != sum {
			break // corrupt tail
		}
		out = append(out, Record{Kind: body[0], Payload: body[1:]})
		off += 4 + n + 4
	}
	return out, nil
}
