package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPruneUnderConcurrentReaders: a writer that snapshots and prunes in a
// tight loop must never expose a reader to a torn or corrupt snapshot. A
// reader may catch the window between listing the directory and opening a
// file that Prune just removed — that surfaces as a clean "no snapshot"
// error and succeeds on retry — but any snapshot it does load must be
// intact and must be one the writer actually committed.
func TestPruneUnderConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	const (
		writes  = 200
		readers = 4
	)
	payload := func(barrier uint64) []byte {
		return []byte(fmt.Sprintf("state-at-%d", barrier))
	}
	var highest atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := LoadLatest(dir)
				if err != nil {
					// Raced a prune (or the first write): retry. The error
					// must be the clean no-snapshot kind, never a CRC or
					// framing failure on a half-written file.
					if !errors.Is(err, ErrNoSnapshot) && !errors.Is(err, os.ErrNotExist) {
						errs <- fmt.Errorf("reader: unclean load failure: %w", err)
						return
					}
					continue
				}
				if want := payload(snap.Barrier); string(snap.Payload) != string(want) {
					errs <- fmt.Errorf("reader: snapshot %d carries payload %q, want %q",
						snap.Barrier, snap.Payload, want)
					return
				}
				if max := highest.Load(); snap.Barrier > max {
					errs <- fmt.Errorf("reader: snapshot %d from the future (writer at %d)", snap.Barrier, max)
					return
				}
			}
		}()
	}

	for b := uint64(1); b <= writes; b++ {
		// Announce the barrier before committing it: a reader may observe
		// the snapshot the instant the rename lands.
		highest.Store(b)
		if err := WriteSnapshot(dir, b, payload(b)); err != nil {
			t.Fatalf("WriteSnapshot(%d): %v", b, err)
		}
		if err := Prune(dir, 2); err != nil {
			t.Fatalf("Prune after %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles, exactly the keep=2 newest remain and the
	// latest is the last write.
	snap, err := LoadLatest(dir)
	if err != nil {
		t.Fatalf("final LoadLatest: %v", err)
	}
	if snap.Barrier != writes {
		t.Fatalf("final barrier %d, want %d", snap.Barrier, writes)
	}
	glob, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if len(glob) != 2 {
		t.Fatalf("%d snapshots after prune, want 2", len(glob))
	}
}

// TestWriteFileAtomicUnwritableDir: an unwritable destination must come
// back as an error — never a panic and never a clobbered target.
func TestWriteFileAtomicUnwritableDir(t *testing.T) {
	// A parent that is a regular file fails for every user, root included.
	parentFile := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(parentFile, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(filepath.Join(parentFile, "out"), []byte("data")); err == nil {
		t.Fatal("WriteFileAtomic under a file parent: want error, got nil")
	}

	// A read-only directory (meaningless to root, which bypasses the mode
	// bits): the existing file must survive the failed write untouched.
	if os.Geteuid() == 0 {
		t.Log("running as root; skipping the chmod 0555 variant")
		return
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(target, []byte("original")); err != nil {
		t.Fatal(err)
	}
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := WriteFileAtomic(target, []byte("replacement")); err == nil {
		t.Fatal("WriteFileAtomic into read-only dir: want error, got nil")
	}
	got, err := os.ReadFile(target)
	if err != nil || string(got) != "original" {
		t.Fatalf("target after failed write: %q, %v; want untouched original", got, err)
	}
	// No temp-file litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after failed write, want just the target", len(entries))
	}
}
