package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cpr/internal/expr"
)

func TestEncoderDecoderRoundTrip(t *testing.T) {
	var e Encoder
	e.U64(0)
	e.U64(1 << 62)
	e.I64(-12345)
	e.Int(42)
	e.Bool(true)
	e.Bool(false)
	e.F64(3.5)
	e.Dur(7 * time.Second)
	e.Str("hello")
	e.Str("")
	e.Raw([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.U64(); got != 0 {
		t.Errorf("U64 = %d, want 0", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Errorf("U64 = %d, want %d", got, uint64(1)<<62)
	}
	if got := d.I64(); got != -12345 {
		t.Errorf("I64 = %d, want -12345", got)
	}
	if got := d.Int(); got != 42 {
		t.Errorf("Int = %d, want 42", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.F64(); got != 3.5 {
		t.Errorf("F64 = %v, want 3.5", got)
	}
	if got := d.Dur(); got != 7*time.Second {
		t.Errorf("Dur = %v, want 7s", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q, want hello", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("Str = %q, want empty", got)
	}
	if got := d.Raw(); string(got) != "\x01\x02\x03" {
		t.Errorf("Raw = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if len(d.Rest()) != 0 {
		t.Errorf("Rest = %d bytes, want 0", len(d.Rest()))
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.Str("a long enough string")
	buf := e.Bytes()
	for cut := 0; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut])
		d.Str()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, d.Err())
		}
		// Sticky: further reads stay failed and return zeros.
		if d.U64() != 0 || !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut at %d: decoder error not sticky", cut)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Kind: 1, Payload: []byte("first")},
		{Kind: 2, Payload: nil},
		{Kind: 1, Payload: []byte("third record with more bytes")},
	}
	for _, r := range want {
		if err := w.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen for append: header must validate, new records land after old.
	w, err = OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(3, []byte("appended")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want = append(want, Record{Kind: 3, Payload: []byte("appended")})

	got, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || string(got[i].Payload) != string(want[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestLogMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if recs, err := ReadLog(filepath.Join(dir, "absent.journal")); err != nil || recs != nil {
		t.Fatalf("missing log: recs=%v err=%v, want nil/nil", recs, err)
	}
	empty := filepath.Join(dir, "empty.journal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err := ReadLog(empty); err != nil || recs != nil {
		t.Fatalf("zero-byte log: recs=%v err=%v, want nil/nil", recs, err)
	}
}

func TestLogTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("doomed tail record")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop bytes off the end one at a time: the intact first record must
	// survive every torn-tail length.
	for cut := len(data) - 1; cut > len(data)-20; cut-- {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadLog(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || string(recs[0].Payload) != "intact" {
			t.Fatalf("cut at %d: got %d records, want the 1 intact record", cut, len(recs))
		}
	}
}

func TestLogCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	w, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, []byte("corrupted")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0x40 // flip a payload bit in the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "intact" {
		t.Fatalf("got %d records, want only the intact one", len(recs))
	}
}

func TestLogVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	if err := os.WriteFile(path, append([]byte(logMagic), 99), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("ReadLog err = %v, want ErrVersion", err)
	}
	if _, err := OpenLog(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("OpenLog err = %v, want ErrVersion", err)
	}
	if err := os.WriteFile(path, []byte("NOTAJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadLog err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("engine state bytes")
	if err := WriteSnapshot(dir, 7, payload); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(SnapshotPath(dir, 7))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Barrier != 7 || string(snap.Payload) != string(payload) {
		t.Fatalf("snapshot = %d/%q", snap.Barrier, snap.Payload)
	}
	latest, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Barrier != 7 {
		t.Fatalf("LoadLatest barrier = %d, want 7", latest.Barrier)
	}
}

func TestSnapshotEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(SnapshotPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Barrier != 1 || len(snap.Payload) != 0 {
		t.Fatalf("snapshot = %d/%d bytes", snap.Barrier, len(snap.Payload))
	}
}

// corrupt writes a broken snapshot under the name for the given barrier.
func writeRawSnapshot(t *testing.T, dir string, barrier uint64, data []byte) {
	t.Helper()
	if err := os.WriteFile(SnapshotPath(dir, barrier), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCorruptionModes(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 3, []byte("good payload")); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(SnapshotPath(dir, 3))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"zero-byte", nil, ErrCorrupt},
		{"short", good[:10], ErrCorrupt},
		{"truncated", good[:len(good)-3], ErrCorrupt},
		{"bad magic", append([]byte("XXXXXXX\x01"), good[8:]...), ErrCorrupt},
		{"bit flip", func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)-7] ^= 0x01
			return b
		}(), ErrCorrupt},
		{"version mismatch", func() []byte {
			b := append([]byte(nil), good...)
			b[7] = 99
			return b
		}(), ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sub := t.TempDir()
			writeRawSnapshot(t, sub, 5, tc.data)
			if _, err := ReadSnapshot(SnapshotPath(sub, 5)); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			// A directory holding only rejects must surface ErrNoSnapshot.
			if _, err := LoadLatest(sub); !errors.Is(err, ErrNoSnapshot) {
				t.Fatalf("LoadLatest err = %v, want ErrNoSnapshot", err)
			}
		})
	}
}

func TestLoadLatestSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 1, []byte("old but intact")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 2, []byte("newer, about to rot")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(SnapshotPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	writeRawSnapshot(t, dir, 2, data)

	snap, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Barrier != 1 || string(snap.Payload) != "old but intact" {
		t.Fatalf("LoadLatest = %d/%q, want the older intact snapshot", snap.Barrier, snap.Payload)
	}
}

func TestLoadLatestMissingDir(t *testing.T) {
	if _, err := LoadLatest(filepath.Join(t.TempDir(), "never-created")); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	for b := uint64(1); b <= 5; b++ {
		if err := WriteSnapshot(dir, b, []byte{byte(b)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	names, err := snapshotNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("kept %d snapshots, want 2: %v", len(names), names)
	}
	snap, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Barrier != 5 {
		t.Fatalf("latest after prune = %d, want 5", snap.Barrier)
	}
}

func TestWriteFileAtomicReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2 longer")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2 longer" {
		t.Fatalf("content = %q", data)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the target", len(entries))
	}
}

func TestTermCodecPointerIdentity(t *testing.T) {
	x, y := expr.IntVar("x"), expr.IntVar("y")
	terms := []*expr.Term{
		nil,
		expr.Int(-7),
		expr.True(),
		expr.And(expr.Lt(x, expr.Int(10)), expr.Ge(expr.Add(x, y), expr.Int(0))),
		expr.Ite(expr.Eq(x, y), expr.Mul(x, expr.Int(3)), expr.Neg(y)),
		expr.Or(expr.Not(expr.Le(x, y)), expr.Ne(y, expr.Int(2))),
	}
	te := NewTermEncoder()
	ids := make([]uint64, len(terms))
	for i, tm := range terms {
		ids[i] = te.ID(tm)
	}
	// Re-encoding returns the same ids (shared-node stability).
	for i, tm := range terms {
		if te.ID(tm) != ids[i] {
			t.Fatalf("term %d: id changed on re-encode", i)
		}
	}

	var payload Encoder
	payload.Raw(te.Table())
	d := NewDecoder(payload.Bytes())
	td, err := DecodeTermTable(NewDecoder(d.Raw()))
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range terms {
		got, err := td.Term(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != tm {
			t.Fatalf("term %d: decoded %v is not pointer-identical to original %v", i, got, tm)
		}
	}
}

func TestTermCodecRejectsCorruption(t *testing.T) {
	te := NewTermEncoder()
	te.ID(expr.Add(expr.IntVar("a"), expr.Int(1)))
	table := te.Table()

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeTermTable(NewDecoder(table[:len(table)-2])); err == nil {
			t.Fatal("decoded a truncated term table")
		}
	})
	t.Run("invalid op", func(t *testing.T) {
		var e Encoder
		e.U64(1)   // one node
		e.U64(200) // invalid op
		e.U64(0)
		e.I64(0)
		e.Str("")
		e.U64(0)
		if _, err := DecodeTermTable(NewDecoder(e.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("forward arg reference", func(t *testing.T) {
		var e Encoder
		e.U64(2)
		// Node 1: a NOT whose argument claims id 1 (itself).
		e.U64(uint64(expr.OpNot))
		e.U64(uint64(expr.SortBool))
		e.I64(0)
		e.Str("")
		e.U64(1)
		e.U64(1)
		if _, err := DecodeTermTable(NewDecoder(e.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("absurd node count", func(t *testing.T) {
		var e Encoder
		e.U64(1 << 40)
		if _, err := DecodeTermTable(NewDecoder(e.Bytes())); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("dangling reference", func(t *testing.T) {
		td, err := DecodeTermTable(NewDecoder(table))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := td.Term(99); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
}
