package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshots are whole-state checkpoints: one file per generation barrier,
// committed atomically (temp file in the same directory, write, fsync,
// rename, fsync directory). A crash at any instant leaves either the
// previous snapshot set intact or the new file fully committed — never a
// partially written snapshot under the real name.
//
// File layout:
//
//	"CPRSNAP" u8-version   8-byte header
//	u64 barrier            little-endian
//	u32 payload length     little-endian
//	... payload
//	u32 crc32/IEEE over barrier+length+payload
const (
	snapMagic = "CPRSNAP" // 7 bytes + 1 version byte
	// SnapVersion is the snapshot container version; the payload carries
	// its own schema version on top (core/cegis own that).
	SnapVersion = 1

	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
)

// ErrNoSnapshot reports that a checkpoint directory holds no loadable
// snapshot (empty, missing, or nothing but rejects).
var ErrNoSnapshot = errors.New("journal: no usable snapshot")

// Snapshot is a decoded snapshot file.
type Snapshot struct {
	Barrier uint64
	Payload []byte
}

// SnapshotPath returns the canonical file name for a barrier's snapshot.
// Names sort lexically in barrier order.
func SnapshotPath(dir string, barrier uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, barrier, snapSuffix))
}

// WriteSnapshot atomically commits payload as the snapshot for barrier,
// creating dir if needed.
func WriteSnapshot(dir string, barrier uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, 0, 8+8+4+len(payload)+4)
	buf = append(buf, snapMagic...)
	buf = append(buf, SnapVersion)
	buf = binary.LittleEndian.AppendUint64(buf, barrier)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[8:]))
	return WriteFileAtomic(SnapshotPath(dir, barrier), buf)
}

// ReadSnapshot decodes the snapshot file at path, failing with ErrCorrupt
// or ErrVersion on anything short of a fully committed artifact.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8+8+4+4 {
		return nil, fmt.Errorf("%w: snapshot %s: too short (%d bytes)", ErrCorrupt, filepath.Base(path), len(data))
	}
	if string(data[:7]) != snapMagic {
		return nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	if data[7] != SnapVersion {
		return nil, fmt.Errorf("%w: snapshot %s: version %d, want %d", ErrVersion, filepath.Base(path), data[7], SnapVersion)
	}
	barrier := binary.LittleEndian.Uint64(data[8:])
	n := int(binary.LittleEndian.Uint32(data[16:]))
	if n < 0 || 8+8+4+n+4 != len(data) {
		return nil, fmt.Errorf("%w: snapshot %s: payload length %d inconsistent with file size %d", ErrCorrupt, filepath.Base(path), n, len(data))
	}
	body := data[8 : 8+8+4+n]
	sum := binary.LittleEndian.Uint32(data[8+8+4+n:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: snapshot %s: checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	return &Snapshot{Barrier: barrier, Payload: data[8+8+4 : 8+8+4+n]}, nil
}

// LoadLatest returns the newest loadable snapshot in dir. Snapshots that
// fail validation are skipped (older intact ones still load); their errors
// are joined into the ErrNoSnapshot error if nothing loads. A missing or
// empty directory is ErrNoSnapshot.
func LoadLatest(dir string) (*Snapshot, error) {
	names, err := snapshotNames(dir)
	if err != nil {
		return nil, err
	}
	var rejects []error
	for i := len(names) - 1; i >= 0; i-- {
		snap, err := ReadSnapshot(filepath.Join(dir, names[i]))
		if err != nil {
			rejects = append(rejects, err)
			continue
		}
		return snap, nil
	}
	return nil, errors.Join(append([]error{fmt.Errorf("%w in %s", ErrNoSnapshot, dir)}, rejects...)...)
}

// Prune deletes all but the newest keep snapshot files in dir. Old
// snapshots are kept as fallbacks for a corrupt newest one, so keep should
// be at least 2.
func Prune(dir string, keep int) error {
	names, err := snapshotNames(dir)
	if err != nil || len(names) <= keep {
		return err
	}
	var first error
	for _, name := range names[:len(names)-keep] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func snapshotNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w: directory %s does not exist", ErrNoSnapshot, dir)
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && len(name) > len(snapPrefix)+len(snapSuffix) &&
			name[:len(snapPrefix)] == snapPrefix && name[len(name)-len(snapSuffix):] == snapSuffix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// WriteFileAtomic commits data to path via a same-directory temp file,
// fsync, rename, and directory fsync. Readers of path never observe a
// partial write, even across SIGKILL or power loss.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
