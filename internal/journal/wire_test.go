package journal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestWireRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWireHeader(&buf); err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, uint8(i), p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	if err := ReadWireHeader(r); err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		rec, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if rec.Kind != uint8(i) || !bytes.Equal(rec.Payload, p) {
			t.Fatalf("frame %d: got kind %d, %d bytes", i, rec.Kind, len(rec.Payload))
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestWireHeaderRejectsBadMagicAndVersion(t *testing.T) {
	if err := ReadWireHeader(bytes.NewReader([]byte("NOTWIRE\x01"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}
	if err := ReadWireHeader(bytes.NewReader([]byte(wireMagic + "\x63"))); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: want ErrVersion, got %v", err)
	}
	if err := ReadWireHeader(bytes.NewReader([]byte("CPR"))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: want ErrCorrupt, got %v", err)
	}
}

func TestWireFrameFailsClosed(t *testing.T) {
	frame := func(mut func([]byte)) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 5, []byte("payload-bytes")); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		if mut != nil {
			mut(b)
		}
		return b
	}

	cases := map[string][]byte{
		"truncated length": frame(nil)[:2],
		"truncated body":   frame(nil)[:8],
		"flipped payload":  frame(func(b []byte) { b[7] ^= 0x10 }),
		"flipped kind":     frame(func(b []byte) { b[4] ^= 0x01 }),
		"flipped crc":      frame(func(b []byte) { b[len(b)-1] ^= 0x01 }),
		"zero length":      {0, 0, 0, 0},
		"huge length":      {0xff, 0xff, 0xff, 0xff},
	}
	for name, data := range cases {
		if _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}
