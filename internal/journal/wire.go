package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The wire stream carries the record-log frame layout over a network or
// pipe connection: the shard protocol (internal/shard) exchanges engine
// state in exactly the encoding snapshots use on disk. Unlike the on-disk
// log, a stream has no recoverable tail — any short read, bad length, or
// checksum mismatch is a hard error and the connection must be dropped.
//
// Stream layout:
//
//	8-byte header: "CPRWIRE" + version byte
//	frames:        u32 length (kind byte + payload, little-endian)
//	               u8  kind
//	               ... payload
//	               u32 crc32/IEEE over kind+payload
const (
	wireMagic = "CPRWIRE" // 7 bytes + 1 version byte
	// WireVersion is the shard wire-format version; bump on any framing or
	// message-schema change. Peers from other versions are rejected at the
	// handshake.
	WireVersion = 1
)

// WriteWireHeader writes the stream header; each side sends it once before
// its first frame.
func WriteWireHeader(w io.Writer) error {
	_, err := w.Write(append([]byte(wireMagic), WireVersion))
	return err
}

// ReadWireHeader consumes and validates the peer's stream header.
func ReadWireHeader(r io.Reader) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: short wire header: %v", ErrCorrupt, err)
	}
	if string(hdr[:7]) != wireMagic {
		return fmt.Errorf("%w: bad wire magic", ErrCorrupt)
	}
	if hdr[7] != WireVersion {
		return fmt.Errorf("%w: wire version %d, want %d", ErrVersion, hdr[7], WireVersion)
	}
	return nil
}

// WriteFrame frames and writes one record to the stream.
func WriteFrame(w io.Writer, kind uint8, payload []byte) error {
	if 1+len(payload) > maxRecord {
		return fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrCorrupt, len(payload))
	}
	frame := make([]byte, 0, 4+1+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(1+len(payload)))
	frame = append(frame, kind)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(frame[4:]))
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one record from the stream. Every failure mode — short
// read, impossible length, checksum mismatch — fails closed with an error;
// a frame is never partially delivered or misattributed.
func ReadFrame(r io.Reader) (Record, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: short frame length: %v", ErrCorrupt, err)
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n < 1 || n > maxRecord {
		return Record{}, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, fmt.Errorf("%w: short frame body: %v", ErrCorrupt, err)
	}
	sum := binary.LittleEndian.Uint32(body[n:])
	body = body[:n]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return Record{Kind: body[0], Payload: body[1:]}, nil
}
