package journal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzJournalCodec hammers the varint/CRC codec that PR 8 promotes to a
// network wire format: arbitrary bytes must never panic the primitive
// decoder, the stream framing must reject every torn, truncated, or
// bit-flipped frame, and any frame that does decode must survive a
// re-encode/re-decode roundtrip unchanged (no silent mis-decode).
func FuzzJournalCodec(f *testing.F) {
	var enc Encoder
	enc.U64(42)
	enc.I64(-77)
	enc.Str("cross-shard")
	enc.Bool(true)
	enc.F64(3.25)
	enc.Raw([]byte{0, 1, 2, 3})

	var stream bytes.Buffer
	if err := WriteWireHeader(&stream); err != nil {
		f.Fatal(err)
	}
	if err := WriteFrame(&stream, 7, enc.Bytes()); err != nil {
		f.Fatal(err)
	}
	if err := WriteFrame(&stream, 9, nil); err != nil {
		f.Fatal(err)
	}
	valid := stream.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-6] ^= 0x40 // bit flip inside the last frame
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // absurd frame length
	f.Add(enc.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// The primitive decoder: every op on arbitrary bytes either yields a
		// value or sets the sticky error; it never panics and never reads
		// past the payload.
		d := NewDecoder(data)
		for i := 0; d.Err() == nil && i < 64; i++ {
			switch i % 7 {
			case 0:
				d.U64()
			case 1:
				d.I64()
			case 2:
				d.Bool()
			case 3:
				d.Str()
			case 4:
				d.Raw()
			case 5:
				d.F64()
			case 6:
				d.Dur()
			}
		}
		if rest := d.Rest(); len(rest) > len(data) {
			t.Fatalf("Rest() grew the payload: %d > %d", len(rest), len(data))
		}

		// The stream framing: scan frames until the stream ends or fails
		// closed. Every frame that decodes must roundtrip bit-identically.
		r := bytes.NewReader(data)
		if err := ReadWireHeader(r); err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("ReadWireHeader: unexpected error class %v", err)
			}
			return
		}
		for {
			rec, err := ReadFrame(r)
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("ReadFrame: unexpected error class %v", err)
				}
				break
			}
			var out bytes.Buffer
			if err := WriteFrame(&out, rec.Kind, rec.Payload); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			rec2, err := ReadFrame(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if rec2.Kind != rec.Kind || !bytes.Equal(rec2.Payload, rec.Payload) {
				t.Fatalf("frame roundtrip mismatch: kind %d→%d, %d→%d payload bytes",
					rec.Kind, rec2.Kind, len(rec.Payload), len(rec2.Payload))
			}
		}
	})
}
