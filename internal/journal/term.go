package journal

import (
	"fmt"

	"cpr/internal/expr"
)

// Terms are hash-consed: within one process, structurally equal terms are
// the same pointer. A snapshot therefore encodes terms as a shared node
// table — each distinct node once, in dependency (post-) order, with
// argument references by table index — and the rest of the payload refers
// to terms by their table id. Decoding re-interns every node through
// expr.RawTerm, so a decoded term is pointer-identical to the live term it
// would have been in an uninterrupted run; all pointer-keyed state (seen
// sets, cache keys, delCache memos) survives the round trip exactly.

// TermEncoder assigns table ids to terms on demand while the snapshot
// payload is being built; the finished table is written ahead of the
// payload that references it.
type TermEncoder struct {
	ids map[*expr.Term]uint64
	enc Encoder
	n   uint64
}

// NewTermEncoder returns an empty term table.
func NewTermEncoder() *TermEncoder {
	return &TermEncoder{ids: make(map[*expr.Term]uint64)}
}

// ID returns t's table id, adding its nodes (arguments first) on first use.
// The nil term encodes as id 0; real ids start at 1.
func (te *TermEncoder) ID(t *expr.Term) uint64 {
	if t == nil {
		return 0
	}
	if id, ok := te.ids[t]; ok {
		return id
	}
	argIDs := make([]uint64, len(t.Args))
	for i, a := range t.Args {
		argIDs[i] = te.ID(a)
	}
	te.n++
	id := te.n
	te.ids[t] = id
	te.enc.U64(uint64(t.Op))
	te.enc.U64(uint64(t.Sort))
	te.enc.I64(t.Val)
	te.enc.Str(t.Name)
	te.enc.U64(uint64(len(argIDs)))
	for _, a := range argIDs {
		te.enc.U64(a)
	}
	return id
}

// Table returns the encoded node table: a node count followed by the nodes
// in id order.
func (te *TermEncoder) Table() []byte {
	var head Encoder
	head.U64(te.n)
	return append(head.Bytes(), te.enc.Bytes()...)
}

// TermDecoder resolves table ids back to interned terms.
type TermDecoder struct {
	terms []*expr.Term // terms[0] is nil; ids are direct indexes
}

// DecodeTermTable reads a node table produced by TermEncoder.Table and
// re-interns every node. Out-of-range operators, sorts, and forward or
// self argument references are rejected as corruption.
func DecodeTermTable(d *Decoder) (*TermDecoder, error) {
	n := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > uint64(len(d.Rest())) { // each node is at least one byte
		return nil, fmt.Errorf("%w: term table claims %d nodes, %d bytes left", ErrCorrupt, n, len(d.Rest()))
	}
	td := &TermDecoder{terms: make([]*expr.Term, 1, n+1)}
	for i := uint64(1); i <= n; i++ {
		op := expr.Op(d.U64())
		sort := expr.Sort(d.U64())
		val := d.I64()
		name := d.Str()
		argc := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if !expr.ValidOp(op) {
			return nil, fmt.Errorf("%w: term node %d: invalid op %d", ErrCorrupt, i, op)
		}
		if sort != expr.SortInt && sort != expr.SortBool {
			return nil, fmt.Errorf("%w: term node %d: invalid sort %d", ErrCorrupt, i, sort)
		}
		if argc >= i { // args must be earlier nodes
			return nil, fmt.Errorf("%w: term node %d: impossible arg count %d", ErrCorrupt, i, argc)
		}
		var args []*expr.Term
		if argc > 0 {
			args = make([]*expr.Term, argc)
			for j := range args {
				ref := d.U64()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if ref == 0 || ref >= i {
					return nil, fmt.Errorf("%w: term node %d: arg reference %d out of range", ErrCorrupt, i, ref)
				}
				args[j] = td.terms[ref]
			}
		}
		td.terms = append(td.terms, expr.RawTerm(op, sort, val, name, args))
	}
	return td, nil
}

// Term resolves a table id. Id 0 is the nil term; unknown ids are
// corruption.
func (td *TermDecoder) Term(id uint64) (*expr.Term, error) {
	if id >= uint64(len(td.terms)) {
		return nil, fmt.Errorf("%w: term reference %d beyond table of %d", ErrCorrupt, id, len(td.terms)-1)
	}
	return td.terms[id], nil
}
