// Package journal is the durability layer of the repair system: a
// CRC-framed append-only record log, atomically-committed versioned
// snapshot files, and a compact binary codec for the engine state that
// goes into them (including hash-consed terms, encoded as node tables
// that decode back to pointer-identical terms).
//
// The package knows nothing about repair semantics — internal/core and
// internal/cegis define what a snapshot contains; journal defines how it
// is framed, committed, validated, and recovered. The contract for every
// artifact written here is crash-safety under SIGKILL: a reader either
// sees a fully committed, checksummed artifact or rejects it with a clear
// error, never a silent partial load.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrTruncated is wrapped by decode errors caused by running out of bytes
// mid-value — the signature of a torn write that escaped framing (which
// atomic snapshot commits make impossible, but the decoder still refuses
// to fabricate values).
var ErrTruncated = errors.New("journal: truncated payload")

// Encoder builds a binary payload. Integers are varint-encoded (zigzag for
// signed), strings and byte slices are length-prefixed. The zero value is
// ready to use.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset empties the encoder while keeping its allocated buffer, so a
// periodic writer (the engine checkpointer) reuses one buffer across
// snapshots instead of regrowing it from nil every time.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zigzag) varint.
func (e *Encoder) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends a signed integer.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a boolean.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Dur appends a duration in nanoseconds.
func (e *Encoder) Dur(d time.Duration) { e.I64(int64(d)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends a length-prefixed byte slice.
func (e *Encoder) Raw(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Append appends bytes verbatim, with no length prefix — for framing an
// already-encoded payload after a header.
func (e *Encoder) Append(b []byte) { e.buf = append(e.buf, b...) }

// Decoder reads a payload produced by Encoder. The first malformed value
// sets a sticky error; subsequent reads return zero values, so decode
// sequences can run to completion and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over the payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Rest returns the undecoded remainder of the payload.
func (d *Decoder) Rest() []byte { return d.buf[d.off:] }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrTruncated, what, d.off)
	}
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// I64 reads a signed (zigzag) varint.
func (d *Decoder) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed integer.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Dur reads a duration.
func (d *Decoder) Dur() time.Duration { return time.Duration(d.I64()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.bytes("string")) }

// Raw reads a length-prefixed byte slice (aliasing the payload).
func (d *Decoder) Raw() []byte { return d.bytes("bytes") }

func (d *Decoder) bytes(what string) []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
