package govern

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
)

// ParseBytes parses a human-readable byte size: a plain integer is
// bytes; a K/M/G/T suffix (optionally "iB" or "B", case-insensitive) is
// binary-scaled. "" parses to 0.
func ParseBytes(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToUpper(s)
	u = strings.TrimSuffix(u, "IB")
	u = strings.TrimSuffix(u, "B")
	shift := 0
	switch {
	case strings.HasSuffix(u, "K"):
		shift, u = 10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		shift, u = 20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		shift, u = 30, u[:len(u)-1]
	case strings.HasSuffix(u, "T"):
		shift, u = 40, u[:len(u)-1]
	}
	n, err := strconv.ParseUint(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if shift > 0 && n > (1<<63)>>shift {
		return 0, fmt.Errorf("byte size %q overflows", s)
	}
	return n << shift, nil
}

// Setup builds a governor from the CLIs' three -mem-* flag values
// (sizes per ParseBytes; all empty → nil governor, no governance).
// When limit is set it also becomes the Go runtime's soft memory limit
// (debug.SetMemoryLimit), and unset watermarks default to fractions of
// it (see Config.withDefaults).
func Setup(soft, high, limit string, warn func(format string, args ...any)) (*Governor, error) {
	softB, err := ParseBytes(soft)
	if err != nil {
		return nil, fmt.Errorf("-mem-soft: %v", err)
	}
	highB, err := ParseBytes(high)
	if err != nil {
		return nil, fmt.Errorf("-mem-high: %v", err)
	}
	limitB, err := ParseBytes(limit)
	if err != nil {
		return nil, fmt.Errorf("-mem-limit: %v", err)
	}
	if softB == 0 && highB == 0 && limitB == 0 {
		return nil, nil
	}
	if limitB > 0 {
		debug.SetMemoryLimit(int64(limitB))
	}
	return New(Config{
		SoftBytes: softB,
		HighBytes: highB,
		MemLimit:  limitB,
		Warn:      warn,
	}), nil
}
