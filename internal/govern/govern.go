// Package govern is the memory governor: it accounts bytes for the
// system's big structures and turns host memory pressure into a watermark
// ladder of degradation actions.
//
// Owners of memory-hungry structures (verdict cache, incremental solver
// contexts, exploration frontier, serving jobs) register cheap size
// callbacks; the governor polls them together with the Go runtime's heap
// figures (runtime/metrics) and classifies the total against three
// watermarks:
//
//	soft     → shrink caches, retire incremental contexts, force reduceDB
//	high     → soft actions + spill the frontier's cold tail to disk
//	critical → maximum-aggression shrink/spill; sustained critical makes
//	           the engine fall back to its anytime best-so-far result,
//	           exactly like a budget expiry
//
// Every rung below the sustained-critical stop reuses mechanisms that are
// proven result-neutral (memoization caches, context retirement, spill
// with logical-order-preserving reload), so forcing any rung produces a
// bit-identical repair result. The governor itself decides nothing about
// *what* to shrink — it only classifies pressure; the owners act.
//
// Determinism: the engine polls the governor only at generation barriers
// (a single coordinator goroutine), and tests force rungs through
// faultinject.MemRung, so a forced-pressure run is exactly reproducible.
// A background Ticker (used by cprd) additionally refreshes the rung for
// admission decisions between barriers; it only reads.
package govern

import (
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpr/internal/faultinject"
)

// Rung is a pressure level on the watermark ladder.
type Rung int32

// Ladder rungs, in increasing severity. The numeric values are part of
// the faultinject contract (Plan.MemRung uses them directly).
const (
	RungNone Rung = iota
	RungSoft
	RungHigh
	RungCritical
)

// String names a rung for logs and stats payloads.
func (r Rung) String() string {
	switch r {
	case RungSoft:
		return "soft"
	case RungHigh:
		return "high"
	case RungCritical:
		return "critical"
	default:
		return "none"
	}
}

// Config sets the watermarks. All-zero watermarks disable real-pressure
// classification (the governor then reports RungNone unless a faultinject
// plan forces a rung — which is exactly what the differential tests use).
type Config struct {
	// SoftBytes/HighBytes/CriticalBytes are the ladder watermarks,
	// compared against sampled heap bytes (runtime/metrics heap objects +
	// unused spans) plus any faultinject spike. Unset watermarks are
	// derived from MemLimit when it is set: 50% / 70% / 85%.
	SoftBytes     uint64
	HighBytes     uint64
	CriticalBytes uint64
	// MemLimit is the process memory ceiling the watermarks defend
	// (typically the value handed to debug.SetMemoryLimit). Used only to
	// derive unset watermarks.
	MemLimit uint64
	// CriticalStopPolls is how many *consecutive* critical polls it takes
	// before ShouldStop reports true and the engine falls back to its
	// anytime result. Transient critical polls fire the critical rung's
	// shrink/spill actions (result-neutral) without stopping the run.
	// Zero means 4.
	CriticalStopPolls int
	// Warn, when non-nil, receives one line per rung transition.
	Warn func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.MemLimit > 0 {
		if c.SoftBytes == 0 {
			c.SoftBytes = c.MemLimit / 2
		}
		if c.HighBytes == 0 {
			c.HighBytes = c.MemLimit / 10 * 7
		}
		if c.CriticalBytes == 0 {
			c.CriticalBytes = c.MemLimit / 100 * 85
		}
	}
	if c.CriticalStopPolls == 0 {
		c.CriticalStopPolls = 4
	}
	return c
}

// Counters is a snapshot of the governor's own activity. Owners count
// their rung *actions* (shrinks, spills, sheds) in their own stats; the
// governor counts polls and classifications.
type Counters struct {
	// Polls is the total number of Poll calls.
	Polls uint64 `json:"polls"`
	// Transitions counts rung changes (any direction).
	Transitions uint64 `json:"transitions"`
	// SoftPolls/HighPolls/CriticalPolls count polls classified at each
	// rung (forced or real).
	SoftPolls     uint64 `json:"soft_polls"`
	HighPolls     uint64 `json:"high_polls"`
	CriticalPolls uint64 `json:"critical_polls"`
	// ForcedPolls counts polls whose rung came from a faultinject plan.
	ForcedPolls uint64 `json:"forced_polls"`
	// Stops counts polls at which ShouldStop first became true.
	Stops uint64 `json:"stops"`
	// HeapBytes/AccountedBytes are gauges from the most recent poll: the
	// sampled runtime heap figure (spike included) and the sum of all
	// registered size sources.
	HeapBytes      uint64 `json:"heap_bytes"`
	AccountedBytes uint64 `json:"accounted_bytes"`
}

// Governor classifies memory pressure. The zero value is unusable; use
// New. A nil *Governor is a valid "no governance" instance: every method
// is a no-op and every query reports no pressure.
type Governor struct {
	cfg  Config
	rung atomic.Int32

	mu          sync.Mutex
	sources     map[string]func() uint64
	criticalRun int
	stopped     bool
	counters    Counters

	// heapSample is replaceable for tests (and nil-safe defaults to the
	// runtime/metrics read).
	heapSample func() uint64

	tickStop chan struct{}
	tickDone chan struct{}
}

// New returns a governor with the given watermarks. A governor with
// all-zero watermarks is still useful: faultinject plans can force rungs
// through it deterministically.
func New(cfg Config) *Governor {
	return &Governor{
		cfg:        cfg.withDefaults(),
		sources:    make(map[string]func() uint64),
		heapSample: sampleHeap,
	}
}

// heapMetrics are the runtime/metrics samples the governor reads: bytes
// occupied by live + unswept heap objects, plus heap memory reserved but
// currently unused. Together they track what GOGC/GOMEMLIMIT manage.
var heapMetrics = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/free:bytes",
	"/memory/classes/heap/unused:bytes",
}

func sampleHeap() uint64 {
	samples := make([]metrics.Sample, len(heapMetrics))
	for i, name := range heapMetrics {
		samples[i].Name = name
	}
	metrics.Read(samples)
	var total uint64
	for _, s := range samples {
		if s.Value.Kind() == metrics.KindUint64 {
			total += s.Value.Uint64()
		}
	}
	return total
}

// Register adds a named byte-size source; the callback must be cheap and
// safe to call from the governor's polling goroutine. It returns an
// unregister function (idempotent). Registering the same name twice
// replaces the source. Safe on a nil governor (returns a no-op).
func (g *Governor) Register(name string, size func() uint64) (unregister func()) {
	if g == nil {
		return func() {}
	}
	g.mu.Lock()
	g.sources[name] = size
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			delete(g.sources, name)
			g.mu.Unlock()
		})
	}
}

// Accounted sums the registered size sources. Zero on a nil governor.
func (g *Governor) Accounted() uint64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	srcs := make([]func() uint64, 0, len(g.sources))
	for _, f := range g.sources {
		srcs = append(srcs, f)
	}
	g.mu.Unlock()
	var total uint64
	for _, f := range srcs {
		total += f()
	}
	return total
}

// Sources reports each registered source's current size, sorted by name
// (for /stats payloads). Nil on a nil governor.
func (g *Governor) Sources() map[string]uint64 {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	names := make([]string, 0, len(g.sources))
	for name := range g.sources {
		names = append(names, name)
	}
	srcs := make(map[string]func() uint64, len(names))
	for _, name := range names {
		srcs[name] = g.sources[name]
	}
	g.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		out[name] = srcs[name]()
	}
	return out
}

// Poll samples memory and reclassifies the rung. The classification
// consults faultinject first (forced rungs bypass the real figures), then
// compares heap + spike bytes against the watermarks. Returns the new
// rung. RungNone on a nil governor.
func (g *Governor) Poll() Rung {
	if g == nil {
		return RungNone
	}
	rung := RungNone
	forced := false
	if fr, ok := faultinject.MemRung(); ok {
		rung, forced = Rung(fr), true
	}
	var heap uint64
	if !forced {
		if g.cfg.CriticalBytes > 0 || g.cfg.HighBytes > 0 || g.cfg.SoftBytes > 0 {
			heap = g.heapSample() + faultinject.MemSpike()
			switch {
			case g.cfg.CriticalBytes > 0 && heap >= g.cfg.CriticalBytes:
				rung = RungCritical
			case g.cfg.HighBytes > 0 && heap >= g.cfg.HighBytes:
				rung = RungHigh
			case g.cfg.SoftBytes > 0 && heap >= g.cfg.SoftBytes:
				rung = RungSoft
			}
		}
	}

	g.mu.Lock()
	g.counters.Polls++
	if forced {
		g.counters.ForcedPolls++
	}
	g.counters.HeapBytes = heap
	switch rung {
	case RungSoft:
		g.counters.SoftPolls++
	case RungHigh:
		g.counters.HighPolls++
	case RungCritical:
		g.counters.CriticalPolls++
	}
	if rung == RungCritical {
		g.criticalRun++
		if g.criticalRun == g.cfg.CriticalStopPolls {
			g.stopped = true
			g.counters.Stops++
		}
	} else {
		g.criticalRun = 0
	}
	prev := Rung(g.rung.Swap(int32(rung)))
	if prev != rung {
		g.counters.Transitions++
		if g.cfg.Warn != nil {
			g.cfg.Warn("govern: rung %s -> %s (heap %d B)", prev, rung, heap)
		}
	}
	g.mu.Unlock()

	// Refresh the accounted gauge outside g.mu: source callbacks take
	// their owners' locks and must not nest under the governor's.
	acc := g.Accounted()
	g.mu.Lock()
	g.counters.AccountedBytes = acc
	g.mu.Unlock()
	return rung
}

// Rung returns the most recently polled rung without sampling.
// RungNone on a nil governor.
func (g *Governor) Rung() Rung {
	if g == nil {
		return RungNone
	}
	return Rung(g.rung.Load())
}

// ShouldStop reports whether pressure has been critical for
// CriticalStopPolls consecutive polls; once true it stays true (the run
// is ending anyway — it falls back to the anytime result). False on a
// nil governor.
func (g *Governor) ShouldStop() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stopped
}

// Snapshot returns the governor's counters. Zero on a nil governor.
func (g *Governor) Snapshot() Counters {
	if g == nil {
		return Counters{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.counters
}

// StartTicker polls every interval on a background goroutine until
// StopTicker; cprd uses it so admission decisions see fresh pressure even
// when no engine barrier has polled recently. No-op on a nil governor or
// if a ticker is already running.
func (g *Governor) StartTicker(interval time.Duration) {
	if g == nil || interval <= 0 {
		return
	}
	g.mu.Lock()
	if g.tickStop != nil {
		g.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	g.tickStop, g.tickDone = stop, done
	g.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				g.Poll()
			}
		}
	}()
}

// StopTicker stops the background poller and waits for it to exit.
func (g *Governor) StopTicker() {
	if g == nil {
		return
	}
	g.mu.Lock()
	stop, done := g.tickStop, g.tickDone
	g.tickStop, g.tickDone = nil, nil
	g.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
