package govern

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cpr/internal/faultinject"
)

// fixedHeap installs a deterministic heap sampler.
func fixedHeap(g *Governor, bytes uint64) { g.heapSample = func() uint64 { return bytes } }

func TestNilGovernorIsInert(t *testing.T) {
	var g *Governor
	if r := g.Poll(); r != RungNone {
		t.Fatalf("nil Poll = %v", r)
	}
	if g.Rung() != RungNone || g.ShouldStop() || g.Accounted() != 0 {
		t.Fatal("nil governor reported pressure")
	}
	g.Register("x", func() uint64 { return 1 })()
	g.StartTicker(time.Millisecond)
	g.StopTicker()
	if (g.Snapshot() != Counters{}) {
		t.Fatal("nil Snapshot non-zero")
	}
}

func TestWatermarkLadder(t *testing.T) {
	g := New(Config{SoftBytes: 100, HighBytes: 200, CriticalBytes: 300})
	for _, tc := range []struct {
		heap uint64
		want Rung
	}{{50, RungNone}, {100, RungSoft}, {199, RungSoft}, {200, RungHigh}, {299, RungHigh}, {300, RungCritical}, {50, RungNone}} {
		fixedHeap(g, tc.heap)
		if got := g.Poll(); got != tc.want {
			t.Errorf("heap %d: rung %v, want %v", tc.heap, got, tc.want)
		}
		if g.Rung() != tc.want {
			t.Errorf("heap %d: cached rung %v, want %v", tc.heap, g.Rung(), tc.want)
		}
	}
	c := g.Snapshot()
	if c.Polls != 7 || c.SoftPolls != 2 || c.HighPolls != 2 || c.CriticalPolls != 1 {
		t.Fatalf("counters %+v", c)
	}
	// none→soft, soft→high, high→critical, critical→none.
	if c.Transitions != 4 {
		t.Fatalf("transitions %d, want 4", c.Transitions)
	}
}

func TestDerivedWatermarks(t *testing.T) {
	g := New(Config{MemLimit: 1000})
	if g.cfg.SoftBytes != 500 || g.cfg.HighBytes != 700 || g.cfg.CriticalBytes != 850 {
		t.Fatalf("derived watermarks %d/%d/%d", g.cfg.SoftBytes, g.cfg.HighBytes, g.cfg.CriticalBytes)
	}
	// Explicit values win over derivation.
	g = New(Config{MemLimit: 1000, HighBytes: 600})
	if g.cfg.HighBytes != 600 {
		t.Fatalf("explicit HighBytes overridden: %d", g.cfg.HighBytes)
	}
}

func TestUnconfiguredGovernorSkipsSampling(t *testing.T) {
	g := New(Config{})
	g.heapSample = func() uint64 { t.Fatal("sampled heap with no watermarks"); return 0 }
	if r := g.Poll(); r != RungNone {
		t.Fatalf("rung %v", r)
	}
}

func TestSourcesAndAccounting(t *testing.T) {
	g := New(Config{})
	un1 := g.Register("cache", func() uint64 { return 100 })
	defer un1()
	un2 := g.Register("frontier", func() uint64 { return 23 })
	if got := g.Accounted(); got != 123 {
		t.Fatalf("Accounted = %d", got)
	}
	src := g.Sources()
	if src["cache"] != 100 || src["frontier"] != 23 || len(src) != 2 {
		t.Fatalf("Sources = %v", src)
	}
	un2()
	un2() // idempotent
	if got := g.Accounted(); got != 100 {
		t.Fatalf("after unregister Accounted = %d", got)
	}
	g.Poll()
	if c := g.Snapshot(); c.AccountedBytes != 100 {
		t.Fatalf("AccountedBytes gauge = %d", c.AccountedBytes)
	}
}

func TestForcedRungBypassesHeap(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{MemRungEvery: 2, MemRung: int(RungHigh)})
	defer faultinject.Deactivate()
	g := New(Config{}) // no watermarks: only forcing can raise the rung
	if r := g.Poll(); r != RungNone {
		t.Fatalf("poll 1 rung %v", r)
	}
	if r := g.Poll(); r != RungHigh {
		t.Fatalf("poll 2 rung %v, want high", r)
	}
	c := g.Snapshot()
	if c.ForcedPolls != 1 || c.HighPolls != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestSustainedCriticalStops(t *testing.T) {
	g := New(Config{SoftBytes: 1, HighBytes: 2, CriticalBytes: 3, CriticalStopPolls: 3})
	fixedHeap(g, 10)
	for i := 1; i <= 2; i++ {
		g.Poll()
		if g.ShouldStop() {
			t.Fatalf("stopped after %d critical polls", i)
		}
	}
	g.Poll()
	if !g.ShouldStop() {
		t.Fatal("not stopped after 3 consecutive critical polls")
	}
	// A run of critical polls broken by recovery resets the streak.
	g2 := New(Config{CriticalBytes: 3, CriticalStopPolls: 3})
	fixedHeap(g2, 10)
	g2.Poll()
	g2.Poll()
	fixedHeap(g2, 0)
	g2.Poll() // recovery
	fixedHeap(g2, 10)
	g2.Poll()
	g2.Poll()
	if g2.ShouldStop() {
		t.Fatal("stopped despite broken critical streak")
	}
	g2.Poll()
	if !g2.ShouldStop() {
		t.Fatal("not stopped after re-sustained critical")
	}
	if c := g2.Snapshot(); c.Stops != 1 {
		t.Fatalf("Stops = %d", c.Stops)
	}
}

func TestMemSpikeRaisesSample(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{MemSpikeEvery: 2, MemSpikeBytes: 1000})
	defer faultinject.Deactivate()
	g := New(Config{CriticalBytes: 500})
	fixedHeap(g, 10)
	if r := g.Poll(); r != RungNone {
		t.Fatalf("poll 1 rung %v", r)
	}
	if r := g.Poll(); r != RungCritical {
		t.Fatalf("poll 2 rung %v, want critical (spiked)", r)
	}
}

func TestWarnOnTransition(t *testing.T) {
	var lines []string
	g := New(Config{SoftBytes: 100, Warn: func(f string, a ...interface{}) {
		lines = append(lines, fmt.Sprintf(f, a...))
	}})
	fixedHeap(g, 200)
	g.Poll()
	g.Poll() // same rung: no second line
	fixedHeap(g, 0)
	g.Poll()
	if len(lines) != 2 {
		t.Fatalf("warn lines %q", lines)
	}
}

func TestTickerPolls(t *testing.T) {
	g := New(Config{SoftBytes: 1})
	fixedHeap(g, 10)
	g.StartTicker(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for g.Snapshot().Polls < 3 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never polled")
		}
		time.Sleep(time.Millisecond)
	}
	g.StopTicker()
	g.StopTicker() // idempotent
	if g.Rung() != RungSoft {
		t.Fatalf("rung %v after ticker", g.Rung())
	}
}

func TestConcurrentRegisterAndPoll(t *testing.T) {
	g := New(Config{SoftBytes: 1})
	fixedHeap(g, 10)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				un := g.Register(fmt.Sprintf("s%d", i), func() uint64 { return 1 })
				g.Poll()
				g.Accounted()
				g.Rung()
				un()
			}
		}()
	}
	wg.Wait()
}

func TestSampleHeapReadsMetrics(t *testing.T) {
	if sampleHeap() == 0 {
		t.Fatal("sampleHeap returned 0 — metric names wrong?")
	}
}
