package govern

import (
	"runtime/debug"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1024", 1024, false},
		{"4K", 4 << 10, false},
		{"512M", 512 << 20, false},
		{"512MiB", 512 << 20, false},
		{"512mb", 512 << 20, false},
		{"2G", 2 << 30, false},
		{"1T", 1 << 40, false},
		{" 64 M ", 64 << 20, false},
		{"x", 0, true},
		{"12Q", 0, true},
		{"-5M", 0, true},
		{"99999999999999G", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBytes(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSetupDerivesWatermarksAndLimit(t *testing.T) {
	prev := debug.SetMemoryLimit(-1)
	defer debug.SetMemoryLimit(prev)

	if g, err := Setup("", "", "", nil); err != nil || g != nil {
		t.Fatalf("empty flags: g=%v err=%v, want nil, nil", g, err)
	}
	if _, err := Setup("junk", "", "", nil); err == nil {
		t.Fatal("bad -mem-soft accepted")
	}

	g, err := Setup("", "", "1G", nil)
	if err != nil || g == nil {
		t.Fatalf("Setup(-mem-limit=1G): g=%v err=%v", g, err)
	}
	if got := debug.SetMemoryLimit(-1); got != 1<<30 {
		t.Errorf("runtime memory limit = %d, want %d", got, 1<<30)
	}
	limit := uint64(1 << 30)
	cfg := g.cfg
	if cfg.SoftBytes != limit/2 || cfg.HighBytes != limit/10*7 || cfg.CriticalBytes != limit/100*85 {
		t.Errorf("derived watermarks = %d/%d/%d, want 50/70/85%% of %d",
			cfg.SoftBytes, cfg.HighBytes, cfg.CriticalBytes, limit)
	}

	g2, err := Setup("100M", "200M", "", nil)
	if err != nil || g2 == nil {
		t.Fatalf("Setup(soft,high): g=%v err=%v", g2, err)
	}
	if g2.cfg.SoftBytes != 100<<20 || g2.cfg.HighBytes != 200<<20 {
		t.Errorf("explicit watermarks = %d/%d", g2.cfg.SoftBytes, g2.cfg.HighBytes)
	}
}
