package cancel

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestWithSignalsCancelsOnSignal delivers a real signal to the test
// process and expects the token chain to cancel: the CLI's Ctrl-C path.
func TestWithSignalsCancelsOnSignal(t *testing.T) {
	parent := New()
	tok, stop := WithSignals(parent, syscall.SIGUSR1)
	defer stop()
	if tok.Expired() {
		t.Fatal("token expired before any signal")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !tok.Expired() {
		if time.Now().After(deadline) {
			t.Fatal("token never expired after SIGUSR1")
		}
		time.Sleep(time.Millisecond)
	}
	if err := tok.Err(); err != ErrCancelled {
		t.Fatalf("Err() = %v, want ErrCancelled", err)
	}
	// The signal cancels the derived token only — the parent (and with it,
	// unrelated runs) stays live.
	if parent.Expired() {
		t.Fatal("signal cancelled the parent token")
	}
}

// TestWithSignalsStopReleasesRegistration: after stop, the process's
// default disposition is back in charge, and the token is unusable for new
// runs but the stop itself must be idempotent and panic-free.
func TestWithSignalsStopReleasesRegistration(t *testing.T) {
	_, stop := WithSignals(nil, syscall.SIGUSR2)
	stop()
	stop() // idempotent
}
