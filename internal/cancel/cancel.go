// Package cancel provides the lightweight cancellation/deadline token the
// repair system threads through every long-running loop: the repair loop
// (core), solver queries (smt, sat, lia), concolic and concrete execution
// (concolic, interp), the CEGIS baseline, the fuzzer, and the benchmark
// driver.
//
// The token is context.Context-shaped but deliberately smaller: it carries
// only a wall-clock deadline and a cooperative cancel flag, it is nil-safe
// (a nil *Token never expires, so plumbing through optional paths costs
// nothing), and checking it is a couple of atomic loads plus at most one
// time.Now() call — cheap enough for per-iteration checks in solver inner
// loops.
//
// Tokens form a chain: a child derived with WithTimeout/WithDeadline
// expires when its own deadline passes or when any ancestor expires. The
// repair engine derives one token per Repair call from the job's Budget
// and hands solver queries further-derived per-query tokens.
package cancel

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrCancelled is reported by Err after an explicit Cancel.
var ErrCancelled = errors.New("cancel: cancelled")

// ErrDeadline is reported by Err after the deadline passed.
var ErrDeadline = errors.New("cancel: deadline exceeded")

// Token is a cancellation/deadline token. The zero value (and nil) never
// expires; construct limited tokens with New, WithTimeout, or
// WithDeadline. Cancel and Expired are safe for concurrent use.
type Token struct {
	parent      *Token
	deadline    time.Time
	hasDeadline bool
	cancelled   atomic.Bool
}

// New returns a token with no deadline. It expires only via Cancel (or a
// parent's expiry once derived from).
func New() *Token { return &Token{} }

// WithParent derives a token with no deadline of its own: it expires only
// via its own Cancel or the parent chain's expiry. The repair engine uses
// it to obtain a cancel point it owns (the memory governor's sustained-
// critical stop) without cancelling the caller's token.
func WithParent(parent *Token) *Token { return &Token{parent: parent} }

// WithDeadline derives a token that expires at t (or when parent expires,
// whichever is first). A nil parent is allowed.
func WithDeadline(parent *Token, t time.Time) *Token {
	return &Token{parent: parent, deadline: t, hasDeadline: true}
}

// WithTimeout derives a token that expires d from now (or when parent
// expires, whichever is first). A nil parent is allowed.
func WithTimeout(parent *Token, d time.Duration) *Token {
	return WithDeadline(parent, time.Now().Add(d))
}

// WithBudget derives a token for a run that has already spent part of a
// wall-clock budget: the token expires after max−spent more wall time.
// Fresh runs pass spent=0 and get a plain WithTimeout; a resumed run
// (internal/journal checkpoints persist elapsed time) passes the elapsed
// time from the snapshot, re-basing the remaining budget onto the new
// process's clock. A non-positive max means no budget (the parent is
// returned as-is); a budget already exhausted at derivation returns an
// immediately expired token, so the resumed run still reports TimedOut the
// way the uninterrupted run would have.
func WithBudget(parent *Token, max, spent time.Duration) *Token {
	if max <= 0 {
		return parent
	}
	remaining := max - spent
	if remaining <= 0 {
		// Already exhausted: expire via the deadline path so Err reports
		// ErrDeadline, exactly like a natural budget expiry.
		return WithDeadline(parent, time.Now())
	}
	return WithTimeout(parent, remaining)
}

// Cancel marks the token (and, transitively, every token derived from it)
// expired. Safe to call from another goroutine and more than once.
func (t *Token) Cancel() {
	if t != nil {
		t.cancelled.Store(true)
	}
}

// Expired reports whether the token, or any ancestor, has been cancelled
// or passed its deadline. A nil token never expires.
func (t *Token) Expired() bool {
	now := time.Time{} // lazily fetched: most checks need no clock read
	for cur := t; cur != nil; cur = cur.parent {
		if cur.cancelled.Load() {
			return true
		}
		if cur.hasDeadline {
			if now.IsZero() {
				now = time.Now()
			}
			if !now.Before(cur.deadline) {
				return true
			}
		}
	}
	return false
}

// Err returns nil while the token is live, ErrCancelled after an explicit
// Cancel anywhere in the chain, and ErrDeadline after a deadline expiry.
func (t *Token) Err() error {
	var deadlined bool
	now := time.Time{}
	for cur := t; cur != nil; cur = cur.parent {
		if cur.cancelled.Load() {
			return ErrCancelled
		}
		if cur.hasDeadline {
			if now.IsZero() {
				now = time.Now()
			}
			if !now.Before(cur.deadline) {
				deadlined = true
			}
		}
	}
	if deadlined {
		return ErrDeadline
	}
	return nil
}

// Deadline returns the earliest deadline in the chain, and whether one is
// set at all.
func (t *Token) Deadline() (time.Time, bool) {
	var earliest time.Time
	var ok bool
	for cur := t; cur != nil; cur = cur.parent {
		if cur.hasDeadline && (!ok || cur.deadline.Before(earliest)) {
			earliest, ok = cur.deadline, true
		}
	}
	return earliest, ok
}
