package cancel

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilTokenNeverExpires(t *testing.T) {
	var tok *Token
	if tok.Expired() {
		t.Fatal("nil token expired")
	}
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token Err = %v", err)
	}
	if _, ok := tok.Deadline(); ok {
		t.Fatal("nil token has a deadline")
	}
	tok.Cancel() // must not panic
}

func TestCancelPropagatesToChildren(t *testing.T) {
	root := New()
	child := WithTimeout(root, time.Hour)
	grandchild := WithTimeout(child, time.Hour)
	if grandchild.Expired() {
		t.Fatal("fresh token expired")
	}
	root.Cancel()
	if !child.Expired() || !grandchild.Expired() {
		t.Fatal("cancel did not propagate to descendants")
	}
	if !errors.Is(grandchild.Err(), ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", grandchild.Err())
	}
	// Cancelling a child must not expire the parent.
	root2 := New()
	child2 := WithTimeout(root2, time.Hour)
	child2.Cancel()
	if root2.Expired() {
		t.Fatal("child cancel expired the parent")
	}
}

func TestDeadlineExpiry(t *testing.T) {
	tok := WithDeadline(nil, time.Now().Add(-time.Second))
	if !tok.Expired() {
		t.Fatal("past deadline not expired")
	}
	if !errors.Is(tok.Err(), ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", tok.Err())
	}
	live := WithTimeout(nil, time.Hour)
	if live.Expired() {
		t.Fatal("future deadline already expired")
	}
}

func TestEarliestDeadlineWins(t *testing.T) {
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(time.Minute)
	tok := WithDeadline(WithDeadline(nil, far), near)
	d, ok := tok.Deadline()
	if !ok || !d.Equal(near) {
		t.Fatalf("Deadline = %v %v, want %v", d, ok, near)
	}
	// Same result when the nearer deadline is the ancestor's.
	tok = WithDeadline(WithDeadline(nil, near), far)
	d, ok = tok.Deadline()
	if !ok || !d.Equal(near) {
		t.Fatalf("Deadline = %v %v, want %v", d, ok, near)
	}
}

// TestConcurrentCancel exercises the race detector: Cancel from one
// goroutine while others poll Expired.
func TestConcurrentCancel(t *testing.T) {
	tok := WithTimeout(New(), time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !tok.Expired() {
			}
		}()
	}
	tok.Cancel()
	wg.Wait()
}

// TestWithBudgetFresh: spent=0 behaves like a plain timeout over the full
// budget.
func TestWithBudgetFresh(t *testing.T) {
	tok := WithBudget(nil, time.Hour, 0)
	if tok == nil {
		t.Fatal("budget produced no token")
	}
	if tok.Expired() {
		t.Fatal("fresh budget already expired")
	}
	dl, ok := tok.Deadline()
	if !ok {
		t.Fatal("budget token has no deadline")
	}
	if remaining := time.Until(dl); remaining < 59*time.Minute || remaining > time.Hour {
		t.Fatalf("deadline %v from now, want ~1h", remaining)
	}
}

// TestWithBudgetRebase: a resumed run's elapsed time shrinks the remaining
// window — the deadline lands at max−spent from now, re-based onto the new
// process's clock.
func TestWithBudgetRebase(t *testing.T) {
	tok := WithBudget(nil, time.Hour, 45*time.Minute)
	dl, ok := tok.Deadline()
	if !ok {
		t.Fatal("budget token has no deadline")
	}
	if remaining := time.Until(dl); remaining < 14*time.Minute || remaining > 15*time.Minute {
		t.Fatalf("deadline %v from now, want ~15m", remaining)
	}
	if tok.Expired() {
		t.Fatal("partially spent budget already expired")
	}
}

// TestWithBudgetExhausted: a snapshot that already spent the whole budget
// resumes into an immediately expired token whose Err reports ErrDeadline —
// the resumed run winds down reporting TimedOut exactly like the
// uninterrupted run would have.
func TestWithBudgetExhausted(t *testing.T) {
	for _, spent := range []time.Duration{time.Hour, 2 * time.Hour} {
		tok := WithBudget(nil, time.Hour, spent)
		if !tok.Expired() {
			t.Fatalf("budget with spent=%v not expired", spent)
		}
		if !errors.Is(tok.Err(), ErrDeadline) {
			t.Fatalf("Err = %v, want ErrDeadline", tok.Err())
		}
	}
}

// TestWithBudgetNoBudget: max<=0 means "no wall-clock budget"; the parent
// (possibly nil) passes through untouched.
func TestWithBudgetNoBudget(t *testing.T) {
	if tok := WithBudget(nil, 0, time.Minute); tok != nil {
		t.Fatalf("no-budget token = %v, want nil parent passthrough", tok)
	}
	parent := New()
	if tok := WithBudget(parent, 0, 0); tok != parent {
		t.Fatal("no-budget derivation did not return the parent")
	}
	if tok := WithBudget(parent, -time.Second, 0); tok != parent {
		t.Fatal("negative budget did not return the parent")
	}
}

// TestWithBudgetParentStillWins: the parent's earlier expiry dominates the
// re-based budget window.
func TestWithBudgetParentStillWins(t *testing.T) {
	parent := New()
	tok := WithBudget(parent, time.Hour, 0)
	parent.Cancel()
	if !tok.Expired() {
		t.Fatal("parent cancel did not expire the budget token")
	}
	if !errors.Is(tok.Err(), ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", tok.Err())
	}
}
