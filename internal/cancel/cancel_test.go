package cancel

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilTokenNeverExpires(t *testing.T) {
	var tok *Token
	if tok.Expired() {
		t.Fatal("nil token expired")
	}
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token Err = %v", err)
	}
	if _, ok := tok.Deadline(); ok {
		t.Fatal("nil token has a deadline")
	}
	tok.Cancel() // must not panic
}

func TestCancelPropagatesToChildren(t *testing.T) {
	root := New()
	child := WithTimeout(root, time.Hour)
	grandchild := WithTimeout(child, time.Hour)
	if grandchild.Expired() {
		t.Fatal("fresh token expired")
	}
	root.Cancel()
	if !child.Expired() || !grandchild.Expired() {
		t.Fatal("cancel did not propagate to descendants")
	}
	if !errors.Is(grandchild.Err(), ErrCancelled) {
		t.Fatalf("Err = %v, want ErrCancelled", grandchild.Err())
	}
	// Cancelling a child must not expire the parent.
	root2 := New()
	child2 := WithTimeout(root2, time.Hour)
	child2.Cancel()
	if root2.Expired() {
		t.Fatal("child cancel expired the parent")
	}
}

func TestDeadlineExpiry(t *testing.T) {
	tok := WithDeadline(nil, time.Now().Add(-time.Second))
	if !tok.Expired() {
		t.Fatal("past deadline not expired")
	}
	if !errors.Is(tok.Err(), ErrDeadline) {
		t.Fatalf("Err = %v, want ErrDeadline", tok.Err())
	}
	live := WithTimeout(nil, time.Hour)
	if live.Expired() {
		t.Fatal("future deadline already expired")
	}
}

func TestEarliestDeadlineWins(t *testing.T) {
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(time.Minute)
	tok := WithDeadline(WithDeadline(nil, far), near)
	d, ok := tok.Deadline()
	if !ok || !d.Equal(near) {
		t.Fatalf("Deadline = %v %v, want %v", d, ok, near)
	}
	// Same result when the nearer deadline is the ancestor's.
	tok = WithDeadline(WithDeadline(nil, near), far)
	d, ok = tok.Deadline()
	if !ok || !d.Equal(near) {
		t.Fatalf("Deadline = %v %v, want %v", d, ok, near)
	}
}

// TestConcurrentCancel exercises the race detector: Cancel from one
// goroutine while others poll Expired.
func TestConcurrentCancel(t *testing.T) {
	tok := WithTimeout(New(), time.Hour)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !tok.Expired() {
			}
		}()
	}
	tok.Cancel()
	wg.Wait()
}
