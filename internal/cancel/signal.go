package cancel

import (
	"context"
	"os"
	"os/signal"
)

// WithSignals derives a token that is cancelled when any of the listed OS
// signals is delivered, wiring signal.NotifyContext into the token chain so
// an interrupted run (Ctrl-C, SIGTERM from a supervisor) winds down through
// the same cooperative path as a deadline expiry: the engine exits at the
// next barrier and returns the best-so-far result, and any periodic
// checkpoints already on disk allow a bit-identical -resume.
//
// After the first signal the registration is released, so a second signal
// falls through to the default handler (immediate termination) — a stuck
// run can always be force-killed. The returned stop function releases the
// registration early; calling it after the run is the normal cleanup and
// may cancel the (now unused) token.
func WithSignals(parent *Token, sigs ...os.Signal) (*Token, func()) {
	t := &Token{parent: parent}
	ctx, stop := signal.NotifyContext(context.Background(), sigs...)
	go func() {
		<-ctx.Done()
		stop() // restore default handling: a second signal terminates
		t.Cancel()
	}()
	return t, stop
}
