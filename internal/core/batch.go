package core

import (
	"fmt"

	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/patch"
	"cpr/internal/smt"
)

// feasChunk bounds the item count of one group feasibility query. Small
// enough that a mixed-verdict group bisects in a few rounds, large enough
// that the common path constraint is solved once per ~16 patches instead
// of once per patch.
const feasChunk = 16

// batchItemFor builds patch p's member of a group feasibility query: its
// path formula psi conjoined with its parameter constraint, with every
// parameter renamed to a patch-unique name ("a" of patch 7 → "a!b7").
// Different patches reuse parameter names (the pool synthesizes a, b, c…
// per template), so without renaming one group query would conflate — and
// over-constrain — independent parameters. The "!" keeps renamed names out
// of every source language's identifier space, and the "!b" prefix is
// disjoint from the purifier's "!aux" namespace. Renaming is sound for
// feasibility: the renamed query is alpha-equivalent to the original, so
// its verdict is the same; models are never taken from renamed queries.
// The patch's parameter bounds are added to bounds under the renamed
// names.
func batchItemFor(p *patch.Patch, psi *expr.Term, bounds map[string]interval.Interval) smt.BatchItem {
	f := expr.And(psi, p.ConstraintTerm())
	if len(p.Params) > 0 {
		sub := make(map[string]*expr.Term, len(p.Params))
		for _, name := range p.Params {
			sub[name] = expr.IntVar(fmt.Sprintf("%s!b%d", name, p.ID))
		}
		f = expr.Subst(f, sub)
		for name, iv := range p.ParamBounds() {
			bounds[fmt.Sprintf("%s!b%d", name, p.ID)] = iv
		}
	}
	return smt.BatchItem{ID: p.ID, F: f}
}

// batchFeasibility answers reduce's per-patch compatibility checks
// ("can patch ρ be reasoned about on this path?") with chunked group
// queries instead of one solver call per patch. Verdicts come back in
// patch order; nil means batching is off (or trivial) and the caller
// should query per patch as before.
func (e *engine) batchFeasibility(phi *expr.Term, hits []concolic.HoleHit, patches []*patch.Patch) []smt.BatchVerdict {
	if !e.opts.Batch || len(patches) < 2 {
		return nil
	}
	out := make([]smt.BatchVerdict, len(patches))
	nchunks := (len(patches) + feasChunk - 1) / feasChunk
	e.fanOut(nchunks, func(w *workerCtx, ci int) {
		lo := ci * feasChunk
		hi := lo + feasChunk
		if hi > len(patches) {
			hi = len(patches)
		}
		bounds := make(map[string]interval.Interval, len(e.curBounds))
		for k, v := range e.curBounds {
			bounds[k] = v
		}
		items := make([]smt.BatchItem, 0, hi-lo)
		for _, p := range patches[lo:hi] {
			items = append(items, batchItemFor(p, e.patchFormula(p, hits), bounds))
		}
		w.solver.BeginEpoch() // scope cache-write journaling to this chunk
		copy(out[lo:hi], w.solver.DecideBatch(phi, items, bounds))
	})
	return out
}

// pickNewInputBatched is pickNewInput's ranked-patch loop with the
// feasibility verdicts resolved by chunked group queries. The model for
// the first-ranked feasible patch still comes from exactly the query the
// unbatched loop would pose (original parameter names, original bounds),
// so the generated input — and therefore the whole repair result — is
// identical with batching on or off; only the number of solver calls
// spent discovering infeasible patches differs. Chunks are visited in
// ranking order and the loop stops at the first model, so trailing chunks
// are never queried once a patch admits the flip.
func (e *engine) pickNewInputBatched(flip concolic.Flip, cons *expr.Term, bounds map[string]interval.Interval, solver *smt.Solver, buildItem func(expr.Model, *patch.Patch) workItem) (workItem, bool, bool) {
	ranked := e.pool.Ranked()
	unknown := false

	// tryPatch poses exactly the query the unbatched loop would: the
	// original formula, original parameter names, original bounds.
	tryPatch := func(p *patch.Patch) (workItem, bool) {
		psi := e.patchFormula(p, flip.HoleHits)
		query := expr.And(cons, psi, p.ConstraintTerm())
		b := e.boundsWithParams(bounds, p)
		model, ok, err := solver.GetModel(query, b)
		if e.noteSolverErr(err) {
			unknown = true
			return workItem{}, false
		}
		if !ok {
			return workItem{}, false
		}
		return buildItem(model, p), true
	}

	// The top-ranked patch usually admits the flip, and the unbatched loop
	// then poses exactly one query — so probe it individually first, making
	// the common case cost identical. Group queries cover the tail of
	// lower-ranked patches, where infeasibility clusters.
	if it, ok := tryPatch(ranked[0]); ok {
		return it, true, false
	}
	for lo := 1; lo < len(ranked); lo += feasChunk {
		hi := lo + feasChunk
		if hi > len(ranked) {
			hi = len(ranked)
		}
		chunkBounds := make(map[string]interval.Interval, len(bounds))
		for k, v := range bounds {
			chunkBounds[k] = v
		}
		items := make([]smt.BatchItem, 0, hi-lo)
		for _, p := range ranked[lo:hi] {
			items = append(items, batchItemFor(p, e.patchFormula(p, flip.HoleHits), chunkBounds))
		}
		for j, v := range solver.DecideBatch(cons, items, chunkBounds) {
			p := ranked[lo+j]
			if e.noteSolverErr(v.Err) {
				unknown = true
				continue
			}
			if v.Status != smt.Sat {
				continue
			}
			if it, ok := tryPatch(p); ok {
				return it, true, false
			}
		}
	}
	return workItem{}, false, unknown
}
