package core

import (
	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/journal"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
)

// Distribution: the engine's two fan-out points — the per-flip
// path-reduction scan and the per-patch pool reduction — are independent
// per item, so a Distributor can ship them to shard processes instead of
// the in-process worker pool. The coordinator stays the single owner of
// the frontier, the pool, and seq; a batch carries the full pool state, so
// shards hold no authoritative state and any batch can be recomputed
// anywhere (work-stealing, dead-shard recovery, local fallback) with
// bit-identical outcomes.

// Distributor runs engine batches on remote shards. Implementations live
// outside core (internal/shard); the engine only requires the determinism
// contract: outcome i of a batch must equal what its own worker pool would
// compute for item i. A nil return from RunFlips/RunReduce means the
// distributor could not complete the batch (every shard died); the engine
// then recomputes the whole batch locally.
type Distributor interface {
	RunFlips(b FlipBatch) []FlipOutcome
	RunReduce(b ReduceBatch) []ReduceOutcome
	// Counters reports the distribution counters accumulated so far.
	Counters() DistCounters
	// SolverStats aggregates the live shards' solver counters.
	SolverStats() smt.Stats
	Close() error
}

// DistCounters are the shard-layer measurements surfaced in Stats.
type DistCounters struct {
	// Shards is the configured shard count.
	Shards int
	// Steals counts chunks executed by a shard other than their static
	// owner (work rebalancing); Deaths counts shard connections lost
	// mid-run (their chunks were re-dispatched or recomputed locally).
	Steals, Deaths uint64
	// ImportedVerdicts/ImportedCores count peer cache entries accepted
	// after guard validation; RejectedImports counts entries that failed
	// it (lying or corrupted peers) or could not be revalidated in budget.
	ImportedVerdicts, ImportedCores, RejectedImports uint64
	// HeartbeatsMissed counts liveness-deadline expiries: a shard that
	// produced no frame (data or heartbeat) within the timeout and was
	// declared dead without a transport error.
	HeartbeatsMissed uint64
	// Hedges counts chunks speculatively re-issued to an idle shard after
	// their inflight time passed the straggler threshold; HedgeWins and
	// HedgeLosses split hedged chunks by whether the hedge copy or the
	// original committed first (duplicates are discarded either way).
	Hedges, HedgeWins, HedgeLosses uint64
	// Reconnects counts dead shard slots re-admitted after a successful
	// redial and handshake; LateJoins are re-admissions after the first
	// batch (the joiner re-synced via the next batch-start frame).
	// DegradedStarts is 1 when the fleet started with unreachable members
	// instead of aborting.
	Reconnects, LateJoins, DegradedStarts uint64
}

// PatchState is one pool patch's replicated state: everything a shard
// needs to bring its own deterministically re-synthesized patch replica up
// to date. Batches carry the whole pool's state (pools are small — tens of
// templates after validation).
type PatchState struct {
	ID        int
	Score     float64
	Deletions int
	Region    interval.Region
}

// FlipBatch is one generation's path-reduction scan (§3.4): every fresh
// flip of the explored execution, under the phase bounds and current pool.
type FlipBatch struct {
	Flips  []concolic.Flip
	Bounds map[string]interval.Interval
	Pool   []PatchState
}

// FlipOutcome mirrors one pickNewInput result. Unknowns/Panics are the
// solver-degradation counts observed while computing it, so the
// coordinator's counters match a local run's.
type FlipOutcome struct {
	OK, Unknown bool
	Input       map[string]int64
	PatchID     int
	Params      expr.Model
	Score       int
	Bound       int
	Unknowns    int64
	Panics      int64
}

// ReduceContext is the shared, read-only input of one pool reduction
// (Algorithm 2): the path constraint, the instantiated specification, and
// the hole hits of the execution being reduced against.
type ReduceContext struct {
	Phi        *expr.Term
	Sigma      *expr.Term
	HoleHits   []concolic.HoleHit
	HitBug     bool
	Validation bool
}

// ReduceBatch is one execution's pool reduction over every pool patch
// (tasks are indices into Pool).
type ReduceBatch struct {
	Ctx    ReduceContext
	Bounds map[string]interval.Interval
	Pool   []PatchState
}

// ReduceOutcome is one patch's reduction result, as absolute values: the
// replica's state equals the coordinator's at batch start and each patch
// is owned by exactly one task, so the coordinator commits Score /
// Deletions / Region verbatim in pool order.
type ReduceOutcome struct {
	// Touched reports the patch was feasible on the path and its fields
	// below are authoritative; an untouched patch is left alone.
	Touched bool
	// Removed marks the patch's refined region empty (drop it).
	Removed bool
	// Refined reports Region carries a changed parameter constraint.
	Refined bool
	Region  interval.Region
	// Refinements is 1 when the refined region's count changed.
	Refinements int
	Score       float64
	Deletions   int
	Unknowns    int64
	Panics      int64
}

// poolState snapshots the pool for a batch.
func (e *engine) poolState() []PatchState {
	ps := make([]PatchState, len(e.pool.Patches))
	for i, p := range e.pool.Patches {
		ps[i] = PatchState{ID: p.ID, Score: p.Score, Deletions: p.Deletions, Region: p.Constraint}
	}
	return ps
}

// distributeFlips ships one generation's flip scan to the shards. False
// means the caller must compute the batch locally (no distributor, or
// every shard died mid-batch).
func (e *engine) distributeFlips(fresh []concolic.Flip, bounds map[string]interval.Interval, verdicts []flipVerdict) bool {
	if e.dist == nil || len(fresh) == 0 {
		return false
	}
	outs := e.dist.RunFlips(FlipBatch{Flips: fresh, Bounds: bounds, Pool: e.poolState()})
	if len(outs) != len(fresh) {
		return false
	}
	for i, o := range outs {
		e.solverUnknowns.Add(o.Unknowns)
		e.solverPanics.Add(o.Panics)
		v := flipVerdict{ok: o.OK, unknown: o.Unknown}
		if o.OK {
			v.child = workItem{
				input:   o.Input,
				patchID: o.PatchID,
				params:  o.Params,
				score:   o.Score,
				bound:   o.Bound,
			}
		}
		verdicts[i] = v
	}
	return true
}

// distributeReduce ships one execution's pool reduction to the shards.
func (e *engine) distributeReduce(rc ReduceContext, outs []ReduceOutcome) bool {
	if e.dist == nil || len(outs) == 0 {
		return false
	}
	got := e.dist.RunReduce(ReduceBatch{Ctx: rc, Bounds: e.curBounds, Pool: e.poolState()})
	if len(got) != len(outs) {
		return false
	}
	copy(outs, got)
	return true
}

// --- exported codecs ---
//
// The shard wire protocol (internal/shard) serializes engine state in
// exactly the snapshot encoding; these wrappers expose the checkpoint
// codecs it needs without exporting the engine internals.

// EncodeFlip appends a flip to the payload, interning terms in te.
func EncodeFlip(m *journal.Encoder, te *journal.TermEncoder, f *concolic.Flip) {
	encodeFlip(m, te, f)
}

// DecodeFlip decodes a flip encoded by EncodeFlip.
func DecodeFlip(d *journal.Decoder, td *journal.TermDecoder) (*concolic.Flip, error) {
	return decodeFlip(d, td)
}

// EncodeHoleHit appends a hole hit to the payload.
func EncodeHoleHit(m *journal.Encoder, te *journal.TermEncoder, h concolic.HoleHit) {
	encodeHoleHit(m, te, h)
}

// DecodeHoleHit decodes a hole hit encoded by EncodeHoleHit.
func DecodeHoleHit(d *journal.Decoder, td *journal.TermDecoder) (concolic.HoleHit, error) {
	return decodeHoleHit(d, td)
}

// EncodeRegion appends a parameter region to the payload.
func EncodeRegion(m *journal.Encoder, r interval.Region) { encodeRegion(m, r) }

// DecodeRegion decodes a region encoded by EncodeRegion.
func DecodeRegion(d *journal.Decoder) (interval.Region, error) { return decodeRegion(d) }

// EncodeI64Map appends a string→int64 map (nil-flagged, sorted keys).
func EncodeI64Map(m *journal.Encoder, mp map[string]int64) { encodeI64Map(m, mp) }

// DecodeI64Map decodes a map encoded by EncodeI64Map.
func DecodeI64Map(d *journal.Decoder) (map[string]int64, error) { return decodeI64Map(d) }

// EncodeCacheExport appends a verdict-cache export to the payload.
func EncodeCacheExport(m *journal.Encoder, te *journal.TermEncoder, ex cache.Export) {
	encodeCacheExport(m, te, ex)
}

// DecodeCacheExport decodes an export encoded by EncodeCacheExport.
func DecodeCacheExport(d *journal.Decoder, td *journal.TermDecoder) (cache.Export, error) {
	return decodeCacheExport(d, td)
}

// EncodeSolverStats appends an smt.Stats aggregate to the payload.
func EncodeSolverStats(m *journal.Encoder, s smt.Stats) { encodeSolverStats(m, s) }

// DecodeSolverStats decodes stats encoded by EncodeSolverStats.
func DecodeSolverStats(d *journal.Decoder) smt.Stats {
	var s smt.Stats
	decodeSolverStats(d, &s)
	return s
}

// RunFingerprint hashes everything that determines a run's trajectory (the
// job plus the trajectory-relevant options). A shard worker recomputes it
// over the job it decoded and refuses to serve a coordinator whose
// fingerprint differs — a mismatched replica would return garbage
// outcomes, not wrong-but-plausible ones, so it fails closed instead.
func RunFingerprint(job Job, opts Options) uint64 {
	opts = opts.withDefaults()
	job.Budget = job.Budget.withDefaults()
	return fingerprintRun(job, opts)
}
