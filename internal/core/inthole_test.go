package core

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

// TestRepairIntHole: expression repair (the hole is an integer RHS, as in
// the ManyBugs 7d6e298 and SV-COMP addition subjects).
func TestRepairIntHole(t *testing.T) {
	prog := lang.MustParse(`
int main(int x) {
    assume(x >= 0);
    assume(x <= 20);
    int y = __HOLE__;
    __BUG__;
    assert(y == x + 1);
    return y;
}`)
	job := Job{
		Program:       prog,
		Spec:          expr.Eq(expr.IntVar("y"), expr.Add(expr.IntVar("x"), expr.Int(1))),
		FailingInputs: []map[string]int64{{"x": 3}},
		Components: synth.Components{
			Vars:       map[string]lang.Type{"x": lang.TypeInt},
			Params:     []string{"a"},
			ParamRange: interval.New(-10, 10),
			Arith:      []expr.Op{expr.OpAdd, expr.OpSub},
		},
		InputBounds: map[string]interval.Interval{"x": interval.New(0, 20)},
		Budget:      Budget{MaxIterations: 15, ValidationIterations: 6},
	}
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Stats.PFinal >= res.Stats.PInit {
		t.Fatalf("no reduction: %+v", res.Stats)
	}
	dev := expr.Add(expr.IntVar("x"), expr.Int(1))
	solver := smt.NewSolver(smt.Options{})
	rank, found := CorrectPatchRank(solver, res.Ranked, dev, job.InputBounds)
	if !found {
		for _, line := range FormatTopPatches(res, 8) {
			t.Log(line)
		}
		t.Fatal("correct expression x + 1 not covered")
	}
	if rank > 5 {
		t.Errorf("rank %d, want top-5 (spec pins the expression exactly)", rank)
	}
	// The surviving x + a patch must have collapsed to a = 1.
	xa := expr.Simplify(expr.Add(expr.IntVar("x"), expr.IntVar("a")))
	for _, p := range res.Pool.Patches {
		if p.Expr == xa {
			if p.CountConcrete() != 1 || !p.Constraint.Contains([]int64{1}) {
				t.Errorf("x + a should collapse to a=1, got %v", p.Constraint)
			}
		}
	}
}

// TestRepairConditionInLoop: condition repair with the hole evaluated many
// times per run (multi-hit ψρ).
func TestRepairConditionInLoop(t *testing.T) {
	prog := lang.MustParse(`
void main(int n) {
    assume(n >= 0);
    assume(n <= 6);
    int i = 0;
    while (__HOLE__) {
        i = i + 1;
        if (i > 10) { break; }
    }
    __BUG__;
    assert(i == n);
}`)
	job := Job{
		Program:       prog,
		Spec:          expr.Eq(expr.IntVar("i"), expr.IntVar("n")),
		FailingInputs: []map[string]int64{{"n": 3}},
		Components: synth.Components{
			Vars:       map[string]lang.Type{"i": lang.TypeInt, "n": lang.TypeInt},
			Params:     []string{"a"},
			ParamRange: interval.New(-10, 10),
			Cmp:        []expr.Op{expr.OpLt, expr.OpLe},
			Bool:       []expr.Op{},
			Arith:      []expr.Op{},
		},
		InputBounds: map[string]interval.Interval{"n": interval.New(0, 6)},
		Budget:      Budget{MaxIterations: 15, ValidationIterations: 8},
	}
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	dev := expr.Lt(expr.IntVar("i"), expr.IntVar("n"))
	solver := smt.NewSolver(smt.Options{})
	rank, found := CorrectPatchRank(solver, res.Ranked, dev, job.InputBounds)
	if !found {
		for _, line := range FormatTopPatches(res, 8) {
			t.Log(line)
		}
		t.Fatal("correct condition i < n not covered")
	}
	t.Logf("i < n ranked %d; pool %d→%d", rank, res.Stats.PoolInit, res.Stats.PoolFinal)
}
