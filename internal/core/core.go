// Package core implements the paper's primary contribution: the concolic
// program repair algorithm (Algorithm 1), the patch-pool reduction
// (Algorithm 2), the patch-feasibility-aware input generation of §3.4
// (PickNewInput with path reduction), and the patch ranking of §3.5.3.
//
// The repair loop co-explores the input space and the patch space: each
// iteration picks a (input, patch) pair whose path is feasible for at
// least one pool patch, executes it concolically, and reduces the pool
// against the user-provided specification on the explored partition.
package core

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/govern"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/mc"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
	"cpr/internal/synth"
)

// Job describes one repair task.
type Job struct {
	// Program is the buggy program with a __HOLE__ at the patch location
	// and __BUG__ markers at the bug location.
	Program *lang.Program
	// Spec is the user-provided specification σ: a boolean term over the
	// program variables in scope at the bug location. It must hold
	// whenever the bug location is reached.
	Spec *expr.Term
	// FailingInputs are error-exposing inputs (at least one); the paper
	// obtains them from exploits, failing tests, or directed fuzzing.
	FailingInputs []map[string]int64
	// PassingInputs optionally seed the exploration with passing tests
	// (the paper's §8: CPR "applies to test-suite based repair, by using
	// failing / passing tests to drive concolic path exploration"). They
	// widen the explored input space but are not used for validation.
	PassingInputs []map[string]int64
	// Components is the synthesis language for the patch pool.
	Components synth.Components
	// InputBounds bound the program inputs during exploration; variables
	// absent from the map default to the 32-bit range.
	InputBounds map[string]interval.Interval
	// Budget is the anytime budget.
	Budget Budget
}

// Budget bounds the repair loop. The iteration bounds are deterministic
// (the paper's wall-clock budgets map to iteration budgets for
// reproducibility); MaxDuration and Deadline add the paper's literal
// anytime semantics on top: when the wall clock expires, every layer
// winds down and Repair returns the best-so-far pool with Stats.TimedOut
// set — never an error, never a partial data structure.
type Budget struct {
	// MaxIterations bounds main-loop concolic executions (default 100).
	MaxIterations int
	// ValidationIterations bounds the pinned-input exploration used to
	// validate the initial pool against each failing input (default 8).
	ValidationIterations int
	// MaxDuration bounds the whole repair run's wall-clock time
	// (0 = unbounded).
	MaxDuration time.Duration
	// Deadline is an absolute wall-clock cutoff (zero = none). When both
	// MaxDuration and Deadline are set, the earlier cutoff applies.
	Deadline time.Time
}

func (b Budget) withDefaults() Budget {
	if b.MaxIterations == 0 {
		b.MaxIterations = 100
	}
	if b.ValidationIterations == 0 {
		b.ValidationIterations = 8
	}
	return b
}

// Options tunes the engine.
type Options struct {
	// SMT configures the solver.
	SMT smt.Options
	// DisablePathReduction turns off the §3.4 pruning (ablation): every
	// flip is solved without consulting the patch pool first.
	DisablePathReduction bool
	// SplitMode selects the parameter-region split (ablation; default is
	// the paper's 3ⁿ−1 grid).
	SplitMode interval.SplitMode
	// MaxQueue caps the exploration frontier (default 512).
	MaxQueue int
	// MaxStepsPerRun bounds one concolic execution (default 1 << 18).
	MaxStepsPerRun int
	// ModelCountRanking enables the §3.5.3 fine-tuning: ranking evidence
	// is scaled by the (approximate) proportion of the partition's inputs
	// whose control flow the patch affects, so patches that fire on most
	// of a partition (functionality-deletion behavior) gain less.
	ModelCountRanking bool
	// Batch groups per-patch feasibility checks — pool-reduction
	// compatibility tests and flip-feasibility scans — into chunked group
	// queries (smt.DecideBatch): one solver call covers a whole chunk when
	// the verdicts agree, and an assumption core or bisection attributes
	// mixed verdicts. Per-patch verdicts are identical with batching on or
	// off, and models still come from the exact unbatched query, so the
	// repair result does not change; only solver work does.
	Batch bool
	// Queue selects the exploration frontier policy (ablation of the
	// §3.4 input ranking; default QueueRanked).
	Queue QueuePolicy
	// Cancel, when non-nil, aborts the run cooperatively (e.g. from a
	// signal handler or another goroutine): like a deadline expiry it
	// yields the best-so-far Result with Stats.TimedOut set.
	Cancel *cancel.Token
	// Workers sizes the exploration worker pool (0 = runtime.NumCPU()).
	// Per-item solver work — flip feasibility queries and per-patch pool
	// reduction — fans out across the workers and merges back through the
	// coordinator in a seeded order, so the plausible-patch pool is
	// identical for every worker count; Workers=1 additionally replays the
	// sequential engine's exact call sequence. Only wall-clock budgets
	// (MaxDuration/Deadline/Cancel) make runs scheduling-dependent.
	Workers int
	// Checkpoint configures the durable run journal: with a directory set,
	// the engine snapshots its full state at deterministic generation
	// barriers, and with Resume it continues a killed run to the same
	// result the uninterrupted run would have produced.
	Checkpoint CheckpointOptions
	// Govern, when non-nil, is the memory governor (internal/govern): the
	// engine polls it at every generation barrier and applies its rung's
	// degradation actions — cache shrinks, context retirement, frontier
	// spill, and (under sustained critical pressure) the anytime stop. Nil
	// means no governance; a daemon shares one governor across jobs.
	Govern *govern.Governor
	// SpillDir is where the high rung's frontier spill batches go. Empty
	// means a per-run temp directory created on first spill and removed at
	// the end of the run.
	SpillDir string
	// NewDistributor, when non-nil, supplies a shard distributor (see
	// internal/shard): the engine ships its flip-feasibility scans and pool
	// reductions to shard processes instead of the in-process worker pool,
	// merging outcomes at the same generation barriers — the plausible-patch
	// pool is identical for every shard count, exactly as for Workers. The
	// factory runs after the engine resolves its options; a factory error
	// aborts the run (a half-connected shard fleet must not half-run), but
	// a (nil, nil) return means "run locally this time" — the escape hatch
	// for callers whose shard capacity is a shared budget.
	NewDistributor func(job Job, opts Options) (Distributor, error)
}

// QueuePolicy orders the exploration frontier.
type QueuePolicy uint8

// Queue policies.
const (
	// QueueRanked prefers inputs whose parents exercised the bug and
	// patch locations (the paper's heuristic).
	QueueRanked QueuePolicy = iota
	// QueueFIFO explores in generation order (breadth-first).
	QueueFIFO
)

func (o Options) withDefaults() Options {
	if o.MaxQueue == 0 {
		o.MaxQueue = 512
	}
	if o.MaxStepsPerRun == 0 {
		o.MaxStepsPerRun = 1 << 18
	}
	return o
}

// Stats are the measurements reported in the paper's tables.
type Stats struct {
	// PInit and PFinal are concrete patch-pool sizes (|P_init|, |P_final|).
	PInit, PFinal int64
	// PoolInit and PoolFinal are abstract (template) pool sizes.
	PoolInit, PoolFinal int
	// PathsExplored is φE: concolic executions in the main loop.
	PathsExplored int
	// PathsSkipped is φS: candidate paths pruned because no pool patch
	// could exercise them (the paper's path reduction).
	PathsSkipped int
	// InputsGenerated counts generated inputs (excluding seeds);
	// PatchLocHits/BugLocHits count generated inputs whose execution hit
	// the patch/bug location (Table 6 ratios).
	InputsGenerated, PatchLocHits, BugLocHits int
	// Refinements counts successful parameter-constraint refinements;
	// Removals counts discarded patches.
	Refinements, Removals int
	// TimedOut reports that the wall-clock budget (Budget.MaxDuration /
	// Budget.Deadline) or the cancellation token fired and the run
	// returned its best-so-far pool early.
	TimedOut bool
	// SolverUnknowns counts solver queries that exhausted a budget or
	// deadline (degraded to "path/patch skipped"); SolverPanics counts
	// solver panics recovered at the query boundary.
	SolverUnknowns, SolverPanics int
	// ExecPanics counts subject executions that panicked and were
	// recovered at the engine boundary (degraded to "flip skipped").
	ExecPanics int
	// FlipsRequeued counts flips whose feasibility query came back
	// Unknown and that were re-queued once at a reduced solver budget;
	// FlipsDropped counts those still Unknown on the retry (dropped).
	FlipsRequeued, FlipsDropped int
	// Workers is the resolved size of the exploration worker pool.
	Workers int
	// SolverQueries totals SMT queries across every worker's solvers
	// (retry solvers included). CacheHits/CacheMisses count the verdict
	// cache's traffic from those queries; CacheSubsumed is the subset of
	// hits answered by unsat-core subsumption rather than an exact entry,
	// and CacheEvictions counts LRU evictions.
	SolverQueries                                         uint64
	CacheHits, CacheMisses, CacheEvictions, CacheSubsumed uint64
	// Incremental-solver counters, aggregated across workers (all zero
	// with SMT.Incremental off). EncodeCacheHits/EncodeCacheMisses count
	// per-conjunct encoding reuse; ClausesLearned/ClausesDeleted count CDCL
	// clause learning and activity-driven deletion, and ClausesKept is the
	// learned-clause count retained across queries at the end of the run;
	// AssumptionCores counts unsat answers that produced a narrowing
	// assumption core and AssumptionCoreLits sums their sizes.
	EncodeCacheHits, EncodeCacheMisses          uint64
	ClausesLearned, ClausesKept, ClausesDeleted uint64
	AssumptionCores, AssumptionCoreLits         uint64
	// Self-healing health counters, aggregated across workers (package
	// smt/guard). Validations counts verdict validations (sat-model
	// replays + sampled unsat cross-checks) and ValidationFailures the
	// verdicts they rejected — every rejected verdict was replaced by a
	// lower-rung solve or degraded to Unknown, never observed by the
	// repair loop. Quarantines counts solver layers taken out of service,
	// FallbackSolves queries served below their natural tier,
	// RebuildRetries quarantined contexts readmitted after backoff, and
	// BreakerTrips per-worker circuit breakers pinned to scratch mode.
	Validations, ValidationFailures uint64
	Quarantines, FallbackSolves     uint64
	RebuildRetries, BreakerTrips    uint64
	// Wall-time breakdown of solver work, summed across workers: CDCL
	// search (portfolio races included), the LIA procedure, and verdict
	// validation (model replays plus sampled cross-checks).
	SatTime, LIATime, ValidateTime time.Duration
	// Portfolio counters, aggregated across workers (all zero with
	// SMT.Portfolio < 2): races escalated past the leader-alone threshold,
	// races a non-default configuration won, and learned clauses imported
	// from race winners.
	PortfolioRaces, PortfolioMirrorWins, PortfolioShared uint64
	// Batched-feasibility counters (all zero with Options.Batch off):
	// group queries issued, per-patch verdicts answered by a group result
	// rather than an individual solve, and mixed-verdict bisection splits.
	BatchQueries, BatchItems, BatchBisections uint64
	// Sharding counters (all zero without Options.NewDistributor). Shards
	// is the configured shard count; ShardSteals counts work chunks
	// executed away from their statically-owning shard (rebalancing),
	// ShardDeaths shard connections lost mid-run. The import counters
	// measure cross-shard knowledge sharing: verdict-cache entries and
	// subsumption cores accepted after guard validation, and entries
	// rejected by it (a lying or corrupted peer cannot poison a shard).
	// The resilience counters measure fleet self-healing under gray
	// failures: liveness deadlines tripped, stragglers hedged (with the
	// win/loss split), dead slots re-admitted (late joiners re-sync at the
	// next batch start), and whether the fleet started degraded.
	// None of these fields enter any stats-equality fingerprint — like
	// Workers and the wall-time fields they describe the schedule, not the
	// repair trajectory.
	Shards                                                          int
	ShardSteals, ShardDeaths                                        uint64
	ShardImportedVerdicts, ShardImportedCores, ShardRejectedImports uint64
	ShardHeartbeatsMissed                                           uint64
	ShardHedges, ShardHedgeWins, ShardHedgeLosses                   uint64
	ShardReconnects, ShardLateJoins, ShardDegradedStarts            uint64
	// Memory-governor counters (all zero without Options.Govern): barrier
	// polls classified at each rung, verdict-cache shrinks (count and bytes
	// freed), incremental solver contexts retired (count and approximate
	// bytes), frontier cold-tail spills (batches, items, reloads, and
	// unreadable batches), and whether sustained critical pressure stopped
	// the run (MemStopped implies TimedOut: the stop IS the budget-expiry
	// path). GovernPolls/GovernTransitions count this run's own barrier
	// polls and the rung changes they observed. Like the shard counters,
	// none of these enter snapshot codecs or stats-equality fingerprints —
	// they describe memory scheduling, not the repair trajectory.
	MemRungSoft, MemRungHigh, MemRungCritical uint64
	MemCacheShrinks, MemCacheShrinkBytes      uint64
	MemContextRetires, MemContextRetireBytes  uint64
	MemSpills, MemSpilledItems, MemReloads    uint64
	MemSpillLoadFailures                      uint64
	MemStopped                                bool
	GovernPolls, GovernTransitions            uint64
	// Structure-size gauges, tracked at every generation barrier whether or
	// not a governor is configured: peak frontier length (in-memory plus
	// spilled) and approximate bytes, peak seen-set size, and peak pool
	// bytes. Also excluded from snapshots and fingerprints.
	FrontierPeak, SeenPeak                          int
	FrontierPeakBytes, SeenPeakBytes, PoolPeakBytes uint64
}

// CacheHitRate is CacheHits / (CacheHits + CacheMisses), 0 when no query
// consulted the cache.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// ReductionRatio is 1 − PFinal/PInit (the tables' Ratio column).
func (s Stats) ReductionRatio() float64 {
	if s.PInit == 0 {
		return 0
	}
	return 1 - float64(s.PFinal)/float64(s.PInit)
}

// Result is the outcome of a repair run.
type Result struct {
	// Pool is the final reduced pool.
	Pool *patch.Pool
	// Ranked is the pool in ranking order (§3.5.3).
	Ranked []*patch.Patch
	// Stats are the run's measurements.
	Stats Stats
}

// ErrNoHole is returned for programs without a patch location.
var ErrNoHole = errors.New("core: program has no __HOLE__ patch location")

// ErrNoFailingInput is returned when the job provides no failing input.
var ErrNoFailingInput = errors.New("core: job has no failing input (generate one with the fuzzer)")

// Repair runs concolic program repair on the job (Algorithm 1).
//
// Repair is an anytime algorithm with a failure discipline: on wall-clock
// expiry (Budget.MaxDuration / Budget.Deadline / Options.Cancel) it
// returns the pool reduced so far with Stats.TimedOut set; solver budget
// exhaustion degrades to skipped flips (re-queued once at a reduced
// budget, then dropped, both counted); and a panic in subject execution
// or inside a solver query degrades to a skipped flip/query, counted in
// Stats.ExecPanics / Stats.SolverPanics. None of these abort the run.
func Repair(job Job, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	job.Budget = job.Budget.withDefaults()
	if job.Program.HolePos == nil {
		return nil, ErrNoHole
	}
	if len(job.FailingInputs) == 0 {
		return nil, ErrNoFailingInput
	}
	if job.Spec == nil {
		job.Spec = expr.True()
	}
	opts.Checkpoint = opts.Checkpoint.withDefaults()
	ownCache := opts.SMT.Cache == nil

	// Resume, step 1: load the latest intact snapshot before the budget
	// token is derived, so the wall-clock budget can be re-based on the
	// time the killed run already spent. Any load failure degrades to a
	// fresh start with a warning.
	var rs *resumeState
	var fp uint64
	if opts.Checkpoint.enabled() {
		fp = fingerprintRun(job, opts)
		if opts.Checkpoint.Resume {
			rs = loadResume(opts, fp)
		}
	}
	var spent time.Duration
	if rs != nil {
		spent = rs.elapsed
	}
	tok := cancel.WithBudget(opts.Cancel, job.Budget.MaxDuration, spent)
	if !job.Budget.Deadline.IsZero() {
		tok = cancel.WithDeadline(tok, job.Budget.Deadline)
	}
	if opts.Govern != nil {
		// The governor's sustained-critical stop cancels the run's token;
		// derive one the engine owns so the caller's token is untouched.
		tok = cancel.WithParent(tok)
	}
	// The run-level token also bounds every solver query, so a single
	// hard query cannot overrun the deadline.
	opts.SMT.Cancel = tok
	// Every solver of the run shares one verdict cache: the repair loop
	// re-poses structurally identical feasibility queries constantly, and
	// under parallelism the cache also lets workers reuse each other's
	// answers. A caller-provided cache (e.g. shared across runs) is kept.
	if ownCache {
		opts.SMT.Cache = cache.New(cache.Options{})
		if rs != nil && rs.hasCache {
			if err := opts.SMT.Cache.Import(rs.cacheExport); err != nil {
				opts.Checkpoint.warnf("checkpoint: verdict-cache import failed, continuing with an empty cache: %v", err)
			}
		}
	}
	cacheStart := opts.SMT.Cache.Stats()

	// Phase 1: patch pool construction (§3.3). A resumed run re-derives
	// the template list with no cancellation token: enumeration is
	// deterministic, so the full list is a superset of whatever prefix the
	// killed run synthesized, and the snapshot intersect below recovers
	// exactly its pool. Fresh runs enumerate under the budget token.
	if rs == nil {
		job.Components.Cancel = tok
	} else {
		job.Components.Cancel = nil
	}
	templates := synth.Synthesize(job.Components, job.Program.HoleType)
	pool := synth.BuildPool(templates, job.Components)
	for _, p := range pool.Patches {
		p.Constraint.Mode = opts.SplitMode
	}
	eng := &engine{
		job:         job,
		opts:        opts,
		solver:      smt.NewSolver(opts.SMT),
		retrySolver: smt.NewSolver(reducedSMT(opts.SMT)),
		pool:        pool,
		tok:         tok,
	}
	eng.ownCache = ownCache
	eng.cacheStart = cacheStart
	eng.workers = eng.newWorkers(opts.Workers)
	eng.curBounds = eng.inputBounds()
	defer eng.registerGovernSources()()
	defer func() {
		if eng.ownSpillDir {
			os.RemoveAll(eng.spillDir)
		}
	}()
	if opts.NewDistributor != nil {
		dist, err := opts.NewDistributor(job, opts)
		if err != nil {
			return nil, fmt.Errorf("core: shard distributor: %w", err)
		}
		if dist != nil {
			// A (nil, nil) return means "run locally this time" — e.g. a
			// daemon whose global shard budget is exhausted; results are
			// identical either way.
			eng.dist = dist
			defer dist.Close()
		}
	}
	stats := &Stats{PoolInit: pool.Size()}

	var ck *checkpointer
	if opts.Checkpoint.enabled() {
		ck = &checkpointer{opts: opts.Checkpoint, fp: fp, eng: eng, runStats: stats, start: time.Now()}
		eng.ck = ck
	}

	// Resume, step 2: restore the killed run's engine state — pool
	// membership with refined regions and ranking evidence, stats,
	// counters, deletion memo, and barrier/elapsed accounting.
	numVal := len(job.FailingInputs)
	startPhase := 0
	var resumeSt *exploreState
	var resumePartial *Stats
	if rs != nil {
		rs.apply(eng, stats, ck)
		startPhase = rs.phase
		resumeSt = rs.st()
		if rs.hasPartial {
			p := rs.partial
			resumePartial = &p
		}
	}

	// Phase 1b: validate the pool against each failing input by
	// exploring the patch dimension with the input pinned (the paper's
	// controlled symbolic execution for initial test cases). Each input is
	// one checkpoint phase; a resumed run re-enters the interrupted phase
	// with its restored frontier and partial per-phase stats.
	for pi := startPhase; pi < numVal; pi++ {
		if eng.tok.Expired() {
			break
		}
		fi := job.FailingInputs[pi]
		var vstats Stats
		st := &exploreState{}
		if resumeSt != nil {
			st = resumeSt
			if resumePartial != nil {
				vstats = *resumePartial
			}
			resumeSt, resumePartial = nil, nil
		}
		if ck != nil {
			ck.phase = pi
		}
		eng.explore([]map[string]int64{fi}, eng.pinnedBounds(fi), job.Budget.ValidationIterations, &vstats, true, st)
		stats.PathsExplored += vstats.PathsExplored
		stats.PathsSkipped += vstats.PathsSkipped
		if pool.Size() == 0 {
			break
		}
	}
	if startPhase < numVal || rs == nil {
		// Post-validation pool measurements; a run resumed into the main
		// phase already carries them in its restored stats.
		stats.PInit = pool.CountConcrete()
		stats.PoolInit = pool.Size()
	}

	// Phases 2+3: the repair loop over the full input space, seeded by
	// the failing tests and any passing tests.
	if pool.Size() > 0 && !eng.tok.Expired() {
		st := &exploreState{}
		if resumeSt != nil && startPhase == numVal {
			st = resumeSt
		}
		if ck != nil {
			ck.phase = numVal
		}
		seeds := append(append([]map[string]int64{}, job.FailingInputs...), job.PassingInputs...)
		eng.explore(seeds, eng.inputBounds(), job.Budget.MaxIterations, stats, false, st)
	}

	stats.PFinal = pool.CountConcrete()
	stats.PoolFinal = pool.Size()
	stats.Refinements = int(eng.refinements.Load())
	stats.Removals = int(eng.removals.Load())
	stats.TimedOut = eng.tok.Expired()
	stats.SolverUnknowns = int(eng.solverUnknowns.Load())
	stats.SolverPanics = int(eng.solverPanics.Load())
	stats.ExecPanics = int(eng.execPanics.Load())
	stats.FlipsRequeued = int(eng.flipsRequeued.Load())
	stats.FlipsDropped = int(eng.flipsDropped.Load())
	stats.Workers = len(eng.workers)
	agg := eng.baseAgg
	for _, w := range eng.workers {
		agg = agg.Add(w.solver.Stats()).Add(w.retrySolver.Stats())
	}
	stats.SolverQueries = agg.Queries
	stats.CacheHits = agg.CacheHits
	stats.CacheMisses = agg.CacheMisses
	stats.EncodeCacheHits = agg.EncodeCacheHits
	stats.EncodeCacheMisses = agg.EncodeCacheMisses
	stats.ClausesLearned = agg.ClausesLearned
	stats.ClausesKept = agg.ClausesKept
	stats.ClausesDeleted = agg.ClausesDeleted
	stats.AssumptionCores = agg.AssumptionCores
	stats.AssumptionCoreLits = agg.AssumptionCoreLits
	stats.Validations = agg.Validations
	stats.ValidationFailures = agg.ValidationFailures
	stats.Quarantines = agg.Quarantines
	stats.FallbackSolves = agg.FallbackSolves
	stats.RebuildRetries = agg.RebuildRetries
	stats.BreakerTrips = agg.BreakerTrips
	stats.SatTime = agg.SatTime
	stats.LIATime = agg.LIATime
	stats.ValidateTime = agg.ValidateTime
	stats.PortfolioRaces = agg.PortfolioRaces
	stats.PortfolioMirrorWins = agg.PortfolioMirrorWins
	stats.PortfolioShared = agg.PortfolioShared
	stats.BatchQueries = agg.BatchQueries
	stats.BatchItems = agg.BatchItems
	stats.BatchBisections = agg.BatchBisections
	if eng.dist != nil {
		// Shard solvers did the distributed batches' work; their counters
		// fold into the same aggregate the local workers feed.
		sagg := agg.Add(eng.dist.SolverStats())
		stats.SolverQueries = sagg.Queries
		stats.CacheHits = sagg.CacheHits
		stats.CacheMisses = sagg.CacheMisses
		stats.EncodeCacheHits = sagg.EncodeCacheHits
		stats.EncodeCacheMisses = sagg.EncodeCacheMisses
		stats.ClausesLearned = sagg.ClausesLearned
		stats.ClausesKept = sagg.ClausesKept
		stats.ClausesDeleted = sagg.ClausesDeleted
		stats.AssumptionCores = sagg.AssumptionCores
		stats.AssumptionCoreLits = sagg.AssumptionCoreLits
		stats.Validations = sagg.Validations
		stats.ValidationFailures = sagg.ValidationFailures
		stats.Quarantines = sagg.Quarantines
		stats.FallbackSolves = sagg.FallbackSolves
		stats.RebuildRetries = sagg.RebuildRetries
		stats.BreakerTrips = sagg.BreakerTrips
		stats.SatTime = sagg.SatTime
		stats.LIATime = sagg.LIATime
		stats.ValidateTime = sagg.ValidateTime
		stats.PortfolioRaces = sagg.PortfolioRaces
		stats.PortfolioMirrorWins = sagg.PortfolioMirrorWins
		stats.PortfolioShared = sagg.PortfolioShared
		stats.BatchQueries = sagg.BatchQueries
		stats.BatchItems = sagg.BatchItems
		stats.BatchBisections = sagg.BatchBisections
		dc := eng.dist.Counters()
		stats.Shards = dc.Shards
		stats.ShardSteals = dc.Steals
		stats.ShardDeaths = dc.Deaths
		stats.ShardImportedVerdicts = dc.ImportedVerdicts
		stats.ShardImportedCores = dc.ImportedCores
		stats.ShardRejectedImports = dc.RejectedImports
		stats.ShardHeartbeatsMissed = dc.HeartbeatsMissed
		stats.ShardHedges = dc.Hedges
		stats.ShardHedgeWins = dc.HedgeWins
		stats.ShardHedgeLosses = dc.HedgeLosses
		stats.ShardReconnects = dc.Reconnects
		stats.ShardLateJoins = dc.LateJoins
		stats.ShardDegradedStarts = dc.DegradedStarts
	}
	cacheEnd := opts.SMT.Cache.Stats()
	stats.CacheEvictions = eng.baseCacheEvict + (cacheEnd.Evictions - cacheStart.Evictions)
	stats.CacheSubsumed = eng.baseCacheSub + (cacheEnd.Subsumed - cacheStart.Subsumed)
	eng.copyMemStats(stats)
	return &Result{Pool: pool, Ranked: pool.Ranked(), Stats: *stats}, nil
}

// reducedSMT derives the retry solver's options: the same solver family
// with every budget quartered (and a floor), used for the single re-queue
// of flips whose feasibility query came back Unknown.
func reducedSMT(o smt.Options) smt.Options {
	reduce := func(v, def, floor uint64) uint64 {
		if v == 0 {
			v = def
		}
		v /= 4
		if v < floor {
			v = floor
		}
		return v
	}
	o.MaxConflicts = reduce(o.MaxConflicts, 8000, 64)
	o.MaxTheoryRounds = int(reduce(uint64(o.MaxTheoryRounds), 10000, 16))
	o.LIA.MaxSteps = int(reduce(uint64(o.LIA.MaxSteps), 200000, 256))
	if o.MaxQueryDuration > 0 {
		o.MaxQueryDuration /= 4
	}
	return o
}

// engine carries the mutable repair state. The coordinator (the explore
// loop) owns the queue, the pool's membership, and seq; fanOut tasks may
// only touch their own patch/result slot, the atomic counters, and their
// workerCtx's solvers.
type engine struct {
	job    Job
	opts   Options
	solver *smt.Solver
	pool   *patch.Pool
	tok    *cancel.Token
	// retrySolver re-solves Unknown flips once at a reduced budget.
	retrySolver *smt.Solver
	// workers hold the per-worker solvers; workers[0] aliases
	// solver/retrySolver. See parallel.go.
	workers []*workerCtx
	// dist, when non-nil, ships flip scans and pool reductions to shard
	// processes (see dist.go); a failed batch falls back to the workers.
	dist Distributor
	// curBounds are the input bounds of the explore phase in progress.
	curBounds map[string]interval.Interval

	// Degradation counters are atomic: workers bump them concurrently, and
	// sums are order-independent, so they stay deterministic across worker
	// counts (unlike any order-sensitive aggregate would be).
	refinements    atomic.Int64
	removals       atomic.Int64
	solverUnknowns atomic.Int64
	solverPanics   atomic.Int64
	execPanics     atomic.Int64
	flipsRequeued  atomic.Int64
	flipsDropped   atomic.Int64

	delMu    sync.Mutex
	delCache map[int]delEntry
	seq      int

	// Checkpoint/resume state (see checkpoint.go). ck is nil unless
	// Options.Checkpoint is enabled. ownCache records whether Repair
	// created the verdict cache (and therefore persists it in snapshots);
	// cacheStart is the cache's counter baseline at engine construction.
	// The base* fields carry the killed run's counters on resume, so final
	// aggregates continue from where the previous process died.
	ck             *checkpointer
	ownCache       bool
	cacheStart     cache.Stats
	baseAgg        smt.Stats
	baseCacheEvict uint64
	baseCacheSub   uint64

	// Memory-governor state (see govern.go and spill.go). The plain fields
	// are coordinator-only; the atomic gauges are read by governor source
	// callbacks, possibly from a daemon's ticker goroutine.
	spillDir                         string // resolved spill directory; "\x00unavailable" after a failure
	ownSpillDir                      bool
	spillSeq                         int
	lastRung                         govern.Rung
	memStopped                       bool
	memSoft, memHigh, memCritical    uint64
	memShrinks, memShrinkBytes       uint64
	memRetires, memRetireBytes       uint64
	memSpills, memSpilledItems       uint64
	memReloads, memSpillLoadFailures uint64
	governPolls, governTransitions   uint64
	frontierPeak, seenPeak           int
	frontierPeakBytes, seenPeakBytes uint64
	poolPeakBytes                    uint64
	gFrontierBytes, gSeenBytes       atomic.Uint64
	gPoolBytes, gSolverBytes         atomic.Uint64
}

// noteSolverErr classifies and counts a degraded solver answer; it
// returns true for every non-nil error, since any failed query leaves the
// path/patch undecidable and the caller must skip it.
func (e *engine) noteSolverErr(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, smt.ErrSolverPanic):
		e.solverPanics.Add(1)
	default:
		e.solverUnknowns.Add(1)
	}
	return true
}

type delEntry struct {
	count int64
	val   bool
}

func (e *engine) inputBounds() map[string]interval.Interval {
	b := make(map[string]interval.Interval)
	for _, p := range e.job.Program.Inputs() {
		if iv, ok := e.job.InputBounds[p.Name]; ok {
			b[p.Name] = iv
		} else {
			b[p.Name] = smt.Int32Bounds
		}
		if p.Type == lang.TypeBool {
			b[p.Name] = interval.New(0, 1)
		}
	}
	return b
}

func (e *engine) pinnedBounds(input map[string]int64) map[string]interval.Interval {
	b := make(map[string]interval.Interval)
	for _, p := range e.job.Program.Inputs() {
		b[p.Name] = interval.Point(input[p.Name])
	}
	return b
}

// workItem is a queued (input, patch) pair (the t, ρ of PickNewInput).
// A retry item instead carries a flip whose feasibility query came back
// Unknown; it is re-solved once at the reduced retry budget when popped.
type workItem struct {
	input   map[string]int64
	patchID int
	params  expr.Model
	score   int
	bound   int // generational-search bound for children
	seq     int
	seed    bool
	flip    *concolic.Flip
	retry   bool
}

// explore runs the repair loop over the given input bounds: Algorithm 1's
// while loop, with PickNewInput realized as a ranked frontier of flips
// whose patch feasibility has been established (path reduction, §3.4).
//
// The loop state lives in st so a checkpoint can capture it and a resumed
// run can continue it: a zero-valued st starts the phase fresh (seeding
// the frontier from seeds), a restored st picks up mid-phase and ignores
// seeds entirely.
func (e *engine) explore(seeds []map[string]int64, bounds map[string]interval.Interval, maxIter int, stats *Stats, validation bool, st *exploreState) {
	e.curBounds = bounds
	// The phase's spilled frontier tail (if the governor's high rung ever
	// fires) is scratch state discarded with the phase's queue.
	defer st.dropSpill()
	// push appends to the logical frontier — in-memory queue plus spilled
	// tail — evicting the logical worst at the MaxQueue cap (spill.go).
	push := func(it workItem) {
		e.pushFrontier(st, it)
	}
	if st.seen == nil {
		st.seen = make(map[uint64]bool) // explored path prefixes in this phase
		for _, s := range seeds {
			ranked := e.pool.Ranked()
			if len(ranked) == 0 {
				return
			}
			p := ranked[0]
			params, ok := p.AnyParams()
			if !ok {
				continue
			}
			e.seq++
			push(workItem{input: s, patchID: p.ID, params: params, score: 1 << 20, bound: 0, seq: e.seq, seed: true})
		}
	}

	cmp := less
	if e.opts.Queue == QueueFIFO {
		cmp = lessFIFO
	}
	for ; st.iter < maxIter && st.frontierLen() > 0 && e.pool.Size() > 0; st.iter++ {
		if e.tok.Expired() {
			// Anytime: keep the pool reduced so far. Deliberately NO snapshot
			// is written here: the cancellation raced the generation that just
			// merged — its in-flight solver queries saw the expired token and
			// degraded to Unknown — so the state at this exit is a valid
			// anytime answer but not the state an uninterrupted run passes
			// through. A resumed run (CLI -resume, daemon restart) must replay
			// from the last clean periodic barrier snapshot to stay
			// bit-identical with an uninterrupted run.
			return
		}
		// Generation barrier: all fan-out from the previous iteration has
		// merged, so the engine state here is identical for every worker
		// count. Checkpoints are written (and crash faults injected) only
		// at this point.
		e.atBarrier(st, stats)
		// Pop the best item under the queue policy, first making sure the
		// logical best is in memory when part of the frontier is spilled.
		e.reloadForPop(st)
		if len(st.queue) == 0 {
			// Every remaining frontier item sat in an unreadable spill batch
			// (warned and counted by reloadBatch); nothing to pop.
			continue
		}
		best := 0
		for i := 1; i < len(st.queue); i++ {
			if cmp(st.queue[i], st.queue[best]) {
				best = i
			}
		}
		item := st.queue[best]
		st.queue = append(st.queue[:best], st.queue[best+1:]...)

		if item.retry {
			// Second (and last) attempt at a flip whose feasibility query
			// came back Unknown, at the reduced retry budget.
			child, ok, unknown := e.pickNewInput(*item.flip, bounds, e.retrySolver)
			if unknown || !ok {
				if unknown {
					e.flipsDropped.Add(1)
				}
				stats.PathsSkipped++
				continue
			}
			e.seq++
			child.seq = e.seq
			push(child)
			continue
		}

		// The pool may have changed since the item was pushed: re-resolve
		// the patch choice.
		pt, params, ok := e.resolvePatch(item)
		if !ok {
			stats.PathsSkipped++
			continue
		}
		exec, panicked := e.safeExecute(item.input, pt, params)
		if panicked {
			// Subject (or patch evaluation) crashed the interpreter itself:
			// degrade to "path skipped" rather than aborting the run.
			stats.PathsSkipped++
			continue
		}
		if exec.Err != nil && !exec.Crashed() && exec.Err.Kind != interp.ErrAssumeViolated {
			// Engine-level failure (step limit, cancellation, patch
			// evaluation error): the path contributes nothing.
			continue
		}
		stats.PathsExplored++
		if !item.seed {
			stats.InputsGenerated++
			if exec.HitPatch() {
				stats.PatchLocHits++
			}
			if exec.HitBug() {
				stats.BugLocHits++
			}
		}
		if exec.HitPatch() {
			e.reduce(exec, stats, validation)
		}
		// Generational search children. Dedup against seen prefixes in
		// generation order first; the surviving flips' feasibility queries
		// (the §3.4 path-reduction work, the loop's dominant solver cost)
		// are independent of each other, so they fan out across the
		// workers. The verdicts land in per-flip slots and merge back in
		// generation order, which is where seq is assigned — so the queue
		// the next iteration pops from is the same for any worker count.
		var fresh []concolic.Flip
		var keys []uint64
		for _, flip := range concolic.Flips(exec, item.bound) {
			key := concolic.PathKey(append(append([]*expr.Term{}, flip.Prefix...), flip.Negated))
			if st.seen[key] {
				continue
			}
			st.seen[key] = true
			fresh = append(fresh, flip)
			keys = append(keys, key)
		}
		verdicts := make([]flipVerdict, len(fresh))
		if !e.distributeFlips(fresh, bounds, verdicts) {
			e.fanOut(len(fresh), func(w *workerCtx, i int) {
				child, ok, unknown := e.pickNewInput(fresh[i], bounds, w.solver)
				verdicts[i] = flipVerdict{child: child, ok: ok, unknown: unknown}
			})
		}
		for i, v := range verdicts {
			if v.unknown {
				// Solver budget/deadline/panic on this flip: re-queue it
				// once (deprioritized) for the reduced-budget retry pass.
				f := fresh[i]
				e.flipsRequeued.Add(1)
				e.seq++
				push(workItem{flip: &f, retry: true, score: f.Score() - 1000, bound: f.Depth + 1, seq: e.seq})
				continue
			}
			if !v.ok {
				stats.PathsSkipped++
				continue
			}
			child := v.child
			child.score += faultinject.RankDelta(keys[i])
			e.seq++
			child.seq = e.seq
			push(child)
		}
	}
}

// flipVerdict is one flip's path-reduction outcome, computed on a worker
// and merged by the coordinator.
type flipVerdict struct {
	child   workItem
	ok      bool
	unknown bool
}

// safeExecute runs one concolic execution with the run token plumbed in
// and panics recovered at this boundary: a crash in the interpreter or in
// patch evaluation degrades to a skipped path, counted in Stats.ExecPanics.
func (e *engine) safeExecute(input map[string]int64, pt *patch.Patch, params expr.Model) (exec *concolic.Execution, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			e.execPanics.Add(1)
			exec, panicked = nil, true
		}
	}()
	return concolic.Execute(e.job.Program, input, concolic.Options{
		Patch:       pt.Expr,
		PatchParams: params,
		MaxSteps:    e.opts.MaxStepsPerRun,
		Stop:        e.tok.Expired,
	}), false
}

func less(a, b workItem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.seq < b.seq
}

func lessFIFO(a, b workItem) bool { return a.seq < b.seq }

// resolvePatch returns the patch and parameters to execute a work item
// with, re-validating against the current pool.
func (e *engine) resolvePatch(item workItem) (*patch.Patch, expr.Model, bool) {
	for _, p := range e.pool.Patches {
		if p.ID != item.patchID {
			continue
		}
		if len(p.Params) == 0 {
			return p, expr.Model{}, true
		}
		if p.Constraint.Contains(p.ParamPoint(item.params)) {
			return p, item.params, true
		}
		if m, ok := p.AnyParams(); ok {
			return p, m, true
		}
		return nil, nil, false
	}
	// The chosen patch is gone; fall back to the best available.
	ranked := e.pool.Ranked()
	if len(ranked) == 0 {
		return nil, nil, false
	}
	p := ranked[0]
	m, ok := p.AnyParams()
	if !ok {
		return nil, nil, false
	}
	return p, m, true
}

// pickNewInput implements the path-reduction step of §3.4: a flip is only
// queued if some pool patch admits the flipped path; the satisfying model
// provides both the new input t and the patch ρ (with parameter values).
// The third result reports a degraded (Unknown) solver answer, which the
// caller turns into a re-queue or a counted drop — distinct from a clean
// unsat, which proves the flip infeasible.
func (e *engine) pickNewInput(flip concolic.Flip, bounds map[string]interval.Interval, solver *smt.Solver) (workItem, bool, bool) {
	solver.BeginEpoch() // scope cache-write journaling to this flip
	cons := flip.Constraint()
	inputNames := e.job.Program.Inputs()

	buildItem := func(model expr.Model, p *patch.Patch) workItem {
		in := make(map[string]int64, len(inputNames))
		for _, prm := range inputNames {
			in[prm.Name] = model[prm.Name]
		}
		params := expr.Model{}
		for _, name := range p.Params {
			params[name] = model[name]
		}
		return workItem{
			input:   in,
			patchID: p.ID,
			params:  params,
			score:   flip.Score(),
			bound:   flip.Depth + 1,
		}
	}

	needsPatch := len(flip.HoleHits) > 0
	if !needsPatch || e.opts.DisablePathReduction {
		// No patch constraint applies to the prefix (or the ablation is
		// on): solve the path alone and attach the best-ranked patch.
		model, ok, err := solver.GetModel(cons, bounds)
		if e.noteSolverErr(err) {
			return workItem{}, false, true
		}
		if !ok {
			return workItem{}, false, false
		}
		ranked := e.pool.Ranked()
		if len(ranked) == 0 {
			return workItem{}, false, false
		}
		p := ranked[0]
		params, ok := p.AnyParams()
		if !ok {
			return workItem{}, false, false
		}
		it := buildItem(model, p)
		for k, v := range params {
			it.params[k] = v
		}
		it.patchID = p.ID
		return it, true, false
	}

	if e.opts.Batch && len(e.pool.Ranked()) > 1 {
		return e.pickNewInputBatched(flip, cons, bounds, solver, buildItem)
	}

	unknown := false
	for _, p := range e.pool.Ranked() {
		psi := e.patchFormula(p, flip.HoleHits)
		query := expr.And(cons, psi, p.ConstraintTerm())
		b := e.boundsWithParams(bounds, p)
		model, ok, err := solver.GetModel(query, b)
		if e.noteSolverErr(err) {
			unknown = true // budget on this patch; try the next, remember
			continue
		}
		if ok {
			return buildItem(model, p), true, false
		}
	}
	return workItem{}, false, unknown
}

func (e *engine) patchFormula(p *patch.Patch, hits []concolic.HoleHit) *expr.Term {
	psis := make([]*expr.Term, len(hits))
	for i, h := range hits {
		psis[i] = p.Formula(h.Out, h.Snapshot)
	}
	return expr.And(psis...)
}

func (e *engine) boundsWithParams(bounds map[string]interval.Interval, p *patch.Patch) map[string]interval.Interval {
	b := make(map[string]interval.Interval, len(bounds)+len(p.Params))
	for k, v := range bounds {
		b[k] = v
	}
	for k, v := range p.ParamBounds() {
		b[k] = v
	}
	return b
}

// reduce is Algorithm 2: for every pool patch compatible with the explored
// path, refine its parameter constraint against the specification (when
// the bug location was exercised) and update the ranking.
//
// Patches are independent here — each task reads the shared (phi, psi
// inputs, sigma) and writes only its own patch's Constraint/Score/
// Deletions — so the per-patch work fans out across the workers. Removals
// are collected in per-patch slots and committed by the coordinator in
// pool order, leaving the surviving pool identical for any worker count.
func (e *engine) reduce(exec *concolic.Execution, stats *Stats, validation bool) {
	rc := ReduceContext{
		Phi:        exec.PathConstraint(),
		Sigma:      e.instantiateSpec(exec),
		HoleHits:   exec.HoleHits,
		HitBug:     exec.HitBug(),
		Validation: validation,
	}
	patches := e.pool.Patches
	outs := make([]ReduceOutcome, len(patches))
	if !e.distributeReduce(rc, outs) {
		feas := e.batchFeasibility(rc.Phi, rc.HoleHits, patches)
		e.fanOut(len(patches), func(w *workerCtx, i int) {
			var fv *smt.BatchVerdict
			if feas != nil {
				fv = &feas[i]
			}
			outs[i] = e.reduceOne(rc, patches[i], fv, w.solver)
		})
	}
	// Commit in pool order: patches aliases the pool's backing array and
	// Remove shifts it in place, so collect the doomed IDs before the
	// first removal. Outcomes from shards carry absolute patch state (the
	// replica matched this pool at batch start); outcomes computed locally
	// re-assign values reduceOne already wrote — both paths land on the
	// same pool.
	var doomed []int
	for i, o := range outs {
		e.solverUnknowns.Add(o.Unknowns)
		e.solverPanics.Add(o.Panics)
		if o.Removed {
			e.removals.Add(1)
			doomed = append(doomed, patches[i].ID)
			continue
		}
		if !o.Touched {
			continue
		}
		p := patches[i]
		if o.Refinements > 0 {
			e.refinements.Add(int64(o.Refinements))
		}
		if o.Refined {
			o.Region.Mode = e.opts.SplitMode
			p.Constraint = o.Region
		}
		p.Score = o.Score
		p.Deletions = o.Deletions
	}
	for _, id := range doomed {
		e.pool.Remove(id)
	}
}

// reduceOne is Algorithm 2's per-patch body: the feasibility test, the
// specification-driven refinement, and the ranking update, reported as a
// ReduceOutcome. It mutates p (its own task owns it) but leaves the
// engine's removal/refinement counters to the coordinator's commit loop,
// so the same function serves both the local fan-out and a shard replica
// (which snapshots its own degradation atomics around the call to fill
// the outcome's Unknowns/Panics; on the local path those stay zero and
// the commit loop's additions are no-ops).
func (e *engine) reduceOne(rc ReduceContext, p *patch.Patch, fv *smt.BatchVerdict, solver *smt.Solver) ReduceOutcome {
	var out ReduceOutcome
	solver.BeginEpoch() // scope cache-write journaling to this patch
	psi := e.patchFormula(p, rc.HoleHits)
	if fv != nil {
		if e.noteSolverErr(fv.Err) || fv.Status != smt.Sat {
			return out // cannot reason about ρ on this path
		}
	} else {
		pi := expr.And(rc.Phi, psi, p.ConstraintTerm())
		b := e.boundsWithParams(e.curBounds, p)
		sat, err := solver.IsSat(pi, b)
		if e.noteSolverErr(err) || !sat {
			return out // cannot reason about ρ on this path
		}
	}
	if rc.HitBug {
		ref := &patch.Refiner{Solver: solver, InputBounds: e.curBounds}
		refined, err := ref.Refine(rc.Phi, psi, rc.Sigma, p, p.Constraint)
		if e.noteSolverErr(err) {
			return out // refinement budget: leave the patch untouched
		}
		if refined.IsEmpty() {
			out.Removed = true
			return out
		}
		if refined.Count() != p.Constraint.Count() {
			out.Refinements++
		}
		refined.Mode = e.opts.SplitMode
		p.Constraint = refined
		out.Refined = true
		out.Region = refined
	}
	if !rc.Validation {
		e.updateRanking(p, rc, solver)
	}
	out.Touched = true
	out.Score = p.Score
	out.Deletions = p.Deletions
	return out
}

// instantiateSpec conjoins σ over the symbolic snapshots of every bug-
// location hit. Crashes that bypass the marker (e.g. a crash inside the
// patch expression) contribute an unsatisfiable σ so the offending
// parameters are removed.
func (e *engine) instantiateSpec(exec *concolic.Execution) *expr.Term {
	var parts []*expr.Term
	for _, h := range exec.BugHits {
		parts = append(parts, instantiate(e.job.Spec, h.Snapshot))
	}
	if exec.Crashed() && len(exec.BugHits) == 0 {
		// Crash before/without the marker: every input on this path
		// violates crash-freedom.
		parts = append(parts, expr.False())
	}
	return expr.And(parts...)
}

func instantiate(spec *expr.Term, snapshot map[string]*expr.Term) *expr.Term {
	sub := make(map[string]*expr.Term, len(snapshot))
	for name, val := range snapshot {
		sub[name] = val
	}
	return expr.Subst(spec, sub)
}

// updateRanking implements §3.5.3: compatible patches gain evidence, more
// when the bug location was exercised; functionality-deleting patches
// (tautologies or contradictions under the current parameter constraint)
// are deprioritized rather than removed. With ModelCountRanking the
// evidence is further scaled by the proportion of the partition's inputs
// the patch fires on (the paper's model-counting fine-tuning).
func (e *engine) updateRanking(p *patch.Patch, rc ReduceContext, solver *smt.Solver) {
	inc := 1.0
	if rc.HitBug {
		inc = 3.0
	}
	if e.isDeletionLike(p, solver) {
		p.Deletions++
		inc *= 0.25
	}
	if e.opts.ModelCountRanking && p.Expr.Sort == expr.SortBool && len(rc.HoleHits) > 0 {
		inc *= e.firingDamp(p, rc)
	}
	p.Score += inc
}

// firingDamp estimates the fraction of the partition on which the patch
// guard fires (diverting control flow) and damps the ranking evidence
// toward 0.25 as the fraction approaches 1: a guard that fires everywhere
// behaves like functionality deletion even if it is not a tautology.
func (e *engine) firingDamp(p *patch.Patch, rc ReduceContext) float64 {
	params, ok := p.AnyParams()
	if !ok {
		return 1
	}
	sub := make(map[string]*expr.Term, len(params))
	for name, v := range params {
		sub[name] = expr.Int(v)
	}
	fire := expr.Subst(p.Formula(expr.Bool(true), rc.HoleHits[0].Snapshot), sub)
	frac, err := mc.Fraction(expr.And(rc.Phi, fire), e.mcBounds(rc.HoleHits), mc.Options{Seed: 1, Samples: 400})
	if err != nil {
		return 1
	}
	return 1 - 0.75*frac
}

// mcBounds supplies sampling bounds for the model counter: the inputs'
// exploration bounds plus boolean patch outputs.
func (e *engine) mcBounds(hits []concolic.HoleHit) map[string]interval.Interval {
	b := make(map[string]interval.Interval, len(e.curBounds)+len(hits))
	for k, v := range e.curBounds {
		b[k] = v
	}
	for _, h := range hits {
		b[h.Out.Name] = interval.New(0, 1)
	}
	return b
}

// isDeletionLike checks whether the patch forces its guard to a constant
// for every admissible parameter vector. Concurrent reduce tasks consult
// the memo under delMu; each patch ID is owned by one task per batch, so
// the two solver queries for a given entry never race with its fill.
func (e *engine) isDeletionLike(p *patch.Patch, solver *smt.Solver) bool {
	if p.Expr.Sort != expr.SortBool {
		return false
	}
	if p.Expr.IsConst() {
		return true
	}
	cnt := p.Constraint.Count()
	e.delMu.Lock()
	if e.delCache == nil {
		e.delCache = make(map[int]delEntry)
	}
	ent, ok := e.delCache[p.ID]
	e.delMu.Unlock()
	if ok && ent.count == cnt {
		return ent.val
	}
	b := e.boundsWithParams(e.curBounds, p)
	t := expr.And(p.ConstraintTerm(), expr.Not(p.Expr))
	f := expr.And(p.ConstraintTerm(), p.Expr)
	tautology, err1 := solver.IsSat(t, b)
	contradiction, err2 := solver.IsSat(f, b)
	bad1, bad2 := e.noteSolverErr(err1), e.noteSolverErr(err2)
	val := false
	if !bad1 && !bad2 {
		val = !tautology || !contradiction
	}
	e.delMu.Lock()
	e.delCache[p.ID] = delEntry{count: cnt, val: val}
	e.delMu.Unlock()
	return val
}

// FormatTopPatches renders the top-n ranked patches for reports.
func FormatTopPatches(res *Result, n int) []string {
	out := make([]string, 0, n)
	for i, p := range res.Ranked {
		if i >= n {
			break
		}
		out = append(out, fmt.Sprintf("#%d score=%.2f  %s", i+1, p.Score, p.String()))
	}
	return out
}
