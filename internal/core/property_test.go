package core

import (
	"fmt"
	"math/rand"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

// TestRepairPropertyRandomGuards: end-to-end pipeline property over
// generated subjects. Each subject guards an out-of-bounds write with a
// missing threshold check; the developer patch s ≥ K is always in the
// synthesis space. The repair must (a) keep at least one protective patch
// in the pool, and (b) never keep a parameter vector that crashes on the
// failing input itself.
func TestRepairPropertyRandomGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 6; iter++ {
		size := 4 + rng.Intn(6) // array size 4..9
		off := rng.Intn(3)      // index offset 0..2
		k := int64(size - off)  // crash iff s ≥ k
		src := fmt.Sprintf(`
void main(int s, int n) {
    int buf[%d];
    assume(n >= 0);
    assume(n <= 5);
    if (s >= 0) {
        if (__HOLE__) {
            return;
        }
        __BUG__;
        buf[s + %d] = n;
    }
}`, size, off)
		prog := lang.MustParse(src)
		job := Job{
			Program: prog,
			Spec: expr.And(
				expr.Ge(expr.Add(expr.IntVar("s"), expr.Int(int64(off))), expr.Int(0)),
				expr.Lt(expr.Add(expr.IntVar("s"), expr.Int(int64(off))), expr.Int(int64(size))),
			),
			FailingInputs: []map[string]int64{{"s": k + 1 + int64(rng.Intn(4)), "n": 1}},
			Components: synth.Components{
				Vars:       map[string]lang.Type{"s": lang.TypeInt, "n": lang.TypeInt},
				Params:     []string{"a"},
				ParamRange: interval.New(-12, 12),
				Cmp:        []expr.Op{expr.OpGe, expr.OpGt},
				Bool:       []expr.Op{},
				Arith:      []expr.Op{},
			},
			InputBounds: map[string]interval.Interval{
				"s": interval.New(-30, 30),
				"n": interval.New(0, 5),
			},
			Budget: Budget{MaxIterations: 12, ValidationIterations: 6},
		}
		res, err := Repair(job, Options{})
		if err != nil {
			t.Fatalf("iter %d: Repair: %v", iter, err)
		}
		if res.Pool.Size() == 0 {
			t.Fatalf("iter %d (size=%d off=%d): pool emptied", iter, size, off)
		}
		// (b) every surviving parameter vector must repair the failing
		// input (validation guarantee).
		failing := job.FailingInputs[0]
		for _, p := range res.Pool.Patches {
			checkAllParams(t, job, p, failing, iter)
		}
		// (a) some surviving patch covers the developer guard s ≥ k.
		protective := false
		for _, p := range res.Pool.Patches {
			if p.Expr == expr.Simplify(expr.Ge(expr.IntVar("s"), expr.IntVar("a"))) {
				if p.Constraint.Contains([]int64{k}) {
					protective = true
				}
			}
		}
		if !protective {
			for _, line := range FormatTopPatches(res, 10) {
				t.Log(line)
			}
			t.Fatalf("iter %d (size=%d off=%d): developer guard s >= %d lost", iter, size, off, k)
		}
	}
}

func checkAllParams(t *testing.T, job Job, p *patch.Patch, failing map[string]int64, iter int) {
	t.Helper()
	count := 0
	p.Constraint.Points(func(pt []int64) bool {
		count++
		if count > 64 {
			return false // sample at most 64 vectors
		}
		params := expr.Model{}
		for i, name := range p.Params {
			params[name] = pt[i]
		}
		out := interp.Run(job.Program, failing, interp.Options{Hole: p.Expr, HoleParams: params})
		if out.Crashed() {
			t.Errorf("iter %d: surviving params %v of %s crash on the failing input", iter, params, p)
			return false
		}
		return true
	})
	if len(p.Params) == 0 {
		out := interp.Run(job.Program, failing, interp.Options{Hole: p.Expr})
		if out.Crashed() {
			t.Errorf("iter %d: surviving concrete patch %s crashes on the failing input", iter, p)
		}
	}
}

// TestQueuePolicyAblation: FIFO exploration still reduces the pool, and
// both policies keep the developer patch.
func TestQueuePolicyAblation(t *testing.T) {
	job := divZeroJob()
	ranked, err := Repair(job, Options{Queue: QueueRanked})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Repair(job, Options{Queue: QueueFIFO})
	if err != nil {
		t.Fatal(err)
	}
	if ranked.Stats.PFinal >= ranked.Stats.PInit || fifo.Stats.PFinal >= fifo.Stats.PInit {
		t.Fatalf("no reduction: ranked %+v fifo %+v", ranked.Stats, fifo.Stats)
	}
	t.Logf("ranked: %d→%d hitBug=%d/%d; fifo: %d→%d hitBug=%d/%d",
		ranked.Stats.PInit, ranked.Stats.PFinal, ranked.Stats.BugLocHits, ranked.Stats.InputsGenerated,
		fifo.Stats.PInit, fifo.Stats.PFinal, fifo.Stats.BugLocHits, fifo.Stats.InputsGenerated)
}

// TestPassingInputsWidenExploration: §8 — passing tests seed additional
// partitions, increasing coverage without breaking the repair.
func TestPassingInputsWidenExploration(t *testing.T) {
	job := divZeroJob()
	base, err := Repair(job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	job.PassingInputs = []map[string]int64{{"x": 50, "y": 50}, {"x": -9, "y": 3}}
	withPassing, err := Repair(job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withPassing.Stats.PathsExplored < base.Stats.PathsExplored {
		t.Errorf("passing seeds reduced exploration: %d vs %d",
			withPassing.Stats.PathsExplored, base.Stats.PathsExplored)
	}
	if withPassing.Stats.PFinal > base.Stats.PFinal {
		t.Errorf("passing seeds enlarged the pool: %d vs %d",
			withPassing.Stats.PFinal, base.Stats.PFinal)
	}
	solver := smt.NewSolver(smt.Options{})
	if _, found := CorrectPatchRank(solver, withPassing.Ranked, devPatchDivZero(), job.InputBounds); !found {
		t.Error("correct patch lost with passing seeds")
	}
}
