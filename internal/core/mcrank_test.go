package core

import (
	"testing"

	"cpr/internal/expr"
)

// TestModelCountRankingDampsBroadGuards: with the §3.5.3 fine-tuning
// enabled, a guard firing on (almost) the whole partition accumulates
// less evidence than a narrow one, pushing near-deletion patches down.
func TestModelCountRankingDamps(t *testing.T) {
	job := divZeroJob()
	plain, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	tuned, err := Repair(job, Options{ModelCountRanking: true})
	if err != nil {
		t.Fatalf("Repair (mc): %v", err)
	}
	score := func(res *Result, tpl *expr.Term) (float64, bool) {
		c := expr.Simplify(tpl)
		for _, p := range res.Pool.Patches {
			if p.Expr == c {
				return p.Score, true
			}
		}
		return 0, false
	}
	x, y := expr.IntVar("x"), expr.IntVar("y")
	a, b := expr.IntVar("a"), expr.IntVar("b")
	correct := expr.Or(expr.Eq(x, a), expr.Eq(y, b))
	sPlain, ok1 := score(plain, correct)
	sTuned, ok2 := score(tuned, correct)
	if !ok1 || !ok2 {
		t.Skip("correct template not present in both pools")
	}
	if sTuned <= 0 || sPlain <= 0 {
		t.Fatalf("scores not accumulated: plain=%v tuned=%v", sPlain, sTuned)
	}
	// The narrow correct guard (fires only at x==0 or y==0) should keep
	// most of its evidence under the damping.
	if sTuned < sPlain*0.5 {
		t.Errorf("correct patch over-damped: %v -> %v", sPlain, sTuned)
	}
	// The final reduction must be unaffected (ranking-only change).
	if plain.Stats.PFinal != tuned.Stats.PFinal {
		t.Errorf("model-count ranking changed reduction: %d vs %d",
			plain.Stats.PFinal, tuned.Stats.PFinal)
	}
}
