package core

import (
	"testing"

	"cpr/internal/faultinject"
)

// TestIncrementalRepairDifferential is the tentpole's acceptance contract:
// with SMT.Incremental on, the repair result — pool, constraints, ranking,
// and every headline stat — is identical to scratch mode, at one worker
// and at many. Verdicts are decided on the persistent context but models
// still come from the deterministic scratch path, so this must hold
// exactly.
func TestIncrementalRepairDifferential(t *testing.T) {
	scratch, err := Repair(divZeroJob(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair scratch: %v", err)
	}
	if st := scratch.Stats; st.EncodeCacheHits != 0 || st.ClausesKept != 0 || st.AssumptionCores != 0 {
		t.Fatalf("scratch run reports incremental counters: %+v", st)
	}
	want := fingerprint(scratch)

	for _, n := range []int{1, testWorkers()} {
		opts := Options{Workers: n}
		opts.SMT.Incremental = true
		res, err := Repair(divZeroJob(), opts)
		if err != nil {
			t.Fatalf("Repair incremental workers=%d: %v", n, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("incremental workers=%d diverged from scratch:\n--- want ---\n%s--- got ---\n%s", n, want, got)
		}
		st := res.Stats
		if st.EncodeCacheHits == 0 {
			t.Errorf("workers=%d: no encoding reuse over %d queries", n, st.SolverQueries)
		}
		if st.ClausesKept == 0 && st.ClausesLearned > 0 {
			t.Errorf("workers=%d: learned %d clauses but retained none", n, st.ClausesLearned)
		}
	}
}

// TestIncrementalRepairSurvivesSolverFaults: the faultinject suite's
// guarantee must hold with the persistent context too — injected panics
// mid-run discard at most the context (rebuilt lazily), never the run, and
// are counted.
func TestIncrementalRepairSurvivesSolverFaults(t *testing.T) {
	for _, kind := range []faultinject.Fault{faultinject.SolverPanic, faultinject.SolverTimeout} {
		faultinject.Activate(&faultinject.Plan{SolverEvery: 5, SolverKind: kind})
		opts := Options{Workers: 1}
		opts.SMT.Incremental = true
		res, err := Repair(divZeroJob(), opts)
		faultinject.Deactivate()
		if err != nil {
			t.Fatalf("kind %v: Repair under faults: %v", kind, err)
		}
		if res.Pool == nil || len(res.Ranked) != len(res.Pool.Patches) {
			t.Fatalf("kind %v: faulted run returned an inconsistent pool", kind)
		}
		if res.Stats.SolverUnknowns+res.Stats.SolverPanics == 0 {
			t.Errorf("kind %v: degradation invisible: %+v", kind, res.Stats)
		}
		if kind == faultinject.SolverPanic && res.Stats.SolverPanics == 0 {
			t.Errorf("panic faults not counted: %+v", res.Stats)
		}
	}
}
