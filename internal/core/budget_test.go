package core

import (
	"testing"
	"time"

	"cpr/internal/cancel"
)

func TestBudgetWithDefaults(t *testing.T) {
	b := Budget{}.withDefaults()
	if b.MaxIterations != 100 {
		t.Errorf("MaxIterations default = %d, want 100", b.MaxIterations)
	}
	if b.ValidationIterations != 8 {
		t.Errorf("ValidationIterations default = %d, want 8", b.ValidationIterations)
	}
	if b.MaxDuration != 0 || !b.Deadline.IsZero() {
		t.Errorf("wall-clock budget must stay unbounded by default: %+v", b)
	}
	c := Budget{
		MaxIterations:        3,
		ValidationIterations: 2,
		MaxDuration:          time.Second,
		Deadline:             time.Unix(1, 0),
	}.withDefaults()
	if c.MaxIterations != 3 || c.ValidationIterations != 2 {
		t.Errorf("explicit iteration budget overwritten: %+v", c)
	}
	if c.MaxDuration != time.Second || !c.Deadline.Equal(time.Unix(1, 0)) {
		t.Errorf("explicit wall-clock budget overwritten: %+v", c)
	}
}

// TestRepairMaxDurationTimesOut: with a tiny wall-clock budget the run must
// still return a valid, ranked best-so-far pool — with TimedOut set — and
// must wind down promptly rather than finishing the iteration budget.
func TestRepairMaxDurationTimesOut(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 1 << 20 // would run ~forever without the clock
	job.Budget.MaxDuration = 50 * time.Millisecond
	start := time.Now()
	res, err := Repair(job, Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut not set: %+v", res.Stats)
	}
	// Generous slack for CI: the loop polls every few hundred steps, so the
	// overshoot past the deadline must stay far below the no-deadline runtime
	// (~10s for this subject at full iteration budget).
	if elapsed > 2*time.Second {
		t.Fatalf("run overran its 50ms budget by too much: %v", elapsed)
	}
	if res.Pool == nil || res.Pool.Size() == 0 {
		t.Fatalf("timed-out run lost its pool: %+v", res.Pool)
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatalf("ranking inconsistent with pool: %d vs %d", len(res.Ranked), len(res.Pool.Patches))
	}
}

// TestRepairCancelledBeforeStart: a pre-cancelled token degrades the whole
// run to "return the initial pool": anytime semantics at the extreme.
func TestRepairCancelledBeforeStart(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	res, err := Repair(divZeroJob(), Options{Cancel: tok})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut not set: %+v", res.Stats)
	}
	if res.Pool.Size() == 0 || res.Stats.PathsExplored != 0 {
		t.Fatalf("cancelled run should return the untouched pool: size=%d φE=%d",
			res.Pool.Size(), res.Stats.PathsExplored)
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatalf("ranking inconsistent with pool")
	}
}

// TestRepairDeadlineMidExplore: expire the clock partway through so the
// main loop is entered and then interrupted; the pool must stay intact,
// ranked, and no larger than the validated pool (monotone reduction).
func TestRepairDeadlineMidExplore(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 1 << 20
	job.Budget.Deadline = time.Now().Add(300 * time.Millisecond)
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut not set: %+v", res.Stats)
	}
	if res.Pool.Size() == 0 {
		t.Fatal("mid-explore deadline lost the pool")
	}
	if res.Stats.PFinal > res.Stats.PInit {
		t.Fatalf("pool grew: init=%d final=%d", res.Stats.PInit, res.Stats.PFinal)
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatalf("ranking inconsistent with pool")
	}
}
