package core

import (
	"fmt"

	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
	"cpr/internal/synth"
)

// WorkerEngine is the shard-worker side of distribution: a full engine
// replica (same job, same deterministically re-synthesized pool) that
// executes flip and reduce chunks on request and never owns the frontier.
// The coordinator re-syncs the replica's pool state at every batch, so a
// chunk's outcomes equal what the coordinator's own worker pool would
// compute for the same indices — the distribution determinism contract.
//
// A WorkerEngine is single-goroutine: chunks arrive sequentially over one
// connection, which is what makes the degradation-counter deltas around
// each item exact.
type WorkerEngine struct {
	eng   *engine
	cache *cache.Cache
	fp    uint64
}

// NewWorkerEngine builds a replica engine for the job. It mirrors
// Repair's setup through engine construction — synthesis, pool build,
// split-mode stamping — but runs no exploration itself: no checkpointing,
// no distributor, and a private verdict cache (with invalidation tracking
// on, so withdrawn verdicts can be retracted to peers).
func NewWorkerEngine(job Job, opts Options) (*WorkerEngine, error) {
	opts = opts.withDefaults()
	job.Budget = job.Budget.withDefaults()
	if job.Program == nil || job.Program.HolePos == nil {
		return nil, ErrNoHole
	}
	if job.Spec == nil {
		job.Spec = expr.True()
	}
	// One worker: the shard's parallelism is the shard count, and chunk
	// execution must stay sequential for exact per-item counter deltas.
	opts.Workers = 1
	opts.Checkpoint = CheckpointOptions{}
	opts.NewDistributor = nil
	opts.Cancel = nil
	opts.SMT.Cancel = nil
	own := cache.New(cache.Options{})
	own.TrackInvalidations()
	opts.SMT.Cache = own

	job.Components.Cancel = nil
	templates := synth.Synthesize(job.Components, job.Program.HoleType)
	pool := synth.BuildPool(templates, job.Components)
	for _, p := range pool.Patches {
		p.Constraint.Mode = opts.SplitMode
	}
	eng := &engine{
		job:         job,
		opts:        opts,
		solver:      smt.NewSolver(opts.SMT),
		retrySolver: smt.NewSolver(reducedSMT(opts.SMT)),
		pool:        pool,
		tok:         nil,
	}
	eng.workers = eng.newWorkers(1)
	eng.curBounds = eng.inputBounds()
	return &WorkerEngine{eng: eng, cache: own, fp: fingerprintRun(job, opts)}, nil
}

// Fingerprint is the replica's run fingerprint. The worker refuses chunks
// from a coordinator whose RunFingerprint differs (see RunFingerprint).
//
// Worker-forced fields (Workers, Checkpoint, cancellation) are not part
// of the fingerprint, so a coordinator running 8 local workers still
// matches a replica running 1.
func (we *WorkerEngine) Fingerprint() uint64 { return we.fp }

// Cache is the replica's private verdict cache — the source of the
// knowledge deltas the shard layer exchanges.
func (we *WorkerEngine) Cache() *cache.Cache { return we.cache }

// SolverStats aggregates the replica's solver counters.
func (we *WorkerEngine) SolverStats() smt.Stats {
	var agg smt.Stats
	for _, w := range we.eng.workers {
		agg = agg.Add(w.solver.Stats()).Add(w.retrySolver.Stats())
	}
	return agg
}

// SetBounds installs the batch's input bounds (the coordinator's
// curBounds: phase bounds, or pinned bounds during validation phases).
func (we *WorkerEngine) SetBounds(b map[string]interval.Interval) {
	we.eng.curBounds = b
}

// ApplyPool re-syncs the replica pool to the coordinator's batch-start
// state: the same order-preserving intersect a checkpoint resume uses.
// The listed IDs must be a subsequence of the replica's current pool
// (pools only shrink, in synthesis order); an unknown ID means the
// replica is not a replica of this run and the chunk must not run.
func (we *WorkerEngine) ApplyPool(ps []PatchState) error {
	e := we.eng
	byID := make(map[int]*patch.Patch, len(e.pool.Patches))
	for _, p := range e.pool.Patches {
		byID[p.ID] = p
	}
	kept := make([]*patch.Patch, 0, len(ps))
	for _, s := range ps {
		p, ok := byID[s.ID]
		if !ok {
			return fmt.Errorf("core: pool sync: patch #%d not in replica pool", s.ID)
		}
		p.Score = s.Score
		p.Deletions = s.Deletions
		p.Constraint = s.Region
		p.Constraint.Mode = e.opts.SplitMode
		kept = append(kept, p)
	}
	e.pool.Patches = kept
	return nil
}

// RunFlips executes a flip chunk: pickNewInput per flip under the current
// bounds and pool, with each outcome carrying the exact degradation
// counts its solve produced.
func (we *WorkerEngine) RunFlips(flips []concolic.Flip) []FlipOutcome {
	e := we.eng
	outs := make([]FlipOutcome, len(flips))
	for i := range flips {
		u0, p0 := e.solverUnknowns.Load(), e.solverPanics.Load()
		child, ok, unknown := e.pickNewInput(flips[i], e.curBounds, e.solver)
		o := FlipOutcome{
			OK:       ok,
			Unknown:  unknown,
			Unknowns: e.solverUnknowns.Load() - u0,
			Panics:   e.solverPanics.Load() - p0,
		}
		if ok {
			o.Input = child.input
			o.PatchID = child.patchID
			o.Params = child.params
			o.Score = child.score
			o.Bound = child.bound
		}
		outs[i] = o
	}
	return outs
}

// RunReduce executes a reduce chunk: reduceOne for pool indices [lo, hi)
// under the already-synced pool. With Options.Batch the chunk's
// feasibility tests are grouped exactly like the local engine's — chunk
// boundaries differ between a sharded and a local run, but per-patch
// verdicts are batching-invariant, so outcomes do not.
func (we *WorkerEngine) RunReduce(rc ReduceContext, lo, hi int) []ReduceOutcome {
	e := we.eng
	if lo < 0 || hi > len(e.pool.Patches) || lo > hi {
		return nil
	}
	chunk := e.pool.Patches[lo:hi]
	feas := e.batchFeasibility(rc.Phi, rc.HoleHits, chunk)
	outs := make([]ReduceOutcome, len(chunk))
	for i, p := range chunk {
		u0, p0 := e.solverUnknowns.Load(), e.solverPanics.Load()
		var fv *smt.BatchVerdict
		if feas != nil {
			fv = &feas[i]
		}
		out := e.reduceOne(rc, p, fv, e.solver)
		out.Unknowns = e.solverUnknowns.Load() - u0
		out.Panics = e.solverPanics.Load() - p0
		outs[i] = out
	}
	return outs
}
