package core

import (
	"math/rand"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/patch"
	"cpr/internal/smt"
)

// Covers decides whether an abstract patch covers the developer patch:
// whether some admissible parameter vector A ∈ Tρ makes θρ(·, A)
// semantically equivalent to dev over the input bounds. This is the
// "syntactically or semantically equivalent with the developer patch"
// check behind the tables' Correct? and Rank columns.
//
// The ∃A ∀X alternation is solved CEGIS-style: candidate parameter
// vectors are proposed from Tρ and refuted by counterexample inputs,
// which are accumulated as agreement constraints on A.
func Covers(solver *smt.Solver, p *patch.Patch, dev *expr.Term, inputBounds map[string]interval.Interval, maxIter int) (bool, expr.Model, error) {
	if p.Expr.Sort != dev.Sort {
		return false, nil, nil
	}
	if maxIter == 0 {
		maxIter = 32
	}
	// Fast path for small parameter regions: filter candidate parameter
	// vectors on a deterministic input sample (an equivalent vector agrees
	// everywhere, so sampling never rejects it), then confirm the
	// survivors with a single validity query each.
	const enumLimit = 1024
	if len(p.Params) > 0 && p.Constraint.Count() <= enumLimit {
		return coversByEnumeration(solver, p, dev, inputBounds)
	}
	paramBounds := p.ParamBounds()
	side := []*expr.Term{p.ConstraintTerm()}
	for i := 0; i < maxIter; i++ {
		cand, ok, err := solver.GetModel(expr.And(side...), paramBounds)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, nil // no candidate parameters remain
		}
		params := expr.Model{}
		sub := make(map[string]*expr.Term, len(p.Params))
		for _, name := range p.Params {
			params[name] = cand[name]
			sub[name] = expr.Int(cand[name])
		}
		inst := expr.Subst(p.Expr, sub)
		diff := expr.Ne(inst, dev)
		cex, found, err := solver.GetModel(diff, inputBounds)
		if err != nil {
			return false, nil, err
		}
		if !found {
			return true, params, nil // equivalent for these parameters
		}
		// Require agreement on the counterexample input.
		inputSub := make(map[string]*expr.Term, len(cex))
		for name, v := range cex {
			if _, isParam := params[name]; !isParam {
				inputSub[name] = constOfSort(devVarSort(dev, p.Expr, name), v)
			}
		}
		devAt := expr.Subst(dev, inputSub)
		instAt := expr.Subst(p.Expr, inputSub)
		side = append(side, expr.Eq(instAt, devAt))
	}
	return false, nil, nil // budget exhausted: treat as not covering
}

// coversByEnumeration enumerates the (small) parameter region, filters
// vectors by agreement with dev on a deterministic input sample, and
// confirms each survivor with one validity query.
func coversByEnumeration(solver *smt.Solver, p *patch.Patch, dev *expr.Term, inputBounds map[string]interval.Interval) (bool, expr.Model, error) {
	// Input variables of both expressions, minus the parameters.
	varSet := map[string]expr.Sort{}
	for _, v := range append(expr.Vars(dev), expr.Vars(p.Expr)...) {
		if !p.IsParam(v.Name) {
			varSet[v.Name] = v.Sort
		}
	}
	// Deterministic sample: zeros, small values, bound corners, random.
	rng := rand.New(rand.NewSource(1))
	samples := make([]expr.Model, 0, 64)
	base := []int64{0, 1, -1, 2, -2, 5, -5}
	for _, v := range base {
		m := expr.Model{}
		for name := range varSet {
			m[name] = v
		}
		samples = append(samples, m)
	}
	for i := 0; i < 48; i++ {
		m := expr.Model{}
		for name, sort := range varSet {
			if sort == expr.SortBool {
				m[name] = int64(rng.Intn(2))
				continue
			}
			iv, ok := inputBounds[name]
			if !ok {
				iv = interval.New(-100, 100)
			}
			m[name] = iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
		}
		samples = append(samples, m)
	}

	var found bool
	var foundParams expr.Model
	var solverErr error
	p.Constraint.Points(func(pt []int64) bool {
		params := expr.Model{}
		sub := map[string]*expr.Term{}
		for i, name := range p.Params {
			params[name] = pt[i]
			sub[name] = expr.Int(pt[i])
		}
		inst := expr.Subst(p.Expr, sub)
		for _, m := range samples {
			a, err1 := expr.Eval(inst, m)
			b, err2 := expr.Eval(dev, m)
			if err1 != nil || err2 != nil {
				return true // partial expressions (division): skip sample filter point
			}
			if p.Expr.Sort == expr.SortBool {
				if (a != 0) != (b != 0) {
					return true // disagreement: next parameter vector
				}
			} else if a != b {
				return true
			}
		}
		ok, err := solver.Valid(expr.Eq(inst, dev), inputBounds)
		if err != nil {
			solverErr = err
			return true
		}
		if ok {
			found, foundParams = true, params
			return false
		}
		return true
	})
	if found {
		return true, foundParams, nil
	}
	return false, nil, solverErr
}

func devVarSort(dev, tpl *expr.Term, name string) expr.Sort {
	for _, v := range expr.Vars(dev) {
		if v.Name == name {
			return v.Sort
		}
	}
	for _, v := range expr.Vars(tpl) {
		if v.Name == name {
			return v.Sort
		}
	}
	return expr.SortInt
}

func constOfSort(s expr.Sort, v int64) *expr.Term {
	if s == expr.SortBool {
		return expr.Bool(v != 0)
	}
	return expr.Int(v)
}

// CorrectPatchRank returns the 1-based rank of the first ranked patch that
// covers the developer patch, or found=false when none does.
func CorrectPatchRank(solver *smt.Solver, ranked []*patch.Patch, dev *expr.Term, inputBounds map[string]interval.Interval) (int, bool) {
	for i, p := range ranked {
		ok, _, err := Covers(solver, p, dev, inputBounds, 0)
		if err != nil {
			continue
		}
		if ok {
			return i + 1, true
		}
	}
	return 0, false
}

// PoolContainsCorrect reports whether any pool patch covers the developer
// patch (regardless of rank).
func PoolContainsCorrect(solver *smt.Solver, pool *patch.Pool, dev *expr.Term, inputBounds map[string]interval.Interval) bool {
	_, ok := CorrectPatchRank(solver, pool.Ranked(), dev, inputBounds)
	return ok
}
