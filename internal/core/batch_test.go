package core

import (
	"testing"

	"cpr/internal/faultinject"
)

// TestBatchRepairDifferential is the batching acceptance contract: with
// Options.Batch on, the repair result — pool, constraints, ranking, and
// every headline stat — is identical to the unbatched run, at one worker
// and at many, with the scratch and the incremental solver alike. Group
// queries only change how verdicts are computed, never what they are, and
// models still come from the exact unbatched query.
func TestBatchRepairDifferential(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		base := Options{Workers: 1}
		base.SMT.Incremental = incremental
		ref, err := Repair(divZeroJob(), base)
		if err != nil {
			t.Fatalf("Repair unbatched (incremental=%v): %v", incremental, err)
		}
		if ref.Stats.BatchQueries != 0 {
			t.Fatalf("unbatched run reports batch counters: %+v", ref.Stats)
		}
		want := fingerprint(ref)

		for _, n := range []int{1, testWorkers()} {
			opts := Options{Workers: n, Batch: true}
			opts.SMT.Incremental = incremental
			res, err := Repair(divZeroJob(), opts)
			if err != nil {
				t.Fatalf("Repair batched workers=%d incremental=%v: %v", n, incremental, err)
			}
			if got := fingerprint(res); got != want {
				t.Fatalf("batched workers=%d incremental=%v diverged:\n--- want ---\n%s--- got ---\n%s", n, incremental, want, got)
			}
			st := res.Stats
			if st.BatchQueries == 0 {
				t.Errorf("workers=%d incremental=%v: batching on but no group queries issued", n, incremental)
			}
			if st.BatchQueries >= st.SolverQueries {
				t.Errorf("workers=%d incremental=%v: %d group queries out of %d total — batching added work without absorbing any", n, incremental, st.BatchQueries, st.SolverQueries)
			}
			t.Logf("workers=%d incremental=%v: %d group queries, %d items answered by groups, %d bisections (total queries %d, unbatched %d)",
				n, incremental, st.BatchQueries, st.BatchItems, st.BatchBisections, st.SolverQueries, ref.Stats.SolverQueries)
		}
	}
}

// TestBatchBisectionExercised: the divZero pool mixes feasible and
// infeasible patches on most paths, so group queries must hit the
// mixed-verdict path. With the incremental solver the assumption core (or
// the common-prefix check) resolves most splits, but across a whole run
// at least one group must have taken the core-attribution or bisection
// route — otherwise the differential above never covered mixed groups.
func TestBatchBisectionExercised(t *testing.T) {
	opts := Options{Workers: 1, Batch: true}
	opts.SMT.Incremental = true
	res, err := Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	st := res.Stats
	if st.BatchQueries == 0 {
		t.Fatalf("no group queries: %+v", st)
	}
	// A run where every group came back uniform would answer exactly
	// ceil(items/chunk) queries; mixed groups force extra queries
	// (narrowed re-batches, common-prefix probes, bisection halves).
	if st.BatchBisections == 0 && st.BatchItems == 0 {
		t.Errorf("no group ever attributed a verdict (items=0, bisections=0): %+v", st)
	}
	t.Logf("batch stats: queries=%d items=%d bisections=%d", st.BatchQueries, st.BatchItems, st.BatchBisections)
}

// TestBatchRepairSurvivesSolverFaults: injected solver faults mid-run must
// degrade batched runs the same way they degrade unbatched ones — a query
// that times out or panics (group queries included) falls back to
// individual queries or a skipped patch, never an aborted run or an
// inconsistent pool.
func TestBatchRepairSurvivesSolverFaults(t *testing.T) {
	for _, kind := range []faultinject.Fault{faultinject.SolverPanic, faultinject.SolverTimeout} {
		faultinject.Activate(&faultinject.Plan{SolverEvery: 5, SolverKind: kind})
		opts := Options{Workers: 1, Batch: true}
		opts.SMT.Incremental = true
		res, err := Repair(divZeroJob(), opts)
		faultinject.Deactivate()
		if err != nil {
			t.Fatalf("kind %v: Repair under faults: %v", kind, err)
		}
		if res.Pool == nil || len(res.Ranked) != len(res.Pool.Patches) {
			t.Fatalf("kind %v: faulted run returned an inconsistent pool", kind)
		}
		if res.Stats.SolverUnknowns+res.Stats.SolverPanics == 0 {
			t.Errorf("kind %v: degradation invisible: %+v", kind, res.Stats)
		}
	}
}

// TestBatchGuardRejectedGroupVerdict: a lying solver corrupts group-query
// verdicts too — a spurious unsat on a group would wrongly kill every
// member, and a truncated core would misattribute blame. Under a paranoid
// guard every lie is cross-checked and rejected, so the batched run's
// repair result must equal the clean unbatched run's exactly, and the
// rejections must be visible in the health counters.
func TestBatchGuardRejectedGroupVerdict(t *testing.T) {
	ref, err := Repair(divZeroJob(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair clean: %v", err)
	}
	want := fingerprint(ref)

	for _, kind := range []faultinject.Fault{faultinject.SolverSpuriousUnsat, faultinject.SolverTruncateCore} {
		faultinject.Activate(&faultinject.Plan{LieEvery: 7, LieKind: kind})
		opts := Options{Workers: 1, Batch: true}
		opts.SMT.Incremental = true
		opts.SMT.Paranoid = true
		res, err := Repair(divZeroJob(), opts)
		faultinject.Deactivate()
		if err != nil {
			t.Fatalf("kind %v: Repair under lies: %v", kind, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("kind %v: lied-to batched run diverged from clean run:\n--- want ---\n%s--- got ---\n%s", kind, want, got)
		}
		st := res.Stats
		if st.ValidationFailures == 0 {
			t.Errorf("kind %v: no validation failures recorded under a lying solver: %+v", kind, st)
		}
		if st.BatchQueries == 0 {
			t.Errorf("kind %v: batching inactive during the lie run", kind)
		}
	}
}
