package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/journal"
	"cpr/internal/lang"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
	"cpr/internal/synth"
)

// CheckpointOptions makes a repair run resumable: with Dir set, the engine
// commits a snapshot of its full state (pool, frontier, seen set, stats,
// budget accounting, verdict cache) every Interval generation barriers,
// and with Resume it restores the latest intact snapshot before starting.
// A resumed run replays the uninterrupted run exactly: the snapshot points
// are deterministic generation barriers — the top of an explore-loop
// iteration, where all worker fan-out has merged — so Workers=1 and
// Workers=N resume to the identical result.
type CheckpointOptions struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Interval is the number of generation barriers between snapshots
	// (default 8).
	Interval int
	// Resume loads the latest intact snapshot in Dir before starting.
	// A missing, corrupt, or mismatched snapshot degrades to a fresh
	// start with a warning — never an error or a partial load.
	Resume bool
	// Keep is the number of snapshot files retained (default 2: the
	// newest plus one fallback in case the newest is damaged).
	Keep int
	// Warn receives non-fatal checkpoint diagnostics (failed writes,
	// rejected snapshots, fresh-start fallbacks). Nil discards them.
	Warn func(msg string)
}

func (o CheckpointOptions) enabled() bool { return o.Dir != "" }

func (o CheckpointOptions) withDefaults() CheckpointOptions {
	if o.Interval <= 0 {
		o.Interval = 8
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	return o
}

func (o CheckpointOptions) warnf(format string, args ...any) {
	if o.Warn != nil {
		o.Warn(fmt.Sprintf(format, args...))
	}
}

// coreSnapVersion is the schema version of the engine-state payload inside
// a snapshot container; bump on any encoding change.
const coreSnapVersion = 1

// exploreState is one explore phase's resumable loop state: the frontier,
// the explored-prefix set, and the iteration cursor. A zero value starts
// the phase fresh (explore seeds it); a restored value continues it.
type exploreState struct {
	queue []workItem
	seen  map[uint64]bool
	iter  int
	// spill holds the frontier's cold tail when the memory governor's high
	// rung has moved it to disk (spill.go). Never part of a snapshot: the
	// checkpointer reloads everything before encoding, so queue is always
	// the full logical frontier on disk.
	spill *frontierSpill
}

// checkpointer drives periodic snapshot writes for one Repair call.
type checkpointer struct {
	opts     CheckpointOptions
	fp       uint64
	eng      *engine
	runStats *Stats
	// phase indexes the explore phase in progress: 0..F−1 are the
	// per-failing-input validation phases, F is the main loop.
	phase int
	// barrier counts generation barriers across all phases; snapshots are
	// written when it crosses a multiple of Interval and named by it.
	barrier uint64
	// start/elapsedBase re-base budget accounting: elapsed wall time at
	// any barrier is elapsedBase (from a restored snapshot) plus time
	// since this process's Repair began.
	start       time.Time
	elapsedBase time.Duration
	// body/framed are scratch buffers reused across snapshot writes, so
	// steady-state encoding does not regrow two payload-sized buffers at
	// every checkpoint.
	body   journal.Encoder
	framed journal.Encoder
}

// atBarrier is called at the top of every explore-loop iteration (after
// the expiry check): the deterministic point where all fan-out from the
// previous iteration has merged and the engine state is identical for
// every worker count. It writes a due checkpoint, then gives fault
// injection its chance to kill the process — in that order, so a crash at
// barrier N never outruns the snapshot for barrier N.
func (e *engine) atBarrier(st *exploreState, phaseStats *Stats) {
	if ck := e.ck; ck != nil {
		ck.barrier++
		if ck.barrier%uint64(ck.opts.Interval) == 0 {
			ck.write(st, phaseStats)
		}
	}
	faultinject.CrashPoint()
	// Memory governance last: a crash injected at this barrier must replay
	// from the snapshot just written, and the governor's actions (shrink,
	// retire, spill) are all result-neutral, so their position after the
	// snapshot cannot change what a resumed run computes.
	e.governAtBarrier(st)
}

func (ck *checkpointer) write(st *exploreState, phaseStats *Stats) {
	// Snapshots carry the full logical frontier: pull any spilled tail
	// back first (it re-spills at the next high-pressure poll if needed).
	ck.eng.reloadAllSpilled(st)
	elapsed := ck.elapsedBase + time.Since(ck.start)
	payload := ck.encodeSnapshot(st, phaseStats, elapsed)
	if err := journal.WriteSnapshot(ck.opts.Dir, ck.barrier, payload); err != nil {
		ck.opts.warnf("checkpoint: write at barrier %d failed: %v", ck.barrier, err)
		return
	}
	if err := journal.Prune(ck.opts.Dir, ck.opts.Keep); err != nil {
		ck.opts.warnf("checkpoint: prune failed: %v", err)
	}
}

// fingerprintRun hashes everything that determines the run's trajectory:
// the program, spec, inputs, synthesis components, iteration budgets, and
// the engine options that alter exploration. Wall-clock budgets, worker
// count, and solver-internals options are excluded — changing those
// between crash and resume is legal and does not change the result.
func fingerprintRun(job Job, opts Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "job:%x|", JobFingerprint(job))
	fmt.Fprintf(h, "opts:%v:%v:%v:%v:%v:%v", opts.DisablePathReduction, opts.SplitMode,
		opts.MaxQueue, opts.MaxStepsPerRun, opts.ModelCountRanking, opts.Queue)
	return h.Sum64()
}

// JobFingerprint hashes the trajectory-determining parts of a job (the
// program, spec, inputs, bounds, iteration budgets, and synthesis
// components). Engines combine it with a hash of their own options to
// recognize whether a snapshot belongs to the run being started; the
// CEGIS baseline (internal/cegis) shares this job half.
func JobFingerprint(job Job) uint64 {
	h := fnv.New64a()
	w := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	w(lang.Format(job.Program, "__HOLE__"))
	w(fmt.Sprintf("spec:%x", job.Spec.Hash()))
	for _, in := range job.FailingInputs {
		w("fail:" + inputString(in))
	}
	for _, in := range job.PassingInputs {
		w("pass:" + inputString(in))
	}
	names := make([]string, 0, len(job.InputBounds))
	for n := range job.InputBounds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w(fmt.Sprintf("bound:%s:%v", n, job.InputBounds[n]))
	}
	w(fmt.Sprintf("iters:%d:%d", job.Budget.MaxIterations, job.Budget.ValidationIterations))
	w(componentsString(job.Components))
	return h.Sum64()
}

func inputString(in map[string]int64) string {
	names := make([]string, 0, len(in))
	for n := range in {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for _, n := range names {
		s += fmt.Sprintf("%s=%d,", n, in[n])
	}
	return s
}

func componentsString(c synth.Components) string {
	varNames := make([]string, 0, len(c.Vars))
	for n := range c.Vars {
		varNames = append(varNames, n)
	}
	sort.Strings(varNames)
	s := "comp:"
	for _, n := range varNames {
		s += fmt.Sprintf("%s:%v,", n, c.Vars[n])
	}
	return s + fmt.Sprintf("|%v|%v|%v|%v|%v|%v|%d|%v|%v",
		c.Consts, c.Params, c.ParamRange, c.Arith, c.Cmp, c.Bool,
		c.MaxTemplates, c.SuppressDeletion, c.ExtraTemplates)
}

// encodeSnapshot serializes the full engine state at a barrier. The
// payload opens with the shared term table (every *expr.Term the rest of
// the payload references, encoded once), then the engine state proper.
func (ck *checkpointer) encodeSnapshot(st *exploreState, phaseStats *Stats, elapsed time.Duration) []byte {
	e := ck.eng
	te := journal.NewTermEncoder()
	ck.body.Reset()
	m := &ck.body

	m.U64(coreSnapVersion)
	m.U64(ck.fp)
	m.U64(ck.barrier)
	m.Dur(elapsed)
	m.Int(ck.phase)

	encodeStats(m, ck.runStats)
	hasPartial := phaseStats != ck.runStats
	m.Bool(hasPartial)
	if hasPartial {
		encodeStats(m, phaseStats)
	}

	m.Int(e.seq)
	m.I64(e.refinements.Load())
	m.I64(e.removals.Load())
	m.I64(e.solverUnknowns.Load())
	m.I64(e.solverPanics.Load())
	m.I64(e.execPanics.Load())
	m.I64(e.flipsRequeued.Load())
	m.I64(e.flipsDropped.Load())

	// Solver-stats aggregate at the barrier: prior-life baseline plus every
	// worker's counters so far. At a barrier no task is in flight, so the
	// per-worker reads are a consistent cut.
	agg := e.baseAgg
	for _, w := range e.workers {
		agg = agg.Add(w.solver.Stats()).Add(w.retrySolver.Stats())
	}
	encodeSolverStats(m, agg)
	// Per-solver cross-check sampling cursors, in worker order, so the
	// resumed run's validation sampling continues the killed run's schedule.
	m.U64(uint64(2 * len(e.workers)))
	for _, w := range e.workers {
		m.U64(w.solver.CrossCheckCursor())
		m.U64(w.retrySolver.CrossCheckCursor())
	}
	cacheNow := e.opts.SMT.Cache.Stats()
	m.U64(e.baseCacheEvict + (cacheNow.Evictions - e.cacheStart.Evictions))
	m.U64(e.baseCacheSub + (cacheNow.Subsumed - e.cacheStart.Subsumed))

	// Patch pool: identity, ranking evidence, and parameter region per
	// surviving patch. Templates are not serialized — synthesis is
	// deterministic, so resume re-derives them and intersects by ID.
	m.U64(uint64(len(e.pool.Patches)))
	for _, p := range e.pool.Patches {
		m.Int(p.ID)
		m.F64(p.Score)
		m.Int(p.Deletions)
		encodeRegion(m, p.Constraint)
	}

	// Explored path prefixes, sorted for a canonical encoding.
	keys := make([]uint64, 0, len(st.seen))
	for k := range st.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	m.U64(uint64(len(keys)))
	for _, k := range keys {
		m.U64(k)
	}
	m.Int(st.iter)

	// Deletion-likeness memo.
	e.delMu.Lock()
	ids := make([]int, 0, len(e.delCache))
	for id := range e.delCache {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	m.U64(uint64(len(ids)))
	for _, id := range ids {
		ent := e.delCache[id]
		m.Int(id)
		m.I64(ent.count)
		m.Bool(ent.val)
	}
	e.delMu.Unlock()

	// The frontier, in queue order (order is immaterial to correctness —
	// popping is by score/seq — but preserving it keeps the resumed run's
	// in-memory state literally identical).
	m.U64(uint64(len(st.queue)))
	for _, it := range st.queue {
		encodeItem(m, te, it)
	}

	// Verdict cache, when this run owns it (a caller-shared cache is the
	// caller's to persist).
	m.Bool(e.ownCache)
	if e.ownCache {
		encodeCacheExport(m, te, e.opts.SMT.Cache.Export())
	}

	ck.framed.Reset()
	ck.framed.Raw(te.Table())
	ck.framed.Append(m.Bytes())
	return ck.framed.Bytes()
}

// resumeState is a decoded snapshot, pending application to a fresh engine.
type resumeState struct {
	barrier     uint64
	elapsed     time.Duration
	phase       int
	base        Stats
	partial     Stats
	hasPartial  bool
	seq         int
	counters    [7]int64
	solverAgg   smt.Stats
	cursors     []uint64
	cacheEvict  uint64
	cacheSub    uint64
	pool        []patchState
	seen        []uint64
	iter        int
	del         []delMemoState
	queue       []workItem
	hasCache    bool
	cacheExport cache.Export
}

type patchState struct {
	id        int
	score     float64
	deletions int
	region    interval.Region
}

type delMemoState struct {
	id    int
	count int64
	val   bool
}

// st returns the explore-loop state the snapshot was taken at.
func (rs *resumeState) st() *exploreState {
	seen := make(map[uint64]bool, len(rs.seen))
	for _, k := range rs.seen {
		seen[k] = true
	}
	return &exploreState{queue: rs.queue, seen: seen, iter: rs.iter}
}

// loadResume finds and decodes the latest usable snapshot, or returns nil
// (with a warning) when the run must start fresh: no snapshot, corrupt or
// version-mismatched artifacts, or a snapshot from a different job.
func loadResume(opts Options, fp uint64) *resumeState {
	co := opts.Checkpoint
	snap, err := journal.LoadLatest(co.Dir)
	if err != nil {
		if !errors.Is(err, journal.ErrNoSnapshot) || co.Warn != nil {
			co.warnf("checkpoint: resume unavailable, starting fresh: %v", err)
		}
		return nil
	}
	rs, err := decodeSnapshot(snap.Payload)
	if err != nil {
		co.warnf("checkpoint: snapshot at barrier %d rejected, starting fresh: %v", snap.Barrier, err)
		return nil
	}
	if rs.barrier != snap.Barrier {
		co.warnf("checkpoint: snapshot barrier mismatch (%d in payload, %d in container), starting fresh", rs.barrier, snap.Barrier)
		return nil
	}
	if fp != 0 && decodedFP(snap.Payload) != fp {
		co.warnf("checkpoint: snapshot belongs to a different job or configuration, starting fresh")
		return nil
	}
	return rs
}

// decodedFP re-reads just the fingerprint from a payload that decodeSnapshot
// already validated.
func decodedFP(payload []byte) uint64 {
	d := journal.NewDecoder(payload)
	d.Raw() // term table
	d.U64() // version
	return d.U64()
}

func decodeSnapshot(payload []byte) (*resumeState, error) {
	d := journal.NewDecoder(payload)
	td, err := journal.DecodeTermTable(journal.NewDecoder(d.Raw()))
	if err != nil {
		return nil, err
	}
	if v := d.U64(); d.Err() == nil && v != coreSnapVersion {
		return nil, fmt.Errorf("%w: engine snapshot version %d, want %d", journal.ErrVersion, v, coreSnapVersion)
	}
	rs := &resumeState{}
	d.U64() // fingerprint, checked by the caller against the live job
	rs.barrier = d.U64()
	rs.elapsed = d.Dur()
	rs.phase = d.Int()

	decodeStats(d, &rs.base)
	rs.hasPartial = d.Bool()
	if rs.hasPartial {
		decodeStats(d, &rs.partial)
	}

	rs.seq = d.Int()
	for i := range rs.counters {
		rs.counters[i] = d.I64()
	}
	decodeSolverStats(d, &rs.solverAgg)
	nc := d.U64()
	if err := lenCheck(d, nc, "cross-check cursors"); err != nil {
		return nil, err
	}
	rs.cursors = make([]uint64, nc)
	for i := range rs.cursors {
		rs.cursors[i] = d.U64()
	}
	rs.cacheEvict = d.U64()
	rs.cacheSub = d.U64()

	np := d.U64()
	if err := lenCheck(d, np, "pool"); err != nil {
		return nil, err
	}
	rs.pool = make([]patchState, np)
	for i := range rs.pool {
		rs.pool[i].id = d.Int()
		rs.pool[i].score = d.F64()
		rs.pool[i].deletions = d.Int()
		r, err := decodeRegion(d)
		if err != nil {
			return nil, err
		}
		rs.pool[i].region = r
	}

	ns := d.U64()
	if err := lenCheck(d, ns, "seen set"); err != nil {
		return nil, err
	}
	rs.seen = make([]uint64, ns)
	for i := range rs.seen {
		rs.seen[i] = d.U64()
	}
	rs.iter = d.Int()

	nd := d.U64()
	if err := lenCheck(d, nd, "deletion memo"); err != nil {
		return nil, err
	}
	rs.del = make([]delMemoState, nd)
	for i := range rs.del {
		rs.del[i] = delMemoState{id: d.Int(), count: d.I64(), val: d.Bool()}
	}

	nq := d.U64()
	if err := lenCheck(d, nq, "queue"); err != nil {
		return nil, err
	}
	rs.queue = make([]workItem, nq)
	for i := range rs.queue {
		it, err := decodeItem(d, td)
		if err != nil {
			return nil, err
		}
		rs.queue[i] = it
	}

	rs.hasCache = d.Bool()
	if rs.hasCache {
		ex, err := decodeCacheExport(d, td)
		if err != nil {
			return nil, err
		}
		rs.cacheExport = ex
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

// lenCheck rejects counts that cannot fit in the remaining payload — a
// corrupt length must not drive a huge allocation.
func lenCheck(d *journal.Decoder, n uint64, what string) error {
	if err := d.Err(); err != nil {
		return err
	}
	if n > uint64(len(d.Rest())) {
		return fmt.Errorf("%w: %s count %d exceeds remaining payload", journal.ErrCorrupt, what, n)
	}
	return nil
}

// apply restores the snapshot into a freshly constructed engine whose pool
// was just re-synthesized. The pool intersect keeps the snapshot's patches
// in snapshot order (a subsequence of synthesis order, since removal is
// order-preserving) with their refined regions and ranking evidence.
func (rs *resumeState) apply(e *engine, stats *Stats, ck *checkpointer) {
	byID := make(map[int]*patch.Patch, len(e.pool.Patches))
	for _, p := range e.pool.Patches {
		byID[p.ID] = p
	}
	kept := make([]*patch.Patch, 0, len(rs.pool))
	for _, ps := range rs.pool {
		p, ok := byID[ps.id]
		if !ok {
			// Unreachable when the fingerprint matched (synthesis is
			// deterministic); degrade by dropping rather than corrupting.
			ck.opts.warnf("checkpoint: snapshot patch #%d not in re-synthesized pool, dropped", ps.id)
			continue
		}
		p.Score = ps.score
		p.Deletions = ps.deletions
		p.Constraint = ps.region
		kept = append(kept, p)
	}
	e.pool.Patches = kept

	*stats = rs.base
	e.seq = rs.seq
	e.refinements.Store(rs.counters[0])
	e.removals.Store(rs.counters[1])
	e.solverUnknowns.Store(rs.counters[2])
	e.solverPanics.Store(rs.counters[3])
	e.execPanics.Store(rs.counters[4])
	e.flipsRequeued.Store(rs.counters[5])
	e.flipsDropped.Store(rs.counters[6])
	e.baseAgg = rs.solverAgg
	e.baseCacheEvict = rs.cacheEvict
	e.baseCacheSub = rs.cacheSub
	// Restore per-solver cross-check sampling cursors in worker order. A
	// resumed run with fewer workers restores a prefix; extra workers keep
	// fresh cursors (worker-count changes only claim fingerprint-level
	// equivalence, not counter-level — see parallel_test.go).
	for i, w := range e.workers {
		if 2*i+1 >= len(rs.cursors) {
			break
		}
		w.solver.SetCrossCheckCursor(rs.cursors[2*i])
		w.retrySolver.SetCrossCheckCursor(rs.cursors[2*i+1])
	}
	if len(rs.del) > 0 {
		e.delCache = make(map[int]delEntry, len(rs.del))
		for _, ent := range rs.del {
			e.delCache[ent.id] = delEntry{count: ent.count, val: ent.val}
		}
	}
	ck.barrier = rs.barrier
	ck.elapsedBase = rs.elapsed
}

// --- field-level codecs ---

func encodeStats(m *journal.Encoder, s *Stats) {
	m.I64(s.PInit)
	m.I64(s.PFinal)
	m.Int(s.PoolInit)
	m.Int(s.PoolFinal)
	m.Int(s.PathsExplored)
	m.Int(s.PathsSkipped)
	m.Int(s.InputsGenerated)
	m.Int(s.PatchLocHits)
	m.Int(s.BugLocHits)
	m.Int(s.Refinements)
	m.Int(s.Removals)
	m.Bool(s.TimedOut)
	m.Int(s.SolverUnknowns)
	m.Int(s.SolverPanics)
	m.Int(s.ExecPanics)
	m.Int(s.FlipsRequeued)
	m.Int(s.FlipsDropped)
	m.Int(s.Workers)
	m.U64(s.SolverQueries)
	m.U64(s.CacheHits)
	m.U64(s.CacheMisses)
	m.U64(s.CacheEvictions)
	m.U64(s.CacheSubsumed)
	m.U64(s.EncodeCacheHits)
	m.U64(s.EncodeCacheMisses)
	m.U64(s.ClausesLearned)
	m.U64(s.ClausesKept)
	m.U64(s.ClausesDeleted)
	m.U64(s.AssumptionCores)
	m.U64(s.AssumptionCoreLits)
	m.U64(s.Validations)
	m.U64(s.ValidationFailures)
	m.U64(s.Quarantines)
	m.U64(s.FallbackSolves)
	m.U64(s.RebuildRetries)
	m.U64(s.BreakerTrips)
}

func decodeStats(d *journal.Decoder, s *Stats) {
	s.PInit = d.I64()
	s.PFinal = d.I64()
	s.PoolInit = d.Int()
	s.PoolFinal = d.Int()
	s.PathsExplored = d.Int()
	s.PathsSkipped = d.Int()
	s.InputsGenerated = d.Int()
	s.PatchLocHits = d.Int()
	s.BugLocHits = d.Int()
	s.Refinements = d.Int()
	s.Removals = d.Int()
	s.TimedOut = d.Bool()
	s.SolverUnknowns = d.Int()
	s.SolverPanics = d.Int()
	s.ExecPanics = d.Int()
	s.FlipsRequeued = d.Int()
	s.FlipsDropped = d.Int()
	s.Workers = d.Int()
	s.SolverQueries = d.U64()
	s.CacheHits = d.U64()
	s.CacheMisses = d.U64()
	s.CacheEvictions = d.U64()
	s.CacheSubsumed = d.U64()
	s.EncodeCacheHits = d.U64()
	s.EncodeCacheMisses = d.U64()
	s.ClausesLearned = d.U64()
	s.ClausesKept = d.U64()
	s.ClausesDeleted = d.U64()
	s.AssumptionCores = d.U64()
	s.AssumptionCoreLits = d.U64()
	s.Validations = d.U64()
	s.ValidationFailures = d.U64()
	s.Quarantines = d.U64()
	s.FallbackSolves = d.U64()
	s.RebuildRetries = d.U64()
	s.BreakerTrips = d.U64()
}

func encodeSolverStats(m *journal.Encoder, s smt.Stats) {
	m.U64(s.Queries)
	m.U64(s.TheoryRounds)
	m.U64(s.SatAnswers)
	m.U64(s.UnsatAnswers)
	m.U64(s.Unknowns)
	m.U64(s.Panics)
	m.U64(s.CacheHits)
	m.U64(s.CacheMisses)
	m.U64(s.EncodeCacheHits)
	m.U64(s.EncodeCacheMisses)
	m.U64(s.ClausesLearned)
	m.U64(s.ClausesKept)
	m.U64(s.ClausesDeleted)
	m.U64(s.AssumptionCores)
	m.U64(s.AssumptionCoreLits)
	m.U64(s.Validations)
	m.U64(s.ValidationFailures)
	m.U64(s.Quarantines)
	m.U64(s.FallbackSolves)
	m.U64(s.RebuildRetries)
	m.U64(s.BreakerTrips)
}

func decodeSolverStats(d *journal.Decoder, s *smt.Stats) {
	s.Queries = d.U64()
	s.TheoryRounds = d.U64()
	s.SatAnswers = d.U64()
	s.UnsatAnswers = d.U64()
	s.Unknowns = d.U64()
	s.Panics = d.U64()
	s.CacheHits = d.U64()
	s.CacheMisses = d.U64()
	s.EncodeCacheHits = d.U64()
	s.EncodeCacheMisses = d.U64()
	s.ClausesLearned = d.U64()
	s.ClausesKept = d.U64()
	s.ClausesDeleted = d.U64()
	s.AssumptionCores = d.U64()
	s.AssumptionCoreLits = d.U64()
	s.Validations = d.U64()
	s.ValidationFailures = d.U64()
	s.Quarantines = d.U64()
	s.FallbackSolves = d.U64()
	s.RebuildRetries = d.U64()
	s.BreakerTrips = d.U64()
}

func encodeRegion(m *journal.Encoder, r interval.Region) {
	m.Int(r.Dim)
	m.U64(uint64(r.Mode))
	m.U64(uint64(len(r.Boxes)))
	for _, b := range r.Boxes {
		for _, iv := range b {
			m.I64(iv.Lo)
			m.I64(iv.Hi)
		}
	}
}

func decodeRegion(d *journal.Decoder) (interval.Region, error) {
	r := interval.Region{Dim: d.Int()}
	r.Mode = interval.SplitMode(d.U64())
	nb := d.U64()
	if err := lenCheck(d, nb, "region boxes"); err != nil {
		return r, err
	}
	if r.Dim < 0 || r.Dim > 1<<16 {
		return r, fmt.Errorf("%w: region dimension %d", journal.ErrCorrupt, r.Dim)
	}
	r.Boxes = make([]interval.Box, nb)
	for i := range r.Boxes {
		b := make(interval.Box, r.Dim)
		for j := range b {
			b[j] = interval.Interval{Lo: d.I64(), Hi: d.I64()}
		}
		r.Boxes[i] = b
	}
	return r, d.Err()
}

// encodeI64Map writes a string→int64 map with a nil flag (nil and empty
// maps restore distinctly) in sorted key order.
func encodeI64Map(m *journal.Encoder, mp map[string]int64) {
	m.Bool(mp != nil)
	if mp == nil {
		return
	}
	names := make([]string, 0, len(mp))
	for n := range mp {
		names = append(names, n)
	}
	sort.Strings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.I64(mp[n])
	}
}

func decodeI64Map(d *journal.Decoder) (map[string]int64, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	n := d.U64()
	if err := lenCheck(d, n, "map"); err != nil {
		return nil, err
	}
	mp := make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		name := d.Str()
		mp[name] = d.I64()
	}
	return mp, d.Err()
}

func encodeItem(m *journal.Encoder, te *journal.TermEncoder, it workItem) {
	encodeI64Map(m, it.input)
	m.Int(it.patchID)
	encodeI64Map(m, it.params)
	m.Int(it.score)
	m.Int(it.bound)
	m.Int(it.seq)
	m.Bool(it.seed)
	m.Bool(it.retry)
	m.Bool(it.flip != nil)
	if it.flip != nil {
		encodeFlip(m, te, it.flip)
	}
}

func decodeItem(d *journal.Decoder, td *journal.TermDecoder) (workItem, error) {
	var it workItem
	input, err := decodeI64Map(d)
	if err != nil {
		return it, err
	}
	it.input = input
	it.patchID = d.Int()
	params, err := decodeI64Map(d)
	if err != nil {
		return it, err
	}
	if params != nil {
		it.params = expr.Model(params)
	}
	it.score = d.Int()
	it.bound = d.Int()
	it.seq = d.Int()
	it.seed = d.Bool()
	it.retry = d.Bool()
	if d.Bool() {
		f, err := decodeFlip(d, td)
		if err != nil {
			return it, err
		}
		it.flip = f
	}
	return it, d.Err()
}

func encodeFlip(m *journal.Encoder, te *journal.TermEncoder, f *concolic.Flip) {
	m.U64(uint64(len(f.Prefix)))
	for _, t := range f.Prefix {
		m.U64(te.ID(t))
	}
	m.U64(te.ID(f.Negated))
	m.Int(f.Depth)
	m.Bool(f.OnPatch)
	m.Bool(f.PinFlip)
	m.Bool(f.ParentHitPatch)
	m.Bool(f.ParentHitBug)
	m.U64(uint64(len(f.HoleHits)))
	for _, h := range f.HoleHits {
		encodeHoleHit(m, te, h)
	}
}

func decodeFlip(d *journal.Decoder, td *journal.TermDecoder) (*concolic.Flip, error) {
	f := &concolic.Flip{}
	np := d.U64()
	if err := lenCheck(d, np, "flip prefix"); err != nil {
		return nil, err
	}
	if np > 0 {
		f.Prefix = make([]*expr.Term, np)
		for i := range f.Prefix {
			t, err := td.Term(d.U64())
			if err != nil {
				return nil, err
			}
			f.Prefix[i] = t
		}
	}
	neg, err := td.Term(d.U64())
	if err != nil {
		return nil, err
	}
	f.Negated = neg
	f.Depth = d.Int()
	f.OnPatch = d.Bool()
	f.PinFlip = d.Bool()
	f.ParentHitPatch = d.Bool()
	f.ParentHitBug = d.Bool()
	nh := d.U64()
	if err := lenCheck(d, nh, "flip hole hits"); err != nil {
		return nil, err
	}
	if nh > 0 {
		f.HoleHits = make([]concolic.HoleHit, nh)
		for i := range f.HoleHits {
			h, err := decodeHoleHit(d, td)
			if err != nil {
				return nil, err
			}
			f.HoleHits[i] = h
		}
	}
	return f, d.Err()
}

func encodeHoleHit(m *journal.Encoder, te *journal.TermEncoder, h concolic.HoleHit) {
	m.U64(te.ID(h.Out))
	names := make([]string, 0, len(h.Snapshot))
	for n := range h.Snapshot {
		names = append(names, n)
	}
	sort.Strings(names)
	m.U64(uint64(len(names)))
	for _, n := range names {
		m.Str(n)
		m.U64(te.ID(h.Snapshot[n]))
	}
	encodeI64Map(m, h.Concrete)
	m.Int(h.AtBranch)
}

func decodeHoleHit(d *journal.Decoder, td *journal.TermDecoder) (concolic.HoleHit, error) {
	var h concolic.HoleHit
	out, err := td.Term(d.U64())
	if err != nil {
		return h, err
	}
	h.Out = out
	ns := d.U64()
	if err := lenCheck(d, ns, "hole-hit snapshot"); err != nil {
		return h, err
	}
	if ns > 0 {
		h.Snapshot = make(map[string]*expr.Term, ns)
		for i := uint64(0); i < ns; i++ {
			name := d.Str()
			t, err := td.Term(d.U64())
			if err != nil {
				return h, err
			}
			h.Snapshot[name] = t
		}
	}
	conc, err := decodeI64Map(d)
	if err != nil {
		return h, err
	}
	if conc != nil {
		h.Concrete = expr.Model(conc)
	}
	h.AtBranch = d.Int()
	return h, d.Err()
}

func encodeCacheExport(m *journal.Encoder, te *journal.TermEncoder, ex cache.Export) {
	m.U64(uint64(len(ex.Entries)))
	for _, e := range ex.Entries {
		m.U64(te.ID(e.F))
		m.Str(e.Bounds)
		m.Bool(e.Value.Sat)
		encodeI64Map(m, e.Value.Model)
	}
	m.U64(uint64(len(ex.Cores)))
	for _, c := range ex.Cores {
		m.U64(te.ID(c.F))
		m.Str(c.Bounds)
	}
}

func decodeCacheExport(d *journal.Decoder, td *journal.TermDecoder) (cache.Export, error) {
	var ex cache.Export
	ne := d.U64()
	if err := lenCheck(d, ne, "cache entries"); err != nil {
		return ex, err
	}
	for i := uint64(0); i < ne; i++ {
		f, err := td.Term(d.U64())
		if err != nil {
			return ex, err
		}
		bounds := d.Str()
		sat := d.Bool()
		model, err := decodeI64Map(d)
		if err != nil {
			return ex, err
		}
		v := cache.Value{Sat: sat}
		if model != nil {
			v.Model = expr.Model(model)
		}
		ex.Entries = append(ex.Entries, cache.ExportedEntry{F: f, Bounds: bounds, Value: v})
	}
	nc := d.U64()
	if err := lenCheck(d, nc, "cache cores"); err != nil {
		return ex, err
	}
	for i := uint64(0); i < nc; i++ {
		f, err := td.Term(d.U64())
		if err != nil {
			return ex, err
		}
		ex.Cores = append(ex.Cores, cache.ExportedCore{F: f, Bounds: d.Str()})
	}
	return ex, d.Err()
}
