package core

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkRepair measures the full repair loop on the div-zero subject at
// several worker counts (the CI artifact tracks these over time; on a
// multi-core runner the spread shows the parallel speedup).
func BenchmarkRepair(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = []int{1, 4} // still exercise the goroutine path
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Repair(divZeroJob(), Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
				if res.Pool.Size() == 0 {
					b.Fatal("empty pool")
				}
			}
		})
	}
}

// BenchmarkRepairCheckpointed measures the durability tax: the same run
// with snapshots at every-8-barriers (the default interval) and at the
// aggressive every-barrier setting. EXPERIMENTS.md tracks the default's
// overhead against the ≤5% acceptance bound.
func BenchmarkRepairCheckpointed(b *testing.B) {
	for _, interval := range []int{8, 1} {
		b.Run(fmt.Sprintf("interval=%d", interval), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				opts := Options{Workers: 1}
				opts.Checkpoint = CheckpointOptions{Dir: dir, Interval: interval}
				res, err := Repair(divZeroJob(), opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Pool.Size() == 0 {
					b.Fatal("empty pool")
				}
			}
		})
	}
}
