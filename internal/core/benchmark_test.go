package core

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkRepair measures the full repair loop on the div-zero subject at
// several worker counts (the CI artifact tracks these over time; on a
// multi-core runner the spread shows the parallel speedup).
func BenchmarkRepair(b *testing.B) {
	counts := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		counts = []int{1, 4} // still exercise the goroutine path
	}
	for _, n := range counts {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Repair(divZeroJob(), Options{Workers: n})
				if err != nil {
					b.Fatal(err)
				}
				if res.Pool.Size() == 0 {
					b.Fatal("empty pool")
				}
			}
		})
	}
}
