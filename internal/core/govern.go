package core

import (
	"fmt"
	"sync/atomic"

	"cpr/internal/govern"
	"cpr/internal/patch"
)

// Governor integration: the engine polls Options.Govern at every
// generation barrier (coordinator thread, no fan-out in flight) and
// applies the rung's degradation actions, every one of which reuses a
// result-neutral mechanism:
//
//	soft     → shrink the verdict cache to half, retire incremental
//	           solver contexts (both pure acceleration structures)
//	high     → soft at quarter target + spill the frontier's cold tail
//	           to disk (spill.go preserves the logical pop/evict order)
//	critical → shrink to zero / spill to a minimal hot set; pressure
//	           sustained across CriticalStopPolls consecutive polls
//	           cancels the engine's own token — the run ends with its
//	           anytime best-so-far result, exactly like a budget expiry
//
// Between barriers the engine also refreshes byte gauges (frontier, seen
// set, pool, solver contexts) that it registers as governor sources, so a
// daemon's background ticker sees per-job accounting without touching
// engine-owned state: sources read only these atomics.

// spillHotSoft/spillHotCritical size the in-memory hot set the high and
// critical rungs keep, as divisors of MaxQueue.
const (
	spillHotHigh     = 4  // high rung: keep the best quarter in memory
	spillHotCritical = 16 // critical rung: keep a sliver
)

// seenEntryBytes approximates one seen-set entry (uint64 key + map bucket
// share); itemBaseBytes and friends approximate workItem payloads.
const (
	seenEntryBytes    = 24
	itemBaseBytes     = 120
	mapEntryI64Bytes  = 40
	termRefBytes      = 8
	holeHitBytes      = 64
	snapshotVarBytes  = 56
	patchBaseBytes    = 112
	paramNameBytes    = 24
	boxPerDimBytes    = 16
	poolScorePadBytes = 32
)

// governSourceSeq makes source names unique across concurrent engines
// sharing one governor (a daemon running many jobs).
var governSourceSeq atomic.Uint64

// registerGovernSources registers this engine's byte gauges with the
// governor, returning an unregister-all. Names are unique per engine so a
// daemon running many jobs sees one source set per job.
func (e *engine) registerGovernSources() func() {
	g := e.opts.Govern
	if g == nil {
		return func() {}
	}
	prefix := fmt.Sprintf("core/run%d", governSourceSeq.Add(1))
	unregs := []func(){
		g.Register(prefix+"/frontier", e.gFrontierBytes.Load),
		g.Register(prefix+"/seen", e.gSeenBytes.Load),
		g.Register(prefix+"/pool", e.gPoolBytes.Load),
		g.Register(prefix+"/solver", e.gSolverBytes.Load),
	}
	if e.ownCache {
		unregs = append(unregs, g.Register(prefix+"/cache", e.opts.SMT.Cache.ApproxBytes))
	}
	return func() {
		for _, u := range unregs {
			u()
		}
	}
}

// governAtBarrier runs at every generation barrier: refresh the gauges,
// poll the governor, apply the rung's actions. With Options.Govern nil it
// only refreshes the gauges (the size stats are reported regardless).
func (e *engine) governAtBarrier(st *exploreState) {
	e.updateMemGauges(st)
	g := e.opts.Govern
	if g == nil {
		return
	}
	rung := g.Poll()
	e.governPolls++
	if rung != e.lastRung {
		e.governTransitions++
		e.lastRung = rung
	}
	if rung == govern.RungNone {
		return
	}
	switch rung {
	case govern.RungSoft:
		e.memSoft++
	case govern.RungHigh:
		e.memHigh++
	case govern.RungCritical:
		e.memCritical++
	}

	// Shrink the verdict cache: to half under soft, quarter under high,
	// empty under critical. Pure memoization — result-neutral by design.
	if c := e.opts.SMT.Cache; c != nil {
		var target uint64
		switch rung {
		case govern.RungSoft:
			target = c.ApproxBytes() / 2
		case govern.RungHigh:
			target = c.ApproxBytes() / 4
		}
		if n, freed := c.Shrink(target); n > 0 {
			e.memShrinks++
			e.memShrinkBytes += freed
		}
	}
	// Retire incremental solver contexts (workers are idle at a barrier).
	// The next query rebuilds; same mechanism as the MaxContextClauses cap.
	for _, w := range e.workers {
		r, f := w.solver.TrimMemory()
		r2, f2 := w.retrySolver.TrimMemory()
		e.memRetires += uint64(r + r2)
		e.memRetireBytes += f + f2
	}
	// High and critical: move the frontier's cold tail out of the heap.
	if rung >= govern.RungHigh {
		keep := e.opts.MaxQueue / spillHotHigh
		if rung == govern.RungCritical {
			keep = e.opts.MaxQueue / spillHotCritical
		}
		e.spillFrontier(st, keep)
	}
	// Sustained critical: fall back to the anytime result. Cancelling the
	// engine-owned token is byte-for-byte the budget-expiry path.
	if rung == govern.RungCritical && !e.memStopped && g.ShouldStop() {
		e.memStopped = true
		e.tok.Cancel()
	}
	e.updateMemGauges(st)
}

// updateMemGauges recomputes the byte gauges and peaks. Coordinator-only;
// the atomics exist so governor source callbacks (possibly on a daemon's
// ticker goroutine) can read them without locks.
func (e *engine) updateMemGauges(st *exploreState) {
	var fb uint64
	for i := range st.queue {
		fb += approxItemBytes(&st.queue[i])
	}
	fl := st.frontierLen()
	sb := uint64(len(st.seen)) * seenEntryBytes
	pb := approxPoolBytes(e.pool)
	var solv uint64
	for _, w := range e.workers {
		solv += w.solver.ApproxMemBytes() + w.retrySolver.ApproxMemBytes()
	}
	e.gFrontierBytes.Store(fb)
	e.gSeenBytes.Store(sb)
	e.gPoolBytes.Store(pb)
	e.gSolverBytes.Store(solv)
	if fl > e.frontierPeak {
		e.frontierPeak = fl
	}
	if fb > e.frontierPeakBytes {
		e.frontierPeakBytes = fb
	}
	if n := len(st.seen); n > e.seenPeak {
		e.seenPeak = n
	}
	if sb > e.seenPeakBytes {
		e.seenPeakBytes = sb
	}
	if pb > e.poolPeakBytes {
		e.poolPeakBytes = pb
	}
}

// approxItemBytes estimates one work item's retained heap: maps, the flip
// prefix, and hole-hit snapshots dominate.
func approxItemBytes(it *workItem) uint64 {
	n := uint64(itemBaseBytes)
	n += uint64(len(it.input)+len(it.params)) * mapEntryI64Bytes
	if f := it.flip; f != nil {
		n += uint64(len(f.Prefix)+1) * termRefBytes
		for _, h := range f.HoleHits {
			n += holeHitBytes
			n += uint64(len(h.Snapshot)) * snapshotVarBytes
		}
	}
	return n
}

// approxPoolBytes estimates the patch pool's retained heap (regions
// dominate once refinement splits boxes).
func approxPoolBytes(pl *patch.Pool) uint64 {
	if pl == nil {
		return 0
	}
	var n uint64
	for _, p := range pl.Patches {
		n += patchBaseBytes + poolScorePadBytes
		n += uint64(len(p.Params)) * paramNameBytes
		n += uint64(len(p.Constraint.Boxes)) * uint64(p.Constraint.Dim+1) * boxPerDimBytes
	}
	return n
}

// warnMem routes governor warnings through the checkpoint Warn hook when
// one is configured (the CLIs already wire it to stderr); silent otherwise.
func (e *engine) warnMem(format string, args ...any) {
	e.opts.Checkpoint.warnf(format, args...)
}

// copyMemStats publishes the governor counters and size gauges into the
// run's Stats. Like the shard counters, none of these enter snapshot
// codecs or stats-equality fingerprints: they describe memory scheduling,
// not the repair trajectory.
func (e *engine) copyMemStats(stats *Stats) {
	stats.MemRungSoft = e.memSoft
	stats.MemRungHigh = e.memHigh
	stats.MemRungCritical = e.memCritical
	stats.MemCacheShrinks = e.memShrinks
	stats.MemCacheShrinkBytes = e.memShrinkBytes
	stats.MemContextRetires = e.memRetires
	stats.MemContextRetireBytes = e.memRetireBytes
	stats.MemSpills = e.memSpills
	stats.MemSpilledItems = e.memSpilledItems
	stats.MemReloads = e.memReloads
	stats.MemSpillLoadFailures = e.memSpillLoadFailures
	stats.MemStopped = e.memStopped
	stats.GovernPolls = e.governPolls
	stats.GovernTransitions = e.governTransitions
	stats.FrontierPeak = e.frontierPeak
	stats.FrontierPeakBytes = e.frontierPeakBytes
	stats.SeenPeak = e.seenPeak
	stats.SeenPeakBytes = e.seenPeakBytes
	stats.PoolPeakBytes = e.poolPeakBytes
}
