package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"cpr/internal/cancel"
	"cpr/internal/smt"
	"cpr/internal/smt/cache"
)

// testWorkers returns the "many workers" count for determinism tests.
// CI overrides it via CPR_TEST_WORKERS to pin the -race matrix.
func testWorkers() int {
	if s := os.Getenv("CPR_TEST_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

// fingerprint renders everything the determinism contract promises to be
// scheduling-independent: the headline stats, the surviving pool
// (constraints included), and the ranked order with scores. Cache and
// query counters are deliberately excluded — which worker warms the cache
// first is scheduling-dependent; the verdicts are not.
func fingerprint(res *Result) string {
	var b strings.Builder
	st := res.Stats
	fmt.Fprintf(&b, "stats P %d->%d pool %d->%d phiE=%d phiS=%d gen=%d patchHits=%d bugHits=%d ref=%d rem=%d\n",
		st.PInit, st.PFinal, st.PoolInit, st.PoolFinal, st.PathsExplored, st.PathsSkipped,
		st.InputsGenerated, st.PatchLocHits, st.BugLocHits, st.Refinements, st.Removals)
	for _, p := range res.Pool.Patches {
		fmt.Fprintf(&b, "pool %d %s count=%d\n", p.ID, p, p.Constraint.Count())
	}
	for i, p := range res.Ranked {
		fmt.Fprintf(&b, "rank %d: id=%d score=%.6f\n", i+1, p.ID, p.Score)
	}
	return b.String()
}

// TestWorkersDeterminism is the tentpole's contract: the plausible-patch
// pool, the ranking, and the exploration stats are identical for every
// worker count (same seed, no wall-clock budget).
func TestWorkersDeterminism(t *testing.T) {
	job := divZeroJob()
	seq, err := Repair(job, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair workers=1: %v", err)
	}
	if seq.Stats.Workers != 1 {
		t.Fatalf("Stats.Workers = %d, want 1", seq.Stats.Workers)
	}
	want := fingerprint(seq)

	n := testWorkers()
	for run := 0; run < 2; run++ { // twice: also run-to-run stability
		par, err := Repair(divZeroJob(), Options{Workers: n})
		if err != nil {
			t.Fatalf("Repair workers=%d: %v", n, err)
		}
		if par.Stats.Workers != n {
			t.Fatalf("Stats.Workers = %d, want %d", par.Stats.Workers, n)
		}
		if got := fingerprint(par); got != want {
			t.Fatalf("workers=%d run %d diverged from workers=1:\n--- want ---\n%s--- got ---\n%s",
				n, run, want, got)
		}
	}
}

// TestWorkersShareCache: on a subject with hundreds of queries the shared
// verdict cache must see real traffic and real hits at any worker count.
func TestWorkersShareCache(t *testing.T) {
	for _, n := range []int{1, testWorkers()} {
		res, err := Repair(divZeroJob(), Options{Workers: n})
		if err != nil {
			t.Fatalf("Repair workers=%d: %v", n, err)
		}
		st := res.Stats
		if st.SolverQueries < 50 {
			t.Fatalf("workers=%d: only %d solver queries; subject too small for the cache check", n, st.SolverQueries)
		}
		if st.CacheHits == 0 {
			t.Errorf("workers=%d: zero cache hits over %d queries", n, st.SolverQueries)
		}
		if st.CacheHits+st.CacheMisses != st.SolverQueries {
			t.Errorf("workers=%d: cache traffic %d+%d inconsistent with %d queries",
				n, st.CacheHits, st.CacheMisses, st.SolverQueries)
		}
	}
}

// TestWorkersSharedCacheInstance: an explicitly provided cache is shared
// by caller and engine — its counters account for the run's traffic.
func TestWorkersSharedCacheInstance(t *testing.T) {
	c := cache.New(cache.Options{})
	opts := Options{Workers: testWorkers()}
	opts.SMT.Cache = c
	res, err := Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	cs := c.Stats()
	if cs.Hits != res.Stats.CacheHits || cs.Misses != res.Stats.CacheMisses {
		t.Fatalf("engine stats (%d/%d) disagree with the provided cache (%d/%d)",
			res.Stats.CacheHits, res.Stats.CacheMisses, cs.Hits, cs.Misses)
	}
	if c.Len() == 0 {
		t.Fatal("provided cache stayed empty")
	}
}

// TestWorkersCancelled: cancellation composes with the pool — a
// pre-cancelled token still returns the intact initial pool.
func TestWorkersCancelled(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	res, err := Repair(divZeroJob(), Options{Workers: testWorkers(), Cancel: tok})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if !res.Stats.TimedOut {
		t.Fatalf("Stats.TimedOut not set: %+v", res.Stats)
	}
	if res.Pool.Size() == 0 {
		t.Fatal("cancelled parallel run lost the pool")
	}
	if len(res.Ranked) != len(res.Pool.Patches) {
		t.Fatal("ranking inconsistent with pool")
	}
}

// TestFanOutPanicPropagates: a panic in one task surfaces on the caller
// (lowest index wins) after the batch drains, at any worker count.
func TestFanOutPanicPropagates(t *testing.T) {
	for _, n := range []int{1, 4} {
		e := &engine{opts: Options{SMT: smt.Options{}}}
		e.solver = smt.NewSolver(e.opts.SMT)
		e.retrySolver = smt.NewSolver(e.opts.SMT)
		e.workers = e.newWorkers(n)
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			e.fanOut(8, func(w *workerCtx, i int) {
				if i == 2 || i == 5 {
					panic(fmt.Sprintf("task %d", i))
				}
			})
		}()
		if recovered != "task 2" {
			t.Fatalf("workers=%d: recovered %v, want \"task 2\"", n, recovered)
		}
	}
}

// TestNewWorkersFirstAliasesEngine: worker 0 must run on the engine's own
// solvers so Workers=1 replays the sequential call sequence exactly.
func TestNewWorkersFirstAliasesEngine(t *testing.T) {
	e := &engine{opts: Options{SMT: smt.Options{}}}
	e.solver = smt.NewSolver(e.opts.SMT)
	e.retrySolver = smt.NewSolver(e.opts.SMT)
	ws := e.newWorkers(3)
	if len(ws) != 3 {
		t.Fatalf("len(workers) = %d, want 3", len(ws))
	}
	if ws[0].solver != e.solver || ws[0].retrySolver != e.retrySolver {
		t.Fatal("workers[0] does not alias the engine's solvers")
	}
	for i := 1; i < 3; i++ {
		if ws[i].solver == e.solver || ws[i].solver == nil {
			t.Fatalf("worker %d solver not fresh", i)
		}
	}
}
