package core

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"cpr/internal/faultinject"
	"cpr/internal/journal"
)

// crashSentinel is the panic value the in-process crash injector throws;
// a recover site in the engine must never swallow it.
type crashSentinel struct{}

// runToCrash runs Repair with checkpointing and an in-process crash
// injected at the nth generation barrier; it reports whether the crash
// fired (false means the run completed before reaching barrier n).
func runToCrash(t *testing.T, job Job, opts Options, crashAt int) (crashed bool) {
	t.Helper()
	plan := &faultinject.Plan{
		CrashAt: crashAt,
		Crash:   func() { panic(crashSentinel{}) },
	}
	faultinject.Activate(plan)
	defer faultinject.Deactivate()
	defer func() {
		switch r := recover(); r {
		case nil:
		case crashSentinel{}:
			crashed = true
		default:
			panic(r)
		}
	}()
	if _, err := Repair(job, opts); err != nil {
		t.Fatalf("Repair (crash run): %v", err)
	}
	return false
}

func ckptOptions(dir string, workers, interval int, resume bool, warns *[]string) Options {
	return Options{
		Workers: workers,
		Checkpoint: CheckpointOptions{
			Dir:      dir,
			Interval: interval,
			Resume:   resume,
			Warn: func(msg string) {
				if warns != nil {
					*warns = append(*warns, msg)
				}
			},
		},
	}
}

// dropWallTimes zeroes the wall-time breakdown and the memory-size peaks
// before a stats equality check: times are measurements of this machine's
// clock, not run state, and the peaks are observations of process memory
// over whatever barriers the run actually passed — a resumed run never
// sees the pre-crash pool's peak. Every counting field still compares
// exactly.
func dropWallTimes(st Stats) Stats {
	st.SatTime, st.LIATime, st.ValidateTime = 0, 0, 0
	st.FrontierPeak, st.SeenPeak = 0, 0
	st.FrontierPeakBytes, st.SeenPeakBytes, st.PoolPeakBytes = 0, 0, 0
	return st
}

// TestResumeEquivalenceAfterCrash is the tentpole's differential contract:
// kill the run at a generation barrier, resume from the checkpoint, and
// the final result is bit-identical to the uninterrupted run — patch set,
// parameter regions, ranking, and stats. Workers=1 checks the full Stats
// struct; the parallel variant checks the scheduling-independent
// fingerprint (cache hit/miss split is racy across workers even without
// a crash — see parallel_test.go).
func TestResumeEquivalenceAfterCrash(t *testing.T) {
	for _, workers := range []int{1, testWorkers()} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			job := divZeroJob()
			base, err := Repair(job, Options{Workers: workers})
			if err != nil {
				t.Fatalf("Repair (baseline): %v", err)
			}

			dir := t.TempDir()
			if !runToCrash(t, divZeroJob(), ckptOptions(dir, workers, 2, false, nil), 7) {
				t.Fatal("crash injection never fired; raise the barrier budget")
			}
			snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
			if len(snaps) == 0 {
				t.Fatal("crashed run left no checkpoint")
			}
			if len(snaps) > 2 {
				t.Fatalf("prune kept %d snapshots, want <= 2", len(snaps))
			}

			var warns []string
			res, err := Repair(divZeroJob(), ckptOptions(dir, workers, 2, true, &warns))
			if err != nil {
				t.Fatalf("Repair (resume): %v", err)
			}
			for _, w := range warns {
				t.Errorf("unexpected resume warning: %s", w)
			}
			if got, want := fingerprint(res), fingerprint(base); got != want {
				t.Fatalf("resumed result diverged from uninterrupted run:\n--- resumed\n%s--- baseline\n%s", got, want)
			}
			if workers == 1 && dropWallTimes(res.Stats) != dropWallTimes(base.Stats) {
				t.Fatalf("resumed stats diverged:\nresumed:  %+v\nbaseline: %+v", res.Stats, base.Stats)
			}
		})
	}
}

// TestResumeEquivalenceRepeatedCrashes kills the run at several successive
// barriers — each resume itself crashes — before the final resume runs to
// completion. Every intermediate state must round-trip through its
// snapshot without drift.
func TestResumeEquivalenceRepeatedCrashes(t *testing.T) {
	job := divZeroJob()
	base, err := Repair(job, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	dir := t.TempDir()
	if !runToCrash(t, divZeroJob(), ckptOptions(dir, 1, 1, false, nil), 3) {
		t.Fatal("first crash never fired")
	}
	for i := 0; i < 3; i++ {
		if !runToCrash(t, divZeroJob(), ckptOptions(dir, 1, 1, true, nil), 2) {
			t.Fatalf("crash %d never fired", i+2)
		}
	}
	res, err := Repair(divZeroJob(), ckptOptions(dir, 1, 1, true, nil))
	if err != nil {
		t.Fatalf("Repair (final resume): %v", err)
	}
	if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) {
		t.Fatalf("stats diverged after repeated crashes:\nresumed:  %+v\nbaseline: %+v", res.Stats, base.Stats)
	}
	if got, want := fingerprint(res), fingerprint(base); got != want {
		t.Fatalf("result diverged after repeated crashes:\n--- resumed\n%s--- baseline\n%s", got, want)
	}
}

// TestCheckpointOffIsNoOp: enabling checkpointing must not change the
// result relative to a plain run (the barrier hook and snapshot writes are
// observationally pure).
func TestCheckpointOffIsNoOp(t *testing.T) {
	base, err := Repair(divZeroJob(), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(divZeroJob(), ckptOptions(t.TempDir(), 1, 2, false, nil))
	if err != nil {
		t.Fatal(err)
	}
	if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) || fingerprint(res) != fingerprint(base) {
		t.Fatalf("checkpointing changed the result:\nwith:    %+v\nwithout: %+v", res.Stats, base.Stats)
	}
}

// TestResumeFreshStartFallbacks: every way a snapshot can be unusable —
// missing, zero-byte, bit-flipped, wrong engine-payload version, or from a
// different job — must degrade to a warned fresh start that still produces
// the uninterrupted result, never an error or a partial load.
func TestResumeFreshStartFallbacks(t *testing.T) {
	job := divZeroJob()
	base, err := Repair(job, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	want := fingerprint(base)

	corrupt := func(t *testing.T, name string, breakDir func(t *testing.T, dir string)) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			breakDir(t, dir)
			var warns []string
			res, err := Repair(divZeroJob(), ckptOptions(dir, 1, 2, true, &warns))
			if err != nil {
				t.Fatalf("Repair after %s snapshot: %v", name, err)
			}
			if len(warns) == 0 {
				t.Errorf("%s snapshot produced no warning", name)
			}
			if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) || fingerprint(res) != want {
				t.Fatalf("fresh-start run diverged from baseline:\n%+v\nvs\n%+v", res.Stats, base.Stats)
			}
		})
	}

	// A real checkpoint to mutilate, produced by an actual crashed run.
	seedDir := t.TempDir()
	if !runToCrash(t, divZeroJob(), ckptOptions(seedDir, 1, 2, false, nil), 5) {
		t.Fatal("seed crash never fired")
	}
	seedSnaps, _ := filepath.Glob(filepath.Join(seedDir, "snap-*.ckpt"))
	if len(seedSnaps) == 0 {
		t.Fatal("seed run left no checkpoint")
	}
	copySnaps := func(t *testing.T, dir string) {
		for _, s := range seedSnaps {
			data, err := os.ReadFile(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(s)), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	corrupt(t, "missing-dir", func(t *testing.T, dir string) {
		// Dir exists but holds nothing; Resume finds no snapshot.
	})
	corrupt(t, "zero-byte", func(t *testing.T, dir string) {
		if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000008.ckpt"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	corrupt(t, "bit-flip", func(t *testing.T, dir string) {
		copySnaps(t, dir)
		snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
		for _, s := range snaps {
			data, err := os.ReadFile(s)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x10
			if err := os.WriteFile(s, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	})
	corrupt(t, "payload-version", func(t *testing.T, dir string) {
		// A well-formed container whose engine payload claims a future
		// schema version (the term table is valid and empty, so decoding
		// reaches the version check).
		var table journal.Encoder
		table.U64(0)
		var m journal.Encoder
		m.Raw(table.Bytes())
		m.U64(999) // engine snapshot version from the future
		m.U64(0)   // fingerprint
		m.U64(1 << 30)
		if err := journal.WriteSnapshot(dir, 1<<30, m.Bytes()); err != nil {
			t.Fatal(err)
		}
	})
	corrupt(t, "different-job", func(t *testing.T, dir string) {
		other := divZeroJob()
		other.FailingInputs = []map[string]int64{{"x": 9, "y": 0}}
		if !runToCrash(t, other, ckptOptions(dir, 1, 2, false, nil), 5) {
			t.Fatal("other-job crash never fired")
		}
	})
}

// TestResumePrefersIntactOlderSnapshot: when the newest snapshot is
// damaged, resume falls back to the retained older one and still converges
// to the baseline result.
func TestResumePrefersIntactOlderSnapshot(t *testing.T) {
	job := divZeroJob()
	base, err := Repair(job, Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	dir := t.TempDir()
	if !runToCrash(t, divZeroJob(), ckptOptions(dir, 1, 2, false, nil), 7) {
		t.Fatal("crash never fired")
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want >= 2 retained snapshots, got %v (err %v)", snaps, err)
	}
	// Glob returns sorted paths and the names are zero-padded barriers,
	// so the last one is the newest. Mutilate it.
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var warns []string
	res, err := Repair(divZeroJob(), ckptOptions(dir, 1, 2, true, &warns))
	if err != nil {
		t.Fatalf("Repair (resume): %v", err)
	}
	if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) || fingerprint(res) != fingerprint(base) {
		t.Fatalf("fallback resume diverged from baseline:\n%+v\nvs\n%+v", res.Stats, base.Stats)
	}
}

// --- real-process SIGKILL harness ---

// TestCrashHelperProcess is not a test: it is the subprocess body for
// TestResumeEquivalenceSIGKILL. It runs a checkpointed repair that kills
// its own process — a real, unblockable SIGKILL, not a panic — at the
// configured barrier, exercising the no-warning-possible crash mode the
// journal's atomic-rename discipline exists for.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("CPR_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestResumeEquivalenceSIGKILL")
	}
	dir := os.Getenv("CPR_CRASH_DIR")
	crashAt := 0
	fmt.Sscanf(os.Getenv("CPR_CRASH_AT"), "%d", &crashAt)
	resume := os.Getenv("CPR_CRASH_RESUME") == "1"
	plan := &faultinject.Plan{
		CrashAt: crashAt,
		Crash:   func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) },
	}
	faultinject.Activate(plan)
	defer faultinject.Deactivate()
	opts := ckptOptions(dir, 1, 1, resume, nil)
	if _, err := Repair(divZeroJob(), opts); err != nil {
		fmt.Fprintf(os.Stderr, "helper Repair: %v\n", err)
		os.Exit(2)
	}
	// Reaching here means the run finished before the crash barrier.
	os.Exit(3)
}

func TestResumeEquivalenceSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess harness")
	}
	base, err := Repair(divZeroJob(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("Repair (baseline): %v", err)
	}
	dir := t.TempDir()

	runHelper := func(crashAt int, resume bool) {
		t.Helper()
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashHelperProcess$", "-test.v")
		cmd.Env = append(os.Environ(),
			"CPR_CRASH_HELPER=1",
			"CPR_CRASH_DIR="+dir,
			fmt.Sprintf("CPR_CRASH_AT=%d", crashAt),
		)
		if resume {
			cmd.Env = append(cmd.Env, "CPR_CRASH_RESUME=1")
		}
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("helper exited cleanly; expected SIGKILL\n%s", out)
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("helper: %v\n%s", err, out)
		}
		ws, ok := ee.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
			t.Fatalf("helper did not die by SIGKILL: %v\n%s", err, out)
		}
	}

	// First life dies at barrier 4; the second life resumes and dies two
	// barriers later; the third resumes in-process and runs to completion.
	runHelper(4, false)
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if len(snaps) == 0 {
		t.Fatal("SIGKILLed run left no checkpoint")
	}
	runHelper(2, true)

	var warns []string
	res, err := Repair(divZeroJob(), ckptOptions(dir, 1, 1, true, &warns))
	if err != nil {
		t.Fatalf("Repair (final resume): %v", err)
	}
	for _, w := range warns {
		t.Errorf("unexpected resume warning: %s", w)
	}
	if dropWallTimes(res.Stats) != dropWallTimes(base.Stats) {
		t.Fatalf("stats diverged after SIGKILLs:\nresumed:  %+v\nbaseline: %+v", res.Stats, base.Stats)
	}
	if got, want := fingerprint(res), fingerprint(base); got != want {
		t.Fatalf("result diverged after SIGKILLs:\n--- resumed\n%s--- baseline\n%s", got, want)
	}
}
