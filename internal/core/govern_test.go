package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cpr/internal/cancel"
	"cpr/internal/faultinject"
	"cpr/internal/govern"
)

// governedOpts builds the option set the governor differential tests run
// under: incremental solving on (so context retirement has something to
// retire) and the given governor. Identical modulo Govern, so the
// baseline and the pressured run differ only in governance.
func governedOpts(workers int, g *govern.Governor) Options {
	o := Options{Workers: workers, Govern: g}
	o.SMT.Incremental = true
	return o
}

// TestGovernForcedRungsBitIdentical is the tentpole's differential
// contract: force every rung of the degradation ladder at every barrier
// (via faultinject, so no real allocation pressure is needed) and the
// repair result — pool, regions, ranking, headline stats — is
// bit-identical to the unpressured run, at one worker and many. The
// critical rung here is transient-critical (the stop threshold is set
// unreachably high): its shrink/spill actions fire, the anytime stop does
// not.
func TestGovernForcedRungsBitIdentical(t *testing.T) {
	for _, workers := range []int{1, testWorkers()} {
		base, err := Repair(divZeroJob(), governedOpts(workers, nil))
		if err != nil {
			t.Fatalf("baseline workers=%d: %v", workers, err)
		}
		want := fingerprint(base)
		for rung := govern.RungSoft; rung <= govern.RungCritical; rung++ {
			rung := rung
			t.Run(fmt.Sprintf("workers=%d_rung=%s", workers, rung), func(t *testing.T) {
				faultinject.Activate(&faultinject.Plan{MemRungEvery: 1, MemRung: int(rung)})
				defer faultinject.Deactivate()
				g := govern.New(govern.Config{CriticalStopPolls: 1 << 30})
				res, err := Repair(divZeroJob(), governedOpts(workers, g))
				if err != nil {
					t.Fatalf("governed Repair: %v", err)
				}
				if got := fingerprint(res); got != want {
					t.Fatalf("rung %s diverged from unpressured run:\n--- want ---\n%s--- got ---\n%s", rung, want, got)
				}
				st := res.Stats
				if st.GovernPolls == 0 {
					t.Fatal("governor never polled")
				}
				var rungPolls uint64
				switch rung {
				case govern.RungSoft:
					rungPolls = st.MemRungSoft
				case govern.RungHigh:
					rungPolls = st.MemRungHigh
				case govern.RungCritical:
					rungPolls = st.MemRungCritical
				}
				if rungPolls == 0 {
					t.Fatalf("forced rung %s never classified: %+v", rung, st)
				}
				if st.MemCacheShrinks == 0 {
					t.Error("no verdict-cache shrink under pressure")
				}
				if st.MemContextRetires == 0 {
					t.Error("no incremental context retired under pressure")
				}
				if st.MemStopped || st.TimedOut {
					t.Errorf("transient %s pressure stopped the run: stopped=%v timedOut=%v", rung, st.MemStopped, st.TimedOut)
				}
			})
		}
	}
}

// TestGovernWithCheckpointBitIdentical runs the forced high rung together
// with periodic checkpointing: the checkpointer must reload any spilled
// frontier tail before encoding, and the result stays bit-identical.
func TestGovernWithCheckpointBitIdentical(t *testing.T) {
	base, err := Repair(divZeroJob(), governedOpts(1, nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := fingerprint(base)
	faultinject.Activate(&faultinject.Plan{MemRungEvery: 1, MemRung: int(govern.RungHigh)})
	defer faultinject.Deactivate()
	opts := governedOpts(1, govern.New(govern.Config{CriticalStopPolls: 1 << 30}))
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Interval: 2}
	opts.SpillDir = t.TempDir()
	res, err := Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("governed+checkpointed Repair: %v", err)
	}
	if got := fingerprint(res); got != want {
		t.Fatalf("governed+checkpointed run diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestGovernUnpressuredGovernorChangesNothing: a governor whose watermarks
// are unreachably high classifies every poll as no-pressure and the run is
// identical, with zero action counters.
func TestGovernUnpressuredGovernorChangesNothing(t *testing.T) {
	base, err := Repair(divZeroJob(), governedOpts(1, nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	g := govern.New(govern.Config{SoftBytes: 1 << 60, HighBytes: 1 << 61, CriticalBytes: 1 << 62})
	res, err := Repair(divZeroJob(), governedOpts(1, g))
	if err != nil {
		t.Fatalf("governed Repair: %v", err)
	}
	if got, want := fingerprint(res), fingerprint(base); got != want {
		t.Fatalf("idle governor changed the result:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
	st := res.Stats
	if st.GovernPolls == 0 {
		t.Fatal("governor never polled")
	}
	if st.MemRungSoft+st.MemRungHigh+st.MemRungCritical != 0 ||
		st.MemCacheShrinks != 0 || st.MemSpills != 0 || st.MemStopped {
		t.Fatalf("idle governor took actions: %+v", st)
	}
}

// TestGovernSustainedCriticalStopsRun: pressure critical at every poll
// with a low stop threshold makes the run fall back to its anytime
// best-so-far result — Stats.TimedOut exactly as a budget expiry — while
// the caller's own cancel token stays untouched.
func TestGovernSustainedCriticalStopsRun(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{MemRungEvery: 1, MemRung: int(govern.RungCritical)})
	defer faultinject.Deactivate()
	g := govern.New(govern.Config{CriticalStopPolls: 2})
	parent := cancel.New()
	opts := governedOpts(1, g)
	opts.Cancel = parent
	res, err := Repair(divZeroJob(), opts)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	st := res.Stats
	if !st.MemStopped {
		t.Fatalf("sustained critical did not stop the run: %+v", st)
	}
	if !st.TimedOut {
		t.Fatal("memory stop must surface as TimedOut (the budget-expiry path)")
	}
	if res.Pool == nil {
		t.Fatal("no anytime pool returned")
	}
	if st.MemRungCritical < 2 {
		t.Fatalf("MemRungCritical = %d, want >= 2", st.MemRungCritical)
	}
	if parent.Expired() {
		t.Fatal("governor stop cancelled the caller's token")
	}
	if !g.ShouldStop() {
		t.Fatal("governor does not report the stop")
	}
}

// TestFrontierSpillMirrorsInMemory drives the spilled frontier and a
// purely in-memory reference (replicating the engine's original push
// verbatim) through an identical randomized stream of pushes, forced
// spills, and pops: every pop must return the same (score, seq) on both
// sides, overflow evictions included — the result-neutrality argument for
// the high rung, tested in isolation.
func TestFrontierSpillMirrorsInMemory(t *testing.T) {
	for _, policy := range []QueuePolicy{QueueRanked, QueueFIFO} {
		policy := policy
		t.Run(fmt.Sprintf("policy=%d", policy), func(t *testing.T) {
			e := &engine{opts: Options{MaxQueue: 48, Queue: policy, SpillDir: t.TempDir()}.withDefaults()}
			ref := &engine{opts: Options{MaxQueue: 48, Queue: policy}.withDefaults()}
			st, rst := &exploreState{}, &exploreState{}
			defer st.dropSpill()

			// origPush is the engine's pre-spill push, verbatim: sort, drop
			// the worst, reject non-improving candidates at the cap.
			origPush := func(q *exploreState, it workItem) {
				if len(q.queue) >= ref.opts.MaxQueue {
					sort.SliceStable(q.queue, func(i, j int) bool { return less(q.queue[i], q.queue[j]) })
					if !less(it, q.queue[len(q.queue)-1]) {
						return
					}
					q.queue = q.queue[:len(q.queue)-1]
				}
				q.queue = append(q.queue, it)
			}
			cmp := less
			if policy == QueueFIFO {
				cmp = lessFIFO
			}
			pop := func(eng *engine, q *exploreState) (workItem, bool) {
				eng.reloadForPop(q)
				if len(q.queue) == 0 {
					return workItem{}, false
				}
				best := 0
				for i := 1; i < len(q.queue); i++ {
					if cmp(q.queue[i], q.queue[best]) {
						best = i
					}
				}
				it := q.queue[best]
				q.queue = append(q.queue[:best], q.queue[best+1:]...)
				return it, true
			}

			rng := rand.New(rand.NewSource(7))
			seq := 0
			for round := 0; round < 600; round++ {
				switch op := rng.Intn(10); {
				case op < 6:
					seq++
					it := workItem{
						score: rng.Intn(12), // narrow range: plenty of seq tiebreaks
						seq:   seq,
						input: map[string]int64{"x": int64(seq)},
					}
					e.pushFrontier(st, it)
					origPush(rst, it)
				case op < 8:
					e.spillFrontier(st, 4) // the reference never spills
				default:
					got, gok := pop(e, st)
					want, wok := pop(ref, rst)
					if gok != wok || got.seq != want.seq || got.score != want.score {
						t.Fatalf("round %d: pop diverged: spilled=(%d,%d,%v) ref=(%d,%d,%v)",
							round, got.score, got.seq, gok, want.score, want.seq, wok)
					}
				}
			}
			// Drain both completely: the full multisets must match.
			for {
				got, gok := pop(e, st)
				want, wok := pop(ref, rst)
				if gok != wok {
					t.Fatalf("drain length diverged: spilled=%v ref=%v", gok, wok)
				}
				if !gok {
					break
				}
				if got.seq != want.seq || got.score != want.score {
					t.Fatalf("drain diverged: spilled=(%d,%d) ref=(%d,%d)", got.score, got.seq, want.score, want.seq)
				}
			}
			if e.memSpills == 0 || e.memReloads == 0 {
				t.Fatalf("spill machinery not exercised: spills=%d reloads=%d", e.memSpills, e.memReloads)
			}
			if e.memSpillLoadFailures != 0 {
				t.Fatalf("%d spill load failures on a healthy disk", e.memSpillLoadFailures)
			}
			// Payloads must round-trip, not just keys: verify a known item.
			if st.frontierLen() != 0 || rst.frontierLen() != 0 {
				t.Fatal("frontier not fully drained")
			}
		})
	}
}

// TestFrontierSpillPayloadRoundTrip spills items with rich payloads and
// checks the reloaded items carry them intact (keys prove ordering; this
// proves the codec).
func TestFrontierSpillPayloadRoundTrip(t *testing.T) {
	e := &engine{opts: Options{MaxQueue: 64, SpillDir: t.TempDir()}.withDefaults()}
	st := &exploreState{}
	defer st.dropSpill()
	for i := 1; i <= 30; i++ {
		e.pushFrontier(st, workItem{
			score:  i % 5,
			seq:    i,
			input:  map[string]int64{"x": int64(i), "y": int64(-i)},
			params: map[string]int64{"a": int64(2 * i)},
			bound:  i % 3,
		})
	}
	e.spillFrontier(st, 2)
	if e.memSpills != 1 {
		t.Fatalf("spills = %d, want 1", e.memSpills)
	}
	if len(st.queue) != 2 {
		t.Fatalf("hot set = %d items, want 2", len(st.queue))
	}
	e.reloadAllSpilled(st)
	if len(st.queue) != 30 {
		t.Fatalf("reloaded frontier = %d items, want 30", len(st.queue))
	}
	byseq := make(map[int]workItem, len(st.queue))
	for _, it := range st.queue {
		byseq[it.seq] = it
	}
	for i := 1; i <= 30; i++ {
		it, ok := byseq[i]
		if !ok {
			t.Fatalf("item seq=%d lost in spill round-trip", i)
		}
		if it.score != i%5 || it.input["x"] != int64(i) || it.input["y"] != int64(-i) ||
			it.params["a"] != int64(2*i) || it.bound != i%3 {
			t.Fatalf("item seq=%d corrupted: %+v", i, it)
		}
	}
}
