package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"cpr/internal/journal"
)

// Frontier spill: the memory governor's high rung moves the frontier's
// cold tail (the items the pop policy would reach last) out of the heap
// and into batch files under the engine's spill directory, reloading a
// batch only when the pop policy actually needs one of its items.
//
// The result-neutrality argument: the frontier's observable behavior —
// which item each pop returns, which item each overflowing push evicts —
// depends only on the multiset of (score, seq) keys it holds, because seq
// is unique and both orderings are total. Spilling keeps every batch's
// keys in memory, so those decisions are still taken over the full logical
// frontier; only the item payloads (inputs, flip prefixes, hole-hit
// snapshots — the bulk of the bytes) leave the heap. A spilled item
// evicted by an overflowing push is marked dead in its batch and skipped
// at reload. Forced-pressure differential tests assert the resulting runs
// are bit-identical to unpressured ones.
//
// Spill files use the checkpoint item codec (encodeItem/decodeItem) under
// the journal framing: a term table frame, then a version, a count, and
// the items. Files are scratch state, deleted on reload and at phase end;
// a checkpoint barrier reloads everything first, so snapshots always carry
// the full logical frontier and resume needs no spill awareness.

// spillVersion is the batch-file schema version.
const spillVersion = 1

// spillMinBatch is the smallest cold tail worth a file; below it the spill
// is skipped (the syscall overhead outweighs the bytes).
const spillMinBatch = 16

// itemKey is the slice of a workItem that pop and overflow-eviction
// decisions read. seq is unique within a run, making both orderings total.
type itemKey struct {
	score int
	seq   int
}

func keyOf(it workItem) itemKey { return itemKey{score: it.score, seq: it.seq} }

// rankedKeyLess mirrors less (score descending, then seq); fifoKeyLess
// mirrors lessFIFO. Overflow eviction always uses the ranked order (as the
// in-memory push always has); popping uses the phase's queue policy.
func rankedKeyLess(a, b itemKey) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.seq < b.seq
}

func fifoKeyLess(a, b itemKey) bool { return a.seq < b.seq }

// popKeyLess returns the key ordering matching the pop policy.
func (e *engine) popKeyLess() func(a, b itemKey) bool {
	if e.opts.Queue == QueueFIFO {
		return fifoKeyLess
	}
	return rankedKeyLess
}

// spillBatch is one on-disk batch: its file, the keys of every item it
// holds, and the seqs logically evicted while spilled.
type spillBatch struct {
	path string
	keys []itemKey
	dead map[int]bool
	live int
}

// best returns the batch's best live key under kl.
func (b *spillBatch) best(kl func(a, b itemKey) bool) (itemKey, bool) {
	var bk itemKey
	found := false
	for _, k := range b.keys {
		if b.dead[k.seq] {
			continue
		}
		if !found || kl(k, bk) {
			bk, found = k, true
		}
	}
	return bk, found
}

// worst returns the batch's worst live key under kl.
func (b *spillBatch) worst(kl func(a, b itemKey) bool) (itemKey, bool) {
	var wk itemKey
	found := false
	for _, k := range b.keys {
		if b.dead[k.seq] {
			continue
		}
		if !found || kl(wk, k) {
			wk, found = k, true
		}
	}
	return wk, found
}

// markDead logically evicts seq from the batch; reports the remaining live
// count.
func (b *spillBatch) markDead(seq int) int {
	if b.dead == nil {
		b.dead = make(map[int]bool)
	}
	if !b.dead[seq] {
		b.dead[seq] = true
		b.live--
	}
	return b.live
}

// frontierSpill is one explore phase's spilled state. Coordinator-owned,
// like the queue itself.
type frontierSpill struct {
	batches []*spillBatch
}

// liveCount is the number of live spilled items.
func (sp *frontierSpill) liveCount() int {
	if sp == nil {
		return 0
	}
	n := 0
	for _, b := range sp.batches {
		n += b.live
	}
	return n
}

// frontierLen is the frontier's logical length: in-memory plus spilled.
func (st *exploreState) frontierLen() int {
	return len(st.queue) + st.spill.liveCount()
}

// dropSpill deletes every batch file; called at phase end (the queue is
// discarded with the phase, so its spilled tail is too).
func (st *exploreState) dropSpill() {
	if st.spill == nil {
		return
	}
	for _, b := range st.spill.batches {
		os.Remove(b.path)
	}
	st.spill.batches = nil
}

// spillDirLazy returns the directory spill files go to, creating the
// engine-owned temp directory on first use. An empty return means spilling
// is unavailable this run (creation failed; already warned).
func (e *engine) spillDirLazy() string {
	if e.spillDir != "" {
		return e.spillDir
	}
	dir := e.opts.SpillDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "cpr-spill-")
		if err != nil {
			e.warnMem("govern: spill directory unavailable, frontier stays in memory: %v", err)
			e.spillDir = "\x00unavailable"
			return ""
		}
		e.ownSpillDir = true
	} else if err := os.MkdirAll(dir, 0o700); err != nil {
		e.warnMem("govern: spill directory unavailable, frontier stays in memory: %v", err)
		e.spillDir = "\x00unavailable"
		return ""
	}
	e.spillDir = dir
	return dir
}

// spillFrontier writes the frontier's cold tail — everything past the
// keepHot best items under the pop policy — to one batch file and drops it
// from the heap. No-op when the tail is too small to be worth a file.
func (e *engine) spillFrontier(st *exploreState, keepHot int) {
	if keepHot < 1 {
		keepHot = 1
	}
	if len(st.queue) < keepHot+spillMinBatch {
		return
	}
	dir := e.spillDirLazy()
	if dir == "" {
		return
	}
	cmp := less
	if e.opts.Queue == QueueFIFO {
		cmp = lessFIFO
	}
	sort.SliceStable(st.queue, func(i, j int) bool { return cmp(st.queue[i], st.queue[j]) })
	cold := st.queue[keepHot:]

	te := journal.NewTermEncoder()
	var body journal.Encoder
	body.U64(spillVersion)
	body.U64(uint64(len(cold)))
	for _, it := range cold {
		encodeItem(&body, te, it)
	}
	var framed journal.Encoder
	framed.Raw(te.Table())
	framed.Append(body.Bytes())
	path := filepath.Join(dir, fmt.Sprintf("frontier-%06d.spill", e.spillSeq))
	e.spillSeq++
	if err := journal.WriteFileAtomic(path, framed.Bytes()); err != nil {
		e.warnMem("govern: frontier spill failed, keeping tail in memory: %v", err)
		e.memSpillLoadFailures++
		return
	}

	keys := make([]itemKey, len(cold))
	for i, it := range cold {
		keys[i] = keyOf(it)
	}
	if st.spill == nil {
		st.spill = &frontierSpill{}
	}
	st.spill.batches = append(st.spill.batches, &spillBatch{path: path, keys: keys, live: len(keys)})
	e.memSpills++
	e.memSpilledItems += uint64(len(cold))
	// Copy the hot set into a fresh slice so the cold tail's backing array
	// (and the item payloads it pins) is actually collectable.
	st.queue = append(make([]workItem, 0, keepHot), st.queue[:keepHot]...)
}

// reloadForPop makes sure the logical best item under the pop policy is in
// memory, reloading (at most) the one batch whose best key beats every
// in-memory item. Called right before each pop.
func (e *engine) reloadForPop(st *exploreState) {
	sp := st.spill
	if sp == nil || len(sp.batches) == 0 {
		return
	}
	kl := e.popKeyLess()
	for {
		// Prune fully-dead batches first.
		kept := sp.batches[:0]
		for _, b := range sp.batches {
			if b.live > 0 {
				kept = append(kept, b)
			} else {
				os.Remove(b.path)
			}
		}
		sp.batches = kept
		if len(sp.batches) == 0 {
			return
		}
		bestIdx := -1
		var bestKey itemKey
		for i, b := range sp.batches {
			k, ok := b.best(kl)
			if ok && (bestIdx < 0 || kl(k, bestKey)) {
				bestIdx, bestKey = i, k
			}
		}
		if bestIdx < 0 {
			return
		}
		if len(st.queue) > 0 {
			memBest := keyOf(st.queue[0])
			for _, it := range st.queue[1:] {
				if k := keyOf(it); kl(k, memBest) {
					memBest = k
				}
			}
			if kl(memBest, bestKey) {
				return // the in-memory best wins; nothing to reload
			}
		}
		if e.reloadBatch(st, bestIdx) {
			// The reloaded batch's best beat every other batch's best, so
			// memory now holds the logical best.
			return
		}
		// Reload failed (file unreadable): that batch is gone; re-evaluate
		// the survivors.
	}
}

// reloadAllSpilled pulls every spilled item back into memory. The
// checkpointer calls it before encoding a snapshot, so snapshots always
// carry the full logical frontier.
func (e *engine) reloadAllSpilled(st *exploreState) {
	for st.spill != nil && len(st.spill.batches) > 0 {
		e.reloadBatch(st, 0)
	}
}

// reloadBatch reads batch idx back into the queue (skipping dead items)
// and removes it. A read failure drops the batch with a warning — its
// items are lost, counted in MemSpillLoadFailures.
func (e *engine) reloadBatch(st *exploreState, idx int) bool {
	sp := st.spill
	b := sp.batches[idx]
	sp.batches = append(sp.batches[:idx], sp.batches[idx+1:]...)
	items, err := readSpillBatch(b.path)
	os.Remove(b.path)
	if err != nil {
		e.memSpillLoadFailures++
		e.warnMem("govern: frontier spill reload failed, %d item(s) lost: %v", b.live, err)
		return false
	}
	e.memReloads++
	for _, it := range items {
		if b.dead[it.seq] {
			continue
		}
		st.queue = append(st.queue, it)
	}
	return true
}

func readSpillBatch(path string) ([]workItem, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := journal.NewDecoder(data)
	td, err := journal.DecodeTermTable(journal.NewDecoder(d.Raw()))
	if err != nil {
		return nil, err
	}
	if v := d.U64(); d.Err() == nil && v != spillVersion {
		return nil, fmt.Errorf("%w: spill batch version %d, want %d", journal.ErrVersion, v, spillVersion)
	}
	n := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	items := make([]workItem, 0, n)
	for i := uint64(0); i < n; i++ {
		it, err := decodeItem(d, td)
		if err != nil {
			return nil, err
		}
		items = append(items, it)
	}
	return items, nil
}

// pushFrontier appends an item to the logical frontier, evicting the
// logical worst (in-memory or spilled, ranked order — matching what the
// in-memory push has always done) when the frontier is at MaxQueue. The
// candidate is rejected when it is not strictly better than the worst.
func (e *engine) pushFrontier(st *exploreState, it workItem) {
	if st.frontierLen() >= e.opts.MaxQueue {
		wi := -1 // worst in-memory index
		for i := range st.queue {
			if wi < 0 || rankedKeyLess(keyOf(st.queue[wi]), keyOf(st.queue[i])) {
				wi = i
			}
		}
		var worstBatch *spillBatch
		var worstKey itemKey
		haveWorst := wi >= 0
		if haveWorst {
			worstKey = keyOf(st.queue[wi])
		}
		if st.spill != nil {
			for _, b := range st.spill.batches {
				if k, ok := b.worst(rankedKeyLess); ok && (!haveWorst || rankedKeyLess(worstKey, k)) {
					worstBatch, worstKey, haveWorst = b, k, true
				}
			}
		}
		if !haveWorst {
			return // cap is 0-ish and nothing to evict: drop the candidate
		}
		if !rankedKeyLess(keyOf(it), worstKey) {
			return // not strictly better than the logical worst
		}
		if worstBatch != nil {
			worstBatch.markDead(worstKey.seq)
		} else {
			st.queue = append(st.queue[:wi], st.queue[wi+1:]...)
		}
	}
	st.queue = append(st.queue, it)
}
