package core

import (
	"testing"

	"cpr/internal/concolic"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

// divZeroSubject mirrors the paper's §2 example (CVE-2016-3623): a guard
// must be synthesized so the divisions cannot divide by zero. The correct
// developer patch is x == 0 || y == 0.
const divZeroSubject = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

func divZeroJob() Job {
	prog := lang.MustParse(divZeroSubject)
	return Job{
		Program: prog,
		Spec: expr.And(
			expr.Ne(expr.IntVar("x"), expr.Int(0)),
			expr.Ne(expr.IntVar("y"), expr.Int(0)),
		),
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   interval.New(-10, 10),
			Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
			Bool:         []expr.Op{expr.OpOr},
			Arith:        []expr.Op{},
			MaxTemplates: 40, // paper-scale pool; keeps the test fast
		},
		InputBounds: map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
		},
		Budget: Budget{MaxIterations: 25, ValidationIterations: 8},
	}
}

func devPatchDivZero() *expr.Term {
	return expr.Or(
		expr.Eq(expr.IntVar("x"), expr.Int(0)),
		expr.Eq(expr.IntVar("y"), expr.Int(0)),
	)
}

func TestRepairDivZeroEndToEnd(t *testing.T) {
	job := divZeroJob()
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	st := res.Stats
	if st.PInit == 0 || st.PoolInit == 0 {
		t.Fatalf("empty initial pool: %+v", st)
	}
	if st.PFinal >= st.PInit {
		t.Fatalf("no patch-space reduction: init=%d final=%d", st.PInit, st.PFinal)
	}
	if st.PathsExplored == 0 {
		t.Fatalf("no paths explored: %+v", st)
	}
	// The developer patch must be covered by some surviving patch and
	// ranked near the top.
	solver := smt.NewSolver(smt.Options{})
	rank, found := CorrectPatchRank(solver, res.Ranked, devPatchDivZero(), job.InputBounds)
	if !found {
		for i, p := range res.Ranked {
			if i < 15 {
				t.Logf("rank %d: %s (score %.2f)", i+1, p, p.Score)
			}
		}
		t.Fatalf("correct patch not in final pool (size %d)", res.Pool.Size())
	}
	if rank > 10 {
		t.Errorf("correct patch ranked %d, want top-10", rank)
	}
	t.Logf("reduction %.0f%%, φE=%d φS=%d, correct rank %d, pool %d→%d",
		st.ReductionRatio()*100, st.PathsExplored, st.PathsSkipped, rank, st.PoolInit, st.PoolFinal)
}

// TestRepairedProgramActuallySafe: the top-ranked non-deletion patch must
// make the program crash-free on a grid of inputs.
func TestRepairedProgramActuallySafe(t *testing.T) {
	job := divZeroJob()
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	var best *patch.Patch
	for _, p := range res.Ranked {
		if !p.Expr.IsConst() {
			best = p
			break
		}
	}
	if best == nil {
		t.Fatal("no non-deletion patch survived")
	}
	params, ok := best.AnyParams()
	if !ok {
		t.Fatalf("no parameters for %s", best)
	}
	for x := int64(-3); x <= 3; x++ {
		for y := int64(-3); y <= 3; y++ {
			out := interp.Run(job.Program, map[string]int64{"x": x, "y": y}, interp.Options{
				Hole:       best.Expr,
				HoleParams: params,
			})
			if out.Crashed() {
				t.Fatalf("patched program crashed at x=%d y=%d with %s %v", x, y, best, params)
			}
		}
	}
}

// TestValidationReproducesPaperInitialConstraints checks that the pinned
// validation phase shrinks the Figure-1 templates exactly as the paper's
// step I table shows.
func TestValidationReproducesPaperInitialConstraints(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 1 // effectively validation only
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	x, y := expr.IntVar("x"), expr.IntVar("y")
	a, b := expr.IntVar("a"), expr.IntVar("b")
	find := func(tpl *expr.Term) *patch.Patch {
		c := expr.Simplify(tpl)
		for _, p := range res.Pool.Patches {
			if p.Expr == c {
				return p
			}
		}
		return nil
	}
	// Paper step I: x ≥ a with a ∈ [-10, 7] (18 patches).
	if p := find(expr.Ge(x, a)); p == nil || p.CountConcrete() != 18 {
		t.Errorf("x >= a: %v (want 18 concrete)", p)
	}
	// y < b with b ∈ [1, 10] (10 patches).
	if p := find(expr.Lt(y, b)); p == nil || p.CountConcrete() != 10 {
		t.Errorf("y < b: %v (want 10 concrete)", p)
	}
	// x == a || y == b with (a=7 ∧ b any) ∨ (b=0 ∧ a any): 41 patches.
	if p := find(expr.Or(expr.Eq(x, a), expr.Eq(y, b))); p == nil || p.CountConcrete() != 41 {
		t.Errorf("x == a || y == b: %v (want 41 concrete)", p)
	}
	// The contradiction patch (false) cannot repair the failing test and
	// must be gone; the tautology patch (true) survives.
	if find(expr.False()) != nil {
		t.Error("patch `false` survived validation")
	}
	if find(expr.True()) == nil {
		t.Error("patch `true` should survive (deletion patches stay in the pool)")
	}
}

func TestDeletionPatchDeprioritized(t *testing.T) {
	job := divZeroJob()
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	// true survives but must rank below the top.
	for i, p := range res.Ranked {
		if p.Expr == expr.True() {
			if i == 0 {
				t.Fatalf("deletion patch ranked first")
			}
			if p.Deletions == 0 {
				t.Fatalf("deletion patch has no deletion marks")
			}
			return
		}
	}
	t.Fatal("true patch not found in pool")
}

// TestPickNewInputPathReduction tests the §3.4 mechanism directly: a flip
// whose path contradicts every pool patch is pruned, and re-admitted when
// the ablation disables the patch-feasibility check (the Figure 1 step V
// situation).
func TestPickNewInputPathReduction(t *testing.T) {
	job := divZeroJob()
	x, y := expr.IntVar("x"), expr.IntVar("y")
	out := expr.BoolVar("patch!out!0")
	collapsed := patch.New(1, expr.Or(expr.Eq(x, expr.IntVar("a")), expr.Eq(y, expr.IntVar("b"))),
		map[string]interval.Interval{"a": interval.Point(0), "b": interval.Point(0)})
	mkEngine := func(disable bool) *engine {
		e := &engine{
			job:    job,
			opts:   Options{DisablePathReduction: disable}.withDefaults(),
			solver: smt.NewSolver(smt.Options{}),
			pool:   &patch.Pool{Patches: []*patch.Patch{collapsed.Clone()}},
		}
		e.curBounds = e.inputBounds()
		return e
	}
	flip := concolic.Flip{
		// Clean-path prefix ¬out ∧ x ≠ 0, flipped toward the y-crash.
		Prefix:  []*expr.Term{expr.Not(out), expr.Ne(x, expr.Int(0))},
		Negated: expr.Eq(y, expr.Int(0)),
		Depth:   2,
		HoleHits: []concolic.HoleHit{{
			Out:      out,
			Snapshot: map[string]*expr.Term{"x": x, "y": y},
		}},
	}
	e := mkEngine(false)
	if _, ok, unknown := e.pickNewInput(flip, e.inputBounds(), e.solver); ok || unknown {
		t.Fatal("path reduction should prune: no pool patch admits ¬out ∧ x≠0 ∧ y=0")
	}
	e = mkEngine(true)
	item, ok, _ := e.pickNewInput(flip, e.inputBounds(), e.solver)
	if !ok {
		t.Fatal("ablation should admit the input-feasible path")
	}
	if item.input["y"] != 0 || item.input["x"] == 0 {
		t.Fatalf("ablation model should satisfy the path: %v", item.input)
	}
	// A flip every patch admits is kept either way.
	flip.Negated = expr.Ne(y, expr.Int(0))
	e = mkEngine(false)
	if _, ok, _ := e.pickNewInput(flip, e.inputBounds(), e.solver); !ok {
		t.Fatal("feasible flip wrongly pruned")
	}
}

// TestPathReductionAblationEndToEnd compares φS with and without the
// pruning on the full repair loop (counts include the pinned validation
// exploration, where flips contradicting the pinned input are pruned).
func TestPathReductionAblationEndToEnd(t *testing.T) {
	job := divZeroJob()
	withRed, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	without, err := Repair(job, Options{DisablePathReduction: true})
	if err != nil {
		t.Fatalf("Repair (no reduction): %v", err)
	}
	if withRed.Stats.PathsSkipped == 0 {
		t.Errorf("no paths skipped with reduction enabled: %+v", withRed.Stats)
	}
	t.Logf("with reduction: φE=%d φS=%d; without: φE=%d φS=%d",
		withRed.Stats.PathsExplored, withRed.Stats.PathsSkipped,
		without.Stats.PathsExplored, without.Stats.PathsSkipped)
}

func TestAnytimeProperty(t *testing.T) {
	// More budget ⇒ at least as much reduction (gradual correctness, §1).
	job := divZeroJob()
	job.Budget.MaxIterations = 2
	small, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair small: %v", err)
	}
	job.Budget.MaxIterations = 25
	large, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair large: %v", err)
	}
	if large.Stats.PFinal > small.Stats.PFinal {
		t.Errorf("more budget increased the pool: %d vs %d", large.Stats.PFinal, small.Stats.PFinal)
	}
}

func TestRepairErrors(t *testing.T) {
	prog := lang.MustParse(`void main(int x) { int y = x + 1; }`)
	if _, err := Repair(Job{Program: prog, FailingInputs: []map[string]int64{{"x": 0}}}, Options{}); err != ErrNoHole {
		t.Fatalf("want ErrNoHole, got %v", err)
	}
	prog2 := lang.MustParse(`void main(int x) { if (__HOLE__) { return; } }`)
	if _, err := Repair(Job{Program: prog2}, Options{}); err != ErrNoFailingInput {
		t.Fatalf("want ErrNoFailingInput, got %v", err)
	}
}

func TestCoversEquivalence(t *testing.T) {
	solver := smt.NewSolver(smt.Options{})
	bounds := map[string]interval.Interval{
		"x": interval.New(-100, 100),
		"y": interval.New(-100, 100),
	}
	x, y, a, b := expr.IntVar("x"), expr.IntVar("y"), expr.IntVar("a"), expr.IntVar("b")
	// x == a || y == b with a=0, b=0 covers x == 0 || y == 0.
	p := patch.New(1, expr.Or(expr.Eq(x, a), expr.Eq(y, b)), map[string]interval.Interval{
		"a": interval.New(-10, 10), "b": interval.New(-10, 10),
	})
	dev := devPatchDivZero()
	ok, params, err := Covers(solver, p, dev, bounds, 0)
	if err != nil || !ok {
		t.Fatalf("Covers: %v %v", ok, err)
	}
	if params["a"] != 0 || params["b"] != 0 {
		t.Fatalf("covering params %v, want a=0 b=0", params)
	}
	// x >= a cannot cover it.
	q := patch.New(2, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 10)})
	ok, _, err = Covers(solver, q, dev, bounds, 0)
	if err != nil || ok {
		t.Fatalf("x >= a should not cover the developer patch")
	}
	// A syntactically identical concrete patch trivially covers.
	r := patch.New(3, expr.Simplify(dev), nil)
	ok, _, err = Covers(solver, r, dev, bounds, 0)
	if err != nil || !ok {
		t.Fatalf("identical patch should cover: %v %v", ok, err)
	}
	// Sort mismatch is not an error, just no.
	s2 := patch.New(4, expr.Add(x, a), map[string]interval.Interval{"a": interval.New(-10, 10)})
	ok, _, err = Covers(solver, s2, dev, bounds, 0)
	if err != nil || ok {
		t.Fatalf("sort mismatch should not cover")
	}
}

func TestFormatTopPatches(t *testing.T) {
	job := divZeroJob()
	job.Budget.MaxIterations = 3
	res, err := Repair(job, Options{})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	lines := FormatTopPatches(res, 3)
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("FormatTopPatches: %v", lines)
	}
}
