package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cpr/internal/smt"
)

// workerCtx is the per-worker slice of engine state: its own solvers, so
// parallel tasks never contend on solver internals. workers[0] aliases the
// engine's own solvers — with Workers=1 the engine runs every query on
// exactly the solver instances the sequential engine would.
type workerCtx struct {
	solver      *smt.Solver
	retrySolver *smt.Solver
}

// newWorkers builds the worker pool. The first worker wraps the engine's
// existing solvers; the rest get fresh solvers with identical options
// (sharing opts.SMT.Cache, so work one worker does is a hit for all).
func (e *engine) newWorkers(n int) []*workerCtx {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	ws := make([]*workerCtx, n)
	ws[0] = &workerCtx{solver: e.solver, retrySolver: e.retrySolver}
	for i := 1; i < n; i++ {
		ws[i] = &workerCtx{
			solver:      smt.NewSolver(e.opts.SMT),
			retrySolver: smt.NewSolver(reducedSMT(e.opts.SMT)),
		}
	}
	return ws
}

// fanOut runs fn(worker, i) for every i in [0, n), spreading indices over
// the engine's workers via an atomic work-stealing counter. Determinism
// contract: callers only pass fn whose effect on shared state for index i
// is independent of the other indices' scheduling (results slots, per-item
// state, atomic counters), so any interleaving computes the same values —
// the coordinator then merges them in index order.
//
// With a single worker (or a single task) the loop runs inline on
// workers[0], with no goroutines: Options.Workers=1 replays the sequential
// engine's exact call sequence.
//
// A panicking task does not kill the process or lose the batch: panics are
// captured per index and the lowest-index one is re-raised on the caller
// after the batch drains, mirroring where the sequential loop would have
// thrown.
func (e *engine) fanOut(n int, fn func(w *workerCtx, i int)) {
	if n <= 0 {
		return
	}
	if len(e.workers) == 1 || n == 1 {
		w := e.workers[0]
		for i := 0; i < n; i++ {
			fn(w, i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Bool
		wg       sync.WaitGroup
	)
	panics := make([]any, n)
	nw := len(e.workers)
	if nw > n {
		nw = n
	}
	for wi := 0; wi < nw; wi++ {
		w := e.workers[wi]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runTask(w, i, fn, panics, &panicked)
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		for _, r := range panics {
			if r != nil {
				panic(r)
			}
		}
	}
}

func runTask(w *workerCtx, i int, fn func(w *workerCtx, i int), panics []any, panicked *atomic.Bool) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
			panicked.Store(true)
		}
	}()
	fn(w, i)
}
