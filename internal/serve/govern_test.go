// Memory-governance tests for the daemon: admission sheds under
// pressure, shard fleets narrow, and a GOMEMLIMIT-constrained process
// survives a memory storm — sheds new work with 503 + Retry-After,
// finishes everything it accepted, and shows the episode in /stats.
package serve

import (
	"fmt"
	"runtime/debug"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/faultinject"
	"cpr/internal/govern"
)

// stormWatermarks are unreachable by the test's real heap; only the
// faultinject allocation spike crosses them, so every rung transition in
// these tests is deterministic.
func stormWatermarks() govern.Config {
	return govern.Config{
		SoftBytes:     1 << 40,
		HighBytes:     1 << 41,
		CriticalBytes: 1 << 42,
		// Transient critical must not stop accepted jobs mid-test.
		CriticalStopPolls: 1 << 30,
	}
}

// spike forces the governor's next polls to classify at the given rung
// by inflating the sampled heap past the matching watermark.
func spike(t *testing.T, g *govern.Governor, bytes uint64, want govern.Rung) {
	t.Helper()
	faultinject.Deactivate()
	if bytes > 0 {
		faultinject.Activate(&faultinject.Plan{MemSpikeBytes: bytes, MemSpikeEvery: 1})
	}
	if got := g.Poll(); got != want {
		t.Fatalf("forced poll classified %s, want %s", got, want)
	}
}

// TestMemoryStormShedsAndSurvives is the chaos suite's headline: a daemon
// running under a hard Go memory limit accepts a batch of real repair
// jobs, gets hit by a storm that drives the governor critical, sheds
// every new submit with 503 + Retry-After while the accepted jobs keep
// running governed, and — once pressure clears — finishes all of them.
// Zero OOM by construction: the process runs the whole episode under
// debug.SetMemoryLimit.
func TestMemoryStormShedsAndSurvives(t *testing.T) {
	prev := debug.SetMemoryLimit(1 << 30)
	defer debug.SetMemoryLimit(prev)
	defer faultinject.Deactivate()

	g := govern.New(stormWatermarks())
	s := newTestServer(t, Config{Runners: 2, Govern: g, GovernTick: -1, Incremental: true})
	s.Start()
	defer s.Drain(30 * time.Second)

	// Phase 1: healthy daemon admits real work.
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, mustSubmit(t, s, quickSpec("acme", fmt.Sprintf("storm-%d", i))).ID)
	}

	// Phase 2: the storm. The spike pushes the sampled heap far past the
	// critical watermark; every submit must shed with 503 + Retry-After.
	spike(t, g, 1<<43, govern.RungCritical)
	const stormSubmits = 8
	for i := 0; i < stormSubmits; i++ {
		_, aerr := s.Submit(quickSpec("acme", fmt.Sprintf("shed-%d", i)))
		if aerr == nil {
			t.Fatal("critical-rung submit was admitted")
		}
		if aerr.Status != 503 {
			t.Fatalf("shed status = %d, want 503", aerr.Status)
		}
		if aerr.RetryAfter <= 0 {
			t.Fatal("memory shed carries no Retry-After")
		}
	}

	// Phase 3: pressure clears; everything accepted still finishes.
	spike(t, g, 0, govern.RungNone)
	for _, id := range ids {
		v := waitTerminal(t, s, id, 60*time.Second)
		if v.State != StateDone || v.Result == nil {
			t.Fatalf("accepted job %s did not survive the storm: %+v", id, v)
		}
	}

	sv := s.Stats()
	if sv.Jobs.RejectedMemory != stormSubmits {
		t.Errorf("global RejectedMemory = %d, want %d", sv.Jobs.RejectedMemory, stormSubmits)
	}
	if sv.Tenants["acme"].RejectedMemory != stormSubmits {
		t.Errorf("tenant RejectedMemory = %d, want %d", sv.Tenants["acme"].RejectedMemory, stormSubmits)
	}
	if sv.Jobs.Done != 3 {
		t.Errorf("Done = %d, want all 3 accepted jobs", sv.Jobs.Done)
	}
	if sv.Mem == nil || sv.Mem.Polls == 0 {
		t.Fatal("/stats carries no governor counters")
	}
	if sv.Mem.CriticalPolls == 0 {
		t.Error("the critical episode left no CriticalPolls in /stats")
	}
	if sv.MemRung != govern.RungNone.String() {
		t.Errorf("mem_rung = %q after the storm, want %q", sv.MemRung, govern.RungNone)
	}
}

// TestMemShedPrefersDrainingRetries: at the high rung the daemon stops
// admitting only while it still owes retries; with no retry backlog the
// high rung admits normally, and critical always sheds.
func TestMemShedPrefersDrainingRetries(t *testing.T) {
	defer faultinject.Deactivate()
	g := govern.New(stormWatermarks())
	s := newTestServer(t, Config{Runners: -1, Govern: g, GovernTick: -1})

	// High rung, no backlog: admit.
	spike(t, g, 1<<41, govern.RungHigh)
	mustSubmit(t, s, quickSpec("t1", "high-no-backlog"))

	// High rung with a retry backlog: shed until the backlog drains.
	s.mu.Lock()
	s.tenantLocked("t2").retrying = 1
	s.mu.Unlock()
	if _, aerr := s.Submit(quickSpec("t1", "high-backlog")); aerr == nil || aerr.Status != 503 {
		t.Fatalf("high rung with retry backlog: got %+v, want 503", aerr)
	}
	s.mu.Lock()
	s.tenantLocked("t2").retrying = 0
	s.mu.Unlock()
	mustSubmit(t, s, quickSpec("t1", "high-backlog-drained"))

	// Critical: shed unconditionally.
	spike(t, g, 1<<43, govern.RungCritical)
	if _, aerr := s.Submit(quickSpec("t1", "critical")); aerr == nil || aerr.Status != 503 {
		t.Fatalf("critical rung: got %+v, want 503", aerr)
	}
	if got := s.Stats().Jobs.RejectedMemory; got != 2 {
		t.Errorf("RejectedMemory = %d, want 2", got)
	}
}

// TestMemPressureNarrowsShardFleets: the shard factory asks the budget
// for the full fleet when unpressured, half at the high rung, and none at
// critical (the attempt runs locally), counting each narrowing.
func TestMemPressureNarrowsShardFleets(t *testing.T) {
	defer faultinject.Deactivate()
	g := govern.New(stormWatermarks())
	var grants []int
	fake := &fakeDist{}
	s := newTestServer(t, Config{
		Runners: -1, Shards: 4, ShardBudget: 8, Govern: g, GovernTick: -1,
		MakeDistributor: func(n int) func(core.Job, core.Options) (core.Distributor, error) {
			grants = append(grants, n)
			return func(core.Job, core.Options) (core.Distributor, error) { return fake, nil }
		},
	})
	f := s.shardFactory()
	run := func() core.Distributor {
		d, err := f(core.Job{}, core.Options{})
		if err != nil {
			t.Fatalf("shardFactory: %v", err)
		}
		if d != nil {
			d.Close()
		}
		return d
	}

	if d := run(); d == nil {
		t.Fatal("unpressured attempt got no fleet")
	}
	spike(t, g, 1<<41, govern.RungHigh)
	if d := run(); d == nil {
		t.Fatal("high-rung attempt got no fleet (want a narrowed one)")
	}
	spike(t, g, 1<<43, govern.RungCritical)
	if d := run(); d != nil {
		t.Fatal("critical-rung attempt built a fleet, want local")
	}

	if len(grants) != 2 || grants[0] != 4 || grants[1] != 2 {
		t.Errorf("fleet grants = %v, want [4 2]", grants)
	}
	if got := s.Stats().Jobs.MemNarrowedFleets; got != 2 {
		t.Errorf("MemNarrowedFleets = %d, want 2 (one halved, one zeroed)", got)
	}
	if got := s.Stats().ShardSlotsInUse; got != 0 {
		t.Errorf("slots leaked: %d in use", got)
	}
}

// TestGovernedDaemonBitIdentical: the same job through a governed daemon
// under forced high pressure and a plain one — identical repair results
// (patches, repaired program, and the deterministic stats; the byte-level
// claim is the core differential suite's), with the governance episode
// visible in the aggregated engine stats.
func TestGovernedDaemonBitIdentical(t *testing.T) {
	plain := newTestServer(t, Config{Runners: 1, Incremental: true})
	plain.Start()
	defer plain.Drain(30 * time.Second)
	pv := mustSubmit(t, plain, divZeroSpec("acme", "plain"))
	want := waitTerminal(t, plain, pv.ID, 60*time.Second)

	faultinject.Activate(&faultinject.Plan{MemRungEvery: 1, MemRung: int(govern.RungHigh)})
	defer faultinject.Deactivate()
	g := govern.New(govern.Config{CriticalStopPolls: 1 << 30})
	governed := newTestServer(t, Config{Runners: 1, Incremental: true, Govern: g, GovernTick: -1})
	governed.Start()
	defer governed.Drain(30 * time.Second)
	gv := mustSubmit(t, governed, divZeroSpec("acme", "governed"))
	got := waitTerminal(t, governed, gv.ID, 60*time.Second)

	if stableFingerprint(got.Result) != stableFingerprint(want.Result) {
		t.Fatalf("governed daemon diverged:\n--- want ---\n%s\n--- got ---\n%s",
			stableFingerprint(want.Result), stableFingerprint(got.Result))
	}
	eng := governed.Stats().Engine
	if eng.GovernPolls == 0 || eng.MemRungHigh == 0 {
		t.Fatalf("governance episode missing from aggregated stats: %+v", eng)
	}
	if eng.MemCacheShrinks == 0 {
		t.Error("no cache shrinks aggregated under forced high pressure")
	}
}
