package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"cpr/internal/bench"
	"cpr/internal/cancel"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/synth"
)

// JobSpec is the wire form of a repair job: the body of POST /jobs. A job
// is either a benchmark subject (Subject set to "Project/BugID") or an
// inline program (Program + Spec + Failing), mirroring the cpr CLI's two
// modes. All budgets are deterministic iteration budgets, so a job
// interrupted by a drain or crash resumes to the bit-identical result; an
// optional wall-clock TimeoutMS adds the anytime cutoff on top (at the
// cost of that determinism, exactly as with the CLI's -timeout).
type JobSpec struct {
	// Tenant names the submitting tenant; admission control (quotas, rate
	// limits) and the /stats breakdown are per tenant. Empty defaults to
	// "default"; the X-Tenant request header overrides an empty field.
	Tenant string `json:"tenant,omitempty"`
	// Label is an optional caller-chosen name, echoed in status views and
	// usable to correlate jobs across daemon restarts.
	Label string `json:"label,omitempty"`

	// Subject selects a benchmark subject ("Project/BugID") instead of an
	// inline program.
	Subject string `json:"subject,omitempty"`

	// Program is the mini-C source with a __HOLE__ patch location.
	Program string `json:"program,omitempty"`
	// Spec is the specification at the bug location (s-expression).
	Spec string `json:"spec,omitempty"`
	// Failing are the error-exposing inputs (at least one).
	Failing []map[string]int64 `json:"failing,omitempty"`
	// Passing optionally seeds exploration with passing inputs.
	Passing []map[string]int64 `json:"passing,omitempty"`
	// Params are the template parameter names (default ["a","b"]).
	Params []string `json:"params,omitempty"`
	// ParamLo/ParamHi bound the parameter range (default [-10, 10]).
	ParamLo *int64 `json:"param_lo,omitempty"`
	ParamHi *int64 `json:"param_hi,omitempty"`
	// InputLo/InputHi bound every input during exploration
	// (default [-100, 100]).
	InputLo *int64 `json:"input_lo,omitempty"`
	InputHi *int64 `json:"input_hi,omitempty"`
	// MaxTemplates caps the synthesized template pool (0 = engine default).
	MaxTemplates int `json:"max_templates,omitempty"`
	// ArithOps, CmpOps, BoolOps restrict the synthesis operator components,
	// spelled as in SMT-LIB ("+", "div", "=", "distinct", "<=", "or", ...).
	// Absent fields mean the full default sets; an explicit empty list
	// disables that operator class.
	ArithOps *[]string `json:"arith_ops,omitempty"`
	CmpOps   *[]string `json:"cmp_ops,omitempty"`
	BoolOps  *[]string `json:"bool_ops,omitempty"`

	// Budget is the main-loop iteration budget (0 = engine default).
	Budget int `json:"budget,omitempty"`
	// ValidationBudget bounds the per-failing-input validation phase
	// (0 = engine default).
	ValidationBudget int `json:"validation_budget,omitempty"`
	// TimeoutMS is a per-attempt wall-clock cutoff in milliseconds
	// (0 = none). A timed-out attempt still completes with its best-so-far
	// pool (the engine's anytime contract), but resumed results are then
	// only best-effort identical.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Top is how many ranked patches the result carries (default 5).
	Top int `json:"top,omitempty"`
}

// Key is the identity used by fault injection and log lines:
// "tenant/label" (or "tenant/-" for unlabeled jobs).
func (s JobSpec) Key() string {
	label := s.Label
	if label == "" {
		label = "-"
	}
	return s.Tenant + "/" + label
}

func orDefault(p *int64, def int64) int64 {
	if p == nil {
		return def
	}
	return *p
}

// opsByName maps the SMT-LIB spellings accepted in JobSpec operator lists
// to the synthesizable operators.
var opsByName = map[string]expr.Op{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul,
	"div": expr.OpDiv, "rem": expr.OpRem,
	"=": expr.OpEq, "distinct": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
	"and": expr.OpAnd, "or": expr.OpOr, "not": expr.OpNot,
}

// parseOps lowers a JobSpec operator list: a nil pointer keeps the
// synthesizer's default set (nil slice), an explicit list — possibly
// empty — selects exactly those operators.
func parseOps(names *[]string) ([]expr.Op, error) {
	if names == nil {
		return nil, nil
	}
	ops := make([]expr.Op, 0, len(*names))
	for _, n := range *names {
		op, ok := opsByName[n]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", n)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// buildJob validates the spec and lowers it to the engine's job form.
// Every error here is an admission-time 400: nothing invalid reaches the
// queue or the journal.
func buildJob(spec JobSpec) (core.Job, error) {
	if spec.Subject != "" {
		parts := strings.SplitN(spec.Subject, "/", 2)
		if len(parts) != 2 {
			return core.Job{}, fmt.Errorf("subject must be Project/BugID, got %q", spec.Subject)
		}
		s := bench.Find(parts[0], parts[1])
		if s == nil {
			return core.Job{}, fmt.Errorf("unknown subject %q", spec.Subject)
		}
		if s.Unsupported != "" {
			return core.Job{}, fmt.Errorf("subject %s is not runnable: %s", spec.Subject, s.Unsupported)
		}
		return s.Job(core.Budget{
			MaxIterations:        spec.Budget,
			ValidationIterations: spec.ValidationBudget,
		})
	}
	if spec.Program == "" {
		return core.Job{}, errors.New("job needs either subject or program")
	}
	prog, err := lang.Parse(spec.Program)
	if err != nil {
		return core.Job{}, fmt.Errorf("program: %v", err)
	}
	if prog.HolePos == nil {
		return core.Job{}, core.ErrNoHole
	}
	if len(spec.Failing) == 0 {
		return core.Job{}, core.ErrNoFailingInput
	}
	var names []string
	for _, p := range prog.Inputs() {
		names = append(names, p.Name)
	}
	specTerm := expr.True()
	if spec.Spec != "" {
		specTerm, err = expr.Parse(spec.Spec, expr.IntVarsFrom(names...))
		if err != nil {
			return core.Job{}, fmt.Errorf("spec: %v", err)
		}
	}
	params := spec.Params
	if len(params) == 0 {
		params = []string{"a", "b"}
	}
	arith, err := parseOps(spec.ArithOps)
	if err != nil {
		return core.Job{}, fmt.Errorf("arith_ops: %v", err)
	}
	cmp, err := parseOps(spec.CmpOps)
	if err != nil {
		return core.Job{}, fmt.Errorf("cmp_ops: %v", err)
	}
	boolOps, err := parseOps(spec.BoolOps)
	if err != nil {
		return core.Job{}, fmt.Errorf("bool_ops: %v", err)
	}
	vars := map[string]lang.Type{}
	bounds := map[string]interval.Interval{}
	inLo, inHi := orDefault(spec.InputLo, -100), orDefault(spec.InputHi, 100)
	for _, p := range prog.Inputs() {
		vars[p.Name] = p.Type
		bounds[p.Name] = interval.New(inLo, inHi)
	}
	return core.Job{
		Program:       prog,
		Spec:          specTerm,
		FailingInputs: spec.Failing,
		PassingInputs: spec.Passing,
		Components: synth.Components{
			Vars:         vars,
			Params:       params,
			ParamRange:   interval.New(orDefault(spec.ParamLo, -10), orDefault(spec.ParamHi, 10)),
			Arith:        arith,
			Cmp:          cmp,
			Bool:         boolOps,
			MaxTemplates: spec.MaxTemplates,
		},
		InputBounds: bounds,
		Budget: core.Budget{
			MaxIterations:        spec.Budget,
			ValidationIterations: spec.ValidationBudget,
		},
	}, nil
}

// State is a job's lifecycle state.
type State string

// Job lifecycle states. Queued, Running, RetryWait, and Interrupted are
// live; the rest are terminal. An accepted job always reaches a terminal
// state — if not in this daemon process, then in the one that resumes the
// journal.
const (
	// StateQueued: accepted, durable in the journal, waiting for a runner.
	StateQueued State = "queued"
	// StateRunning: an attempt is executing on a runner.
	StateRunning State = "running"
	// StateRetryWait: the last attempt failed transiently; a backoff timer
	// will requeue it.
	StateRetryWait State = "retry-wait"
	// StateInterrupted: the attempt was cut by a drain; the job resumes
	// from its engine checkpoint after a restart.
	StateInterrupted State = "interrupted"
	// StateDone: completed with a result.
	StateDone State = "done"
	// StateCancelled: cancelled by the client.
	StateCancelled State = "cancelled"
	// StateDeadLetter: every attempt failed; the job is parked with its
	// last error and will not run again.
	StateDeadLetter State = "dead-letter"
	// StateExpired: the job exceeded the queue-wait timeout before any
	// runner picked it up (load shedding of stale work).
	StateExpired State = "expired"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateCancelled, StateDeadLetter, StateExpired:
		return true
	}
	return false
}

// Result is the wire form of a completed repair.
type Result struct {
	// TopPatches are the ranked patch lines (same rendering as the CLI).
	TopPatches []string `json:"top_patches"`
	// Repaired is the program with the best patch filled in (inline jobs
	// and subjects alike), empty when the pool emptied.
	Repaired string `json:"repaired,omitempty"`
	// Stats are the engine's run measurements.
	Stats core.Stats `json:"stats"`
}

// StatusView is the wire form of a job's state: GET /jobs/{id}, list
// entries, and stream events.
type StatusView struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Label    string  `json:"label,omitempty"`
	State    State   `json:"state"`
	Attempts int     `json:"attempts"`
	Error    string  `json:"error,omitempty"`
	RetryAt  int64   `json:"retry_at_unix_ms,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// job is the scheduler's mutable record for one accepted job. All fields
// besides the immutable identity are guarded by the server mutex.
type job struct {
	id        string
	spec      JobSpec
	core      core.Job
	submitSeq uint64

	state    State
	attempts int
	lastErr  string
	result   *Result
	retryAt  time.Time

	// resume tells the next attempt to load the engine checkpoint left by
	// a previous attempt (journal replay, drain, or a failed attempt).
	resume bool
	// drained marks a running attempt cut by Drain: its outcome is
	// discarded and the job is left non-terminal for the next process.
	drained bool
	// cancelRequested marks a client cancel of a running attempt.
	cancelRequested bool
	// tok cancels the in-flight attempt.
	tok *cancel.Token
	// enqueuedAt drives the queue-wait timeout.
	enqueuedAt time.Time
	// watchers receive state transitions for /jobs/{id}/stream. Sends are
	// non-blocking: a slow or stuck client loses intermediate events, never
	// stalls the scheduler.
	watchers []chan StatusView
}

func (j *job) view() StatusView {
	v := StatusView{
		ID:       j.id,
		Tenant:   j.spec.Tenant,
		Label:    j.spec.Label,
		State:    j.state,
		Attempts: j.attempts,
		Error:    j.lastErr,
		Result:   j.result,
	}
	if j.state == StateRetryWait && !j.retryAt.IsZero() {
		v.RetryAt = j.retryAt.UnixMilli()
	}
	return v
}

// buildResult renders the engine outcome into the wire form.
func buildResult(j core.Job, res *core.Result, top int) *Result {
	if top <= 0 {
		top = 5
	}
	out := &Result{TopPatches: core.FormatTopPatches(res, top), Stats: res.Stats}
	if len(res.Ranked) > 0 {
		best := res.Ranked[0]
		if params, ok := best.AnyParams(); ok {
			sub := make(map[string]*expr.Term, len(params))
			for k, v := range params {
				sub[k] = expr.Int(v)
			}
			out.Repaired = lang.Format(j.Program, expr.CString(expr.Simplify(expr.Subst(best.Expr, sub))))
		}
	}
	return out
}

func (r *Result) marshal() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// A Result is plain data; marshal cannot fail. Keep the journal
		// well-formed regardless.
		b = []byte(`{"top_patches":[]}`)
	}
	return b
}
