package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxSpecBytes bounds a POST /jobs body; oversized specs are a client
// error, not a memory commitment.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit a JobSpec  → 202 StatusView,
//	                          400 invalid, 429 rate/quota (Retry-After),
//	                          503 queue full, draining, or memory
//	                          pressure (Retry-After)
//	GET    /jobs[?tenant=t]   list job views in submit order
//	GET    /jobs/{id}         one job's view
//	DELETE /jobs/{id}         cancel a job
//	GET    /jobs/{id}/stream  ndjson stream of state transitions until
//	                          the job is terminal
//	GET    /healthz           process liveness
//	GET    /readyz            200 while admitting, 503 once draining
//	GET    /stats             StatsView: global, per-tenant, engine totals
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("body: %v", err))
		return
	}
	if spec.Tenant == "" {
		spec.Tenant = r.Header.Get("X-Tenant")
	}
	view, aerr := s.Submit(spec)
	if aerr != nil {
		if aerr.RetryAfter > 0 {
			// Retry-After is in whole seconds; round up so clients never
			// retry before the bucket actually refills.
			secs := int64((aerr.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeErr(w, aerr.Status, aerr.Msg)
		return
	}
	writeJSON(w, http.StatusAccepted, view)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleStream writes one JSON line per state transition until the job is
// terminal or the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ch := s.Watch(r.PathValue("id"))
	if ch == nil {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(v); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
