// Shard-budget tests: concurrent job attempts share a daemon-wide
// semaphore of shard worker processes. An attempt takes what is free,
// runs narrower (or fully local) under contention, returns its slots when
// its fleet closes — and the repair result never depends on what it got.
package serve

import (
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/shard"
	"cpr/internal/smt"
)

type fakeDist struct{ closed int }

func (f *fakeDist) RunFlips(core.FlipBatch) []core.FlipOutcome      { return nil }
func (f *fakeDist) RunReduce(core.ReduceBatch) []core.ReduceOutcome { return nil }
func (f *fakeDist) Counters() core.DistCounters                     { return core.DistCounters{} }
func (f *fakeDist) SolverStats() smt.Stats                          { return smt.Stats{} }
func (f *fakeDist) Close() error                                    { f.closed++; return nil }

// TestShardBudgetAccounting: the semaphore grants min(want, free), counts
// sharded and degraded attempts, and release restores capacity.
func TestShardBudgetAccounting(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1, Shards: 4, ShardBudget: 6})
	if got := s.acquireShards(4); got != 4 {
		t.Fatalf("first acquire = %d, want 4", got)
	}
	if got := s.acquireShards(4); got != 2 {
		t.Fatalf("second acquire = %d, want 2 (budget 6, 4 held)", got)
	}
	if got := s.acquireShards(4); got != 0 {
		t.Fatalf("third acquire = %d, want 0 (budget exhausted)", got)
	}
	sv := s.Stats()
	if sv.ShardSlotsInUse != 6 || sv.ShardBudget != 6 {
		t.Errorf("stats slots %d/%d, want 6/6", sv.ShardSlotsInUse, sv.ShardBudget)
	}
	if sv.Jobs.ShardedAttempts != 2 {
		t.Errorf("ShardedAttempts = %d, want 2 (the zero-grant attempt ran local)", sv.Jobs.ShardedAttempts)
	}
	if sv.Jobs.ShardDegradedAttempts != 2 {
		t.Errorf("ShardDegradedAttempts = %d, want 2 (one partial, one zero grant)", sv.Jobs.ShardDegradedAttempts)
	}
	s.releaseShards(4)
	s.releaseShards(2)
	if sv := s.Stats(); sv.ShardSlotsInUse != 0 {
		t.Errorf("slots in use after release = %d, want 0", sv.ShardSlotsInUse)
	}
	if got := s.acquireShards(4); got != 4 {
		t.Errorf("acquire after release = %d, want 4", got)
	}
}

// TestShardFactoryLazyAcquireAndRelease: slots are taken only when the
// engine actually builds the fleet, a nil-distributor return means "run
// locally", and Close returns the slots exactly once.
func TestShardFactoryLazyAcquireAndRelease(t *testing.T) {
	fake := &fakeDist{}
	s := newTestServer(t, Config{
		Runners: -1, Shards: 2, ShardBudget: 2,
		MakeDistributor: func(n int) func(core.Job, core.Options) (core.Distributor, error) {
			if n != 2 {
				t.Errorf("MakeDistributor got %d, want the full grant of 2", n)
			}
			return func(core.Job, core.Options) (core.Distributor, error) { return fake, nil }
		},
	})
	f := s.shardFactory()
	if s.Stats().ShardSlotsInUse != 0 {
		t.Fatal("building the factory already took slots; acquisition must be lazy")
	}
	d, err := f(core.Job{}, core.Options{})
	if err != nil || d == nil {
		t.Fatalf("factory: d=%v err=%v", d, err)
	}
	if got := s.Stats().ShardSlotsInUse; got != 2 {
		t.Fatalf("slots in use = %d, want 2", got)
	}

	// Budget exhausted: the next attempt must degrade to local (nil, nil),
	// never error or block.
	d2, err := f(core.Job{}, core.Options{})
	if err != nil || d2 != nil {
		t.Fatalf("exhausted budget: d=%v err=%v, want nil, nil", d2, err)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.Stats().ShardSlotsInUse; got != 0 {
		t.Fatalf("slots in use after Close = %d, want 0", got)
	}
	if err := d.Close(); err != nil { // idempotent: no double release
		t.Fatalf("second Close: %v", err)
	}
	if got := s.Stats().ShardSlotsInUse; got != 0 {
		t.Errorf("double Close released twice: slots = %d", got)
	}
	if fake.closed != 2 {
		t.Errorf("inner Close called %d times, want 2", fake.closed)
	}
}

// TestShardFactoryStartFailureDegrades: a fleet that fails to start
// returns its slots and the attempt runs locally.
func TestShardFactoryStartFailureDegrades(t *testing.T) {
	s := newTestServer(t, Config{
		Runners: -1, Shards: 2, ShardBudget: 4,
		MakeDistributor: func(n int) func(core.Job, core.Options) (core.Distributor, error) {
			return func(core.Job, core.Options) (core.Distributor, error) {
				return nil, errTestFleet
			}
		},
	})
	d, err := s.shardFactory()(core.Job{}, core.Options{})
	if err != nil || d != nil {
		t.Fatalf("failed fleet start: d=%v err=%v, want nil, nil (run locally)", d, err)
	}
	if got := s.Stats().ShardSlotsInUse; got != 0 {
		t.Errorf("slots leaked by failed fleet start: %d in use", got)
	}
}

var errTestFleet = &AdmissionError{Msg: "injected fleet failure"}

// TestShardBudgetEndToEnd runs the same job through a budgeted sharded
// daemon and a plain one: identical results, budget fully returned, and
// the sharded attempt visible in the global stats.
func TestShardBudgetEndToEnd(t *testing.T) {
	plain := newTestServer(t, Config{Runners: 1})
	plain.Start()
	defer plain.Drain(10 * time.Second)
	pv := mustSubmit(t, plain, divZeroSpec("alice", "plain"))
	pDone := waitTerminal(t, plain, pv.ID, 60*time.Second)
	if pDone.State != StateDone {
		t.Fatalf("plain job ended %s: %s", pDone.State, pDone.Error)
	}

	sharded := newTestServer(t, Config{
		Runners: 1, Shards: 2, ShardBudget: 2,
		MakeDistributor: func(n int) func(core.Job, core.Options) (core.Distributor, error) {
			return shard.PipesFactory(n, shard.Config{}, nil)
		},
	})
	sharded.Start()
	defer sharded.Drain(10 * time.Second)
	sv := mustSubmit(t, sharded, divZeroSpec("alice", "sharded"))
	sDone := waitTerminal(t, sharded, sv.ID, 60*time.Second)
	if sDone.State != StateDone {
		t.Fatalf("sharded job ended %s: %s", sDone.State, sDone.Error)
	}

	if got, want := stableFingerprint(sDone.Result), stableFingerprint(pDone.Result); got != want {
		t.Errorf("budgeted sharded run diverged from plain run:\n--- plain ---\n%s\n--- sharded ---\n%s", want, got)
	}
	stats := sharded.Stats()
	if stats.Jobs.ShardedAttempts != 1 {
		t.Errorf("ShardedAttempts = %d, want 1", stats.Jobs.ShardedAttempts)
	}
	if stats.ShardSlotsInUse != 0 {
		t.Errorf("slots still held after the job finished: %d", stats.ShardSlotsInUse)
	}
	if stats.Engine.Shards != 2 {
		t.Errorf("Engine.Shards = %d, want 2", stats.Engine.Shards)
	}
}
