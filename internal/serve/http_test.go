package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func mustJSON(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}

func TestHTTPEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Runners: 1})
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	// Liveness and readiness.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("GET %s: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}

	// Malformed submits are 400s.
	for _, body := range []string{"{", `{"unknown_field":1}`, `{"program":"void main(int x) {}"}`} {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 400 {
			t.Fatalf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// A real job: accepted with 202, tenant taken from the header.
	spec := quickSpec("", "via-http")
	req, _ := http.NewRequest("POST", hs.URL+"/jobs", mustJSON(t, spec))
	req.Header.Set("X-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, b)
	}
	view := decodeBody[StatusView](t, resp)
	if view.ID == "" || view.Tenant != "alice" || view.State != StateQueued {
		t.Fatalf("submit view: %+v", view)
	}

	// The stream endpoint replays transitions until the job is terminal.
	sresp, err := http.Get(hs.URL + "/jobs/" + view.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var states []State
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev StatusView
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		states = append(states, ev.State)
	}
	sresp.Body.Close()
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("stream states %v: want ... done", states)
	}

	// Status and list agree.
	resp, err = http.Get(hs.URL + "/jobs/" + view.ID)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[StatusView](t, resp)
	if got.State != StateDone || got.Result == nil || len(got.Result.TopPatches) == 0 {
		t.Fatalf("GET job: %+v", got)
	}
	resp, err = http.Get(hs.URL + "/jobs?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	if list := decodeBody[[]StatusView](t, resp); len(list) != 1 || list[0].ID != view.ID {
		t.Fatalf("list: %+v", list)
	}

	// Unknown ids are 404s.
	for _, m := range []string{"GET", "DELETE"} {
		req, _ := http.NewRequest(m, hs.URL+"/jobs/j-424242", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 404 {
			t.Fatalf("%s unknown job: %d", m, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Stats carries the tenant breakdown and engine totals.
	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sv := decodeBody[StatsView](t, resp)
	if sv.Tenants["alice"].Done != 1 || sv.Engine.SolverQueries == 0 {
		t.Fatalf("stats: %+v", sv)
	}

	// Drain: readyz flips to 503, submits bounce with Retry-After.
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/jobs", "application/json", mustJSON(t, quickSpec("alice", "late")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("submit while draining: %d", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("draining Retry-After %q", resp.Header.Get("Retry-After"))
	}
}

func TestHTTPCancel(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1})
	defer s.Drain(time.Second)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Post(hs.URL+"/jobs", "application/json", mustJSON(t, quickSpec("alice", "doomed")))
	if err != nil {
		t.Fatal(err)
	}
	view := decodeBody[StatusView](t, resp)
	req, _ := http.NewRequest("DELETE", hs.URL+"/jobs/"+view.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeBody[StatusView](t, resp)
	if got.State != StateCancelled {
		t.Fatalf("cancel: %+v", got)
	}
}

func TestHTTPRetryAfterOnRateLimit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	s := newTestServer(t, Config{Runners: -1, RatePerSec: 0.5, Burst: 1, Now: clk.now})
	defer s.Drain(time.Second)
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	for i := 0; i < 2; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", mustJSON(t, quickSpec("alice", fmt.Sprintf("r%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if i == 0 && resp.StatusCode != 202 {
			t.Fatalf("first submit: %d", resp.StatusCode)
		}
		if i == 1 {
			if resp.StatusCode != 429 {
				t.Fatalf("second submit: %d, want 429", resp.StatusCode)
			}
			// 1 token at 0.5/s needs 2s; the header must round up, never down.
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 2 {
				t.Fatalf("Retry-After %q, want >= 2", resp.Header.Get("Retry-After"))
			}
		}
	}
}
