package serve

import (
	"math"
	"time"
)

// tokenBucket is the per-tenant submit rate limiter: capacity burst,
// refilled at rate tokens/second. take either consumes a token or reports
// how long until one is available (the 429 Retry-After value).
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
}

func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if b.last.IsZero() {
		b.tokens = b.burst
	} else {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// TenantStats is one tenant's slice of the /stats payload. Counters only
// move forward within one daemon process; they restart at zero after a
// restart (the journal carries job outcomes, not rejection tallies).
type TenantStats struct {
	// Admission outcomes.
	Accepted          uint64 `json:"accepted"`
	RejectedRate      uint64 `json:"rejected_rate"`
	RejectedQuota     uint64 `json:"rejected_quota"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	RejectedMemory    uint64 `json:"rejected_memory"`
	// Lifecycle outcomes.
	Done       uint64 `json:"done"`
	Cancelled  uint64 `json:"cancelled"`
	DeadLetter uint64 `json:"dead_letter"`
	Expired    uint64 `json:"expired"`
	// Retry machinery.
	AttemptsFailed uint64 `json:"attempts_failed"`
	Retries        uint64 `json:"retries"`
	// Engine health attributed to this tenant's completed attempts: the
	// PR 4 self-healing ladder counted per tenant, so one tenant's
	// quarantine storms are visible as theirs.
	SolverQueries      uint64 `json:"solver_queries"`
	Quarantines        uint64 `json:"quarantines"`
	BreakerTrips       uint64 `json:"breaker_trips"`
	ValidationFailures uint64 `json:"validation_failures"`
	TimedOutRuns       uint64 `json:"timed_out_runs"`
}

// tenantState is the scheduler's per-tenant record: its FIFO of queued
// jobs, its live counts against the quotas, its rate limiter, and its
// stats. Guarded by the server mutex.
type tenantState struct {
	name     string
	q        []*job // FIFO of queued jobs
	queued   int    // == len(q)
	running  int
	retrying int // jobs parked in retry-wait backoff
	bucket   tokenBucket
	stats    TenantStats
}

// outstanding is the tenant's admission-control load: jobs the daemon is
// still obligated to run. RetryWait jobs count — they will run again.
func (ts *tenantState) outstanding() int { return ts.queued + ts.running + ts.retrying }

func (s *Server) tenantLocked(name string) *tenantState {
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{
			name:   name,
			bucket: tokenBucket{rate: s.cfg.RatePerSec, burst: float64(s.cfg.Burst)},
		}
		s.tenants[name] = ts
		s.order = append(s.order, name)
	}
	return ts
}
