package serve

import (
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"cpr/internal/faultinject"
)

// TestPoisonJobDeadLetters: a job whose every attempt panics at the runner
// boundary must burn its bounded attempts and park in the dead-letter
// state — while a healthy job sharing the daemon is untouched. This is the
// fault-isolation contract: one tenant's poison cannot take the service
// down or starve the others.
func TestPoisonJobDeadLetters(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{JobPanicEvery: 1, JobPanicMatch: "poison"})
	defer faultinject.Deactivate()

	dir := t.TempDir()
	s := newTestServer(t, Config{
		StateDir:    dir,
		Runners:     2,
		MaxAttempts: 2,
		RetryBase:   10 * time.Millisecond,
		RetryMax:    20 * time.Millisecond,
	})
	s.Start()

	poison := mustSubmit(t, s, quickSpec("mallory", "poison"))
	healthy := mustSubmit(t, s, quickSpec("alice", "healthy"))

	pv := waitTerminal(t, s, poison.ID, 30*time.Second)
	if pv.State != StateDeadLetter {
		t.Fatalf("poison job state %s, want dead-letter", pv.State)
	}
	if pv.Attempts != 2 {
		t.Fatalf("poison job attempts %d, want MaxAttempts=2", pv.Attempts)
	}
	if !strings.Contains(pv.Error, "injected panic") {
		t.Fatalf("dead-letter error %q does not carry the panic", pv.Error)
	}
	hv := waitTerminal(t, s, healthy.ID, 30*time.Second)
	if hv.State != StateDone {
		t.Fatalf("healthy job state %s (err %q): poison leaked across jobs", hv.State, hv.Error)
	}

	sv := s.Stats()
	mal := sv.Tenants["mallory"]
	if mal.DeadLetter != 1 || mal.AttemptsFailed != 2 || mal.Retries != 1 {
		t.Fatalf("mallory stats: %+v", mal)
	}
	if sv.Tenants["alice"].AttemptsFailed != 0 {
		t.Fatal("alice charged for mallory's panics")
	}
	if sv.Jobs.DeadLetter != 1 {
		t.Fatalf("global dead-letter count: %+v", sv.Jobs)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Dead-letter is durable: a restart neither re-runs nor forgets it.
	faultinject.Deactivate()
	s2 := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: -1})
	v2, ok := s2.Status(poison.ID)
	if !ok || v2.State != StateDeadLetter || !strings.Contains(v2.Error, "injected panic") {
		t.Fatalf("dead-letter after restart: %+v", v2)
	}
	if sv2 := s2.Stats(); sv2.Jobs.Resumed != 0 {
		t.Fatalf("restart resumed a dead-lettered job: %+v", sv2.Jobs)
	}
	if err := s2.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestTransientFailureRetriesToDone: a job that panics once and then
// behaves must come back through backoff and finish with a full result.
func TestTransientFailureRetriesToDone(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{JobPanicEvery: 1, JobPanicMatch: "flaky"})
	defer faultinject.Deactivate()

	s := newTestServer(t, Config{
		Runners:   1,
		RetryBase: 20 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
	})
	s.Start()
	defer s.Drain(10 * time.Second)

	v := mustSubmit(t, s, quickSpec("alice", "flaky"))
	waitState(t, s, v.ID, 10*time.Second, func(sv StatusView) bool {
		return sv.Attempts == 1 && (sv.State == StateRetryWait || sv.State == StateQueued)
	})
	// The fault was transient: clear it and let the retry run.
	faultinject.Deactivate()

	final := waitTerminal(t, s, v.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("state %s (err %q), want done after retry", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", final.Attempts)
	}
	if len(final.Result.TopPatches) == 0 {
		t.Fatal("retried job produced no patches")
	}
	if sv := s.Stats(); sv.Jobs.Retries != 1 || sv.Jobs.AttemptsFailed != 1 {
		t.Fatalf("retry accounting: %+v", sv.Jobs)
	}
}

// --- real-process SIGKILL harness ---

// TestServeCrashHelperProcess is the subprocess body for
// TestCrashResumeBitIdentical: a daemon that SIGKILLs its own process —
// unblockable, no drain, no final checkpoint — at a generation barrier in
// the middle of its first job.
func TestServeCrashHelperProcess(t *testing.T) {
	if os.Getenv("CPR_SERVE_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCrashResumeBitIdentical")
	}
	dir := os.Getenv("CPR_SERVE_STATE")
	s, err := New(Config{Runners: 1, StateDir: dir, CheckpointInterval: 2})
	if err != nil {
		t.Fatalf("helper New: %v", err)
	}
	for _, label := range []string{"one", "two"} {
		if _, aerr := s.Submit(divZeroSpec("crashy", label)); aerr != nil {
			t.Fatalf("helper submit %s: %v", label, aerr)
		}
	}
	faultinject.Activate(&faultinject.Plan{
		CrashAt: 7,
		Crash:   func() { syscall.Kill(os.Getpid(), syscall.SIGKILL) },
	})
	s.Start()
	time.Sleep(60 * time.Second)
	t.Fatal("helper survived: crash injection never fired")
}

// TestCrashResumeBitIdentical is the hard-kill differential: the daemon is
// SIGKILLed mid-job (no drain, no cleanup), and a restarted daemon with
// Resume finishes all jobs bit-identically to an uninterrupted one — the
// journal knows which jobs are owed, the engine checkpoints carry the
// partial exploration.
func TestCrashResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	specs := []JobSpec{divZeroSpec("crashy", "one"), divZeroSpec("crashy", "two")}
	base := uninterruptedResults(t, specs, 1)

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestServeCrashHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"CPR_SERVE_CRASH_HELPER=1",
		"CPR_SERVE_STATE="+dir,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly; expected SIGKILL\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die by SIGKILL: %v\n%s", err, out)
	}

	s := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: 1, CheckpointInterval: 2})
	if sv := s.Stats(); sv.Jobs.Resumed != 2 {
		t.Fatalf("resumed %d jobs, want 2 (journal lost the accepted records?)", sv.Jobs.Resumed)
	}
	s.Start()
	ids := []string{"j-000000", "j-000001"}
	for i, id := range ids {
		v := waitTerminal(t, s, id, 60*time.Second)
		if v.State != StateDone {
			t.Fatalf("resumed job %s: %s (err %q)", id, v.State, v.Error)
		}
		label := specs[i].Label
		if got, want := fullFingerprint(t, v.Result), fullFingerprint(t, base[label]); got != want {
			t.Fatalf("job %s diverged after SIGKILL+resume:\n--- resumed\n%s\n--- baseline\n%s", label, got, want)
		}
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
