package serve

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// divZeroProgram mirrors the paper's §2 example (and the core test suite):
// synthesize a guard so the divisions cannot divide by zero.
const divZeroProgram = `
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}
`

// divZeroSpec is a full-size repair job (~0.5s of engine work), the same
// shape the core differential tests use.
func divZeroSpec(tenant, label string) JobSpec {
	cmp := []string{"=", ">=", "<"}
	boolOps := []string{"or"}
	arith := []string{}
	return JobSpec{
		Tenant:           tenant,
		Label:            label,
		Program:          divZeroProgram,
		Spec:             "(and (distinct x 0) (distinct y 0))",
		Failing:          []map[string]int64{{"x": 7, "y": 0}},
		CmpOps:           &cmp,
		BoolOps:          &boolOps,
		ArithOps:         &arith,
		MaxTemplates:     40,
		Budget:           25,
		ValidationBudget: 8,
	}
}

// quickSpec is a small-budget variant for scheduling-behavior tests that
// only need a job to run, not to converge.
func quickSpec(tenant, label string) JobSpec {
	s := divZeroSpec(tenant, label)
	s.Budget = 6
	s.ValidationBudget = 2
	return s
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Warn == nil {
		cfg.Warn = func(msg string) { t.Logf("warn: %s", msg) }
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func mustSubmit(t *testing.T, s *Server, spec JobSpec) StatusView {
	t.Helper()
	v, aerr := s.Submit(spec)
	if aerr != nil {
		t.Fatalf("Submit(%s): %d %s", spec.Key(), aerr.Status, aerr.Msg)
	}
	return v
}

func waitState(t *testing.T, s *Server, id string, within time.Duration, want func(StatusView) bool) StatusView {
	t.Helper()
	deadline := time.Now().Add(within)
	var last StatusView
	for time.Now().Before(deadline) {
		v, ok := s.Status(id)
		if ok {
			last = v
			if want(v) {
				return v
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached wanted state within %v; last: %+v", id, within, last)
	return StatusView{}
}

func waitTerminal(t *testing.T, s *Server, id string, within time.Duration) StatusView {
	t.Helper()
	return waitState(t, s, id, within, func(v StatusView) bool { return v.State.Terminal() })
}

// stableFingerprint renders the scheduling-independent slice of a result:
// the ranked patches, the repaired program, and the deterministic stats
// (cache hit/miss splits vary across worker schedules, exactly as in the
// core parallel tests).
func stableFingerprint(r *Result) string {
	if r == nil {
		return "<nil>"
	}
	st := r.Stats
	b, _ := json.Marshal(r.TopPatches)
	return fmt.Sprintf("patches=%s repaired=%q P %d->%d pool %d->%d phiE=%d phiS=%d gen=%d ref=%d rem=%d",
		b, r.Repaired, st.PInit, st.PFinal, st.PoolInit, st.PoolFinal,
		st.PathsExplored, st.PathsSkipped, st.InputsGenerated, st.Refinements, st.Removals)
}

func fullFingerprint(t *testing.T, r *Result) string {
	t.Helper()
	if r == nil {
		return "<nil>"
	}
	// The wall-time breakdown measures this machine's clock, not run
	// state; zero it before the bit-identical comparison. Peak memory
	// gauges likewise measure the process's observation window — a
	// resumed run only sees post-resume peaks (same as core's
	// dropWallTimes).
	c := *r
	c.Stats.SatTime, c.Stats.LIATime, c.Stats.ValidateTime = 0, 0, 0
	c.Stats.FrontierPeak, c.Stats.SeenPeak = 0, 0
	c.Stats.FrontierPeakBytes, c.Stats.SeenPeakBytes, c.Stats.PoolPeakBytes = 0, 0, 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

func TestSubmitRunsToDone(t *testing.T) {
	s := newTestServer(t, Config{Runners: 1})
	s.Start()
	defer s.Drain(10 * time.Second)

	v := mustSubmit(t, s, divZeroSpec("alice", "divzero"))
	if v.State != StateQueued || v.ID == "" {
		t.Fatalf("submit view: %+v", v)
	}
	final := waitTerminal(t, s, v.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("final state %s (err %q), want done", final.State, final.Error)
	}
	if final.Result == nil || len(final.Result.TopPatches) == 0 {
		t.Fatalf("done without patches: %+v", final)
	}
	if final.Result.Repaired == "" {
		t.Fatal("done without a repaired program rendering")
	}
	if final.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", final.Attempts)
	}

	sv := s.Stats()
	if sv.Jobs.Accepted != 1 || sv.Jobs.Done != 1 {
		t.Fatalf("global stats: %+v", sv.Jobs)
	}
	ten := sv.Tenants["alice"]
	if ten.Done != 1 || ten.SolverQueries == 0 {
		t.Fatalf("tenant stats not attributed: %+v", ten)
	}
	if sv.Engine.SolverQueries == 0 || sv.Engine.PInit == 0 {
		t.Fatalf("engine aggregate empty: %+v", sv.Engine)
	}
}

// uninterruptedResults runs the given specs on a fresh daemon with no
// interference and returns each job's result by label.
func uninterruptedResults(t *testing.T, specs []JobSpec, workers int) map[string]*Result {
	t.Helper()
	s := newTestServer(t, Config{Runners: 1, EngineWorkers: workers})
	s.Start()
	out := map[string]*Result{}
	var ids []string
	for _, spec := range specs {
		ids = append(ids, mustSubmit(t, s, spec).ID)
	}
	for i, id := range ids {
		v := waitTerminal(t, s, id, 60*time.Second)
		if v.State != StateDone {
			t.Fatalf("baseline job %s: state %s (err %q)", id, v.State, v.Error)
		}
		out[specs[i].Label] = v.Result
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("baseline drain: %v", err)
	}
	return out
}

// TestDrainResumeBitIdentical is the tentpole differential: a daemon
// drained mid-job (graceful SIGTERM path) and restarted with Resume
// finishes every outstanding job with results bit-identical to an
// uninterrupted daemon — at one engine worker and at four.
func TestDrainResumeBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("engineWorkers=%d", workers), func(t *testing.T) {
			specs := []JobSpec{
				divZeroSpec("alice", "one"),
				divZeroSpec("bob", "two"),
			}
			base := uninterruptedResults(t, specs, workers)

			dir := t.TempDir()
			s1 := newTestServer(t, Config{StateDir: dir, Runners: 1, EngineWorkers: workers, CheckpointInterval: 2})
			var ids []string
			for _, spec := range specs {
				ids = append(ids, mustSubmit(t, s1, spec).ID)
			}
			s1.Start()
			// Let the first job get well into its run, then drain: the
			// first job is cut mid-exploration (it resumes from its last
			// periodic checkpoint), the second never leaves the queue.
			time.Sleep(350 * time.Millisecond)
			if err := s1.Drain(30 * time.Second); err != nil {
				t.Fatalf("drain: %v", err)
			}
			var interrupted int
			for _, id := range ids {
				v, _ := s1.Status(id)
				if v.State.Terminal() {
					continue
				}
				interrupted++
			}
			if interrupted == 0 {
				t.Log("note: both jobs finished before the drain; differential still checked")
			}

			s2 := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: 1, EngineWorkers: workers, CheckpointInterval: 2})
			s2.Start()
			for i, id := range ids {
				v := waitTerminal(t, s2, id, 60*time.Second)
				if v.State != StateDone {
					t.Fatalf("resumed job %s: state %s (err %q)", id, v.State, v.Error)
				}
				label := specs[i].Label
				if workers == 1 {
					if got, want := fullFingerprint(t, v.Result), fullFingerprint(t, base[label]); got != want {
						t.Fatalf("job %s diverged after drain+resume:\n--- resumed\n%s\n--- baseline\n%s", label, got, want)
					}
				} else if got, want := stableFingerprint(v.Result), stableFingerprint(base[label]); got != want {
					t.Fatalf("job %s diverged after drain+resume:\n--- resumed\n%s\n--- baseline\n%s", label, got, want)
				}
			}
			if err := s2.Drain(10 * time.Second); err != nil {
				t.Fatalf("second drain: %v", err)
			}

			// A third process sees only terminal jobs and serves their
			// recorded results without re-running anything.
			s3 := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: -1})
			for i, id := range ids {
				v, ok := s3.Status(id)
				if !ok || v.State != StateDone {
					t.Fatalf("job %s not done after replay: %+v", id, v)
				}
				if got, want := fullFingerprint(t, v.Result), fullFingerprint(t, func() *Result {
					v2, _ := s2.Status(id)
					return v2.Result
				}()); got != want {
					t.Fatalf("job %s result drifted through the journal:\n%s\nvs\n%s", specs[i].Label, got, want)
				}
			}
			if err := s3.Drain(time.Second); err != nil {
				t.Fatalf("replay-only drain: %v", err)
			}
		})
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StateDir: dir, Runners: 1})
	s.Start()

	running := mustSubmit(t, s, divZeroSpec("alice", "running"))
	queued := mustSubmit(t, s, divZeroSpec("alice", "queued"))
	waitState(t, s, running.ID, 10*time.Second, func(v StatusView) bool { return v.State == StateRunning })

	if v, ok := s.Cancel(queued.ID); !ok || v.State != StateCancelled {
		t.Fatalf("cancel queued: ok=%v view=%+v", ok, v)
	}
	if _, ok := s.Cancel(running.ID); !ok {
		t.Fatal("cancel running: unknown id")
	}
	v := waitTerminal(t, s, running.ID, 15*time.Second)
	if v.State != StateCancelled {
		t.Fatalf("running job after cancel: %s", v.State)
	}
	sv := s.Stats()
	if sv.Jobs.Cancelled != 2 {
		t.Fatalf("cancelled count %d, want 2", sv.Jobs.Cancelled)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Cancellations are durable: a restart does not resurrect the jobs.
	s2 := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: -1})
	for _, id := range []string{running.ID, queued.ID} {
		if v, ok := s2.Status(id); !ok || v.State != StateCancelled {
			t.Fatalf("job %s after restart: %+v", id, v)
		}
	}
	if sv := s2.Stats(); sv.Queued != 0 || sv.Jobs.Resumed != 0 {
		t.Fatalf("restart re-enqueued cancelled work: %+v", sv)
	}
	if err := s2.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestQueueTimeoutExpiresStaleJobs(t *testing.T) {
	dir := t.TempDir()
	// No runners: nothing ever picks the job up.
	s := newTestServer(t, Config{StateDir: dir, Runners: -1, QueueTimeout: 30 * time.Millisecond})
	s.Start()
	v := mustSubmit(t, s, quickSpec("alice", "stale"))
	final := waitTerminal(t, s, v.ID, 5*time.Second)
	if final.State != StateExpired {
		t.Fatalf("state %s, want expired", final.State)
	}
	if sv := s.Stats(); sv.Jobs.Expired != 1 || sv.Tenants["alice"].Expired != 1 {
		t.Fatalf("expiry not counted: %+v", sv.Jobs)
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2 := newTestServer(t, Config{StateDir: dir, Resume: true, Runners: -1})
	if v2, ok := s2.Status(v.ID); !ok || v2.State != StateExpired {
		t.Fatalf("expiry not durable: %+v", v2)
	}
	if err := s2.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestTenantFairness: with one runner, a tenant that queued three jobs
// does not starve a second tenant — round-robin picks interleave, so the
// late tenant's job runs second, not last.
func TestTenantFairness(t *testing.T) {
	s := newTestServer(t, Config{Runners: 1})
	a1 := mustSubmit(t, s, quickSpec("hog", "a1"))
	a2 := mustSubmit(t, s, quickSpec("hog", "a2"))
	a3 := mustSubmit(t, s, quickSpec("hog", "a3"))
	b1 := mustSubmit(t, s, quickSpec("meek", "b1"))

	type done struct {
		id string
		at time.Time
	}
	var order []done
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	record := func(id string, ch <-chan StatusView) {
		for v := range ch {
			if v.State == StateDone {
				<-mu
				order = append(order, done{id, time.Now()})
				mu <- struct{}{}
			}
		}
	}
	for _, id := range []string{a1.ID, a2.ID, a3.ID, b1.ID} {
		go record(id, s.Watch(id))
	}
	s.Start()
	for _, id := range []string{a1.ID, a2.ID, a3.ID, b1.ID} {
		waitTerminal(t, s, id, 60*time.Second)
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-mu
	if len(order) != 4 {
		t.Fatalf("saw %d completions, want 4", len(order))
	}
	if order[0].id != a1.ID || order[1].id != b1.ID {
		var seq []string
		for _, d := range order {
			seq = append(seq, d.id)
		}
		t.Fatalf("completion order %v: want hog's first job then meek's (round-robin), got meek starved", seq)
	}
}

func TestWatchStreamsTransitions(t *testing.T) {
	s := newTestServer(t, Config{Runners: 1})
	s.Start()
	v := mustSubmit(t, s, quickSpec("alice", "watched"))
	ch := s.Watch(v.ID)
	if ch == nil {
		t.Fatal("Watch returned nil for a known job")
	}
	var states []State
	for ev := range ch {
		states = append(states, ev.State)
	}
	if len(states) < 2 || states[0] != StateQueued || states[len(states)-1] != StateDone {
		t.Fatalf("stream %v: want queued ... done", states)
	}
	if s.Watch("j-999999") != nil {
		t.Fatal("Watch of unknown id should be nil")
	}
	// Watching an already-terminal job yields its final view, closed.
	ch2 := s.Watch(v.ID)
	ev, ok := <-ch2
	if !ok || ev.State != StateDone {
		t.Fatalf("terminal watch: %+v ok=%v", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("terminal watch channel not closed")
	}
	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestListOrdersBySubmit(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1})
	var want []string
	for i := 0; i < 5; i++ {
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		want = append(want, mustSubmit(t, s, quickSpec(tenant, fmt.Sprintf("j%d", i))).ID)
	}
	all := s.List("")
	if len(all) != 5 {
		t.Fatalf("List len %d", len(all))
	}
	for i, v := range all {
		if v.ID != want[i] {
			t.Fatalf("List order: got %s at %d, want %s", v.ID, i, want[i])
		}
	}
	bs := s.List("b")
	if len(bs) != 2 {
		t.Fatalf("tenant filter: %d jobs, want 2", len(bs))
	}
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1})
	defer s.Drain(time.Second)
	cases := []JobSpec{
		{Tenant: "t", Program: "void main(int x) { __BUG__; int y = 1 / x; }"},   // no hole
		{Tenant: "t", Subject: "nope"},                                           // bad subject form
		{Tenant: "t", Subject: "No/Such"},                                        // unknown subject
		{Tenant: "t"},                                                            // neither subject nor program
		{Tenant: "t", Program: divZeroProgram},                                   // no failing input
		func() JobSpec { s := divZeroSpec("t", "x"); s.Spec = "(("; return s }(), // bad spec
		func() JobSpec { s := divZeroSpec("t", "x"); bad := []string{"%%"}; s.CmpOps = &bad; return s }(), // bad op
	}
	for i, spec := range cases {
		if _, aerr := s.Submit(spec); aerr == nil || aerr.Status != 400 {
			t.Fatalf("case %d: want 400, got %+v", i, aerr)
		}
	}
	if sv := s.Stats(); sv.Jobs.RejectedInvalid != uint64(len(cases)) {
		t.Fatalf("invalid rejections %d, want %d", sv.Jobs.RejectedInvalid, len(cases))
	}
	if _, ok := s.Status("j-000000"); ok {
		t.Fatal("a rejected job reached the job table")
	}
}

func TestSubjectJobRuns(t *testing.T) {
	s := newTestServer(t, Config{Runners: 1})
	s.Start()
	defer s.Drain(10 * time.Second)
	v := mustSubmit(t, s, JobSpec{
		Tenant:  "alice",
		Subject: "Libtiff/CVE-2016-3623",
		Budget:  20,
	})
	final := waitTerminal(t, s, v.ID, 60*time.Second)
	if final.State != StateDone {
		t.Fatalf("subject job: %s (err %q)", final.State, final.Error)
	}
	if len(final.Result.TopPatches) == 0 {
		t.Fatal("subject job produced no patches")
	}
}
