package serve

import (
	"encoding/json"
	"testing"
)

// FuzzJobSpec fuzzes the daemon's untrusted input path: the JSON body of
// POST /jobs through decoding and buildJob's validation. The contract is
// the admission boundary's — arbitrary bytes either yield a 400-shaped
// error or a well-formed core.Job, and never panic the daemon (panics
// inside a running attempt are recovered; panics at admission would not
// be). A spec that validates must survive a marshal/decode round trip to
// the same outcome, since accepted specs are journaled as JSON and
// rebuilt on resume.
func FuzzJobSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"subject":"Rival/div-zero"}`,
		`{"subject":"no-slash"}`,
		`{"program":"void main(int x) { if (__HOLE__) { return; } __BUG__; int c = 1 / x; }","failing":[{"x":0}]}`,
		`{"program":"void main(int x) { }","failing":[{"x":0}]}`,
		`{"program":"int x = ;","failing":[{"x":0}]}`,
		`{"tenant":"acme","label":"l","program":"void main(int x) { if (__HOLE__) { return; } __BUG__; int c = 1 / x; }",
		  "spec":"(distinct x 0)","failing":[{"x":0}],"passing":[{"x":3}],
		  "params":["a"],"param_lo":-3,"param_hi":3,"input_lo":-5,"input_hi":5,
		  "arith_ops":["+"],"cmp_ops":["="],"bool_ops":[],"budget":4,"top":2}`,
		`{"spec":"(((","program":"void main(int x) { if (__HOLE__) { return; } __BUG__; int c = 1 / x; }","failing":[{"x":0}]}`,
		`{"cmp_ops":["<=>"],"program":"void main(int x) { if (__HOLE__) { return; } __BUG__; int c = 1 / x; }","failing":[{"x":0}]}`,
		`{"failing":[{"x":9223372036854775807}],"program":"void main(int x) { if (__HOLE__) { return; } __BUG__; int c = 1 / x; }"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		if _, err := buildJob(spec); err != nil {
			return
		}
		// The accepted path: the journal stores the spec as JSON and
		// rebuilds it on replay; that round trip must stay accepted.
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		var again JobSpec
		if err := json.Unmarshal(b, &again); err != nil {
			t.Fatalf("journaled spec does not decode: %v", err)
		}
		if _, err := buildJob(again); err != nil {
			t.Fatalf("accepted spec rejected after journal round trip: %v", err)
		}
	})
}
