package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"cpr/internal/journal"
)

// The job journal is the daemon's durable source of truth: an append-only
// CRC-framed record log (internal/journal) under the state directory. An
// accepted job is journaled (and fsynced) before its 202 is sent, and every
// terminal transition is journaled before it is reported — so a daemon
// killed at any instant can replay the log and knows exactly which jobs are
// owed a result. Jobs with no terminal record are re-enqueued on restart
// with resume on; their engine checkpoints (one directory per job) carry
// the partial work.
const (
	recAccepted      uint8 = 1 // id, seq, spec JSON
	recAttemptFailed uint8 = 2 // id, attempt ordinal, error
	recDone          uint8 = 3 // id, result JSON
	recCancelled     uint8 = 4 // id
	recDeadLetter    uint8 = 5 // id, error
	recExpired       uint8 = 6 // id, reason
)

const jobLogName = "jobs.log"

// jobJournal serializes writes to the job record log.
type jobJournal struct {
	mu  sync.Mutex
	w   *journal.LogWriter
	enc journal.Encoder
}

func openJobJournal(dir string) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w, err := journal.OpenLog(filepath.Join(dir, jobLogName))
	if err != nil {
		return nil, err
	}
	return &jobJournal{w: w}, nil
}

// append frames, writes, and fsyncs one record. Every record the daemon
// writes is a promise (job accepted, job finished); none may be lost to a
// crash after being acted on, so the sync is unconditional.
func (jl *jobJournal) append(kind uint8, fields func(e *journal.Encoder)) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.enc.Reset()
	fields(&jl.enc)
	if err := jl.w.Append(kind, jl.enc.Bytes()); err != nil {
		return err
	}
	return jl.w.Sync()
}

func (jl *jobJournal) accepted(j *job, specJSON []byte) error {
	return jl.append(recAccepted, func(e *journal.Encoder) {
		e.Str(j.id)
		e.U64(j.submitSeq)
		e.Raw(specJSON)
	})
}

func (jl *jobJournal) attemptFailed(id string, attempt int, errMsg string) error {
	return jl.append(recAttemptFailed, func(e *journal.Encoder) {
		e.Str(id)
		e.Int(attempt)
		e.Str(errMsg)
	})
}

func (jl *jobJournal) done(id string, resultJSON []byte) error {
	return jl.append(recDone, func(e *journal.Encoder) {
		e.Str(id)
		e.Raw(resultJSON)
	})
}

func (jl *jobJournal) terminal(kind uint8, id, msg string) error {
	return jl.append(kind, func(e *journal.Encoder) {
		e.Str(id)
		e.Str(msg)
	})
}

func (jl *jobJournal) close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.w.Close()
}

// replayedJob is one job's state recovered from the log.
type replayedJob struct {
	id       string
	seq      uint64
	spec     JobSpec
	attempts int
	lastErr  string
	state    State   // zero ("") means live: re-enqueue with resume
	result   *Result // for StateDone
}

// replayJobLog folds the record log into per-job states, in submit order.
// A torn tail is already dropped by ReadLog; a record for an unknown id
// (its accepted record fell in the torn tail) is skipped with a warning —
// such a job was never acknowledged, so nothing is owed.
func replayJobLog(dir string, warn func(string)) ([]*replayedJob, error) {
	recs, err := journal.ReadLog(filepath.Join(dir, jobLogName))
	if err != nil {
		return nil, err
	}
	warnf := func(format string, args ...any) {
		if warn != nil {
			warn(fmt.Sprintf(format, args...))
		}
	}
	byID := map[string]*replayedJob{}
	var order []*replayedJob
	for _, rec := range recs {
		d := journal.NewDecoder(rec.Payload)
		id := d.Str()
		if d.Err() != nil {
			warnf("serve: journal record (kind %d) undecodable, skipped: %v", rec.Kind, d.Err())
			continue
		}
		if rec.Kind == recAccepted {
			rj := &replayedJob{id: id, seq: d.U64()}
			specJSON := d.Raw()
			if d.Err() != nil {
				warnf("serve: accepted record for %s undecodable, skipped: %v", id, d.Err())
				continue
			}
			if err := json.Unmarshal(specJSON, &rj.spec); err != nil {
				warnf("serve: accepted record for %s carries bad spec JSON, skipped: %v", id, err)
				continue
			}
			byID[id] = rj
			order = append(order, rj)
			continue
		}
		rj := byID[id]
		if rj == nil {
			warnf("serve: journal record (kind %d) for unknown job %s, skipped", rec.Kind, id)
			continue
		}
		switch rec.Kind {
		case recAttemptFailed:
			rj.attempts = d.Int()
			rj.lastErr = d.Str()
		case recDone:
			var res Result
			if err := json.Unmarshal(d.Raw(), &res); err != nil {
				warnf("serve: done record for %s carries bad result JSON, job re-enqueued: %v", id, err)
				continue
			}
			rj.state, rj.result = StateDone, &res
		case recCancelled:
			rj.state = StateCancelled
		case recDeadLetter:
			rj.state, rj.lastErr = StateDeadLetter, d.Str()
		case recExpired:
			rj.state, rj.lastErr = StateExpired, d.Str()
		default:
			warnf("serve: unknown journal record kind %d for job %s, skipped", rec.Kind, id)
		}
		if d.Err() != nil {
			warnf("serve: journal record (kind %d) for %s undecodable past id, skipped: %v", rec.Kind, id, d.Err())
		}
	}
	return order, nil
}
