package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives Config.Now so rate-limit tests are deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTenantQuota429(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1, TenantMaxOutstanding: 2, QueueMax: 100})
	defer s.Drain(time.Second)
	mustSubmit(t, s, quickSpec("alice", "a"))
	mustSubmit(t, s, quickSpec("alice", "b"))
	_, aerr := s.Submit(quickSpec("alice", "c"))
	if aerr == nil || aerr.Status != 429 || aerr.RetryAfter <= 0 {
		t.Fatalf("third submit: %+v, want 429 with Retry-After", aerr)
	}
	// The quota is per tenant: another tenant is unaffected.
	mustSubmit(t, s, quickSpec("bob", "a"))
	sv := s.Stats()
	if sv.Tenants["alice"].RejectedQuota != 1 || sv.Jobs.RejectedQuota != 1 {
		t.Fatalf("quota rejection not counted: %+v", sv.Jobs)
	}
	if sv.Tenants["bob"].RejectedQuota != 0 {
		t.Fatal("bob charged for alice's rejection")
	}
}

// TestQueueFullStorm: a submit storm against a small queue sheds load with
// 503 and never grows the queue past its bound; every accepted job is
// accounted, every rejected one counted, nothing is lost.
func TestQueueFullStorm(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1, QueueMax: 4, TenantMaxOutstanding: 1000})
	defer s.Drain(time.Second)
	var accepted, shed int
	for i := 0; i < 50; i++ {
		_, aerr := s.Submit(quickSpec("storm", "x"))
		switch {
		case aerr == nil:
			accepted++
		case aerr.Status == 503:
			shed++
			if aerr.RetryAfter <= 0 {
				t.Fatal("503 without Retry-After")
			}
		default:
			t.Fatalf("unexpected rejection: %+v", aerr)
		}
	}
	if accepted != 4 || shed != 46 {
		t.Fatalf("accepted=%d shed=%d, want 4/46", accepted, shed)
	}
	sv := s.Stats()
	if sv.Queued != 4 {
		t.Fatalf("queued=%d, want 4", sv.Queued)
	}
	if sv.Jobs.Accepted != 4 || sv.Jobs.RejectedQueueFull != 46 {
		t.Fatalf("accounting: %+v", sv.Jobs)
	}
	if got := len(s.List("")); got != 4 {
		t.Fatalf("job table has %d entries, want only the accepted 4", got)
	}
}

func TestRateLimit429WithRetryAfter(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := newTestServer(t, Config{
		Runners: -1, RatePerSec: 1, Burst: 2,
		TenantMaxOutstanding: 1000, QueueMax: 1000,
		Now: clk.now,
	})
	defer s.Drain(time.Second)

	mustSubmit(t, s, quickSpec("alice", "a"))
	mustSubmit(t, s, quickSpec("alice", "b"))
	_, aerr := s.Submit(quickSpec("alice", "c"))
	if aerr == nil || aerr.Status != 429 {
		t.Fatalf("burst exceeded: %+v, want 429", aerr)
	}
	if aerr.RetryAfter <= 0 || aerr.RetryAfter > time.Second {
		t.Fatalf("Retry-After %v, want (0, 1s]", aerr.RetryAfter)
	}
	// Buckets are per tenant.
	mustSubmit(t, s, quickSpec("bob", "a"))

	// After the advertised wait, the submit goes through.
	clk.advance(aerr.RetryAfter)
	mustSubmit(t, s, quickSpec("alice", "c"))

	sv := s.Stats()
	if sv.Tenants["alice"].RejectedRate != 1 || sv.Jobs.RejectedRate != 1 {
		t.Fatalf("rate rejection not counted: %+v", sv.Jobs)
	}
}

func TestDrainingRejectsSubmits(t *testing.T) {
	s := newTestServer(t, Config{Runners: -1})
	if err := s.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.Ready() {
		t.Fatal("Ready() true after drain")
	}
	_, aerr := s.Submit(quickSpec("alice", "late"))
	if aerr == nil || aerr.Status != 503 {
		t.Fatalf("submit while draining: %+v, want 503", aerr)
	}
	if sv := s.Stats(); sv.Jobs.RejectedDraining != 1 || !sv.Draining {
		t.Fatalf("draining rejection not counted: %+v", sv)
	}
}

func TestRetryWaitCountsAgainstQuota(t *testing.T) {
	// A job parked in retry-wait is still the daemon's obligation: it must
	// count against the tenant's outstanding quota, or a crashing tenant
	// could pile up unbounded retry state.
	s := newTestServer(t, Config{Runners: -1, TenantMaxOutstanding: 2})
	defer s.Drain(time.Second)
	v := mustSubmit(t, s, quickSpec("alice", "a"))
	s.mu.Lock()
	j := s.jobs[v.ID]
	ts := s.tenantLocked("alice")
	s.removeQueuedLocked(ts, j)
	j.state = StateRetryWait
	ts.retrying++
	s.mu.Unlock()

	mustSubmit(t, s, quickSpec("alice", "b"))
	if _, aerr := s.Submit(quickSpec("alice", "c")); aerr == nil || aerr.Status != 429 {
		t.Fatalf("retry-wait job did not count against quota: %+v", aerr)
	}
}
