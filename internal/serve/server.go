// Package serve turns the repair library into a long-lived, fault-isolated,
// multi-tenant daemon: an HTTP/JSON job API over a shared scheduler that
// runs repair jobs on the internal/core engine.
//
// The robustness surface is the point of the package:
//
//   - Admission control: per-tenant token-bucket rate limits and
//     outstanding-job quotas answer 429 with Retry-After; a bounded global
//     queue sheds load with 503. A job is journaled (fsync) before its 202
//     is sent — an accepted job is never silently dropped.
//   - Fault isolation: each attempt runs panic-recovered on a runner; a
//     failed attempt retries with jittered exponential backoff until a
//     bounded attempt count, then parks in a dead-letter state with its
//     error recorded. One tenant's poison job cannot take the daemon down,
//     and the PR 4 self-healing ladder's health counters are attributed to
//     the tenant whose job incurred them.
//   - Graceful drain: SIGTERM (via Drain) stops admission, cooperatively
//     cancels in-flight jobs — each resumes later from its last clean
//     periodic checkpoint — and leaves interrupted jobs non-terminal in the
//     journal.
//     A restarted daemon (Config.Resume) replays the journal and resumes
//     them bit-identically, the same guarantee a SIGKILL gets from the
//     periodic checkpoints.
package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/core"
	"cpr/internal/faultinject"
	"cpr/internal/govern"
)

// Config tunes the daemon. The zero value of every field gets a sane
// default from withDefaults, so tests and main can set only what they mean.
type Config struct {
	// StateDir is the daemon's durable root: the job journal plus one
	// engine checkpoint directory per live job. Required.
	StateDir string
	// Resume replays the journal in StateDir on construction: finished
	// jobs keep serving their recorded results, unfinished ones re-enqueue
	// and resume from their engine checkpoints.
	Resume bool

	// Runners is the number of concurrently running jobs (default 2).
	// Negative means zero runners — jobs queue but never run — which only
	// admission tests want.
	Runners int
	// EngineWorkers sizes each job's exploration worker pool (default 1).
	// Results are bit-identical for any value; see internal/core.
	EngineWorkers int

	// QueueMax bounds the global queued-job count (default 64); submits
	// beyond it are shed with 503.
	QueueMax int
	// TenantMaxOutstanding bounds one tenant's queued+running+retrying
	// jobs (default 8); submits beyond it get 429.
	TenantMaxOutstanding int
	// TenantRunning bounds one tenant's concurrently running jobs
	// (default max(1, Runners/2)), so a single tenant cannot monopolize
	// the runner pool while others queue.
	TenantRunning int
	// RatePerSec and Burst shape each tenant's submit token bucket
	// (default: no rate limit; Burst defaults to 4 when a rate is set).
	RatePerSec float64
	Burst      int

	// MaxAttempts bounds a job's attempts before dead-lettering
	// (default 3).
	MaxAttempts int
	// RetryBase and RetryMax shape the jittered exponential backoff
	// between attempts (defaults 200ms and 10s).
	RetryBase time.Duration
	RetryMax  time.Duration

	// QueueTimeout expires jobs that waited in the queue longer than this
	// (0 = never): stale work is shed instead of running long after the
	// client gave up.
	QueueTimeout time.Duration
	// RunTimeout hard-bounds one attempt's wall clock (0 = none). The
	// engine's anytime contract still yields a best-so-far result.
	RunTimeout time.Duration

	// CheckpointInterval is the engine's generation-barrier snapshot
	// interval for each job (default 4 — denser than the CLI default,
	// since daemon jobs must survive arbitrary interruption cheaply).
	CheckpointInterval int
	// Incremental and Paranoid configure the per-job solver stack as the
	// CLIs do.
	Incremental bool
	Paranoid    bool
	// Portfolio races that many diverse CDCL configurations on hard
	// queries (0 or 1 = off); Batch groups per-patch feasibility checks
	// into chunked group queries. Both change only solver wall time,
	// never repair results.
	Portfolio int
	Batch     bool

	// NewDistributor, when set, gives every job attempt a distributed
	// exploration backend (cmd/cprd wires shard.SpawnFactory here for
	// -shards N). Each attempt gets a fresh fleet; results are
	// bit-identical with or without it, so it is purely a wall-clock
	// lever, like EngineWorkers.
	NewDistributor func(core.Job, core.Options) (core.Distributor, error)

	// Shards asks for that many shard worker processes per job attempt, via
	// MakeDistributor. Unlike NewDistributor (fixed fleet per attempt), this
	// path is budget-aware: concurrent attempts draw their shard processes
	// from a shared ShardBudget semaphore, and an attempt that cannot get
	// any slot runs locally instead of waiting — bit-identical results
	// either way, only wall time moves.
	Shards int
	// ShardBudget caps the daemon-wide shard process count across all
	// concurrently running attempts (0 = unlimited). An attempt takes
	// min(Shards, slots free) and releases them when its fleet closes.
	ShardBudget int
	// MakeDistributor builds the distributor factory for one attempt's
	// granted shard count (cmd/cprd wires shard.SpawnFactory here).
	MakeDistributor func(n int) func(core.Job, core.Options) (core.Distributor, error)

	// Govern, when non-nil, makes the daemon memory-aware: submits are
	// shed with 503 + Retry-After under pressure (every submit at the
	// critical rung; at the high rung while a retry backlog is still
	// draining — finishing accepted work beats admitting new work), new
	// shard fleets are narrowed or skipped, and every job attempt runs
	// governed (core.Options.Govern) with its frontier spill directory
	// under StateDir. cmd/cprd builds one from its -mem-* flags. All
	// degradation is result-neutral: a shed client retries later to the
	// same answer an unpressured daemon would have produced.
	Govern *govern.Governor
	// GovernTick is the governor's background polling interval, keeping
	// admission decisions fresh even when no engine barrier has polled
	// recently (default 250ms when Govern is set; negative disables the
	// ticker — tests poll deterministically instead).
	GovernTick time.Duration

	// Seed seeds the retry jitter (0 = seeded from the clock).
	Seed int64
	// RetryAfterHint is the Retry-After value for quota and queue-full
	// rejections, where no natural token-refill time exists (default 1s).
	RetryAfterHint time.Duration
	// Warn receives non-fatal diagnostics (journal/checkpoint trouble).
	Warn func(msg string)
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Runners == 0 {
		c.Runners = 2
	}
	if c.Runners < 0 {
		c.Runners = 0
	}
	if c.EngineWorkers == 0 {
		c.EngineWorkers = 1
	}
	if c.QueueMax == 0 {
		c.QueueMax = 64
	}
	if c.TenantMaxOutstanding == 0 {
		c.TenantMaxOutstanding = 8
	}
	if c.TenantRunning == 0 {
		c.TenantRunning = c.Runners / 2
		if c.TenantRunning < 1 {
			c.TenantRunning = 1
		}
	}
	if c.Burst == 0 {
		c.Burst = 4
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 10 * time.Second
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 4
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = time.Second
	}
	if c.Govern != nil && c.GovernTick == 0 {
		c.GovernTick = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

func (c Config) warnf(format string, args ...any) {
	if c.Warn != nil {
		c.Warn(fmt.Sprintf(format, args...))
	}
}

// GlobalStats is the daemon-wide slice of the /stats payload.
type GlobalStats struct {
	Accepted          uint64 `json:"accepted"`
	Resumed           uint64 `json:"resumed"`
	Done              uint64 `json:"done"`
	Cancelled         uint64 `json:"cancelled"`
	DeadLetter        uint64 `json:"dead_letter"`
	Expired           uint64 `json:"expired"`
	AttemptsFailed    uint64 `json:"attempts_failed"`
	Retries           uint64 `json:"retries"`
	RejectedInvalid   uint64 `json:"rejected_invalid"`
	RejectedRate      uint64 `json:"rejected_rate"`
	RejectedQuota     uint64 `json:"rejected_quota"`
	RejectedQueueFull uint64 `json:"rejected_queue_full"`
	RejectedDraining  uint64 `json:"rejected_draining"`
	// ShardedAttempts counts attempts that ran with a shard fleet;
	// ShardDegradedAttempts counts attempts that asked for shards but got
	// fewer than Config.Shards from the budget (including zero — those ran
	// locally). Results are identical either way; these measure contention.
	ShardedAttempts       uint64 `json:"sharded_attempts,omitempty"`
	ShardDegradedAttempts uint64 `json:"shard_degraded_attempts,omitempty"`
	// RejectedMemory counts submits shed under memory pressure (503 +
	// Retry-After); MemNarrowedFleets counts attempts whose shard fleet
	// was narrowed or zeroed by pressure; MemStoppedRuns counts attempts
	// the governor stopped into their anytime best-so-far result.
	RejectedMemory    uint64 `json:"rejected_memory,omitempty"`
	MemNarrowedFleets uint64 `json:"mem_narrowed_fleets,omitempty"`
	MemStoppedRuns    uint64 `json:"mem_stopped_runs,omitempty"`
}

// StatsView is the GET /stats payload.
type StatsView struct {
	UptimeMS     int64                  `json:"uptime_ms"`
	Ready        bool                   `json:"ready"`
	Draining     bool                   `json:"draining"`
	Queued       int                    `json:"queued"`
	Running      int                    `json:"running"`
	RetryWaiting int                    `json:"retry_waiting"`
	Jobs         GlobalStats            `json:"jobs"`
	Tenants      map[string]TenantStats `json:"tenants"`
	// ShardSlotsInUse / ShardBudget expose the shard-process semaphore
	// (both 0 when shard budgeting is off or unlimited).
	ShardSlotsInUse int `json:"shard_slots_in_use,omitempty"`
	ShardBudget     int `json:"shard_budget,omitempty"`
	// Engine sums the core.Stats of every completed attempt: the
	// smt.Stats → core.Stats counters, surfaced at the service level.
	Engine core.Stats `json:"engine"`
	// Memory governance (present only when a governor is configured): the
	// last polled rung, the governor's poll/transition counters, and the
	// per-structure byte-accounting sources currently registered.
	MemRung    string            `json:"mem_rung,omitempty"`
	Mem        *govern.Counters  `json:"mem,omitempty"`
	MemSources map[string]uint64 `json:"mem_sources,omitempty"`
}

// AdmissionError is a rejected submit: an HTTP status, an optional
// Retry-After, and a client-safe message.
type AdmissionError struct {
	Status     int
	RetryAfter time.Duration
	Msg        string
}

func (e *AdmissionError) Error() string { return e.Msg }

// Server is the repair daemon: scheduler, job table, journal, and HTTP
// handler (see http.go). Construct with New, launch runners with Start,
// shut down with Drain.
type Server struct {
	cfg Config
	jl  *jobJournal

	mu          sync.Mutex
	cond        *sync.Cond
	jobs        map[string]*job
	tenants     map[string]*tenantState
	order       []string // tenant round-robin rotation, first-seen order
	rrCursor    int
	queued      int // total queued across tenants
	nextSeq     uint64
	draining    bool
	stopRunners bool
	rng         *rand.Rand
	global      GlobalStats
	agg         core.Stats
	shardInUse  int // shard-process slots currently held by running fleets

	start time.Time
	wg    sync.WaitGroup
}

// New opens (or creates) the daemon state in cfg.StateDir and, with
// cfg.Resume, replays the job journal: jobs with recorded outcomes serve
// them from memory, unfinished jobs re-enqueue with engine resume on.
// Runners do not start until Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Server{
		cfg:     cfg,
		jobs:    map[string]*job{},
		tenants: map[string]*tenantState{},
		rng:     rand.New(rand.NewSource(seed)),
		start:   cfg.Now(),
	}
	s.cond = sync.NewCond(&s.mu)

	if cfg.Resume {
		replayed, err := replayJobLog(cfg.StateDir, cfg.Warn)
		if err != nil {
			return nil, fmt.Errorf("serve: journal replay: %w", err)
		}
		for _, rj := range replayed {
			s.restoreJob(rj)
		}
	}
	jl, err := openJobJournal(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	s.jl = jl
	return s, nil
}

// restoreJob installs one replayed job: terminal ones keep serving their
// recorded outcome, live ones re-enqueue for a resumed attempt.
func (s *Server) restoreJob(rj *replayedJob) {
	if rj.seq >= s.nextSeq {
		s.nextSeq = rj.seq + 1
	}
	j := &job{
		id:        rj.id,
		spec:      rj.spec,
		submitSeq: rj.seq,
		attempts:  rj.attempts,
		lastErr:   rj.lastErr,
		result:    rj.result,
	}
	ts := s.tenantLocked(rj.spec.Tenant)
	if rj.state != "" {
		j.state = rj.state
		s.jobs[j.id] = j
		return
	}
	cj, err := buildJob(rj.spec)
	if err != nil {
		// The spec was validated at admission; failing now means the
		// catalog or language changed under the journal. Dead-letter it
		// in memory (the journal stays as-is; a later replay with the
		// original build would still see it live).
		s.cfg.warnf("serve: replayed job %s no longer buildable, dead-lettered: %v", j.id, err)
		j.state = StateDeadLetter
		j.lastErr = fmt.Sprintf("replay: %v", err)
		s.jobs[j.id] = j
		return
	}
	j.core = cj
	j.state = StateQueued
	j.resume = true
	j.enqueuedAt = s.cfg.Now()
	s.jobs[j.id] = j
	ts.q = append(ts.q, j)
	ts.queued++
	s.queued++
	s.global.Resumed++
	s.armQueueTimeout(j)
}

// Start launches the runner pool. Separate from New so a resuming process
// can finish wiring (HTTP listener, signal handlers) before jobs move, and
// so tests can submit a deterministic backlog first.
func (s *Server) Start() {
	if s.cfg.GovernTick > 0 {
		s.cfg.Govern.StartTicker(s.cfg.GovernTick)
	}
	for i := 0; i < s.cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
}

// Submit admits one job. On success the job is durably journaled and
// queued, and its initial view is returned; on rejection the AdmissionError
// carries the HTTP status and Retry-After for the transport layer.
func (s *Server) Submit(spec JobSpec) (StatusView, *AdmissionError) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	cj, err := buildJob(spec)
	if err != nil {
		s.mu.Lock()
		s.global.RejectedInvalid++
		s.mu.Unlock()
		return StatusView{}, &AdmissionError{Status: 400, Msg: err.Error()}
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return StatusView{}, &AdmissionError{Status: 400, Msg: fmt.Sprintf("spec: %v", err)}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(spec.Tenant)
	if s.draining || s.stopRunners {
		ts.stats.RejectedDraining++
		s.global.RejectedDraining++
		return StatusView{}, &AdmissionError{Status: 503, RetryAfter: s.cfg.RetryAfterHint, Msg: "draining"}
	}
	// Memory shed: at the critical rung every new submit is refused; at
	// the high rung new submits are refused while a retry backlog exists —
	// the daemon prefers draining work it already owes over taking on
	// more. 503 + Retry-After, like queue-full: the condition is the
	// daemon's, not the client's.
	if rung := s.cfg.Govern.Rung(); rung == govern.RungCritical ||
		(rung == govern.RungHigh && s.retryBacklogLocked() > 0) {
		ts.stats.RejectedMemory++
		s.global.RejectedMemory++
		return StatusView{}, &AdmissionError{Status: 503, RetryAfter: s.cfg.RetryAfterHint, Msg: "memory pressure"}
	}
	if ok, wait := ts.bucket.take(s.cfg.Now()); !ok {
		ts.stats.RejectedRate++
		s.global.RejectedRate++
		return StatusView{}, &AdmissionError{Status: 429, RetryAfter: wait, Msg: "rate limit exceeded"}
	}
	if ts.outstanding() >= s.cfg.TenantMaxOutstanding {
		ts.stats.RejectedQuota++
		s.global.RejectedQuota++
		return StatusView{}, &AdmissionError{Status: 429, RetryAfter: s.cfg.RetryAfterHint, Msg: "tenant quota exhausted"}
	}
	if s.queued >= s.cfg.QueueMax {
		ts.stats.RejectedQueueFull++
		s.global.RejectedQueueFull++
		return StatusView{}, &AdmissionError{Status: 503, RetryAfter: s.cfg.RetryAfterHint, Msg: "queue full"}
	}

	seq := s.nextSeq
	s.nextSeq++
	j := &job{
		id:         fmt.Sprintf("j-%06d", seq),
		spec:       spec,
		core:       cj,
		submitSeq:  seq,
		state:      StateQueued,
		enqueuedAt: s.cfg.Now(),
	}
	// Durability before acknowledgment: the accepted record hits stable
	// storage before the job becomes visible. The fsync runs under the
	// server lock, which serializes admissions — acceptable at repair-job
	// request rates, and it keeps journal order identical to seq order.
	if err := s.jl.accepted(j, specJSON); err != nil {
		return StatusView{}, &AdmissionError{Status: 500, Msg: fmt.Sprintf("journal: %v", err)}
	}
	s.jobs[j.id] = j
	ts.q = append(ts.q, j)
	ts.queued++
	s.queued++
	ts.stats.Accepted++
	s.global.Accepted++
	s.armQueueTimeout(j)
	s.cond.Signal()
	return j.view(), nil
}

// Status returns a job's current view.
func (s *Server) Status(id string) (StatusView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return StatusView{}, false
	}
	return j.view(), true
}

// List returns every job's view (optionally one tenant's), in submit order.
func (s *Server) List(tenant string) []StatusView {
	s.mu.Lock()
	defer s.mu.Unlock()
	views := make([]StatusView, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant == "" || j.spec.Tenant == tenant {
			views = append(views, j.view())
		}
	}
	// Submit order, recovered from ids (j-%06d sorts with seq).
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].ID < views[k-1].ID; k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	return views
}

// Cancel cancels a job: queued and retry-waiting jobs terminate
// immediately, a running job's attempt is cooperatively cancelled and
// finalized by its runner. Terminal jobs are left as they are. The second
// return is false when the id is unknown.
func (s *Server) Cancel(id string) (StatusView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return StatusView{}, false
	}
	ts := s.tenantLocked(j.spec.Tenant)
	switch j.state {
	case StateQueued:
		s.removeQueuedLocked(ts, j)
		s.finishLocked(j, ts, StateCancelled, "")
	case StateRetryWait:
		ts.retrying--
		s.finishLocked(j, ts, StateCancelled, "")
	case StateRunning:
		j.cancelRequested = true
		j.tok.Cancel()
	}
	return j.view(), true
}

// Watch subscribes to a job's state transitions. The channel receives the
// current view immediately and a view per transition after; it is closed
// once the job is terminal. Unknown ids return nil.
func (s *Server) Watch(id string) <-chan StatusView {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	// Capacity for a worst-case burst of transitions; a subscriber that
	// still falls behind loses intermediate events, never blocks a runner.
	ch := make(chan StatusView, 16)
	ch <- j.view()
	if j.state.Terminal() {
		close(ch)
		return ch
	}
	j.watchers = append(j.watchers, ch)
	return ch
}

// Ready reports whether the daemon accepts work (readyz).
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && !s.stopRunners
}

// Stats assembles the /stats payload.
func (s *Server) Stats() StatsView {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv := StatsView{
		UptimeMS: s.cfg.Now().Sub(s.start).Milliseconds(),
		Ready:    !s.draining && !s.stopRunners,
		Draining: s.draining,
		Queued:   s.queued,
		Jobs:     s.global,
		Tenants:  make(map[string]TenantStats, len(s.tenants)),
		Engine:   s.agg,
	}
	if s.cfg.Shards > 0 {
		sv.ShardSlotsInUse = s.shardInUse
		sv.ShardBudget = s.cfg.ShardBudget
	}
	for name, ts := range s.tenants {
		sv.Tenants[name] = ts.stats
		sv.Running += ts.running
		sv.RetryWaiting += ts.retrying
	}
	if g := s.cfg.Govern; g != nil {
		c := g.Snapshot()
		sv.MemRung = g.Rung().String()
		sv.Mem = &c
		sv.MemSources = g.Sources()
	}
	return sv
}

// retryBacklogLocked is the count of jobs parked in retry-wait across all
// tenants — the "work the daemon still owes" that memory-pressure
// admission prefers to drain before accepting new jobs.
func (s *Server) retryBacklogLocked() int {
	n := 0
	for _, ts := range s.tenants {
		n += ts.retrying
	}
	return n
}

// Drain is the graceful shutdown: stop admitting, cooperatively cancel
// running attempts (each job's periodic engine checkpoints stay on disk),
// keep interrupted and queued jobs non-terminal in the journal, and
// release the runners. After Drain returns, a new process started on the
// same state directory with Config.Resume finishes every outstanding job
// with results bit-identical to an uninterrupted run.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.stopRunners {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.stopRunners = true
	for _, j := range s.jobs {
		if j.state == StateRunning && j.tok != nil {
			j.drained = true
			j.tok.Cancel()
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			return fmt.Errorf("serve: drain timed out after %v with attempts still running", timeout)
		}
	} else {
		<-done
	}
	s.cfg.Govern.StopTicker()
	return s.jl.close()
}

// --- scheduler ---

func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// next blocks until a job is eligible (its tenant below its running quota,
// picked round-robin across tenants so no tenant starves another) or the
// server is shutting down.
func (s *Server) next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopRunners {
			return nil
		}
		if j := s.pickLocked(); j != nil {
			return j
		}
		s.cond.Wait()
	}
}

func (s *Server) pickLocked() *job {
	n := len(s.order)
	for i := 0; i < n; i++ {
		ts := s.tenants[s.order[(s.rrCursor+i)%n]]
		if len(ts.q) > 0 && ts.running < s.cfg.TenantRunning {
			j := ts.q[0]
			ts.q = ts.q[1:]
			ts.queued--
			s.queued--
			ts.running++
			s.rrCursor = (s.rrCursor + i + 1) % n
			return j
		}
	}
	return nil
}

// runJob executes one attempt and finalizes its outcome.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	j.state = StateRunning
	j.attempts++
	attempt := j.attempts
	resume := j.resume
	base := cancel.New()
	j.tok = base
	run := base
	if s.cfg.RunTimeout > 0 {
		run = cancel.WithTimeout(base, s.cfg.RunTimeout)
	}
	s.notifyLocked(j)
	s.mu.Unlock()

	res, err := s.attempt(j, run, resume)

	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenantLocked(j.spec.Tenant)
	ts.running--
	j.tok = nil
	// Whatever happens next, checkpoints from this attempt are on disk:
	// later attempts continue from them.
	j.resume = true
	defer s.cond.Broadcast()

	switch {
	case j.drained:
		// Drain cut this attempt. Its partial result is discarded; the job
		// stays non-terminal in the journal and resumes (from its last
		// clean periodic checkpoint) in the next process.
		j.state = StateInterrupted
		s.notifyLocked(j)
	case j.cancelRequested:
		s.finishLocked(j, ts, StateCancelled, "")
	case err != nil:
		j.lastErr = err.Error()
		ts.stats.AttemptsFailed++
		s.global.AttemptsFailed++
		if jerr := s.jl.attemptFailed(j.id, attempt, j.lastErr); jerr != nil {
			s.cfg.warnf("serve: journal attempt-failed for %s: %v", j.id, jerr)
		}
		if attempt >= s.cfg.MaxAttempts {
			s.finishLocked(j, ts, StateDeadLetter, j.lastErr)
			return
		}
		delay := s.backoffLocked(attempt)
		j.state = StateRetryWait
		j.retryAt = s.cfg.Now().Add(delay)
		ts.retrying++
		ts.stats.Retries++
		s.global.Retries++
		s.notifyLocked(j)
		time.AfterFunc(delay, func() { s.requeueRetry(j) })
	default:
		out := buildResult(j.core, res, j.spec.Top)
		j.result = out
		aggStats(&s.agg, res.Stats)
		ts.stats.SolverQueries += res.Stats.SolverQueries
		ts.stats.Quarantines += res.Stats.Quarantines
		ts.stats.BreakerTrips += res.Stats.BreakerTrips
		ts.stats.ValidationFailures += res.Stats.ValidationFailures
		if res.Stats.TimedOut {
			ts.stats.TimedOutRuns++
		}
		if res.Stats.MemStopped {
			s.global.MemStoppedRuns++
		}
		s.finishLocked(j, ts, StateDone, "")
	}
}

// finishLocked journals and applies a terminal transition, updates the
// tenant and global tallies, drops the job's checkpoint directory, and
// notifies watchers.
func (s *Server) finishLocked(j *job, ts *tenantState, state State, msg string) {
	var jerr error
	switch state {
	case StateDone:
		jerr = s.jl.done(j.id, j.result.marshal())
		ts.stats.Done++
		s.global.Done++
	case StateCancelled:
		jerr = s.jl.terminal(recCancelled, j.id, msg)
		ts.stats.Cancelled++
		s.global.Cancelled++
	case StateDeadLetter:
		jerr = s.jl.terminal(recDeadLetter, j.id, msg)
		ts.stats.DeadLetter++
		s.global.DeadLetter++
	case StateExpired:
		jerr = s.jl.terminal(recExpired, j.id, msg)
		ts.stats.Expired++
		s.global.Expired++
	}
	if jerr != nil {
		// The in-memory transition still happens: clients get their
		// answer now; after a restart the job would re-run (at-least-once).
		s.cfg.warnf("serve: journal terminal record for %s: %v", j.id, jerr)
	}
	j.state = state
	if msg != "" {
		j.lastErr = msg
	}
	if err := os.RemoveAll(s.ckptDir(j.id)); err != nil {
		s.cfg.warnf("serve: checkpoint cleanup for %s: %v", j.id, err)
	}
	if err := os.RemoveAll(s.spillDir(j.id)); err != nil {
		s.cfg.warnf("serve: spill cleanup for %s: %v", j.id, err)
	}
	s.notifyLocked(j)
}

// attempt runs the engine once, panic-isolated at the job boundary.
func (s *Server) attempt(j *job, tok *cancel.Token, resume bool) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: job attempt panicked: %v", r)
		}
	}()
	if faultinject.JobStart(j.spec.Key()) {
		panic(faultinject.PanicMsg)
	}
	cj := j.core
	if j.spec.TimeoutMS > 0 {
		// Through Budget (not a bare token) so a resumed attempt re-bases
		// the remaining wall clock on the time already spent.
		cj.Budget.MaxDuration = time.Duration(j.spec.TimeoutMS) * time.Millisecond
	}
	opts := core.Options{Workers: s.cfg.EngineWorkers, Cancel: tok, Batch: s.cfg.Batch}
	opts.NewDistributor = s.cfg.NewDistributor
	if s.cfg.Shards > 0 && s.cfg.MakeDistributor != nil {
		opts.NewDistributor = s.shardFactory()
	}
	opts.SMT.Incremental = s.cfg.Incremental
	opts.SMT.Paranoid = s.cfg.Paranoid
	opts.SMT.Portfolio = s.cfg.Portfolio
	// Governed attempts spill their frontier cold tail under StateDir
	// (beside the checkpoints) rather than a process temp dir, so the
	// operator's disk budget and the daemon's durable state live together.
	opts.Govern = s.cfg.Govern
	if s.cfg.Govern != nil {
		opts.SpillDir = s.spillDir(j.id)
	}
	opts.Checkpoint = core.CheckpointOptions{
		Dir:      s.ckptDir(j.id),
		Interval: s.cfg.CheckpointInterval,
		Resume:   resume,
		Warn:     s.cfg.Warn,
	}
	return core.Repair(cj, opts)
}

func (s *Server) ckptDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "ckpt", id)
}

func (s *Server) spillDir(id string) string {
	return filepath.Join(s.cfg.StateDir, "spill", id)
}

// --- shard budgeting ---

// acquireShards grants min(want, slots free) from the daemon-wide shard
// budget — never blocking: a contended attempt runs narrower (or local)
// rather than waiting on another tenant's fleet.
func (s *Server) acquireShards(want int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	granted := want
	if s.cfg.ShardBudget > 0 {
		if free := s.cfg.ShardBudget - s.shardInUse; free < granted {
			granted = free
		}
		if granted < 0 {
			granted = 0
		}
	}
	s.shardInUse += granted
	if granted > 0 {
		s.global.ShardedAttempts++
	}
	if granted < want {
		s.global.ShardDegradedAttempts++
	}
	return granted
}

func (s *Server) releaseShards(n int) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.shardInUse -= n
	s.mu.Unlock()
}

// budgetedDist returns its attempt's shard slots to the budget when the
// fleet closes. Close is idempotent like the coordinator's; the release
// must be too.
type budgetedDist struct {
	core.Distributor
	s    *Server
	n    int
	once sync.Once
}

func (b *budgetedDist) Close() error {
	err := b.Distributor.Close()
	b.once.Do(func() { b.s.releaseShards(b.n) })
	return err
}

// shardFactory adapts the budget to core.Options.NewDistributor. Slots
// are acquired lazily — inside the factory, which the engine calls only
// when a run actually starts — so an attempt that fails before exploring
// never leaks budget. A (nil, nil) return tells the engine to run this
// attempt locally (budget exhausted); a fleet that fails to start returns
// its slots immediately and degrades to local the same way.
// memNarrowShards shrinks a fleet request under memory pressure: halved
// at the high rung, zeroed at critical. A new fleet of worker processes
// is the most expensive thing the daemon can start, and a narrower (or
// local) attempt is bit-identical anyway — only wall time moves.
func (s *Server) memNarrowShards(want int) int {
	switch s.cfg.Govern.Rung() {
	case govern.RungHigh:
		return (want + 1) / 2
	case govern.RungCritical:
		return 0
	}
	return want
}

func (s *Server) shardFactory() func(core.Job, core.Options) (core.Distributor, error) {
	return func(job core.Job, opts core.Options) (core.Distributor, error) {
		want := s.memNarrowShards(s.cfg.Shards)
		if want < s.cfg.Shards {
			s.mu.Lock()
			s.global.MemNarrowedFleets++
			s.mu.Unlock()
		}
		if want == 0 {
			return nil, nil
		}
		granted := s.acquireShards(want)
		if granted == 0 {
			return nil, nil
		}
		d, err := s.cfg.MakeDistributor(granted)(job, opts)
		if err != nil {
			s.releaseShards(granted)
			s.cfg.warnf("serve: shard fleet (%d workers) failed to start, running locally: %v", granted, err)
			return nil, nil
		}
		return &budgetedDist{Distributor: d, s: s, n: granted}, nil
	}
}

// backoffLocked computes the jittered exponential delay before the next
// attempt: base·2^(attempt−1) capped at RetryMax, then jittered to
// [½d, 1½d) so synchronized failures do not retry in lockstep.
func (s *Server) backoffLocked(attempt int) time.Duration {
	d := s.cfg.RetryBase
	for i := 1; i < attempt && d < s.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	return d/2 + time.Duration(s.rng.Int63n(int64(d)))
}

// requeueRetry moves a retry-waiting job back into its tenant queue when
// its backoff expires. During a drain it does nothing: the job stays
// non-terminal and the next process picks it up.
func (s *Server) requeueRetry(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateRetryWait || s.draining || s.stopRunners {
		return
	}
	ts := s.tenantLocked(j.spec.Tenant)
	ts.retrying--
	j.state = StateQueued
	j.enqueuedAt = s.cfg.Now()
	ts.q = append(ts.q, j)
	ts.queued++
	s.queued++
	s.armQueueTimeout(j)
	s.notifyLocked(j)
	s.cond.Signal()
}

// armQueueTimeout schedules queue-wait expiry for a just-enqueued job.
func (s *Server) armQueueTimeout(j *job) {
	if s.cfg.QueueTimeout <= 0 {
		return
	}
	at := j.enqueuedAt
	time.AfterFunc(s.cfg.QueueTimeout, func() { s.expireQueued(j, at) })
}

// expireQueued sheds a job that sat in the queue past QueueTimeout. The
// enqueue timestamp disambiguates re-enqueues: a retry that re-entered the
// queue later is not expired by the earlier timer.
func (s *Server) expireQueued(j *job, enqueuedAt time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateQueued || !j.enqueuedAt.Equal(enqueuedAt) || s.draining || s.stopRunners {
		return
	}
	ts := s.tenantLocked(j.spec.Tenant)
	s.removeQueuedLocked(ts, j)
	s.finishLocked(j, ts, StateExpired, "queue-wait timeout")
}

func (s *Server) removeQueuedLocked(ts *tenantState, j *job) {
	for i, q := range ts.q {
		if q == j {
			ts.q = append(ts.q[:i], ts.q[i+1:]...)
			ts.queued--
			s.queued--
			return
		}
	}
}

// notifyLocked pushes the job's current view to its watchers. Sends are
// non-blocking — a stalled client's channel fills and loses intermediate
// transitions, but the scheduler never waits on a client. Terminal
// transitions close the channels.
func (s *Server) notifyLocked(j *job) {
	v := j.view()
	for _, ch := range j.watchers {
		select {
		case ch <- v:
		default:
		}
	}
	if v.State.Terminal() {
		for _, ch := range j.watchers {
			close(ch)
		}
		j.watchers = nil
	}
}

// aggStats folds one completed attempt's engine measurements into the
// service-level totals.
func aggStats(dst *core.Stats, s core.Stats) {
	dst.PInit += s.PInit
	dst.PFinal += s.PFinal
	dst.PoolInit += s.PoolInit
	dst.PoolFinal += s.PoolFinal
	dst.PathsExplored += s.PathsExplored
	dst.PathsSkipped += s.PathsSkipped
	dst.InputsGenerated += s.InputsGenerated
	dst.PatchLocHits += s.PatchLocHits
	dst.BugLocHits += s.BugLocHits
	dst.Refinements += s.Refinements
	dst.Removals += s.Removals
	dst.SolverUnknowns += s.SolverUnknowns
	dst.SolverPanics += s.SolverPanics
	dst.ExecPanics += s.ExecPanics
	dst.FlipsRequeued += s.FlipsRequeued
	dst.FlipsDropped += s.FlipsDropped
	dst.SolverQueries += s.SolverQueries
	dst.CacheHits += s.CacheHits
	dst.CacheMisses += s.CacheMisses
	dst.CacheEvictions += s.CacheEvictions
	dst.CacheSubsumed += s.CacheSubsumed
	dst.EncodeCacheHits += s.EncodeCacheHits
	dst.EncodeCacheMisses += s.EncodeCacheMisses
	dst.ClausesLearned += s.ClausesLearned
	dst.ClausesKept += s.ClausesKept
	dst.ClausesDeleted += s.ClausesDeleted
	dst.AssumptionCores += s.AssumptionCores
	dst.AssumptionCoreLits += s.AssumptionCoreLits
	dst.Validations += s.Validations
	dst.ValidationFailures += s.ValidationFailures
	dst.Quarantines += s.Quarantines
	dst.FallbackSolves += s.FallbackSolves
	dst.RebuildRetries += s.RebuildRetries
	dst.BreakerTrips += s.BreakerTrips
	dst.SatTime += s.SatTime
	dst.LIATime += s.LIATime
	dst.ValidateTime += s.ValidateTime
	dst.PortfolioRaces += s.PortfolioRaces
	dst.PortfolioMirrorWins += s.PortfolioMirrorWins
	dst.PortfolioShared += s.PortfolioShared
	dst.BatchQueries += s.BatchQueries
	dst.BatchItems += s.BatchItems
	dst.BatchBisections += s.BatchBisections
	// Shard fleet size is a configuration, not a tally: report the widest
	// fleet any attempt ran with, and sum the event counters.
	if s.Shards > dst.Shards {
		dst.Shards = s.Shards
	}
	dst.ShardSteals += s.ShardSteals
	dst.ShardDeaths += s.ShardDeaths
	dst.ShardImportedVerdicts += s.ShardImportedVerdicts
	dst.ShardImportedCores += s.ShardImportedCores
	dst.ShardRejectedImports += s.ShardRejectedImports
	dst.ShardHeartbeatsMissed += s.ShardHeartbeatsMissed
	dst.ShardHedges += s.ShardHedges
	dst.ShardHedgeWins += s.ShardHedgeWins
	dst.ShardHedgeLosses += s.ShardHedgeLosses
	dst.ShardReconnects += s.ShardReconnects
	dst.ShardLateJoins += s.ShardLateJoins
	dst.ShardDegradedStarts += s.ShardDegradedStarts
	// Memory governance: event counters sum; peak gauges report the
	// largest any attempt reached; MemStopped means "some attempt was
	// memory-stopped" at the aggregate level.
	dst.MemRungSoft += s.MemRungSoft
	dst.MemRungHigh += s.MemRungHigh
	dst.MemRungCritical += s.MemRungCritical
	dst.MemCacheShrinks += s.MemCacheShrinks
	dst.MemCacheShrinkBytes += s.MemCacheShrinkBytes
	dst.MemContextRetires += s.MemContextRetires
	dst.MemContextRetireBytes += s.MemContextRetireBytes
	dst.MemSpills += s.MemSpills
	dst.MemSpilledItems += s.MemSpilledItems
	dst.MemReloads += s.MemReloads
	dst.MemSpillLoadFailures += s.MemSpillLoadFailures
	dst.MemStopped = dst.MemStopped || s.MemStopped
	dst.GovernPolls += s.GovernPolls
	dst.GovernTransitions += s.GovernTransitions
	if s.FrontierPeak > dst.FrontierPeak {
		dst.FrontierPeak = s.FrontierPeak
	}
	if s.SeenPeak > dst.SeenPeak {
		dst.SeenPeak = s.SeenPeak
	}
	if s.FrontierPeakBytes > dst.FrontierPeakBytes {
		dst.FrontierPeakBytes = s.FrontierPeakBytes
	}
	if s.SeenPeakBytes > dst.SeenPeakBytes {
		dst.SeenPeakBytes = s.SeenPeakBytes
	}
	if s.PoolPeakBytes > dst.PoolPeakBytes {
		dst.PoolPeakBytes = s.PoolPeakBytes
	}
}
