// Package buildinfo carries the build-time identity stamped into released
// binaries, so a deployed cpr, cpr-bench, or cprd can always say which
// build it is. Inject the version at build time with
//
//	go build -ldflags "-X cpr/internal/buildinfo.Version=$(git describe --tags --always)" ./cmd/...
//
// Unstamped builds report "dev" plus the VCS revision embedded by the Go
// toolchain when available.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the release identifier, overridden via -ldflags -X.
var Version = "dev"

// String returns the one-line identity printed by every binary's -version
// flag: tool name, version, VCS revision when embedded, and the toolchain.
func String(tool string) string {
	rev := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				rev = " (" + s.Value[:12] + ")"
			}
		}
	}
	return fmt.Sprintf("%s %s%s %s %s/%s", tool, Version, rev, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
