// Package baselines implements simplified re-creations of the three
// repair tools the paper compares against in Table 2, each built around
// the defining mechanism of the original:
//
//   - ProphetLite — test-driven enumerative repair with a learned-prior
//     style ranking (Prophet, POPL'16): candidates are validated against
//     a (small) test suite only, so overfitting patches pass.
//   - AngelixLite — angelic-value specification inference (Angelix,
//     ICSE'16): symbolic search for hole values that make the failing
//     tests pass, then synthesis of an expression matching those values.
//   - ExtractFixLite — crash-free-constraint repair (ExtractFix,
//     TOSEM'21): the specification at the bug location is propagated to
//     the patch location and a guard is synthesized that provably blocks
//     every violating input.
//
// All three share CPR's synthesizer, executor, and solver so Table 2
// compares strategies, not implementations.
package baselines

import (
	"math/rand"

	"cpr/internal/concolic"
	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/lang/interp"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

// Result is a baseline outcome: at most one (top-ranked) concrete patch.
type Result struct {
	// Patch is the returned template (nil: no plausible patch found).
	Patch *patch.Patch
	// Params instantiate the template.
	Params expr.Model
	// Tried counts candidate evaluations.
	Tried int
}

// Generated reports whether the tool produced a plausible patch.
func (r Result) Generated() bool { return r.Patch != nil }

// ConcreteExpr returns the parameter-instantiated patch expression.
func (r Result) ConcreteExpr() *expr.Term {
	if r.Patch == nil {
		return nil
	}
	sub := make(map[string]*expr.Term, len(r.Params))
	for k, v := range r.Params {
		sub[k] = expr.Int(v)
	}
	return expr.Subst(r.Patch.Expr, sub)
}

// Options tunes the baselines.
type Options struct {
	// Seed drives test generation deterministically.
	Seed int64
	// Tests is the size of the generated test suite for ProphetLite
	// (default 6 — the paper notes the developer suites are very limited).
	Tests int
	// MaxCandidates bounds candidate (template, params) evaluations
	// (default 4000).
	MaxCandidates int
	// SMT configures the shared solver.
	SMT smt.Options
}

func (o Options) withDefaults() Options {
	if o.Tests == 0 {
		o.Tests = 6
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 4000
	}
	return o
}

func templatesFor(job core.Job) []*patch.Patch {
	tpls := synth.Synthesize(job.Components, job.Program.HoleType)
	return synth.BuildPool(tpls, job.Components).Patches
}

func inputBounds(job core.Job) map[string]interval.Interval {
	b := make(map[string]interval.Interval)
	for _, p := range job.Program.Inputs() {
		if iv, ok := job.InputBounds[p.Name]; ok {
			b[p.Name] = iv
		} else {
			b[p.Name] = smt.Int32Bounds
		}
		if p.Type == lang.TypeBool {
			b[p.Name] = interval.New(0, 1)
		}
	}
	return b
}

// specHolds evaluates the job's specification on a finished concrete run:
// crash-free and σ true at every bug-location visit. It re-runs the
// program concolically to obtain bug-site snapshots with concrete values.
func specHolds(job core.Job, input map[string]int64, hole *expr.Term, params expr.Model) bool {
	exec := concolic.Execute(job.Program, input, concolic.Options{Patch: hole, PatchParams: params})
	if exec.Crashed() {
		return false
	}
	if exec.Err != nil && exec.Err.Kind != interp.ErrAssumeViolated {
		return false
	}
	for _, h := range exec.BugHits {
		v, err := expr.EvalBool(job.Spec, h.Concrete)
		if err != nil || !v {
			return false
		}
	}
	return true
}

// passingTests samples random inputs on which the unpatched program (the
// hole behaving as the buggy original, false) terminates cleanly. Real
// repair tools validate against the developer's passing tests; patches
// must preserve behavior on them.
func passingTests(job core.Job, seed int64, n int) []map[string]int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	bounds := inputBounds(job)
	var out []map[string]int64
	for tries := 0; tries < n*20 && len(out) < n; tries++ {
		in := make(map[string]int64)
		for _, p := range job.Program.Inputs() {
			iv := bounds[p.Name]
			in[p.Name] = iv.Lo + rng.Int63n(iv.Hi-iv.Lo+1)
		}
		exec := concolic.Execute(job.Program, in, concolic.Options{Patch: neutralHole(job)})
		if exec.Err == nil && !exec.Crashed() {
			ok := true
			for _, h := range exec.BugHits {
				v, err := expr.EvalBool(job.Spec, h.Concrete)
				if err != nil || !v {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, in)
			}
		}
	}
	return out
}

// neutralHole is the buggy original's stand-in for the hole: false for
// guard holes, zero for expression holes.
func neutralHole(job core.Job) *expr.Term {
	if job.Program.HoleType == lang.TypeInt {
		return expr.Int(0)
	}
	return expr.False()
}

// preservesOnPassing reports whether the candidate guard never fires on a
// passing test (behavior preservation: firing would delete the passing
// behavior). Integer holes are exempt (no guard semantics).
func preservesOnPassing(job core.Job, hole *expr.Term, params expr.Model, passing []map[string]int64) bool {
	if hole.Sort != expr.SortBool {
		return true
	}
	for _, in := range passing {
		exec := concolic.Execute(job.Program, in, concolic.Options{Patch: neutralHole(job)})
		for _, h := range exec.HoleHits {
			m := expr.Model{}
			for k, v := range h.Concrete {
				m[k] = v
			}
			for k, v := range params {
				m[k] = v
			}
			fired, err := expr.EvalBool(hole, m)
			if err != nil || fired {
				return false
			}
		}
	}
	return true
}

// ---- ProphetLite ----------------------------------------------------------

// Prophet runs test-driven enumerative repair: candidates ranked by a
// syntactic prior are validated against the failing inputs plus a few
// generated passing tests. The first candidate passing all tests wins —
// with a small suite this overfits exactly as Table 2 shows.
func Prophet(job core.Job, opts Options) (Result, error) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	pool := templatesFor(job)

	// Build the test suite: the failing inputs plus passing tests whose
	// behavior a patch must preserve (real suites assert outputs; firing
	// the guard on them counts as a failure).
	_ = rng
	tests := append([]map[string]int64{}, job.FailingInputs...)
	passing := passingTests(job, opts.Seed, opts.Tests-len(tests))
	tests = append(tests, passing...)

	// Prophet-style prior: smaller patches first, variable mentions help.
	ranked := append([]*patch.Patch{}, pool...)
	score := func(p *patch.Patch) int {
		s := -p.Expr.Size() * 2
		for _, v := range expr.Vars(p.Expr) {
			if !isParam(p, v.Name) {
				s += 3
			}
		}
		return s
	}
	sortStable(ranked, func(a, b *patch.Patch) bool {
		sa, sb := score(a), score(b)
		if sa != sb {
			return sa > sb
		}
		return a.ID < b.ID
	})

	res := Result{}
	for _, p := range ranked {
		// Enumerate parameter points (bounded).
		ok := false
		var goodParams expr.Model
		p.Constraint.Points(func(pt []int64) bool {
			if res.Tried >= opts.MaxCandidates {
				return false
			}
			res.Tried++
			params := expr.Model{}
			for i, name := range p.Params {
				params[name] = pt[i]
			}
			for _, tin := range tests {
				if !specHolds(job, tin, p.Expr, params) {
					return true // next candidate point
				}
			}
			if !preservesOnPassing(job, p.Expr, params, passing) {
				return true
			}
			ok, goodParams = true, params
			return false
		})
		if len(p.Params) == 0 && !ok {
			if res.Tried < opts.MaxCandidates {
				res.Tried++
				allPass := true
				for _, tin := range tests {
					if !specHolds(job, tin, p.Expr, expr.Model{}) {
						allPass = false
						break
					}
				}
				if allPass && preservesOnPassing(job, p.Expr, expr.Model{}, passing) {
					ok, goodParams = true, expr.Model{}
				}
			}
		}
		if ok {
			res.Patch, res.Params = p, goodParams
			return res, nil
		}
		if res.Tried >= opts.MaxCandidates {
			break
		}
	}
	return res, nil
}

// ---- AngelixLite ----------------------------------------------------------

// Angelix infers angelic hole values: for each failing input it searches
// uniform hole-direction assignments that make the run satisfy the
// specification, records the hole-site states, and synthesizes an
// expression matching the recorded values. With only failing tests, the
// inferred specification is extremely weak — the paper reports zero
// correct patches for this benchmark.
func Angelix(job core.Job, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if job.Program.HoleType != lang.TypeBool {
		return Result{}, core.ErrNoHole
	}
	pool := templatesFor(job)
	solver := smt.NewSolver(opts.SMT)

	// Phase 1: angelic forward search, uniform value per run.
	type obligation struct {
		snapshot expr.Model
		value    bool
	}
	var obligations []obligation
	for _, pin := range passingTests(job, opts.Seed, 4) {
		exec := concolic.Execute(job.Program, pin, concolic.Options{Patch: expr.Bool(false)})
		for _, h := range exec.HoleHits {
			obligations = append(obligations, obligation{snapshot: h.Concrete, value: false})
		}
	}
	for _, fi := range job.FailingInputs {
		found := false
		for _, v := range []bool{true, false} {
			exec := concolic.Execute(job.Program, fi, concolic.Options{Patch: expr.Bool(v)})
			if exec.Crashed() || (exec.Err != nil && exec.Err.Kind != interp.ErrAssumeViolated) {
				continue
			}
			bad := false
			for _, h := range exec.BugHits {
				val, err := expr.EvalBool(job.Spec, h.Concrete)
				if err != nil || !val {
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			for _, h := range exec.HoleHits {
				obligations = append(obligations, obligation{snapshot: h.Concrete, value: v})
			}
			found = true
			break
		}
		if !found {
			return Result{}, nil // no angelic values: repair fails
		}
	}

	// Phase 2: synthesize an expression matching the angelic values.
	res := Result{}
	for _, p := range pool {
		cons := []*expr.Term{p.ConstraintTerm()}
		for _, ob := range obligations {
			sub := make(map[string]*expr.Term, len(ob.snapshot))
			for name, v := range ob.snapshot {
				if !isParam(p, name) {
					sub[name] = expr.Int(v)
				}
			}
			inst := expr.Subst(p.Expr, sub)
			cons = append(cons, expr.Eq(inst, expr.Bool(ob.value)))
		}
		res.Tried++
		model, ok, err := solver.GetModel(expr.And(cons...), p.ParamBounds())
		if err != nil {
			continue
		}
		if ok {
			params := expr.Model{}
			for _, name := range p.Params {
				params[name] = model[name]
			}
			res.Patch, res.Params = p, params
			return res, nil
		}
	}
	return res, nil
}

// ---- ExtractFixLite -------------------------------------------------------

// ExtractFix propagates the crash-free constraint to the patch location
// and synthesizes a guard that provably blocks every violating input:
// ∀X: ¬θ(X,A) ⇒ σ(X) over the input bounds. Candidates are verified with
// the solver (CEGIS over the parameters), so generated patches guarantee
// the specification — which is why the original tool tops Table 2.
func ExtractFix(job core.Job, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if job.Program.HoleType != lang.TypeBool {
		return Result{}, core.ErrNoHole
	}
	solver := smt.NewSolver(opts.SMT)
	pool := templatesFor(job)
	bounds := inputBounds(job)

	// The crash-free constraint at the patch location: σ instantiated
	// over the failing run's hole snapshot (the dominating path).
	exec := concolic.Execute(job.Program, job.FailingInputs[0], concolic.Options{Patch: expr.False()})
	if len(exec.HoleHits) == 0 {
		return Result{}, nil
	}
	snap := exec.HoleHits[0].Snapshot
	sigma := expr.Subst(job.Spec, snap)

	res := Result{}
	for _, p := range pool {
		if p.Expr.IsConst() {
			continue // a crash-free guard must not delete all behavior
		}
		psi := func(params map[string]*expr.Term) *expr.Term {
			sub := make(map[string]*expr.Term, len(snap))
			for name, v := range snap {
				if !isParam(p, name) {
					sub[name] = v
				}
			}
			inst := expr.Subst(p.Expr, sub)
			return expr.Subst(inst, params)
		}
		// CEGIS over A: find A with no counterexample input. The failing
		// input must be caught by the guard, which seeds the constraint.
		failSub := make(map[string]*expr.Term, len(job.FailingInputs[0]))
		for name, v := range job.FailingInputs[0] {
			failSub[name] = expr.Int(v)
		}
		side := []*expr.Term{p.ConstraintTerm(), expr.Subst(psi(nil), failSub)}
		solved := false
		var goodParams expr.Model
		for iter := 0; iter < 96; iter++ {
			res.Tried++
			cand, ok, err := solver.GetModel(expr.And(side...), p.ParamBounds())
			if err != nil || !ok {
				break
			}
			params := expr.Model{}
			paramSub := make(map[string]*expr.Term, len(p.Params))
			for _, name := range p.Params {
				params[name] = cand[name]
				paramSub[name] = expr.Int(cand[name])
			}
			guard := psi(paramSub)
			// Counterexample: input not caught by the guard yet violating σ.
			cex, found, err := solver.GetModel(expr.And(expr.Not(guard), expr.Not(sigma)), bounds)
			if err != nil {
				break
			}
			if !found {
				// Require the guard not to reject everything: some input
				// must still pass it (crash-freedom with minimal
				// functionality deletion).
				_, alive, err2 := solver.GetModel(expr.And(expr.Not(guard), sigma), bounds)
				if err2 == nil && alive {
					solved, goodParams = true, params
				}
				break
			}
			// Require the guard to catch this violating input.
			inputSub := make(map[string]*expr.Term, len(cex))
			for name, v := range cex {
				if !isParam(p, name) {
					inputSub[name] = expr.Int(v)
				}
			}
			side = append(side, expr.Subst(psi(nil), inputSub))
		}
		if solved {
			res.Patch, res.Params = p, goodParams
			return res, nil
		}
	}
	return res, nil
}

func isParam(p *patch.Patch, name string) bool {
	for _, q := range p.Params {
		if q == name {
			return true
		}
	}
	return false
}

func sortStable(ps []*patch.Patch, less func(a, b *patch.Patch) bool) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && less(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
