package baselines

import (
	"testing"

	"cpr/internal/core"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/lang"
	"cpr/internal/patch"
	"cpr/internal/smt"
	"cpr/internal/synth"
)

func divZeroJob() core.Job {
	prog := lang.MustParse(`
void main(int x, int y) {
    if (__HOLE__) {
        return;
    }
    __BUG__;
    int c = 100 / x;
    int d = c / y;
}`)
	return core.Job{
		Program: prog,
		Spec: expr.And(
			expr.Ne(expr.IntVar("x"), expr.Int(0)),
			expr.Ne(expr.IntVar("y"), expr.Int(0)),
		),
		FailingInputs: []map[string]int64{{"x": 7, "y": 0}},
		Components: synth.Components{
			Vars:         map[string]lang.Type{"x": lang.TypeInt, "y": lang.TypeInt},
			Params:       []string{"a", "b"},
			ParamRange:   interval.New(-10, 10),
			Cmp:          []expr.Op{expr.OpEq, expr.OpGe, expr.OpLt},
			Bool:         []expr.Op{expr.OpOr},
			Arith:        []expr.Op{},
			MaxTemplates: 40,
		},
		InputBounds: map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
		},
		Budget: core.Budget{MaxIterations: 10},
	}
}

func devPatch() *expr.Term {
	return expr.Or(
		expr.Eq(expr.IntVar("x"), expr.Int(0)),
		expr.Eq(expr.IntVar("y"), expr.Int(0)),
	)
}

func isCorrect(t *testing.T, job core.Job, res Result) bool {
	t.Helper()
	if !res.Generated() {
		return false
	}
	solver := smt.NewSolver(smt.Options{})
	p := patch.New(1, res.ConcreteExpr(), nil)
	ok, _, err := core.Covers(solver, p, devPatch(), job.InputBounds, 0)
	if err != nil {
		t.Fatalf("Covers: %v", err)
	}
	return ok
}

// TestProphetOverfits: with a small test suite ProphetLite returns a
// plausible patch, typically not the correct one (Table 2: 2/30 correct).
func TestProphetOverfits(t *testing.T) {
	job := divZeroJob()
	res, err := Prophet(job, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Prophet: %v", err)
	}
	if !res.Generated() {
		t.Fatalf("Prophet produced no patch (tried %d)", res.Tried)
	}
	t.Logf("prophet patch: %v correct=%v", expr.CString(res.ConcreteExpr()), isCorrect(t, job, res))
}

// TestAngelixWeakSpec: angelic forward search with only failing tests
// yields a patch fitting the inferred values — almost never the correct
// one (Table 2: 0 correct).
func TestAngelixWeakSpec(t *testing.T) {
	job := divZeroJob()
	res, err := Angelix(job, Options{Seed: 1})
	if err != nil {
		t.Fatalf("Angelix: %v", err)
	}
	if !res.Generated() {
		t.Fatalf("Angelix produced no patch (tried %d)", res.Tried)
	}
	if isCorrect(t, job, res) {
		t.Log("note: Angelix found the correct patch on this subject (rare)")
	}
}

// TestExtractFixSound: the crash-free-constraint tool must return a patch
// that provably blocks every violating input.
func TestExtractFixSound(t *testing.T) {
	job := divZeroJob()
	res, err := ExtractFix(job, Options{})
	if err != nil {
		t.Fatalf("ExtractFix: %v", err)
	}
	if !res.Generated() {
		t.Fatalf("ExtractFix produced no patch (tried %d)", res.Tried)
	}
	// Soundness: ¬θ ∧ ¬σ must be unsatisfiable.
	solver := smt.NewSolver(smt.Options{})
	sigma := job.Spec
	guard := res.ConcreteExpr()
	sat, err := solver.IsSat(expr.And(expr.Not(guard), expr.Not(sigma)), job.InputBounds)
	if err != nil {
		t.Fatal(err)
	}
	if sat {
		t.Fatalf("ExtractFix patch %v does not block all violations", expr.CString(guard))
	}
	t.Logf("extractfix patch: %v correct=%v", expr.CString(guard), isCorrect(t, job, res))
}

func TestBaselinesDeterministic(t *testing.T) {
	job := divZeroJob()
	a, err1 := Prophet(job, Options{Seed: 42})
	b, err2 := Prophet(job, Options{Seed: 42})
	if err1 != nil || err2 != nil {
		t.Fatalf("%v %v", err1, err2)
	}
	if (a.Patch == nil) != (b.Patch == nil) {
		t.Fatal("nondeterministic generation")
	}
	if a.Patch != nil && a.Patch.Expr != b.Patch.Expr {
		t.Fatalf("nondeterministic patch: %v vs %v", a.Patch.Expr, b.Patch.Expr)
	}
}

func TestBaselinesOnIntHole(t *testing.T) {
	prog := lang.MustParse(`
int main(int x) {
    int y = __HOLE__;
    __BUG__;
    assert(y == x + 1);
    return y;
}`)
	job := core.Job{
		Program:       prog,
		Spec:          expr.Eq(expr.IntVar("y"), expr.Add(expr.IntVar("x"), expr.Int(1))),
		FailingInputs: []map[string]int64{{"x": 3}},
		Components: synth.Components{
			Vars:   map[string]lang.Type{"x": lang.TypeInt},
			Params: []string{"a"},
			Arith:  []expr.Op{expr.OpAdd},
		},
		InputBounds: map[string]interval.Interval{"x": interval.New(-50, 50)},
	}
	// Angelix and ExtractFix support only boolean holes.
	if _, err := Angelix(job, Options{}); err == nil {
		t.Fatal("Angelix should reject integer holes")
	}
	if _, err := ExtractFix(job, Options{}); err == nil {
		t.Fatal("ExtractFix should reject integer holes")
	}
	// Prophet works on any hole type.
	res, err := Prophet(job, Options{Seed: 2})
	if err != nil {
		t.Fatalf("Prophet: %v", err)
	}
	if res.Generated() {
		t.Logf("prophet int patch: %v", expr.CString(res.ConcreteExpr()))
	}
}
