package patch

import (
	"errors"
	"fmt"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt"
)

// Refiner implements the abstract-patch refinement of the paper's §4
// (Algorithm 3): counterexample-guided shrinking of the parameter
// constraint Tρ until the specification holds for every admissible
// parameter vector on the current path.
type Refiner struct {
	// Solver answers the satisfiability queries.
	Solver *smt.Solver
	// InputBounds bound the program input symbols X (and any auxiliary
	// symbols such as patch outputs default to the solver's 32-bit range).
	InputBounds map[string]interval.Interval
	// MaxCounterexamples bounds refinement iterations per call
	// (default 4096); exceeding it returns ErrRefineBudget.
	MaxCounterexamples int
}

// ErrRefineBudget is returned when refinement exceeds its iteration cap.
var ErrRefineBudget = errors.New("patch: refinement budget exhausted")

// Refine is Algorithm 3. Inputs: the path constraint φ (over X and patch
// outputs), the instantiated patch formula ψρ (over X, A, patch outputs),
// the instantiated specification σ (over X and patch outputs), the patch
// (whose Params name the region dimensions), and the region Tρ to refine.
//
// It returns the refined region. An empty region means the patch cannot
// be repaired for this path and must be discarded ("return False").
//
//	ωpass1 = φ ∧ σ             sat?  (the path can satisfy σ at all)
//	ωpass2 = φ ∧ ψρ ∧ Tρ ∧ σ   unsat with ωpass1 sat ⇒ discard
//	ωfail  = φ ∧ ψρ ∧ Tρ ∧ ¬σ  each model yields a counterexample
//	                           parameter point, removed via Split;
//	                           iterate until unsat, then Merge.
func (r *Refiner) Refine(phi, psi, sigma *expr.Term, p *Patch, region interval.Region) (interval.Region, error) {
	maxCex := r.MaxCounterexamples
	if maxCex == 0 {
		maxCex = 4096
	}
	bounds := r.boundsWith(p, region)

	// Removal of non-refinable constraints (Algorithm 3 lines 1-7).
	pass1, err := r.Solver.IsSat(expr.And(phi, sigma), r.InputBounds)
	if err != nil {
		return interval.Region{}, fmt.Errorf("refine ωpass1: %w", err)
	}
	if pass1 {
		pass2, err := r.Solver.IsSat(expr.And(phi, psi, region.ToTerm(p.Params), sigma), bounds)
		if err != nil {
			return interval.Region{}, fmt.Errorf("refine ωpass2: %w", err)
		}
		if !pass2 {
			return interval.EmptyRegion(region.Dim), nil
		}
	}

	// Counterexample exploration (lines 8-31). Each model of ωfail is one
	// parameter vector admitting a specification violation; Split removes
	// it (3ⁿ−1 regions per removal) and the loop continues on the refined
	// region, which is exactly the recursion of Algorithm 3 unrolled:
	// sub-regions incompatible with φ ∧ ψρ never produce counterexamples
	// and are kept as-is (line 24).
	cur := region
	for i := 0; i < maxCex; i++ {
		if cur.IsEmpty() {
			return cur, nil
		}
		if i > 0 && i%16 == 0 {
			// Point removal fragments the region (up to 3ⁿ−1 boxes per
			// counterexample); periodic merging keeps ToTerm formulas and
			// split costs linear instead of quadratic.
			cur = cur.Merge()
		}
		fail := expr.And(phi, psi, cur.ToTerm(p.Params), expr.Not(sigma))
		model, found, err := r.Solver.GetModel(fail, r.boundsWith(p, cur))
		if err != nil {
			return interval.Region{}, fmt.Errorf("refine ωfail: %w", err)
		}
		if !found {
			// No more violations: merge contiguous regions and return.
			return cur.Merge(), nil
		}
		cur = cur.SubtractPoint(p.ParamPoint(model))
	}
	return interval.Region{}, ErrRefineBudget
}

// boundsWith merges the input bounds with the hull of the region's
// parameter dimensions.
func (r *Refiner) boundsWith(p *Patch, region interval.Region) map[string]interval.Interval {
	bounds := make(map[string]interval.Interval, len(r.InputBounds)+len(p.Params))
	for k, v := range r.InputBounds {
		bounds[k] = v
	}
	for i, name := range p.Params {
		hull := interval.Empty()
		for _, b := range region.Boxes {
			hull = hull.Hull(b[i])
		}
		bounds[name] = hull
	}
	return bounds
}
