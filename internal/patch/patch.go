// Package patch implements abstract patches — the 3-tuples (θρ, Tρ, ψρ)
// of the paper's §3.1 — and the counterexample-guided parameter-constraint
// refinement of §4 (Algorithm 3).
//
// An abstract patch is a template expression θρ over program variables and
// parameters, together with a parameter constraint Tρ represented as a
// union of integer boxes (package interval). The patch formula ψρ is
// derived on demand by instantiating θρ over a symbolic snapshot of the
// program state at the patch location and equating it with the fresh
// patch-output symbol the concolic executor introduced.
package patch

import (
	"fmt"
	"sort"
	"strings"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

// Patch is an abstract patch (θρ, Tρ, ψρ). Concrete patches are the
// special case of an empty parameter list (or singleton boxes).
type Patch struct {
	// ID is a stable identifier within a pool.
	ID int
	// Expr is the template θρ over program variables and parameters.
	Expr *expr.Term
	// Params lists the parameter names occurring in Expr, sorted; the
	// dimensions of Constraint correspond to this order.
	Params []string
	// Constraint is Tρ: the region of admissible parameter vectors.
	Constraint interval.Region

	// Score is the accumulated ranking evidence (§3.5.3): incremented
	// when the patch is consistent with an explored path, more when that
	// path exercised the bug location, and decremented when the patch
	// behaves as functionality deletion on the path.
	Score float64
	// Deletions counts paths on which the patch forced the guard to a
	// constant (functionality-deletion evidence).
	Deletions int
}

// New builds an abstract patch from a template and the parameter box.
// Parameters are the template's free variables that appear in paramBounds;
// everything else is treated as a program variable.
func New(id int, template *expr.Term, paramBounds map[string]interval.Interval) *Patch {
	var params []string
	for _, v := range expr.Vars(template) {
		if _, ok := paramBounds[v.Name]; ok {
			params = append(params, v.Name)
		}
	}
	sort.Strings(params)
	box := make(interval.Box, len(params))
	for i, p := range params {
		box[i] = paramBounds[p]
	}
	return &Patch{ID: id, Expr: template, Params: params, Constraint: interval.FromBox(box)}
}

// Clone returns a deep copy (constraint region included).
func (p *Patch) Clone() *Patch {
	c := *p
	c.Constraint = p.Constraint.Clone()
	return &c
}

// CountConcrete returns the number of concrete patches this abstract patch
// covers: the volume of Tρ, or 1 for parameterless templates.
func (p *Patch) CountConcrete() int64 {
	if len(p.Params) == 0 {
		return 1
	}
	return p.Constraint.Count()
}

// ConstraintTerm renders Tρ(A) as a formula over the parameter names.
func (p *Patch) ConstraintTerm() *expr.Term {
	if len(p.Params) == 0 {
		return expr.True()
	}
	return p.Constraint.ToTerm(p.Params)
}

// Formula builds ψρ for one patch-location hit: out ⇔ θρ[vars ↦ snapshot]
// for boolean holes, out = θρ[…] for integer holes. Program variables
// missing from the snapshot are left free (they then range over their
// bounds, a sound over-approximation).
func (p *Patch) Formula(out *expr.Term, snapshot map[string]*expr.Term) *expr.Term {
	sub := make(map[string]*expr.Term, len(snapshot))
	for name, val := range snapshot {
		if !p.IsParam(name) {
			sub[name] = val
		}
	}
	inst := expr.Subst(p.Expr, sub)
	return expr.Eq(out, inst)
}

// IsParam reports whether name is one of the patch's template parameters.
func (p *Patch) IsParam(name string) bool {
	for _, q := range p.Params {
		if q == name {
			return true
		}
	}
	return false
}

// ParamBounds returns per-parameter bounds covering the constraint region
// (the hull), for solver bounds maps.
func (p *Patch) ParamBounds() map[string]interval.Interval {
	m := make(map[string]interval.Interval, len(p.Params))
	for i, name := range p.Params {
		hull := interval.Empty()
		for _, b := range p.Constraint.Boxes {
			hull = hull.Hull(b[i])
		}
		m[name] = hull
	}
	return m
}

// ParamPoint extracts this patch's parameter vector from a model.
func (p *Patch) ParamPoint(m expr.Model) []int64 {
	pt := make([]int64, len(p.Params))
	for i, name := range p.Params {
		pt[i] = m[name]
	}
	return pt
}

// AnyParams returns one admissible parameter assignment, or ok=false when
// the constraint region is empty.
func (p *Patch) AnyParams() (expr.Model, bool) {
	if len(p.Params) == 0 {
		return expr.Model{}, true
	}
	var out expr.Model
	p.Constraint.Points(func(pt []int64) bool {
		out = expr.Model{}
		for i, name := range p.Params {
			out[name] = pt[i]
		}
		return false // first point suffices
	})
	if out == nil {
		return nil, false
	}
	return out, true
}

// String renders the patch as its C expression plus parameter constraint.
func (p *Patch) String() string {
	var b strings.Builder
	b.WriteString(expr.CString(p.Expr))
	if len(p.Params) > 0 {
		fmt.Fprintf(&b, "  with %s ∈ %s", strings.Join(p.Params, ","), p.Constraint)
	}
	return b.String()
}

// Pool is an ordered collection of abstract patches.
type Pool struct {
	Patches []*Patch
}

// Clone deep-copies the pool.
func (pl *Pool) Clone() *Pool {
	out := &Pool{Patches: make([]*Patch, len(pl.Patches))}
	for i, p := range pl.Patches {
		out.Patches[i] = p.Clone()
	}
	return out
}

// Size returns the number of abstract patches.
func (pl *Pool) Size() int { return len(pl.Patches) }

// CountConcrete returns the total number of concrete patches in the pool
// (the |P| columns of the paper's tables).
func (pl *Pool) CountConcrete() int64 {
	var n int64
	for _, p := range pl.Patches {
		n += p.CountConcrete()
	}
	return n
}

// Remove deletes the patch with the given ID.
func (pl *Pool) Remove(id int) {
	kept := pl.Patches[:0]
	for _, p := range pl.Patches {
		if p.ID != id {
			kept = append(kept, p)
		}
	}
	pl.Patches = kept
}

// Ranked returns the patches sorted by descending score; ties break by
// fewer deletion marks, then by smaller concrete count (more specific
// patches first), then by ID for determinism.
func (pl *Pool) Ranked() []*Patch {
	out := append([]*Patch(nil), pl.Patches...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Deletions != b.Deletions {
			return a.Deletions < b.Deletions
		}
		ca, cb := a.CountConcrete(), b.CountConcrete()
		if ca != cb {
			return ca < cb
		}
		return a.ID < b.ID
	})
	return out
}
