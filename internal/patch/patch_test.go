package patch

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt"
)

var (
	x   = expr.IntVar("x")
	y   = expr.IntVar("y")
	a   = expr.IntVar("a")
	b   = expr.IntVar("b")
	out = expr.BoolVar("patch!out!0")
)

func figBounds() map[string]interval.Interval {
	return map[string]interval.Interval{
		"x": interval.New(-100, 100),
		"y": interval.New(-100, 100),
	}
}

// The Figure 1 specification: no divide-by-zero at the bug location,
// σ = x ≠ 0 ∧ y ≠ 0 (the linear form of x·y ≠ 0 over the integers).
func figSpec() *expr.Term {
	return expr.And(expr.Ne(x, expr.Int(0)), expr.Ne(y, expr.Int(0)))
}

func newRefiner() *Refiner {
	return &Refiner{
		Solver:      smt.NewSolver(smt.Options{}),
		InputBounds: figBounds(),
	}
}

func TestNewPatchBasics(t *testing.T) {
	p := New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 10)})
	if len(p.Params) != 1 || p.Params[0] != "a" {
		t.Fatalf("params: %v", p.Params)
	}
	if p.CountConcrete() != 21 {
		t.Fatalf("count: %d", p.CountConcrete())
	}
	if p.String() == "" || p.ConstraintTerm().IsFalse() {
		t.Fatal("rendering broken")
	}
	// Parameterless patch counts as one concrete patch.
	c := New(2, expr.Gt(x, expr.Int(0)), nil)
	if c.CountConcrete() != 1 || !c.ConstraintTerm().IsTrue() {
		t.Fatalf("concrete patch: %d %v", c.CountConcrete(), c.ConstraintTerm())
	}
}

func TestFormulaInstantiation(t *testing.T) {
	p := New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 10)})
	// Snapshot: at the hole, x had symbolic value x0 + 1.
	snap := map[string]*expr.Term{"x": expr.Add(expr.IntVar("x0"), expr.Int(1))}
	psi := p.Formula(out, snap)
	// ψ must mention x0 and a, not x.
	if expr.ContainsVar(psi, "x") || !expr.ContainsVar(psi, "x0") || !expr.ContainsVar(psi, "a") {
		t.Fatalf("ψ = %v", psi)
	}
	// Parameters must never be substituted, even if a snapshot variable
	// shares the name.
	snap2 := map[string]*expr.Term{"a": expr.Int(9), "x": x}
	psi2 := p.Formula(out, snap2)
	if !expr.ContainsVar(psi2, "a") {
		t.Fatalf("parameter was substituted away: %v", psi2)
	}
}

// TestFigure1Step2Patch1 reproduces the paper's §2 refinement of patch 1
// (x ≥ a) on input partition P1 (x > 3 ∧ y ≤ 5): the values {5, 6, 7} are
// removed from a ∈ [-10, 7], leaving a ∈ [-10, 4].
func TestFigure1Step2Patch1(t *testing.T) {
	p := New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 7)})
	phi := expr.And(
		expr.Gt(x, expr.Int(3)),
		expr.Le(y, expr.Int(5)),
		expr.Eq(out, expr.False()), // the crashing path takes the guard's false side
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	ref, err := newRefiner().Refine(phi, psi, figSpec(), p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if ref.Count() != 15 { // [-10, 4]
		t.Fatalf("refined count %d (%v), want 15", ref.Count(), ref)
	}
	if ref.Contains([]int64{5}) || !ref.Contains([]int64{4}) || !ref.Contains([]int64{-10}) {
		t.Fatalf("refined region wrong: %v", ref)
	}
}

// TestFigure1Step2Patch2: patch 2 (y < b, b ∈ [1, 10]) cannot be violated
// on P1 — the refinement is a no-op.
func TestFigure1Step2Patch2(t *testing.T) {
	p := New(2, expr.Lt(y, b), map[string]interval.Interval{"b": interval.New(1, 10)})
	phi := expr.And(
		expr.Gt(x, expr.Int(3)),
		expr.Le(y, expr.Int(5)),
		expr.Eq(out, expr.False()),
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	ref, err := newRefiner().Refine(phi, psi, figSpec(), p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if ref.Count() != 10 {
		t.Fatalf("refined count %d, want 10 (unchanged)", ref.Count())
	}
}

// TestFigure1Step3Patch2: on P2 (x ≤ 3 ∧ y > 5) every parameter value of
// patch 2 admits a violation (x = 0), so the region empties: the patch is
// discarded.
func TestFigure1Step3Patch2(t *testing.T) {
	p := New(2, expr.Lt(y, b), map[string]interval.Interval{"b": interval.New(1, 10)})
	phi := expr.And(
		expr.Le(x, expr.Int(3)),
		expr.Gt(y, expr.Int(5)),
		expr.Eq(out, expr.False()),
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	ref, err := newRefiner().Refine(phi, psi, figSpec(), p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !ref.IsEmpty() {
		t.Fatalf("patch 2 should be discarded on P2, region %v", ref)
	}
}

// TestFigure1Step3Patch1: on P2, patch 1 (x ≥ a) refines from [-10, 4] to
// [-10, 0].
func TestFigure1Step3Patch1(t *testing.T) {
	p := New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(-10, 4)})
	phi := expr.And(
		expr.Le(x, expr.Int(3)),
		expr.Gt(y, expr.Int(5)),
		expr.Eq(out, expr.False()),
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	ref, err := newRefiner().Refine(phi, psi, figSpec(), p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if ref.Count() != 11 { // [-10, 0]
		t.Fatalf("refined count %d (%v), want 11", ref.Count(), ref)
	}
	if ref.Contains([]int64{1}) || !ref.Contains([]int64{0}) {
		t.Fatalf("refined region wrong: %v", ref)
	}
}

// TestFigure1Patch3 reproduces patch 3 (x == a || y == b): on P1 the
// parameter constraint collapses to b = 0 ∧ a ∈ [-10, 10].
func TestFigure1Patch3(t *testing.T) {
	p := New(3, expr.Or(expr.Eq(x, a), expr.Eq(y, b)), map[string]interval.Interval{
		"a": interval.New(-10, 10),
		"b": interval.New(-10, 10),
	})
	// Initial constraint from the paper: (a=7 ∧ b∈[-10,10]) ∨ (b=0 ∧ a∈[-10,10]),
	// as disjoint boxes: a=7×[-10,10] plus b=0 with a≠7.
	p.Constraint = interval.Region{Dim: 2, Boxes: []interval.Box{
		{interval.Point(7), interval.New(-10, 10)},
		{interval.New(-10, 6), interval.Point(0)},
		{interval.New(8, 10), interval.Point(0)},
	}}
	if p.Constraint.Count() != 41 {
		t.Fatalf("initial count %d, want 41", p.Constraint.Count())
	}
	phi := expr.And(
		expr.Gt(x, expr.Int(3)),
		expr.Le(y, expr.Int(5)),
		expr.Eq(out, expr.False()),
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	ref, err := newRefiner().Refine(phi, psi, figSpec(), p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	// Paper: b = 0 ∧ a ∈ [-10, 10] → 21 concrete patches.
	if ref.Count() != 21 {
		t.Fatalf("refined count %d (%v), want 21", ref.Count(), ref)
	}
	if !ref.Contains([]int64{7, 0}) || ref.Contains([]int64{7, 3}) {
		t.Fatalf("refined region wrong: %v", ref)
	}
}

// TestRefineDiscardsWhenNoParamsWork: ωpass1 sat, ωpass2 unsat ⇒ empty.
func TestRefineDiscardsWhenNoParamsWork(t *testing.T) {
	// Patch: y < b with b ∈ [1,3]; path forces y = 5 and the guard false
	// side... then ψ gives ¬(5 < b) fine; but spec requires y ≠ 5 — no b
	// can help, while the path itself could satisfy σ with a different
	// patch (σ only speaks about x).
	p := New(1, expr.Lt(y, b), map[string]interval.Interval{"b": interval.New(1, 3)})
	phi := expr.And(
		expr.Eq(y, expr.Int(0)),
		expr.Eq(out, expr.True()), // guard true side
	)
	psi := p.Formula(out, map[string]*expr.Term{"x": x, "y": y})
	// σ: the guard must not be taken (out = false) — impossible here for
	// any b since y=0 < b for all b ∈ [1,3].
	sigma := expr.Not(out)
	ref, err := newRefiner().Refine(phi, psi, sigma, p, p.Constraint)
	if err != nil {
		t.Fatalf("Refine: %v", err)
	}
	if !ref.IsEmpty() {
		t.Fatalf("expected discard, got %v", ref)
	}
}

func TestPoolRankingAndCounts(t *testing.T) {
	bounds := map[string]interval.Interval{"a": interval.New(-10, 10)}
	p1 := New(1, expr.Ge(x, a), bounds)
	p2 := New(2, expr.Lt(x, a), bounds)
	p3 := New(3, expr.Gt(x, expr.Int(0)), nil)
	pool := &Pool{Patches: []*Patch{p1, p2, p3}}
	if pool.CountConcrete() != 43 {
		t.Fatalf("pool count %d, want 43", pool.CountConcrete())
	}
	p2.Score = 10
	p1.Score = 10
	p1.Deletions = 1
	ranked := pool.Ranked()
	if ranked[0].ID != 2 { // same score, fewer deletions wins
		t.Fatalf("ranking: %v", []int{ranked[0].ID, ranked[1].ID, ranked[2].ID})
	}
	pool.Remove(2)
	if pool.Size() != 2 || pool.CountConcrete() != 22 {
		t.Fatalf("after remove: %d %d", pool.Size(), pool.CountConcrete())
	}
	// Clone independence.
	cl := pool.Clone()
	cl.Patches[0].Score = 99
	if pool.Patches[0].Score == 99 {
		t.Fatal("clone shares score state")
	}
}

func TestAnyParams(t *testing.T) {
	p := New(1, expr.Ge(x, a), map[string]interval.Interval{"a": interval.New(3, 5)})
	m, ok := p.AnyParams()
	if !ok || m["a"] < 3 || m["a"] > 5 {
		t.Fatalf("AnyParams: %v %v", m, ok)
	}
	p.Constraint = interval.EmptyRegion(1)
	if _, ok := p.AnyParams(); ok {
		t.Fatal("empty region should have no params")
	}
	c := New(2, expr.Gt(x, expr.Int(0)), nil)
	if m, ok := c.AnyParams(); !ok || len(m) != 0 {
		t.Fatalf("concrete AnyParams: %v %v", m, ok)
	}
}
