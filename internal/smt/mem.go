package smt

// Memory accounting and trimming for the governor (package govern). The
// incremental context — clause DB, learnt clauses, Tseitin maps, LIA
// constraint memo — is the solver's only structure that grows without
// bound across queries, so it is what the governor's soft rung retires.
//
// Retiring a context is the same mechanism incrementalCtx already uses
// when the clause DB outgrows MaxContextClauses: drop it and let the next
// query rebuild from the formula. It is proven result-neutral (the context
// is a pure acceleration structure). Note this is deliberately NOT
// quarantineCtx: no guard escalation, no epoch abort — the context is
// healthy, just big.

// Rough per-unit sizes for ApproxMemBytes. These are estimates of the
// retained heap per clause / map entry, not exact measurements; the
// governor only needs the right order of magnitude.
const (
	memClauseBytes   = 64  // clause header + average literal payload
	memMapEntryBytes = 48  // map bucket share + key/value words
	memConEntryBytes = 112 // conCache entry: key + compiled LIA constraint
	memBoxBytes      = 256 // boxState: bounds, selector lits, history
)

// ApproxMemBytes estimates the bytes retained by this solver's incremental
// machinery (its context plus the trusted scratch child's, if any). Zero
// when no context has been built. Call it from the goroutine that owns the
// solver, or at a barrier when no query is in flight — the same rule as
// Check.
func (s *Solver) ApproxMemBytes() uint64 {
	if s == nil {
		return 0
	}
	var n uint64
	if s.ctx != nil {
		n += s.ctx.approxMemBytes()
	}
	if s.scratch != nil {
		n += s.scratch.ApproxMemBytes()
	}
	return n
}

// TrimMemory retires the incremental context (and the scratch child's),
// reporting how many contexts were dropped and an estimate of the bytes
// they held. The next incremental query transparently rebuilds. Same
// concurrency rule as ApproxMemBytes.
func (s *Solver) TrimMemory() (retired int, freed uint64) {
	if s == nil {
		return 0, 0
	}
	if s.ctx != nil {
		freed += s.ctx.approxMemBytes()
		s.ctx = nil
		retired++
	}
	if s.scratch != nil {
		r, f := s.scratch.TrimMemory()
		retired += r
		freed += f
	}
	return retired, freed
}

func (c *Context) approxMemBytes() uint64 {
	if c == nil || c.enc == nil {
		return 0
	}
	n := uint64(c.enc.sat.NumClauses()+c.enc.sat.NumLearnts()) * memClauseBytes
	n += uint64(len(c.enc.atomVar)+len(c.enc.boolVar)+len(c.enc.cache)+len(c.enc.atoms)) * memMapEntryBytes
	n += uint64(len(c.groups)+len(c.selGroup)) * memMapEntryBytes
	n += uint64(len(c.intVars)+len(c.intVarSet)) * memMapEntryBytes
	n += uint64(len(c.conCache)) * memConEntryBytes
	n += uint64(len(c.boxes)) * memBoxBytes
	return n
}
