package smt

import (
	"errors"
	"testing"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/smt/lia"
)

// hardFormula returns a formula that survives simplification and reaches
// the DPLL(T) loop, so budget/deadline paths are actually exercised.
func hardFormula() (*expr.Term, map[string]interval.Interval) {
	x, y := expr.IntVar("x"), expr.IntVar("y")
	f := expr.And(
		expr.Eq(expr.Add(x, y), expr.Int(10)),
		expr.Gt(x, expr.Int(0)),
		expr.Lt(y, expr.Int(5)),
		expr.Ne(expr.Mul(x, y), expr.Int(21)),
	)
	return f, map[string]interval.Interval{
		"x": interval.New(-50, 50), "y": interval.New(-50, 50),
	}
}

// TestUnknownOnTheoryBudget: exhausting the LIA budget surfaces ErrBudget
// and an Unknown status rather than a wrong verdict.
func TestUnknownOnTheoryBudget(t *testing.T) {
	s := NewSolver(Options{LIA: lia.Options{MaxSteps: 1}})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	f := expr.And(
		expr.Eq(expr.Add(x, y), expr.Int(10)),
		expr.Gt(x, expr.Int(0)),
		expr.Lt(y, expr.Int(5)),
	)
	res, err := s.Check(f, nil)
	if err == nil {
		// A single step may still suffice for tiny formulas; force more
		// work with a disequality split.
		f = expr.And(f, expr.Ne(expr.Mul(x, y), expr.Int(21)))
		res, err = s.Check(f, map[string]interval.Interval{
			"x": interval.New(-50, 50), "y": interval.New(-50, 50),
		})
	}
	if err == nil {
		t.Skip("budget not exhausted on this formula")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown", res.Status)
	}
}

// TestMaxTheoryRounds: a tiny round cap yields Unknown, not a verdict.
func TestMaxTheoryRounds(t *testing.T) {
	s := NewSolver(Options{MaxTheoryRounds: 1})
	x := expr.IntVar("x")
	// Disjunction whose first skeleton model is theory-inconsistent:
	// x < 0 ∧ (x > 5 ∨ x = 1): at least two rounds may be needed.
	f := expr.And(
		expr.Lt(x, expr.Int(0)),
		expr.Or(expr.Gt(x, expr.Int(5)), expr.Eq(x, expr.Int(1))),
	)
	res, err := s.Check(f, nil)
	if err == nil && res.Status == Unsat {
		return // solved within one round: also acceptable
	}
	if err == nil {
		t.Fatalf("expected unsat or budget error, got %v", res.Status)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestBudgetErrorContext: budget exhaustion carries the originating
// query's context (stage, query number, work counters), not just the bare
// sentinel.
func TestBudgetErrorContext(t *testing.T) {
	s := NewSolver(Options{LIA: lia.Options{MaxSteps: 1}})
	f, bounds := hardFormula()
	_, err := s.Check(f, bounds)
	if err == nil {
		t.Skip("budget not exhausted on this formula")
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T: %v", err, err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("BudgetError must wrap ErrBudget: %v", err)
	}
	if be.Stage != "lia" {
		t.Errorf("stage %q, want lia", be.Stage)
	}
	if be.Query == 0 {
		t.Error("query number missing")
	}
	if be.Clauses == 0 || be.Atoms == 0 {
		t.Errorf("encoded-problem shape missing: clauses=%d atoms=%d", be.Clauses, be.Atoms)
	}
	if be.Detail == nil || !errors.Is(be.Detail, lia.ErrBudget) {
		t.Errorf("detail should carry the lia cause: %v", be.Detail)
	}
}

// TestMaxQueryDuration: an already-expired per-query deadline yields
// Unknown with stage "deadline" — never a verdict, never a panic.
func TestMaxQueryDuration(t *testing.T) {
	s := NewSolver(Options{MaxQueryDuration: time.Nanosecond})
	f, bounds := hardFormula()
	res, err := s.Check(f, bounds)
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want budget error, got %v (status %v)", err, res.Status)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Stage != "deadline" {
		t.Fatalf("want deadline stage, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown", res.Status)
	}
	if s.Stats().Unknowns == 0 {
		t.Error("Unknowns counter not bumped")
	}
}

// TestCancelTokenAbortsQuery: a cancelled run-level token aborts in-flight
// queries the same way a deadline does.
func TestCancelTokenAbortsQuery(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	s := NewSolver(Options{Cancel: tok})
	f, bounds := hardFormula()
	res, err := s.Check(f, bounds)
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want budget error, got %v (status %v)", err, res.Status)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown", res.Status)
	}
}

// TestSolverPanicRecovered: a panic below the Check boundary degrades to
// Unknown + ErrSolverPanic with the Panics counter bumped.
func TestSolverPanicRecovered(t *testing.T) {
	faultinject.Activate(&faultinject.Plan{SolverEvery: 1, SolverKind: faultinject.SolverPanic})
	defer faultinject.Deactivate()
	s := NewSolver(Options{})
	f, bounds := hardFormula()
	res, err := s.Check(f, bounds)
	if err == nil || !errors.Is(err, ErrSolverPanic) {
		t.Fatalf("want ErrSolverPanic, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown", res.Status)
	}
	st := s.Stats()
	if st.Panics != 1 || st.Unknowns != 1 {
		t.Fatalf("panic not counted: %+v", st)
	}
	// The solver must remain usable after a recovered panic.
	faultinject.Deactivate()
	res, err = s.Check(f, bounds)
	if err != nil || res.Status != Sat {
		t.Fatalf("solver unusable after recovered panic: %v %v", res.Status, err)
	}
}

// TestSortErrorOnNonBool: Check rejects integer-sorted "formulas".
func TestSortErrorOnNonBool(t *testing.T) {
	s := NewSolver(Options{})
	if _, err := s.Check(expr.IntVar("x"), nil); err == nil {
		t.Fatal("expected sort error")
	}
}

// TestSupportSetKeepsModelsValid: formulas whose skeleton has don't-care
// atoms still yield models satisfying the original formula.
func TestSupportSetKeepsModelsValid(t *testing.T) {
	s := NewSolver(Options{})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	// The second disjunct is irrelevant once the first holds.
	f := expr.Or(
		expr.Eq(x, expr.Int(3)),
		expr.And(expr.Gt(y, expr.Int(100)), expr.Lt(y, expr.Int(90))), // unsat conjunct
	)
	res, err := s.Check(f, map[string]interval.Interval{
		"x": interval.New(-10, 10), "y": interval.New(-10, 10),
	})
	if err != nil || res.Status != Sat {
		t.Fatalf("got %v %v", res.Status, err)
	}
	ok, err := expr.EvalBool(f, res.Model)
	if err != nil || !ok {
		t.Fatalf("model %v does not satisfy formula", res.Model)
	}
}
