package smt

import (
	"errors"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt/lia"
)

// TestUnknownOnTheoryBudget: exhausting the LIA budget surfaces ErrBudget
// and an Unknown status rather than a wrong verdict.
func TestUnknownOnTheoryBudget(t *testing.T) {
	s := NewSolver(Options{LIA: lia.Options{MaxSteps: 1}})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	f := expr.And(
		expr.Eq(expr.Add(x, y), expr.Int(10)),
		expr.Gt(x, expr.Int(0)),
		expr.Lt(y, expr.Int(5)),
	)
	res, err := s.Check(f, nil)
	if err == nil {
		// A single step may still suffice for tiny formulas; force more
		// work with a disequality split.
		f = expr.And(f, expr.Ne(expr.Mul(x, y), expr.Int(21)))
		res, err = s.Check(f, map[string]interval.Interval{
			"x": interval.New(-50, 50), "y": interval.New(-50, 50),
		})
	}
	if err == nil {
		t.Skip("budget not exhausted on this formula")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want unknown", res.Status)
	}
}

// TestMaxTheoryRounds: a tiny round cap yields Unknown, not a verdict.
func TestMaxTheoryRounds(t *testing.T) {
	s := NewSolver(Options{MaxTheoryRounds: 1})
	x := expr.IntVar("x")
	// Disjunction whose first skeleton model is theory-inconsistent:
	// x < 0 ∧ (x > 5 ∨ x = 1): at least two rounds may be needed.
	f := expr.And(
		expr.Lt(x, expr.Int(0)),
		expr.Or(expr.Gt(x, expr.Int(5)), expr.Eq(x, expr.Int(1))),
	)
	res, err := s.Check(f, nil)
	if err == nil && res.Status == Unsat {
		return // solved within one round: also acceptable
	}
	if err == nil {
		t.Fatalf("expected unsat or budget error, got %v", res.Status)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestSortErrorOnNonBool: Check rejects integer-sorted "formulas".
func TestSortErrorOnNonBool(t *testing.T) {
	s := NewSolver(Options{})
	if _, err := s.Check(expr.IntVar("x"), nil); err == nil {
		t.Fatal("expected sort error")
	}
}

// TestSupportSetKeepsModelsValid: formulas whose skeleton has don't-care
// atoms still yield models satisfying the original formula.
func TestSupportSetKeepsModelsValid(t *testing.T) {
	s := NewSolver(Options{})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	// The second disjunct is irrelevant once the first holds.
	f := expr.Or(
		expr.Eq(x, expr.Int(3)),
		expr.And(expr.Gt(y, expr.Int(100)), expr.Lt(y, expr.Int(90))), // unsat conjunct
	)
	res, err := s.Check(f, map[string]interval.Interval{
		"x": interval.New(-10, 10), "y": interval.New(-10, 10),
	})
	if err != nil || res.Status != Sat {
		t.Fatalf("got %v %v", res.Status, err)
	}
	ok, err := expr.EvalBool(f, res.Model)
	if err != nil || !ok {
		t.Fatalf("model %v does not satisfy formula", res.Model)
	}
}
