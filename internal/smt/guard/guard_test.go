package guard

import (
	"testing"
	"time"

	"cpr/internal/expr"
	"cpr/internal/interval"
)

var def = interval.New(-1000, 1000)

func TestValidateModelAccepts(t *testing.T) {
	g := New(Config{})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	f := expr.And(expr.Gt(x, expr.Int(3)), expr.Lt(y, expr.Int(0)))
	ok := g.ValidateModel(f, map[string]interval.Interval{"x": interval.New(0, 10)}, def,
		expr.Model{"x": 5, "y": -2})
	if !ok {
		t.Fatal("valid model rejected")
	}
	c := g.Counters()
	if c.Validations != 1 || c.ValidationFailures != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestValidateModelRejectsFalseModel(t *testing.T) {
	g := New(Config{})
	x := expr.IntVar("x")
	f := expr.Gt(x, expr.Int(3))
	if g.ValidateModel(f, nil, def, expr.Model{"x": 1}) {
		t.Fatal("model violating the term accepted")
	}
	if c := g.Counters(); c.ValidationFailures != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestValidateModelRejectsOutOfBounds(t *testing.T) {
	g := New(Config{})
	x := expr.IntVar("x")
	f := expr.Gt(x, expr.Int(3))
	// Satisfies the term but escapes the explicit domain — exactly the shape
	// of a bit-flipped model.
	if g.ValidateModel(f, map[string]interval.Interval{"x": interval.New(0, 10)}, def,
		expr.Model{"x": 5 + (1 << 40)}) {
		t.Fatal("out-of-domain model accepted")
	}
	// The default domain must catch unbounded variables too.
	if g.ValidateModel(f, nil, def, expr.Model{"x": 5 + (1 << 40)}) {
		t.Fatal("model outside the default domain accepted")
	}
}

func TestValidateModelEvalErrorInconclusive(t *testing.T) {
	g := New(Config{})
	x, y := expr.IntVar("x"), expr.IntVar("y")
	// Division by zero under the model: the strict evaluator errors, which
	// must count as inconclusive (accept), not as a failure.
	f := expr.Eq(expr.Div(x, y), expr.Int(0))
	if !g.ValidateModel(f, nil, def, expr.Model{"x": 1, "y": 0}) {
		t.Fatal("inconclusive evaluation treated as failure")
	}
	if c := g.Counters(); c.ValidationFailures != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestShouldCrossCheckSampling(t *testing.T) {
	t.Setenv("CPR_PARANOID", "") // the test pins the rate; a paranoid env would force 1
	g := New(Config{CrossCheckEvery: 4})
	got := 0
	for i := 0; i < 8; i++ {
		if g.ShouldCrossCheck() {
			got++
			if i != 0 && i != 4 {
				t.Fatalf("sampled unsat #%d; want #0 and #4", i)
			}
		}
	}
	if got != 2 {
		t.Fatalf("sampled %d of 8; want 2", got)
	}
}

func TestShouldCrossCheckEvery(t *testing.T) {
	g := New(Config{CrossCheckEvery: 1})
	for i := 0; i < 5; i++ {
		if !g.ShouldCrossCheck() {
			t.Fatalf("unsat #%d not sampled at rate 1", i)
		}
	}
}

func TestParanoidForcesFullSampling(t *testing.T) {
	g := New(Config{Paranoid: true, CrossCheckEvery: 16})
	if g.Config().CrossCheckEvery != 1 {
		t.Fatalf("paranoid CrossCheckEvery = %d; want 1", g.Config().CrossCheckEvery)
	}
}

func TestParanoidEnv(t *testing.T) {
	t.Setenv("CPR_PARANOID", "1")
	if !ParanoidEnv() {
		t.Fatal("CPR_PARANOID=1 not detected")
	}
	g := New(Config{})
	if g.Config().CrossCheckEvery != 1 {
		t.Fatalf("env paranoid CrossCheckEvery = %d; want 1", g.Config().CrossCheckEvery)
	}
	t.Setenv("CPR_PARANOID", "0")
	if ParanoidEnv() {
		t.Fatal("CPR_PARANOID=0 treated as paranoid")
	}
}

func TestQuarantineBackoffAndReadmission(t *testing.T) {
	g := New(Config{RebuildBackoff: 5 * time.Millisecond, BreakerThreshold: 10})
	if !g.RungAvailable() {
		t.Fatal("fresh rung unavailable")
	}
	g.QuarantineRung()
	if g.RungAvailable() {
		t.Fatal("rung available immediately after quarantine")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !g.RungAvailable() {
		if time.Now().After(deadline) {
			t.Fatal("rung never readmitted after backoff")
		}
		time.Sleep(time.Millisecond)
	}
	c := g.Counters()
	if c.Quarantines != 1 || c.RebuildRetries != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	g := New(Config{RebuildBackoff: 10 * time.Millisecond, RebuildBackoffMax: 20 * time.Millisecond, BreakerThreshold: 100})
	// Consume three quarantines; the third backoff would be 40ms uncapped.
	for i := 0; i < 3; i++ {
		g.QuarantineRung()
		g.backoff = nil // skip the wait; we only probe the durations below
	}
	g.failStreak = 2
	g.QuarantineRung() // failStreak 3 → 10ms<<2 = 40ms, capped to 20ms
	start := time.Now()
	deadline := start.Add(2 * time.Second)
	for !g.RungAvailable() {
		if time.Now().After(deadline) {
			t.Fatal("rung never readmitted")
		}
		time.Sleep(time.Millisecond)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("backoff %v exceeds cap by far", waited)
	}
}

func TestBreakerTripsAndPins(t *testing.T) {
	g := New(Config{BreakerThreshold: 3, RebuildBackoff: time.Nanosecond})
	for i := 0; i < 3; i++ {
		if g.BreakerOpen() {
			t.Fatalf("breaker open after %d failures; threshold 3", i)
		}
		for !g.RungAvailable() {
			time.Sleep(time.Millisecond)
		}
		g.QuarantineRung()
	}
	if !g.BreakerOpen() {
		t.Fatal("breaker not open at threshold")
	}
	if g.RungAvailable() {
		t.Fatal("rung available with breaker open")
	}
	// Pinned for good: no backoff expiry readmits it.
	time.Sleep(2 * time.Millisecond)
	if g.RungAvailable() {
		t.Fatal("breaker-pinned rung readmitted")
	}
	c := g.Counters()
	if c.BreakerTrips != 1 || !c.BreakerOpen {
		t.Fatalf("counters = %+v", c)
	}
	// Further failures must not re-trip.
	g.QuarantineRung()
	if c := g.Counters(); c.BreakerTrips != 1 {
		t.Fatalf("breaker re-tripped: %+v", c)
	}
}
