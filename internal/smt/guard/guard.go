// Package guard implements the solver runtime's self-healing layer: the
// repair loop is only as sound as the verdicts the solver stack returns,
// and after incremental contexts, retained clause databases, and a shared
// verdict cache entered the picture, a single wrong fast-path answer could
// silently corrupt every later patch-pool reduction. The guard makes that
// failure mode degrade service instead of correctness.
//
// Three mechanisms, wrapped around every solver tier by package smt:
//
//   - Verdict validation. Every sat model is replayed against the original
//     (pre-Tseitin, pre-purification) term and against the query's variable
//     domains (ValidateModel); sampled unsat verdicts are cross-checked by
//     an independent scratch solve (ShouldCrossCheck gates the sampling —
//     configurable rate, 100% in paranoid mode).
//   - Quarantine and a graceful-degradation ladder. On any divergence the
//     offending layer is quarantined and the query is transparently retried
//     one rung down: incremental context → scratch solve → cache-bypass
//     scratch solve. A quarantined incremental context is rebuilt only
//     after a bounded exponential backoff (a cancel.Token deadline), and
//     repeated failures trip a per-worker circuit breaker that pins that
//     worker to scratch mode for the rest of the run.
//   - Health accounting. Counters() snapshots validations, failures,
//     quarantines, fallback solves, rebuild retries, and breaker state for
//     the smt → core/cegis → bench stats pipeline.
//
// The invariant the callers rely on: a verdict that fails validation is
// never observed by the repair engine — it is either replaced by a
// lower-rung verdict that validates, or degraded to Unknown.
package guard

import (
	"errors"
	"os"
	"sync/atomic"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// ErrVerdictRejected is returned by the smt layer when every rung's answer
// failed validation: the query degrades to Unknown rather than expose a
// verdict known to be wrong.
var ErrVerdictRejected = errors.New("guard: verdict failed validation on every rung")

// Config tunes a Guard. The zero value gets production defaults; tests and
// the -paranoid CLI flag force 100% validation via Paranoid.
type Config struct {
	// CrossCheckEvery samples unsat verdicts for independent re-solving:
	// every Nth unsat answer per guard is cross-checked against a scratch
	// solve (1 = every answer; 0 = the default of 16). Model validation is
	// not sampled — it is cheap and runs on every sat answer.
	CrossCheckEvery int
	// Paranoid forces CrossCheckEvery to 1. The CPR_PARANOID environment
	// variable (any value except "" and "0") forces it process-wide, which
	// is how the CI paranoid job runs the whole test suite at 100%
	// validation.
	Paranoid bool
	// BreakerThreshold is the number of incremental-rung validation
	// failures that trips the per-worker circuit breaker (default 3).
	BreakerThreshold int
	// RebuildBackoff is the quarantine duration before the first context
	// rebuild; it doubles per further failure up to RebuildBackoffMax
	// (defaults 25ms and 2s).
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.CrossCheckEvery == 0 {
		c.CrossCheckEvery = 16
	}
	if c.Paranoid || ParanoidEnv() {
		c.Paranoid = true
		c.CrossCheckEvery = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.RebuildBackoff == 0 {
		c.RebuildBackoff = 25 * time.Millisecond
	}
	if c.RebuildBackoffMax == 0 {
		c.RebuildBackoffMax = 2 * time.Second
	}
	return c
}

// ParanoidEnv reports whether the CPR_PARANOID environment variable forces
// 100% validation for this process.
func ParanoidEnv() bool {
	v := os.Getenv("CPR_PARANOID")
	return v != "" && v != "0"
}

// Counters is a snapshot of a guard's health accounting.
type Counters struct {
	// Validations counts verdict validations run (model replays plus unsat
	// cross-checks); ValidationFailures counts verdicts they rejected.
	Validations, ValidationFailures uint64
	// Quarantines counts layers taken out of service after a divergence
	// (incremental contexts and poisoned cache entries alike).
	Quarantines uint64
	// FallbackSolves counts queries served one rung below their natural
	// tier because that tier was quarantined, breaker-pinned, or caught
	// lying on this very query.
	FallbackSolves uint64
	// RebuildRetries counts quarantined contexts readmitted after their
	// backoff deadline passed.
	RebuildRetries uint64
	// BreakerTrips counts circuit-breaker trips; BreakerOpen reports the
	// breaker's current state (a tripped worker stays in scratch mode for
	// the rest of the run).
	BreakerTrips uint64
	BreakerOpen  bool
}

// Guard is one solver's validation and self-healing state. Each worker
// owns one guard (alongside its solver), so quarantine and breaker state
// are per-worker; Counters may be read from any goroutine at any time,
// while the state-machine methods follow the owning solver's
// single-query-at-a-time discipline.
type Guard struct {
	cfg Config

	validations atomic.Uint64
	failures    atomic.Uint64
	quarantines atomic.Uint64
	fallbacks   atomic.Uint64
	rebuilds    atomic.Uint64
	trips       atomic.Uint64
	breakerOpen atomic.Bool

	unsatSeen atomic.Uint64 // cross-check sampling counter

	// Quarantine state for the incremental rung; only the owning solver's
	// query goroutine touches these.
	failStreak int
	backoff    *cancel.Token
}

// New returns a guard with the given configuration.
func New(cfg Config) *Guard {
	return &Guard{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (g *Guard) Config() Config { return g.cfg }

// Counters returns a snapshot of the health accounting; safe to call
// concurrently with queries on the owning solver.
func (g *Guard) Counters() Counters {
	return Counters{
		Validations:        g.validations.Load(),
		ValidationFailures: g.failures.Load(),
		Quarantines:        g.quarantines.Load(),
		FallbackSolves:     g.fallbacks.Load(),
		RebuildRetries:     g.rebuilds.Load(),
		BreakerTrips:       g.trips.Load(),
		BreakerOpen:        g.breakerOpen.Load(),
	}
}

// ShouldCrossCheck reports whether this unsat verdict falls in the
// cross-check sample. The first unsat answer is always sampled, so even a
// short run exercises the cross-check path at least once.
func (g *Guard) ShouldCrossCheck() bool {
	n := g.unsatSeen.Add(1)
	return n%uint64(g.cfg.CrossCheckEvery) == 1%uint64(g.cfg.CrossCheckEvery)
}

// ValidateModel replays a sat model against the original term and the
// query's variable domains: every model value must lie within its domain
// (def for variables without explicit bounds), and the term must evaluate
// to true. A definite violation counts as a validation failure; an
// evaluation error (e.g. division by zero inside the original term, where
// the solver reasons about the purified form) is inconclusive and accepted.
func (g *Guard) ValidateModel(f *expr.Term, bounds map[string]interval.Interval, def interval.Interval, model expr.Model) bool {
	g.validations.Add(1)
	for name, v := range model {
		iv, ok := bounds[name]
		if !ok {
			iv = def
		}
		if v < iv.Lo || v > iv.Hi {
			g.failures.Add(1)
			return false
		}
	}
	ok, err := expr.EvalBool(f, model)
	if err != nil {
		return true // inconclusive: cannot prove the model wrong
	}
	if !ok {
		g.failures.Add(1)
		return false
	}
	return true
}

// NoteCrossCheck records an unsat cross-check that ran; NoteFailure
// records a validation failure detected outside ValidateModel (a
// cross-check divergence or a rejected assumption core).
func (g *Guard) NoteCrossCheck() { g.validations.Add(1) }

// CrossCheckCursor returns the unsat sampling counter behind
// ShouldCrossCheck. Checkpoints persist it so a resumed run continues the
// sampling schedule where the killed run stopped — otherwise the restarted
// counter re-fires the always-sampled first cross-check and the run's
// validation stats drift off the uninterrupted run's by one.
func (g *Guard) CrossCheckCursor() uint64 { return g.unsatSeen.Load() }

// SetCrossCheckCursor restores a cursor captured by CrossCheckCursor.
func (g *Guard) SetCrossCheckCursor(n uint64) { g.unsatSeen.Store(n) }

// NoteFailure records a validation failure detected by a cross-check.
func (g *Guard) NoteFailure() { g.failures.Add(1) }

// NoteQuarantine records a layer taken out of service (a poisoned cache
// entry dropped, or an incremental context discarded via QuarantineRung).
func (g *Guard) NoteQuarantine() { g.quarantines.Add(1) }

// NoteFallback records a query served one rung below its natural tier.
func (g *Guard) NoteFallback() { g.fallbacks.Add(1) }

// RungAvailable reports whether the incremental rung may serve the next
// query. While quarantined it returns false until the backoff deadline
// passes, then readmits the rung (counting a rebuild retry); once the
// breaker has tripped it returns false forever.
func (g *Guard) RungAvailable() bool {
	if g.breakerOpen.Load() {
		return false
	}
	if g.backoff != nil {
		if !g.backoff.Expired() {
			return false
		}
		g.backoff = nil
		g.rebuilds.Add(1)
	}
	return true
}

// QuarantineRung takes the incremental rung out of service after a
// validation failure attributed to it. The rung stays down for an
// exponentially growing, capped backoff (so a rebuilt context that lies
// again is readmitted ever more reluctantly); at BreakerThreshold failures
// the circuit breaker trips and the rung is pinned off for the rest of the
// run. Failures are cumulative, not consecutive: a layer that keeps
// producing wrong answers — however sparsely — does not deserve unbounded
// retries.
func (g *Guard) QuarantineRung() {
	g.quarantines.Add(1)
	g.failStreak++
	if g.failStreak >= g.cfg.BreakerThreshold {
		g.backoff = nil
		if !g.breakerOpen.Swap(true) {
			g.trips.Add(1)
		}
		return
	}
	d := g.cfg.RebuildBackoff << (g.failStreak - 1)
	if d > g.cfg.RebuildBackoffMax {
		d = g.cfg.RebuildBackoffMax
	}
	g.backoff = cancel.WithTimeout(nil, d)
}

// BreakerOpen reports whether the circuit breaker has tripped.
func (g *Guard) BreakerOpen() bool { return g.breakerOpen.Load() }
