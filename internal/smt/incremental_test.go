package smt

import (
	"errors"
	"fmt"
	"testing"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
)

// incrementalBattery is a query sequence shaped like the repair loop:
// shared path-constraint prefixes, per-patch suffixes, several bounds
// boxes, purification (div/ite), boolean structure, and repeats. The same
// formula deliberately recurs under different bounds boxes — the verdict
// flips with the box, which is exactly what the per-box lemma guards must
// get right.
func incrementalBattery() []struct {
	f      *expr.Term
	bounds map[string]interval.Interval
} {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	a := expr.IntVar("a")
	p := expr.BoolVar("p")
	prefix := []*expr.Term{
		expr.Ge(x, expr.Int(0)),
		expr.Le(x, expr.Int(80)),
		expr.Ne(y, expr.Int(0)),
	}
	mid := expr.Gt(expr.Add(x, y), expr.Int(5))
	narrow := map[string]interval.Interval{"x": interval.New(0, 3), "y": interval.New(-5, 5)}
	wide := map[string]interval.Interval{"x": interval.New(0, 100), "y": interval.New(-100, 100), "a": interval.New(-10, 10)}
	boxed := expr.And(expr.Gt(x, expr.Int(5)), expr.Lt(x, expr.Int(10)))

	var qs []struct {
		f      *expr.Term
		bounds map[string]interval.Interval
	}
	add := func(f *expr.Term, b map[string]interval.Interval) {
		qs = append(qs, struct {
			f      *expr.Term
			bounds map[string]interval.Interval
		}{f, b})
	}

	// Box-sensitivity first: unsat under the narrow box, sat under the
	// wide one. A leaked lemma would make the second query unsat too.
	add(boxed, narrow)
	add(boxed, wide)
	add(boxed, narrow)

	// Shared-prefix patch queries, sat and unsat mixes.
	for k := int64(0); k < 6; k++ {
		patch := expr.Ge(expr.Add(x, y), expr.Add(a, expr.Int(k)))
		add(expr.And(append(append([]*expr.Term{}, prefix...), mid, patch)...), wide)
		contra := expr.And(expr.Lt(x, expr.Int(-1-k))) // conflicts with prefix
		add(expr.And(append(append([]*expr.Term{}, prefix...), contra)...), wide)
	}
	// Repeats (encoding-cache hits, retained lemmas).
	add(expr.And(append([]*expr.Term{mid}, prefix...)...), wide)
	add(expr.And(append([]*expr.Term{mid}, prefix...)...), narrow)

	// Purification: div/rem and integer ite behind boolean structure.
	add(expr.And(
		expr.Eq(expr.Div(x, y), expr.Int(3)),
		expr.Gt(y, expr.Int(0)),
	), wide)
	add(expr.Or(
		expr.And(p, expr.Eq(expr.Ite(p, x, y), expr.Int(7))),
		expr.Lt(expr.Rem(x, expr.Int(5)), expr.Int(0)),
	), wide)

	// Trivia and degenerate shapes.
	add(expr.True(), wide)
	add(expr.And(expr.Eq(x, expr.Int(1)), expr.Eq(x, expr.Int(2))), wide)
	add(p, nil)
	return qs
}

// TestIncrementalDifferentialVerdicts: one persistent incremental solver
// across the whole battery must agree with a fresh scratch solve of every
// query.
func TestIncrementalDifferentialVerdicts(t *testing.T) {
	inc := NewSolver(Options{Incremental: true})
	for i, q := range incrementalBattery() {
		st, err := inc.Decide(q.f, q.bounds)
		if err != nil {
			t.Fatalf("query %d: incremental Decide: %v", i, err)
		}
		scratch := NewSolver(Options{})
		want, err := scratch.Check(q.f, q.bounds)
		if err != nil {
			t.Fatalf("query %d: scratch Check: %v", i, err)
		}
		if st != want.Status {
			t.Fatalf("query %d (%v): incremental=%v scratch=%v", i, q.f, st, want.Status)
		}
	}
	st := inc.Stats()
	if st.EncodeCacheHits == 0 {
		t.Errorf("no encoding-cache hits over a shared-prefix battery: %+v", st)
	}
	if st.AssumptionCores == 0 {
		t.Errorf("no assumption cores over an unsat-heavy battery: %+v", st)
	}
}

// TestIncrementalModelsIdentical: Check must return bit-identical models
// with Incremental on and off — the property the repair-result
// differential test builds on.
func TestIncrementalModelsIdentical(t *testing.T) {
	inc := NewSolver(Options{Incremental: true})
	scr := NewSolver(Options{})
	for i, q := range incrementalBattery() {
		got, err1 := inc.Check(q.f, q.bounds)
		want, err2 := scr.Check(q.f, q.bounds)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d: error mismatch: %v vs %v", i, err1, err2)
		}
		if got.Status != want.Status {
			t.Fatalf("query %d: status %v vs %v", i, got.Status, want.Status)
		}
		if fmt.Sprint(got.Model) != fmt.Sprint(want.Model) {
			t.Fatalf("query %d: model diverged:\nincremental: %v\nscratch:     %v", i, got.Model, want.Model)
		}
	}
}

// pigeonhole returns the propositionally-unsat PHP(holes+1, holes)
// principle: CDCL needs many conflicts to refute it, which makes it a
// reliable way to trip a conflict budget.
func pigeonhole(holes int) *expr.Term {
	pv := func(i, j int) *expr.Term { return expr.BoolVar(fmt.Sprintf("php_%d_%d", i, j)) }
	var cs []*expr.Term
	for i := 0; i <= holes; i++ {
		row := make([]*expr.Term, holes)
		for j := 0; j < holes; j++ {
			row[j] = pv(i, j)
		}
		cs = append(cs, expr.Or(row...))
	}
	for j := 0; j < holes; j++ {
		for i := 0; i <= holes; i++ {
			for k := i + 1; k <= holes; k++ {
				cs = append(cs, expr.Or(expr.Not(pv(i, j)), expr.Not(pv(k, j))))
			}
		}
	}
	return expr.And(cs...)
}

// TestIncrementalBudgetDoesNotPoison: a query aborted by a conflict budget
// must leave the retained clause database usable — later queries still get
// correct verdicts.
func TestIncrementalBudgetDoesNotPoison(t *testing.T) {
	s := NewSolver(Options{Incremental: true, MaxConflicts: 8})
	st, err := s.Decide(pigeonhole(5), nil)
	if st != Unknown || !errors.Is(err, ErrBudget) {
		t.Fatalf("pigeonhole under MaxConflicts=8: %v, %v; want unknown budget abort", st, err)
	}
	// The budget is per-query: the same solver must still answer easy
	// queries correctly afterwards.
	x := expr.IntVar("x")
	b := map[string]interval.Interval{"x": interval.New(0, 50)}
	easy := expr.Eq(x, expr.Int(7))
	if st, err := s.Decide(easy, b); err != nil || st != Sat {
		t.Fatalf("easy sat query after budget abort: %v, %v", st, err)
	}
	if st, err := s.Decide(expr.And(easy, expr.Eq(x, expr.Int(8))), b); err != nil || st != Unsat {
		t.Fatalf("easy unsat query after budget abort: %v, %v", st, err)
	}
}

// TestIncrementalCancellation: an expired token degrades incremental
// queries to Unknown with a budget error; a fresh solver with no token is
// unaffected.
func TestIncrementalCancellation(t *testing.T) {
	tok := cancel.New()
	tok.Cancel()
	s := NewSolver(Options{Incremental: true, Cancel: tok})
	x := expr.IntVar("x")
	f := expr.Gt(x, expr.Int(0))
	st, err := s.Decide(f, nil)
	if st != Unknown || !errors.Is(err, ErrBudget) {
		t.Fatalf("cancelled Decide = %v, %v; want unknown with budget error", st, err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Stage != "deadline" {
		t.Fatalf("error %v is not a deadline budget error", err)
	}
	if res, err := s.Check(f, nil); err == nil || res.Status != Unknown {
		t.Fatalf("cancelled Check = %v, %v", res.Status, err)
	}
}

// TestIncrementalFaultInjectionMidSequence: injected solver faults —
// including panics recovered at the query boundary — must not poison the
// retained clause database: every non-faulted query still answers
// correctly across the battery.
func TestIncrementalFaultInjectionMidSequence(t *testing.T) {
	for _, kind := range []faultinject.Fault{faultinject.SolverPanic, faultinject.SolverTimeout, faultinject.SolverFail} {
		// One plan per kind: its every-Nth counter must persist across the
		// deactivate/reactivate windows around the scratch reference solves.
		plan := &faultinject.Plan{SolverEvery: 3, SolverKind: kind}
		faultinject.Activate(plan)
		inc := NewSolver(Options{Incremental: true})
		faulted, answered := 0, 0
		for i, q := range incrementalBattery() {
			st, err := inc.Decide(q.f, q.bounds)
			if err != nil {
				faulted++
				if st == Sat || st == Unsat {
					t.Fatalf("kind %v query %d: decisive verdict alongside error %v", kind, i, err)
				}
				continue
			}
			answered++
			faultinject.Deactivate() // scratch reference must not fault
			want, werr := NewSolver(Options{}).Check(q.f, q.bounds)
			faultinject.Activate(plan)
			if werr != nil {
				t.Fatalf("kind %v query %d: scratch reference: %v", kind, i, werr)
			}
			if st != want.Status {
				t.Fatalf("kind %v query %d: verdict %v diverged from scratch %v after faults", kind, i, st, want.Status)
			}
		}
		faultinject.Deactivate()
		if faulted == 0 || answered == 0 {
			t.Fatalf("kind %v: battery too small to exercise faults (faulted=%d answered=%d)", kind, faulted, answered)
		}
		if kind == faultinject.SolverPanic && inc.Stats().Panics == 0 {
			t.Fatal("panic faults not recorded in stats")
		}
	}
}

// TestIncrementalCacheInteraction: verdict-only entries, model upgrades,
// and assumption cores feeding the subsumption index.
func TestIncrementalCacheInteraction(t *testing.T) {
	c := cache.New(cache.Options{})
	s := NewSolver(Options{Incremental: true, Cache: c})
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	b := map[string]interval.Interval{"x": interval.New(0, 50), "y": interval.New(0, 50)}

	// Sat Decide stores a verdict-only entry; repeat Decide hits it.
	f := expr.Gt(expr.Add(x, y), expr.Int(10))
	if st, err := s.Decide(f, b); err != nil || st != Sat {
		t.Fatalf("Decide: %v, %v", st, err)
	}
	before := c.Stats()
	if st, err := s.Decide(f, b); err != nil || st != Sat {
		t.Fatalf("repeat Decide: %v, %v", st, err)
	}
	if after := c.Stats(); after.Hits != before.Hits+1 {
		t.Fatalf("repeat Decide missed the verdict cache: %+v -> %+v", before, after)
	}
	// Check on the same query upgrades the entry with a model.
	res, err := s.Check(f, b)
	if err != nil || res.Status != Sat || res.Model == nil {
		t.Fatalf("Check after verdict-only: %+v, %v", res, err)
	}
	res2, err := s.Check(f, b)
	if err != nil || res2.Model == nil {
		t.Fatalf("model entry not cached: %+v, %v", res2, err)
	}

	// Unsat with a narrowing core: a propositional contradiction among
	// three of four conjuncts (the SAT-level final conflict never touches
	// the fourth), so the stored core subsumes later supersets.
	p := expr.BoolVar("cp")
	q := expr.BoolVar("cq")
	clash := []*expr.Term{p, expr.Implies(p, q), expr.Not(q)}
	if st, err := s.Decide(expr.And(append(clash, expr.Gt(y, expr.Int(1)))...), b); err != nil || st != Unsat {
		t.Fatalf("core query: %v, %v", st, err)
	}
	if s.Stats().AssumptionCores == 0 {
		t.Fatal("propositional contradiction produced no assumption core")
	}
	pre := c.Stats()
	if st, err := s.Decide(expr.And(append(clash, expr.Lt(y, expr.Int(49)))...), b); err != nil || st != Unsat {
		t.Fatalf("superset query: %v, %v", st, err)
	}
	if post := c.Stats(); post.Subsumed != pre.Subsumed+1 {
		t.Fatalf("assumption core did not feed subsumption: %+v -> %+v", pre, post)
	}
}

// TestIncrementalClauseRetentionStats: repeats of an unsat query must get
// cheaper (retained lemmas) and the counters must show retention.
func TestIncrementalClauseRetentionStats(t *testing.T) {
	s := NewSolver(Options{Incremental: true})
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	b := map[string]interval.Interval{"x": interval.New(0, 30), "y": interval.New(0, 30)}
	// Propositionally rich unsat query (disjunctions force theory rounds).
	f := expr.And(
		expr.Or(expr.Eq(x, expr.Int(1)), expr.Eq(x, expr.Int(2)), expr.Eq(x, expr.Int(3))),
		expr.Or(expr.Eq(y, expr.Int(4)), expr.Eq(y, expr.Int(5))),
		expr.Gt(expr.Add(x, y), expr.Int(50)),
	)
	if st, err := s.Decide(f, b); err != nil || st != Unsat {
		t.Fatalf("first solve: %v, %v", st, err)
	}
	roundsAfterFirst := s.Stats().TheoryRounds
	if st, err := s.Decide(f, b); err != nil || st != Unsat {
		t.Fatalf("repeat solve: %v, %v", st, err)
	}
	st := s.Stats()
	repeatRounds := st.TheoryRounds - roundsAfterFirst
	if repeatRounds >= roundsAfterFirst {
		t.Errorf("repeat spent %d theory rounds, first spent %d: lemmas not retained", repeatRounds, roundsAfterFirst)
	}
	if st.EncodeCacheHits == 0 {
		t.Errorf("repeat query re-encoded: %+v", st)
	}
}
