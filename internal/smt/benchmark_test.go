package smt

import (
	"fmt"
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
)

// benchFormula is a repair-shaped query: a path constraint conjoined with
// a parametric patch guard.
func benchFormula(k int64) *expr.Term {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	a := expr.IntVar("a")
	return expr.And(
		expr.Ge(x, expr.Int(0)),
		expr.Lt(x, expr.Int(50+k)),
		expr.Ne(y, expr.Int(0)),
		expr.Ge(expr.Add(x, y), a),
		expr.Le(a, expr.Int(10)),
		expr.Ge(a, expr.Int(-10)),
	)
}

var benchBounds = map[string]interval.Interval{
	"x": interval.New(-100, 100),
	"y": interval.New(-100, 100),
	"a": interval.New(-10, 10),
}

// BenchmarkSolverCheck measures a raw solve: a fresh query every
// iteration, no cache in front.
func BenchmarkSolverCheck(b *testing.B) {
	s := NewSolver(Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.Check(benchFormula(int64(i%8)), benchBounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != Sat {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkSolverCheckCached measures the same query stream with the
// verdict cache in front: after the first 8 queries every check is a hit,
// so this is the cache's hot-path cost (canonical bounds key + one map
// probe) rather than a solve.
func BenchmarkSolverCheckCached(b *testing.B) {
	s := NewSolver(Options{Cache: cache.New(cache.Options{})})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.Check(benchFormula(int64(i%8)), benchBounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != Sat {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// sharedPrefixQueries builds the query stream the incremental context is
// designed for: one path-constraint prefix shared by every query, 12 patch
// guards × 5 parameter regions (60 queries), mixing sat and unsat. This is
// the shape of a repair loop reducing one partition's pool.
func sharedPrefixQueries() []struct {
	f      *expr.Term
	bounds map[string]interval.Interval
} {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	a := expr.IntVar("a")
	prefix := []*expr.Term{
		expr.Ge(x, expr.Int(0)),
		expr.Lt(x, expr.Int(50)),
		expr.Ne(y, expr.Int(0)),
		// Disjunctive structure: the skeleton has real choices, so the
		// DPLL(T) loop learns blocking lemmas worth retaining.
		expr.Or(expr.Eq(y, expr.Int(1)), expr.Eq(y, expr.Int(2)), expr.Eq(y, expr.Int(3))),
		expr.Or(expr.Lt(expr.Add(x, y), expr.Int(40)), expr.Gt(x, expr.Int(45))),
	}
	var qs []struct {
		f      *expr.Term
		bounds map[string]interval.Interval
	}
	for region := int64(0); region < 5; region++ {
		bounds := map[string]interval.Interval{
			"x": interval.New(-100, 100),
			"y": interval.New(-100, 100),
			"a": interval.New(-10+region, 10-region),
		}
		for j := int64(0); j < 12; j++ {
			var patch *expr.Term
			if j%3 == 2 { // every third patch contradicts the prefix: unsat
				patch = expr.Lt(x, expr.Int(-1-j))
			} else {
				patch = expr.Ge(expr.Add(x, y), expr.Add(a, expr.Int(j)))
			}
			qs = append(qs, struct {
				f      *expr.Term
				bounds map[string]interval.Interval
			}{expr.And(append(append([]*expr.Term{}, prefix...), patch)...), bounds})
		}
	}
	return qs
}

// BenchmarkSharedPrefixScratch solves the 60-query shared-prefix sequence
// from scratch every query (fresh solver per iteration, no verdict cache
// in front — this measures solving, not memoization).
func BenchmarkSharedPrefixScratch(b *testing.B) {
	qs := sharedPrefixQueries()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver(Options{})
		for _, q := range qs {
			if _, err := s.IsSat(q.f, q.bounds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSharedPrefixIncremental runs the identical sequence on one
// incremental context per iteration: the prefix is encoded once, patches
// switch on and off via selector assumptions, and learned clauses carry
// across queries. The issue's acceptance bar is ≥2x over scratch.
func BenchmarkSharedPrefixIncremental(b *testing.B) {
	qs := sharedPrefixQueries()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSolver(Options{Incremental: true})
		for _, q := range qs {
			if _, err := s.IsSat(q.f, q.bounds); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTermHash measures hash-consed term construction: every
// constructor call hashes the candidate node and probes the interner, so
// building a formula tree is the hashing hot path the cache key relies on.
func BenchmarkTermHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := benchFormula(int64(i % 16))
		if f.Op != expr.OpAnd {
			b.Fatal("unexpected shape")
		}
	}
}

// batchedFeasibilityFixture builds one group-feasibility call the batcher
// sees in the repair loop: a shared path-constraint prefix and 16 patch
// guards. unsatEvery > 0 makes every that-many-th guard contradict the
// prefix, so mixed groups exercise core attribution and bisection;
// unsatEvery == 0 is the uniform-feasible shape where one group query
// absorbs the whole chunk. Returns the common part, items, and bounds.
func batchedFeasibilityFixture(unsatEvery int64) (*expr.Term, []BatchItem, map[string]interval.Interval) {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	common := expr.And(
		expr.Ge(x, expr.Int(0)),
		expr.Lt(x, expr.Int(50)),
		expr.Ne(y, expr.Int(0)),
		expr.Or(expr.Eq(y, expr.Int(1)), expr.Eq(y, expr.Int(2)), expr.Eq(y, expr.Int(3))),
		expr.Or(expr.Lt(expr.Add(x, y), expr.Int(40)), expr.Gt(x, expr.Int(45))),
	)
	bounds := map[string]interval.Interval{
		"x": interval.New(-100, 100),
		"y": interval.New(-100, 100),
	}
	var items []BatchItem
	for j := int64(0); j < 16; j++ {
		a := expr.IntVar(fmt.Sprintf("a!b%d", j))
		bounds[fmt.Sprintf("a!b%d", j)] = interval.New(-10, 10)
		var guard *expr.Term
		if unsatEvery > 0 && j%unsatEvery == unsatEvery-1 {
			guard = expr.Lt(x, expr.Int(-1-j)) // contradicts the prefix: unsat
		} else {
			guard = expr.Ge(expr.Add(x, y), expr.Add(a, expr.Int(j)))
		}
		items = append(items, BatchItem{ID: int(j), F: guard})
	}
	return common, items, bounds
}

// BenchmarkBatchedFeasibility compares per-patch feasibility resolved one
// query at a time against the chunked group queries of DecideBatch, on a
// 16-item fixture in two shapes. "allsat" is the repair loop's common
// case — every patch feasible on the path — where one group query absorbs
// the whole chunk. "mixed" plants an infeasible patch in every third slot,
// the adversarial shape where group answers split via core attribution,
// common-prefix probes, and bisection; it bounds the worst-case overhead
// the engine pays before its per-item fallback.
func BenchmarkBatchedFeasibility(b *testing.B) {
	for _, shape := range []struct {
		name       string
		unsatEvery int64
	}{{"allsat", 0}, {"mixed", 3}} {
		common, items, bounds := batchedFeasibilityFixture(shape.unsatEvery)
		b.Run(shape.name+"/individual", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewSolver(Options{Incremental: true})
				for _, it := range items {
					if _, err := s.Decide(expr.And(common, it.F), bounds); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(shape.name+"/batched", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := NewSolver(Options{Incremental: true})
				for _, v := range s.DecideBatch(common, items, bounds) {
					if v.Err != nil {
						b.Fatal(v.Err)
					}
				}
			}
		})
	}
}
