package smt

import (
	"testing"

	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
)

// benchFormula is a repair-shaped query: a path constraint conjoined with
// a parametric patch guard.
func benchFormula(k int64) *expr.Term {
	x := expr.IntVar("x")
	y := expr.IntVar("y")
	a := expr.IntVar("a")
	return expr.And(
		expr.Ge(x, expr.Int(0)),
		expr.Lt(x, expr.Int(50+k)),
		expr.Ne(y, expr.Int(0)),
		expr.Ge(expr.Add(x, y), a),
		expr.Le(a, expr.Int(10)),
		expr.Ge(a, expr.Int(-10)),
	)
}

var benchBounds = map[string]interval.Interval{
	"x": interval.New(-100, 100),
	"y": interval.New(-100, 100),
	"a": interval.New(-10, 10),
}

// BenchmarkSolverCheck measures a raw solve: a fresh query every
// iteration, no cache in front.
func BenchmarkSolverCheck(b *testing.B) {
	s := NewSolver(Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.Check(benchFormula(int64(i%8)), benchBounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != Sat {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkSolverCheckCached measures the same query stream with the
// verdict cache in front: after the first 8 queries every check is a hit,
// so this is the cache's hot-path cost (canonical bounds key + one map
// probe) rather than a solve.
func BenchmarkSolverCheckCached(b *testing.B) {
	s := NewSolver(Options{Cache: cache.New(cache.Options{})})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := s.Check(benchFormula(int64(i%8)), benchBounds)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != Sat {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkTermHash measures hash-consed term construction: every
// constructor call hashes the candidate node and probes the interner, so
// building a formula tree is the hashing hot path the cache key relies on.
func BenchmarkTermHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := benchFormula(int64(i % 16))
		if f.Op != expr.OpAnd {
			b.Fatal("unexpected shape")
		}
	}
}
