package smt

import (
	"fmt"

	"cpr/internal/expr"
	"cpr/internal/smt/sat"
)

// encoder Tseitin-encodes the boolean skeleton of a purified, simplified
// formula into a CDCL solver, keeping the map from theory atoms to SAT
// variables for the DPLL(T) loop.
type encoder struct {
	sat      cdcl
	atomVar  map[*expr.Term]int // theory atom → SAT var
	atoms    []*expr.Term       // atoms in first-encounter order (determinism)
	boolVar  map[string]int     // named boolean variable → SAT var
	cache    map[*expr.Term]sat.Lit
	trueLit  sat.Lit
	haveTrue bool
}

func newEncoder() *encoder { return newEncoderWith(sat.New()) }

// newEncoderWith builds an encoder over an explicit boolean engine (a
// portfolio, for racing contexts).
func newEncoderWith(engine cdcl) *encoder {
	return &encoder{
		sat:     engine,
		atomVar: make(map[*expr.Term]int),
		boolVar: make(map[string]int),
		cache:   make(map[*expr.Term]sat.Lit),
	}
}

func (e *encoder) constTrue() sat.Lit {
	if !e.haveTrue {
		v := e.sat.NewVar()
		e.trueLit = sat.MkLit(v, false)
		e.sat.AddClause(e.trueLit)
		e.haveTrue = true
	}
	return e.trueLit
}

// encode returns a literal equivalent to the subformula t.
func (e *encoder) encode(t *expr.Term) sat.Lit {
	if l, ok := e.cache[t]; ok {
		return l
	}
	var l sat.Lit
	switch t.Op {
	case expr.OpBoolConst:
		if t.Val == 1 {
			l = e.constTrue()
		} else {
			l = e.constTrue().Not()
		}
	case expr.OpVar:
		v, ok := e.boolVar[t.Name]
		if !ok {
			v = e.sat.NewVar()
			e.boolVar[t.Name] = v
		}
		l = sat.MkLit(v, false)
	case expr.OpLe, expr.OpLt, expr.OpGe, expr.OpGt:
		l = e.atomLit(t)
	case expr.OpEq, expr.OpNe:
		if t.Args[0].Sort == expr.SortInt {
			l = e.atomLit(t)
			break
		}
		// Boolean iff / xor.
		a := e.encode(t.Args[0])
		b := e.encode(t.Args[1])
		g := sat.MkLit(e.sat.NewVar(), false)
		e.sat.AddClause(g.Not(), a.Not(), b)
		e.sat.AddClause(g.Not(), a, b.Not())
		e.sat.AddClause(g, a, b)
		e.sat.AddClause(g, a.Not(), b.Not())
		if t.Op == expr.OpNe {
			g = g.Not()
		}
		l = g
	case expr.OpNot:
		l = e.encode(t.Args[0]).Not()
	case expr.OpAnd:
		lits := make([]sat.Lit, len(t.Args))
		for i, a := range t.Args {
			lits[i] = e.encode(a)
		}
		g := sat.MkLit(e.sat.NewVar(), false)
		long := make([]sat.Lit, 0, len(lits)+1)
		long = append(long, g)
		for _, li := range lits {
			e.sat.AddClause(g.Not(), li)
			long = append(long, li.Not())
		}
		e.sat.AddClause(long...)
		l = g
	case expr.OpOr:
		lits := make([]sat.Lit, len(t.Args))
		for i, a := range t.Args {
			lits[i] = e.encode(a)
		}
		g := sat.MkLit(e.sat.NewVar(), false)
		long := make([]sat.Lit, 0, len(lits)+1)
		long = append(long, g.Not())
		for _, li := range lits {
			e.sat.AddClause(g, li.Not())
			long = append(long, li)
		}
		e.sat.AddClause(long...)
		l = g
	case expr.OpImplies:
		a := e.encode(t.Args[0])
		b := e.encode(t.Args[1])
		g := sat.MkLit(e.sat.NewVar(), false)
		e.sat.AddClause(g.Not(), a.Not(), b)
		e.sat.AddClause(g, a)
		e.sat.AddClause(g, b.Not())
		l = g
	case expr.OpIte: // boolean-sorted ite
		c := e.encode(t.Args[0])
		a := e.encode(t.Args[1])
		b := e.encode(t.Args[2])
		g := sat.MkLit(e.sat.NewVar(), false)
		e.sat.AddClause(g.Not(), c.Not(), a)
		e.sat.AddClause(g.Not(), c, b)
		e.sat.AddClause(g, c.Not(), a.Not())
		e.sat.AddClause(g, c, b.Not())
		l = g
	default:
		panic(fmt.Sprintf("smt: encode: unexpected boolean operator %v in %v", t.Op, t))
	}
	e.cache[t] = l
	return l
}

// suppLit is a theory atom with the polarity the support set requires.
type suppLit struct {
	atom     *expr.Term
	positive bool
}

// litValue reads the truth value of an encoded subformula off a SAT model.
func (e *encoder) litValue(t *expr.Term, model []bool) bool {
	l, ok := e.cache[t]
	if !ok {
		panic("smt: support: unencoded subformula")
	}
	return model[l.Var()] != l.Neg()
}

// support extracts a subset of theory literals that by itself forces the
// root formula true under the given skeleton model: a cheap prime
// implicant. For a true disjunction one true child suffices; for a false
// conjunction one false child suffices; everything else is followed
// according to its model value.
func (e *encoder) support(root *expr.Term, model []bool) []suppLit {
	var out []suppLit
	seen := make(map[*expr.Term]bool)
	var mark func(t *expr.Term)
	mark = func(t *expr.Term) {
		if seen[t] {
			return
		}
		seen[t] = true
		val := e.litValue(t, model)
		switch t.Op {
		case expr.OpBoolConst:
			// constants need no support
		case expr.OpVar:
			// boolean decision variables carry no theory content
		case expr.OpLe, expr.OpLt, expr.OpGe, expr.OpGt:
			out = append(out, suppLit{atom: t, positive: val})
		case expr.OpEq, expr.OpNe:
			if t.Args[0].Sort == expr.SortInt {
				out = append(out, suppLit{atom: t, positive: val})
				return
			}
			mark(t.Args[0])
			mark(t.Args[1])
		case expr.OpNot:
			mark(t.Args[0])
		case expr.OpAnd:
			if val {
				for _, a := range t.Args {
					mark(a)
				}
				return
			}
			for _, a := range t.Args {
				if !e.litValue(a, model) {
					mark(a)
					return
				}
			}
		case expr.OpOr:
			if !val {
				for _, a := range t.Args {
					mark(a)
				}
				return
			}
			for _, a := range t.Args {
				if e.litValue(a, model) {
					mark(a)
					return
				}
			}
		case expr.OpImplies:
			if !val {
				mark(t.Args[0])
				mark(t.Args[1])
				return
			}
			if !e.litValue(t.Args[0], model) {
				mark(t.Args[0])
				return
			}
			mark(t.Args[1])
		case expr.OpIte:
			mark(t.Args[0])
			if e.litValue(t.Args[0], model) {
				mark(t.Args[1])
			} else {
				mark(t.Args[2])
			}
		default:
			panic("smt: support: unexpected operator " + t.Op.String())
		}
	}
	mark(root)
	return out
}

func (e *encoder) atomLit(t *expr.Term) sat.Lit {
	v, ok := e.atomVar[t]
	if !ok {
		v = e.sat.NewVar()
		e.atomVar[t] = v
		e.atoms = append(e.atoms, t)
	}
	return sat.MkLit(v, false)
}
