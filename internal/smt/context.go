package smt

import (
	"errors"
	"fmt"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
	"cpr/internal/smt/guard"
	"cpr/internal/smt/lia"
	"cpr/internal/smt/portfolio"
	"cpr/internal/smt/sat"
)

// Context is the persistent incremental solving state a Solver keeps when
// Options.Incremental is set: one CDCL instance whose clause database
// (including learned clauses) survives across queries, a Tseitin encoding
// cache keyed by interned conjunct pointer, and per-bounds-box LIA state.
//
// Retractability comes from selector literals. Each top-level conjunct C is
// encoded once as (¬sel_C ∨ root_C); a query asserts its conjuncts by
// assuming their selectors, so formulas switch on and off without touching
// the clause database. Theory conflicts become blocking clauses guarded by
// a per-bounds-box selector (¬sel_box ∨ ¬a₁ ∨ … ∨ ¬aₖ): a lemma derived
// under one bounds box is sound only there, and the guard makes every CDCL
// clause learned from it inherit the box condition, so retained lemmas stay
// sound when later queries use different bounds.
//
// A Context decides verdicts only; it never builds models. Models are
// produced by the deterministic scratch path (see Solver.Check), which is
// what makes repair results identical with Incremental on or off.
type Context struct {
	opts  Options
	stats *solverStats

	enc     *encoder
	auxNext int // global purifier counter: aux names never collide across conjuncts

	// port is the racing engine behind enc.sat when Options.Portfolio ≥ 2,
	// kept typed for counter syncing; nil for single-strategy contexts.
	port *portfolio.Engine

	groups   map[*expr.Term]*group
	selGroup map[sat.Lit]*expr.Term
	boxes    map[string]*boxState

	intVars   []string // integer variables seen so far, first-seen order
	intVarSet map[string]bool

	conCache map[conKey]lia.Constraint

	// Deltas already folded into stats, so clausesLearned/Deleted stay
	// monotone across decide calls.
	lastLearned, lastDeleted           uint64
	lastRaces, lastMirrors, lastShared uint64

	// verifyTick counts sat answers for sampled model self-checks: the
	// retained clause database grows with every query, and replaying a
	// model against all of it each theory round is the single biggest
	// fixed cost of incremental solving. The check only ever catches CDCL
	// bugs (nothing downstream depends on it answering), so it runs on a
	// deterministic 1-in-16 sample — and on every round under Paranoid.
	verifyTick uint64
}

// group is one prepared top-level conjunct: simplified, purified, encoded
// behind a selector. trivial short-circuits conjuncts that simplify to a
// constant (they need no encoding).
type group struct {
	sel     sat.Lit
	g       *expr.Term // purified+simplified formula; nil when trivial
	trivial int8       // 0 = encoded, 1 = true, 2 = false
}

const (
	trivNone int8 = iota
	trivTrue
	trivFalse
)

// boxState is the per-bounds-box solving state: its guard selector, the
// reusable LIA box, and how many of the context's integer variables the
// box already covers (for lazy extension).
type boxState struct {
	sel   sat.Lit
	lia   *lia.Box
	nvars int
}

// conKey memoizes atom→constraint translation per polarity.
type conKey struct {
	atom *expr.Term
	pos  bool
}

func newContext(opts Options, stats *solverStats) *Context {
	engine := cdcl(sat.New())
	var port *portfolio.Engine
	if opts.Portfolio >= 2 {
		port = portfolio.New(sat.Portfolio(opts.Portfolio)...)
		engine = port
	}
	return &Context{
		opts:      opts,
		stats:     stats,
		enc:       newEncoderWith(engine),
		port:      port,
		groups:    make(map[*expr.Term]*group),
		selGroup:  make(map[sat.Lit]*expr.Term),
		boxes:     make(map[string]*boxState),
		intVarSet: make(map[string]bool),
		conCache:  make(map[conKey]lia.Constraint),
	}
}

// prep returns the prepared group for a raw top-level conjunct, encoding it
// on first sight. Each conjunct gets its own purifier (a shared purifier
// cache would let one conjunct reuse aux variables whose defining
// constraints live behind another conjunct's selector — unsound when only
// one of them is active); the shared counter keeps aux names distinct.
func (c *Context) prep(cj *expr.Term) *group {
	if g, ok := c.groups[cj]; ok {
		c.stats.encodeCacheHits.Add(1)
		return g
	}
	c.stats.encodeCacheMisses.Add(1)
	g := &group{}
	pur := &purifier{next: c.auxNext}
	p := pur.purify(expr.Simplify(cj))
	c.auxNext = pur.next
	if len(pur.defs) > 0 {
		p = expr.And(append([]*expr.Term{p}, pur.defs...)...)
	}
	p = expr.Simplify(p)
	switch {
	case p.IsTrue():
		g.trivial = trivTrue
	case p.IsFalse():
		g.trivial = trivFalse
	default:
		g.g = p
		root := c.enc.encode(p)
		g.sel = sat.MkLit(c.enc.sat.NewVar(), false)
		c.enc.sat.AddClause(g.sel.Not(), root)
		c.selGroup[g.sel] = cj
		for _, v := range expr.Vars(p) {
			if v.Sort == expr.SortInt && !c.intVarSet[v.Name] {
				c.intVarSet[v.Name] = true
				c.intVars = append(c.intVars, v.Name)
			}
		}
	}
	c.groups[cj] = g
	return g
}

// boxFor returns the solving state for a bounds map, creating it on first
// sight and lazily extending its domain coverage to integer variables that
// appeared since the box was last used.
func (c *Context) boxFor(bounds map[string]interval.Interval) *boxState {
	key := cache.BoundsKey(bounds, c.opts.DefaultBounds)
	b, ok := c.boxes[key]
	if !ok {
		b = &boxState{
			sel: sat.MkLit(c.enc.sat.NewVar(), false),
			lia: lia.NewBox(bounds),
		}
		c.boxes[key] = b
	}
	for _, name := range c.intVars[b.nvars:] {
		if !b.lia.Has(name) {
			b.lia.Extend(name, c.opts.DefaultBounds)
		}
	}
	b.nvars = len(c.intVars)
	return b
}

// syncClauseStats folds the CDCL clause (and portfolio) counters into the
// solver stats.
func (c *Context) syncClauseStats() {
	st := c.enc.sat.Snapshot()
	c.stats.clausesLearned.Add(st.Learned - c.lastLearned)
	c.stats.clausesDeleted.Add(st.Deleted - c.lastDeleted)
	c.lastLearned, c.lastDeleted = st.Learned, st.Deleted
	c.stats.clausesKept.Store(uint64(c.enc.sat.NumLearnts()))
	if c.port != nil {
		ps := c.port.Stats()
		c.stats.portfolioRaces.Add(ps.Races - c.lastRaces)
		c.stats.portfolioMirrorWins.Add(ps.MirrorWins - c.lastMirrors)
		c.stats.portfolioShared.Add(ps.SharedLearnt - c.lastShared)
		c.lastRaces, c.lastMirrors, c.lastShared = ps.Races, ps.MirrorWins, ps.SharedLearnt
	}
}

// decide runs the DPLL(T) loop for f under bounds on the persistent state
// and returns the verdict. On Unsat it also returns the subset of f's
// top-level conjuncts in the assumption core (nil when the core does not
// narrow f, e.g. a trivially false conjunct reported as itself).
func (c *Context) decide(f *expr.Term, bounds map[string]interval.Interval, qtok *cancel.Token, query uint64) (Status, []*expr.Term, error) {
	defer c.syncClauseStats()

	conjs := f.Args
	if f.Op != expr.OpAnd {
		conjs = []*expr.Term{f}
	}
	groups := make([]*group, 0, len(conjs))
	for _, cj := range conjs {
		g := c.prep(cj)
		switch g.trivial {
		case trivTrue:
			continue
		case trivFalse:
			return Unsat, []*expr.Term{cj}, nil
		}
		groups = append(groups, g)
	}
	if len(groups) == 0 {
		return Sat, nil, nil
	}

	box := c.boxFor(bounds)
	assumps := make([]sat.Lit, 0, len(groups)+1)
	assumps = append(assumps, box.sel)
	for _, g := range groups {
		assumps = append(assumps, g.sel)
	}

	lopts := c.opts.LIA
	var stop func() bool
	if qtok != nil {
		stop = qtok.Expired
		lopts.Stop = qtok.Expired
	}
	c.enc.sat.SetLimits(c.opts.MaxConflicts, stop)

	conflictsAtStart := c.enc.sat.Snapshot().Conflicts
	budgetErr := func(stage string, round int, detail error) error {
		c.stats.unknowns.Add(1)
		return &BudgetError{
			Stage:        stage,
			Query:        query,
			TheoryRounds: round,
			Conflicts:    c.enc.sat.Snapshot().Conflicts - conflictsAtStart,
			Clauses:      c.enc.sat.NumClauses(),
			Atoms:        len(c.enc.atomVar),
			Detail:       detail,
		}
	}

	for round := 0; round < c.opts.MaxTheoryRounds; round++ {
		if qtok.Expired() {
			return Unknown, nil, budgetErr("deadline", round, qtok.Err())
		}
		c.stats.theoryRounds.Add(1)
		satStart := time.Now()
		satStatus := c.enc.sat.SolveUnder(assumps...)
		c.stats.timeSat(satStart)
		switch satStatus {
		case sat.Unsat:
			core := c.assumptionCore(conjs)
			return Unsat, core, nil
		case sat.Unknown:
			stage := "sat-conflicts"
			if qtok.Expired() {
				stage = "deadline"
			}
			return Unknown, nil, budgetErr(stage, round, nil)
		}
		c.verifyTick++
		if c.opts.Paranoid || c.verifyTick&15 == 0 {
			if !c.enc.sat.VerifyModel() {
				// The retained clause database produced a model that does
				// not satisfy it. The solver quarantines this context and
				// retries the query on the scratch rung.
				return Unknown, nil, fmt.Errorf("%w (incremental sat tier, query %d round %d)", guard.ErrVerdictRejected, query, round)
			}
		}
		model := c.enc.sat.Model()

		// Assert the union of the active groups' support sets to the
		// theory, under this box's domains.
		var cons []lia.Constraint
		var block []sat.Lit
		block = append(block, box.sel.Not())
		for _, g := range groups {
			for _, sl := range c.enc.support(g.g, model) {
				con, err := c.constraintFor(sl)
				if err != nil {
					return Unknown, nil, err
				}
				cons = append(cons, con)
				block = append(block, sat.MkLit(c.enc.atomVar[sl.atom], sl.positive))
			}
		}
		liaStart := time.Now()
		res, err := box.lia.Solve(cons, lopts)
		c.stats.timeLIA(liaStart)
		if err != nil {
			if errors.Is(err, lia.ErrBudget) {
				stage := "lia"
				if qtok.Expired() {
					stage = "deadline"
				}
				return Unknown, nil, budgetErr(stage, round, err)
			}
			return Unknown, nil, err
		}
		if res.Status == lia.Sat {
			return Sat, nil, nil
		}
		// Theory conflict: block this support set for this bounds box.
		// AddClause dedups literals shared between groups.
		if !c.enc.sat.AddClause(block...) {
			return Unsat, nil, nil
		}
	}
	return Unknown, nil, budgetErr("theory-rounds", c.opts.MaxTheoryRounds, nil)
}

// constraintFor memoizes atom→LIA-constraint translation per polarity.
func (c *Context) constraintFor(sl suppLit) (lia.Constraint, error) {
	k := conKey{atom: sl.atom, pos: sl.positive}
	if con, ok := c.conCache[k]; ok {
		return con, nil
	}
	con, err := atomToConstraint(sl.atom, sl.positive)
	if err != nil {
		return lia.Constraint{}, err
	}
	c.conCache[k] = con
	return con, nil
}

// assumptionCore maps the SAT layer's assumption core back to the query's
// top-level conjuncts, in original conjunct order. The box selector (and a
// nil core: unsat independent of assumptions) maps to no conjuncts.
func (c *Context) assumptionCore(conjs []*expr.Term) []*expr.Term {
	lits := c.enc.sat.Core()
	if len(lits) == 0 {
		return nil
	}
	inCore := make(map[*expr.Term]bool, len(lits))
	for _, l := range lits {
		if cj, ok := c.selGroup[l]; ok {
			inCore[cj] = true
		}
	}
	if len(inCore) == 0 {
		return nil
	}
	core := make([]*expr.Term, 0, len(inCore))
	for _, cj := range conjs {
		if inCore[cj] {
			core = append(core, cj)
		}
	}
	c.stats.assumptionCores.Add(1)
	c.stats.assumptionCoreLits.Add(uint64(len(core)))
	return core
}
