package smt

import (
	"cpr/internal/expr"
	"cpr/internal/interval"
)

// BatchItem is one member of a DecideBatch call: an opaque ID the caller
// uses to match verdicts back to work items, and the item-specific formula
// that is conjoined with the batch's common part.
type BatchItem struct {
	ID int
	F  *expr.Term
}

// BatchVerdict is DecideBatch's per-item answer, in input order.
type BatchVerdict struct {
	ID     int
	Status Status
	Err    error
}

// DecideBatch answers Decide(And(common, item.F), bounds) for every item,
// sharing solver work across the group. It issues one query for the whole
// conjunction And(common, item₀, …, itemₙ) and exploits two sound
// group-testing facts:
//
//   - If the group conjunction is Sat, every item is Sat: a model of the
//     superset conjunction satisfies each subset conjunction.
//   - If the group conjunction is Unsat with an assumption core, every item
//     whose conjunct set (common ∪ its own conjuncts) covers the core is
//     itself Unsat: the core alone is contradictory and the item asserts
//     all of it. With a core inside the common part alone, that is every
//     item.
//
// A core that kills no item (it mixes conjuncts of several items) triggers
// bisection: the group is split in half and each half re-decided, down to
// singletons. A singleton, or any Unknown/error group answer, falls back to
// an individual Decide call — exactly the query the caller would have made
// unbatched, so per-item verdicts (and the cache entries and models behind
// them) are identical with batching on or off. Only the amount of solver
// work differs. Cores are trusted to the same degree as the cache's
// subsumption index: they are post-verifyUnsat cores, cross-checked by the
// guard's sampled validation and withdrawn with the epoch on quarantine.
//
// The caller must not rely on any particular order of solver-side effects
// between items of one batch; verdicts themselves are deterministic.
func (s *Solver) DecideBatch(common *expr.Term, items []BatchItem, bounds map[string]interval.Interval) []BatchVerdict {
	out := make([]BatchVerdict, len(items))
	for i, it := range items {
		out[i] = BatchVerdict{ID: it.ID, Status: Unknown}
	}
	if len(items) == 0 {
		return out
	}
	commonSet := conjSet(common)
	// idx maps positions in the working slice back to out positions.
	idx := make([]int, len(items))
	for i := range items {
		idx[i] = i
	}
	s.batchDecide(common, commonSet, items, idx, bounds, out)
	return out
}

// batchDecide resolves one (sub)group, writing verdicts into out at the
// positions given by idx.
func (s *Solver) batchDecide(common *expr.Term, commonSet map[*expr.Term]bool, items []BatchItem, idx []int, bounds map[string]interval.Interval, out []BatchVerdict) {
	if len(items) == 1 {
		s.batchSingle(common, items[0], idx[0], bounds, out)
		return
	}

	parts := make([]*expr.Term, 0, len(items)+1)
	parts = append(parts, common)
	for _, it := range items {
		parts = append(parts, it.F)
	}
	group := expr.And(parts...)

	s.stats.batchQueries.Add(1)
	// The group error (if any) is deliberately dropped: a failed group
	// query costs only the retry below; per-item errors surface from the
	// individual fallback calls.
	st, core, _ := s.DecideCore(group, bounds)
	switch st {
	case Sat:
		// A model of the group satisfies every item's conjunction.
		s.stats.batchItems.Add(uint64(len(items)))
		for _, o := range idx {
			out[o].Status = Sat
		}
		return
	case Unsat:
		if len(core) == 0 {
			// No core to attribute blame with (e.g. a cache hit, or unsat
			// independent of assumptions): resolve items individually.
			break
		}
		// An item is Unsat iff its asserted conjuncts cover the core.
		var rest []BatchItem
		var restIdx []int
		killed := 0
		for i, it := range items {
			if coveredBy(core, commonSet, conjSet(it.F)) {
				out[idx[i]].Status = Unsat
				killed++
			} else {
				rest = append(rest, it)
				restIdx = append(restIdx, idx[i])
			}
		}
		s.stats.batchItems.Add(uint64(killed))
		if len(rest) == 0 {
			return
		}
		if killed > 0 {
			// The core narrowed the group; re-decide the survivors as one
			// smaller batch.
			s.batchDecide(common, commonSet, rest, restIdx, bounds, out)
			return
		}
		// Mixed-blame core (conjuncts from several items). Cores are only
		// as sharp as the conflict analysis behind them — a theory-driven
		// conflict blocks its whole support set, so the core can span every
		// selector even when the common part alone is contradictory. Test
		// that directly before bisecting: one query, and when the shared
		// prefix is infeasible it kills the entire group.
		if !common.IsTrue() {
			s.stats.batchQueries.Add(1)
			if cst, _ := s.Decide(common, bounds); cst == Unsat {
				s.stats.batchItems.Add(uint64(len(rest)))
				for _, o := range restIdx {
					out[o].Status = Unsat
				}
				return
			}
		}
		// Bisect.
		s.stats.batchBisections.Add(1)
		mid := len(rest) / 2
		s.batchDecide(common, commonSet, rest[:mid], restIdx[:mid], bounds, out)
		s.batchDecide(common, commonSet, rest[mid:], restIdx[mid:], bounds, out)
		return
	}
	// Unknown (budget, error) or an unattributable Unsat: don't guess —
	// resolve every remaining item with the exact unbatched query.
	for i, it := range items {
		s.batchSingle(common, it, idx[i], bounds, out)
	}
}

// batchSingle answers one item with exactly the query an unbatched caller
// would make.
func (s *Solver) batchSingle(common *expr.Term, it BatchItem, o int, bounds map[string]interval.Interval, out []BatchVerdict) {
	st, err := s.Decide(expr.And(common, it.F), bounds)
	out[o].Status = st
	out[o].Err = err
}

// conjSet returns the set of top-level conjuncts of f — the units the
// incremental context assumes selectors for, and therefore the granularity
// assumption cores come back at. expr.And flattens nested conjunctions, so
// membership by interned pointer is exact.
func conjSet(f *expr.Term) map[*expr.Term]bool {
	m := make(map[*expr.Term]bool)
	if f == nil {
		return m
	}
	if f.Op == expr.OpAnd {
		for _, a := range f.Args {
			m[a] = true
		}
		return m
	}
	m[f] = true
	return m
}

// coveredBy reports whether every core conjunct is asserted by an item
// whose conjunct sets are a and b.
func coveredBy(core []*expr.Term, a, b map[*expr.Term]bool) bool {
	for _, cj := range core {
		if !a[cj] && !b[cj] {
			return false
		}
	}
	return true
}
