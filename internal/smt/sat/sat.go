// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat lineage: two-watched-literal propagation, first-UIP
// conflict analysis, exponential VSIDS variable activities, phase saving,
// Luby restarts, and activity-based learned-clause deletion.
//
// The solver is the boolean engine underneath the lazy SMT solver in
// package smt: propositional skeletons of path and patch constraints are
// decided here, and theory conflicts come back as blocking clauses.
package sat

import "fmt"

// Lit is a literal: variable v as a positive literal is 2v, negated is
// 2v+1. The zero Lit is variable 0, positive.
type Lit int32

// MkLit builds a literal from a variable index and a sign (neg=true for
// the negative literal).
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as v3 or ¬v3.
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("¬v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

// watcher is one watch-list entry: the watched clause plus a cached
// "blocker" literal from it (MiniSat's blocking-literal optimization).
// When the blocker is already true the clause is satisfied and propagate
// skips it without touching the clause memory at all — on large retained
// databases most watch visits end here, before the cache miss.
type watcher struct {
	c       *clause
	blocker Lit
}

// Stats counts solver work, exposed for benchmarks and the smt layer.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learned      uint64
	Deleted      uint64
}

// Solver is a CDCL SAT solver. Create one with New, add variables with
// NewVar and clauses with AddClause, then call Solve. Clauses may be added
// between Solve calls (the incremental pattern the SMT layer relies on).
type Solver struct {
	ok       bool // false once the clause set is known unsatisfiable
	clauses  []*clause
	learnts  []*clause
	watches  [][]watcher // indexed by literal
	assigns  []lbool     // indexed by var
	level    []int       // indexed by var
	reason   []*clause   // indexed by var
	phase    []bool      // saved polarity, indexed by var
	activity []float64   // VSIDS activity, indexed by var
	varInc   float64
	claInc   float64

	cfg       Config  // search strategy (defaults applied)
	varDecayF float64 // per-conflict multiplier on varInc: 1/cfg.VarDecay
	claDecayF float64 // per-conflict multiplier on claInc: 1/cfg.ClaDecay

	// Arena-style allocation pools for the solve hot loop: clause headers
	// come from slabs, literal storage from a chunked arena, and clauses
	// dropped by reduceDB go on a freelist that newClause recycles
	// (keeping their lit capacity). Profiling shows learned-clause
	// allocation is the dominant steady-state allocator load.
	claSlab  []clause
	freeCla  []*clause
	litArena []Lit
	sortBuf  []*clause

	trail    []Lit
	trailLim []int
	qhead    int

	heap    varHeap
	seen    []bool
	model   []bool
	Statist Stats

	// assumps holds the assumption literals of the in-flight SolveUnder
	// call; core holds the assumption subset returned by Core after an
	// unsat-under-assumptions answer.
	assumps []Lit
	core    []Lit

	// Reusable scratch for AddClause (generation-stamped dedup, indexed by
	// literal) and for analyze (learned-literal and cleanup buffers): these
	// run once per clause/conflict, so per-call allocation dominates the
	// hot path without reuse.
	addMark    []uint32
	addGen     uint32
	addBuf     []Lit
	learntBuf  []Lit
	cleanupBuf []int

	// MaxConflicts bounds the total conflicts across Solve calls;
	// 0 means unbounded. Exceeding it makes Solve return Unknown.
	MaxConflicts uint64

	// Stop, when non-nil, is polled periodically during search (every few
	// dozen conflicts and every few hundred decisions); a true return
	// aborts the current Solve with Unknown. This is the check-on-conflict
	// cancellation hook the SMT layer uses for per-query deadlines.
	Stop func() bool

	polls uint64
}

// New returns an empty solver with the default search strategy.
func New() *Solver { return NewWith(Config{}) }

// NewWith returns an empty solver using the given search strategy.
func NewWith(cfg Config) *Solver {
	cfg = cfg.withDefaults()
	s := &Solver{ok: true, varInc: 1, claInc: 1,
		cfg:       cfg,
		varDecayF: 1 / cfg.VarDecay,
		claDecayF: 1 / cfg.ClaDecay,
	}
	s.heap.act = &s.activity
	return s
}

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, s.cfg.PhaseTrue)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.addMark = append(s.addMark, 0, 0)
	s.heap.push(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if (v == lTrue) != l.Neg() {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause over the given literals. It returns false if the
// clause set has become trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort-free dedup, drop falsified (level 0), detect taut.
	// Dedup uses a generation-stamped array indexed by literal, so the
	// scratch survives across calls without clearing.
	s.addGen++
	if s.addGen == 0 { // wrapped: stale stamps could collide, wipe them
		clear(s.addMark)
		s.addGen = 1
	}
	out := s.addBuf[:0]
	for _, l := range lits {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: AddClause: literal %v references unknown variable", l))
		}
		switch {
		case s.addMark[l] == s.addGen:
			continue
		case s.addMark[l.Not()] == s.addGen:
			return true // tautology
		case s.valueLit(l) == lTrue:
			return true // already satisfied at level 0
		case s.valueLit(l) == lFalse:
			continue // falsified at level 0: drop
		}
		s.addMark[l] = s.addGen
		out = append(out, l)
	}
	s.addBuf = out[:0]
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := s.newClause(out, false)
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

// newClause copies lits into pooled storage: a recycled header from the
// reduceDB freelist when one fits, otherwise a fresh header from the slab
// with literal storage carved out of the arena.
func (s *Solver) newClause(lits []Lit, learnt bool) *clause {
	var c *clause
	if n := len(s.freeCla); n > 0 {
		c = s.freeCla[n-1]
		s.freeCla = s.freeCla[:n-1]
		if cap(c.lits) >= len(lits) {
			c.lits = c.lits[:len(lits)]
		} else {
			c.lits = s.allocLits(len(lits))
		}
	} else {
		if len(s.claSlab) == 0 {
			s.claSlab = make([]clause, 256)
		}
		c = &s.claSlab[0]
		s.claSlab = s.claSlab[1:]
		c.lits = s.allocLits(len(lits))
	}
	copy(c.lits, lits)
	c.learnt = learnt
	c.activity = 0
	return c
}

func (s *Solver) allocLits(n int) []Lit {
	if n > len(s.litArena) {
		sz := 4096
		if n > sz {
			sz = n
		}
		s.litArena = make([]Lit, sz)
	}
	out := s.litArena[:n:n]
	s.litArena = s.litArena[n:]
	return out
}

func (s *Solver) watchClause(c *clause) {
	// Watch the first two literals; on attach after backtrack to 0 any
	// two unassigned or satisfied literals work because AddClause
	// removed level-0 falsified ones. Each watcher's blocker is the
	// other watched literal.
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.heap.push(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Statist.Propagations++
		np := p.Not()
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			// Blocker already true: clause satisfied, skip without
			// touching the clause memory.
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal is lits[1].
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.valueLit(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				kept = append(kept, ws[i+1:]...)
				break
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learned
// clause (with the asserting literal first) and the backtrack level. The
// returned slice aliases a reusable buffer: it is valid until the next
// analyze call, and callers who retain it must copy.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := append(s.learntBuf[:0], 0) // slot 0 reserved for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	c := conflict
	cleanup := s.cleanupBuf[:0]

	for {
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if p != -1 && q == p {
				continue // the literal this reason clause propagated
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			cleanup = append(cleanup, v)
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand from the trail.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[v]
	}
	learnt[0] = p.Not()

	// Backtrack level: maximum level among learnt[1:].
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].Var()]
	}
	for _, v := range cleanup {
		s.seen[v] = false
	}
	s.learntBuf = learnt[:0]
	s.cleanupBuf = cleanup[:0]
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, l := range s.learnts {
			l.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// reduceDB removes the less active half of the learned clauses that are
// not reasons for current assignments. Removed clauses go on the
// newClause freelist.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Partial selection: simple sort by activity.
	sorted := append(s.sortBuf[:0], s.learnts...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].activity < sorted[j-1].activity; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	limit := len(sorted) / 2
	remove := make(map[*clause]bool)
	for _, c := range sorted[:limit] {
		if len(c.lits) > 2 && !s.isReason(c) {
			remove[c] = true
		}
	}
	s.sortBuf = sorted[:0]
	if len(remove) == 0 {
		return
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if remove[c] {
			s.Statist.Deleted++
			// Recycling is safe: the clause is purged from every watch
			// list below and was never a reason (excluded above), and
			// newClause only runs after reduceDB returns.
			s.freeCla = append(s.freeCla, c)
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
	for li := range s.watches {
		ws := s.watches[li][:0]
		for _, w := range s.watches[li] {
			if !remove[w.c] {
				ws = append(ws, w)
			}
		}
		s.watches[li] = ws
	}
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assigns[v] != lUndef && s.reason[v] == c
}

// luby computes the Luby restart sequence term i (1-based).
func luby(i uint64) uint64 {
	for k := uint64(1); ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve decides satisfiability of the accumulated clauses. On Sat, Model
// reports variable values. Solve may be called repeatedly, interleaved
// with AddClause.
func (s *Solver) Solve() Status { return s.SolveUnder() }

// SolveUnder decides satisfiability of the accumulated clauses under the
// given assumption literals (MiniSat's solve-with-assumptions). On Unsat,
// Core reports the subset of assumptions involved in the final conflict;
// an Unsat answer under non-empty assumptions does NOT mark the clause set
// unsatisfiable, so the solver remains usable for further calls — this is
// what makes selector-guarded assertions retractable.
func (s *Solver) SolveUnder(assumptions ...Lit) Status {
	s.core = nil
	if !s.ok {
		return Unsat
	}
	for _, l := range assumptions {
		if l.Var() >= s.NumVars() {
			panic(fmt.Sprintf("sat: SolveUnder: assumption %v references unknown variable", l))
		}
	}
	s.assumps = assumptions
	defer func() { s.assumps = nil }()
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	restarts := uint64(0)
	conflictsAtStart := s.Statist.Conflicts
	maxLearnts := len(s.clauses)/3 + 100
	geomBudget := float64(s.cfg.RestartBase)
	for {
		restarts++
		var budget uint64
		if s.cfg.Geometric {
			budget = uint64(geomBudget)
			geomBudget *= s.cfg.RestartGrow
		} else {
			budget = luby(restarts) * s.cfg.RestartBase
		}
		st := s.search(budget, &maxLearnts, conflictsAtStart)
		if st != Unknown {
			return st
		}
		if s.MaxConflicts > 0 && s.Statist.Conflicts-conflictsAtStart >= s.MaxConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		if s.stopped(1) {
			s.cancelUntil(0)
			return Unknown
		}
		s.Statist.Restarts++
		s.cancelUntil(0)
	}
}

func (s *Solver) search(budget uint64, maxLearnts *int, conflictsAtStart uint64) Status {
	var conflicts uint64
	for {
		conflict := s.propagate()
		if conflict != nil {
			conflicts++
			s.Statist.Conflicts++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			if s.stopped(32) {
				return Unknown
			}
			learnt, bt := s.analyze(conflict)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				// analyze returns a reusable buffer; the stored clause
				// needs its own (pooled) copy.
				c := s.newClause(learnt, true)
				s.learnts = append(s.learnts, c)
				s.Statist.Learned++
				s.watchClause(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc *= s.varDecayF
			s.claInc *= s.claDecayF
			continue
		}
		if conflicts >= budget {
			return Unknown
		}
		if s.MaxConflicts > 0 && s.Statist.Conflicts-conflictsAtStart >= s.MaxConflicts {
			return Unknown
		}
		if s.stopped(512) {
			return Unknown
		}
		if len(s.learnts) > *maxLearnts {
			s.reduceDB()
			*maxLearnts = *maxLearnts*11/10 + 10
		}
		// Decide: pending assumptions first, then activity order.
		var next Lit = -1
		for next < 0 && s.decisionLevel() < len(s.assumps) {
			p := s.assumps[s.decisionLevel()]
			switch s.valueLit(p) {
			case lTrue:
				// Already implied: open a dummy level so decision level
				// k always means "assumptions 0..k-1 are in force".
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The clause set forces ¬p under the earlier assumptions:
				// unsat under assumptions, with a final-conflict core.
				s.core = s.analyzeFinal(p)
				return Unsat
			default:
				next = p
			}
		}
		if next < 0 {
			v := s.pickBranchVar()
			if v < 0 {
				// All variables assigned: model found.
				s.model = make([]bool, s.NumVars())
				for i := range s.model {
					s.model[i] = s.assigns[i] == lTrue
				}
				return Sat
			}
			s.Statist.Decisions++
			next = MkLit(v, !s.phase[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// analyzeFinal computes the assumption subset sufficient for the
// falsification of assumption p (MiniSat's final-conflict analysis): it
// expands reasons backward from ¬p; assumption decisions reached by the
// walk join p in the core. It is only called from the decide step, where
// every decision on the trail is itself an assumption.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	out := []Lit{p}
	if s.decisionLevel() == 0 {
		return out
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			// A decision, hence an assumption: it is part of the core. The
			// trail holds the literal as assumed (true-valued).
			out = append(out, s.trail[i])
		} else {
			for _, l := range r.lits {
				if l.Var() != v && s.level[l.Var()] > 0 {
					s.seen[l.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
	return out
}

// Core returns the subset of the last SolveUnder call's assumptions that
// participated in the Unsat answer (p for a directly falsified assumption
// p, plus the assumptions that forced it). A nil core after Unsat means
// the clause set is unsatisfiable regardless of assumptions. The slice is
// owned by the caller.
func (s *Solver) Core() []Lit { return s.core }

// stopped rate-limits the Stop callback: it polls the callback on every
// everyth call (a power of two), so hot paths pay only a counter
// increment between real checks.
func (s *Solver) stopped(every uint64) bool {
	if s.Stop == nil {
		return false
	}
	s.polls++
	return s.polls%every == 0 && s.Stop()
}

// NumClauses returns the problem clause count (excluding learned clauses),
// exposed for budget-exhaustion diagnostics in the SMT layer.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learned clauses currently retained
// (learned minus deleted), exposed for the incremental-solving counters.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.heap.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// Model returns the satisfying assignment found by the last successful
// Solve; index by variable.
func (s *Solver) Model() []bool { return s.model }

// VerifyModel replays the last Solve's model against the problem clause
// set: every clause must contain a satisfied literal. It is the SAT tier's
// verdict-validation hook — a false return means the solver produced a
// model that does not actually satisfy its own clauses, which the guard
// layer treats as a validation failure. Learned clauses are implied by the
// problem clauses, so replaying the problem set suffices. Returns false
// when no model is available.
func (s *Solver) VerifyModel() bool {
	if s.model == nil {
		return false
	}
	for _, c := range s.clauses {
		ok := false
		for _, l := range c.lits {
			v := l.Var()
			if v < len(s.model) && s.model[v] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// varHeap is a max-heap of variables ordered by activity with lazy
// reinsertion (popped vars may be stale; pickBranchVar filters).
type varHeap struct {
	act   *[]float64
	data  []int
	index []int // position+1 in data; 0 = absent
}

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.data[i]] > (*h.act)[h.data[j]]
}

func (h *varHeap) swap(i, j int) {
	h.data[i], h.data[j] = h.data[j], h.data[i]
	h.index[h.data[i]] = i + 1
	h.index[h.data[j]] = j + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.data)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *varHeap) push(v int) {
	for v >= len(h.index) {
		h.index = append(h.index, 0)
	}
	if h.index[v] != 0 {
		return
	}
	h.data = append(h.data, v)
	h.index[v] = len(h.data)
	h.up(len(h.data) - 1)
}

func (h *varHeap) pop() (int, bool) {
	if len(h.data) == 0 {
		return 0, false
	}
	v := h.data[0]
	last := len(h.data) - 1
	h.swap(0, last)
	h.data = h.data[:last]
	h.index[v] = 0
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if v < len(h.index) && h.index[v] != 0 {
		h.up(h.index[v] - 1)
	}
}
