package sat

// This file is the portfolio-facing surface: budget installation, stats
// snapshots, and learned-clause export/import. A portfolio races several
// Solvers over identical clause sets; after a race the winner's freshest
// short learnt clauses are imported into the surviving incumbent so the
// race's work compounds with the incremental retention machinery.

// SetLimits installs the conflict budget and the cooperative stop hook in
// one call (the two fields the SMT layer sets before every query).
func (s *Solver) SetLimits(maxConflicts uint64, stop func() bool) {
	s.MaxConflicts = maxConflicts
	s.Stop = stop
}

// Snapshot returns the work counters accumulated so far.
func (s *Solver) Snapshot() Stats { return s.Statist }

// Strategy returns the solver's search configuration (defaults applied).
func (s *Solver) Strategy() Config { return s.cfg }

// RecentLearnts appends to dst copies of up to max currently retained
// learned clauses of length ≤ maxLen, preferring the most recently
// learned, and returns the extended slice. The copies are owned by the
// caller. Learned clauses are implied by the problem clause set alone
// (assumptions enter the search as decisions, never as reasons crossing
// level 0 — see analyzeFinal), so exporting them to any solver with the
// same problem clauses is sound.
func (s *Solver) RecentLearnts(dst [][]Lit, maxLen, max int) [][]Lit {
	for i := len(s.learnts) - 1; i >= 0 && max > 0; i-- {
		c := s.learnts[i]
		if len(c.lits) > maxLen {
			continue
		}
		dst = append(dst, append([]Lit(nil), c.lits...))
		max--
	}
	return dst
}

// ImportLearnts adds foreign learned clauses (e.g. a race winner's
// exports) as deletable learnt clauses. Clauses mentioning unknown
// variables are skipped; unit clauses become level-0 implications.
// Returns false if an import made the clause set unsatisfiable at level 0
// (only possible if the exporter's clause DB proved more than ours, which
// with identical problem clauses still yields a correct Unsat).
func (s *Solver) ImportLearnts(cls [][]Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
outer:
	for _, lits := range cls {
		s.addGen++
		if s.addGen == 0 {
			clear(s.addMark)
			s.addGen = 1
		}
		out := s.addBuf[:0]
		for _, l := range lits {
			if l.Var() >= s.NumVars() {
				continue outer
			}
			switch {
			case s.addMark[l] == s.addGen:
				continue
			case s.addMark[l.Not()] == s.addGen:
				continue outer // tautology
			case s.valueLit(l) == lTrue:
				continue outer // satisfied at level 0
			case s.valueLit(l) == lFalse:
				continue // falsified at level 0: drop
			}
			s.addMark[l] = s.addGen
			out = append(out, l)
		}
		s.addBuf = out[:0]
		switch len(out) {
		case 0:
			s.ok = false
			return false
		case 1:
			s.uncheckedEnqueue(out[0], nil)
			if s.propagate() != nil {
				s.ok = false
				return false
			}
		default:
			c := s.newClause(out, true)
			s.learnts = append(s.learnts, c)
			s.Statist.Learned++
			s.watchClause(c)
		}
	}
	return true
}
