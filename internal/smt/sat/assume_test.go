package sat

import (
	"math/rand"
	"testing"
)

func coreSet(core []Lit) map[Lit]bool {
	m := make(map[Lit]bool, len(core))
	for _, l := range core {
		m[l] = true
	}
	return m
}

func TestSolveUnderBasic(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(nlit(a), lit(b)) // a → b

	if s.SolveUnder(lit(a)) != Sat {
		t.Fatal("a with a→b should be sat")
	}
	if !s.Model()[a] || !s.Model()[b] {
		t.Fatal("model must satisfy the assumption and its consequence")
	}
	if s.SolveUnder(lit(a), nlit(b)) != Unsat {
		t.Fatal("a ∧ ¬b with a→b should be unsat")
	}
	if s.Core() == nil {
		t.Fatal("unsat under assumptions must report a core")
	}
	// Unsat-under-assumptions must not poison the clause set.
	if s.SolveUnder(lit(a)) != Sat {
		t.Fatal("solver unusable after an assumption-unsat answer")
	}
	if s.SolveUnder() != Sat {
		t.Fatal("assumption-free solve after assumption calls")
	}
}

func TestSolveUnderCoreExcludesIrrelevant(t *testing.T) {
	s := New()
	s1, s2, s3 := s.NewVar(), s.NewVar(), s.NewVar()
	a := s.NewVar()
	s.AddClause(nlit(s1), lit(a))  // s1 → a
	s.AddClause(nlit(s2), nlit(a)) // s2 → ¬a

	if s.SolveUnder(lit(s3), lit(s1), lit(s2)) != Unsat {
		t.Fatal("s1 ∧ s2 should be unsat")
	}
	core := coreSet(s.Core())
	if !core[lit(s1)] || !core[lit(s2)] {
		t.Fatalf("core %v must contain s1 and s2", s.Core())
	}
	if core[lit(s3)] {
		t.Fatalf("core %v must not contain the irrelevant s3", s.Core())
	}
}

func TestSolveUnderDirectlyFalsifiedAssumption(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(nlit(a)) // level-0 unit ¬a
	if s.SolveUnder(lit(a)) != Unsat {
		t.Fatal("assuming a falsified unit should be unsat")
	}
	core := s.Core()
	if len(core) != 1 || core[0] != lit(a) {
		t.Fatalf("core = %v, want [a]", core)
	}
	if s.Solve() != Sat {
		t.Fatal("clause set itself is satisfiable")
	}
}

func TestSolveUnderContradictoryAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.NewVar()
	if s.SolveUnder(lit(a), nlit(a)) != Unsat {
		t.Fatal("a ∧ ¬a assumptions should be unsat")
	}
	core := coreSet(s.Core())
	if !core[lit(a)] || !core[nlit(a)] {
		t.Fatalf("core = %v, want both polarities of a", s.Core())
	}
}

func TestSolveUnderGloballyUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if s.AddClause(nlit(a)) {
		t.Fatal("contradiction not detected")
	}
	if s.SolveUnder(lit(a)) != Unsat {
		t.Fatal("globally unsat set must stay unsat under assumptions")
	}
	if s.Core() != nil {
		t.Fatalf("core = %v, want nil for assumption-independent unsat", s.Core())
	}
}

// TestSelectorRetraction is the incremental-SMT usage pattern: formulas
// asserted behind selector literals are switched on and off purely through
// assumptions, without touching the clause database.
func TestSelectorRetraction(t *testing.T) {
	s := New()
	s1, s2 := s.NewVar(), s.NewVar()
	x, y := s.NewVar(), s.NewVar()
	// s1 guards (x ∧ y); s2 guards (¬x ∨ ¬y).
	s.AddClause(nlit(s1), lit(x))
	s.AddClause(nlit(s1), lit(y))
	s.AddClause(nlit(s2), nlit(x), nlit(y))

	for round := 0; round < 3; round++ { // stable across repetitions
		if s.SolveUnder(lit(s1)) != Sat {
			t.Fatalf("round %d: group 1 alone should be sat", round)
		}
		if s.SolveUnder(lit(s2)) != Sat {
			t.Fatalf("round %d: group 2 alone should be sat", round)
		}
		if s.SolveUnder(lit(s1), lit(s2)) != Unsat {
			t.Fatalf("round %d: both groups should conflict", round)
		}
		core := coreSet(s.Core())
		if !core[lit(s1)] || !core[lit(s2)] {
			t.Fatalf("round %d: core %v misses a selector", round, s.Core())
		}
	}
}

// TestLearnedClauseRetention: a solver that keeps its learnt clauses
// answers a repeated hard query without re-learning from scratch.
func TestLearnedClauseRetention(t *testing.T) {
	s := New()
	sel := s.NewVar()
	n := 5 // PHP(6,5) behind a selector
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		c := make([]Lit, 0, n+1)
		c = append(c, nlit(sel))
		for h := 0; h < n; h++ {
			c = append(c, lit(vars[p][h]))
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(sel), nlit(vars[p1][h]), nlit(vars[p2][h]))
			}
		}
	}
	if s.SolveUnder(lit(sel)) != Unsat {
		t.Fatal("guarded PHP should be unsat under its selector")
	}
	firstConflicts := s.Statist.Conflicts
	if firstConflicts == 0 || s.Statist.Learned == 0 {
		t.Fatalf("hard instance solved with no conflicts/learning: %+v", s.Statist)
	}
	if s.NumLearnts() == 0 {
		t.Fatal("no learnt clauses retained")
	}
	// With the selector off the instance is trivially sat.
	if s.SolveUnder(nlit(sel)) != Sat {
		t.Fatal("retracted PHP should be sat")
	}
	// Re-asking the hard query must be much cheaper than the first time.
	if s.SolveUnder(lit(sel)) != Unsat {
		t.Fatal("repeat guarded PHP should still be unsat")
	}
	repeat := s.Statist.Conflicts - firstConflicts
	if repeat >= firstConflicts {
		t.Fatalf("repeat query spent %d conflicts, first spent %d: learnts not reused", repeat, firstConflicts)
	}
}

// TestSolveUnderDifferential cross-checks SolveUnder against re-solving
// from scratch with the assumptions added as unit clauses, on random
// 3-CNF instances.
func TestSolveUnderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVars, nClauses = 12, 50
	for trial := 0; trial < 60; trial++ {
		inc := New()
		for v := 0; v < nVars; v++ {
			inc.NewVar()
		}
		clauses := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			c := make([]Lit, 3)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			inc.AddClause(c...)
		}
		for q := 0; q < 8; q++ {
			assumps := make([]Lit, rng.Intn(4))
			for j := range assumps {
				assumps[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			got := inc.SolveUnder(assumps...)

			ref := New()
			for v := 0; v < nVars; v++ {
				ref.NewVar()
			}
			refOK := true
			for _, c := range clauses {
				refOK = ref.AddClause(c...) && refOK
			}
			for _, a := range assumps {
				refOK = ref.AddClause(a) && refOK
			}
			want := Unsat
			if refOK {
				want = ref.Solve()
			}
			if got != want {
				t.Fatalf("trial %d query %d assumps %v: incremental=%v scratch=%v",
					trial, q, assumps, got, want)
			}
			if got == Unsat {
				// Assuming only the core must still be unsat.
				if core := inc.Core(); core != nil {
					if inc.SolveUnder(core...) != Unsat {
						t.Fatalf("trial %d query %d: core %v does not reproduce unsat", trial, q, core)
					}
				}
			}
		}
	}
}

func BenchmarkSolveUnderSelectors(b *testing.B) {
	// Repeatedly toggle guarded formula groups on a shared clause
	// database: the incremental hot path of the SMT layer.
	s := New()
	const groups, width = 16, 8
	sels := make([]Lit, groups)
	for g := 0; g < groups; g++ {
		sels[g] = lit(s.NewVar())
	}
	vars := make([]int, width)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for g := 0; g < groups; g++ {
		for i := 0; i < width-1; i++ {
			if g%2 == 0 {
				s.AddClause(sels[g].Not(), lit(vars[i]), lit(vars[i+1]))
			} else {
				s.AddClause(sels[g].Not(), nlit(vars[i]), nlit(vars[i+1]))
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.SolveUnder(sels[i%groups], sels[(i+1)%groups]) == Unknown {
			b.Fatal("unexpected unknown")
		}
	}
}
