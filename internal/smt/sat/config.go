package sat

// Config selects a CDCL search strategy. The zero value means "MiniSat
// defaults": Luby restarts with base 100, VSIDS variable decay 0.95,
// clause-activity decay 0.999, and negative-first saved phases. The
// portfolio layer races solvers built from diverse Configs; any Config
// yields the same verdicts (strategies only change the order the search
// space is explored), so racing them is sound.
type Config struct {
	// Geometric switches the restart policy from Luby to a geometrically
	// growing conflict budget (RestartBase * RestartGrow^k for restart k).
	Geometric bool
	// RestartBase is the conflict budget of the first restart window.
	// 0 means 100.
	RestartBase uint64
	// RestartGrow is the geometric growth factor (Geometric only).
	// 0 means 1.5.
	RestartGrow float64
	// VarDecay is the VSIDS variable-activity decay per conflict, in
	// (0,1). 0 means 0.95. Values closer to 1 keep old branching scores
	// relevant longer; lower values chase the current conflict locality.
	VarDecay float64
	// ClaDecay is the learned-clause activity decay per conflict, in
	// (0,1). 0 means 0.999.
	ClaDecay float64
	// PhaseTrue makes fresh variables branch positive-first. MiniSat's
	// default (false) branches negative-first; an inverted-polarity
	// member in a portfolio explores the complementary half first.
	PhaseTrue bool
}

func (c Config) withDefaults() Config {
	if c.RestartBase == 0 {
		c.RestartBase = 100
	}
	if c.RestartGrow == 0 {
		c.RestartGrow = 1.5
	}
	if c.VarDecay == 0 {
		c.VarDecay = 0.95
	}
	if c.ClaDecay == 0 {
		c.ClaDecay = 0.999
	}
	return c
}

// Portfolio returns n diverse configurations for racing, n in 1..4.
// Index 0 is always the default strategy, so a portfolio's leader
// behaves exactly like a non-portfolio solver.
func Portfolio(n int) []Config {
	all := []Config{
		{},                                 // MiniSat defaults
		{Geometric: true, PhaseTrue: true}, // geometric restarts, inverted phase
		{VarDecay: 0.85, RestartBase: 50},  // aggressive decay, rapid restarts
		{Geometric: true, VarDecay: 0.99, RestartBase: 400, RestartGrow: 2}, // slow and steady
	}
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	return all[:n]
}
