package sat

import (
	"math/rand"
	"testing"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatalf("positive literal wrong: %v", l)
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() || n.Not() != l {
		t.Fatalf("negation wrong: %v", n)
	}
	if l.String() != "v5" || n.String() != "¬v5" {
		t.Fatalf("String: %q %q", l, n)
	}
}

func TestTrivial(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(lit(a)) {
		t.Fatal("unit clause rejected")
	}
	if s.Solve() != Sat {
		t.Fatal("single unit should be sat")
	}
	if !s.Model()[a] {
		t.Fatal("model should set a true")
	}
	if s.AddClause(nlit(a)) {
		t.Fatal("adding ¬a should signal unsatisfiability")
	}
	if s.Solve() != Unsat {
		t.Fatal("a ∧ ¬a should be unsat")
	}
	// Once unsat, stays unsat.
	if s.Solve() != Unsat {
		t.Fatal("solver should remain unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause should report false")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause should make solver unsat")
	}
}

func TestTautologyAndDup(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	if !s.AddClause(lit(a), nlit(a)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(lit(b), lit(b), lit(b)) {
		t.Fatal("duplicate-literal clause rejected")
	}
	if s.Solve() != Sat || !s.Model()[b] {
		t.Fatal("should be sat with b true")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes is unsatisfiable.
	for _, n := range []int{3, 4, 5} {
		s := New()
		vars := make([][]int, n+1)
		for p := 0; p <= n; p++ {
			vars[p] = make([]int, n)
			for h := 0; h < n; h++ {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			c := make([]Lit, n)
			for h := 0; h < n; h++ {
				c[h] = lit(vars[p][h])
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(nlit(vars[p1][h]), nlit(vars[p2][h]))
				}
			}
		}
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want unsat", n+1, n, got)
		}
	}
}

func TestGraphColoring(t *testing.T) {
	// C5 (odd cycle) is 3-colorable but not 2-colorable.
	solveCycle := func(n, colors int) Status {
		s := New()
		v := make([][]int, n)
		for i := range v {
			v[i] = make([]int, colors)
			for c := range v[i] {
				v[i][c] = s.NewVar()
			}
		}
		for i := range v {
			cl := make([]Lit, colors)
			for c := range v[i] {
				cl[c] = lit(v[i][c])
			}
			s.AddClause(cl...)
			for c := range v[i] {
				j := (i + 1) % n
				s.AddClause(nlit(v[i][c]), nlit(v[j][c]))
			}
		}
		return s.Solve()
	}
	if solveCycle(5, 2) != Unsat {
		t.Fatal("C5 should not be 2-colorable")
	}
	if solveCycle(5, 3) != Sat {
		t.Fatal("C5 should be 3-colorable")
	}
}

// bruteForce decides satisfiability of a CNF by enumeration.
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>l.Var()&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(model []bool, cnf [][]Lit) bool {
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			if model[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// TestRandomDifferential checks the CDCL solver against brute force on
// random 3-CNF instances around the phase-transition density.
func TestRandomDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + r.Intn(10)
		nClauses := 1 + r.Intn(5*nVars)
		cnf := make([][]Lit, nClauses)
		for i := range cnf {
			width := 1 + r.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(r.Intn(nVars), r.Intn(2) == 0)
			}
			cnf[i] = cl
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		okAdd := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				okAdd = false
			}
		}
		got := s.Solve()
		if !okAdd && got != Unsat {
			t.Fatalf("iter %d: AddClause signalled unsat but Solve=%v", iter, got)
		}
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v brute=%v cnf=%v", iter, got, want, cnf)
		}
		if got == Sat && !modelSatisfies(s.Model(), cnf) {
			t.Fatalf("iter %d: model does not satisfy formula", iter)
		}
	}
}

// TestIncremental adds clauses between Solve calls, as the SMT layer does.
func TestIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := New()
	nVars := 8
	for v := 0; v < nVars; v++ {
		s.NewVar()
	}
	var cnf [][]Lit
	for round := 0; round < 60; round++ {
		width := 1 + r.Intn(3)
		cl := make([]Lit, width)
		for j := range cl {
			cl[j] = MkLit(r.Intn(nVars), r.Intn(2) == 0)
		}
		cnf = append(cnf, cl)
		s.AddClause(cl...)
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Fatalf("round %d: solver=%v brute=%v", round, got, want)
		}
		if got == Sat && !modelSatisfies(s.Model(), cnf) {
			t.Fatalf("round %d: bad model", round)
		}
		if got == Unsat {
			return // stays unsat; nothing more to check
		}
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard instance with a tiny budget should return Unknown.
	n := 8
	s := New()
	vars := make([][]int, n+1)
	for p := 0; p <= n; p++ {
		vars[p] = make([]int, n)
		for h := 0; h < n; h++ {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		c := make([]Lit, n)
		for h := 0; h < n; h++ {
			c[h] = lit(vars[p][h])
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(nlit(vars[p1][h]), nlit(vars[p2][h]))
			}
		}
	}
	s.MaxConflicts = 10
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want unknown", got)
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(nlit(a), lit(c))
	s.AddClause(nlit(b), nlit(c))
	if s.Solve() != Sat {
		t.Fatal("expected sat")
	}
	if s.Statist.Decisions == 0 && s.Statist.Propagations == 0 {
		t.Fatal("stats not recorded")
	}
}

func BenchmarkPigeonhole7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := 7
		s := New()
		vars := make([][]int, n+1)
		for p := 0; p <= n; p++ {
			vars[p] = make([]int, n)
			for h := 0; h < n; h++ {
				vars[p][h] = s.NewVar()
			}
		}
		for p := 0; p <= n; p++ {
			c := make([]Lit, n)
			for h := 0; h < n; h++ {
				c[h] = lit(vars[p][h])
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(nlit(vars[p1][h]), nlit(vars[p2][h]))
				}
			}
		}
		if s.Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}
