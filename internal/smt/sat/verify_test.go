package sat

import "testing"

// VerifyModel is the CDCL tier's self-check: the guard layer replays
// every sat answer against the problem clauses before trusting it.
func TestVerifyModelAcceptsRealModel(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(nlit(a), lit(c))
	if s.Solve() != Sat {
		t.Fatal("satisfiable set reported unsat")
	}
	if !s.VerifyModel() {
		t.Fatal("genuine model rejected")
	}
}

func TestVerifyModelRejectsNilModel(t *testing.T) {
	s := New()
	s.NewVar()
	if s.VerifyModel() {
		t.Fatal("accepted a model before any solve")
	}
}

func TestVerifyModelRejectsCorruptedModel(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	// a∨b and a∨¬b force a true through stored (non-unit) clauses, so the
	// replay sees them; whatever b is, flipping a falsifies one of the two.
	s.AddClause(lit(a), lit(b))
	s.AddClause(lit(a), nlit(b))
	if s.Solve() != Sat {
		t.Fatal("satisfiable set reported unsat")
	}
	s.model[a] = !s.model[a] // simulate a lying tier
	if s.VerifyModel() {
		t.Fatal("accepted a model that falsifies a clause")
	}
}
