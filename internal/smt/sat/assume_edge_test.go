// Edge cases of the assumption interface: the degenerate inputs the smt
// layer can produce when selector sets collapse (empty), repeat a selector
// (duplicates), or are built from a stale variable map (unseen variables).
package sat

import "testing"

func TestSolveUnderEmptyAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a), lit(b))

	if s.SolveUnder() != Sat {
		t.Fatal("empty assumption set must behave like Solve")
	}
	if !s.VerifyModel() {
		t.Fatal("model from an assumption-free SolveUnder must replay")
	}
	if s.Core() != nil {
		t.Fatalf("core = %v, want nil after a sat answer", s.Core())
	}
	// An empty slice (as opposed to no arguments) must behave the same.
	if s.SolveUnder([]Lit{}...) != Sat {
		t.Fatal("explicit empty slice must behave like Solve")
	}
}

func TestSolveUnderDuplicateAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(nlit(a), lit(b)) // a → b

	if s.SolveUnder(lit(a), lit(a), lit(a)) != Sat {
		t.Fatal("duplicated assumption must not change satisfiability")
	}
	if !s.Model()[a] || !s.Model()[b] {
		t.Fatal("model must satisfy the (duplicated) assumption and a→b")
	}

	// Duplicates on the unsat side: the core must still explain the
	// conflict using the assumed literals.
	if s.SolveUnder(lit(a), lit(a), nlit(b)) != Unsat {
		t.Fatal("a ∧ a ∧ ¬b with a→b should be unsat")
	}
	core := coreSet(s.Core())
	if !core[lit(a)] || !core[nlit(b)] {
		t.Fatalf("core %v must contain a and ¬b", s.Core())
	}
	// The solver must remain usable, exactly as after any assumption-unsat.
	if s.SolveUnder(lit(a)) != Sat {
		t.Fatal("solver unusable after duplicated-assumption unsat")
	}
}

func TestSolveUnderDuplicateContradiction(t *testing.T) {
	s := New()
	a := s.NewVar()
	if s.SolveUnder(lit(a), nlit(a), lit(a)) != Unsat {
		t.Fatal("a ∧ ¬a ∧ a should be unsat")
	}
	core := coreSet(s.Core())
	if !core[lit(a)] || !core[nlit(a)] {
		t.Fatalf("core = %v, want both polarities of a", s.Core())
	}
}

// Assumptions over variables the solver has never seen are a caller bug
// (a stale selector map), not a satisfiability question; the contract is
// an immediate panic rather than a silent wrong verdict.
func TestSolveUnderUnseenVariablePanics(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))

	defer func() {
		if recover() == nil {
			t.Fatal("SolveUnder accepted an assumption over an unseen variable")
		}
		// The panic must fire before any search state is touched: the
		// solver stays usable for well-formed queries.
		if s.Solve() != Sat {
			t.Fatal("solver unusable after rejecting an unseen-variable assumption")
		}
	}()
	s.SolveUnder(lit(a), MkLit(a+7, false))
}
