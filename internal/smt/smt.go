// Package smt decides satisfiability of quantifier-free formulas over
// booleans and bounded integers, and produces models. It is the solver the
// repair system runs every query through: path constraints, patch
// formulas, parameter boxes, and specifications.
//
// Architecture (lazy DPLL(T)):
//
//  1. simplify the formula (canonical linear atoms, package expr),
//  2. purify: eliminate integer ite, div, and rem by fresh variables with
//     guarded defining constraints,
//  3. Tseitin-encode the boolean skeleton over theory atoms,
//  4. CDCL search (package sat) proposes a skeleton model,
//  5. the conjunction of asserted theory literals goes to the LIA
//     procedure (package lia); theory conflicts come back as blocking
//     clauses until the loop converges.
//
// Every integer variable is bounded; DefaultBounds (32-bit by default)
// applies to variables without explicit bounds, mirroring the C int
// semantics of the subject programs.
package smt

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
	"cpr/internal/smt/guard"
	"cpr/internal/smt/lia"
	"cpr/internal/smt/sat"
)

// Int32Bounds is the default domain of integer variables: 32-bit C int.
var Int32Bounds = interval.New(-2147483648, 2147483647)

// Status is the solver verdict.
type Status int8

// Verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Result carries a verdict and, when Sat, a model covering the formula's
// variables and every variable with explicit bounds.
type Result struct {
	Status Status
	Model  expr.Model
}

// Options configures a Solver.
type Options struct {
	// DefaultBounds is the domain for integer variables with no explicit
	// bounds. Zero value means Int32Bounds.
	DefaultBounds interval.Interval
	// LIA tunes the arithmetic procedure.
	LIA lia.Options
	// MaxTheoryRounds bounds skeleton/theory iterations (default 10000).
	MaxTheoryRounds int
	// MaxConflicts bounds SAT conflicts per query (0 = unbounded).
	MaxConflicts uint64
	// MaxQueryDuration bounds the wall-clock time of a single query
	// (0 = unbounded). An expired query returns Unknown with a
	// *BudgetError, never a wrong verdict.
	MaxQueryDuration time.Duration
	// Cancel, when non-nil, aborts in-flight queries once it expires
	// (deadline or explicit cancellation). The repair engine installs its
	// run-level token here so solver work stops with the run.
	Cancel *cancel.Token
	// Cache, when non-nil, memoizes decisive verdicts (and sat models)
	// across queries. A cache may be shared by any number of solvers;
	// hits return exactly what re-solving would, so sharing does not
	// change results, only speed.
	Cache *cache.Cache
	// Portfolio, when ≥ 2, races that many diverse CDCL configurations
	// (restart policy, VSIDS decay, phase polarity — see sat.Portfolio)
	// inside the incremental context, with first-to-answer cancellation
	// and winner-to-leader learned-clause sharing. Only verdict-tier
	// queries race; models always come from the deterministic scratch
	// path, so repair results do not depend on this flag. No effect
	// without Incremental.
	Portfolio int
	// Incremental enables the persistent solving context (see Context):
	// per-conjunct Tseitin encodings are cached, the CDCL clause database
	// with its learned clauses is retained across queries, per-query
	// formulas are asserted through selector assumptions, and unsat
	// answers come with assumption cores that feed the cache's subsumption
	// index. Verdicts are identical to scratch mode, and models are still
	// produced by the deterministic scratch path, so repair results do not
	// depend on this flag — only speed does. Off by default.
	Incremental bool
	// MaxContextClauses caps the incremental context's retained clause
	// database. Every incremental solve decides the variables of the whole
	// retained database, so dead encodings from a long run (per-patch
	// renamed conjuncts that will never be queried again, batch groups
	// from finished partitions) make each query slower than the last. When
	// the database ends a query above this limit the context is retired
	// and rebuilt lazily from the next query's conjuncts — a speed-only
	// policy: retirement changes which learned clauses are available, never
	// verdicts or models. 0 means the default (1000, the knee of the
	// end-to-end bench sweep — see EXPERIMENTS.md); negative disables
	// retirement.
	MaxContextClauses int
	// Paranoid forces 100% verdict validation in the guard layer: every
	// unsat answer is cross-checked by an independent scratch solve (sat
	// models are replayed on every answer regardless). Equivalent to
	// Guard.Paranoid; the CPR_PARANOID environment variable forces it
	// process-wide.
	Paranoid bool
	// Guard tunes the validation and self-healing layer (sampling rate,
	// quarantine backoff, circuit-breaker threshold). The zero value gets
	// production defaults.
	Guard guard.Config
}

func (o Options) withDefaults() Options {
	if o.DefaultBounds == (interval.Interval{}) {
		o.DefaultBounds = Int32Bounds
	}
	if o.MaxTheoryRounds == 0 {
		o.MaxTheoryRounds = 10000
	}
	if o.MaxContextClauses == 0 {
		o.MaxContextClauses = 1000
	}
	return o
}

// Stats accumulates query counts across a Solver's lifetime.
type Stats struct {
	Queries      uint64
	TheoryRounds uint64
	SatAnswers   uint64
	UnsatAnswers uint64
	// Unknowns counts queries that exhausted a budget or deadline;
	// Panics counts queries that panicked and were recovered at the Check
	// boundary. Both degrade to Unknown answers.
	Unknowns uint64
	Panics   uint64
	// CacheHits/CacheMisses count verdict-cache traffic from this solver's
	// queries (zero when Options.Cache is nil). Hits are included in
	// Queries and in Sat/UnsatAnswers.
	CacheHits   uint64
	CacheMisses uint64
	// EncodeCacheHits/EncodeCacheMisses count per-conjunct encoding reuse
	// in the incremental context: a hit is a top-level conjunct whose
	// simplification, purification, and Tseitin encoding were skipped
	// because an earlier query already prepared it. Zero in scratch mode.
	EncodeCacheHits   uint64
	EncodeCacheMisses uint64
	// ClausesLearned/ClausesDeleted count CDCL clause learning and
	// activity-driven deletion; ClausesKept is the learned-clause count
	// currently retained by the incremental context (zero in scratch mode,
	// where learned clauses die with their query).
	ClausesLearned uint64
	ClausesKept    uint64
	ClausesDeleted uint64
	// AssumptionCores counts incremental unsat answers that produced a
	// non-empty assumption core; AssumptionCoreLits sums the core sizes
	// (in conjuncts), so AssumptionCoreLits/AssumptionCores is the mean
	// core size.
	AssumptionCores    uint64
	AssumptionCoreLits uint64
	// Wall-time breakdown of solver work: SatTime is spent in CDCL
	// search (including portfolio races), LIATime in the arithmetic
	// procedure, ValidateTime in verdict validation (model replays and
	// sampled unsat cross-checks, including the trusted re-solves they
	// trigger). Aggregated race-free from atomic nanosecond counters.
	SatTime      time.Duration
	LIATime      time.Duration
	ValidateTime time.Duration
	// Portfolio counters: PortfolioRaces counts solves that escalated to
	// a configuration race (hard queries past the leader-alone conflict
	// threshold), PortfolioMirrorWins races decided by a non-leader
	// configuration, and PortfolioShared learned clauses imported from
	// race winners into the leader. All zero when Options.Portfolio < 2.
	PortfolioRaces      uint64
	PortfolioMirrorWins uint64
	PortfolioShared     uint64
	// Batched-feasibility counters (DecideBatch): BatchQueries counts
	// group queries issued to the solver (including bisection subgroups),
	// BatchItems items whose verdict came from a group answer rather than
	// an individual solve, and BatchBisections mixed-verdict groups split
	// in half. All zero when batching is off.
	BatchQueries    uint64
	BatchItems      uint64
	BatchBisections uint64
	// Self-healing health counters (package guard). Validations counts
	// verdict validations run (model replays + unsat cross-checks);
	// ValidationFailures counts verdicts they rejected — each such verdict
	// was replaced by a lower-rung solve or degraded to Unknown, never
	// returned. Quarantines counts layers taken out of service,
	// FallbackSolves queries served below their natural tier,
	// RebuildRetries quarantined contexts readmitted after backoff, and
	// BreakerTrips circuit breakers pinning a solver to scratch mode.
	Validations        uint64
	ValidationFailures uint64
	Quarantines        uint64
	FallbackSolves     uint64
	RebuildRetries     uint64
	BreakerTrips       uint64
}

// Add returns the fieldwise sum of two stats snapshots — the aggregate of
// several solvers (e.g. one per worker) is itself a Stats.
func (a Stats) Add(b Stats) Stats {
	a.Queries += b.Queries
	a.TheoryRounds += b.TheoryRounds
	a.SatAnswers += b.SatAnswers
	a.UnsatAnswers += b.UnsatAnswers
	a.Unknowns += b.Unknowns
	a.Panics += b.Panics
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.EncodeCacheHits += b.EncodeCacheHits
	a.EncodeCacheMisses += b.EncodeCacheMisses
	a.ClausesLearned += b.ClausesLearned
	a.ClausesKept += b.ClausesKept
	a.ClausesDeleted += b.ClausesDeleted
	a.AssumptionCores += b.AssumptionCores
	a.AssumptionCoreLits += b.AssumptionCoreLits
	a.SatTime += b.SatTime
	a.LIATime += b.LIATime
	a.ValidateTime += b.ValidateTime
	a.PortfolioRaces += b.PortfolioRaces
	a.PortfolioMirrorWins += b.PortfolioMirrorWins
	a.PortfolioShared += b.PortfolioShared
	a.BatchQueries += b.BatchQueries
	a.BatchItems += b.BatchItems
	a.BatchBisections += b.BatchBisections
	a.Validations += b.Validations
	a.ValidationFailures += b.ValidationFailures
	a.Quarantines += b.Quarantines
	a.FallbackSolves += b.FallbackSolves
	a.RebuildRetries += b.RebuildRetries
	a.BreakerTrips += b.BreakerTrips
	return a
}

// solverStats is the live, atomically-updated form of Stats, so Stats()
// snapshots are race-free even while another goroutine is mid-query.
type solverStats struct {
	queries      atomic.Uint64
	theoryRounds atomic.Uint64
	satAnswers   atomic.Uint64
	unsatAnswers atomic.Uint64
	unknowns     atomic.Uint64
	panics       atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64

	encodeCacheHits    atomic.Uint64
	encodeCacheMisses  atomic.Uint64
	clausesLearned     atomic.Uint64
	clausesKept        atomic.Uint64 // gauge: retained learnts, stored after each query
	clausesDeleted     atomic.Uint64
	assumptionCores    atomic.Uint64
	assumptionCoreLits atomic.Uint64

	satNanos      atomic.Int64
	liaNanos      atomic.Int64
	validateNanos atomic.Int64

	portfolioRaces      atomic.Uint64
	portfolioMirrorWins atomic.Uint64
	portfolioShared     atomic.Uint64

	batchQueries    atomic.Uint64
	batchItems      atomic.Uint64
	batchBisections atomic.Uint64
}

// timeSat/timeLIA/timeValidate fold an elapsed interval into the wall-time
// breakdown counters.
func (st *solverStats) timeSat(from time.Time)      { st.satNanos.Add(int64(time.Since(from))) }
func (st *solverStats) timeLIA(from time.Time)      { st.liaNanos.Add(int64(time.Since(from))) }
func (st *solverStats) timeValidate(from time.Time) { st.validateNanos.Add(int64(time.Since(from))) }

// Solver answers satisfiability queries. The zero value is not usable;
// construct with NewSolver. A Solver is not safe for concurrent Check
// calls, but Stats() may be called from any goroutine at any time.
type Solver struct {
	opts  Options
	stats solverStats
	// ctx is the persistent incremental state, created lazily on the
	// first query when opts.Incremental is set and discarded whenever a
	// recovered panic may have left it mid-mutation.
	ctx *Context
	// guard validates verdicts and drives the degradation ladder; see
	// package guard. Every solver has one (the overhead of validation is
	// one model replay per sat answer plus sampled unsat cross-checks).
	guard *guard.Guard
	// scratch is the trusted child solver the ladder's lower rungs run on:
	// scratch mode, no cache, no fault injection, no guard — the reference
	// implementation the untrusted tiers are checked against. Created
	// lazily on the first cross-check or fallback.
	scratch *Solver
	// trusted marks the scratch child itself: its verdicts are served
	// without lie injection or validation (it IS the validator).
	trusted bool
	// journal records the cache keys this solver stored during the current
	// epoch (see BeginEpoch); on a panic or budget abort, or when a layer
	// is quarantined, the journaled entries are invalidated — a corrupted
	// worker must not leave verdicts behind in shared state.
	journal []cache.Key
}

// maxJournal caps epoch journals; an epoch that overflows it simply stops
// recording (invalidation-on-abort is best-effort hygiene, not soundness —
// entries are validated before every store).
const maxJournal = 8192

// NewSolver returns a Solver with the given options.
func NewSolver(opts Options) *Solver {
	opts = opts.withDefaults()
	gcfg := opts.Guard
	gcfg.Paranoid = gcfg.Paranoid || opts.Paranoid
	return &Solver{opts: opts, guard: guard.New(gcfg)}
}

// Stats returns a consistent snapshot of the accumulated counters. It is
// safe to call concurrently with queries on this solver.
func (s *Solver) Stats() Stats {
	gc := s.guard.Counters()
	return Stats{
		Queries:      s.stats.queries.Load(),
		TheoryRounds: s.stats.theoryRounds.Load(),
		SatAnswers:   s.stats.satAnswers.Load(),
		UnsatAnswers: s.stats.unsatAnswers.Load(),
		Unknowns:     s.stats.unknowns.Load(),
		Panics:       s.stats.panics.Load(),
		CacheHits:    s.stats.cacheHits.Load(),
		CacheMisses:  s.stats.cacheMisses.Load(),

		EncodeCacheHits:    s.stats.encodeCacheHits.Load(),
		EncodeCacheMisses:  s.stats.encodeCacheMisses.Load(),
		ClausesLearned:     s.stats.clausesLearned.Load(),
		ClausesKept:        s.stats.clausesKept.Load(),
		ClausesDeleted:     s.stats.clausesDeleted.Load(),
		AssumptionCores:    s.stats.assumptionCores.Load(),
		AssumptionCoreLits: s.stats.assumptionCoreLits.Load(),

		SatTime:      time.Duration(s.stats.satNanos.Load()),
		LIATime:      time.Duration(s.stats.liaNanos.Load()),
		ValidateTime: time.Duration(s.stats.validateNanos.Load()),

		PortfolioRaces:      s.stats.portfolioRaces.Load(),
		PortfolioMirrorWins: s.stats.portfolioMirrorWins.Load(),
		PortfolioShared:     s.stats.portfolioShared.Load(),

		BatchQueries:    s.stats.batchQueries.Load(),
		BatchItems:      s.stats.batchItems.Load(),
		BatchBisections: s.stats.batchBisections.Load(),

		Validations:        gc.Validations,
		ValidationFailures: gc.ValidationFailures,
		Quarantines:        gc.Quarantines,
		FallbackSolves:     gc.FallbackSolves,
		RebuildRetries:     gc.RebuildRetries,
		BreakerTrips:       gc.BreakerTrips,
	}
}

// CrossCheckCursor exposes the guard's unsat cross-check sampling position
// for checkpointing; SetCrossCheckCursor restores it on resume, so the
// resumed run's validation accounting continues the killed run's sampling
// schedule instead of restarting it. Verdicts are unaffected either way —
// cross-checks only detect lies, they never change an answer.
func (s *Solver) CrossCheckCursor() uint64 { return s.guard.CrossCheckCursor() }

// SetCrossCheckCursor restores a cursor captured by CrossCheckCursor.
func (s *Solver) SetCrossCheckCursor(n uint64) { s.guard.SetCrossCheckCursor(n) }

// ErrBudget is returned when a resource limit is exceeded. Budget errors
// produced by Check are *BudgetError values wrapping this sentinel, so
// errors.Is(err, ErrBudget) keeps working while the error text carries the
// originating query's context.
var ErrBudget = errors.New("smt: resource budget exhausted")

// ErrSolverPanic wraps a panic recovered at the Check boundary: the query
// degrades to an Unknown answer instead of killing the process.
var ErrSolverPanic = errors.New("smt: solver panicked")

// BudgetError wraps ErrBudget with the originating query's context so
// exhaustion is diagnosable: which stage gave up and how much work the
// query had done when it did.
type BudgetError struct {
	// Stage is where the budget ran out: "sat-conflicts", "lia",
	// "theory-rounds", "deadline", or "fault-injection".
	Stage string
	// Query is the solver-lifetime query number (1-based).
	Query uint64
	// TheoryRounds is the number of skeleton/theory rounds completed by
	// this query.
	TheoryRounds int
	// Conflicts is the SAT conflict count this query spent.
	Conflicts uint64
	// Clauses is the clause count of the encoded skeleton; Atoms is the
	// number of distinct theory atoms. Zero when exhaustion happened
	// before encoding.
	Clauses, Atoms int
	// Detail carries the underlying cause (e.g. the lia error); may be nil.
	Detail error
}

func (e *BudgetError) Error() string {
	msg := fmt.Sprintf("%v (stage=%s query=%d rounds=%d conflicts=%d clauses=%d atoms=%d)",
		ErrBudget, e.Stage, e.Query, e.TheoryRounds, e.Conflicts, e.Clauses, e.Atoms)
	if e.Detail != nil {
		msg += ": " + e.Detail.Error()
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrBudget) hold for budget errors.
func (e *BudgetError) Unwrap() error { return ErrBudget }

const auxPrefix = "!aux"

// Check decides f. Explicit variable bounds may be supplied (nil is fine);
// unbounded integer variables get DefaultBounds. The model covers the
// formula's variables plus all variables in bounds.
//
// Check never propagates a panic and never exceeds its budgets by more
// than a polling interval: resource exhaustion (MaxConflicts, LIA budget,
// MaxTheoryRounds, MaxQueryDuration, an expired Cancel token) yields
// Unknown with a *BudgetError, and a panic anywhere below this boundary
// yields Unknown with an error wrapping ErrSolverPanic.
func (s *Solver) Check(f *expr.Term, bounds map[string]interval.Interval) (res Result, err error) {
	if f.Sort != expr.SortBool {
		return Result{}, fmt.Errorf("smt: Check: formula has sort %v, want Bool", f.Sort)
	}
	query := s.stats.queries.Add(1)
	// Registered before the recover defer (so it runs after err is set):
	// an aborted query's worker may have been corrupted mid-epoch, so its
	// epoch's cache writes are withdrawn along with the incremental context.
	defer func() {
		if err != nil && (errors.Is(err, ErrBudget) || errors.Is(err, ErrSolverPanic)) {
			s.abortEpoch()
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			// A panic may have interrupted a clause-database mutation:
			// discard the incremental context, it is rebuilt lazily.
			s.ctx = nil
			s.stats.panics.Add(1)
			s.stats.unknowns.Add(1)
			res = Result{Status: Unknown}
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
		}
	}()
	if !s.trusted {
		switch faultinject.SolverQuery() {
		case faultinject.SolverPanic:
			panic(faultinject.PanicMsg)
		case faultinject.SolverTimeout:
			s.stats.unknowns.Add(1)
			return Result{Status: Unknown}, &BudgetError{Stage: "fault-injection", Query: query}
		case faultinject.SolverFail:
			return Result{}, faultinject.ErrInjected
		}
	}
	if c := s.opts.Cache; c != nil {
		if v, ok := c.Lookup(f, bounds, s.opts.DefaultBounds); ok {
			if v.Sat && !s.validateModel(f, bounds, v.Model) {
				// Poisoned entry: quarantine it (pull the entry and any
				// subsumption core it contributed) and fall through to
				// re-solve one rung down.
				c.Invalidate(f, bounds, s.opts.DefaultBounds)
				s.guard.NoteQuarantine()
				s.guard.NoteFallback()
				s.stats.cacheMisses.Add(1)
			} else {
				s.stats.cacheHits.Add(1)
				if v.Sat {
					s.stats.satAnswers.Add(1)
					return Result{Status: Sat, Model: v.Model}, nil
				}
				s.stats.unsatAnswers.Add(1)
				return Result{Status: Unsat}, nil
			}
		} else {
			s.stats.cacheMisses.Add(1)
		}
	}
	qtok := s.opts.Cancel
	if s.opts.MaxQueryDuration > 0 {
		qtok = cancel.WithTimeout(qtok, s.opts.MaxQueryDuration)
	}
	if s.opts.Incremental {
		if !s.guard.RungAvailable() {
			// Quarantined or breaker-pinned: serve this query from the
			// scratch rung below.
			s.guard.NoteFallback()
		} else {
			// Verdict first on the persistent context. Unsat answers (and
			// their assumption cores) skip the scratch solve entirely; Sat
			// answers fall through to the scratch path for the model, so
			// models are bit-identical to scratch mode.
			st, core, derr := s.incrementalCtx().decide(f, bounds, qtok, query)
			st, core = s.applyLieDecide(st, core)
			switch st {
			case Unsat:
				ok, core2, tres := s.verifyUnsat(f, bounds, core)
				if !ok {
					// The context claimed unsat but the trusted scratch
					// solver found a model: quarantine the context and serve
					// the trusted result.
					s.quarantineCtx()
					s.guard.NoteFallback()
					return s.finish(f, bounds, tres, nil)
				}
				s.storeUnsat(f, bounds, core2)
				s.stats.unsatAnswers.Add(1)
				return Result{Status: Unsat}, nil
			case Unknown:
				if !errors.Is(derr, guard.ErrVerdictRejected) {
					return Result{Status: Unknown}, derr
				}
				// The context caught its own clause database producing an
				// invalid model: quarantine it and retry on the scratch
				// rung below.
				s.guard.NoteFailure()
				s.quarantineCtx()
				s.guard.NoteFallback()
			}
		}
	}
	res, err = s.check(f, bounds, qtok, query)
	if err != nil || res.Status == Unknown {
		return res, err
	}
	if !s.trusted {
		res, err = s.vet(f, bounds, res)
	}
	return s.finish(f, bounds, res, err)
}

// finish counts and caches a settled decisive verdict. Every verdict that
// reaches it has either been validated or comes from the trusted rung.
func (s *Solver) finish(f *expr.Term, bounds map[string]interval.Interval, res Result, err error) (Result, error) {
	switch res.Status {
	case Sat:
		s.stats.satAnswers.Add(1)
	case Unsat:
		s.stats.unsatAnswers.Add(1)
	}
	if err == nil && s.opts.Cache != nil {
		// Only decisive verdicts are cacheable: Unknown reflects a budget,
		// not the query.
		switch res.Status {
		case Sat:
			s.storeValue(f, bounds, cache.Value{Sat: true, Model: res.Model})
		case Unsat:
			s.storeValue(f, bounds, cache.Value{Sat: false})
		}
	}
	return res, err
}

// vet applies adversarial lie injection (test hook) and then the guard's
// verdict validation to a freshly produced scratch verdict, degrading down
// the ladder until an answer validates: scratch → cache-bypass trusted
// scratch → Unknown. The invariant: a verdict that fails validation is
// never returned.
func (s *Solver) vet(f *expr.Term, bounds map[string]interval.Interval, res Result) (Result, error) {
	res = s.applyLieResult(res)
	switch res.Status {
	case Sat:
		if s.validateModel(f, bounds, res.Model) {
			return res, nil
		}
		// Bottom rung: cache-bypass solve on the trusted scratch solver.
		s.guard.NoteFallback()
		tres, terr := s.trustedScratch().Check(f, bounds)
		if terr != nil || tres.Status == Unknown {
			s.stats.unknowns.Add(1)
			return Result{Status: Unknown}, fmt.Errorf("%w (trusted re-solve: %v)", guard.ErrVerdictRejected, terr)
		}
		if tres.Status == Sat && !s.validateModel(f, bounds, tres.Model) {
			// Even the reference solver's model fails replay: a genuine
			// solver bug. Nothing left to fall back to — degrade to Unknown
			// rather than expose a wrong answer.
			s.stats.unknowns.Add(1)
			return Result{Status: Unknown}, guard.ErrVerdictRejected
		}
		return tres, nil
	case Unsat:
		ok, _, tres := s.verifyUnsat(f, bounds, nil)
		if !ok {
			s.guard.NoteFallback()
			return tres, nil
		}
	}
	return res, nil
}

// validateModel times a guard model replay into the validation wall-time
// counter.
func (s *Solver) validateModel(f *expr.Term, bounds map[string]interval.Interval, m expr.Model) bool {
	start := time.Now()
	ok := s.guard.ValidateModel(f, bounds, s.opts.DefaultBounds, m)
	s.stats.timeValidate(start)
	return ok
}

// verifyUnsat cross-checks a sampled unsat verdict (and its assumption
// core, if any) against the trusted scratch solver. It returns ok=false
// with the trusted result when the verdict itself diverged; a lying core
// under a genuine unsat verdict is dropped (nil core) and the incremental
// rung quarantined, since only the context produces cores.
func (s *Solver) verifyUnsat(f *expr.Term, bounds map[string]interval.Interval, core []*expr.Term) (bool, []*expr.Term, Result) {
	if !s.guard.ShouldCrossCheck() {
		return true, core, Result{}
	}
	start := time.Now()
	defer s.stats.timeValidate(start)
	s.guard.NoteCrossCheck()
	tres, terr := s.trustedScratch().Check(f, bounds)
	if terr != nil || tres.Status == Unknown {
		return true, core, Result{} // inconclusive: budgets ran out re-solving
	}
	if tres.Status == Sat {
		s.guard.NoteFailure()
		return false, nil, tres
	}
	// Unsat confirmed. A narrowing core is about to be generalized into the
	// cache's subsumption index, so it gets its own cross-check: the core
	// formula must itself be unsat.
	if len(core) > 0 && f.Op == expr.OpAnd && len(core) < len(f.Args) {
		coreF := expr.And(core...)
		if coreF != f && !coreF.IsTrue() {
			s.guard.NoteCrossCheck()
			if cres, cerr := s.trustedScratch().Check(coreF, bounds); cerr == nil && cres.Status == Sat {
				// The verdict stands but the core is a lie; drop it and
				// quarantine the context that produced it.
				s.guard.NoteFailure()
				s.quarantineCtx()
				core = nil
			}
		}
	}
	return true, core, Result{}
}

// quarantineCtx discards the incremental context after a validation
// failure attributed to it, starts the guard's backoff/breaker machinery,
// and withdraws the epoch's cache writes (the lying context may have
// poisoned them before it was caught).
func (s *Solver) quarantineCtx() {
	s.ctx = nil
	s.guard.QuarantineRung()
	s.abortEpoch()
}

// trustedScratch returns the child solver the ladder's trusted rungs run
// on, creating it on first use. It shares budgets and the cancel token but
// has no cache, no incremental context, no fault injection, and no guard
// of its own.
func (s *Solver) trustedScratch() *Solver {
	if s.scratch == nil {
		o := s.opts
		o.Incremental = false
		o.Portfolio = 0
		o.Cache = nil
		s.scratch = NewSolver(o)
		s.scratch.trusted = true
	}
	return s.scratch
}

// applyLieDecide is the adversarial-fault hook for verdict-only answers
// from the incremental context (see faultinject.SolverLie). No-op outside
// tests.
func (s *Solver) applyLieDecide(st Status, core []*expr.Term) (Status, []*expr.Term) {
	if st == Unknown {
		return st, core
	}
	switch faultinject.SolverLie() {
	case faultinject.SolverSpuriousUnsat:
		if st == Sat {
			return Unsat, nil
		}
	case faultinject.SolverTruncateCore:
		if st == Unsat && len(core) > 1 {
			return st, core[:1]
		}
	}
	return st, core
}

// applyLieResult is the adversarial-fault hook for scratch-path results
// (see faultinject.SolverLie). No-op outside tests.
func (s *Solver) applyLieResult(res Result) Result {
	if res.Status == Unknown {
		return res
	}
	switch faultinject.SolverLie() {
	case faultinject.SolverFlipModel:
		if res.Status == Sat && len(res.Model) > 0 {
			names := make([]string, 0, len(res.Model))
			for name := range res.Model {
				names = append(names, name)
			}
			sort.Strings(names)
			res.Model[names[0]] ^= 1 << 40
		}
	case faultinject.SolverSpuriousUnsat:
		if res.Status == Sat {
			return Result{Status: Unsat}
		}
	}
	return res
}

// BeginEpoch marks an iteration boundary for cache-write journaling: the
// repair engine calls it before each unit of work so that an abort (panic
// or budget exhaustion) can withdraw exactly the entries that unit wrote.
func (s *Solver) BeginEpoch() {
	s.journal = s.journal[:0]
}

// abortEpoch invalidates every cache entry stored since BeginEpoch.
func (s *Solver) abortEpoch() {
	if c := s.opts.Cache; c != nil {
		for _, k := range s.journal {
			c.InvalidateKey(k)
		}
	}
	s.journal = s.journal[:0]
}

// storeValue stores a decisive verdict and journals the write.
func (s *Solver) storeValue(f *expr.Term, bounds map[string]interval.Interval, v cache.Value) {
	c := s.opts.Cache
	if c == nil {
		return
	}
	c.Store(f, bounds, s.opts.DefaultBounds, v)
	if len(s.journal) < maxJournal {
		s.journal = append(s.journal, cache.KeyOf(f, bounds, s.opts.DefaultBounds))
	}
}

// incrementalCtx returns the persistent context, creating it on first use.
// A context whose clause database outgrew Options.MaxContextClauses is
// retired first: the accumulated encodings are mostly dead (finished
// patches, spent batch groups), and every solve pays for all of them.
func (s *Solver) incrementalCtx() *Context {
	if s.ctx != nil && s.opts.MaxContextClauses > 0 &&
		s.ctx.enc.sat.NumClauses() > s.opts.MaxContextClauses {
		s.ctx = nil
	}
	if s.ctx == nil {
		s.ctx = newContext(s.opts, &s.stats)
	}
	return s.ctx
}

// storeUnsat records an incremental unsat verdict in the cache, plus the
// assumption core as its own unsat entry when it genuinely narrows the
// query — that is what feeds the subsumption index with small cores.
func (s *Solver) storeUnsat(f *expr.Term, bounds map[string]interval.Interval, core []*expr.Term) {
	if s.opts.Cache == nil {
		return
	}
	s.storeValue(f, bounds, cache.Value{Sat: false})
	if len(core) == 0 || f.Op != expr.OpAnd || len(core) >= len(f.Args) {
		return
	}
	coreF := expr.And(core...)
	if coreF != f && !coreF.IsTrue() {
		s.storeValue(coreF, bounds, cache.Value{Sat: false})
	}
}

func (s *Solver) check(f *expr.Term, bounds map[string]interval.Interval, qtok *cancel.Token, query uint64) (Result, error) {
	f = expr.Simplify(f)

	// Purify div/rem/ite, then re-simplify so new atoms are canonical.
	pur := &purifier{}
	g := pur.purify(f)
	if len(pur.defs) > 0 {
		g = expr.And(append([]*expr.Term{g}, pur.defs...)...)
	}
	g = expr.Simplify(g)

	switch {
	case g.IsTrue():
		m := expr.Model{}
		fillModel(m, nil, bounds, s.opts.DefaultBounds)
		return Result{Status: Sat, Model: m}, nil
	case g.IsFalse():
		return Result{Status: Unsat}, nil
	}

	enc := newEncoder()
	defer func() { // scratch solves learn too; only retention is incremental-only
		st := enc.sat.Snapshot()
		s.stats.clausesLearned.Add(st.Learned)
		s.stats.clausesDeleted.Add(st.Deleted)
	}()
	root := enc.encode(g)
	var stop func() bool
	if qtok != nil {
		stop = qtok.Expired
	}
	enc.sat.SetLimits(s.opts.MaxConflicts, stop)
	if !enc.sat.AddClause(root) {
		return Result{Status: Unsat}, nil
	}
	conflictsAtStart := enc.sat.Snapshot().Conflicts
	budgetErr := func(stage string, round int, detail error) error {
		s.stats.unknowns.Add(1)
		return &BudgetError{
			Stage:        stage,
			Query:        query,
			TheoryRounds: round,
			Conflicts:    enc.sat.Snapshot().Conflicts - conflictsAtStart,
			Clauses:      enc.sat.NumClauses(),
			Atoms:        len(enc.atomVar),
			Detail:       detail,
		}
	}
	lopts := s.opts.LIA
	if qtok != nil {
		lopts.Stop = qtok.Expired
	}

	// Assemble bounds for all integer variables of the purified formula.
	allBounds := make(map[string]interval.Interval)
	for _, v := range expr.Vars(g) {
		if v.Sort == expr.SortInt {
			allBounds[v.Name] = s.opts.DefaultBounds
		}
	}
	for name, iv := range bounds {
		allBounds[name] = iv
	}

	for round := 0; round < s.opts.MaxTheoryRounds; round++ {
		if qtok.Expired() {
			return Result{Status: Unknown}, budgetErr("deadline", round, qtok.Err())
		}
		s.stats.theoryRounds.Add(1)
		satStart := time.Now()
		satStatus := enc.sat.Solve()
		s.stats.timeSat(satStart)
		switch satStatus {
		case sat.Unsat:
			return Result{Status: Unsat}, nil
		case sat.Unknown:
			stage := "sat-conflicts"
			if qtok.Expired() {
				stage = "deadline"
			}
			return Result{Status: Unknown}, budgetErr(stage, round, nil)
		}
		if !enc.sat.VerifyModel() {
			// The SAT tier's model does not satisfy its own clause set: a
			// CDCL bug. Degrade to Unknown; the caller's ladder decides
			// whether a lower rung can still answer.
			s.guard.NoteFailure()
			s.stats.unknowns.Add(1)
			return Result{Status: Unknown}, fmt.Errorf("%w (sat tier, query %d round %d)", guard.ErrVerdictRejected, query, round)
		}
		model := enc.sat.Model()

		// Assert only a support set of theory literals: a subset that by
		// itself forces the formula true under the skeleton model (a
		// cheap prime-implicant extraction). Smaller assertion sets mean
		// cheaper LIA calls and far more general blocking clauses.
		support := enc.support(g, model)
		prob := lia.Problem{Bounds: allBounds}
		var asserted []sat.Lit
		for _, sl := range support {
			c, err := atomToConstraint(sl.atom, sl.positive)
			if err != nil {
				return Result{}, err
			}
			prob.Cons = append(prob.Cons, c)
			asserted = append(asserted, sat.MkLit(enc.atomVar[sl.atom], !sl.positive))
		}
		liaStart := time.Now()
		res, err := lia.Solve(prob, lopts)
		s.stats.timeLIA(liaStart)
		if err != nil {
			if errors.Is(err, lia.ErrBudget) {
				stage := "lia"
				if qtok.Expired() {
					stage = "deadline"
				}
				return Result{Status: Unknown}, budgetErr(stage, round, err)
			}
			return Result{}, err
		}
		if res.Status == lia.Sat {
			if s.guard.Config().Paranoid && !lia.Verify(prob, res.Model) {
				// The LIA tier's assignment violates its own constraint
				// system (paranoid-mode defense in depth).
				s.guard.NoteFailure()
				s.stats.unknowns.Add(1)
				return Result{Status: Unknown}, fmt.Errorf("%w (lia tier, query %d round %d)", guard.ErrVerdictRejected, query, round)
			}
			m := expr.Model{}
			for name, v := range res.Model {
				if !strings.HasPrefix(name, auxPrefix) {
					m[name] = v
				}
			}
			for name, v := range enc.boolVar {
				if model[v] {
					m[name] = 1
				} else {
					m[name] = 0
				}
			}
			fillModel(m, g, bounds, s.opts.DefaultBounds)
			return Result{Status: Sat, Model: m}, nil
		}
		// Theory conflict: block this support set.
		block := make([]sat.Lit, len(asserted))
		for i, l := range asserted {
			block[i] = l.Not()
		}
		if !enc.sat.AddClause(block...) {
			return Result{Status: Unsat}, nil
		}
	}
	return Result{Status: Unknown}, budgetErr("theory-rounds", s.opts.MaxTheoryRounds, nil)
}

// fillModel ensures every bounded variable has a value.
func fillModel(m expr.Model, g *expr.Term, bounds map[string]interval.Interval, def interval.Interval) {
	for name, iv := range bounds {
		if _, ok := m[name]; !ok {
			m[name] = clamp(0, iv)
		}
	}
	if g != nil {
		for _, v := range expr.Vars(g) {
			if _, ok := m[v.Name]; !ok && !strings.HasPrefix(v.Name, auxPrefix) {
				m[v.Name] = clamp(0, def)
			}
		}
	}
}

func clamp(pref int64, iv interval.Interval) int64 {
	if pref < iv.Lo {
		return iv.Lo
	}
	if pref > iv.Hi {
		return iv.Hi
	}
	return pref
}

// Decide returns the verdict for f without constructing a model. In
// scratch mode it is Check minus the model; in incremental mode it runs
// entirely on the persistent context, which is the fast path the repair
// loop's feasibility checks (IsSat, Valid) ride on.
func (s *Solver) Decide(f *expr.Term, bounds map[string]interval.Interval) (Status, error) {
	st, _, err := s.DecideCore(f, bounds)
	return st, err
}

// DecideCore is Decide plus the assumption core: on Unsat it also returns
// the subset of f's top-level conjuncts the incremental context found
// sufficient for the conflict (already cross-check-vetted exactly like
// the cores feeding the cache's subsumption index). A nil core carries no
// information: scratch mode, cache hits, and non-narrowing cores all
// return nil. The batcher (DecideBatch) uses cores to rule out many batch
// items per solve.
func (s *Solver) DecideCore(f *expr.Term, bounds map[string]interval.Interval) (st Status, coreOut []*expr.Term, err error) {
	if !s.opts.Incremental {
		res, err := s.Check(f, bounds)
		return res.Status, nil, err
	}
	if f.Sort != expr.SortBool {
		return Unknown, nil, fmt.Errorf("smt: Decide: formula has sort %v, want Bool", f.Sort)
	}
	query := s.stats.queries.Add(1)
	defer func() {
		if err != nil && (errors.Is(err, ErrBudget) || errors.Is(err, ErrSolverPanic)) {
			s.abortEpoch() // see Check: abort withdraws the epoch's writes
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			s.ctx = nil // may be mid-mutation: discard, rebuilt lazily
			s.stats.panics.Add(1)
			s.stats.unknowns.Add(1)
			st, coreOut = Unknown, nil
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
		}
	}()
	switch faultinject.SolverQuery() {
	case faultinject.SolverPanic:
		panic(faultinject.PanicMsg)
	case faultinject.SolverTimeout:
		s.stats.unknowns.Add(1)
		return Unknown, nil, &BudgetError{Stage: "fault-injection", Query: query}
	case faultinject.SolverFail:
		return Unknown, nil, faultinject.ErrInjected
	}
	if c := s.opts.Cache; c != nil {
		if isSat, ok := c.LookupVerdict(f, bounds, s.opts.DefaultBounds); ok {
			s.stats.cacheHits.Add(1)
			if isSat {
				s.stats.satAnswers.Add(1)
				return Sat, nil, nil
			}
			s.stats.unsatAnswers.Add(1)
			return Unsat, nil, nil
		}
		s.stats.cacheMisses.Add(1)
	}
	qtok := s.opts.Cancel
	if s.opts.MaxQueryDuration > 0 {
		qtok = cancel.WithTimeout(qtok, s.opts.MaxQueryDuration)
	}
	if !s.guard.RungAvailable() {
		// Quarantined or breaker-pinned: the scratch rung serves the query
		// (with full vetting and cache participation — a breaker-pinned
		// worker keeps cache benefits, it only loses the retained context).
		s.guard.NoteFallback()
		st, err = s.scratchDecide(f, bounds, qtok, query)
		return st, nil, err
	}
	st, core, err := s.incrementalCtx().decide(f, bounds, qtok, query)
	st, core = s.applyLieDecide(st, core)
	switch st {
	case Unknown:
		if errors.Is(err, guard.ErrVerdictRejected) {
			// See Check: the context rejected its own model — quarantine
			// and retry the query on the scratch rung.
			s.guard.NoteFailure()
			s.quarantineCtx()
			s.guard.NoteFallback()
			st, err = s.scratchDecide(f, bounds, qtok, query)
			return st, nil, err
		}
	case Sat:
		s.stats.satAnswers.Add(1)
		if s.opts.Cache != nil {
			// Verdict-only entry: answers future Decide calls; a later
			// Check upgrades it with the model.
			s.storeValue(f, bounds, cache.Value{Sat: true})
		}
	case Unsat:
		ok, core2, tres := s.verifyUnsat(f, bounds, core)
		if !ok {
			// Spurious unsat from the context: quarantine it and serve the
			// trusted scratch verdict (with its model, which upgrades the
			// cache entry for free).
			s.quarantineCtx()
			s.guard.NoteFallback()
			res, ferr := s.finish(f, bounds, tres, nil)
			return res.Status, nil, ferr
		}
		s.stats.unsatAnswers.Add(1)
		s.storeUnsat(f, bounds, core2)
		return st, core2, err
	}
	return st, nil, err
}

// scratchDecide serves a Decide query from the scratch rung, with full
// vetting and cache participation.
func (s *Solver) scratchDecide(f *expr.Term, bounds map[string]interval.Interval, qtok *cancel.Token, query uint64) (Status, error) {
	res, err := s.check(f, bounds, qtok, query)
	if err != nil || res.Status == Unknown {
		return res.Status, err
	}
	res, err = s.vet(f, bounds, res)
	res, err = s.finish(f, bounds, res, err)
	return res.Status, err
}

// IsSat reports whether f is satisfiable.
func (s *Solver) IsSat(f *expr.Term, bounds map[string]interval.Interval) (bool, error) {
	st, err := s.Decide(f, bounds)
	if err != nil {
		return false, err
	}
	return st == Sat, nil
}

// GetModel returns a model of f, or ok=false when unsatisfiable.
func (s *Solver) GetModel(f *expr.Term, bounds map[string]interval.Interval) (expr.Model, bool, error) {
	res, err := s.Check(f, bounds)
	if err != nil {
		return nil, false, err
	}
	if res.Status != Sat {
		return nil, false, nil
	}
	return res.Model, true, nil
}

// Valid reports whether f holds for every assignment (within bounds):
// it checks that ¬f is unsatisfiable.
func (s *Solver) Valid(f *expr.Term, bounds map[string]interval.Interval) (bool, error) {
	st, err := s.Decide(expr.Not(f), bounds)
	if err != nil {
		return false, err
	}
	return st == Unsat, nil
}

// atomToConstraint translates a canonical atom (≤, =, ≠ between a linear
// combination and a constant) into a lia constraint, honoring polarity.
func atomToConstraint(atom *expr.Term, positive bool) (lia.Constraint, error) {
	op := atom.Op
	lhs, rhs := atom.Args[0], atom.Args[1]
	diff := expr.Linearize(expr.Sub(lhs, rhs))
	k := -diff.Const
	var terms []lia.Term
	for _, a := range diff.SortedAtoms() {
		vars, err := monoVars(a)
		if err != nil {
			return lia.Constraint{}, err
		}
		terms = append(terms, lia.Term{Coef: diff.Coeff[a], Vars: vars})
	}
	// Normalize op to Le/Eq/Ne under polarity.
	switch op {
	case expr.OpLt:
		op, k = expr.OpLe, k-1
	case expr.OpGt: // Σ > k ⇔ ¬(Σ ≤ k)
		op, positive = expr.OpLe, !positive
	case expr.OpGe: // Σ ≥ k ⇔ ¬(Σ ≤ k−1)
		op, k, positive = expr.OpLe, k-1, !positive
	}
	switch op {
	case expr.OpLe:
		if positive {
			return lia.Constraint{Terms: terms, K: k, Rel: lia.RelLe}, nil
		}
		// ¬(Σ ≤ k) ⇔ −Σ ≤ −k−1
		neg := make([]lia.Term, len(terms))
		for i, t := range terms {
			neg[i] = lia.Term{Coef: -t.Coef, Vars: t.Vars}
		}
		return lia.Constraint{Terms: neg, K: -k - 1, Rel: lia.RelLe}, nil
	case expr.OpEq:
		rel := lia.RelEq
		if !positive {
			rel = lia.RelNe
		}
		return lia.Constraint{Terms: terms, K: k, Rel: rel}, nil
	case expr.OpNe:
		rel := lia.RelNe
		if !positive {
			rel = lia.RelEq
		}
		return lia.Constraint{Terms: terms, K: k, Rel: rel}, nil
	}
	return lia.Constraint{}, fmt.Errorf("smt: unsupported atom operator %v", atom.Op)
}

// monoVars decomposes a multiplicative atom into its variable multiset.
func monoVars(t *expr.Term) ([]string, error) {
	switch t.Op {
	case expr.OpVar:
		return []string{t.Name}, nil
	case expr.OpMul:
		l, err := monoVars(t.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := monoVars(t.Args[1])
		if err != nil {
			return nil, err
		}
		vs := append(l, r...)
		insertionSort(vs)
		return vs, nil
	case expr.OpNeg:
		return nil, fmt.Errorf("smt: unexpected negation inside monomial %v", t)
	default:
		return nil, fmt.Errorf("smt: term %v is not linearizable (op %v)", t, t.Op)
	}
}

func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
