// Package smt decides satisfiability of quantifier-free formulas over
// booleans and bounded integers, and produces models. It is the solver the
// repair system runs every query through: path constraints, patch
// formulas, parameter boxes, and specifications.
//
// Architecture (lazy DPLL(T)):
//
//  1. simplify the formula (canonical linear atoms, package expr),
//  2. purify: eliminate integer ite, div, and rem by fresh variables with
//     guarded defining constraints,
//  3. Tseitin-encode the boolean skeleton over theory atoms,
//  4. CDCL search (package sat) proposes a skeleton model,
//  5. the conjunction of asserted theory literals goes to the LIA
//     procedure (package lia); theory conflicts come back as blocking
//     clauses until the loop converges.
//
// Every integer variable is bounded; DefaultBounds (32-bit by default)
// applies to variables without explicit bounds, mirroring the C int
// semantics of the subject programs.
package smt

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"cpr/internal/cancel"
	"cpr/internal/expr"
	"cpr/internal/faultinject"
	"cpr/internal/interval"
	"cpr/internal/smt/cache"
	"cpr/internal/smt/lia"
	"cpr/internal/smt/sat"
)

// Int32Bounds is the default domain of integer variables: 32-bit C int.
var Int32Bounds = interval.New(-2147483648, 2147483647)

// Status is the solver verdict.
type Status int8

// Verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Result carries a verdict and, when Sat, a model covering the formula's
// variables and every variable with explicit bounds.
type Result struct {
	Status Status
	Model  expr.Model
}

// Options configures a Solver.
type Options struct {
	// DefaultBounds is the domain for integer variables with no explicit
	// bounds. Zero value means Int32Bounds.
	DefaultBounds interval.Interval
	// LIA tunes the arithmetic procedure.
	LIA lia.Options
	// MaxTheoryRounds bounds skeleton/theory iterations (default 10000).
	MaxTheoryRounds int
	// MaxConflicts bounds SAT conflicts per query (0 = unbounded).
	MaxConflicts uint64
	// MaxQueryDuration bounds the wall-clock time of a single query
	// (0 = unbounded). An expired query returns Unknown with a
	// *BudgetError, never a wrong verdict.
	MaxQueryDuration time.Duration
	// Cancel, when non-nil, aborts in-flight queries once it expires
	// (deadline or explicit cancellation). The repair engine installs its
	// run-level token here so solver work stops with the run.
	Cancel *cancel.Token
	// Cache, when non-nil, memoizes decisive verdicts (and sat models)
	// across queries. A cache may be shared by any number of solvers;
	// hits return exactly what re-solving would, so sharing does not
	// change results, only speed.
	Cache *cache.Cache
	// Incremental enables the persistent solving context (see Context):
	// per-conjunct Tseitin encodings are cached, the CDCL clause database
	// with its learned clauses is retained across queries, per-query
	// formulas are asserted through selector assumptions, and unsat
	// answers come with assumption cores that feed the cache's subsumption
	// index. Verdicts are identical to scratch mode, and models are still
	// produced by the deterministic scratch path, so repair results do not
	// depend on this flag — only speed does. Off by default.
	Incremental bool
}

func (o Options) withDefaults() Options {
	if o.DefaultBounds == (interval.Interval{}) {
		o.DefaultBounds = Int32Bounds
	}
	if o.MaxTheoryRounds == 0 {
		o.MaxTheoryRounds = 10000
	}
	return o
}

// Stats accumulates query counts across a Solver's lifetime.
type Stats struct {
	Queries      uint64
	TheoryRounds uint64
	SatAnswers   uint64
	UnsatAnswers uint64
	// Unknowns counts queries that exhausted a budget or deadline;
	// Panics counts queries that panicked and were recovered at the Check
	// boundary. Both degrade to Unknown answers.
	Unknowns uint64
	Panics   uint64
	// CacheHits/CacheMisses count verdict-cache traffic from this solver's
	// queries (zero when Options.Cache is nil). Hits are included in
	// Queries and in Sat/UnsatAnswers.
	CacheHits   uint64
	CacheMisses uint64
	// EncodeCacheHits/EncodeCacheMisses count per-conjunct encoding reuse
	// in the incremental context: a hit is a top-level conjunct whose
	// simplification, purification, and Tseitin encoding were skipped
	// because an earlier query already prepared it. Zero in scratch mode.
	EncodeCacheHits   uint64
	EncodeCacheMisses uint64
	// ClausesLearned/ClausesDeleted count CDCL clause learning and
	// activity-driven deletion; ClausesKept is the learned-clause count
	// currently retained by the incremental context (zero in scratch mode,
	// where learned clauses die with their query).
	ClausesLearned uint64
	ClausesKept    uint64
	ClausesDeleted uint64
	// AssumptionCores counts incremental unsat answers that produced a
	// non-empty assumption core; AssumptionCoreLits sums the core sizes
	// (in conjuncts), so AssumptionCoreLits/AssumptionCores is the mean
	// core size.
	AssumptionCores    uint64
	AssumptionCoreLits uint64
}

// Add returns the fieldwise sum of two stats snapshots — the aggregate of
// several solvers (e.g. one per worker) is itself a Stats.
func (a Stats) Add(b Stats) Stats {
	a.Queries += b.Queries
	a.TheoryRounds += b.TheoryRounds
	a.SatAnswers += b.SatAnswers
	a.UnsatAnswers += b.UnsatAnswers
	a.Unknowns += b.Unknowns
	a.Panics += b.Panics
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.EncodeCacheHits += b.EncodeCacheHits
	a.EncodeCacheMisses += b.EncodeCacheMisses
	a.ClausesLearned += b.ClausesLearned
	a.ClausesKept += b.ClausesKept
	a.ClausesDeleted += b.ClausesDeleted
	a.AssumptionCores += b.AssumptionCores
	a.AssumptionCoreLits += b.AssumptionCoreLits
	return a
}

// solverStats is the live, atomically-updated form of Stats, so Stats()
// snapshots are race-free even while another goroutine is mid-query.
type solverStats struct {
	queries      atomic.Uint64
	theoryRounds atomic.Uint64
	satAnswers   atomic.Uint64
	unsatAnswers atomic.Uint64
	unknowns     atomic.Uint64
	panics       atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64

	encodeCacheHits    atomic.Uint64
	encodeCacheMisses  atomic.Uint64
	clausesLearned     atomic.Uint64
	clausesKept        atomic.Uint64 // gauge: retained learnts, stored after each query
	clausesDeleted     atomic.Uint64
	assumptionCores    atomic.Uint64
	assumptionCoreLits atomic.Uint64
}

// Solver answers satisfiability queries. The zero value is not usable;
// construct with NewSolver. A Solver is not safe for concurrent Check
// calls, but Stats() may be called from any goroutine at any time.
type Solver struct {
	opts  Options
	stats solverStats
	// ctx is the persistent incremental state, created lazily on the
	// first query when opts.Incremental is set and discarded whenever a
	// recovered panic may have left it mid-mutation.
	ctx *Context
}

// NewSolver returns a Solver with the given options.
func NewSolver(opts Options) *Solver {
	return &Solver{opts: opts.withDefaults()}
}

// Stats returns a consistent snapshot of the accumulated counters. It is
// safe to call concurrently with queries on this solver.
func (s *Solver) Stats() Stats {
	return Stats{
		Queries:      s.stats.queries.Load(),
		TheoryRounds: s.stats.theoryRounds.Load(),
		SatAnswers:   s.stats.satAnswers.Load(),
		UnsatAnswers: s.stats.unsatAnswers.Load(),
		Unknowns:     s.stats.unknowns.Load(),
		Panics:       s.stats.panics.Load(),
		CacheHits:    s.stats.cacheHits.Load(),
		CacheMisses:  s.stats.cacheMisses.Load(),

		EncodeCacheHits:    s.stats.encodeCacheHits.Load(),
		EncodeCacheMisses:  s.stats.encodeCacheMisses.Load(),
		ClausesLearned:     s.stats.clausesLearned.Load(),
		ClausesKept:        s.stats.clausesKept.Load(),
		ClausesDeleted:     s.stats.clausesDeleted.Load(),
		AssumptionCores:    s.stats.assumptionCores.Load(),
		AssumptionCoreLits: s.stats.assumptionCoreLits.Load(),
	}
}

// ErrBudget is returned when a resource limit is exceeded. Budget errors
// produced by Check are *BudgetError values wrapping this sentinel, so
// errors.Is(err, ErrBudget) keeps working while the error text carries the
// originating query's context.
var ErrBudget = errors.New("smt: resource budget exhausted")

// ErrSolverPanic wraps a panic recovered at the Check boundary: the query
// degrades to an Unknown answer instead of killing the process.
var ErrSolverPanic = errors.New("smt: solver panicked")

// BudgetError wraps ErrBudget with the originating query's context so
// exhaustion is diagnosable: which stage gave up and how much work the
// query had done when it did.
type BudgetError struct {
	// Stage is where the budget ran out: "sat-conflicts", "lia",
	// "theory-rounds", "deadline", or "fault-injection".
	Stage string
	// Query is the solver-lifetime query number (1-based).
	Query uint64
	// TheoryRounds is the number of skeleton/theory rounds completed by
	// this query.
	TheoryRounds int
	// Conflicts is the SAT conflict count this query spent.
	Conflicts uint64
	// Clauses is the clause count of the encoded skeleton; Atoms is the
	// number of distinct theory atoms. Zero when exhaustion happened
	// before encoding.
	Clauses, Atoms int
	// Detail carries the underlying cause (e.g. the lia error); may be nil.
	Detail error
}

func (e *BudgetError) Error() string {
	msg := fmt.Sprintf("%v (stage=%s query=%d rounds=%d conflicts=%d clauses=%d atoms=%d)",
		ErrBudget, e.Stage, e.Query, e.TheoryRounds, e.Conflicts, e.Clauses, e.Atoms)
	if e.Detail != nil {
		msg += ": " + e.Detail.Error()
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrBudget) hold for budget errors.
func (e *BudgetError) Unwrap() error { return ErrBudget }

const auxPrefix = "!aux"

// Check decides f. Explicit variable bounds may be supplied (nil is fine);
// unbounded integer variables get DefaultBounds. The model covers the
// formula's variables plus all variables in bounds.
//
// Check never propagates a panic and never exceeds its budgets by more
// than a polling interval: resource exhaustion (MaxConflicts, LIA budget,
// MaxTheoryRounds, MaxQueryDuration, an expired Cancel token) yields
// Unknown with a *BudgetError, and a panic anywhere below this boundary
// yields Unknown with an error wrapping ErrSolverPanic.
func (s *Solver) Check(f *expr.Term, bounds map[string]interval.Interval) (res Result, err error) {
	if f.Sort != expr.SortBool {
		return Result{}, fmt.Errorf("smt: Check: formula has sort %v, want Bool", f.Sort)
	}
	query := s.stats.queries.Add(1)
	defer func() {
		if r := recover(); r != nil {
			// A panic may have interrupted a clause-database mutation:
			// discard the incremental context, it is rebuilt lazily.
			s.ctx = nil
			s.stats.panics.Add(1)
			s.stats.unknowns.Add(1)
			res = Result{Status: Unknown}
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
		}
	}()
	switch faultinject.SolverQuery() {
	case faultinject.SolverPanic:
		panic(faultinject.PanicMsg)
	case faultinject.SolverTimeout:
		s.stats.unknowns.Add(1)
		return Result{Status: Unknown}, &BudgetError{Stage: "fault-injection", Query: query}
	case faultinject.SolverFail:
		return Result{}, faultinject.ErrInjected
	}
	if c := s.opts.Cache; c != nil {
		if v, ok := c.Lookup(f, bounds, s.opts.DefaultBounds); ok {
			s.stats.cacheHits.Add(1)
			if v.Sat {
				s.stats.satAnswers.Add(1)
				return Result{Status: Sat, Model: v.Model}, nil
			}
			s.stats.unsatAnswers.Add(1)
			return Result{Status: Unsat}, nil
		}
		s.stats.cacheMisses.Add(1)
	}
	qtok := s.opts.Cancel
	if s.opts.MaxQueryDuration > 0 {
		qtok = cancel.WithTimeout(qtok, s.opts.MaxQueryDuration)
	}
	if s.opts.Incremental {
		// Verdict first on the persistent context. Unsat answers (and
		// their assumption cores) skip the scratch solve entirely; Sat
		// answers fall through to the scratch path for the model, so
		// models are bit-identical to scratch mode.
		st, core, derr := s.incrementalCtx().decide(f, bounds, qtok, query)
		switch st {
		case Unsat:
			s.stats.unsatAnswers.Add(1)
			s.storeUnsat(f, bounds, core)
			return Result{Status: Unsat}, nil
		case Unknown:
			return Result{Status: Unknown}, derr
		}
	}
	res, err = s.check(f, bounds, qtok, query)
	if err == nil && s.opts.Cache != nil {
		// Only decisive verdicts are cacheable: Unknown reflects a budget,
		// not the query.
		switch res.Status {
		case Sat:
			s.opts.Cache.Store(f, bounds, s.opts.DefaultBounds, cache.Value{Sat: true, Model: res.Model})
		case Unsat:
			s.opts.Cache.Store(f, bounds, s.opts.DefaultBounds, cache.Value{Sat: false})
		}
	}
	return res, err
}

// incrementalCtx returns the persistent context, creating it on first use.
func (s *Solver) incrementalCtx() *Context {
	if s.ctx == nil {
		s.ctx = newContext(s.opts, &s.stats)
	}
	return s.ctx
}

// storeUnsat records an incremental unsat verdict in the cache, plus the
// assumption core as its own unsat entry when it genuinely narrows the
// query — that is what feeds the subsumption index with small cores.
func (s *Solver) storeUnsat(f *expr.Term, bounds map[string]interval.Interval, core []*expr.Term) {
	ca := s.opts.Cache
	if ca == nil {
		return
	}
	ca.Store(f, bounds, s.opts.DefaultBounds, cache.Value{Sat: false})
	if len(core) == 0 || f.Op != expr.OpAnd || len(core) >= len(f.Args) {
		return
	}
	coreF := expr.And(core...)
	if coreF != f && !coreF.IsTrue() {
		ca.Store(coreF, bounds, s.opts.DefaultBounds, cache.Value{Sat: false})
	}
}

func (s *Solver) check(f *expr.Term, bounds map[string]interval.Interval, qtok *cancel.Token, query uint64) (Result, error) {
	f = expr.Simplify(f)

	// Purify div/rem/ite, then re-simplify so new atoms are canonical.
	pur := &purifier{}
	g := pur.purify(f)
	if len(pur.defs) > 0 {
		g = expr.And(append([]*expr.Term{g}, pur.defs...)...)
	}
	g = expr.Simplify(g)

	switch {
	case g.IsTrue():
		m := expr.Model{}
		fillModel(m, nil, bounds, s.opts.DefaultBounds)
		s.stats.satAnswers.Add(1)
		return Result{Status: Sat, Model: m}, nil
	case g.IsFalse():
		s.stats.unsatAnswers.Add(1)
		return Result{Status: Unsat}, nil
	}

	enc := newEncoder()
	defer func() { // scratch solves learn too; only retention is incremental-only
		s.stats.clausesLearned.Add(enc.sat.Statist.Learned)
		s.stats.clausesDeleted.Add(enc.sat.Statist.Deleted)
	}()
	root := enc.encode(g)
	enc.sat.MaxConflicts = s.opts.MaxConflicts
	if qtok != nil {
		enc.sat.Stop = qtok.Expired
	}
	if !enc.sat.AddClause(root) {
		s.stats.unsatAnswers.Add(1)
		return Result{Status: Unsat}, nil
	}
	conflictsAtStart := enc.sat.Statist.Conflicts
	budgetErr := func(stage string, round int, detail error) error {
		s.stats.unknowns.Add(1)
		return &BudgetError{
			Stage:        stage,
			Query:        query,
			TheoryRounds: round,
			Conflicts:    enc.sat.Statist.Conflicts - conflictsAtStart,
			Clauses:      enc.sat.NumClauses(),
			Atoms:        len(enc.atomVar),
			Detail:       detail,
		}
	}
	lopts := s.opts.LIA
	if qtok != nil {
		lopts.Stop = qtok.Expired
	}

	// Assemble bounds for all integer variables of the purified formula.
	allBounds := make(map[string]interval.Interval)
	for _, v := range expr.Vars(g) {
		if v.Sort == expr.SortInt {
			allBounds[v.Name] = s.opts.DefaultBounds
		}
	}
	for name, iv := range bounds {
		allBounds[name] = iv
	}

	for round := 0; round < s.opts.MaxTheoryRounds; round++ {
		if qtok.Expired() {
			return Result{Status: Unknown}, budgetErr("deadline", round, qtok.Err())
		}
		s.stats.theoryRounds.Add(1)
		switch enc.sat.Solve() {
		case sat.Unsat:
			s.stats.unsatAnswers.Add(1)
			return Result{Status: Unsat}, nil
		case sat.Unknown:
			stage := "sat-conflicts"
			if qtok.Expired() {
				stage = "deadline"
			}
			return Result{Status: Unknown}, budgetErr(stage, round, nil)
		}
		model := enc.sat.Model()

		// Assert only a support set of theory literals: a subset that by
		// itself forces the formula true under the skeleton model (a
		// cheap prime-implicant extraction). Smaller assertion sets mean
		// cheaper LIA calls and far more general blocking clauses.
		support := enc.support(g, model)
		prob := lia.Problem{Bounds: allBounds}
		var asserted []sat.Lit
		for _, sl := range support {
			c, err := atomToConstraint(sl.atom, sl.positive)
			if err != nil {
				return Result{}, err
			}
			prob.Cons = append(prob.Cons, c)
			asserted = append(asserted, sat.MkLit(enc.atomVar[sl.atom], !sl.positive))
		}
		res, err := lia.Solve(prob, lopts)
		if err != nil {
			if errors.Is(err, lia.ErrBudget) {
				stage := "lia"
				if qtok.Expired() {
					stage = "deadline"
				}
				return Result{Status: Unknown}, budgetErr(stage, round, err)
			}
			return Result{}, err
		}
		if res.Status == lia.Sat {
			m := expr.Model{}
			for name, v := range res.Model {
				if !strings.HasPrefix(name, auxPrefix) {
					m[name] = v
				}
			}
			for name, v := range enc.boolVar {
				if model[v] {
					m[name] = 1
				} else {
					m[name] = 0
				}
			}
			fillModel(m, g, bounds, s.opts.DefaultBounds)
			s.stats.satAnswers.Add(1)
			return Result{Status: Sat, Model: m}, nil
		}
		// Theory conflict: block this support set.
		block := make([]sat.Lit, len(asserted))
		for i, l := range asserted {
			block[i] = l.Not()
		}
		if !enc.sat.AddClause(block...) {
			s.stats.unsatAnswers.Add(1)
			return Result{Status: Unsat}, nil
		}
	}
	return Result{Status: Unknown}, budgetErr("theory-rounds", s.opts.MaxTheoryRounds, nil)
}

// fillModel ensures every bounded variable has a value.
func fillModel(m expr.Model, g *expr.Term, bounds map[string]interval.Interval, def interval.Interval) {
	for name, iv := range bounds {
		if _, ok := m[name]; !ok {
			m[name] = clamp(0, iv)
		}
	}
	if g != nil {
		for _, v := range expr.Vars(g) {
			if _, ok := m[v.Name]; !ok && !strings.HasPrefix(v.Name, auxPrefix) {
				m[v.Name] = clamp(0, def)
			}
		}
	}
}

func clamp(pref int64, iv interval.Interval) int64 {
	if pref < iv.Lo {
		return iv.Lo
	}
	if pref > iv.Hi {
		return iv.Hi
	}
	return pref
}

// Decide returns the verdict for f without constructing a model. In
// scratch mode it is Check minus the model; in incremental mode it runs
// entirely on the persistent context, which is the fast path the repair
// loop's feasibility checks (IsSat, Valid) ride on.
func (s *Solver) Decide(f *expr.Term, bounds map[string]interval.Interval) (st Status, err error) {
	if !s.opts.Incremental {
		res, err := s.Check(f, bounds)
		return res.Status, err
	}
	if f.Sort != expr.SortBool {
		return Unknown, fmt.Errorf("smt: Decide: formula has sort %v, want Bool", f.Sort)
	}
	query := s.stats.queries.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.ctx = nil // may be mid-mutation: discard, rebuilt lazily
			s.stats.panics.Add(1)
			s.stats.unknowns.Add(1)
			st = Unknown
			err = fmt.Errorf("%w: %v", ErrSolverPanic, r)
		}
	}()
	switch faultinject.SolverQuery() {
	case faultinject.SolverPanic:
		panic(faultinject.PanicMsg)
	case faultinject.SolverTimeout:
		s.stats.unknowns.Add(1)
		return Unknown, &BudgetError{Stage: "fault-injection", Query: query}
	case faultinject.SolverFail:
		return Unknown, faultinject.ErrInjected
	}
	if c := s.opts.Cache; c != nil {
		if isSat, ok := c.LookupVerdict(f, bounds, s.opts.DefaultBounds); ok {
			s.stats.cacheHits.Add(1)
			if isSat {
				s.stats.satAnswers.Add(1)
				return Sat, nil
			}
			s.stats.unsatAnswers.Add(1)
			return Unsat, nil
		}
		s.stats.cacheMisses.Add(1)
	}
	qtok := s.opts.Cancel
	if s.opts.MaxQueryDuration > 0 {
		qtok = cancel.WithTimeout(qtok, s.opts.MaxQueryDuration)
	}
	st, core, err := s.incrementalCtx().decide(f, bounds, qtok, query)
	switch st {
	case Sat:
		s.stats.satAnswers.Add(1)
		if s.opts.Cache != nil {
			// Verdict-only entry: answers future Decide calls; a later
			// Check upgrades it with the model.
			s.opts.Cache.Store(f, bounds, s.opts.DefaultBounds, cache.Value{Sat: true})
		}
	case Unsat:
		s.stats.unsatAnswers.Add(1)
		s.storeUnsat(f, bounds, core)
	}
	return st, err
}

// IsSat reports whether f is satisfiable.
func (s *Solver) IsSat(f *expr.Term, bounds map[string]interval.Interval) (bool, error) {
	st, err := s.Decide(f, bounds)
	if err != nil {
		return false, err
	}
	return st == Sat, nil
}

// GetModel returns a model of f, or ok=false when unsatisfiable.
func (s *Solver) GetModel(f *expr.Term, bounds map[string]interval.Interval) (expr.Model, bool, error) {
	res, err := s.Check(f, bounds)
	if err != nil {
		return nil, false, err
	}
	if res.Status != Sat {
		return nil, false, nil
	}
	return res.Model, true, nil
}

// Valid reports whether f holds for every assignment (within bounds):
// it checks that ¬f is unsatisfiable.
func (s *Solver) Valid(f *expr.Term, bounds map[string]interval.Interval) (bool, error) {
	st, err := s.Decide(expr.Not(f), bounds)
	if err != nil {
		return false, err
	}
	return st == Unsat, nil
}

// atomToConstraint translates a canonical atom (≤, =, ≠ between a linear
// combination and a constant) into a lia constraint, honoring polarity.
func atomToConstraint(atom *expr.Term, positive bool) (lia.Constraint, error) {
	op := atom.Op
	lhs, rhs := atom.Args[0], atom.Args[1]
	diff := expr.Linearize(expr.Sub(lhs, rhs))
	k := -diff.Const
	var terms []lia.Term
	for _, a := range diff.SortedAtoms() {
		vars, err := monoVars(a)
		if err != nil {
			return lia.Constraint{}, err
		}
		terms = append(terms, lia.Term{Coef: diff.Coeff[a], Vars: vars})
	}
	// Normalize op to Le/Eq/Ne under polarity.
	switch op {
	case expr.OpLt:
		op, k = expr.OpLe, k-1
	case expr.OpGt: // Σ > k ⇔ ¬(Σ ≤ k)
		op, positive = expr.OpLe, !positive
	case expr.OpGe: // Σ ≥ k ⇔ ¬(Σ ≤ k−1)
		op, k, positive = expr.OpLe, k-1, !positive
	}
	switch op {
	case expr.OpLe:
		if positive {
			return lia.Constraint{Terms: terms, K: k, Rel: lia.RelLe}, nil
		}
		// ¬(Σ ≤ k) ⇔ −Σ ≤ −k−1
		neg := make([]lia.Term, len(terms))
		for i, t := range terms {
			neg[i] = lia.Term{Coef: -t.Coef, Vars: t.Vars}
		}
		return lia.Constraint{Terms: neg, K: -k - 1, Rel: lia.RelLe}, nil
	case expr.OpEq:
		rel := lia.RelEq
		if !positive {
			rel = lia.RelNe
		}
		return lia.Constraint{Terms: terms, K: k, Rel: rel}, nil
	case expr.OpNe:
		rel := lia.RelNe
		if !positive {
			rel = lia.RelEq
		}
		return lia.Constraint{Terms: terms, K: k, Rel: rel}, nil
	}
	return lia.Constraint{}, fmt.Errorf("smt: unsupported atom operator %v", atom.Op)
}

// monoVars decomposes a multiplicative atom into its variable multiset.
func monoVars(t *expr.Term) ([]string, error) {
	switch t.Op {
	case expr.OpVar:
		return []string{t.Name}, nil
	case expr.OpMul:
		l, err := monoVars(t.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := monoVars(t.Args[1])
		if err != nil {
			return nil, err
		}
		vs := append(l, r...)
		insertionSort(vs)
		return vs, nil
	case expr.OpNeg:
		return nil, fmt.Errorf("smt: unexpected negation inside monomial %v", t)
	default:
		return nil, fmt.Errorf("smt: term %v is not linearizable (op %v)", t, t.Op)
	}
}

func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
